package arcs

import (
	"arcs/internal/apriori"
	"arcs/internal/c45"
	"arcs/internal/quant"
	"arcs/internal/rules"
)

// Baseline re-exports: the comparison systems of the paper's evaluation
// are usable on their own — a C4.5-style decision tree with C4.5RULES
// extraction, and a generic Apriori association rule miner.

// C45Config controls decision tree induction (min instances per branch,
// pruning confidence factor, depth bound).
type C45Config = c45.Config

// C45Tree is a trained decision tree classifier.
type C45Tree = c45.Tree

// C45RuleSet is an ordered classification rule list extracted from a
// tree in the manner of C4.5RULES.
type C45RuleSet = c45.RuleSet

// TrainC45 induces a C4.5-style decision tree predicting classAttr from
// the other attributes of the table.
func TrainC45(tb *Table, classAttr string, cfg C45Config) (*C45Tree, error) {
	return c45.Train(tb, classAttr, cfg)
}

// AprioriConfig controls the generic association rule miner.
type AprioriConfig = apriori.Config

// AssociationRule is a generic itemset rule X => Y produced by Apriori.
type AssociationRule = rules.Rule

// MineApriori runs the classical Apriori algorithm over binned data
// (every attribute value is truncated to an integer item). It is the
// general-purpose alternative to ARCS's single-pass 2D engine.
func MineApriori(src Source, cfg AprioriConfig) ([]AssociationRule, error) {
	return apriori.Mine(src, cfg)
}

// QuantConfig controls the Srikant-Agrawal quantitative interval rule
// miner (the related-work system of paper §1.1).
type QuantConfig = quant.Config

// QuantRule is one quantitative interval rule.
type QuantRule = quant.Rule

// QuantInterval is one attribute-interval item of a quantitative rule.
type QuantInterval = quant.Interval

// MineQuantitative mines quantitative interval rules from a pre-binned
// table: adjacent bins merge into candidate intervals up to the maxsup
// cap, itemsets are mined levelwise, and rules are pruned with the
// greater-than-expected interest measure. Contrast its output volume
// with Mine's clustered rules (see `arcsbench -exp why`).
func MineQuantitative(tb *Table, cfg QuantConfig) ([]QuantRule, error) {
	return quant.Mine(tb, cfg)
}
