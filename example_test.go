package arcs_test

import (
	"fmt"
	"log"
	"strings"

	"arcs"
)

// The examples run on a tiny fixed table so output is deterministic.
const exampleCSV = `age,salary,group
25,55000,A
30,60000,A
28,70000,A
35,80000,A
26,65000,A
33,75000,A
29,58000,A
31,72000,A
70,100000,other
75,130000,other
60,140000,other
65,120000,other
72,110000,other
68,135000,other
62,125000,other
74,105000,other
`

// Example demonstrates the one-shot mining API on CSV data.
func Example() {
	tb, err := arcs.ReadCSV(strings.NewReader(exampleCSV), nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := arcs.Mine(tb, arcs.Config{
		XAttr: "age", YAttr: "salary",
		CritAttr: "group", CritValue: "A",
		NumBins: 4,
		Walk:    arcs.ThresholdWalk{MaxSupportLevels: 4, MaxConfLevels: 3, MaxEvals: 20},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rules:", len(res.Rules))
	for _, r := range res.Rules {
		fmt.Println(r.CritValue, "confidence", r.Confidence)
	}
	// Output:
	// rules: 1
	// A confidence 1
}

// ExampleSystem_MineAt shows threshold re-mining on a built system: the
// binned counts stay in memory, so probing different thresholds costs
// microseconds.
func ExampleSystem_MineAt() {
	tb, err := arcs.ReadCSV(strings.NewReader(exampleCSV), nil)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := arcs.New(tb, arcs.Config{
		XAttr: "age", YAttr: "salary",
		CritAttr: "group", CritValue: "A",
		NumBins: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	loose, err := sys.MineAt(0.01, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	strict, err := sys.MineAt(0.01, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(loose) >= len(strict))
	// Output:
	// true
}

// ExampleSelectAttributePairJoint ranks attribute pairs by joint
// information gain against the criterion.
func ExampleSelectAttributePairJoint() {
	gen, err := arcs.NewGenerator(arcs.SynthConfig{Function: 2, N: 4000, Seed: 1, FracA: 0.4})
	if err != nil {
		log.Fatal(err)
	}
	tb, err := arcs.Materialize(gen)
	if err != nil {
		log.Fatal(err)
	}
	x, y, _, err := arcs.SelectAttributePairJoint(tb, "group", 8)
	if err != nil {
		log.Fatal(err)
	}
	pair := []string{x, y}
	fmt.Println(pair[0] == "age" || pair[1] == "age")
	fmt.Println(pair[0] == "salary" || pair[1] == "salary")
	// Output:
	// true
	// true
}
