// Command arcsd is the ARCS observability daemon: it runs mining jobs
// submitted over HTTP and exposes the live telemetry plane while they
// are in flight — Prometheus metrics, streamed span traces, a flight
// recorder for post-hoc triage, and pprof.
//
// Usage:
//
//	arcsd -addr 127.0.0.1:8080 [-spans trace.jsonl] [-csv-root /data]
//
// Endpoints:
//
//	GET  /metrics              Prometheus text exposition (live registry)
//	GET  /healthz              liveness
//	GET  /readyz               readiness; 503 while draining
//	POST /runs                 submit a mining job (JSON spec), 202 + id
//	GET  /runs                 list retained runs
//	GET  /runs/{id}            run status, including results when done and,
//	                           for synth runs, a mining-quality block
//	                           (held-out error, interestingness measures,
//	                           rectangle recovery; see -quality-testn)
//	DELETE /runs/{id}          cooperative cancel
//	GET  /runs/{id}/spans      live NDJSON/SSE span stream (replay when done)
//	POST /models               publish a model (from a finished run or upload);
//	                           requires -registry
//	GET  /models               list versions incl. quarantined ones + active
//	GET  /models/{id}          one version's manifest, state and document
//	POST /models/{id}/activate re-validate from disk and hot-swap; on failure
//	                           the previous model keeps serving
//	POST /apply                score a tuple or [x,y] batch against the active
//	                           model, behind deadline/limiter/breaker admission
//	GET  /debug/flightrecord   dump the flight-recorder ring [?run=id]
//	GET  /debug/vars           expvar (registry snapshot)
//	GET  /debug/pprof/...      pprof; samples carry arcs_run/arcs_phase labels
//
// SIGINT/SIGTERM starts a drain: /readyz flips to 503, new submissions
// are refused, in-flight runs are canceled cooperatively (degrading to
// best-so-far results), and the server shuts down within -drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"arcs/internal/counts"
	"arcs/internal/obs"
	"arcs/internal/obs/serve"
	"arcs/internal/segment/registry"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		spansPath = flag.String("spans", "", "tee every run's span trace to this JSONL file")
		csvRoot   = flag.String("csv-root", "", "restrict csv job paths to this directory (empty: any readable path)")
		flightCap = flag.Int("flight-cap", 8192, "flight recorder capacity (events retained)")
		maxRuns   = flag.Int("max-runs", 64, "finished runs retained for status queries")
		qualityN  = flag.Int("quality-testn", 5000, "held-out test table size for synth-run quality evaluation (negative: disable)")
		streamBuf = flag.Int("stream-buffer", 1024, "per-subscriber span stream buffer before events drop")

		registryDir    = flag.String("registry", "", "segmentation-model registry directory; enables /models and /apply")
		applyInFlight  = flag.Int("apply-max-inflight", 64, "concurrent /apply requests before load is shed with 429")
		applyTimeout   = flag.Duration("apply-timeout", 5*time.Second, "per-request /apply deadline ceiling")
		applyBreakerN  = flag.Int("apply-breaker-errors", 5, "consecutive apply errors that trip the breaker to 503")
		applyBreakerCD = flag.Duration("apply-breaker-cooldown", 5*time.Second, "tripped-breaker hold before traffic is retried")
		drain          = flag.Duration("drain", 10*time.Second, "graceful shutdown budget after SIGINT/SIGTERM")
		lameDuck       = flag.Duration("lame-duck", 0, "hold /readyz at 503 this long before canceling runs, so load balancers stop routing first")
		memBudget      = flag.String("mem-budget", "", "default count-substrate memory budget for runs: bytes with optional K/M/G/T suffix, or 'off' for unlimited (specs override per run via mem_budget)")
		countsBackend  = flag.String("counts-backend", "auto", "default count backend for runs: auto, dense, sparse, spill (specs override per run via counts_backend)")
		spillDir       = flag.String("spill-dir", "", "directory for spill-backend files (default: OS temp dir)")
		verbose        = flag.Bool("v", false, "debug logging")
		logFormat      = flag.String("log-format", "text", "log output format: text, json")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}
	budget, err := counts.ParseBudget(*memBudget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arcsd:", err)
		os.Exit(2)
	}
	if _, err := counts.ParseKind(*countsBackend); err != nil {
		fmt.Fprintln(os.Stderr, "arcsd:", err)
		os.Exit(2)
	}

	// The flight recorder exists before logging is set up so log lines
	// land in it too: a /debug/flightrecord dump interleaves the
	// daemon's own logs with the span record (obs.SetupSlog taking an
	// io.Writer is what makes this tee possible).
	flight := obs.NewFlightRecorder(*flightCap)
	logOut := io.MultiWriter(os.Stderr, flight.LogWriter())
	if _, err := obs.SetupSlog(logOut, *logFormat, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "arcsd:", err)
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	if err := obs.PublishExpvar("arcs", reg); err != nil {
		slog.Warn("publishing expvar snapshot", "err", err)
	}

	var tee obs.Sink
	if *spansPath != "" {
		f, err := os.Create(*spansPath)
		if err != nil {
			slog.Error(err.Error())
			os.Exit(1)
		}
		js := obs.NewJSONLSink(f)
		tee = js
		defer func() {
			if err := js.Err(); err != nil {
				slog.Error("writing span trace", "path", *spansPath, "err", err)
			}
			if err := f.Close(); err != nil {
				slog.Error("closing span trace", "path", *spansPath, "err", err)
			}
		}()
	}

	// The model registry survives restarts: corrupt or half-published
	// versions found on disk are quarantined (visible in GET /models and
	// the models_quarantined_total counter), and the activation history
	// replays to the most recent version that still validates.
	var models *registry.Registry
	if *registryDir != "" {
		var err error
		models, err = registry.Open(*registryDir, registry.Options{Metrics: reg})
		if err != nil {
			slog.Error(err.Error())
			os.Exit(1)
		}
		slog.Info("model registry open", "dir", *registryDir,
			"versions", len(models.List()), "active", models.ActiveID())
	}

	srv := serve.New(serve.Options{
		Registry:         reg,
		Flight:           flight,
		Harvester:        obs.NewRuntimeHarvester(reg),
		Tee:              tee,
		CSVRoot:          *csvRoot,
		SubscriberBuffer: *streamBuf,
		MaxRuns:          *maxRuns,
		QualityTestN:     *qualityN,
		MemBudget:        budget,
		CountsBackend:    *countsBackend,
		SpillDir:         *spillDir,

		Models:                models,
		ApplyMaxInFlight:      *applyInFlight,
		ApplyTimeout:          *applyTimeout,
		ApplyBreakerThreshold: *applyBreakerN,
		ApplyBreakerCooldown:  *applyBreakerCD,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		slog.Info("arcsd listening", "addr", *addr, "flight_cap", *flightCap)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		slog.Error(err.Error())
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // restore default handling: a second signal kills immediately

	// Drain: flip /readyz so load balancers stop routing (holding it
	// there for the lame-duck window), refuse new submissions, cancel
	// in-flight runs cooperatively (they degrade to best-so-far
	// results), and keep serving status/metrics/streams until the runs
	// finish — only then close the listener. Span streams end naturally
	// as each run's fan-out closes.
	slog.Info("draining", "budget", *drain, "lame_duck", *lameDuck)
	srv.SetReady(false)
	if *lameDuck > 0 {
		time.Sleep(*lameDuck)
	}
	srv.CancelAll()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	drained := true
	for _, run := range srv.Runs() {
		select {
		case <-run.Done():
		case <-shutdownCtx.Done():
			drained = false
		}
	}
	if !drained {
		slog.Warn("drain budget exhausted with runs in flight")
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		slog.Warn("shutdown incomplete; forcing close", "err", err)
		httpSrv.Close()
	}
	if !drained {
		os.Exit(1)
	}
	slog.Info("arcsd stopped")
}
