// Command arcsapply applies a saved segmentation model (produced by
// `arcs -save`) to a CSV file, completing the paper's deployment story:
// segment the existing customer base once, then score prospect lists
// against the saved model.
//
// Usage:
//
//	arcsapply -model segment.json -in prospects.csv [-matched-only] > scored.csv
//
// Output is the input CSV with an extra column holding "yes"/"no" for
// segment membership; -matched-only emits only the matching rows,
// without the extra column.
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"

	"arcs/internal/dataset"
	"arcs/internal/obs"
	"arcs/internal/segment"
)

func main() {
	var (
		modelPath   = flag.String("model", "", "segmentation model JSON (required)")
		in          = flag.String("in", "", "input CSV file (required)")
		out         = flag.String("out", "", "output file (default stdout)")
		matchedOnly = flag.Bool("matched-only", false, "emit only matching rows, without the membership column")
		column      = flag.String("column", "in_segment", "name of the membership column")
		verbose     = flag.Bool("v", false, "debug logging")
		logFormat   = flag.String("log-format", "text", "log output format: text, json")
	)
	flag.Parse()
	if *modelPath == "" || *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if _, err := obs.SetupSlog(os.Stderr, *logFormat, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "arcsapply:", err)
		os.Exit(2)
	}

	mf, err := os.Open(*modelPath)
	if err != nil {
		fatal(err)
	}
	model, err := segment.Read(mf)
	mf.Close()
	if err != nil {
		fatal(err)
	}

	schema, err := dataset.InferCSVSchema(*in, 10_000)
	if err != nil {
		fatal(err)
	}
	src, err := dataset.OpenCSVStream(*in, schema)
	if err != nil {
		fatal(err)
	}
	defer src.Close()

	applier, err := model.Bind(schema)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	cw := csv.NewWriter(bw)

	header := schema.Names()
	if !*matchedOnly {
		header = append(header, *column)
	}
	if err := cw.Write(header); err != nil {
		fatal(err)
	}

	rec := make([]string, schema.Len(), schema.Len()+1)
	matched, total := 0, 0
	err = applier.Apply(src, func(t dataset.Tuple, covered bool) error {
		total++
		if covered {
			matched++
		}
		if *matchedOnly && !covered {
			return nil
		}
		for i, v := range t {
			a := schema.At(i)
			if a.Kind == dataset.Categorical {
				rec[i] = a.Category(int(v))
			} else {
				rec[i] = strconv.FormatFloat(v, 'g', -1, 64)
			}
		}
		row := rec
		if !*matchedOnly {
			member := "no"
			if covered {
				member = "yes"
			}
			row = append(rec, member)
		}
		return cw.Write(row)
	})
	if err != nil {
		fatal(err)
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		fatal(err)
	}
	if err := bw.Flush(); err != nil {
		fatal(err)
	}
	slog.Info("scored rows against segment",
		"matched", matched, "total", total,
		"crit_attr", model.CritAttr, "crit_value", model.CritValue)
}

func fatal(err error) {
	slog.Error(err.Error())
	os.Exit(1)
}
