// Command arcsapply applies a saved segmentation model (produced by
// `arcs -save`) to a CSV file, completing the paper's deployment story:
// segment the existing customer base once, then score prospect lists
// against the saved model.
//
// Usage:
//
//	arcsapply -model segment.json -in prospects.csv [-matched-only] > scored.csv
//	arcsapply -registry ./models [-model-version m000003] -in prospects.csv
//
// -model loads a model file directly; -registry loads from a versioned
// model registry (the same store arcsd serves from), defaulting to the
// active version so the CLI and the daemon score with one validation
// and bind path.
//
// Output is the input CSV with an extra column holding "yes"/"no" for
// segment membership; -matched-only emits only the matching rows,
// without the extra column.
//
// Exit codes: 0 success, 1 fatal error, 2 usage, 3 canceled (SIGINT or
// -timeout) — the rows scored before cancellation are flushed first.
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"syscall"

	"arcs/internal/binarray"
	"arcs/internal/counts"
	"arcs/internal/dataset"
	"arcs/internal/obs"
	"arcs/internal/segment"
	"arcs/internal/segment/registry"
)

const exitCanceled = 3

func main() {
	var (
		modelPath   = flag.String("model", "", "segmentation model JSON file")
		registryDir = flag.String("registry", "", "model registry directory (alternative to -model)")
		version     = flag.String("model-version", "", "registry version to load (default: the active one)")
		in          = flag.String("in", "", "input CSV file (required)")
		out         = flag.String("out", "", "output file (default stdout)")
		matchedOnly = flag.Bool("matched-only", false, "emit only matching rows, without the membership column")
		column      = flag.String("column", "in_segment", "name of the membership column")
		timeout     = flag.Duration("timeout", 0, "scoring budget; on expiry flush the rows scored so far and exit 3")
		maxBadRows  = flag.Int("max-bad-rows", 0, "input rows to quarantine before failing; -1 unlimited, 0 strict")
		retries     = flag.Int("retries", 2, "retries per read for transient input errors")
		memBudget   = flag.String("mem-budget", "", "memory budget for count structures: bytes with optional K/M/G/T suffix, or 'off' for unlimited (empty keeps the 1 GiB default)")
		verbose     = flag.Bool("v", false, "debug logging")
		logFormat   = flag.String("log-format", "text", "log output format: text, json")
	)
	flag.Parse()
	// Scoring never builds a count array today, but the budget flag is
	// uniform across the arcs commands: set the process-wide default
	// once, before anything allocates count state.
	if budget, err := counts.ParseBudget(*memBudget); err != nil {
		fmt.Fprintln(os.Stderr, "arcsapply:", err)
		os.Exit(2)
	} else if budget != 0 {
		binarray.DefaultMemBudget = budget
	}
	if (*modelPath == "") == (*registryDir == "") || *in == "" {
		fmt.Fprintln(os.Stderr, "arcsapply: need -in plus exactly one of -model or -registry")
		flag.Usage()
		os.Exit(2)
	}
	if *version != "" && *registryDir == "" {
		fmt.Fprintln(os.Stderr, "arcsapply: -model-version needs -registry")
		flag.Usage()
		os.Exit(2)
	}
	if _, err := obs.SetupSlog(os.Stderr, *logFormat, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "arcsapply:", err)
		os.Exit(2)
	}

	// SIGINT/SIGTERM and -timeout cancel the scoring pass cooperatively:
	// the stream stops at its next checkpoint, the rows already scored are
	// flushed, and the process exits 3.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// After the first cancellation, restore default signal handling so a
	// second Ctrl-C kills the process the ordinary way instead of being
	// swallowed while the partial output flushes.
	go func() { <-ctx.Done(); stopSignals() }()

	// Both load paths end in the same read-validation: a file goes
	// through segment.Read directly, a registry version additionally
	// gets its manifest checksum verified before the document is
	// trusted — the exact gate the daemon serves behind.
	var model *segment.Model
	if *registryDir != "" {
		reg, err := registry.Open(*registryDir, registry.Options{})
		if err != nil {
			fatal(err)
		}
		id := *version
		if id == "" {
			if id = reg.ActiveID(); id == "" {
				fatal(fmt.Errorf("registry %s has no active model; activate one or pass -model-version", *registryDir))
			}
		}
		m, man, err := reg.Load(id)
		if err != nil {
			fatal(err)
		}
		model = m
		slog.Debug("loaded model from registry", "version", id,
			"rules", man.Rules, "source_run", man.SourceRun)
	} else {
		mf, err := os.Open(*modelPath)
		if err != nil {
			fatal(err)
		}
		m, err := segment.Read(mf)
		mf.Close()
		if err != nil {
			fatal(err)
		}
		model = m
	}

	schema, err := dataset.InferCSVSchema(*in, 10_000)
	if err != nil {
		fatal(err)
	}
	cs, err := dataset.OpenCSVStream(*in, schema)
	if err != nil {
		fatal(err)
	}
	defer cs.Close()
	// The resilient layer retries transient read errors with backoff and
	// quarantines unparseable rows (with row numbers) within the
	// -max-bad-rows budget, so one corrupt prospect row doesn't abort the
	// whole scoring run unless the operator asked for strictness.
	src := dataset.NewResilient(cs,
		dataset.Retry{Max: *retries},
		dataset.Quarantine{MaxBadRows: *maxBadRows,
			OnBad: func(reason string, row int, err error) {
				slog.Debug("quarantined row", "reason", reason, "row", row, "err", err)
			}})

	applier, err := model.Bind(schema)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	cw := csv.NewWriter(bw)

	header := schema.Names()
	if !*matchedOnly {
		header = append(header, *column)
	}
	if err := cw.Write(header); err != nil {
		fatal(err)
	}

	rec := make([]string, schema.Len(), schema.Len()+1)
	matched, total := 0, 0
	applyErr := applier.ApplyContext(ctx, src, func(t dataset.Tuple, covered bool) error {
		total++
		if covered {
			matched++
		}
		if *matchedOnly && !covered {
			return nil
		}
		for i, v := range t {
			a := schema.At(i)
			if a.Kind == dataset.Categorical {
				rec[i] = a.Category(int(v))
			} else {
				rec[i] = strconv.FormatFloat(v, 'g', -1, 64)
			}
		}
		row := rec
		if !*matchedOnly {
			member := "no"
			if covered {
				member = "yes"
			}
			row = append(rec, member)
		}
		return cw.Write(row)
	})
	// Flush before classifying the error so a canceled pass still delivers
	// every row scored up to the checkpoint.
	cw.Flush()
	if err := cw.Error(); err != nil {
		fatal(err)
	}
	if err := bw.Flush(); err != nil {
		fatal(err)
	}
	if st := src.Stats(); st.Total() > 0 || st.Retries > 0 {
		slog.Warn("input degradation",
			"rows_quarantined", st.Total(), "by_reason", st.Quarantined,
			"retries", st.Retries)
	}
	if applyErr != nil {
		if wasCanceled(applyErr) {
			slog.Warn("scoring canceled; partial output flushed",
				"rows_scored", total, "matched", matched, "cause", applyErr)
			os.Exit(exitCanceled)
		}
		fatal(applyErr)
	}
	slog.Info("scored rows against segment",
		"matched", matched, "total", total,
		"crit_attr", model.CritAttr, "crit_value", model.CritValue)
}

// wasCanceled reports whether err stems from context cancellation
// (SIGINT/SIGTERM) or deadline expiry (-timeout).
func wasCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func fatal(err error) {
	slog.Error(err.Error())
	os.Exit(1)
}
