// Command arcstrace analyzes the JSONL span traces written by
// `arcs -spans` and `arcsbench -spans`.
//
// Usage:
//
//	arcstrace summarize run.jsonl
//	    Print the per-phase tree (call counts, total/self time, share of
//	    the root) plus the trace's attached metrics snapshot.
//
//	arcstrace diff [-tolerance 20%] [-min-phase 5ms] [-min-count 16] old.jsonl new.jsonl
//	    Compare aggregate phase times and counters between two traces and
//	    exit non-zero when anything grew beyond the tolerance — the CI
//	    perf gate. With two BENCH_*.json trajectories the newest history
//	    record of each is compared instead (phase timings, the ingest
//	    crossover summary, and — for BENCH_quality.json records — the
//	    per-function quality rows: error-rate and recovery-IoU drift
//	    beyond noise floors); with a single trajectory its last two
//	    records are compared — the double-run protocol's same-machine
//	    noise check.
//
//	arcstrace append [-bench BENCH_feedbackloop.json] run.jsonl
//	    Fold the trace's phase timings into a BENCH_*.json trajectory as
//	    one history record keyed by git SHA + timestamp.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"arcs/internal/core"
	"arcs/internal/experiments"
	"arcs/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "summarize":
		err = summarize(os.Args[2:])
	case "diff":
		err = diff(os.Args[2:])
	case "append":
		err = appendCmd(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "arcstrace: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "arcstrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  arcstrace summarize run.jsonl
  arcstrace diff [-tolerance 20%] [-min-phase 5ms] [-min-count 16] old.jsonl new.jsonl
  arcstrace diff [flags] OLD_BENCH.json NEW_BENCH.json   (newest record of each)
  arcstrace diff [flags] BENCH.json                      (its last two records)
  arcstrace append [-bench BENCH_feedbackloop.json] run.jsonl
`)
}

func readTrace(path string) (*obs.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obs.ReadTrace(f)
}

func summarize(args []string) error {
	fs := flag.NewFlagSet("summarize", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("summarize wants exactly one trace file")
	}
	t, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	if err := obs.WritePhaseTree(os.Stdout, t.PhaseTree()); err != nil {
		return err
	}
	if len(t.Metrics) > 0 {
		fmt.Println("\nmetrics:")
		keys := make([]string, 0, len(t.Metrics))
		for k := range t.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-50s %g\n", k, t.Metrics[k])
		}
	}
	return nil
}

func diff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	tolerance := fs.String("tolerance", "20%", "allowed growth before a phase or counter regresses (e.g. 20% or 0.2)")
	minPhase := fs.Duration("min-phase", 5*time.Millisecond, "ignore phases faster than this in both traces")
	minCount := fs.Float64("min-count", 16, "ignore counters below this in both traces")
	fs.Parse(args)
	tol, err := parseTolerance(*tolerance)
	if err != nil {
		return err
	}
	opts := obs.DiffOptions{Tolerance: tol, MinPhase: *minPhase, MinCount: *minCount}

	// Bench-trajectory mode: .json args are BENCH_*.json files whose
	// newest history records are compared (phase timings plus the
	// ingest crossover summary). One trajectory file alone compares its
	// last two records — the double-run protocol's same-machine diff.
	var regs []obs.Regression
	var oldName, newName string
	switch {
	case fs.NArg() == 1 && isBenchFile(fs.Arg(0)):
		bf, err := experiments.ReadBenchFile(fs.Arg(0))
		if err != nil {
			return err
		}
		oldRec, newRec, err := experiments.LastTwoRecords(bf)
		if err != nil {
			return err
		}
		regs = experiments.DiffBenchRecords(oldRec, newRec, opts)
		oldName, newName = fs.Arg(0)+"[-2]", fs.Arg(0)+"[-1]"
	case fs.NArg() == 2 && isBenchFile(fs.Arg(0)) && isBenchFile(fs.Arg(1)):
		oldBF, err := experiments.ReadBenchFile(fs.Arg(0))
		if err != nil {
			return err
		}
		newBF, err := experiments.ReadBenchFile(fs.Arg(1))
		if err != nil {
			return err
		}
		oldRec, err := experiments.LastRecord(oldBF)
		if err != nil {
			return fmt.Errorf("%s: %w", fs.Arg(0), err)
		}
		newRec, err := experiments.LastRecord(newBF)
		if err != nil {
			return fmt.Errorf("%s: %w", fs.Arg(1), err)
		}
		regs = experiments.DiffBenchRecords(oldRec, newRec, opts)
		oldName, newName = fs.Arg(0), fs.Arg(1)
	case fs.NArg() == 2:
		oldT, err := readTrace(fs.Arg(0))
		if err != nil {
			return err
		}
		newT, err := readTrace(fs.Arg(1))
		if err != nil {
			return err
		}
		regs = obs.DiffTraces(oldT, newT, opts)
		oldName, newName = fs.Arg(0), fs.Arg(1)
	default:
		return fmt.Errorf("diff wants two trace files (old new), two bench .json trajectories, or one trajectory (compares its last two records)")
	}
	if len(regs) == 0 {
		fmt.Printf("no regressions beyond %s (%s vs %s)\n", *tolerance, oldName, newName)
		return nil
	}
	fmt.Printf("%d regression(s) beyond %s:\n", len(regs), *tolerance)
	for _, r := range regs {
		fmt.Println(" ", r)
	}
	os.Exit(1)
	return nil
}

// isBenchFile distinguishes BENCH_*.json trajectories from JSONL span
// traces by extension.
func isBenchFile(path string) bool {
	return strings.HasSuffix(path, ".json")
}

// parseTolerance accepts "20%" or a bare fraction like "0.2".
func parseTolerance(s string) (float64, error) {
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("bad tolerance %q: %w", s, err)
	}
	if pct {
		v /= 100
	}
	if v < 0 {
		return 0, fmt.Errorf("tolerance must be non-negative, got %q", s)
	}
	return v, nil
}

func appendCmd(args []string) error {
	fs := flag.NewFlagSet("append", flag.ExitOnError)
	bench := fs.String("bench", "BENCH_feedbackloop.json", "trajectory file to append the record to")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("append wants exactly one trace file")
	}
	t, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	rec := experiments.BenchRecord{
		GitSHA:    experiments.GitSHA(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Tuples:    traceTuples(t),
		Phases:    tracePhases(t),
	}
	if err := experiments.AppendBenchRecord(*bench, rec); err != nil {
		return err
	}
	fmt.Printf("appended record for %s to %s (%d phases)\n", fs.Arg(0), *bench, len(rec.Phases))
	return nil
}

// traceTuples pulls the tuple count from the init phase's count span,
// the one place the pipeline records the workload size. "bin" is the
// span's pre-stage-pipeline name, accepted so old traces still parse.
func traceTuples(t *obs.Trace) int {
	for _, ev := range t.Events {
		if ev.Type == obs.EventSpan && (ev.Name == "count" || ev.Name == "bin") {
			if n, err := strconv.Atoi(ev.Attr("tuples")); err == nil {
				return n
			}
		}
	}
	return 0
}

// tracePhases flattens the trace's phase tree (two levels deep — the
// top-level stages and their direct children) into name-path timings.
func tracePhases(t *obs.Trace) []core.PhaseTiming {
	var out []core.PhaseTiming
	for _, root := range t.PhaseTree() {
		out = append(out, core.PhaseTiming{Name: root.Name, Seconds: root.Total.Seconds()})
		for _, c := range root.Children {
			out = append(out, core.PhaseTiming{
				Name:    root.Name + "/" + c.Name,
				Seconds: c.Total.Seconds(),
			})
		}
	}
	return out
}
