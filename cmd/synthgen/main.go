// Command synthgen emits synthetic classification data as CSV, following
// the generator of Agrawal et al. (the ARCS paper's evaluation data):
// nine person attributes plus a group label assigned by one of ten
// classification functions, with optional perturbation, outliers and
// group-fraction control.
//
// Usage:
//
//	synthgen -n 50000 -function 2 -perturb 0.05 -outliers 0.10 > data.csv
//
// -truth-out additionally writes the function's ground-truth metadata
// (recommended mining pair, domain, generating regions when the
// function is rectangular in that pair, and the generator parameters)
// as JSON, for quality evaluation of segmentations mined from the CSV.
//
// Exit codes: 0 success, 1 fatal error, 2 usage, 3 canceled (SIGINT or
// -timeout) — rows generated before cancellation are flushed first.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"arcs/internal/dataset"
	"arcs/internal/obs"
	"arcs/internal/synth"
)

const exitCanceled = 3

func main() {
	var (
		n          = flag.Int("n", 10_000, "number of tuples")
		function   = flag.Int("function", 2, "classification function 1-10")
		perturb    = flag.Float64("perturb", 0.05, "perturbation factor P")
		outliers   = flag.Float64("outliers", 0, "outlier fraction U")
		fracA      = flag.Float64("fraca", 0.40, "target fraction of Group A (0 disables)")
		seed       = flag.Int64("seed", 1, "random seed")
		positional = flag.Bool("positional", false, "use the position-deterministic stream generator (tuple i depends only on seed and i; shardable, different values than the sequential generator)")
		out        = flag.String("out", "", "output file (default stdout)")
		truthOut   = flag.String("truth-out", "", "also write the function's ground-truth metadata (mining pair, domain, generating regions, generator config) as JSON to this file")
		timeout    = flag.Duration("timeout", 0, "generation budget; on expiry flush the rows written so far and exit 3")
		verbose    = flag.Bool("v", false, "debug logging")
		logFormat  = flag.String("log-format", "text", "log output format: text, json")
	)
	flag.Parse()
	if _, err := obs.SetupSlog(os.Stderr, *logFormat, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "synthgen:", err)
		os.Exit(2)
	}

	// SIGINT/SIGTERM and -timeout cancel generation cooperatively: the
	// pass stops at its next checkpoint, the rows already emitted are
	// flushed (output truncated at a row boundary), and the process
	// exits 3.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// After the first cancellation, restore default signal handling so a
	// second Ctrl-C kills the process the ordinary way instead of being
	// swallowed while the partial output flushes.
	go func() { <-ctx.Done(); stopSignals() }()

	cfg := synth.Config{
		Function:        *function,
		N:               *n,
		Seed:            *seed,
		Perturbation:    *perturb,
		OutlierFraction: *outliers,
		FracA:           *fracA,
	}
	if *truthOut != "" {
		if err := writeTruth(*truthOut, cfg, *positional); err != nil {
			fatal(err)
		}
	}

	var gen dataset.Source
	if *positional {
		st, err := synth.NewStream(cfg)
		if err != nil {
			fatal(err)
		}
		gen = st.Source()
	} else {
		g, err := synth.New(cfg)
		if err != nil {
			fatal(err)
		}
		gen = g
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	writeErr := dataset.WriteCSVContext(ctx, bw, gen)
	if err := bw.Flush(); err != nil {
		fatal(err)
	}
	if writeErr != nil {
		if errors.Is(writeErr, context.Canceled) || errors.Is(writeErr, context.DeadlineExceeded) {
			slog.Warn("generation canceled; partial output flushed", "cause", writeErr)
			os.Exit(exitCanceled)
		}
		fatal(writeErr)
	}
	slog.Debug("generated synthetic data",
		"tuples", *n, "function", *function, "perturb", *perturb, "outliers", *outliers)
}

// truthDoc is the -truth-out JSON document: the exported ground truth
// of the generated function plus the generator parameters that produced
// the CSV, so a quality harness can evaluate a segmentation mined from
// the file without re-deriving either.
type truthDoc struct {
	synth.Truth
	N               int     `json:"n"`
	Seed            int64   `json:"seed"`
	Perturbation    float64 `json:"perturbation"`
	OutlierFraction float64 `json:"outlier_fraction"`
	FracA           float64 `json:"frac_a"`
	Positional      bool    `json:"positional,omitempty"`
}

// writeTruth emits the ground-truth metadata document for cfg.
func writeTruth(path string, cfg synth.Config, positional bool) error {
	tr, err := synth.GroundTruth(cfg.Function)
	if err != nil {
		return err
	}
	doc := truthDoc{
		Truth: tr,
		N:     cfg.N, Seed: cfg.Seed,
		Perturbation:    cfg.Perturbation,
		OutlierFraction: cfg.OutlierFraction,
		FracA:           cfg.FracA,
		Positional:      positional,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	slog.Error(err.Error())
	os.Exit(1)
}
