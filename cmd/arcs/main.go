// Command arcs runs the Association Rule Clustering System over a CSV
// file and prints the clustered association rules that segment the data.
//
// Usage:
//
//	arcs -in data.csv -x age -y salary -crit group [-value A] [flags]
//
// With -value, one segmentation is computed; without it, every value of
// the criterion attribute is segmented (reusing the single binning pass).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"

	"arcs/internal/core"
	"arcs/internal/dataset"
	"arcs/internal/obs"
	"arcs/internal/optimizer"
	"arcs/internal/report"
	"arcs/internal/segment"
)

func main() {
	var (
		in         = flag.String("in", "", "input CSV file (required)")
		xAttr      = flag.String("x", "", "first LHS attribute (required)")
		yAttr      = flag.String("y", "", "second LHS attribute (required)")
		critAttr   = flag.String("crit", "", "categorical criterion attribute (required)")
		critValue  = flag.String("value", "", "criterion value to segment (default: all values)")
		bins       = flag.Int("bins", 50, "bins per quantitative attribute")
		smoothing  = flag.String("smoothing", "binary", "grid smoothing: binary, off, weighted, morphological")
		binning    = flag.String("binning", "equi-width", "bin strategy: equi-width, equi-depth, homogeneity, supervised")
		search     = flag.String("search", "walk", "threshold search: walk, anneal, factorial, fixed")
		minSup     = flag.Float64("minsup", 0.0001, "minimum support (with -search fixed)")
		minConf    = flag.Float64("minconf", 0.39, "minimum confidence (with -search fixed)")
		prune      = flag.Float64("prune", 0.01, "minimum cluster size as a fraction of the grid")
		lift       = flag.Float64("lift", 0, "greater-than-expected interest factor (0 disables)")
		seed       = flag.Int64("seed", 1, "sampling seed")
		showGrid   = flag.Bool("grid", false, "print the rule grid before clustering")
		verbose    = flag.Bool("v", false, "debug logging plus the optimizer trace")
		logFormat  = flag.String("log-format", "text", "log output format: text, json")
		format     = flag.String("format", "text", "output format: text, markdown, json")
		stream     = flag.Bool("stream", false, "stream the CSV from disk instead of loading it (constant memory)")
		save       = flag.String("save", "", "write the segmentation model as JSON to this file (requires -value)")
		describe   = flag.Bool("describe", false, "print per-attribute statistics and exit")
		spansPath  = flag.String("spans", "", "write a JSONL span trace of the run to this file")
		metricsOut = flag.String("metrics-out", "", "write Prometheus text-format metrics to this file on exit")
		prof       obs.Profiler
	)
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *in == "" || (!*describe && (*xAttr == "" || *yAttr == "" || *critAttr == "")) {
		flag.Usage()
		os.Exit(2)
	}
	if _, err := obs.SetupSlog(os.Stderr, *logFormat, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "arcs:", err)
		os.Exit(2)
	}
	defer runExitHooks()

	if stop, err := prof.Start(); err != nil {
		fatal(err)
	} else {
		atExit(func() {
			if err := stop(); err != nil {
				slog.Error("stopping profilers", "err", err)
			}
		})
	}

	// -spans or -metrics-out (or both) turn the observability layer on;
	// the live registry is also published on expvar for /debug/vars.
	var observer *obs.Observer
	if *spansPath != "" || *metricsOut != "" {
		var sink obs.Sink
		if *spansPath != "" {
			f, err := os.Create(*spansPath)
			if err != nil {
				fatal(err)
			}
			js := obs.NewJSONLSink(f)
			sink = js
			atExit(func() {
				if err := js.Err(); err != nil {
					slog.Error("writing span trace", "path", *spansPath, "err", err)
				}
				if err := f.Close(); err != nil {
					slog.Error("closing span trace", "path", *spansPath, "err", err)
				}
			})
		}
		observer = obs.New(sink)
		obs.PublishExpvar("arcs", observer.Registry())
		// Flush the final registry state into the trace before the sink
		// closes (hooks run last-registered-first), so arcstrace sees the
		// run's counters and histograms alongside its spans.
		atExit(func() { observer.FlushMetrics() })
		if *metricsOut != "" {
			path := *metricsOut
			atExit(func() {
				f, err := os.Create(path)
				if err != nil {
					slog.Error("creating metrics file", "path", path, "err", err)
					return
				}
				snap := observer.Registry().Snapshot()
				if err := obs.WritePrometheus(f, snap, "arcs"); err != nil {
					slog.Error("writing metrics", "path", path, "err", err)
				}
				if err := f.Close(); err != nil {
					slog.Error("closing metrics file", "path", path, "err", err)
				}
			})
		}
	}

	outFormat, err := report.ParseFormat(*format)
	if err != nil {
		fatal(err)
	}

	var src dataset.Source
	if *stream {
		schema, err := dataset.InferCSVSchema(*in, 10_000)
		if err != nil {
			fatal(err)
		}
		cs, err := dataset.OpenCSVStream(*in, schema)
		if err != nil {
			fatal(err)
		}
		defer cs.Close()
		src = cs
	} else {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		tb, err := dataset.ReadCSV(f, nil)
		f.Close()
		if err != nil {
			fatal(err)
		}
		src = tb
	}

	if *describe {
		tb, err := dataset.Materialize(src)
		if err != nil {
			fatal(err)
		}
		fmt.Print(dataset.RenderSummary(dataset.Summarize(tb), 8))
		return
	}

	cfg := core.Config{
		XAttr: *xAttr, YAttr: *yAttr,
		CritAttr: *critAttr, CritValue: *critValue,
		NumBins:            *bins,
		PruneFraction:      *prune,
		InterestLift:       *lift,
		FixedMinSupport:    *minSup,
		FixedMinConfidence: *minConf,
		Seed:               *seed,
		Walk:               optimizer.ThresholdWalk{},
		Observer:           observer,
	}
	switch *smoothing {
	case "binary":
		cfg.Smoothing = core.SmoothBinary
	case "off":
		cfg.Smoothing = core.SmoothOff
	case "weighted":
		cfg.Smoothing = core.SmoothWeighted
	case "morphological":
		cfg.Smoothing = core.SmoothMorphological
	default:
		fatal(fmt.Errorf("unknown smoothing %q", *smoothing))
	}
	switch *binning {
	case "equi-width":
		cfg.BinStrategy = core.BinEquiWidth
	case "equi-depth":
		cfg.BinStrategy = core.BinEquiDepth
	case "homogeneity":
		cfg.BinStrategy = core.BinHomogeneity
	case "supervised":
		cfg.BinStrategy = core.BinSupervised
	default:
		fatal(fmt.Errorf("unknown binning %q", *binning))
	}
	switch *search {
	case "walk":
		cfg.Search = core.SearchWalk
	case "anneal":
		cfg.Search = core.SearchAnneal
	case "factorial":
		cfg.Search = core.SearchFactorial
	case "fixed":
		cfg.Search = core.SearchFixed
	default:
		fatal(fmt.Errorf("unknown search %q", *search))
	}

	sys, err := core.New(src, cfg)
	if err != nil {
		fatal(err)
	}

	if *critValue != "" {
		res, err := sys.Run()
		if err != nil {
			fatal(err)
		}
		if *showGrid {
			bm, err := sys.Grid(*critValue, res.MinSupport, res.MinConfidence)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("rule grid for %s = %s with clusters (y grows upward):\n%s",
				*critAttr, *critValue, report.RenderGrid(bm, res.Rules))
			fmt.Print(report.RenderGridLegend(res.Rules))
			fmt.Println()
		}
		if err := report.WriteResult(os.Stdout, res, outFormat); err != nil {
			fatal(err)
		}
		if *save != "" {
			if err := saveModel(*save, res); err != nil {
				fatal(err)
			}
		}
		printTrace(res, *verbose)
		return
	}
	if *save != "" {
		fatal(fmt.Errorf("-save requires -value"))
	}
	results, err := sys.SegmentAll()
	if err != nil {
		fatal(err)
	}
	labels := make([]string, 0, len(results))
	for label := range results {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	if err := report.WriteAll(os.Stdout, results, labels, outFormat); err != nil {
		fatal(err)
	}
	if *verbose {
		for _, label := range labels {
			printTrace(results[label], true)
		}
	}
}

func saveModel(path string, res *core.Result) error {
	model, err := segment.New(res.Rules, res.MinSupport, res.MinConfidence)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return model.Write(f)
}

func printTrace(res *core.Result, verbose bool) {
	if !verbose {
		return
	}
	for _, s := range res.Trace {
		note := s.Reason
		if s.CacheHit {
			note += ", cached"
		}
		if note != "" {
			note = " (" + note + ")"
		}
		fmt.Printf("  probe sup=%.5f conf=%.3f -> %d rules, cost %.2f%s\n",
			s.Support, s.Confidence, s.NumRules, s.Cost, note)
	}
	p := res.Provenance
	fmt.Printf("  search: %d probes, %d accepted, %d zero-rules, %d no-improvement, %d cache hits\n",
		p.Probes, p.Accepted, p.ZeroRules, p.NoImprovement, p.CacheHits)
}

// exitHooks run once, either on normal return from main (via defer) or
// from fatal before os.Exit, so profiles, span traces, and metric files
// are flushed on every path.
var exitHooks []func()

func atExit(fn func()) { exitHooks = append(exitHooks, fn) }

func runExitHooks() {
	hooks := exitHooks
	exitHooks = nil
	for i := len(hooks) - 1; i >= 0; i-- {
		hooks[i]()
	}
}

func fatal(err error) {
	runExitHooks()
	slog.Error(err.Error())
	os.Exit(1)
}
