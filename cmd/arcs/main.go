// Command arcs runs the Association Rule Clustering System over a CSV
// file and prints the clustered association rules that segment the data.
//
// Usage:
//
//	arcs -in data.csv -x age -y salary -crit group [-value A] [flags]
//
// With -value, one segmentation is computed; without it, every value of
// the criterion attribute is segmented (reusing the single binning pass).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"arcs/internal/core"
	"arcs/internal/counts"
	"arcs/internal/dataset"
	"arcs/internal/obs"
	"arcs/internal/optimizer"
	"arcs/internal/report"
	"arcs/internal/segment"
)

// Exit codes: 0 success, 1 fatal error, 2 usage, 3 canceled (SIGINT or
// -timeout) — possibly after printing a degraded best-so-far result.
const exitCanceled = 3

func main() {
	var (
		in         = flag.String("in", "", "input CSV file (required)")
		xAttr      = flag.String("x", "", "first LHS attribute (required)")
		yAttr      = flag.String("y", "", "second LHS attribute (required)")
		critAttr   = flag.String("crit", "", "categorical criterion attribute (required)")
		critValue  = flag.String("value", "", "criterion value to segment (default: all values)")
		bins       = flag.Int("bins", 50, "bins per quantitative attribute")
		smoothing  = flag.String("smoothing", "binary", "grid smoothing: binary, off, weighted, morphological")
		binning    = flag.String("binning", "equi-width", "bin strategy: equi-width, equi-depth, homogeneity, supervised")
		search     = flag.String("search", "walk", "threshold search: walk, anneal, factorial, fixed")
		minSup     = flag.Float64("minsup", 0.0001, "minimum support (with -search fixed)")
		minConf    = flag.Float64("minconf", 0.39, "minimum confidence (with -search fixed)")
		prune      = flag.Float64("prune", 0.01, "minimum cluster size as a fraction of the grid")
		lift       = flag.Float64("lift", 0, "greater-than-expected interest factor (0 disables)")
		seed       = flag.Int64("seed", 1, "sampling seed")
		showGrid   = flag.Bool("grid", false, "print the rule grid before clustering")
		verbose    = flag.Bool("v", false, "debug logging plus the optimizer trace")
		logFormat  = flag.String("log-format", "text", "log output format: text, json")
		format     = flag.String("format", "text", "output format: text, markdown, json")
		stream     = flag.Bool("stream", false, "stream the CSV from disk instead of loading it (constant memory)")
		save       = flag.String("save", "", "write the segmentation model as JSON to this file (requires -value)")
		describe   = flag.Bool("describe", false, "print per-attribute statistics and exit")
		spansPath  = flag.String("spans", "", "write a JSONL span trace of the run to this file")
		metricsOut = flag.String("metrics-out", "", "write Prometheus text-format metrics to this file on exit")
		timeout    = flag.Duration("timeout", 0, "overall run budget; on expiry print the best-so-far result and exit 3")
		maxBadRows = flag.Int("max-bad-rows", 0, "input rows to quarantine per pass before failing; -1 unlimited, 0 strict")
		retries    = flag.Int("retries", 2, "retries per read for transient input errors")
		ingestW    = flag.Int("ingest-workers", 0, "workers for the parallel counting pass (0/1 sequential; needs an in-memory source, so not with -stream)")
		memBudget  = flag.String("mem-budget", "", "memory budget for the count substrate: bytes with optional K/M/G/T suffix, or 'off' for unlimited (empty keeps the 1 GiB default; grids over budget use the sparse or spill backend)")
		backend    = flag.String("counts-backend", "auto", "count backend: auto, dense, sparse, spill")
		spillDir   = flag.String("spill-dir", "", "directory for spill-backend files (default: OS temp dir)")
		prof       obs.Profiler
	)
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *in == "" || (!*describe && (*xAttr == "" || *yAttr == "" || *critAttr == "")) {
		flag.Usage()
		os.Exit(2)
	}
	if _, err := obs.SetupSlog(os.Stderr, *logFormat, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "arcs:", err)
		os.Exit(2)
	}
	defer func() {
		runExitHooks()
		if exitCode != 0 {
			os.Exit(exitCode)
		}
	}()

	// SIGINT/SIGTERM and -timeout cancel the run cooperatively: the
	// pipeline stops at its next checkpoint and, when a search is far
	// enough along, degrades to the best-so-far result (exit 3).
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	atExit(stopSignals)
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		atExit(cancel)
	}
	// After the first cancellation, restore default signal handling so a
	// second Ctrl-C kills the process the ordinary way instead of being
	// swallowed while the pipeline drains to its next checkpoint.
	go func() { <-ctx.Done(); stopSignals() }()

	if stop, err := prof.Start(); err != nil {
		fatal(err)
	} else {
		atExit(func() {
			if err := stop(); err != nil {
				slog.Error("stopping profilers", "err", err)
			}
		})
	}

	// -spans or -metrics-out (or both) turn the observability layer on;
	// the live registry is also published on expvar for /debug/vars.
	var observer *obs.Observer
	if *spansPath != "" || *metricsOut != "" {
		var sink obs.Sink
		if *spansPath != "" {
			f, err := os.Create(*spansPath)
			if err != nil {
				fatal(err)
			}
			js := obs.NewJSONLSink(f)
			sink = js
			atExit(func() {
				if err := js.Err(); err != nil {
					slog.Error("writing span trace", "path", *spansPath, "err", err)
				}
				if err := f.Close(); err != nil {
					slog.Error("closing span trace", "path", *spansPath, "err", err)
				}
			})
		}
		observer = obs.New(sink)
		if err := obs.PublishExpvar("arcs", observer.Registry()); err != nil {
			slog.Warn("publishing expvar snapshot", "err", err)
		}
		// Flush the final registry state into the trace before the sink
		// closes (hooks run last-registered-first), so arcstrace sees the
		// run's counters and histograms alongside its spans.
		atExit(func() { observer.FlushMetrics() })
		if *metricsOut != "" {
			path := *metricsOut
			atExit(func() {
				f, err := os.Create(path)
				if err != nil {
					slog.Error("creating metrics file", "path", path, "err", err)
					return
				}
				snap := observer.Registry().Snapshot()
				if err := obs.WritePrometheus(f, snap, "arcs"); err != nil {
					slog.Error("writing metrics", "path", path, "err", err)
				}
				if err := f.Close(); err != nil {
					slog.Error("closing metrics file", "path", path, "err", err)
				}
			})
		}
	}

	outFormat, err := report.ParseFormat(*format)
	if err != nil {
		fatal(err)
	}

	// Input always goes through the CSV stream wrapped in the resilient
	// layer — transient errors are retried with backoff and bad rows
	// (parse failures, non-finite values) are quarantined with row
	// numbers within the -max-bad-rows budget. Without -stream the
	// cleaned rows are then materialized into memory, so the quarantine
	// policy applies identically in both modes.
	schema, err := dataset.InferCSVSchema(*in, 10_000)
	if err != nil {
		fatal(err)
	}
	cs, err := dataset.OpenCSVStream(*in, schema)
	if err != nil {
		fatal(err)
	}
	resilient := dataset.NewResilient(cs,
		dataset.Retry{Max: *retries, Seed: *seed},
		dataset.Quarantine{MaxBadRows: *maxBadRows,
			OnBad: func(reason string, row int, err error) {
				slog.Debug("quarantined row", "reason", reason, "row", row, "err", err)
			}})
	if observer != nil {
		resilient.Observe(observer.Registry())
	}
	atExit(func() {
		if st := resilient.Stats(); st.Total() > 0 || st.Retries > 0 {
			slog.Warn("input degradation",
				"rows_quarantined", st.Total(), "by_reason", st.Quarantined,
				"retries", st.Retries)
		}
	})

	var src dataset.Source
	if *stream {
		defer cs.Close()
		src = resilient
		if *ingestW > 1 {
			slog.Warn("-ingest-workers needs an in-memory source; streaming ingest stays sequential")
		}
	} else {
		tb, err := dataset.Materialize(resilient)
		if cerr := cs.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		src = tb
	}

	if *describe {
		tb, err := dataset.Materialize(src)
		if err != nil {
			fatal(err)
		}
		fmt.Print(dataset.RenderSummary(dataset.Summarize(tb), 8))
		return
	}

	budget, err := counts.ParseBudget(*memBudget)
	if err != nil {
		fatal(err)
	}
	cfg := core.Config{
		XAttr: *xAttr, YAttr: *yAttr,
		CritAttr: *critAttr, CritValue: *critValue,
		NumBins:            *bins,
		PruneFraction:      *prune,
		InterestLift:       *lift,
		FixedMinSupport:    *minSup,
		FixedMinConfidence: *minConf,
		Seed:               *seed,
		IngestWorkers:      *ingestW,
		MemBudget:          budget,
		CountsBackend:      *backend,
		SpillDir:           *spillDir,
		Walk:               optimizer.ThresholdWalk{},
		Observer:           observer,
	}
	switch *smoothing {
	case "binary":
		cfg.Smoothing = core.SmoothBinary
	case "off":
		cfg.Smoothing = core.SmoothOff
	case "weighted":
		cfg.Smoothing = core.SmoothWeighted
	case "morphological":
		cfg.Smoothing = core.SmoothMorphological
	default:
		fatal(fmt.Errorf("unknown smoothing %q", *smoothing))
	}
	switch *binning {
	case "equi-width":
		cfg.BinStrategy = core.BinEquiWidth
	case "equi-depth":
		cfg.BinStrategy = core.BinEquiDepth
	case "homogeneity":
		cfg.BinStrategy = core.BinHomogeneity
	case "supervised":
		cfg.BinStrategy = core.BinSupervised
	default:
		fatal(fmt.Errorf("unknown binning %q", *binning))
	}
	switch *search {
	case "walk":
		cfg.Search = core.SearchWalk
	case "anneal":
		cfg.Search = core.SearchAnneal
	case "factorial":
		cfg.Search = core.SearchFactorial
	case "fixed":
		cfg.Search = core.SearchFixed
	default:
		fatal(fmt.Errorf("unknown search %q", *search))
	}

	sys, err := core.NewContext(ctx, src, cfg)
	if err != nil {
		if wasCanceled(err) {
			fatalCode(err, exitCanceled)
		}
		fatal(err)
	}

	if *critValue != "" {
		res, err := sys.RunContext(ctx)
		if err != nil {
			re := core.AsRunError(err)
			switch {
			case re != nil && re.Partial && res != nil:
				slog.Warn("run canceled mid-search; printing best-so-far (degraded) result", "cause", err)
				exitCode = exitCanceled
			case wasCanceled(err):
				fatalCode(err, exitCanceled)
			default:
				fatal(err)
			}
		}
		if *showGrid {
			bm, err := sys.Grid(*critValue, res.MinSupport, res.MinConfidence)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("rule grid for %s = %s with clusters (y grows upward):\n%s",
				*critAttr, *critValue, report.RenderGrid(bm, res.Rules))
			fmt.Print(report.RenderGridLegend(res.Rules))
			fmt.Println()
		}
		if err := report.WriteResult(os.Stdout, res, outFormat); err != nil {
			fatal(err)
		}
		if *save != "" {
			if err := saveModel(*save, res); err != nil {
				fatal(err)
			}
		}
		printTrace(res, *verbose)
		return
	}
	if *save != "" {
		fatal(fmt.Errorf("-save requires -value"))
	}
	results, err := sys.SegmentAllContext(ctx)
	if err != nil {
		re := core.AsRunError(err)
		switch {
		case re != nil && re.Partial && len(results) > 0:
			slog.Warn("segmentation canceled; printing the groups that completed", "cause", err)
			exitCode = exitCanceled
		case wasCanceled(err):
			fatalCode(err, exitCanceled)
		default:
			fatal(err)
		}
	}
	labels := make([]string, 0, len(results))
	for label := range results {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	if err := report.WriteAll(os.Stdout, results, labels, outFormat); err != nil {
		fatal(err)
	}
	if *verbose {
		for _, label := range labels {
			printTrace(results[label], true)
		}
	}
}

func saveModel(path string, res *core.Result) error {
	model, err := segment.New(res.Rules, res.MinSupport, res.MinConfidence)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return model.Write(f)
}

func printTrace(res *core.Result, verbose bool) {
	if !verbose {
		return
	}
	for _, s := range res.Trace {
		note := s.Reason
		if s.CacheHit {
			note += ", cached"
		}
		if note != "" {
			note = " (" + note + ")"
		}
		fmt.Printf("  probe sup=%.5f conf=%.3f -> %d rules, cost %.2f%s\n",
			s.Support, s.Confidence, s.NumRules, s.Cost, note)
	}
	p := res.Provenance
	fmt.Printf("  search: %d probes, %d accepted, %d zero-rules, %d no-improvement, %d cache hits\n",
		p.Probes, p.Accepted, p.ZeroRules, p.NoImprovement, p.CacheHits)
}

// exitCode is the process status set on the graceful-degradation paths;
// the deferred block in main applies it after the exit hooks have run,
// so traces and metrics flush even on a canceled run.
var exitCode int

// wasCanceled reports whether err stems from context cancellation
// (SIGINT/SIGTERM) or deadline expiry (-timeout).
func wasCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// fatalCode is fatal with an explicit exit status.
func fatalCode(err error, code int) {
	runExitHooks()
	slog.Error(err.Error())
	os.Exit(code)
}

// exitHooks run once, either on normal return from main (via defer) or
// from fatal before os.Exit, so profiles, span traces, and metric files
// are flushed on every path.
var exitHooks []func()

func atExit(fn func()) { exitHooks = append(exitHooks, fn) }

func runExitHooks() {
	hooks := exitHooks
	exitHooks = nil
	for i := len(hooks) - 1; i >= 0; i-- {
		hooks[i]()
	}
}

func fatal(err error) {
	runExitHooks()
	slog.Error(err.Error())
	os.Exit(1)
}
