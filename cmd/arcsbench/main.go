// Command arcsbench regenerates the tables and figures of the ARCS
// paper's evaluation section (§4). Each experiment prints the same rows
// or series the paper reports; absolute numbers differ from the 1997
// hardware, but the shapes (who wins, by what factor, where C4.5 drops
// out) are the point of comparison.
//
// Usage:
//
//	arcsbench -exp rules                # §4.2: recovered clustered rules
//	arcsbench -exp fig11               # error rate vs tuples, U=0
//	arcsbench -exp fig12               # error rate vs tuples, U=10%
//	arcsbench -exp fig13               # rules produced, U=0
//	arcsbench -exp fig14               # rules produced, U=10%
//	arcsbench -exp fig15               # ARCS scale-up
//	arcsbench -exp table2              # comparative execution times
//	arcsbench -exp bins                # bin-granularity study
//	arcsbench -exp smoothing           # Figure 7 before/after grids
//	arcsbench -exp ablation            # design-choice ablations
//	arcsbench -exp why                 # §1 motivation: rule-count comparison
//	arcsbench -exp feedbackloop        # search-loop probes/sec + cache hit-rate
//	arcsbench -exp ingest              # counting pass: dense vs sharded workers
//	arcsbench -exp quality             # mining quality across all 10 functions
//	arcsbench -exp all                 # everything
//
// -scale shrinks every database size by the given factor for quick runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"arcs/internal/binarray"
	"arcs/internal/counts"
	"arcs/internal/experiments"
	"arcs/internal/obs"
)

// Exit codes: 0 success, 1 fatal error, 2 usage, 3 canceled (SIGINT or
// -timeout) — experiments already printed stand as partial results.
const exitCanceled = 3

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: rules, fig11, fig12, fig13, fig14, fig15, table2, bins, smoothing, ablation, why, feedbackloop, ingest, quality, all")
		ingestW   = flag.String("ingest-workers", "2,4,8", "comma-separated worker counts for -exp ingest")
		ingestN   = flag.String("ingest-tuples", "1000000,2000000,5000000,10000000", "comma-separated workload sizes for -exp ingest (each divided by -scale)")
		ingestB   = flag.String("ingest-backends", "sparse,spill", "comma-separated count backends swept by -exp ingest alongside dense (sparse, spill; empty skips the backend dimension)")
		memBudget = flag.String("mem-budget", "", "advisory memory budget for count structures: bytes with optional K/M/G/T suffix, or 'off' for unlimited (empty keeps the 1 GiB default)")
		scale     = flag.Int("scale", 1, "divide every database size by this factor")
		c45Cap    = flag.Int("c45cap", 200_000, "largest database C4.5 is attempted on (the paper's C4.5 ran out of memory beyond 100k)")
		testN     = flag.Int("testn", 10_000, "held-out test table size")
		timeout   = flag.Duration("timeout", 0, "overall budget; experiments not yet started when it expires are skipped and the process exits 3")
		verbose   = flag.Bool("v", false, "debug logging")
		logFormat = flag.String("log-format", "text", "log output format: text, json")
		spansPath = flag.String("spans", "", "write a JSONL span trace of the feedbackloop experiment to this file")
		prof      obs.Profiler
	)
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if _, err := obs.SetupSlog(os.Stderr, *logFormat, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "arcsbench:", err)
		os.Exit(2)
	}
	defer func() {
		runExitHooks()
		if exitCode != 0 {
			os.Exit(exitCode)
		}
	}()
	if *scale < 1 {
		fatal(fmt.Errorf("scale must be >= 1"))
	}
	// The experiments build their core.Configs internally, so the budget
	// flag lands in the process-wide default (set once, before any
	// builds start) rather than being plumbed through every experiment.
	if budget, err := counts.ParseBudget(*memBudget); err != nil {
		fatal(err)
	} else if budget != 0 {
		binarray.DefaultMemBudget = budget
	}

	// SIGINT/SIGTERM and -timeout cancel the suite between experiments:
	// completed tables have already been printed, the rest are skipped.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	atExit(stopSignals)
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		atExit(cancel)
	}
	// After the first cancellation, restore default signal handling so a
	// second Ctrl-C kills the process the ordinary way instead of being
	// swallowed while a long experiment finishes.
	go func() { <-ctx.Done(); stopSignals() }()
	if stop, err := prof.Start(); err != nil {
		fatal(err)
	} else {
		atExit(func() {
			if err := stop(); err != nil {
				slog.Error("stopping profilers", "err", err)
			}
		})
	}

	// The paper's Figure 11-14 sizes: 20k to 1M tuples.
	figSizes := scaled([]int{20_000, 50_000, 100_000, 200_000, 500_000, 1_000_000}, *scale)
	// Figure 15: 100k to 10M.
	scaleupSizes := scaled([]int{100_000, 200_000, 500_000, 1_000_000, 2_000_000, 4_000_000, 10_000_000}, *scale)

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := ctx.Err(); err != nil {
			if exitCode == 0 {
				slog.Warn("suite canceled; skipping remaining experiments", "cause", err)
				exitCode = exitCanceled
			}
			slog.Debug("skipped experiment", "exp", name)
			return
		}
		fmt.Printf("\n===== %s =====\n", name)
		if err := fn(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
	}

	run("rules", func() error {
		res, err := experiments.RecoveredRules()
		if err != nil {
			return err
		}
		fmt.Println("paper §4.2: 50,000 tuples, P=5%, U=10% — expected ~3 rules matching the F2 disjuncts")
		for _, r := range res.Rules {
			fmt.Printf("  %s   [support %.4f, confidence %.2f]\n", r, r.Support, r.Confidence)
		}
		fmt.Printf("thresholds sup=%.5f conf=%.3f, verification %s\n",
			res.MinSupport, res.MinConfidence, res.Errors)
		return nil
	})

	// The four comparison figures and Table 2 are views of two sweeps
	// (U=0 and U=10%); cache them so -exp all runs each sweep once.
	var sweeps [2][]experiments.ComparisonRow
	sweep := func(outliers float64) ([]experiments.ComparisonRow, error) {
		idx := 0
		if outliers > 0 {
			idx = 1
		}
		if sweeps[idx] != nil {
			return sweeps[idx], nil
		}
		rows, err := experiments.Comparison(figSizes, outliers, *c45Cap, *testN)
		if err != nil {
			return nil, err
		}
		sweeps[idx] = rows
		return rows, nil
	}
	comparison := func(outliers float64, times bool) func() error {
		return func() error {
			rows, err := sweep(outliers)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderComparison(rows, times))
			return nil
		}
	}
	run("fig11", func() error {
		fmt.Println("Figure 11: error rate vs database size, U=0 (ARCS vs C4.5 rules)")
		return comparison(0, false)()
	})
	run("fig12", func() error {
		fmt.Println("Figure 12: error rate vs database size, U=10%")
		return comparison(0.10, false)()
	})
	run("fig13", func() error {
		fmt.Println("Figure 13: number of rules produced, U=0")
		return comparison(0, false)()
	})
	run("fig14", func() error {
		fmt.Println("Figure 14: number of rules produced, U=10%")
		return comparison(0.10, false)()
	})

	run("fig15", func() error {
		fmt.Println("Figure 15: ARCS scale-up (streaming, constant memory)")
		rows, err := experiments.Scaleup(scaleupSizes)
		if err != nil {
			return err
		}
		fmt.Printf("%12s %12s %16s\n", "tuples", "time", "tuples/sec")
		for _, r := range rows {
			fmt.Printf("%12d %12s %16.0f\n", r.N, experiments.FormatDuration(r.Elapsed), r.TuplesPerSec)
		}
		fmt.Printf("per-tuple time ratio (largest/smallest): %.2f (<= ~1 means linear or better)\n",
			experiments.LinearityCheck(rows))
		return nil
	})

	run("table2", func() error {
		fmt.Println("Table 2: comparative execution times (seconds)")
		rows, err := sweep(0)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderComparison(rows, true))
		return nil
	})

	run("bins", func() error {
		fmt.Println("§4.2 bin-granularity study: error vs bins per attribute")
		rows, err := experiments.BinGranularity(max(50_000 / *scale, 10_000), []int{10, 20, 30, 40, 50}, *testN)
		if err != nil {
			return err
		}
		fmt.Printf("%6s %12s %12s %16s\n", "bins", "test err%", "rules", "geometric err%")
		for _, r := range rows {
			fmt.Printf("%6d %12.2f %12d %16.2f\n", r.Bins, r.ErrorPct, r.NumRules, r.GeomErrorPct)
		}
		return nil
	})

	run("why", func() error {
		fmt.Println("§1 motivation: rules a user must read, same data (F2, U=10%), three regimes")
		res, err := experiments.WhyClustering(max(50_000 / *scale, 10_000), 50)
		if err != nil {
			return err
		}
		fmt.Printf("  raw 2D cell rules:              %d\n", res.CellRules)
		fmt.Printf("  quantitative interval rules:    %d   (Srikant-Agrawal, interest-pruned)\n", res.QuantRules)
		fmt.Printf("  ARCS clustered rules:           %d   (%.2f%% verification error)\n",
			res.ClusteredRules, res.ClusteredErrPct)
		return nil
	})

	run("ablation", func() error {
		fmt.Println("design-choice ablations (noisy F2, 20k tuples unless scaled)")
		studies, err := experiments.Ablations(max(20_000 / *scale, 5_000))
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderAblations(studies))
		return nil
	})

	run("feedbackloop", func() error {
		fmt.Println("threshold-search feedback loop: sequential vs batched worker pool, cache cold vs warm")
		var sink obs.Sink
		if *spansPath != "" {
			f, err := os.Create(*spansPath)
			if err != nil {
				return err
			}
			js := obs.NewJSONLSink(f)
			sink = js
			defer func() {
				if err := js.Err(); err != nil {
					slog.Error("writing span trace", "path", *spansPath, "err", err)
				}
				if err := f.Close(); err != nil {
					slog.Error("closing span trace", "path", *spansPath, "err", err)
				}
			}()
		}
		report, err := experiments.FeedbackLoop(figSizes[0], runtime.GOMAXPROCS(0), sink)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFeedbackLoop(report))
		// Append to the trajectory rather than overwriting: the latest
		// report stays readable at the top level, and every run lands in
		// the history keyed by git SHA + timestamp.
		const out = "BENCH_feedbackloop.json"
		if err := experiments.AppendBenchReport(out, report, experiments.GitSHA(), time.Now()); err != nil {
			return err
		}
		fmt.Printf("appended run to %s\n", out)
		return nil
	})

	run("ingest", func() error {
		fmt.Println("counting pass: dense vs sparse/spill backends, sequential vs sharded ingest (byte-identity re-checked)")
		workers, err := parseWorkers(*ingestW)
		if err != nil {
			return err
		}
		sizes, err := parseSizes(*ingestN, *scale)
		if err != nil {
			return err
		}
		backends, err := parseBackends(*ingestB)
		if err != nil {
			return err
		}
		report, benchErr := experiments.IngestBench(ctx, sizes, 50, workers, backends)
		if benchErr != nil && report == nil {
			return benchErr
		}
		if report.Partial {
			// Canceled mid-run (SIGINT or -timeout): the completed sizes
			// are valid measurements — print and append them, then let
			// the suite exit with the cancellation status.
			slog.Warn("ingest bench canceled; appending partial trajectory", "cause", benchErr)
		} else if benchErr != nil {
			return benchErr
		}
		fmt.Print(experiments.RenderIngest(report))
		const out = "BENCH_ingest.json"
		if len(report.Sizes) > 0 {
			rec := experiments.IngestBenchRecord(report, experiments.GitSHA(), time.Now())
			if err := experiments.AppendBenchRecord(out, rec); err != nil {
				return err
			}
			fmt.Printf("appended run to %s\n", out)
		}
		return nil
	})

	run("quality", func() error {
		fmt.Println("mining quality across all 10 classification functions: error, recovery, interestingness")
		report, err := experiments.Quality(max(50_000 / *scale, 5_000), *testN)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderQuality(report))
		// Append to the quality trajectory: one row per function, keyed
		// by git SHA + timestamp, so `arcstrace diff BENCH_quality.json`
		// gates error-rate and recovery-IoU drift across commits.
		const out = "BENCH_quality.json"
		rec := experiments.QualityBenchRecord(report, experiments.GitSHA(), time.Now())
		if err := experiments.AppendBenchRecord(out, rec); err != nil {
			return err
		}
		fmt.Printf("appended run to %s\n", out)
		return nil
	})

	run("smoothing", func() error {
		fmt.Println("Figure 7: rule grid before and after the low-pass filter")
		before, after, err := experiments.SmoothingDemo(max(20_000 / *scale, 5_000), 30)
		if err != nil {
			return err
		}
		fmt.Printf("before:\n%s\nafter:\n%s", before, after)
		return nil
	})

	// A budget that expired while the final experiment was running has no
	// later checkpoint to notice it; report the overrun in the exit code.
	if err := ctx.Err(); err != nil && exitCode == 0 {
		slog.Warn("budget expired during the suite; results printed are partial", "cause", err)
		exitCode = exitCanceled
	}
}

// parseWorkers parses the -ingest-workers list ("2,4,8").
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -ingest-workers entry %q", part)
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-ingest-workers is empty")
	}
	return out, nil
}

// parseBackends parses the -ingest-backends list ("sparse,spill").
func parseBackends(s string) ([]counts.Kind, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []counts.Kind
	for _, part := range strings.Split(s, ",") {
		k, err := counts.ParseKind(part)
		if err != nil {
			return nil, fmt.Errorf("bad -ingest-backends entry %q: %w", part, err)
		}
		out = append(out, k)
	}
	return out, nil
}

// parseSizes parses the -ingest-tuples list, applies -scale and clamps
// each size to a floor that still exercises the sharded path.
func parseSizes(s string, scale int) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -ingest-tuples entry %q", part)
		}
		out = append(out, max(n/scale, 50_000))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-ingest-tuples is empty")
	}
	// Deduplicate after clamping (aggressive -scale collapses sizes).
	dedup := out[:0]
	for _, v := range out {
		if len(dedup) == 0 || dedup[len(dedup)-1] != v {
			dedup = append(dedup, v)
		}
	}
	return dedup, nil
}

func scaled(sizes []int, scale int) []int {
	out := make([]int, len(sizes))
	for i, s := range sizes {
		out[i] = s / scale
		if out[i] < 5_000 {
			out[i] = 5_000
		}
	}
	// Deduplicate after clamping.
	dedup := out[:0]
	for _, v := range out {
		if len(dedup) == 0 || dedup[len(dedup)-1] != v {
			dedup = append(dedup, v)
		}
	}
	return dedup
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// exitCode is the process status set on the graceful-cancellation path;
// the deferred block in main applies it after the exit hooks have run,
// so profiles flush even on a canceled suite.
var exitCode int

// exitHooks run once, either on normal return from main (via defer) or
// from fatal before os.Exit, so profiles are flushed on every path.
var exitHooks []func()

func atExit(fn func()) { exitHooks = append(exitHooks, fn) }

func runExitHooks() {
	hooks := exitHooks
	exitHooks = nil
	for i := len(hooks) - 1; i >= 0; i-- {
		hooks[i]()
	}
}

func fatal(err error) {
	runExitHooks()
	slog.Error(err.Error())
	os.Exit(1)
}
