package main

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"arcs/internal/counts"
	"arcs/internal/dataset"
	"arcs/internal/experiments"
)

// ingestFixture materializes the benchmark table once per process; at a
// million rows the synthesis dominates any single measurement otherwise.
var ingestFixture struct {
	once sync.Once
	tab  *dataset.Table
	spec counts.Spec
	err  error
}

func ingestInputs(b *testing.B, n int) (*dataset.Table, counts.Spec) {
	b.Helper()
	ingestFixture.once.Do(func() {
		ingestFixture.tab, ingestFixture.spec, ingestFixture.err = experiments.IngestSpec(n, 50)
	})
	if ingestFixture.err != nil {
		b.Fatal(ingestFixture.err)
	}
	if ingestFixture.tab.Len() != n {
		b.Fatalf("fixture has %d rows, want %d (mixed -bench sizes?)", ingestFixture.tab.Len(), n)
	}
	return ingestFixture.tab, ingestFixture.spec
}

// BenchmarkIngest measures the counting pass over a million Figure-11
// tuples: the sequential dense build against the sharded build at 1, 2,
// 4 and 8 workers. The acceptance bar for the sharded backend is >= 2x
// the dense throughput at 4 workers on multi-core hardware.
func BenchmarkIngest(b *testing.B) {
	const n = 1_000_000
	tab, spec := ingestInputs(b, n)
	b.Run("dense", func(b *testing.B) {
		b.SetBytes(int64(n))
		for i := 0; i < b.N; i++ {
			if _, err := counts.Build(context.Background(), tab, spec, counts.Options{Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("sharded-%d", workers), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				if _, err := counts.BuildSharded(context.Background(), tab, spec, counts.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
