// Benchmarks regenerating the paper's tables and figures (run with
//
//	go test -bench=. -benchmem
//
// ). Accuracy-style figures report their numbers as custom benchmark
// metrics (err_pct, rules); timing-style figures and tables are ordinary
// wall-clock benchmarks. The arcsbench command prints the same data as
// readable tables at full scale.
package arcs

import (
	"fmt"
	"reflect"
	"testing"

	"arcs/internal/bitop"
	"arcs/internal/core"
	"arcs/internal/experiments"
	"arcs/internal/filter"
	"arcs/internal/grid"
	"arcs/internal/optimizer"
	"arcs/internal/synth"
)

// benchComparison is the shared body of the Figure 11-14 benchmarks: one
// ARCS + C4.5 comparison at the given outlier fraction, reported as
// metrics.
func benchComparison(b *testing.B, outliers float64) {
	b.Helper()
	const n = 20_000
	var rows []experiments.ComparisonRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Comparison([]int{n}, outliers, n, 5_000)
		if err != nil {
			b.Fatal(err)
		}
	}
	r := rows[0]
	b.ReportMetric(r.ARCSErrorPct, "arcs_err_pct")
	b.ReportMetric(r.C45ErrorPct, "c45_err_pct")
	b.ReportMetric(float64(r.ARCSRules), "arcs_rules")
	b.ReportMetric(float64(r.C45Rules), "c45_rules")
}

// BenchmarkFig11ErrorRateU0 reproduces Figure 11: ARCS vs C4.5 error
// rate with no outliers.
func BenchmarkFig11ErrorRateU0(b *testing.B) { benchComparison(b, 0) }

// BenchmarkFig12ErrorRateU10 reproduces Figure 12: error rate with 10%
// outliers, where ARCS pulls ahead of C4.5.
func BenchmarkFig12ErrorRateU10(b *testing.B) { benchComparison(b, 0.10) }

// BenchmarkFig13RulesU0 reproduces Figure 13: rules produced with no
// outliers (ARCS stays at ~3, C4.5 grows with the data).
func BenchmarkFig13RulesU0(b *testing.B) { benchComparison(b, 0) }

// BenchmarkFig14RulesU10 reproduces Figure 14: rules produced with 10%
// outliers.
func BenchmarkFig14RulesU10(b *testing.B) { benchComparison(b, 0.10) }

// BenchmarkFig15Scaleup reproduces Figure 15: end-to-end ARCS execution
// time as the database scales. Throughput should stay roughly constant
// (linear scaling, constant memory).
func BenchmarkFig15Scaleup(b *testing.B) {
	for _, n := range []int{100_000, 500_000, 2_000_000} {
		b.Run(fmt.Sprintf("tuples=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Scaleup([]int{n})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rows[0].TuplesPerSec, "tuples/sec")
			}
		})
	}
}

// BenchmarkTable2 reproduces Table 2: comparative execution times of
// ARCS vs C4.5 vs C4.5 + C4.5RULES on the same database.
func BenchmarkTable2(b *testing.B) {
	const n = 20_000
	test, err := experiments.TestTable(2_000, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("ARCS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := experiments.RunARCS(n, 0, 50, test); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("C45", func(b *testing.B) {
		var treeSecs float64
		for i := 0; i < b.N; i++ {
			out, err := experiments.RunC45(n, 0, test)
			if err != nil {
				b.Fatal(err)
			}
			treeSecs = out.TreeTime.Seconds()
		}
		b.ReportMetric(treeSecs, "tree_sec")
	})
}

// BenchmarkBinGranularity reproduces the §4.2 bin-count study: error as
// the number of bins per attribute grows from 10 to 50.
func BenchmarkBinGranularity(b *testing.B) {
	test, err := experiments.TestTable(2_000, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, bins := range []int{10, 30, 50} {
		b.Run(fmt.Sprintf("bins=%d", bins), func(b *testing.B) {
			var errPct float64
			for i := 0; i < b.N; i++ {
				_, rate, _, err := experiments.RunARCS(20_000, 0, bins, test)
				if err != nil {
					b.Fatal(err)
				}
				errPct = 100 * rate
			}
			b.ReportMetric(errPct, "err_pct")
		})
	}
}

// BenchmarkSmoothing measures the Figure 7 preprocessing step: the 3×3
// low-pass filter over a dense rule grid, at the paper's 50×50 preset
// and at the 1000×1000 size §3.3.1 mentions as comfortably in-memory.
func BenchmarkSmoothing(b *testing.B) {
	for _, size := range []int{50, 1000} {
		b.Run(fmt.Sprintf("grid=%dx%d", size, size), func(b *testing.B) {
			bm, _ := grid.New(size, size)
			for r := 0; r < size; r++ {
				for c := 0; c < size; c++ {
					if (r*31+c*17)%3 != 0 {
						bm.Set(r, c)
					}
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := filter.LowPass(bm, 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation benchmarks for the design choices DESIGN.md calls out ---

// BenchmarkBitOpWords quantifies the word-packed bitmap against the
// naive bool-matrix BitOp on identical grids.
func BenchmarkBitOpWords(b *testing.B) {
	const size = 200
	bm, _ := grid.New(size, size)
	cells := make([][]bool, size)
	for r := 0; r < size; r++ {
		cells[r] = make([]bool, size)
		for c := 0; c < size; c++ {
			if (r/13+c/11)%2 == 0 {
				bm.Set(r, c)
				cells[r][c] = true
			}
		}
	}
	b.Run("packed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bitop.Cluster(bm, bitop.Options{MinArea: 4})
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bitop.ClusterNaive(cells, bitop.Options{MinArea: 4})
		}
	})
}

// benchSystem builds a reusable ARCS system over Function 2 data.
func benchSystem(b *testing.B, cfg core.Config) *core.System {
	b.Helper()
	gen, err := synth.New(synth.Config{
		Function: 2, N: 20_000, Seed: 1,
		Perturbation: 0.05, OutlierFraction: 0.10, FracA: 0.4,
	})
	if err != nil {
		b.Fatal(err)
	}
	if cfg.XAttr == "" {
		cfg.XAttr, cfg.YAttr = synth.AttrAge, synth.AttrSalary
		cfg.CritAttr, cfg.CritValue = synth.AttrGroup, synth.GroupA
	}
	sys, err := core.New(gen, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkAblationSmoothing compares segmentation error across the
// smoothing modes (off / binary / support-weighted).
func BenchmarkAblationSmoothing(b *testing.B) {
	for _, mode := range []core.SmoothingMode{core.SmoothOff, core.SmoothBinary, core.SmoothWeighted, core.SmoothMorphological} {
		b.Run(mode.String(), func(b *testing.B) {
			sys := benchSystem(b, core.Config{NumBins: 50, Smoothing: mode,
				Walk: optimizer.ThresholdWalk{MaxSupportLevels: 12, MaxConfLevels: 8, MaxEvals: 100}})
			var errPct float64
			for i := 0; i < b.N; i++ {
				res, err := sys.Run()
				if err != nil {
					b.Fatal(err)
				}
				errPct = 100 * res.Errors.Rate()
			}
			b.ReportMetric(errPct, "err_pct")
		})
	}
}

// BenchmarkAblationPruning compares cluster counts across pruning
// thresholds (0% disables §3.5's dynamic pruning).
func BenchmarkAblationPruning(b *testing.B) {
	for _, frac := range []float64{-1, 0.005, 0.01, 0.05} {
		name := fmt.Sprintf("prune=%g", frac)
		if frac < 0 {
			name = "prune=off"
		}
		b.Run(name, func(b *testing.B) {
			sys := benchSystem(b, core.Config{NumBins: 50, PruneFraction: frac,
				Walk: optimizer.ThresholdWalk{MaxSupportLevels: 12, MaxConfLevels: 8, MaxEvals: 100}})
			var rules float64
			for i := 0; i < b.N; i++ {
				res, err := sys.Run()
				if err != nil {
					b.Fatal(err)
				}
				rules = float64(len(res.Rules))
			}
			b.ReportMetric(rules, "rules")
		})
	}
}

// BenchmarkAblationSearch compares the three threshold-search strategies
// on cost and probe count.
func BenchmarkAblationSearch(b *testing.B) {
	cfgs := []struct {
		name string
		cfg  core.Config
	}{
		{"walk", core.Config{Search: core.SearchWalk,
			Walk: optimizer.ThresholdWalk{MaxSupportLevels: 12, MaxConfLevels: 8, MaxEvals: 100}}},
		{"anneal", core.Config{Search: core.SearchAnneal,
			Anneal: optimizer.Anneal{Seed: 1, Iterations: 100}}},
		{"factorial", core.Config{Search: core.SearchFactorial,
			Factorial: optimizer.Factorial{Rounds: 6}}},
	}
	for _, c := range cfgs {
		b.Run(c.name, func(b *testing.B) {
			cfg := c.cfg
			cfg.NumBins = 50
			sys := benchSystem(b, cfg)
			var cost, probes float64
			for i := 0; i < b.N; i++ {
				res, err := sys.Run()
				if err != nil {
					b.Fatal(err)
				}
				cost = res.Cost
				probes = float64(res.Evaluations)
			}
			b.ReportMetric(cost, "mdl_cost")
			b.ReportMetric(probes, "probes")
		})
	}
}

// BenchmarkAblationBinStrategy compares equi-width, equi-depth and
// homogeneity binning on segmentation error.
func BenchmarkAblationBinStrategy(b *testing.B) {
	for _, strat := range []core.BinStrategy{core.BinEquiWidth, core.BinEquiDepth, core.BinHomogeneity, core.BinSupervised} {
		b.Run(strat.String(), func(b *testing.B) {
			sys := benchSystem(b, core.Config{NumBins: 50, BinStrategy: strat,
				Walk: optimizer.ThresholdWalk{MaxSupportLevels: 12, MaxConfLevels: 8, MaxEvals: 100}})
			var errPct float64
			for i := 0; i < b.N; i++ {
				res, err := sys.Run()
				if err != nil {
					b.Fatal(err)
				}
				errPct = 100 * res.Errors.Rate()
			}
			b.ReportMetric(errPct, "err_pct")
		})
	}
}

// BenchmarkFeedbackLoop measures the full threshold-search feedback loop
// (a Walk over the Figure 11 workload) in three configurations:
// sequential (serial probes, no memoization — the pre-optimization
// baseline), batched with a cold probe cache (worker-pool fan-out, the
// first-run case), and batched warm (steady-state re-runs, e.g. repeated
// SegmentAll traffic). Before timing, it asserts the batched search
// returns results identical to the sequential baseline.
func BenchmarkFeedbackLoop(b *testing.B) {
	walk := optimizer.ThresholdWalk{MaxSupportLevels: 12, MaxConfLevels: 8, MaxEvals: 100}
	base := core.Config{NumBins: 50, Search: core.SearchWalk, Walk: walk}

	seqCfg := base
	seqCfg.SerialSearch, seqCfg.DisableProbeCache = true, true
	seqSys := benchSystem(b, seqCfg)
	seqRes, err := seqSys.Run()
	if err != nil {
		b.Fatal(err)
	}
	parSys := benchSystem(b, base)
	parRes, err := parSys.Run()
	if err != nil {
		b.Fatal(err)
	}
	if !reflect.DeepEqual(seqRes.Trace, parRes.Trace) ||
		seqRes.MinSupport != parRes.MinSupport ||
		seqRes.MinConfidence != parRes.MinConfidence ||
		seqRes.Cost != parRes.Cost ||
		!reflect.DeepEqual(seqRes.Rules, parRes.Rules) {
		b.Fatalf("batched search diverged from sequential baseline:\nseq: %+v\npar: %+v", seqRes, parRes)
	}

	loop := func(sys *core.System, cold bool) func(b *testing.B) {
		return func(b *testing.B) {
			probes := 0
			hitPct := 0.0
			for i := 0; i < b.N; i++ {
				if cold {
					sys.ResetProbeCache()
				}
				res, err := sys.Run()
				if err != nil {
					b.Fatal(err)
				}
				probes += res.Evaluations
				hitPct = 100 * res.Cache.HitRate()
			}
			b.ReportMetric(float64(probes)/b.Elapsed().Seconds(), "probes/sec")
			b.ReportMetric(hitPct, "cache_hit_pct")
		}
	}
	b.Run("sequential", loop(seqSys, false))
	b.Run("batched-cold", loop(parSys, true))
	b.Run("batched-warm", loop(parSys, false))
}

// BenchmarkRemine demonstrates §3.2's claim that changing thresholds is
// nearly instantaneous: once the BinArray is built, a full re-mine at
// new thresholds touches no source data.
func BenchmarkRemine(b *testing.B) {
	sys := benchSystem(b, core.Config{NumBins: 50})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		minConf := 0.3 + float64(i%5)*0.1
		if _, err := sys.MineAt(0.0001, minConf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBinningPass measures the streaming binning throughput — the
// O(N) component that dominates Figure 15.
func BenchmarkBinningPass(b *testing.B) {
	gen, err := synth.New(synth.Config{Function: 2, N: 100_000, Seed: 1, FracA: 0.4})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{
		XAttr: synth.AttrAge, YAttr: synth.AttrSalary,
		CritAttr: synth.AttrGroup, CritValue: synth.GroupA,
		NumBins: 50,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.New(gen, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(0)
	b.ReportMetric(float64(100_000*b.N)/b.Elapsed().Seconds(), "tuples/sec")
}

// BenchmarkBitOpParallel measures the parallel enumeration speedup on a
// large grid (paper §5: "parallel implementations of the algorithm would
// be straightforward").
func BenchmarkBitOpParallel(b *testing.B) {
	const size = 400
	bm, _ := grid.New(size, size)
	for r := 0; r < size; r++ {
		for c := 0; c < size; c++ {
			if (r/17+c/13)%2 == 0 {
				bm.Set(r, c)
			}
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bitop.EnumerateParallel(bm, workers)
			}
		})
	}
}

// BenchmarkWhyClustering regenerates the §1 motivation numbers: raw cell
// rules vs quantitative interval rules vs clustered rules on identical
// data.
func BenchmarkWhyClustering(b *testing.B) {
	var res experiments.WhyClusteringResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.WhyClustering(20_000, 50)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.CellRules), "cell_rules")
	b.ReportMetric(float64(res.QuantRules), "quant_rules")
	b.ReportMetric(float64(res.ClusteredRules), "clustered_rules")
}
