package arcs

import (
	"io"

	"arcs/internal/binning"
	"arcs/internal/cluster"
	"arcs/internal/dataset"
	"arcs/internal/synth"
)

// Data model re-exports: the library speaks in terms of schemas, tuples
// and streaming sources defined in the dataset package.
type (
	// Schema is an ordered collection of attributes.
	Schema = dataset.Schema
	// Attribute describes one column (name + kind).
	Attribute = dataset.Attribute
	// Kind distinguishes quantitative from categorical attributes.
	Kind = dataset.Kind
	// Tuple is one record of encoded values.
	Tuple = dataset.Tuple
	// Table is an in-memory tuple collection implementing Source.
	Table = dataset.Table
	// Source is a resettable stream of tuples.
	Source = dataset.Source
	// MultiRule is a clustered rule over more than two attributes.
	MultiRule = cluster.MultiRule
)

// Attribute kinds.
const (
	Quantitative = dataset.Quantitative
	Categorical  = dataset.Categorical
)

// NewSchema constructs a schema from attributes.
func NewSchema(attrs ...Attribute) *Schema { return dataset.NewSchema(attrs...) }

// NewTable creates an empty in-memory table over a schema.
func NewTable(schema *Schema) *Table { return dataset.NewTable(schema) }

// ReadCSV parses comma-separated data with a header row. A nil schema is
// inferred from the data (numeric columns become quantitative).
func ReadCSV(r io.Reader, schema *Schema) (*Table, error) { return dataset.ReadCSV(r, schema) }

// WriteCSV streams a source as comma-separated text with a header row.
func WriteCSV(w io.Writer, src Source) error { return dataset.WriteCSV(w, src) }

// Materialize drains a source into an in-memory table.
func Materialize(src Source) (*Table, error) { return dataset.Materialize(src) }

// Limit wraps a source, yielding at most n tuples per pass.
func Limit(src Source, n int) Source { return dataset.Limit(src, n) }

// DiscretizeCriterion wraps a source, replacing a quantitative attribute
// with a categorical one whose values are equal-width bins over [lo, hi]
// — the paper's §2.2 provision for using a quantitative attribute as the
// RHS segmentation criterion. Bin labels look like "sales[0,100)".
func DiscretizeCriterion(src Source, attr string, lo, hi float64, bins int) (Source, error) {
	b, err := binning.NewEquiWidth(lo, hi, bins)
	if err != nil {
		return nil, err
	}
	return dataset.Discretize(src, attr, b)
}

// Data robustness re-exports: wrap flaky sources in a Resilient to get
// retry-with-backoff on transient errors and bounded row quarantine.
type (
	// RowError locates one bad input row (path, 1-based row number,
	// machine-readable reason).
	RowError = dataset.RowError
	// Retry configures exponential backoff for transient source errors.
	Retry = dataset.Retry
	// Quarantine bounds how many bad rows a pass may skip.
	Quarantine = dataset.Quarantine
	// Resilient is a Source wrapper applying Retry and Quarantine.
	Resilient = dataset.Resilient
	// ResilientStats counts retries and quarantined rows by reason.
	ResilientStats = dataset.ResilientStats
)

// ErrTooManyBadRows reports a pass that exceeded Quarantine.MaxBadRows.
var ErrTooManyBadRows = dataset.ErrTooManyBadRows

// NewResilient wraps a source with retry and quarantine policies.
func NewResilient(src Source, retry Retry, q Quarantine) *Resilient {
	return dataset.NewResilient(src, retry, q)
}

// AsRowError extracts a *RowError from err's chain, nil when absent.
func AsRowError(err error) *RowError { return dataset.AsRowError(err) }

// IsTransient reports whether any error in err's chain declares itself
// transient (worth retrying).
func IsTransient(err error) bool { return dataset.IsTransient(err) }

// clusterCombine adapts the internal combination entry point.
func clusterCombine(a, b []ClusteredRule) ([]MultiRule, error) { return cluster.Combine(a, b) }

// SynthConfig parameterizes the bundled synthetic data generator — the
// nine-attribute person schema and ten classification functions of
// Agrawal et al. used throughout the paper's evaluation.
type SynthConfig = synth.Config

// NewGenerator constructs a deterministic synthetic tuple source.
func NewGenerator(cfg SynthConfig) (Source, error) { return synth.New(cfg) }

// SynthSchema builds the generator's schema, useful for constructing
// compatible tables by hand.
func SynthSchema() *Schema { return synth.NewSchema() }
