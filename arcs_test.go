package arcs

import (
	"bytes"
	"strings"
	"testing"
)

const demoCSV = `age,salary,group
25,55000,A
30,60000,A
28,70000,A
35,80000,A
50,90000,A
55,100000,A
52,110000,A
45,95000,A
70,40000,A
75,50000,A
72,35000,A
65,60000,A
25,120000,other
30,20000,other
50,30000,other
55,140000,other
70,100000,other
75,130000,other
40,40000,other
60,140000,other
`

func TestPublicAPIEndToEnd(t *testing.T) {
	tb, err := ReadCSV(strings.NewReader(demoCSV), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(tb, Config{
		XAttr: "age", YAttr: "salary",
		CritAttr: "group", CritValue: "A",
		NumBins: 6,
		Walk:    ThresholdWalk{MaxSupportLevels: 6, MaxConfLevels: 4, MaxEvals: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) == 0 {
		t.Fatal("no clustered rules")
	}
	for _, r := range res.Rules {
		if r.CritAttr != "group" || r.CritValue != "A" {
			t.Errorf("rule criterion wrong: %s", r)
		}
		if !strings.Contains(r.String(), "=> group = A") {
			t.Errorf("rule rendering wrong: %s", r)
		}
	}
}

func TestPublicSystemReuse(t *testing.T) {
	tb, err := ReadCSV(strings.NewReader(demoCSV), nil)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(tb, Config{
		XAttr: "age", YAttr: "salary",
		CritAttr: "group", CritValue: "A",
		NumBins: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs1, err := sys.MineAt(0.01, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := sys.MineAt(0.01, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs2) > len(rs1) {
		t.Errorf("tighter confidence produced more rules: %d vs %d", len(rs2), len(rs1))
	}
}

func TestPublicSegmentAll(t *testing.T) {
	tb, err := ReadCSV(strings.NewReader(demoCSV), nil)
	if err != nil {
		t.Fatal(err)
	}
	results, err := SegmentAll(tb, Config{
		XAttr: "age", YAttr: "salary", CritAttr: "group",
		NumBins: 6,
		Walk:    ThresholdWalk{MaxSupportLevels: 5, MaxConfLevels: 3, MaxEvals: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("segments for %d groups, want 2", len(results))
	}
}

func TestPublicSynthGenerator(t *testing.T) {
	gen, err := NewGenerator(SynthConfig{Function: 2, N: 500, Seed: 1, FracA: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := Materialize(gen)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 500 {
		t.Fatalf("generated %d tuples", tb.Len())
	}
	if SynthSchema().Attr("group") == nil {
		t.Error("synth schema missing group")
	}
}

func TestPublicSelectAttributePair(t *testing.T) {
	gen, err := NewGenerator(SynthConfig{Function: 1, N: 3000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := Materialize(gen)
	if err != nil {
		t.Fatal(err)
	}
	x, _, _, err := SelectAttributePair(tb, "group", 10)
	if err != nil {
		t.Fatal(err)
	}
	if x != "age" {
		t.Errorf("top attribute = %s, want age", x)
	}
}

func TestPublicCombineRules(t *testing.T) {
	a := []ClusteredRule{{
		XAttr: "age", YAttr: "salary", CritAttr: "g", CritValue: "A",
		XLo: 20, XHi: 40, YLo: 50_000, YHi: 100_000,
	}}
	b := []ClusteredRule{{
		XAttr: "salary", YAttr: "loan", CritAttr: "g", CritValue: "A",
		XLo: 80_000, XHi: 120_000, YLo: 0, YHi: 300_000,
	}}
	multi, err := CombineRules(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi) != 1 || len(multi[0].Ranges) != 3 {
		t.Fatalf("combined = %v", multi)
	}
}

func TestPublicSchemaConstruction(t *testing.T) {
	s := NewSchema(
		Attribute{Name: "x", Kind: Quantitative},
		Attribute{Name: "g", Kind: Categorical},
	)
	tb := NewTable(s)
	if err := tb.AppendValues(1.5, "yes"); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 1 {
		t.Error("append failed")
	}
}

func TestPublicDiscretizeCriterion(t *testing.T) {
	// Segment on a quantitative criterion (total sales) by binning it
	// into categorical tiers first (paper §2.2).
	gen, err := NewGenerator(SynthConfig{Function: 2, N: 5_000, Seed: 4, FracA: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	src, err := DiscretizeCriterion(gen, "loan", 0, 500_000, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := src.Schema().Attr("loan")
	if a.Kind != Categorical || a.NumCategories() != 4 {
		t.Fatalf("loan not discretized: %v categories", a.NumCategories())
	}
	sys, err := New(src, Config{
		XAttr: "age", YAttr: "salary",
		CritAttr: "loan", CritValue: a.Category(0),
		NumBins: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Loan is independent of (age, salary); mining at zero thresholds
	// must still be structurally sound.
	rs, err := sys.MineAt(0, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.CritAttr != "loan" {
			t.Errorf("rule criterion = %q", r.CritAttr)
		}
	}
}

func TestPublicSegmentModelRoundTrip(t *testing.T) {
	tb, err := ReadCSV(strings.NewReader(demoCSV), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(tb, Config{
		XAttr: "age", YAttr: "salary",
		CritAttr: "group", CritValue: "A",
		NumBins: 6,
		Walk:    ThresholdWalk{MaxSupportLevels: 6, MaxConfLevels: 4, MaxEvals: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewSegmentModel(res)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSegmentModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	applier, err := loaded.Bind(tb.Schema())
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	err = applier.Apply(tb, func(_ Tuple, c bool) error {
		if c {
			covered++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if covered == 0 {
		t.Error("model covers nothing")
	}
}

func TestPublicBaselines(t *testing.T) {
	gen, err := NewGenerator(SynthConfig{Function: 2, N: 3_000, Seed: 6, FracA: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := Materialize(gen)
	if err != nil {
		t.Fatal(err)
	}
	// C4.5 baseline.
	tree, err := TrainC45(tb, "group", C45Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.ErrorRate(tb) > 0.2 {
		t.Errorf("C4.5 training error %.3f", tree.ErrorRate(tb))
	}
	// Apriori over a coarsely binned copy.
	binned, err := DiscretizeCriterion(tb, "salary", 20_000, 150_000, 4)
	if err != nil {
		t.Fatal(err)
	}
	small, err := Materialize(Limit(binned, 500))
	if err != nil {
		t.Fatal(err)
	}
	// Project to 3 columns for tractable itemsets.
	proj := NewTable(NewSchema(
		Attribute{Name: "salary", Kind: Categorical},
		Attribute{Name: "group", Kind: Categorical},
	))
	salIdx := small.Schema().MustIndex("salary")
	grpIdx := small.Schema().MustIndex("group")
	for i := 0; i < small.Len(); i++ {
		r := small.Row(i)
		proj.MustAppend(Tuple{r[salIdx], r[grpIdx]})
	}
	rs, err := MineApriori(proj, AprioriConfig{MinSupport: 0.05, MinConfidence: 0.3, MaxItemsetSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Error("Apriori mined nothing")
	}
	// Quantitative interval rules over the same projection.
	qs, err := MineQuantitative(proj, QuantConfig{
		MinSupport: 0.05, MinConfidence: 0.3, MaxSupport: 0.5,
		RHSAttr: 1, Bins: []int{4, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) == 0 {
		t.Error("quantitative miner mined nothing")
	}
}

func TestPublicCombineChainAndVerify(t *testing.T) {
	ab := []ClusteredRule{{
		XAttr: "age", YAttr: "salary", CritAttr: "group", CritValue: "A",
		XLo: 20, XHi: 40, YLo: 50_000, YHi: 100_000,
	}}
	bc := []ClusteredRule{{
		XAttr: "salary", YAttr: "loan", CritAttr: "group", CritValue: "A",
		XLo: 60_000, XHi: 120_000, YLo: 0, YHi: 200_000,
	}}
	multi, err := CombineChain(ab, bc)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi) != 1 {
		t.Fatalf("combined = %v", multi)
	}
	gen, _ := NewGenerator(SynthConfig{Function: 2, N: 1_000, Seed: 8, FracA: 0.4})
	tb, _ := Materialize(gen)
	stats, err := VerifyMultiRule(multi[0], tb, "group")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Support < 0 || stats.Confidence < 0 {
		t.Errorf("stats = %+v", stats)
	}
	if _, err := VerifyMultiRule(multi[0], tb, "nope"); err == nil {
		t.Error("unknown criterion should error")
	}
}

func TestPublicWriteCSV(t *testing.T) {
	tb, err := ReadCSV(strings.NewReader(demoCSV), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tb.Len() {
		t.Errorf("round trip: %d vs %d rows", back.Len(), tb.Len())
	}
}

func TestPublicMineErrors(t *testing.T) {
	tb, _ := ReadCSV(strings.NewReader(demoCSV), nil)
	if _, err := Mine(tb, Config{}); err == nil {
		t.Error("missing attrs should error")
	}
	if _, err := SegmentAll(tb, Config{}); err == nil {
		t.Error("missing attrs should error in SegmentAll")
	}
}
