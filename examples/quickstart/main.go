// Quickstart: mine clustered association rules from a small in-memory
// table with the one-shot API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"arcs"
)

func main() {
	// Build a toy customer table: age, salary and a rating group. Young
	// customers with mid-range salaries and older customers with low
	// salaries tend to be rated "good".
	schema := arcs.NewSchema(
		arcs.Attribute{Name: "age", Kind: arcs.Quantitative},
		arcs.Attribute{Name: "salary", Kind: arcs.Quantitative},
		arcs.Attribute{Name: "rating", Kind: arcs.Categorical},
	)
	tb := arcs.NewTable(schema)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20_000; i++ {
		age := 20 + rng.Float64()*60
		salary := 20_000 + rng.Float64()*130_000
		rating := "average"
		if (age < 45 && salary >= 50_000 && salary < 100_000) ||
			(age >= 60 && salary < 60_000) {
			rating = "good"
		}
		// 5% label noise keeps it realistic.
		if rng.Float64() < 0.05 {
			if rating == "good" {
				rating = "average"
			} else {
				rating = "good"
			}
		}
		if err := tb.AppendValues(age, salary, rating); err != nil {
			log.Fatal(err)
		}
	}

	// One call: bin, mine, smooth, cluster, verify, optimize thresholds.
	res, err := arcs.Mine(tb, arcs.Config{
		XAttr: "age", YAttr: "salary",
		CritAttr: "rating", CritValue: "good",
		NumBins: 30,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("clustered association rules for rating = good:")
	for _, r := range res.Rules {
		fmt.Printf("  %s   [support %.4f, confidence %.2f]\n", r, r.Support, r.Confidence)
	}
	fmt.Printf("chosen thresholds: support >= %.5f, confidence >= %.3f\n",
		res.MinSupport, res.MinConfidence)
	fmt.Printf("verification against a sample: %s\n", res.Errors)
}
