// ARCS vs C4.5: the paper's §4.2 comparison on one database. Trains both
// systems on Function 2 data with 10% outliers and contrasts the number
// of rules, their readability and their error on held-out data — the
// paper's point being that ARCS produces a handful of rectangular rules
// a human can act on, where C4.5RULES produces several times more, at
// comparable accuracy (and worse once outliers enter).
//
//	go run ./examples/comparec45
package main

import (
	"fmt"
	"log"

	"arcs"
)

func main() {
	const (
		trainN   = 50_000
		testN    = 10_000
		outliers = 0.10
	)
	mkGen := func(seed int64) arcs.Source {
		gen, err := arcs.NewGenerator(arcs.SynthConfig{
			Function: 2, N: trainN, Seed: seed,
			Perturbation: 0.05, OutlierFraction: outliers, FracA: 0.40,
		})
		if err != nil {
			log.Fatal(err)
		}
		return gen
	}

	// Held-out test data from a different seed.
	testGen, err := arcs.NewGenerator(arcs.SynthConfig{
		Function: 2, N: testN, Seed: 99,
		Perturbation: 0.05, OutlierFraction: outliers, FracA: 0.40,
	})
	if err != nil {
		log.Fatal(err)
	}
	test, err := arcs.Materialize(testGen)
	if err != nil {
		log.Fatal(err)
	}

	// --- ARCS ---
	res, err := arcs.Mine(mkGen(1), arcs.Config{
		XAttr: "age", YAttr: "salary",
		CritAttr: "group", CritValue: "A",
		NumBins: 50,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ARCS: %d clustered association rules\n", len(res.Rules))
	for _, r := range res.Rules {
		fmt.Printf("  %s\n", r)
	}
	arcsErr := measureARCS(res.Rules, test)
	fmt.Printf("  held-out error: %.2f%%\n\n", 100*arcsErr)

	// --- C4.5 + C4.5RULES ---
	train, err := arcs.Materialize(mkGen(1))
	if err != nil {
		log.Fatal(err)
	}
	tree, err := arcs.TrainC45(train, "group", arcs.C45Config{})
	if err != nil {
		log.Fatal(err)
	}
	rules := tree.ExtractRules(train)
	fmt.Printf("C4.5RULES: %d rules (tree: %d leaves, depth %d)\n",
		len(rules.Rules), tree.NumLeaves(), tree.Depth())
	for i, s := range rules.Strings() {
		if i == 8 {
			fmt.Printf("  ... %d more\n", len(rules.Rules)-8)
			break
		}
		fmt.Printf("  %s\n", s)
	}
	fmt.Printf("  held-out error: %.2f%%\n", 100*rules.ErrorRate(test))
}

// measureARCS computes the FP+FN rate of the segmentation on the test
// table (a tuple is positive when its group is "A").
func measureARCS(rules []arcs.ClusteredRule, test *arcs.Table) float64 {
	schema := test.Schema()
	ageIdx := schema.MustIndex("age")
	salIdx := schema.MustIndex("salary")
	grpIdx := schema.MustIndex("group")
	codeA, _ := schema.Attr("group").LookupCategory("A")
	wrong := 0
	for i := 0; i < test.Len(); i++ {
		row := test.Row(i)
		covered := false
		for _, r := range rules {
			if r.Covers(row[ageIdx], row[salIdx]) {
				covered = true
				break
			}
		}
		isA := int(row[grpIdx]) == codeA
		if covered != isA {
			wrong++
		}
	}
	return float64(wrong) / float64(test.Len())
}
