// Marketing segmentation: the scenario from the paper's introduction. A
// direct-mail company groups its existing customers into "excellent",
// "above average" and "average" profitability tiers and wants readable
// criteria — in terms of demographic attributes — describing each tier,
// to select new customers for future mailings.
//
// The example builds a synthetic order-history database, derives the
// profitability tiers from total sales, then computes one segmentation
// per tier with a single binning pass (SegmentAll), exactly the re-use
// the BinArray was designed for.
//
//	go run ./examples/marketing
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"arcs"
)

func main() {
	tb := buildCustomerBase(40_000)

	results, err := arcs.SegmentAll(tb, arcs.Config{
		XAttr: "age", YAttr: "income",
		CritAttr: "profitability",
		NumBins:  30,
		Walk:     arcs.ThresholdWalk{MaxSupportLevels: 12, MaxConfLevels: 8, MaxEvals: 100},
	})
	if err != nil {
		log.Fatal(err)
	}

	tiers := make([]string, 0, len(results))
	for tier := range results {
		tiers = append(tiers, tier)
	}
	sort.Strings(tiers)
	for _, tier := range tiers {
		res := results[tier]
		fmt.Printf("== customers rated %q ==\n", tier)
		if len(res.Rules) == 0 {
			fmt.Println("  (no segment found)")
			continue
		}
		for _, r := range res.Rules {
			fmt.Printf("  target %s   [%.1f%% of base, %.0f%% precise]\n",
				r, 100*r.Support, 100*r.Confidence)
		}
		fmt.Printf("  verification: %s\n", res.Errors)
	}

	// The "excellent" rules are the mailing criteria: any prospect whose
	// demographics fall inside one of the rectangles is a likely
	// high-value customer.
	if exc := results["excellent"]; exc != nil && len(exc.Rules) > 0 {
		fmt.Println("\nmailing list criteria (excellent tier):")
		for i, r := range exc.Rules {
			fmt.Printf("  %d. %g <= age < %g and %g <= income < %g\n",
				i+1, r.XLo, r.XHi, r.YLo, r.YHi)
		}
	}
}

// buildCustomerBase synthesizes an order history: profitability is
// driven by (age, income) bands plus noise — established mid-career
// customers with high income are the most profitable, young high-income
// customers are above average, everyone else averages out.
func buildCustomerBase(n int) *arcs.Table {
	schema := arcs.NewSchema(
		arcs.Attribute{Name: "age", Kind: arcs.Quantitative},
		arcs.Attribute{Name: "income", Kind: arcs.Quantitative},
		arcs.Attribute{Name: "orders", Kind: arcs.Quantitative},
		arcs.Attribute{Name: "profitability", Kind: arcs.Categorical},
	)
	tb := arcs.NewTable(schema)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		age := 20 + rng.Float64()*55
		income := 15_000 + rng.Float64()*135_000
		// Expected annual sales by demographic band.
		sales := 200 + rng.NormFloat64()*80
		switch {
		case age >= 40 && age < 62 && income >= 90_000:
			sales += 900 // established, affluent: the core segment
		case age < 35 && income >= 70_000:
			sales += 450 // young professionals
		case age >= 62 && income >= 40_000 && income < 90_000:
			sales += 420 // loyal retirees
		}
		tier := "average"
		switch {
		case sales > 800:
			tier = "excellent"
		case sales > 400:
			tier = "above average"
		}
		orders := sales / 60
		if err := tb.AppendValues(age, income, orders, tier); err != nil {
			log.Fatal(err)
		}
	}
	return tb
}
