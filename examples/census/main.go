// Census-style segmentation on the paper's own benchmark data: the
// Agrawal et al. generator with classification Function 2, 5%
// perturbation and 10% outliers (paper Table 1). The example shows the
// pieces a practitioner would actually touch:
//
//   - automatic LHS attribute selection by information gain (paper §5),
//
//   - the full ARCS feedback loop on the selected pair,
//
//   - a comparison of the three binning strategies.
//
//     go run ./examples/census
package main

import (
	"fmt"
	"log"

	"arcs"
)

func main() {
	gen, err := arcs.NewGenerator(arcs.SynthConfig{
		Function:        2,
		N:               50_000,
		Seed:            1997,
		Perturbation:    0.05,
		OutlierFraction: 0.10,
		FracA:           0.40,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Attribute selection needs a materialized sample.
	sample, err := arcs.Materialize(limit(gen, 10_000))
	if err != nil {
		log.Fatal(err)
	}
	_, _, single, err := arcs.SelectAttributePair(sample, "group", 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("univariate information gain against 'group':")
	for _, s := range single {
		fmt.Printf("  %-12s %.4f\n", s.Attr, s.Gain)
	}
	// Univariate gain misleads on Function 2 (age is marginally flat by
	// construction); joint pair scoring finds the true (age, salary)
	// interaction.
	x, y, pairs, err := arcs.SelectAttributePairJoint(sample, "group", 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top attribute pairs by joint information gain:")
	for i, p := range pairs {
		if i == 3 {
			break
		}
		fmt.Printf("  (%s, %s) %.4f\n", p.X, p.Y, p.Gain)
	}
	fmt.Printf("selected LHS pair: (%s, %s)\n\n", x, y)

	strategies := []struct {
		name string
		cfg  arcs.Config
	}{
		{"equi-width", baseConfig(x, y)},
		{"equi-depth", withStrategy(baseConfig(x, y), arcs.BinEquiDepth)},
		{"homogeneity", withStrategy(baseConfig(x, y), arcs.BinHomogeneity)},
	}
	for _, s := range strategies {
		if err := gen.Reset(); err != nil {
			log.Fatal(err)
		}
		res, err := arcs.Mine(gen, s.cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s binning ==\n", s.name)
		for _, r := range res.Rules {
			fmt.Printf("  %s\n", r)
		}
		fmt.Printf("  %d rules, verification %s\n\n", len(res.Rules), res.Errors)
	}
}

func baseConfig(x, y string) arcs.Config {
	return arcs.Config{
		XAttr: x, YAttr: y,
		CritAttr: "group", CritValue: "A",
		NumBins: 50,
		Seed:    1,
	}
}

func withStrategy(cfg arcs.Config, strat arcs.BinStrategy) arcs.Config {
	cfg.BinStrategy = strat
	return cfg
}

// limit caps a source at n tuples for sampling.
func limit(src arcs.Source, n int) arcs.Source {
	return arcs.Limit(src, n)
}
