// Constant-memory segmentation of a large on-disk CSV — the Figure 15
// regime. The example writes a synthetic CSV to a temp file (stand-in
// for a table that does not fit in RAM), streams it through ARCS with
// CSVStream (two sequential passes, memory bounded by the BinArray and
// the verification sample), then appends a second batch with Extend to
// show the segmentation tracking a growing table without re-reading the
// original data.
//
//	go run ./examples/bigdata [-n 2000000]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"arcs"
	"arcs/internal/dataset"
	"arcs/internal/synth"
)

func main() {
	n := flag.Int("n", 2_000_000, "tuples in the on-disk batch")
	flag.Parse()

	dir, err := os.MkdirTemp("", "arcs-bigdata")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "batch1.csv")

	fmt.Printf("writing %d tuples to %s ...\n", *n, path)
	writeBatch(path, *n, 1)

	// Stream the file: schema inferred from a bounded prefix, then two
	// sequential passes (fit+sample, bin).
	schema, err := dataset.InferCSVSchema(path, 10_000)
	if err != nil {
		log.Fatal(err)
	}
	stream, err := dataset.OpenCSVStream(path, schema)
	if err != nil {
		log.Fatal(err)
	}
	defer stream.Close()

	start := time.Now()
	sys, err := arcs.New(stream, arcs.Config{
		XAttr: "age", YAttr: "salary",
		CritAttr: "group", CritValue: "A",
		NumBins: 50,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	fmt.Printf("segmented %d tuples in %s (%.0f tuples/sec), heap in use %.1f MB\n",
		*n, elapsed.Round(time.Millisecond), float64(*n)/elapsed.Seconds(),
		float64(mem.HeapInuse)/(1<<20))
	for _, r := range res.Rules {
		fmt.Printf("  %s\n", r)
	}
	fmt.Printf("  verification: %s\n\n", res.Errors)

	// A second batch arrives: extend the system incrementally.
	path2 := filepath.Join(dir, "batch2.csv")
	writeBatch(path2, *n/4, 2)
	stream2, err := dataset.OpenCSVStream(path2, schema)
	if err != nil {
		log.Fatal(err)
	}
	defer stream2.Close()
	start = time.Now()
	if err := sys.Extend(stream2); err != nil {
		log.Fatal(err)
	}
	res2, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extended by %d tuples in %s; combined N = %d\n",
		*n/4, time.Since(start).Round(time.Millisecond), sys.BinArray().N())
	for _, r := range res2.Rules {
		fmt.Printf("  %s\n", r)
	}
	fmt.Printf("  verification: %s\n", res2.Errors)
}

// writeBatch emits Function 2 data as CSV.
func writeBatch(path string, n int, seed int64) {
	gen, err := synth.New(synth.Config{
		Function: 2, N: n, Seed: seed,
		Perturbation: 0.05, OutlierFraction: 0.10, FracA: 0.4,
	})
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	if err := dataset.WriteCSV(w, gen); err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}
