// Multi-attribute clusters (the paper's §5 extension): ARCS clusters in
// two dimensions for readability, but overlapping two-attribute rules
// from a chain of attribute pairs can be combined into rules over three
// or more attributes. This example mines (age, salary) and
// (salary, loan) segmentations of a loan-approval dataset, combines them
// into (age, salary, loan) rules, and verifies the combined rules' true
// joint support and confidence against the data.
//
//	go run ./examples/multiattr
package main

import (
	"fmt"
	"log"
	"math/rand"

	"arcs"
)

func main() {
	tb := buildLoanBook(40_000)

	mine := func(x, y string) []arcs.ClusteredRule {
		res, err := arcs.Mine(tb, arcs.Config{
			XAttr: x, YAttr: y,
			CritAttr: "decision", CritValue: "approve",
			NumBins: 25,
			Seed:    3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("2D rules over (%s, %s):\n", x, y)
		for _, r := range res.Rules {
			fmt.Printf("  %s\n", r)
		}
		return res.Rules
	}

	ageSalary := mine("age", "salary")
	salaryLoan := mine("salary", "loan")

	multi, err := arcs.CombineChain(ageSalary, salaryLoan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncombined 3-attribute rules (%d):\n", len(multi))
	for _, m := range multi {
		stats, err := arcs.VerifyMultiRule(m, tb, "decision")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n    verified: support %.4f, confidence %.2f (%d tuples covered)\n",
			m, stats.Support, stats.Confidence, stats.Covered)
	}
}

// buildLoanBook synthesizes loan applications: approval requires an
// age/salary band AND a salary-proportionate loan amount, so the true
// concept genuinely spans three attributes.
func buildLoanBook(n int) *arcs.Table {
	schema := arcs.NewSchema(
		arcs.Attribute{Name: "age", Kind: arcs.Quantitative},
		arcs.Attribute{Name: "salary", Kind: arcs.Quantitative},
		arcs.Attribute{Name: "loan", Kind: arcs.Quantitative},
		arcs.Attribute{Name: "decision", Kind: arcs.Categorical},
	)
	tb := arcs.NewTable(schema)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < n; i++ {
		age := 20 + rng.Float64()*50
		salary := 20_000 + rng.Float64()*120_000
		loan := rng.Float64() * 400_000
		decision := "reject"
		if age >= 30 && age < 55 &&
			salary >= 60_000 &&
			loan < 2.5*salary {
			decision = "approve"
		}
		if rng.Float64() < 0.03 { // operational noise
			if decision == "approve" {
				decision = "reject"
			} else {
				decision = "approve"
			}
		}
		if err := tb.AppendValues(age, salary, loan, decision); err != nil {
			log.Fatal(err)
		}
	}
	return tb
}
