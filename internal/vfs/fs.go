// Package vfs is the filesystem seam shared by every subsystem that
// touches disk — the segmentation-model registry and the spill-to-disk
// count backend. It is an interface for the same reason dataset.Source
// is: the chaos suite wraps the real implementation with
// internal/faultinject to script torn writes, ENOSPC, fsync faults and
// silent short reads at exact call positions. Production code always
// uses OSFS.
package vfs

import (
	"io"
	"io/fs"
	"os"
)

// FS is the write-side filesystem surface: enough to publish files
// crash-safely (temp file + fsync + rename) and to scan directories.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(dir string) ([]fs.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	// Create opens name for writing (O_WRONLY|O_CREATE|O_TRUNC).
	Create(name string) (File, error)
	// Open opens name read-only; callers use it to fsync directories
	// after renames.
	Open(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// File is the subset of *os.File the write side needs: sequential
// write, durability, close.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// ReaderAtFile is the random-access read surface the spill backend
// serves counts from: positioned reads are stateless, so concurrent
// probe workers share one open file with no seek coordination.
type ReaderAtFile interface {
	io.ReaderAt
	io.Closer
}

// ReaderAtOpener is the optional FS extension for random-access reads.
// Implementations that omit it (legacy fakes) force callers onto
// ReadFile; OSFS and the faultinject wrapper both provide it.
type ReaderAtOpener interface {
	// OpenReaderAt opens name for positioned reads.
	OpenReaderAt(name string) (ReaderAtFile, error)
}

// OSFS is the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

// Open implements FS.
func (OSFS) Open(name string) (File, error) { return os.Open(name) }

// OpenReaderAt implements ReaderAtOpener.
func (OSFS) OpenReaderAt(name string) (ReaderAtFile, error) { return os.Open(name) }

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

var _ ReaderAtOpener = OSFS{}
