package faultinject

import (
	"fmt"
	"io/fs"
	"os"
	"sync"
	"syscall"

	"arcs/internal/vfs"
)

// FSSchedule scripts filesystem faults by global operation count, so a
// chaos test can kill a publish at an exact protocol step (the write,
// the fsync, the rename) and assert the registry's crash-safety
// contract. Counts are 1-based and each fault fires once.
type FSSchedule struct {
	// FailWriteAt makes the nth File.Write call fail with ENOSPC
	// (nothing written).
	FailWriteAt int
	// TornWriteAt makes the nth File.Write write only the first half of
	// its buffer and then fail with ENOSPC — a torn write: bytes on
	// disk, contract broken.
	TornWriteAt int
	// FailSyncAt makes the nth File.Sync call fail with EIO.
	FailSyncAt int
	// FailRenameAt makes the nth Rename call fail with ENOSPC, leaving
	// the temp file in place like a crash between write and commit.
	FailRenameAt int
	// FailReadAt makes the nth read call (ReadFile or ReaderAt.ReadAt —
	// the counter is shared) fail with EIO.
	FailReadAt int
	// ShortReadAt makes the nth read call return only the first half of
	// the requested bytes — a truncated read with no error, the hardest
	// corruption to catch without length validation.
	ShortReadAt int
}

// FSStats counts the faults injected so far.
type FSStats struct {
	WriteFails  int
	TornWrites  int
	SyncFails   int
	RenameFails int
	ReadFails   int
	ShortReads  int
}

// FaultFS wraps a vfs.FS with the schedule. Safe for concurrent use;
// the operation counters are shared across files so schedules address
// protocol steps, not per-file positions.
type FaultFS struct {
	inner vfs.FS
	sch   FSSchedule

	mu      sync.Mutex
	writes  int
	syncs   int
	renames int
	reads   int
	stats   FSStats
}

// WrapFS wraps inner (nil means the real filesystem) with the fault
// schedule.
func WrapFS(inner vfs.FS, sch FSSchedule) *FaultFS {
	if inner == nil {
		inner = vfs.OSFS{}
	}
	return &FaultFS{inner: inner, sch: sch}
}

// Stats reports the faults injected so far.
func (f *FaultFS) Stats() FSStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// nextRead advances the shared read counter and reports whether this
// read should fail or come back short.
func (f *FaultFS) nextRead() (fail, short bool) {
	f.mu.Lock()
	f.reads++
	n := f.reads
	fail = f.sch.FailReadAt > 0 && n == f.sch.FailReadAt
	short = f.sch.ShortReadAt > 0 && n == f.sch.ShortReadAt
	if fail {
		f.stats.ReadFails++
	}
	if short {
		f.stats.ShortReads++
	}
	f.mu.Unlock()
	return fail, short
}

// MkdirAll implements vfs.FS.
func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}

// ReadDir implements vfs.FS.
func (f *FaultFS) ReadDir(dir string) ([]fs.DirEntry, error) { return f.inner.ReadDir(dir) }

// ReadFile implements vfs.FS with read faults applied.
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	fail, short := f.nextRead()
	if fail {
		return nil, fmt.Errorf("faultinject: read %s: %w", name, syscall.EIO)
	}
	raw, err := f.inner.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if short {
		return raw[:len(raw)/2], nil
	}
	return raw, nil
}

// Create implements vfs.FS, returning files whose writes and syncs go
// through the schedule.
func (f *FaultFS) Create(name string) (vfs.File, error) {
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

// Open implements vfs.FS. Opened files share the same write/sync
// counters as created ones.
func (f *FaultFS) Open(name string) (vfs.File, error) {
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

// OpenReaderAt implements vfs.ReaderAtOpener: positioned reads share
// the ReadFile fault counter, so one schedule addresses the whole read
// side. An inner FS without the extension reports a plain error.
func (f *FaultFS) OpenReaderAt(name string) (vfs.ReaderAtFile, error) {
	op, ok := f.inner.(vfs.ReaderAtOpener)
	if !ok {
		return nil, fmt.Errorf("faultinject: inner FS %T does not support positioned reads", f.inner)
	}
	r, err := op.OpenReaderAt(name)
	if err != nil {
		return nil, err
	}
	return &faultReaderAt{fs: f, inner: r}, nil
}

// Rename implements vfs.FS with rename faults applied.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	f.renames++
	fail := f.sch.FailRenameAt > 0 && f.renames == f.sch.FailRenameAt
	if fail {
		f.stats.RenameFails++
	}
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("faultinject: rename %s: %w", newpath, syscall.ENOSPC)
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements vfs.FS.
func (f *FaultFS) Remove(name string) error { return f.inner.Remove(name) }

// faultFile applies the write/sync schedule to one open file.
type faultFile struct {
	fs    *FaultFS
	inner vfs.File
}

// Write implements vfs.File with ENOSPC and torn-write faults.
func (f *faultFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	f.fs.writes++
	n := f.fs.writes
	fail := f.fs.sch.FailWriteAt > 0 && n == f.fs.sch.FailWriteAt
	torn := f.fs.sch.TornWriteAt > 0 && n == f.fs.sch.TornWriteAt
	if fail {
		f.fs.stats.WriteFails++
	}
	if torn {
		f.fs.stats.TornWrites++
	}
	f.fs.mu.Unlock()
	if fail {
		return 0, fmt.Errorf("faultinject: write: %w", syscall.ENOSPC)
	}
	if torn {
		written, _ := f.inner.Write(p[:len(p)/2])
		return written, fmt.Errorf("faultinject: torn write after %d bytes: %w", written, syscall.ENOSPC)
	}
	return f.inner.Write(p)
}

// Sync implements vfs.File with scheduled fsync failures.
func (f *faultFile) Sync() error {
	f.fs.mu.Lock()
	f.fs.syncs++
	fail := f.fs.sch.FailSyncAt > 0 && f.fs.syncs == f.fs.sch.FailSyncAt
	if fail {
		f.fs.stats.SyncFails++
	}
	f.fs.mu.Unlock()
	if fail {
		return fmt.Errorf("faultinject: fsync: %w", syscall.EIO)
	}
	return f.inner.Sync()
}

// Close implements vfs.File.
func (f *faultFile) Close() error { return f.inner.Close() }

// faultReaderAt applies the read schedule to one positioned reader.
type faultReaderAt struct {
	fs    *FaultFS
	inner vfs.ReaderAtFile
}

// ReadAt implements io.ReaderAt with EIO and silent-short-read faults.
func (r *faultReaderAt) ReadAt(p []byte, off int64) (int, error) {
	fail, short := r.fs.nextRead()
	if fail {
		return 0, fmt.Errorf("faultinject: read at %d: %w", off, syscall.EIO)
	}
	if short {
		n, err := r.inner.ReadAt(p[:len(p)/2], off)
		if err != nil {
			return n, err
		}
		// A short positioned read must surface as io.EOF-style truncation
		// from the caller's perspective — report success for fewer bytes.
		return n, nil
	}
	return r.inner.ReadAt(p, off)
}

// Close implements io.Closer.
func (r *faultReaderAt) Close() error { return r.inner.Close() }

var _ vfs.ReaderAtOpener = (*FaultFS)(nil)
