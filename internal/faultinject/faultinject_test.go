package faultinject

import (
	"errors"
	"io"
	"testing"
	"time"

	"arcs/internal/dataset"
)

func fixtureSource(n int) *dataset.FuncSource {
	schema := dataset.NewSchema(
		dataset.Attribute{Name: "x", Kind: dataset.Quantitative},
		dataset.Attribute{Name: "y", Kind: dataset.Quantitative},
	)
	return dataset.NewFuncSource(schema, n, func(i int, out dataset.Tuple) {
		out[0] = float64(i)
		out[1] = float64(i * 2)
	})
}

// drain reads the source to EOF, returning good rows and non-EOF errors
// in encounter order.
func drain(t *testing.T, src dataset.Source) (rows int, errs []error) {
	t.Helper()
	for {
		_, err := src.Next()
		if err == io.EOF {
			return rows, errs
		}
		if err != nil {
			errs = append(errs, err)
			continue
		}
		rows++
	}
}

func TestRowErrorEvery(t *testing.T) {
	f := Wrap(fixtureSource(10), Schedule{RowErrorEvery: 3})
	rows, errs := drain(t, f)
	if rows != 7 || len(errs) != 3 {
		t.Fatalf("rows=%d errs=%d, want 7 good rows and 3 injected errors", rows, len(errs))
	}
	for _, err := range errs {
		re := dataset.AsRowError(err)
		if re == nil || re.Reason != "injected" {
			t.Fatalf("injected error %v is not a RowError(injected)", err)
		}
	}
	if f.Stats().RowErrors != 3 {
		t.Fatalf("stats.RowErrors = %d, want 3", f.Stats().RowErrors)
	}
}

func TestTransientEveryIsRetryable(t *testing.T) {
	f := Wrap(fixtureSource(6), Schedule{TransientEvery: 4, TransientFailures: 2})
	rows, errs := drain(t, f)
	if rows != 6 {
		t.Fatalf("rows = %d, want all 6 (transient errors do not consume rows)", rows)
	}
	if len(errs) == 0 {
		t.Fatal("no transient errors injected")
	}
	for _, err := range errs {
		if !dataset.IsTransient(err) {
			t.Fatalf("injected error %v is not transient", err)
		}
		var te *TransientError
		if !errors.As(err, &te) {
			t.Fatalf("injected error %v is not a *TransientError", err)
		}
	}
}

func TestTruncateAfter(t *testing.T) {
	f := Wrap(fixtureSource(100), Schedule{TruncateAfter: 7})
	rows, errs := drain(t, f)
	if rows != 7 || len(errs) != 0 {
		t.Fatalf("rows=%d errs=%d, want exactly 7 rows then clean EOF", rows, len(errs))
	}
}

func TestScheduleReplaysAcrossPasses(t *testing.T) {
	f := Wrap(fixtureSource(50), Schedule{Seed: 42, RowErrorProb: 0.2})
	firstRows, firstErrs := drain(t, f)
	if err := f.Reset(); err != nil {
		t.Fatal(err)
	}
	secondRows, secondErrs := drain(t, f)
	if firstRows != secondRows || len(firstErrs) != len(secondErrs) {
		t.Fatalf("pass 1 (%d rows, %d errs) != pass 2 (%d rows, %d errs): schedule not deterministic",
			firstRows, len(firstErrs), secondRows, len(secondErrs))
	}
	if len(firstErrs) == 0 {
		t.Fatal("probabilistic schedule injected nothing at p=0.2 over 50 rows")
	}
}

func TestPanicAtRow(t *testing.T) {
	f := Wrap(fixtureSource(10), Schedule{PanicAtRow: 3})
	for i := 0; i < 2; i++ {
		if _, err := f.Next(); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("row 3 did not panic")
		}
	}()
	f.Next()
}

func TestResilientAbsorbsInjectedFaults(t *testing.T) {
	f := Wrap(fixtureSource(60), Schedule{RowErrorEvery: 10, TransientEvery: 17})
	r := dataset.NewResilient(f,
		dataset.Retry{Max: 3, Sleep: func(time.Duration) {}},
		dataset.Quarantine{MaxBadRows: -1})
	var rows int
	if err := dataset.ForEach(r, func(dataset.Tuple) error { rows++; return nil }); err != nil {
		t.Fatalf("resilient pass failed: %v", err)
	}
	if rows != 54 {
		t.Fatalf("rows = %d, want 54 (60 minus 6 quarantined)", rows)
	}
	st := r.Stats()
	if st.Quarantined["injected"] != 6 || st.Retries == 0 {
		t.Fatalf("stats = %+v, want 6 quarantined injected rows and >0 retries", st)
	}
}

func TestPanicOnProbe(t *testing.T) {
	hook := PanicOnProbe(2)
	hook(0, 0.1, 0.5) // first call passes
	defer func() {
		if recover() == nil {
			t.Fatal("second probe call did not panic")
		}
	}()
	hook(0, 0.1, 0.5)
}

func TestLatency(t *testing.T) {
	f := Wrap(fixtureSource(3), Schedule{Latency: time.Millisecond})
	start := time.Now()
	rows, _ := drain(t, f)
	if rows != 3 {
		t.Fatalf("rows = %d, want 3", rows)
	}
	// 3 rows + EOF call, 1ms each.
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Fatalf("elapsed %v, want >= 3ms of injected latency", elapsed)
	}
	if f.Stats().Latencies < 3 {
		t.Fatalf("stats.Latencies = %d, want >= 3", f.Stats().Latencies)
	}
}
