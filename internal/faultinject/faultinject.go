// Package faultinject provides deterministic fault injection for chaos
// testing the ARCS pipeline. A Source wraps any dataset.Source and
// injects faults on a seeded, repeatable schedule: row-scoped errors
// (exercising quarantine), transient errors (exercising retry), added
// latency, early EOF truncation, and scripted panics. Separate helpers
// build probe hooks for core.Config.ProbeHook — panicking or canceling
// at a chosen call — so searches can be wounded at exact, reproducible
// points.
//
// Everything here is test machinery: production configs never reference
// this package.
package faultinject

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"
	"time"

	"arcs/internal/dataset"
)

// Schedule decides which faults fire and when. Counters are per pass
// (Reset starts a fresh pass with an identically re-seeded RNG), so a
// wrapped source misbehaves identically on every pass — the property
// that makes chaos tests assert exact outcomes instead of flakes.
type Schedule struct {
	// Seed drives the probabilistic faults; equal seeds replay the same
	// fault positions.
	Seed int64

	// RowErrorEvery, when n > 0, replaces every nth otherwise-good row
	// with a *dataset.RowError (reason "injected") and consumes the row.
	RowErrorEvery int
	// RowErrorProb, when > 0, additionally converts each good row to a
	// *dataset.RowError with this probability (seeded).
	RowErrorProb float64

	// TransientEvery, when n > 0, makes every nth Next call fail first
	// with a retryable *TransientError before yielding its row.
	TransientEvery int
	// TransientFailures is how many consecutive transient failures each
	// such event produces (default 1).
	TransientFailures int

	// Latency, when positive, is slept before each affected call;
	// LatencyEvery selects every nth call (0 means every call).
	Latency      time.Duration
	LatencyEvery int

	// TruncateAfter, when n > 0, ends each pass with io.EOF after n rows
	// even if the wrapped source has more.
	TruncateAfter int

	// PanicAtRow, when n > 0, panics when the nth row of a pass is
	// requested — simulating a corrupted-state crash inside streaming.
	PanicAtRow int
}

// Stats counts the faults injected so far, across passes.
type Stats struct {
	RowErrors  int64
	Transients int64
	Latencies  int64
	Truncated  int64
}

// Source is a dataset.Source that injects the configured faults. Like
// the sources it wraps, it is not safe for concurrent use.
type Source struct {
	src dataset.Source
	sch Schedule
	rng *rand.Rand

	calls     int // Next calls this pass
	rows      int // good rows yielded this pass
	transLeft int // remaining failures of the active transient event

	stats Stats
}

// TransientError is the injected retryable failure; dataset.IsTransient
// reports true for it, so a Resilient wrapper retries it.
type TransientError struct {
	// Call is the per-pass Next call the failure was injected into.
	Call int
}

// Error describes the injection point.
func (e *TransientError) Error() string {
	return fmt.Sprintf("faultinject: transient failure at call %d", e.Call)
}

// Transient marks the error as retryable.
func (e *TransientError) Transient() bool { return true }

// Wrap wraps src with the fault schedule.
func Wrap(src dataset.Source, sch Schedule) *Source {
	if sch.TransientFailures <= 0 {
		sch.TransientFailures = 1
	}
	return &Source{src: src, sch: sch, rng: rand.New(rand.NewSource(sch.Seed))}
}

// Schema implements dataset.Source.
func (f *Source) Schema() *dataset.Schema { return f.src.Schema() }

// Stats reports the faults injected so far.
func (f *Source) Stats() Stats { return f.stats }

// Reset implements dataset.Source, restarting the fault schedule so the
// next pass replays the same faults at the same positions.
func (f *Source) Reset() error {
	f.calls, f.rows, f.transLeft = 0, 0, 0
	f.rng = rand.New(rand.NewSource(f.sch.Seed))
	return f.src.Reset()
}

// Close forwards to the wrapped source when it is closeable.
func (f *Source) Close() error {
	if c, ok := f.src.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

// Next implements dataset.Source with the schedule applied.
func (f *Source) Next() (dataset.Tuple, error) {
	f.calls++
	if f.sch.Latency > 0 && (f.sch.LatencyEvery <= 1 || f.calls%f.sch.LatencyEvery == 0) {
		f.stats.Latencies++
		time.Sleep(f.sch.Latency)
	}
	if f.transLeft > 0 {
		f.transLeft--
		f.stats.Transients++
		return nil, &TransientError{Call: f.calls}
	}
	if n := f.sch.TransientEvery; n > 0 && f.calls%n == 0 {
		f.transLeft = f.sch.TransientFailures - 1
		f.stats.Transients++
		return nil, &TransientError{Call: f.calls}
	}
	if n := f.sch.TruncateAfter; n > 0 && f.rows >= n {
		f.stats.Truncated++
		return nil, io.EOF
	}
	if n := f.sch.PanicAtRow; n > 0 && f.rows+1 == n {
		panic(fmt.Sprintf("faultinject: scripted panic at row %d", n))
	}
	t, err := f.src.Next()
	if err != nil {
		return nil, err
	}
	f.rows++
	if (f.sch.RowErrorEvery > 0 && f.rows%f.sch.RowErrorEvery == 0) ||
		(f.sch.RowErrorProb > 0 && f.rng.Float64() < f.sch.RowErrorProb) {
		f.stats.RowErrors++
		return nil, &dataset.RowError{
			Path: "faultinject", Row: f.rows, Reason: "injected",
			Err: fmt.Errorf("scripted row fault"),
		}
	}
	return t, nil
}

// PanicOnProbe returns a core.Config.ProbeHook-shaped function that
// panics on its nth call (1-based), once. Later probes run normally, so
// a test can assert that exactly one probe failed while the search
// completed.
func PanicOnProbe(n int) func(seg int, minSup, minConf float64) {
	var calls atomic.Int64
	return func(seg int, minSup, minConf float64) {
		if calls.Add(1) == int64(n) {
			panic(fmt.Sprintf("faultinject: scripted probe panic at call %d", n))
		}
	}
}

// CancelOnProbe returns a probe hook that calls cancel when the nth
// probe (1-based) begins evaluating — a deterministic mid-search
// cancellation trigger. Combine with Config.SerialSearch and
// DisableProbeCache for an exact, repeatable cut point.
func CancelOnProbe(n int, cancel context.CancelFunc) func(seg int, minSup, minConf float64) {
	var calls atomic.Int64
	return func(seg int, minSup, minConf float64) {
		if calls.Add(1) == int64(n) {
			cancel()
		}
	}
}
