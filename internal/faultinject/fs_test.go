package faultinject

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestFaultFSWriteFaults exercises the write schedule directly against
// the real filesystem: the scheduled call fails (or tears), every
// other call passes through untouched, and each fault fires once.
func TestFaultFSWriteFaults(t *testing.T) {
	dir := t.TempDir()
	ffs := WrapFS(nil, FSSchedule{FailWriteAt: 2})

	f, err := ffs.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("first")); err != nil {
		t.Fatalf("write 1 should pass through: %v", err)
	}
	if _, err := f.Write([]byte("second")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write 2 = %v, want ENOSPC", err)
	}
	if _, err := f.Write([]byte("third")); err != nil {
		t.Fatalf("faults must fire once; write 3 = %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ffs.Stats().WriteFails; got != 1 {
		t.Fatalf("WriteFails = %d, want 1", got)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "firstthird" {
		t.Fatalf("file content = %q: the failed write leaked bytes", raw)
	}
}

func TestFaultFSTornWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := WrapFS(nil, FSSchedule{TornWriteAt: 1})
	f, err := ffs.Create(filepath.Join(dir, "torn"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("12345678"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("torn write error = %v, want ENOSPC", err)
	}
	if n != 4 {
		t.Fatalf("torn write reported %d bytes, want 4 (half)", n)
	}
	f.Close()
	raw, _ := os.ReadFile(filepath.Join(dir, "torn"))
	if string(raw) != "1234" {
		t.Fatalf("on-disk bytes = %q, want the torn half", raw)
	}
	if got := ffs.Stats().TornWrites; got != 1 {
		t.Fatalf("TornWrites = %d, want 1", got)
	}
}

func TestFaultFSSyncFault(t *testing.T) {
	dir := t.TempDir()
	ffs := WrapFS(nil, FSSchedule{FailSyncAt: 1})
	f, err := ffs.Create(filepath.Join(dir, "s"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync 1 = %v, want EIO", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 2 should pass through: %v", err)
	}
	f.Close()
	if got := ffs.Stats().SyncFails; got != 1 {
		t.Fatalf("SyncFails = %d, want 1", got)
	}
}

func TestFaultFSRenameFault(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src")
	if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ffs := WrapFS(nil, FSSchedule{FailRenameAt: 1})
	if err := ffs.Rename(src, filepath.Join(dir, "dst")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("rename 1 = %v, want ENOSPC", err)
	}
	// Like a crash between write and commit: the source must be intact.
	if _, err := os.Stat(src); err != nil {
		t.Fatalf("failed rename disturbed the source: %v", err)
	}
	if err := ffs.Rename(src, filepath.Join(dir, "dst")); err != nil {
		t.Fatalf("rename 2 should pass through: %v", err)
	}
	if got := ffs.Stats().RenameFails; got != 1 {
		t.Fatalf("RenameFails = %d, want 1", got)
	}
}

func TestFaultFSReadFaults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r")
	if err := os.WriteFile(path, []byte("12345678"), 0o644); err != nil {
		t.Fatal(err)
	}
	ffs := WrapFS(nil, FSSchedule{FailReadAt: 1, ShortReadAt: 2})
	if _, err := ffs.ReadFile(path); !errors.Is(err, syscall.EIO) {
		t.Fatalf("read 1 = %v, want EIO", err)
	}
	raw, err := ffs.ReadFile(path)
	if err != nil {
		t.Fatalf("short read must not error: %v", err)
	}
	if string(raw) != "1234" {
		t.Fatalf("short read = %q, want the first half", raw)
	}
	raw, err = ffs.ReadFile(path)
	if err != nil || string(raw) != "12345678" {
		t.Fatalf("read 3 = %q, %v; want full passthrough", raw, err)
	}
	st := ffs.Stats()
	if st.ReadFails != 1 || st.ShortReads != 1 {
		t.Fatalf("stats = %+v, want one read fail and one short read", st)
	}
}

// TestFaultFSCountersAreGlobal pins the scheduling contract the chaos
// suites depend on: operation counts are shared across all files, so a
// schedule addresses the nth protocol step regardless of which file
// performs it.
func TestFaultFSCountersAreGlobal(t *testing.T) {
	dir := t.TempDir()
	ffs := WrapFS(nil, FSSchedule{FailWriteAt: 3})
	f1, err := ffs.Create(filepath.Join(dir, "f1"))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := ffs.Create(filepath.Join(dir, "f2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f1.Write([]byte("a")); err != nil { // global write 1
		t.Fatal(err)
	}
	if _, err := f2.Write([]byte("b")); err != nil { // global write 2
		t.Fatal(err)
	}
	// Global write 3 lands on f1 even though it is f1's second write.
	if _, err := f1.Write([]byte("c")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("f1 write at global count 3 = %v, want ENOSPC", err)
	}
	f1.Close()
	f2.Close()
}
