package quality

import (
	"math"
	"strings"
	"testing"

	"arcs/internal/core"
	"arcs/internal/dataset"
	"arcs/internal/obs"
	"arcs/internal/rules"
)

// testFixture builds a 10×10 value-space world: Group A is exactly the
// rectangle [0,5)×[0,5), the test table samples the unit lattice, and a
// single rule either matches the truth exactly or is shifted.
func testFixture(t *testing.T, rule rules.ClusteredRule) (*core.Result, *dataset.Table) {
	t.Helper()
	schema := dataset.NewSchema(
		dataset.Attribute{Name: "x", Kind: dataset.Quantitative},
		dataset.Attribute{Name: "y", Kind: dataset.Quantitative},
		dataset.Attribute{Name: "group", Kind: dataset.Categorical},
	)
	tb := dataset.NewTable(schema)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			x, y := float64(i)+0.5, float64(j)+0.5
			label := "B"
			if x < 5 && y < 5 {
				label = "A"
			}
			if err := tb.AppendValues(x, y, label); err != nil {
				t.Fatal(err)
			}
		}
	}
	res := &core.Result{
		CritValue:     "A",
		Rules:         []rules.ClusteredRule{rule},
		MinSupport:    0.01,
		MinConfidence: 0.5,
		Cost:          42,
	}
	return res, tb
}

func exactRule() rules.ClusteredRule {
	return rules.ClusteredRule{
		XAttr: "x", YAttr: "y", CritAttr: "group", CritValue: "A",
		XLo: 0, XHi: 5, YLo: 0, YHi: 5,
	}
}

func defaultOptions() Options {
	return Options{
		XAttr: "x", YAttr: "y", CritAttr: "group", CritValue: "A",
		Truth:        []Rect{{XLo: 0, XHi: 5, YLo: 0, YHi: 5}},
		XLo:          0,
		XHi:          10,
		YLo:          0,
		YHi:          10,
		LatticeSteps: 100,
	}
}

func TestEvaluatePerfectRecovery(t *testing.T) {
	res, tb := testFixture(t, exactRule())
	rep, err := Evaluate(res, tb, defaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ErrorPct != 0 || rep.FalsePositives != 0 || rep.FalseNegatives != 0 {
		t.Errorf("exact rule should classify perfectly, got %+v", rep)
	}
	if rep.TestN != 100 || rep.Rules != 1 || rep.MDLCost != 42 {
		t.Errorf("report header wrong: %+v", rep)
	}
	if rep.Recovery == nil {
		t.Fatal("recovery not computed despite Truth")
	}
	r := rep.Recovery
	if r.Precision != 1 || r.Recall != 1 || r.IoU != 1 {
		t.Errorf("exact rule should have perfect recovery, got %+v", r)
	}
	if len(r.PerRegionIoU) != 1 || r.PerRegionIoU[0] != 1 {
		t.Errorf("per-region IoU should be [1], got %v", r.PerRegionIoU)
	}
}

func TestEvaluateShiftedRule(t *testing.T) {
	// Rule shifted right by 2: covers [2,7)×[0,5); overlap with truth is
	// [2,5)×[0,5) = 15 of 25 truth cells and 25 rule cells.
	shifted := exactRule()
	shifted.XLo, shifted.XHi = 2, 7
	res, tb := testFixture(t, shifted)
	rep, err := Evaluate(res, tb, defaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 10 FP (x in [5,7), y<5 covered but Group B) + 10 FN (x<2, y<5).
	if rep.FalsePositives != 10 || rep.FalseNegatives != 10 {
		t.Errorf("FP/FN = %d/%d, want 10/10", rep.FalsePositives, rep.FalseNegatives)
	}
	if math.Abs(rep.ErrorPct-20) > 1e-9 {
		t.Errorf("ErrorPct = %g, want 20", rep.ErrorPct)
	}
	r := rep.Recovery
	if r == nil {
		t.Fatal("no recovery")
	}
	wantPR := 15.0 / 25.0
	wantIoU := 15.0 / 35.0
	if math.Abs(r.Precision-wantPR) > 0.01 || math.Abs(r.Recall-wantPR) > 0.01 {
		t.Errorf("precision/recall = %g/%g, want ~%g", r.Precision, r.Recall, wantPR)
	}
	if math.Abs(r.IoU-wantIoU) > 0.01 {
		t.Errorf("IoU = %g, want ~%g", r.IoU, wantIoU)
	}
	if math.Abs(r.PerRegionIoU[0]-wantIoU) > 0.01 {
		t.Errorf("PerRegionIoU = %v, want ~%g", r.PerRegionIoU, wantIoU)
	}
}

func TestEvaluateNoRules(t *testing.T) {
	res, tb := testFixture(t, exactRule())
	res.Rules = nil
	rep, err := Evaluate(res, tb, defaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Everything in Group A is a false negative; precision defaults to 1.
	if rep.FalsePositives != 0 || rep.FalseNegatives != 25 {
		t.Errorf("FP/FN = %d/%d, want 0/25", rep.FalsePositives, rep.FalseNegatives)
	}
	if rep.RuleMeasures != nil {
		t.Errorf("no rules should yield no measures, got %v", rep.RuleMeasures)
	}
	r := rep.Recovery
	if r.Precision != 1 || r.Recall != 0 || r.IoU != 0 {
		t.Errorf("empty segmentation recovery = %+v, want precision 1, recall 0, IoU 0", r)
	}
	if r.PerRegionIoU[0] != 0 {
		t.Errorf("PerRegionIoU = %v, want [0]", r.PerRegionIoU)
	}
}

func TestRuleMeasures(t *testing.T) {
	res, tb := testFixture(t, exactRule())
	rep, err := Evaluate(res, tb, defaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RuleMeasures) != 1 {
		t.Fatalf("want 1 rule measure, got %d", len(rep.RuleMeasures))
	}
	m := rep.RuleMeasures[0]
	if !strings.Contains(m.Rule, "group = A") {
		t.Errorf("rendered rule %q should mention the criterion", m.Rule)
	}
	// The exact rule covers the 25 Group A tuples of 100: support 0.25,
	// confidence 1, prior 0.25 so lift 4, conviction capped, interest
	// 0.25 − 0.25·0.25.
	if math.Abs(m.Support-0.25) > 1e-9 {
		t.Errorf("Support = %g, want 0.25", m.Support)
	}
	if m.Confidence != 1 {
		t.Errorf("Confidence = %g, want 1", m.Confidence)
	}
	if math.Abs(m.Lift-4) > 1e-9 {
		t.Errorf("Lift = %g, want 4", m.Lift)
	}
	if m.Conviction != MaxConviction {
		t.Errorf("Conviction = %g, want cap %g", m.Conviction, MaxConviction)
	}
	if math.Abs(m.Interest-0.1875) > 1e-9 {
		t.Errorf("Interest = %g, want 0.1875", m.Interest)
	}
}

func TestRuleMeasuresImperfectRule(t *testing.T) {
	// Rule covering the whole plane: confidence = prior, lift 1,
	// conviction 1, interest 0 — the independence baseline.
	all := exactRule()
	all.XHi, all.YHi = 10, 10
	res, tb := testFixture(t, all)
	rep, err := Evaluate(res, tb, Options{XAttr: "x", YAttr: "y", CritAttr: "group", CritValue: "A"})
	if err != nil {
		t.Fatal(err)
	}
	m := rep.RuleMeasures[0]
	if math.Abs(m.Lift-1) > 1e-9 {
		t.Errorf("Lift = %g, want 1", m.Lift)
	}
	if math.Abs(m.Conviction-1) > 1e-9 {
		t.Errorf("Conviction = %g, want 1", m.Conviction)
	}
	if math.Abs(m.Interest) > 1e-9 {
		t.Errorf("Interest = %g, want 0", m.Interest)
	}
	if rep.Recovery != nil {
		t.Error("recovery computed without Truth")
	}
}

func TestEvaluateValidation(t *testing.T) {
	res, tb := testFixture(t, exactRule())
	cases := []struct {
		name string
		res  *core.Result
		tb   *dataset.Table
		opts Options
	}{
		{"nil result", nil, tb, defaultOptions()},
		{"nil table", res, nil, defaultOptions()},
		{"empty table", res, dataset.NewTable(tb.Schema()), defaultOptions()},
		{"unknown x attr", res, tb, Options{XAttr: "nope", YAttr: "y", CritAttr: "group", CritValue: "A"}},
		{"unknown y attr", res, tb, Options{XAttr: "x", YAttr: "nope", CritAttr: "group", CritValue: "A"}},
		{"unknown crit attr", res, tb, Options{XAttr: "x", YAttr: "y", CritAttr: "nope", CritValue: "A"}},
		{"unknown crit value", res, tb, Options{XAttr: "x", YAttr: "y", CritAttr: "group", CritValue: "Z"}},
		{"bad lattice", res, tb, func() Options { o := defaultOptions(); o.LatticeSteps = 1; return o }()},
		{"bad domain", res, tb, func() Options { o := defaultOptions(); o.XHi = o.XLo; return o }()},
	}
	for _, tc := range cases {
		if _, err := Evaluate(tc.res, tc.tb, tc.opts); err == nil {
			t.Errorf("%s: Evaluate succeeded, want error", tc.name)
		}
	}
}

func TestObserve(t *testing.T) {
	res, tb := testFixture(t, exactRule())
	rep, err := Evaluate(res, tb, defaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rep.Observe(reg)
	snap := reg.Snapshot()
	for name, want := range map[string]float64{
		"quality_error_rate_pct":     0,
		"quality_mdl_cost":           42,
		"quality_recovery_iou":       1,
		"quality_recovery_precision": 1,
		"quality_recovery_recall":    1,
	} {
		got, ok := snap.FloatGauges[name]
		if !ok {
			t.Errorf("float gauge %q not published", name)
		} else if got != want {
			t.Errorf("float gauge %q = %g, want %g", name, got, want)
		}
	}
	if got := snap.Gauges["quality_rules"]; got != 1 {
		t.Errorf("gauge quality_rules = %d, want 1", got)
	}
	for _, h := range []string{"quality_rule_lift", "quality_rule_conviction"} {
		if snap.Histograms[h].Count != 1 {
			t.Errorf("histogram %q count = %d, want 1", h, snap.Histograms[h].Count)
		}
	}

	// Nil-safety: neither side may panic.
	rep.Observe(nil)
	var nilRep *Report
	nilRep.Observe(reg)
}
