// Package quality measures mining quality the way internal/obs measures
// performance: as a first-class, trended, gated signal. Given a mined
// core.Result and ground truth — a held-out test table, and (for
// synthetic workloads) the generating disjuncts exported by
// internal/synth — it computes the numbers a refactor could silently
// regress while every functional test stays green:
//
//   - classification error (FP + FN rate on the held-out table),
//   - rule count and the MDL cost the optimizer settled on,
//   - rectangle recovery against the generating disjuncts: area
//     precision, recall and IoU of the mined union, plus the best
//     single-rule IoU per disjunct,
//   - per-rule interestingness measures from the association-rule
//     literature: support, confidence, lift, conviction and interest
//     (Piatetsky-Shapiro leverage), all measured on the held-out table.
//
// The package is deliberately free of mining logic and of the synth
// generator: ground-truth rectangles arrive as plain Rects so any
// workload with known geometry can use it. experiments.Quality runs it
// across all ten Agrawal functions into BENCH_quality.json, arcsd runs
// it after synthetic jobs, and arcstrace diff gates its trajectory.
package quality

import (
	"fmt"
	"math"

	"arcs/internal/core"
	"arcs/internal/dataset"
	"arcs/internal/obs"
	"arcs/internal/rules"
)

// Rect is an axis-aligned ground-truth rectangle in the mined (X, Y)
// value plane, half-open on both axes like the binners' value ranges.
type Rect struct {
	XLo, XHi float64
	YLo, YHi float64
}

// contains reports whether the half-open rectangle covers (x, y).
func (r Rect) contains(x, y float64) bool {
	return r.XLo <= x && x < r.XHi && r.YLo <= y && y < r.YHi
}

// Options parameterizes Evaluate. XAttr/YAttr/CritAttr/CritValue are
// required and must resolve in the test table's schema.
type Options struct {
	// XAttr and YAttr are the LHS attributes the result was mined over.
	XAttr, YAttr string
	// CritAttr is the criterion attribute; CritValue the segmented group.
	CritAttr, CritValue string

	// Truth, when non-nil, are the generating disjuncts in the (XAttr,
	// YAttr) plane; rectangle-recovery metrics are computed against
	// them over the [XLo,XHi)×[YLo,YHi) domain. Nil skips recovery.
	Truth []Rect
	// XLo/XHi/YLo/YHi bound the recovery lattice. Required when Truth
	// is set.
	XLo, XHi float64
	YLo, YHi float64
	// LatticeSteps is the per-axis resolution of the recovery lattice
	// (default 400, i.e. 160k area samples).
	LatticeSteps int
}

// RuleMeasures are the standard interestingness measures of one
// clustered rule X => (crit = value), estimated on the held-out table.
type RuleMeasures struct {
	// Rule is the rendered rule text, the stable join key for humans.
	Rule string `json:"rule"`
	// Support is P(X ∧ crit=value): covered tuples carrying the value.
	Support float64 `json:"support"`
	// Confidence is P(crit=value | X).
	Confidence float64 `json:"confidence"`
	// Lift is Confidence / P(crit=value): >1 marks positive association
	// beyond the criterion value's base rate.
	Lift float64 `json:"lift"`
	// Conviction is (1 − P(crit=value)) / (1 − Confidence): how much
	// more often the rule would have to be wrong if antecedent and
	// consequent were independent. 1 = independent; capped at
	// MaxConviction for confidence-1 rules so the value stays JSON- and
	// diff-friendly instead of going infinite.
	Conviction float64 `json:"conviction"`
	// Interest is the Piatetsky-Shapiro leverage
	// P(X ∧ value) − P(X)·P(value): the absolute support surplus over
	// independence. Zero = independent, positive = interesting.
	Interest float64 `json:"interest"`
}

// MaxConviction caps the conviction measure for rules whose measured
// confidence is 1 (the true value is +Inf).
const MaxConviction = 1000.0

// Recovery measures how well the mined rectangles recover the
// generating disjuncts, by area over the evaluation lattice.
type Recovery struct {
	// Precision is |mined ∩ truth| / |mined|: the fraction of claimed
	// area that is genuinely Group territory. 1 when nothing is mined.
	Precision float64 `json:"precision"`
	// Recall is |mined ∩ truth| / |truth|: the fraction of generating
	// area the segmentation found.
	Recall float64 `json:"recall"`
	// IoU is |mined ∩ truth| / |mined ∪ truth| — the headline number
	// the quality gate trends, 1.0 for a perfect cover.
	IoU float64 `json:"iou"`
	// PerRegionIoU is, for each generating disjunct in input order, the
	// best IoU any single mined rule achieves against it — did each
	// disjunct come back as one clean rectangle?
	PerRegionIoU []float64 `json:"per_region_iou"`
}

// Report is the quality measurement of one mined Result.
type Report struct {
	// CritValue is the segmented group.
	CritValue string `json:"criterion_value"`
	// Rules is the rule count of the segmentation.
	Rules int `json:"rules"`
	// MDLCost is the cost the optimizer settled on (core.Result.Cost).
	MDLCost float64 `json:"mdl_cost"`
	// MinSupport / MinConfidence are the chosen thresholds.
	MinSupport    float64 `json:"min_support"`
	MinConfidence float64 `json:"min_confidence"`

	// TestN is the held-out table size the measures below come from.
	TestN int `json:"test_n"`
	// FalsePositives / FalseNegatives / ErrorPct are the held-out
	// classification error: covered-but-wrong and uncovered-but-right
	// counts and their summed rate in percent.
	FalsePositives int     `json:"false_positives"`
	FalseNegatives int     `json:"false_negatives"`
	ErrorPct       float64 `json:"error_pct"`

	// Recovery is nil when no ground-truth rectangles were supplied.
	Recovery *Recovery `json:"recovery,omitempty"`

	// RuleMeasures has one entry per rule, in Result.Rules order.
	RuleMeasures []RuleMeasures `json:"rule_measures,omitempty"`
}

// Evaluate measures res against the held-out table under opts. The
// table must carry the mined attributes; the criterion value must be a
// registered category of the criterion attribute.
func Evaluate(res *core.Result, test *dataset.Table, opts Options) (*Report, error) {
	if res == nil {
		return nil, fmt.Errorf("quality: nil result")
	}
	if test == nil || test.Len() == 0 {
		return nil, fmt.Errorf("quality: empty test table")
	}
	schema := test.Schema()
	xIdx, err := schema.Index(opts.XAttr)
	if err != nil {
		return nil, fmt.Errorf("quality: %w", err)
	}
	yIdx, err := schema.Index(opts.YAttr)
	if err != nil {
		return nil, fmt.Errorf("quality: %w", err)
	}
	critIdx, err := schema.Index(opts.CritAttr)
	if err != nil {
		return nil, fmt.Errorf("quality: %w", err)
	}
	segCode, ok := schema.At(critIdx).LookupCategory(opts.CritValue)
	if !ok {
		return nil, fmt.Errorf("quality: criterion value %q not a category of %q", opts.CritValue, opts.CritAttr)
	}

	rep := &Report{
		CritValue:     res.CritValue,
		Rules:         len(res.Rules),
		MDLCost:       res.Cost,
		MinSupport:    res.MinSupport,
		MinConfidence: res.MinConfidence,
		TestN:         test.Len(),
	}
	measureError(rep, res.Rules, test, xIdx, yIdx, critIdx, segCode)
	rep.RuleMeasures = measureRules(res.Rules, test, xIdx, yIdx, critIdx, segCode)
	if len(opts.Truth) > 0 {
		rec, err := measureRecovery(res.Rules, opts)
		if err != nil {
			return nil, err
		}
		rep.Recovery = rec
	}
	return rep, nil
}

// measureError fills the held-out classification error counts.
func measureError(rep *Report, rs []rules.ClusteredRule, tb *dataset.Table, xIdx, yIdx, critIdx, segCode int) {
	var fp, fn int
	for i := 0; i < tb.Len(); i++ {
		row := tb.Row(i)
		isSeg := int(row[critIdx]) == segCode
		covered := false
		for _, r := range rs {
			if r.Covers(row[xIdx], row[yIdx]) {
				covered = true
				break
			}
		}
		switch {
		case covered && !isSeg:
			fp++
		case !covered && isSeg:
			fn++
		}
	}
	rep.FalsePositives = fp
	rep.FalseNegatives = fn
	rep.ErrorPct = 100 * float64(fp+fn) / float64(tb.Len())
}

// measureRules computes the per-rule interestingness measures in one
// pass over the table (O(rows × rules); rule sets are small by design).
func measureRules(rs []rules.ClusteredRule, tb *dataset.Table, xIdx, yIdx, critIdx, segCode int) []RuleMeasures {
	if len(rs) == 0 {
		return nil
	}
	n := tb.Len()
	covered := make([]int, len(rs))    // |X|
	coveredSeg := make([]int, len(rs)) // |X ∧ value|
	var seg int                        // |value|
	for i := 0; i < n; i++ {
		row := tb.Row(i)
		isSeg := int(row[critIdx]) == segCode
		if isSeg {
			seg++
		}
		x, y := row[xIdx], row[yIdx]
		for j, r := range rs {
			if r.Covers(x, y) {
				covered[j]++
				if isSeg {
					coveredSeg[j]++
				}
			}
		}
	}
	prior := float64(seg) / float64(n)
	out := make([]RuleMeasures, len(rs))
	for j, r := range rs {
		m := RuleMeasures{Rule: r.String()}
		supX := float64(covered[j]) / float64(n)
		m.Support = float64(coveredSeg[j]) / float64(n)
		if covered[j] > 0 {
			m.Confidence = float64(coveredSeg[j]) / float64(covered[j])
		}
		if prior > 0 {
			m.Lift = m.Confidence / prior
		}
		switch {
		case m.Confidence >= 1:
			m.Conviction = MaxConviction
		default:
			m.Conviction = math.Min((1-prior)/(1-m.Confidence), MaxConviction)
		}
		m.Interest = m.Support - supX*prior
		out[j] = m
	}
	return out
}

// measureRecovery computes the area precision/recall/IoU of the mined
// union against the ground-truth disjuncts, plus the best single-rule
// IoU per disjunct, over a uniform lattice of the domain (the same
// approach as verify.RegionErrors — exact interval arithmetic over
// unions buys nothing at the gate's noise floors).
func measureRecovery(rs []rules.ClusteredRule, opts Options) (*Recovery, error) {
	steps := opts.LatticeSteps
	if steps == 0 {
		steps = 400
	}
	if steps < 2 {
		return nil, fmt.Errorf("quality: lattice steps must be >= 2, got %d", steps)
	}
	if !(opts.XLo < opts.XHi) || !(opts.YLo < opts.YHi) {
		return nil, fmt.Errorf("quality: invalid recovery domain [%g,%g]×[%g,%g]",
			opts.XLo, opts.XHi, opts.YLo, opts.YHi)
	}

	// Per-rule and per-region tallies for the per-disjunct matching;
	// union tallies for the headline numbers.
	var interU, minedU, truthU int
	ruleArea := make([]int, len(rs))
	regionArea := make([]int, len(opts.Truth))
	// ruleRegionInter[j][k] = |rule j ∩ region k|.
	ruleRegionInter := make([][]int, len(rs))
	for j := range ruleRegionInter {
		ruleRegionInter[j] = make([]int, len(opts.Truth))
	}

	for i := 0; i < steps; i++ {
		x := opts.XLo + (opts.XHi-opts.XLo)*(float64(i)+0.5)/float64(steps)
		for j := 0; j < steps; j++ {
			y := opts.YLo + (opts.YHi-opts.YLo)*(float64(j)+0.5)/float64(steps)
			inTruth := -1
			for k, reg := range opts.Truth {
				if reg.contains(x, y) {
					inTruth = k
					break
				}
			}
			mined := false
			for r, rule := range rs {
				if rule.Covers(x, y) {
					mined = true
					ruleArea[r]++
					if inTruth >= 0 {
						ruleRegionInter[r][inTruth]++
					}
				}
			}
			if mined {
				minedU++
			}
			if inTruth >= 0 {
				truthU++
				regionArea[inTruth]++
				if mined {
					interU++
				}
			}
		}
	}

	rec := &Recovery{Precision: 1}
	if minedU > 0 {
		rec.Precision = float64(interU) / float64(minedU)
	}
	if truthU > 0 {
		rec.Recall = float64(interU) / float64(truthU)
	}
	if union := minedU + truthU - interU; union > 0 {
		rec.IoU = float64(interU) / float64(union)
	}
	rec.PerRegionIoU = make([]float64, len(opts.Truth))
	for k := range opts.Truth {
		best := 0.0
		for r := range rs {
			inter := ruleRegionInter[r][k]
			union := ruleArea[r] + regionArea[k] - inter
			if union > 0 {
				if iou := float64(inter) / float64(union); iou > best {
					best = iou
				}
			}
		}
		rec.PerRegionIoU[k] = best
	}
	return rec, nil
}

// Observe publishes a report's headline numbers into a metrics
// registry, making quality scrapeable wherever perf already is: gauges
// quality_error_rate_pct / quality_rules / quality_mdl_cost /
// quality_recovery_iou (recovery only when measured), and histograms
// quality_rule_lift / quality_rule_conviction with one observation per
// rule. In a shared registry (arcsd) the gauges reflect the most
// recently evaluated run, matching the runtime gauges' semantics.
// Nil-safe in both arguments.
func (rep *Report) Observe(reg *obs.Registry) {
	if rep == nil || reg == nil {
		return
	}
	reg.FloatGauge("quality_error_rate_pct").Set(rep.ErrorPct)
	reg.Gauge("quality_rules").Set(int64(rep.Rules))
	reg.FloatGauge("quality_mdl_cost").Set(rep.MDLCost)
	if rep.Recovery != nil {
		reg.FloatGauge("quality_recovery_iou").Set(rep.Recovery.IoU)
		reg.FloatGauge("quality_recovery_precision").Set(rep.Recovery.Precision)
		reg.FloatGauge("quality_recovery_recall").Set(rep.Recovery.Recall)
	}
	lift := reg.HistogramBuckets("quality_rule_lift", LiftBuckets)
	conv := reg.HistogramBuckets("quality_rule_conviction", LiftBuckets)
	for _, m := range rep.RuleMeasures {
		lift.Observe(m.Lift)
		conv.Observe(m.Conviction)
	}
}

// LiftBuckets bound the lift/conviction histograms: 1 is independence,
// the top bucket absorbs the MaxConviction cap.
var LiftBuckets = []float64{0.5, 0.8, 1, 1.2, 1.5, 2, 3, 5, 10, 50, MaxConviction}
