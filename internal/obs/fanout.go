package obs

import (
	"sync"
	"sync/atomic"
)

// Fanout tees every event into a fixed set of downstream sinks and any
// number of dynamically attached Subscribers. It is the live half of the
// telemetry plane: a run keeps writing its trace into durable sinks
// (flight recorder, JSONL file) while HTTP span streams subscribe and
// unsubscribe mid-run without the run noticing.
//
// Delivery to subscribers is non-blocking: a subscriber whose buffer is
// full loses the event and the loss is counted — on the subscriber, on
// the Fanout total, and on the optional drop counter — instead of ever
// stalling the emitting goroutine. The static sinks always receive every
// event. With no subscribers attached, Emit touches only the static
// sinks and performs no locking and no allocation of its own, so an idle
// telemetry plane costs the hot path nothing beyond the sinks it tees
// into.
type Fanout struct {
	sinks []Sink // immutable after construction

	// nsubs mirrors len(subs) so the no-subscriber fast path is a single
	// atomic load instead of a lock acquisition.
	nsubs   atomic.Int32
	dropped atomic.Int64

	mu     sync.RWMutex
	subs   map[*Subscriber]struct{}
	closed bool

	// onDrop, when set, is bumped once per dropped event (typically a
	// registry counter like serve_stream_dropped_total).
	onDrop *Counter
}

// NewFanout builds a Fanout that tees into sinks (nil entries are
// skipped).
func NewFanout(sinks ...Sink) *Fanout {
	kept := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	return &Fanout{sinks: kept, subs: make(map[*Subscriber]struct{})}
}

// SetDropCounter installs a counter bumped once per event dropped on a
// full subscriber buffer. Call before events flow; nil disables.
func (f *Fanout) SetDropCounter(c *Counter) { f.onDrop = c }

// Emit implements Sink.
func (f *Fanout) Emit(ev Event) {
	for _, s := range f.sinks {
		s.Emit(ev)
	}
	if f.nsubs.Load() == 0 {
		return
	}
	f.mu.RLock()
	for sub := range f.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped.Add(1)
			f.dropped.Add(1)
			f.onDrop.Inc()
		}
	}
	f.mu.RUnlock()
}

// Subscribe attaches a new subscriber with the given channel buffer
// (minimum 1). It returns nil once the Fanout is closed — callers racing
// a finishing run check for nil and fall back to a recorded trace.
func (f *Fanout) Subscribe(buf int) *Subscriber {
	if buf < 1 {
		buf = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	sub := &Subscriber{ch: make(chan Event, buf)}
	f.subs[sub] = struct{}{}
	f.nsubs.Add(1)
	return sub
}

// Unsubscribe detaches sub and closes its channel. Safe to call with a
// subscriber that was already detached (including by Close).
func (f *Fanout) Unsubscribe(sub *Subscriber) {
	if sub == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.subs[sub]; !ok {
		return
	}
	delete(f.subs, sub)
	f.nsubs.Add(-1)
	close(sub.ch)
}

// Close detaches every subscriber, closing their channels so streaming
// consumers observe end-of-run, and makes future Subscribe calls return
// nil. The static sinks are untouched. Idempotent.
func (f *Fanout) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	for sub := range f.subs {
		delete(f.subs, sub)
		f.nsubs.Add(-1)
		close(sub.ch)
	}
}

// Dropped reports the total events dropped across all subscribers over
// the Fanout's lifetime.
func (f *Fanout) Dropped() int64 { return f.dropped.Load() }

// Subscriber is one attached event consumer. Events arrive on Events()
// in emission order; the channel closes when the subscriber is detached
// (Unsubscribe or Close).
type Subscriber struct {
	ch      chan Event
	dropped atomic.Int64
}

// Events returns the subscriber's delivery channel.
func (s *Subscriber) Events() <-chan Event { return s.ch }

// Dropped reports how many events this subscriber lost to a full buffer.
func (s *Subscriber) Dropped() int64 { return s.dropped.Load() }
