package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// traceFromObserver runs a small instrumented workload through a
// JSONLSink and parses it back, exercising the full wire round trip.
func traceFromObserver(t *testing.T) *Trace {
	t.Helper()
	var buf bytes.Buffer
	o := New(NewJSONLSink(&buf))
	run := o.Root("run", Str("crit", "A"))
	search := run.Child("search")
	for i := 0; i < 3; i++ {
		probe := search.Child("probe")
		probe.End(Int("rules", i))
	}
	search.End()
	o.Annotate("fallback", Str("reason", "edge"))
	run.End()
	o.Registry().Counter("probes_total").Add(3)
	o.Registry().Gauge("pool_workers").Set(4)
	o.FlushMetrics()
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestObsReadTraceRoundTrip(t *testing.T) {
	tr := traceFromObserver(t)
	// 5 spans + 1 instant + 1 metrics record.
	if len(tr.Events) != 7 {
		t.Fatalf("got %d events, want 7", len(tr.Events))
	}
	if got := tr.Metrics["counter.probes_total"]; got != 3 {
		t.Fatalf("counter.probes_total = %v, want 3", got)
	}
	if got := tr.Metrics["gauge.pool_workers"]; got != 4 {
		t.Fatalf("gauge.pool_workers = %v, want 4", got)
	}
	// Span phase histograms flushed with the snapshot.
	if got := tr.Metrics["hist.phase_probe_seconds.count"]; got != 3 {
		t.Fatalf("hist.phase_probe_seconds.count = %v, want 3", got)
	}
	var run Event
	for _, ev := range tr.Events {
		if ev.Type == EventSpan && ev.Name == "run" {
			run = ev
		}
	}
	if run.Attr("crit") != "A" {
		t.Fatalf("run span lost its attrs: %+v", run.Attrs)
	}
}

func TestObsReadTraceRejectsMalformed(t *testing.T) {
	_, err := ReadTrace(strings.NewReader("{\"type\":\"span\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 parse error, got %v", err)
	}
}

func TestObsPhaseTreeAggregation(t *testing.T) {
	tr := traceFromObserver(t)
	roots := tr.PhaseTree()
	if len(roots) != 1 || roots[0].Name != "run" {
		t.Fatalf("want single root 'run', got %+v", roots)
	}
	run := roots[0]
	if run.Count != 1 || len(run.Children) != 1 {
		t.Fatalf("run node: %+v", run)
	}
	search := run.Children[0]
	if search.Name != "search" || len(search.Children) != 1 {
		t.Fatalf("search node: %+v", search)
	}
	probe := search.Children[0]
	if probe.Name != "probe" || probe.Count != 3 {
		t.Fatalf("probe spans should aggregate to one node with count 3: %+v", probe)
	}
	// Self = total minus children; the probe leaf has no children.
	if probe.Self != probe.Total {
		t.Fatalf("leaf self %v != total %v", probe.Self, probe.Total)
	}
	if search.Self != search.Total-probe.Total {
		t.Fatalf("search self %v, want total %v - probes %v", search.Self, search.Total, probe.Total)
	}
}

func TestObsWritePhaseTree(t *testing.T) {
	tr := traceFromObserver(t)
	var buf bytes.Buffer
	if err := WritePhaseTree(&buf, tr.PhaseTree()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"phase", "run", "  search", "    probe", "%root"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q in:\n%s", want, out)
		}
	}
}

// synthTrace builds a trace with one root span of the given duration and
// the given counter values, bypassing real timing so diffs are exact.
func synthTrace(runDur time.Duration, counters map[string]float64) *Trace {
	tr := &Trace{Metrics: map[string]float64{}}
	tr.Events = append(tr.Events, Event{Type: EventSpan, Name: "run", ID: 1, Duration: runDur})
	for k, v := range counters {
		tr.Metrics["counter."+k] = v
	}
	return tr
}

func TestObsDiffTracesFlagsRegressions(t *testing.T) {
	oldT := synthTrace(100*time.Millisecond, map[string]float64{"and_ops": 1000})
	newT := synthTrace(150*time.Millisecond, map[string]float64{"and_ops": 1300})
	regs := DiffTraces(oldT, newT, DiffOptions{Tolerance: 0.2})
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions (phase + counter), got %+v", regs)
	}
	// Sorted by descending growth: run +50% before and_ops +30%.
	if regs[0].Kind != "phase" || regs[0].Name != "run" {
		t.Fatalf("worst regression should be the run phase: %+v", regs[0])
	}
	if regs[1].Kind != "counter" || regs[1].Name != "and_ops" {
		t.Fatalf("second regression should be and_ops: %+v", regs[1])
	}
	if s := regs[0].String(); !strings.Contains(s, "run") || !strings.Contains(s, "+50%") {
		t.Fatalf("unhelpful regression string: %q", s)
	}
}

func TestObsDiffTracesRespectsTolerance(t *testing.T) {
	oldT := synthTrace(100*time.Millisecond, map[string]float64{"and_ops": 1000})
	newT := synthTrace(115*time.Millisecond, map[string]float64{"and_ops": 1100})
	if regs := DiffTraces(oldT, newT, DiffOptions{Tolerance: 0.2}); len(regs) != 0 {
		t.Fatalf("15%% and 10%% growth within 20%% tolerance, got %+v", regs)
	}
	if regs := DiffTraces(oldT, newT, DiffOptions{Tolerance: 0.05}); len(regs) != 2 {
		t.Fatalf("both should regress at 5%% tolerance, got %+v", regs)
	}
}

func TestObsDiffTracesNoiseFloors(t *testing.T) {
	// Phases under MinPhase in both runs are noise, not regressions —
	// even at 3x growth. Same for counters under MinCount.
	oldT := synthTrace(1*time.Millisecond, map[string]float64{"rare": 2})
	newT := synthTrace(3*time.Millisecond, map[string]float64{"rare": 6})
	if regs := DiffTraces(oldT, newT, DiffOptions{}); len(regs) != 0 {
		t.Fatalf("sub-floor values should be ignored, got %+v", regs)
	}
	// A phase only in the new trace is structural, not a regression.
	newT.Events = append(newT.Events, Event{Type: EventSpan, Name: "extra", ID: 9, Duration: time.Second})
	if regs := DiffTraces(oldT, newT, DiffOptions{}); len(regs) != 0 {
		t.Fatalf("new-only phases should be ignored, got %+v", regs)
	}
}
