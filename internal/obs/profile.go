package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Profiler owns the standard profiling outputs of a command:
// -cpuprofile, -memprofile and -trace. Combined with the per-phase
// pprof labels the core system applies when an Observer is attached,
// CPU profiles attribute samples to pipeline stages
// (`go tool pprof -tagfocus arcs_phase=verify ...`).
type Profiler struct {
	CPUProfile string
	MemProfile string
	TracePath  string
}

// RegisterFlags installs the profiling flags on fs.
func (p *Profiler) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&p.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&p.TracePath, "trace", "", "write a runtime execution trace to this file")
}

// Enabled reports whether any profile output was requested.
func (p *Profiler) Enabled() bool {
	return p.CPUProfile != "" || p.MemProfile != "" || p.TracePath != ""
}

// Start begins the requested profiles and returns a stop function that
// flushes and closes them; stop must run exactly once (defer it, and
// call it before any os.Exit). With no profiles requested both Start
// and stop are cheap no-ops.
func (p *Profiler) Start() (stop func() error, err error) {
	var cpuFile, traceFile *os.File
	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
	}
	if p.CPUProfile != "" {
		if cpuFile, err = os.Create(p.CPUProfile); err != nil {
			return nil, err
		}
		if err = pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: starting CPU profile: %w", err)
		}
	}
	if p.TracePath != "" {
		if traceFile, err = os.Create(p.TracePath); err != nil {
			cleanup()
			return nil, err
		}
		if err = trace.Start(traceFile); err != nil {
			cleanup()
			return nil, fmt.Errorf("obs: starting execution trace: %w", err)
		}
	}
	memPath := p.MemProfile
	return func() error {
		cleanup()
		if memPath == "" {
			return nil
		}
		f, err := os.Create(memPath)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // materialize the final live-heap state
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("obs: writing heap profile: %w", err)
		}
		return nil
	}, nil
}
