package obs

import (
	"runtime/debug"
	"runtime/metrics"
	"sync"
	"time"
)

// RuntimeHarvester samples Go runtime health — heap size, goroutine
// count, GC cycles and pause times — into a Registry, so a process
// serving live traffic exposes runtime pressure next to its pipeline
// metrics on the same scrape. Sample is cheap (runtime/metrics reads
// plus one ReadGCStats) and is meant to be called at phase boundaries
// and on every /metrics scrape rather than on a timer.
//
// Metrics written, all gauges unless noted:
//
//	go_goroutines                current goroutine count
//	go_heap_objects_bytes        live heap (object bytes)
//	go_memory_total_bytes        total runtime-managed memory
//	go_gc_cycles_total           completed GC cycles
//	go_gc_pause_total_us         cumulative stop-the-world pause time
//	go_gc_pause_seconds          histogram of individual pauses, fed the
//	                             pauses newly observed since the last
//	                             Sample
//
// A nil harvester is valid and Sample on it is a no-op, mirroring the
// nil-Observer convention.
type RuntimeHarvester struct {
	mu      sync.Mutex
	samples []metrics.Sample
	gcStats debug.GCStats

	lastGC int64 // NumGC at the previous Sample, for pause deltas

	gGoroutines *Gauge
	gHeapBytes  *Gauge
	gTotalBytes *Gauge
	gGCCycles   *Gauge
	gPauseTotal *Gauge
	hPause      *Histogram
}

// Runtime metric names sampled from runtime/metrics.
const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmHeapBytes  = "/memory/classes/heap/objects:bytes"
	rmTotalBytes = "/memory/classes/total:bytes"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
)

// NewRuntimeHarvester builds a harvester writing into reg. A nil reg
// yields a nil harvester (whose Sample is a no-op).
func NewRuntimeHarvester(reg *Registry) *RuntimeHarvester {
	if reg == nil {
		return nil
	}
	h := &RuntimeHarvester{
		samples: []metrics.Sample{
			{Name: rmGoroutines},
			{Name: rmHeapBytes},
			{Name: rmTotalBytes},
			{Name: rmGCCycles},
		},
		gGoroutines: reg.Gauge("go_goroutines"),
		gHeapBytes:  reg.Gauge("go_heap_objects_bytes"),
		gTotalBytes: reg.Gauge("go_memory_total_bytes"),
		gGCCycles:   reg.Gauge("go_gc_cycles_total"),
		gPauseTotal: reg.Gauge("go_gc_pause_total_us"),
		hPause:      reg.Histogram("go_gc_pause_seconds"),
	}
	// GCStats.Pause history; the runtime retains up to 256 recent pauses.
	h.gcStats.Pause = make([]time.Duration, 256)
	return h
}

// Sample reads the runtime counters into the registry. Safe for
// concurrent use; no-op on a nil harvester.
func (h *RuntimeHarvester) Sample() {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	metrics.Read(h.samples)
	for i := range h.samples {
		s := &h.samples[i]
		if s.Value.Kind() != metrics.KindUint64 {
			continue
		}
		v := int64(s.Value.Uint64())
		switch s.Name {
		case rmGoroutines:
			h.gGoroutines.Set(v)
		case rmHeapBytes:
			h.gHeapBytes.Set(v)
		case rmTotalBytes:
			h.gTotalBytes.Set(v)
		case rmGCCycles:
			h.gGCCycles.Set(v)
		}
	}
	debug.ReadGCStats(&h.gcStats)
	h.gPauseTotal.Set(h.gcStats.PauseTotal.Microseconds())
	// GCStats.Pause is most-recent-first; feed only the pauses that
	// completed since the previous Sample into the distribution.
	newPauses := h.gcStats.NumGC - h.lastGC
	if newPauses > int64(len(h.gcStats.Pause)) {
		newPauses = int64(len(h.gcStats.Pause))
	}
	for i := int64(0); i < newPauses; i++ {
		h.hPause.Observe(h.gcStats.Pause[i].Seconds())
	}
	h.lastGC = h.gcStats.NumGC
}
