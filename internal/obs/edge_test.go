package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// Satellite coverage: MemSink bounding, metrics-snapshot flushing,
// Prometheus exposition edge cases, and the registry fast-path
// benchmark backing the RWMutex change.

func TestObsMemSinkCapDropsAndCounts(t *testing.T) {
	sink := &MemSink{Cap: 2}
	o := New(sink)
	for i := 0; i < 5; i++ {
		o.Root("s").End()
	}
	if got := sink.Len(); got != 2 {
		t.Fatalf("capped sink holds %d events, want 2", got)
	}
	if got := sink.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	// The retained events are the earliest ones.
	if evs := sink.Events(); evs[0].ID >= evs[1].ID {
		t.Fatalf("retained events out of order: %+v", evs)
	}

	unbounded := &MemSink{}
	for i := 0; i < 5; i++ {
		unbounded.Emit(Event{Type: EventSpan, Name: "s"})
	}
	if unbounded.Len() != 5 || unbounded.Dropped() != 0 {
		t.Fatalf("unbounded sink: len=%d dropped=%d", unbounded.Len(), unbounded.Dropped())
	}
}

func TestObsFlushMetricsEmitsSnapshot(t *testing.T) {
	sink := &MemSink{}
	o := New(sink)
	o.Registry().Counter("ops_total").Add(7)
	o.Registry().Gauge("depth").Set(-2)
	o.Registry().HistogramBuckets("sz", SizeBuckets).Observe(3)
	o.FlushMetrics()

	evs := sink.Events()
	if len(evs) != 1 || evs[0].Type != EventMetrics {
		t.Fatalf("want one metrics event, got %+v", evs)
	}
	ev := evs[0]
	for key, want := range map[string]string{
		"counter.ops_total": "7",
		"gauge.depth":       "-2",
		"hist.sz.count":     "1",
		"hist.sz.sum":       "3",
	} {
		if got := ev.Attr(key); got != want {
			t.Fatalf("metrics attr %s = %q, want %q (attrs: %+v)", key, got, want, ev.Attrs)
		}
	}

	// Nil observer and sinkless observer both no-op.
	var nilObs *Observer
	nilObs.FlushMetrics()
	New(nil).FlushMetrics()
}

func TestObsSanitizeMetricNameEdgeCases(t *testing.T) {
	cases := map[string]string{
		"bin.occupancy":   "bin_occupancy",
		"héllo":           "h__llo", // byte-wise: 2-byte rune -> 2 underscores
		"a b\tc":          "a_b_c",
		"7":               "_",
		"":                "",
		"__already_ok__":  "__already_ok__",
		"per-level/prune": "per_level_prune",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestObsPrometheusEmptyHistogram(t *testing.T) {
	// A histogram that was created but never observed must still render
	// a complete, well-formed series: all buckets 0, sum 0, count 0.
	r := NewRegistry()
	r.HistogramBuckets("empty_hist", []float64{1, 2})
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot(), ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE empty_hist histogram",
		`empty_hist_bucket{le="1"} 0`,
		`empty_hist_bucket{le="2"} 0`,
		`empty_hist_bucket{le="+Inf"} 0`,
		"empty_hist_sum 0",
		"empty_hist_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("empty histogram missing %q in:\n%s", want, out)
		}
	}
}

func TestObsPrometheusNonFiniteValues(t *testing.T) {
	// Gauges and counters are integer-valued, so non-finite values enter
	// through histogram observations. The text format carries NaN and
	// +Inf natively; the JSON snapshot must clamp them instead, because
	// encoding/json rejects non-finite floats outright.
	r := NewRegistry()
	r.HistogramBuckets("weird", []float64{1}).Observe(math.Inf(1))
	r.HistogramBuckets("nan_hist", []float64{1}).Observe(math.NaN())
	snap := r.Snapshot()

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, snap, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "weird_sum +Inf") {
		t.Fatalf("text exposition should render +Inf raw:\n%s", out)
	}
	if !strings.Contains(out, "nan_hist_sum NaN") {
		t.Fatalf("text exposition should render NaN raw:\n%s", out)
	}
	// The +Inf observation lands in the overflow bucket only.
	if !strings.Contains(out, `weird_bucket{le="1"} 0`) || !strings.Contains(out, `weird_bucket{le="+Inf"} 1`) {
		t.Fatalf("infinite observation misbucketed:\n%s", out)
	}

	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("snapshot with non-finite values must stay JSON-marshalable: %v", err)
	}
	var round map[string]any
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if strings.Contains(string(data), "Inf") || strings.Contains(string(data), "NaN") {
		t.Fatalf("non-finite literals leaked into JSON: %s", data)
	}
}

func TestObsBucketJSONClampsInfiniteBound(t *testing.T) {
	data, err := json.Marshal(Bucket{UpperBound: math.Inf(1), Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"count":3`) || strings.Contains(string(data), "Inf") {
		t.Fatalf("bucket JSON = %s", data)
	}
}

// TestObsRegistryParallelLookupSafety cross-checks the RWMutex fast
// path under racing creators and readers (run with -race in CI).
func TestObsRegistryParallelLookupSafety(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter(fmt.Sprintf("c%d", i%16)).Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(0.001)
			}
		}(g)
	}
	wg.Wait()
	snap := r.Snapshot()
	var total int64
	for _, v := range snap.Counters {
		total += v
	}
	if total != 8*200 {
		t.Fatalf("counter increments lost: %d, want %d", total, 8*200)
	}
	if snap.Gauges["g"] != 8*200 {
		t.Fatalf("gauge = %d, want %d", snap.Gauges["g"], 8*200)
	}
}

// BenchmarkRegistryLookupParallel is the evidence for the read-mostly
// fast path: steady-state handle lookups from many goroutines (the
// BitOp worker pattern before handles were cached) must scale instead of
// serializing on the registry mutex. Compare with the serial variant —
// under the old full-mutex lookup the parallel ns/op degraded well below
// serial throughput; with RLock it tracks the core count.
func BenchmarkRegistryLookupParallel(b *testing.B) {
	r := NewRegistry()
	r.Counter("hot_counter") // pre-create: steady state is lookup-only
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Counter("hot_counter").Inc()
		}
	})
}

func BenchmarkRegistryLookupSerial(b *testing.B) {
	r := NewRegistry()
	r.Counter("hot_counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("hot_counter").Inc()
	}
}
