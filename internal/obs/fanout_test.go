package obs

import (
	"sync"
	"testing"
	"time"
)

func ev(name string) Event {
	return Event{Type: EventSpan, Name: name, ID: 1, Start: time.Unix(0, 0)}
}

func TestObsFanoutTeesToStaticSinks(t *testing.T) {
	a, b := &MemSink{}, &MemSink{}
	f := NewFanout(a, nil, b) // nils are skipped
	f.Emit(ev("x"))
	f.Emit(ev("y"))
	if a.Len() != 2 || b.Len() != 2 {
		t.Fatalf("static sinks got %d/%d events, want 2/2", a.Len(), b.Len())
	}
}

func TestObsFanoutSubscriberReceivesInOrder(t *testing.T) {
	f := NewFanout()
	sub := f.Subscribe(8)
	f.Emit(ev("first"))
	f.Emit(ev("second"))
	f.Close()
	var names []string
	for e := range sub.Events() {
		names = append(names, e.Name)
	}
	if len(names) != 2 || names[0] != "first" || names[1] != "second" {
		t.Fatalf("subscriber saw %v, want [first second]", names)
	}
}

func TestObsFanoutSlowConsumerDrops(t *testing.T) {
	reg := NewRegistry()
	f := NewFanout()
	f.SetDropCounter(reg.Counter("drops"))
	sub := f.Subscribe(2)
	for i := 0; i < 5; i++ {
		f.Emit(ev("e")) // nobody draining: buffer of 2 fills, 3 drop
	}
	if got := sub.Dropped(); got != 3 {
		t.Fatalf("subscriber dropped %d, want 3", got)
	}
	if got := f.Dropped(); got != 3 {
		t.Fatalf("fanout dropped %d, want 3", got)
	}
	if got := reg.Counter("drops").Value(); got != 3 {
		t.Fatalf("drop counter at %d, want 3", got)
	}
	// The two buffered events are still deliverable.
	f.Unsubscribe(sub)
	n := 0
	for range sub.Events() {
		n++
	}
	if n != 2 {
		t.Fatalf("drained %d buffered events, want 2", n)
	}
}

func TestObsFanoutCloseEndsSubscribersAndRefusesNew(t *testing.T) {
	f := NewFanout()
	sub := f.Subscribe(1)
	f.Close()
	if _, ok := <-sub.Events(); ok {
		t.Fatal("subscriber channel still open after Close")
	}
	if got := f.Subscribe(1); got != nil {
		t.Fatal("Subscribe after Close returned a live subscriber, want nil")
	}
	f.Close()          // idempotent
	f.Unsubscribe(sub) // already detached: no panic
	f.Unsubscribe(nil) // nil-safe
	f.Emit(ev("post")) // no subscribers left: nothing to do
}

func TestObsFanoutConcurrentEmitAndUnsubscribe(t *testing.T) {
	f := NewFanout(&MemSink{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := f.Subscribe(4)
			if sub == nil {
				return
			}
			for j := 0; j < 10; j++ {
				select {
				case <-sub.Events():
				default:
				}
			}
			f.Unsubscribe(sub)
		}()
	}
	for i := 0; i < 200; i++ {
		f.Emit(ev("race"))
	}
	wg.Wait()
	f.Close()
}

// TestZeroAllocFanoutEmitNoSubscribers guards the tentpole's zero-alloc
// promise: with no HTTP client attached (zero subscribers), routing the
// probe hot path's events through a Fanout allocates nothing beyond what
// its static sinks do — here none, with a FlightRecorder leg.
func TestZeroAllocFanoutEmitNoSubscribers(t *testing.T) {
	flight := NewFlightRecorder(64)
	f := NewFanout(flight.RunSink("r1"))
	e := ev("probe")
	allocs := testing.AllocsPerRun(100, func() { f.Emit(e) })
	if allocs != 0 {
		t.Fatalf("Fanout.Emit with no subscribers allocates %.1f/op, want 0", allocs)
	}
}
