package obs

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a flat, process-local metrics store. Handles are created
// on first use and cached by name; hot paths should hold onto handles
// rather than re-looking them up. All handle methods are atomic and
// nil-safe: a nil *Counter/*Gauge/*Histogram (as handed out by a nil
// Registry) silently discards updates, so instrumented code never
// branches on whether observability is on.
//
// Lookups are read-mostly: after the first access a name only ever
// needs a shared read lock, so concurrent workers (e.g. the BitOp pool
// re-resolving handles per round) never serialize on the registry.
// Creation takes the write lock and re-checks under it.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	fgauges  map[string]*FloatGauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		fgauges:  make(map[string]*FloatGauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named monotonic counter, creating it on first use.
// Nil-safe: a nil registry returns a nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns the named float gauge, creating it on first use.
// Nil-safe.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.fgauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.fgauges[name]; !ok {
		g = &FloatGauge{}
		r.fgauges[name] = g
	}
	return g
}

// DurationBuckets are the default histogram bounds (seconds), spanning
// sub-millisecond probe phases to minute-scale full runs.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// SizeBuckets are power-of-two bounds for count-valued histograms
// (batch sizes, rule counts).
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Histogram returns the named histogram with the default duration
// buckets, creating it on first use. Nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramBuckets(name, DurationBuckets)
}

// HistogramBuckets returns the named histogram, creating it with the
// given ascending upper bounds on first use (later calls reuse the
// existing buckets regardless of bounds). Nil-safe.
func (r *Registry) HistogramBuckets(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter; no-op on a nil handle.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter, 0 on a nil handle.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value; no-op on a nil handle.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by n; no-op on a nil handle.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value reads the gauge, 0 on a nil handle.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is a float-valued metric that can go up and down — ratios,
// percentages, costs. Snapshots clamp non-finite values the same way
// HistogramSnapshot does, so keep unbounded measures (e.g. conviction)
// capped at the source if the raw value matters downstream.
type FloatGauge struct{ v atomicFloat }

// Set stores the gauge value; no-op on a nil handle.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.store(v)
}

// Add moves the gauge by v; no-op on a nil handle.
func (g *FloatGauge) Add(v float64) {
	if g == nil {
		return
	}
	g.v.add(v)
}

// Value reads the gauge, 0 on a nil handle.
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.load()
}

// Histogram is a fixed-bucket distribution with atomic observation:
// cumulative-on-read buckets plus running count, sum, min and max.
type Histogram struct {
	bounds []float64      // ascending upper bounds; implicit +Inf last
	counts []atomic.Int64 // len(bounds)+1, last is the overflow bucket
	count  atomic.Int64
	sum    atomicFloat
	min    atomicFloat
	max    atomicFloat
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	h.min.store(math.Inf(1))
	h.max.store(math.Inf(-1))
	return h
}

// Observe records one value; no-op on a nil handle.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bucket with bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.min.storeMin(v)
	h.max.storeMax(v)
}

// Count reads the total observations, 0 on a nil handle.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// atomicFloat is a CAS-updated float64.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) storeMin(v float64) {
	for {
		old := f.bits.Load()
		if v >= math.Float64frombits(old) || f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (f *atomicFloat) storeMax(v float64) {
	for {
		old := f.bits.Load()
		if v <= math.Float64frombits(old) || f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Snapshot is a point-in-time export of a registry, JSON-serializable
// (no infinities) and renderable as Prometheus text via
// WritePrometheus.
type Snapshot struct {
	Counters map[string]int64 `json:"counters,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
	// FloatGauges hold float-valued gauges; non-finite values are
	// clamped at snapshot time (see jsonSafe).
	FloatGauges map[string]float64           `json:"float_gauges,omitempty"`
	Histograms  map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is one histogram's exported state. Buckets are
// cumulative over the finite bounds; the implicit +Inf bucket equals
// Count. Min/Max are 0 when Count is 0.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// MarshalJSON keeps the snapshot JSON-serializable even when NaN or
// ±Inf values were observed (encoding/json rejects non-finite floats):
// NaN encodes as 0 and ±Inf clamps to ±MaxFloat64. WritePrometheus
// renders the raw values instead — the text exposition format supports
// NaN and +Inf natively.
func (h HistogramSnapshot) MarshalJSON() ([]byte, error) {
	type alias HistogramSnapshot // drops the method, avoiding recursion
	a := alias(h)
	a.Sum, a.Min, a.Max = jsonSafe(a.Sum), jsonSafe(a.Min), jsonSafe(a.Max)
	return json.Marshal(a)
}

// jsonSafe maps a non-finite float to its nearest JSON-encodable value.
func jsonSafe(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	}
	return v
}

// Bucket is one cumulative histogram bucket: observations <= UpperBound.
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// MarshalJSON clamps a non-finite upper bound (legal in custom bucket
// layouts) the same way HistogramSnapshot does.
func (b Bucket) MarshalJSON() ([]byte, error) {
	type alias Bucket
	a := alias(b)
	a.UpperBound = jsonSafe(a.UpperBound)
	return json.Marshal(a)
}

// Mean is the average observed value, 0 when empty.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Snapshot exports the registry's current state. Nil-safe: a nil
// registry yields an empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:    map[string]int64{},
		Gauges:      map[string]int64{},
		FloatGauges: map[string]float64{},
		Histograms:  map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, g := range r.fgauges {
		s.FloatGauges[name] = jsonSafe(g.Value())
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count:   h.count.Load(),
			Sum:     h.sum.load(),
			Buckets: make([]Bucket, len(h.bounds)),
		}
		if hs.Count > 0 {
			hs.Min, hs.Max = h.min.load(), h.max.load()
		}
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			hs.Buckets[i] = Bucket{UpperBound: b, Count: cum}
		}
		s.Histograms[name] = hs
	}
	return s
}
