// Package obs is the pipeline's observability layer: nestable timed
// spans, a counters/gauges/histograms registry, and pluggable event
// sinks (in-memory, JSONL trace, Prometheus text exposition), plus the
// profiling and structured-logging helpers shared by the commands.
//
// The layer is built to cost nothing when it is off. A nil *Observer is
// the disabled observer: every method on it — and on the zero Span and
// on nil metric handles — is a no-op that performs no allocation, so
// call sites never need an "is observability on?" branch. The core
// system threads Span values through the pipeline explicitly instead of
// using a context, keeping the hot probe path free of interface and map
// traffic.
//
// Span taxonomy (parent → child), as emitted by internal/core:
//
//	init                  system construction (core.New)
//	  ingest              axis statistics + reservoir sample pass
//	                      (skipped when fused into count)
//	  binfit              axis binner construction
//	  count               count-backend fill pass (dense, sharded,
//	                      or fused single-pass with ingest)
//	  reorder             categorical densest-cluster reordering
//	  verify-index        verification-sample pre-binning
//	run                   one RunValue feedback loop
//	  search              optimizer strategy
//	    probe-batch       one worker-pool batch of threshold probes
//	      probe           one (support, confidence) evaluation
//	        mine          GenAssociationRules + grid + smoothing
//	        cluster       BitOp rectangles + rule conversion
//	        verify        repeated k-of-n error measurement
//	        mdl           MDL cost
//	  mine-final          re-mine at the winning thresholds
//	  verify-final        full-sample error counts
//
// Every span's duration is also recorded in the registry as a
// `phase_<name>_seconds` histogram, so per-phase latency distributions
// survive even when no sink is attached.
package obs

import (
	"expvar"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span or event. Values are
// strings so events serialize uniformly; use the Int/Float/Str
// constructors.
type Attr struct {
	Key   string
	Value string
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// Float builds a float attribute with full round-trip precision.
func Float(k string, v float64) Attr {
	return Attr{Key: k, Value: strconv.FormatFloat(v, 'g', -1, 64)}
}

// Observer is the root of the observability layer: it issues span IDs,
// owns the metrics registry, and forwards finished spans to the sink.
// A nil Observer is valid and disables everything. An Observer is safe
// for concurrent use.
type Observer struct {
	sink Sink
	reg  *Registry
	ids  atomic.Uint64
}

// New builds an enabled Observer with a fresh registry. sink may be nil:
// metrics are still collected, spans are timed into the phase histograms
// but no events are emitted.
func New(sink Sink) *Observer {
	return NewWithRegistry(sink, nil)
}

// NewWithRegistry builds an enabled Observer writing metrics into an
// existing registry (a fresh one when reg is nil). It is how a daemon
// aggregates many runs onto one scrape surface: each run gets its own
// Observer and sink (so its span stream is separable) while every run's
// counters and histograms accumulate in the shared registry.
func NewWithRegistry(sink Sink, reg *Registry) *Observer {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Observer{sink: sink, reg: reg}
}

// Enabled reports whether the observer records anything.
func (o *Observer) Enabled() bool { return o != nil }

// Registry returns the metrics registry, nil for the disabled observer
// (Registry methods are nil-safe, so the result can be used directly).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Root starts a new top-level span. On the disabled observer it returns
// the zero Span, whose methods all no-op.
func (o *Observer) Root(name string, attrs ...Attr) Span {
	if o == nil {
		return Span{}
	}
	return Span{obs: o, name: name, id: o.ids.Add(1), start: time.Now(), attrs: attrs}
}

// Annotate emits an instantaneous event (no duration), e.g. a
// verify-index fallback with its reason.
func (o *Observer) Annotate(name string, attrs ...Attr) {
	if o == nil || o.sink == nil {
		return
	}
	o.sink.Emit(Event{
		Type:  EventInstant,
		Name:  name,
		ID:    o.ids.Add(1),
		Start: time.Now(),
		Attrs: attrs,
	})
}

// Span is one nestable timed region. The zero Span is the disabled span:
// Child returns another disabled span and End does nothing, so spans can
// be threaded through code unconditionally.
type Span struct {
	obs    *Observer
	name   string
	id     uint64
	parent uint64
	start  time.Time
	attrs  []Attr
}

// Enabled reports whether the span will be emitted.
func (s Span) Enabled() bool { return s.obs != nil }

// Child starts a nested span.
func (s Span) Child(name string, attrs ...Attr) Span {
	if s.obs == nil {
		return Span{}
	}
	return Span{obs: s.obs, name: name, id: s.obs.ids.Add(1), parent: s.id, start: time.Now(), attrs: attrs}
}

// End finishes the span: its duration is recorded in the
// phase_<name>_seconds histogram and, when a sink is attached, a span
// event carrying the start attributes plus attrs is emitted.
func (s Span) End(attrs ...Attr) {
	if s.obs == nil {
		return
	}
	d := time.Since(s.start)
	s.obs.reg.Histogram("phase_" + s.name + "_seconds").Observe(d.Seconds())
	if s.obs.sink == nil {
		return
	}
	all := s.attrs
	if len(attrs) > 0 {
		all = make([]Attr, 0, len(s.attrs)+len(attrs))
		all = append(append(all, s.attrs...), attrs...)
	}
	s.obs.sink.Emit(Event{
		Type:     EventSpan,
		Name:     s.name,
		ID:       s.id,
		Parent:   s.parent,
		Start:    s.start,
		Duration: d,
		Attrs:    all,
	})
}

// FlushMetrics emits one EventMetrics record carrying the registry's
// current snapshot into the sink, with counters as "counter.<name>"
// attributes, gauges as "gauge.<name>", and each histogram's count and
// sum as "hist.<name>.count" / "hist.<name>.sum". Commands call it once
// before closing a trace sink so `arcstrace diff` can compare counters
// across runs. No-op on the disabled observer or without a sink.
func (o *Observer) FlushMetrics() {
	if o == nil || o.sink == nil {
		return
	}
	snap := o.reg.Snapshot()
	attrs := make([]Attr, 0, len(snap.Counters)+len(snap.Gauges)+len(snap.FloatGauges)+2*len(snap.Histograms))
	for _, name := range sortedKeys(snap.Counters) {
		attrs = append(attrs, Attr{Key: "counter." + name, Value: strconv.FormatInt(snap.Counters[name], 10)})
	}
	for _, name := range sortedKeys(snap.Gauges) {
		attrs = append(attrs, Attr{Key: "gauge." + name, Value: strconv.FormatInt(snap.Gauges[name], 10)})
	}
	for _, name := range sortedKeys(snap.FloatGauges) {
		attrs = append(attrs, Attr{Key: "gauge." + name, Value: strconv.FormatFloat(snap.FloatGauges[name], 'g', -1, 64)})
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		attrs = append(attrs,
			Attr{Key: "hist." + name + ".count", Value: strconv.FormatInt(h.Count, 10)},
			Attr{Key: "hist." + name + ".sum", Value: strconv.FormatFloat(h.Sum, 'g', -1, 64)})
	}
	o.sink.Emit(Event{
		Type:  EventMetrics,
		Name:  "registry",
		ID:    o.ids.Add(1),
		Start: time.Now(),
		Attrs: attrs,
	})
}

// expvarHolders tracks the registries this package has published, so a
// name can be re-pointed at a fresh registry. expvar.Publish panics on a
// duplicate name and offers no unpublish, so the published Func reads
// through a swappable holder instead of capturing the registry directly.
var (
	expvarMu      sync.Mutex
	expvarHolders = map[string]*atomic.Pointer[Registry]{}
)

// PublishExpvar exposes the registry's live snapshot as an expvar
// variable, visible on /debug/vars whenever an HTTP server is serving
// the default mux. Publishing a name this package already published
// re-points the variable at reg — a restarted in-process daemon serves
// the new registry, not a stale snapshot of the old one. Publishing a
// name some other package owns fails rather than silently serving the
// other publisher's data.
func PublishExpvar(name string, reg *Registry) error {
	if reg == nil {
		return fmt.Errorf("obs: cannot publish nil registry as expvar %q", name)
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if h, ok := expvarHolders[name]; ok {
		h.Store(reg)
		return nil
	}
	if expvar.Get(name) != nil {
		return fmt.Errorf("obs: expvar %q is already published outside this package", name)
	}
	h := &atomic.Pointer[Registry]{}
	h.Store(reg)
	expvarHolders[name] = h
	expvar.Publish(name, expvar.Func(func() any { return h.Load().Snapshot() }))
	return nil
}
