package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// SetupSlog builds the structured logger shared by the commands and
// installs it as the process default: a text or JSON handler on w,
// Debug level when verbose, Info otherwise. format "" means "text".
func SetupSlog(w io.Writer, format string, verbose bool) (*slog.Logger, error) {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	logger := slog.New(h)
	slog.SetDefault(logger)
	return logger, nil
}
