package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters as `<ns>_<name>`, gauges likewise,
// histograms as the conventional `_bucket{le="..."}` cumulative series
// plus `_sum` and `_count`. Metric names are sanitized to the
// [a-zA-Z_][a-zA-Z0-9_]* charset and emitted in sorted order so
// successive scrapes diff cleanly.
func WritePrometheus(w io.Writer, s *Snapshot, namespace string) error {
	if s == nil {
		return nil
	}
	ns := sanitizeMetricName(namespace)
	full := func(name string) string {
		if ns == "" {
			return sanitizeMetricName(name)
		}
		return ns + "_" + sanitizeMetricName(name)
	}
	for _, name := range sortedKeys(s.Counters) {
		fn := full(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", fn, fn, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		fn := full(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", fn, fn, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.FloatGauges) {
		fn := full(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", fn, fn,
			strconv.FormatFloat(s.FloatGauges[name], 'g', -1, 64)); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		fn := full(name)
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", fn); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n",
				fn, strconv.FormatFloat(b.UpperBound, 'g', -1, 64), b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			fn, h.Count, fn, strconv.FormatFloat(h.Sum, 'g', -1, 64), fn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sanitizeMetricName maps a name into the Prometheus metric charset,
// replacing every invalid rune with '_'.
func sanitizeMetricName(name string) string {
	out := []byte(name)
	for i := 0; i < len(out); i++ {
		c := out[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			out[i] = '_'
		}
	}
	return string(out)
}
