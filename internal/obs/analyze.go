package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// This file is the consumer side of the JSONL trace format: parsing a
// trace back into events, aggregating its spans into a per-phase tree
// with self/total times, and diffing two traces for the CI perf gate.
// It lives in obs so the wire format (jsonlEvent) has exactly one
// definition; cmd/arcstrace is a thin front-end over these functions.

// Trace is a parsed JSONL span trace.
type Trace struct {
	// Events holds every record in file order.
	Events []Event
	// Metrics is the flattened registry snapshot from the last
	// EventMetrics record, keyed by the attribute name (e.g.
	// "counter.probe_cache_misses_total"). Empty when the trace carries
	// no metrics event.
	Metrics map[string]float64
}

// ReadTrace parses a JSONL trace stream. Blank lines are skipped; a
// malformed line fails with its line number.
func ReadTrace(r io.Reader) (*Trace, error) {
	t := &Trace{Metrics: map[string]float64{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec jsonlEvent
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", lineNo, err)
		}
		ev := Event{
			Type:     rec.Type,
			Name:     rec.Name,
			ID:       rec.ID,
			Parent:   rec.Parent,
			Start:    time.UnixMicro(rec.StartUS),
			Duration: time.Duration(rec.DurUS) * time.Microsecond,
		}
		if len(rec.Attrs) > 0 {
			keys := make([]string, 0, len(rec.Attrs))
			for k := range rec.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				ev.Attrs = append(ev.Attrs, Attr{Key: k, Value: rec.Attrs[k]})
			}
		}
		// Multi-run streams (flight-recorder dumps) attribute events to
		// runs at the wire level; surface that as an attribute so the
		// analyzers and arcstrace can see it without a schema change.
		if rec.Run != "" && ev.Attr("run") == "" {
			ev.Attrs = append(ev.Attrs, Attr{Key: "run", Value: rec.Run})
		}
		if ev.Type == EventMetrics {
			for _, a := range ev.Attrs {
				if v, err := strconv.ParseFloat(a.Value, 64); err == nil {
					t.Metrics[a.Key] = v
				}
			}
		}
		t.Events = append(t.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return t, nil
}

// PhaseNode aggregates every span with the same name-path (root span
// name down to this span's name) in a trace.
type PhaseNode struct {
	// Name is the span name.
	Name string
	// Count is the number of spans aggregated into this node.
	Count int
	// Total is the summed duration of those spans.
	Total time.Duration
	// Self is Total minus the Total of the node's children — the time
	// spent in this phase itself rather than in instrumented sub-phases.
	Self time.Duration
	// Events counts instant annotations attached to these spans.
	Events int
	// Children are the sub-phases, ordered by descending Total.
	Children []*PhaseNode
}

// PhaseTree aggregates the trace's spans into per-phase nodes keyed by
// their name path: all "probe" spans under "search/probe-batch"
// collapse into one node with Count = number of probes. Roots are
// returned in first-appearance order.
func (t *Trace) PhaseTree() []*PhaseNode {
	type spanInfo struct {
		name   string
		parent uint64
	}
	spans := map[uint64]spanInfo{}
	for _, ev := range t.Events {
		if ev.Type == EventSpan {
			spans[ev.ID] = spanInfo{name: ev.Name, parent: ev.Parent}
		}
	}
	// path resolves a span's name path; unknown parents (span never
	// finished, or trace truncated) root the path at the span itself.
	var path func(id uint64) string
	pathMemo := map[uint64]string{}
	path = func(id uint64) string {
		if p, ok := pathMemo[id]; ok {
			return p
		}
		info := spans[id]
		p := info.name
		if _, ok := spans[info.parent]; ok && info.parent != 0 {
			p = path(info.parent) + "/" + info.name
		}
		pathMemo[id] = p
		return p
	}
	nodes := map[string]*PhaseNode{}
	var order []string
	node := func(p, name string) *PhaseNode {
		n, ok := nodes[p]
		if !ok {
			n = &PhaseNode{Name: name}
			nodes[p] = n
			order = append(order, p)
		}
		return n
	}
	for _, ev := range t.Events {
		switch ev.Type {
		case EventSpan:
			p := path(ev.ID)
			n := node(p, ev.Name)
			n.Count++
			n.Total += ev.Duration
		case EventInstant:
			if parent, ok := spans[ev.Parent]; ok {
				node(path(ev.Parent), parent.name).Events++
			}
		}
	}
	// Wire up parent/child links and self times.
	var roots []*PhaseNode
	for _, p := range order {
		n := nodes[p]
		if i := strings.LastIndex(p, "/"); i >= 0 {
			parent := nodes[p[:i]]
			parent.Children = append(parent.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	for _, p := range order {
		n := nodes[p]
		n.Self = n.Total
		for _, c := range n.Children {
			n.Self -= c.Total
		}
		sort.SliceStable(n.Children, func(i, j int) bool {
			return n.Children[i].Total > n.Children[j].Total
		})
	}
	return roots
}

// WritePhaseTree renders the phase tree as an aligned text table:
// indented phase names with call counts, total and self durations, and
// the share of the root's total.
func WritePhaseTree(w io.Writer, roots []*PhaseNode) error {
	if _, err := fmt.Fprintf(w, "%-40s %8s %12s %12s %7s\n",
		"phase", "count", "total", "self", "%root"); err != nil {
		return err
	}
	for _, root := range roots {
		rootTotal := root.Total
		var walk func(n *PhaseNode, depth int) error
		walk = func(n *PhaseNode, depth int) error {
			label := strings.Repeat("  ", depth) + n.Name
			if n.Events > 0 {
				label += fmt.Sprintf(" (+%d events)", n.Events)
			}
			pct := 0.0
			if rootTotal > 0 {
				pct = 100 * float64(n.Total) / float64(rootTotal)
			}
			if _, err := fmt.Fprintf(w, "%-40s %8d %12s %12s %6.1f%%\n",
				label, n.Count, formatDur(n.Total), formatDur(n.Self), pct); err != nil {
				return err
			}
			for _, c := range n.Children {
				if err := walk(c, depth+1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := walk(root, 0); err != nil {
			return err
		}
	}
	return nil
}

func formatDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// DiffOptions configures a trace comparison.
type DiffOptions struct {
	// Tolerance is the fractional growth allowed before a phase time or
	// counter counts as regressed (0.2 = 20%). Zero means 0.2.
	Tolerance float64
	// MinPhase is the noise floor for phase-time comparisons: phases
	// whose total stayed under it in both traces are skipped. Zero
	// means 5ms.
	MinPhase time.Duration
	// MinCount is the noise floor for counter comparisons: counters
	// under it in both traces are skipped. Zero means 16.
	MinCount float64
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.Tolerance == 0 {
		o.Tolerance = 0.2
	}
	if o.MinPhase == 0 {
		o.MinPhase = 5 * time.Millisecond
	}
	if o.MinCount == 0 {
		o.MinCount = 16
	}
	return o
}

// Regression is one metric that grew beyond the tolerance between two
// traces.
type Regression struct {
	// Kind is "phase" (aggregate span time) or "counter" (a metrics
	// snapshot value).
	Kind string
	// Name is the phase name path or counter name.
	Name string
	// Old and New are the compared values: seconds for phases, raw
	// values for counters.
	Old, New float64
	// Growth is New/Old - 1 (e.g. 0.35 = 35% worse).
	Growth float64
}

func (r Regression) String() string {
	switch r.Kind {
	case "phase":
		return fmt.Sprintf("phase %-40s %10.4fs -> %10.4fs  (+%.0f%%)", r.Name, r.Old, r.New, 100*r.Growth)
	case "quality":
		// Quality values are small floats (error percent, IoU) where
		// the counter rendering's %.0f would round away the signal.
		return fmt.Sprintf("%-5s %-40s %12.4f -> %12.4f  (+%.0f%%)", r.Kind, r.Name, r.Old, r.New, 100*r.Growth)
	}
	return fmt.Sprintf("%-5s %-40s %12.0f -> %12.0f  (+%.0f%%)", r.Kind, r.Name, r.Old, r.New, 100*r.Growth)
}

// DiffTraces compares aggregate per-phase times and metric counters of
// two traces, returning every regression beyond the tolerance, sorted
// by descending growth. Phases or counters present in only one trace
// are ignored: the gate compares like with like, and structural changes
// surface through review, not the perf smoke.
func DiffTraces(oldT, newT *Trace, opts DiffOptions) []Regression {
	opts = opts.withDefaults()
	var out []Regression

	oldPhases := flattenPhases(oldT.PhaseTree())
	newPhases := flattenPhases(newT.PhaseTree())
	for p, nn := range newPhases {
		on, ok := oldPhases[p]
		if !ok {
			continue
		}
		if on.Total < opts.MinPhase && nn.Total < opts.MinPhase {
			continue
		}
		if on.Total <= 0 {
			continue
		}
		growth := float64(nn.Total)/float64(on.Total) - 1
		if growth > opts.Tolerance {
			out = append(out, Regression{
				Kind: "phase", Name: p,
				Old: on.Total.Seconds(), New: nn.Total.Seconds(),
				Growth: growth,
			})
		}
	}

	for name, nv := range newT.Metrics {
		if !strings.HasPrefix(name, "counter.") {
			continue
		}
		ov, ok := oldT.Metrics[name]
		if !ok || ov <= 0 {
			continue
		}
		if ov < opts.MinCount && nv < opts.MinCount {
			continue
		}
		growth := nv/ov - 1
		if growth > opts.Tolerance {
			out = append(out, Regression{
				Kind: "counter", Name: strings.TrimPrefix(name, "counter."),
				Old: ov, New: nv, Growth: growth,
			})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Growth != out[j].Growth {
			return out[i].Growth > out[j].Growth
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func flattenPhases(roots []*PhaseNode) map[string]*PhaseNode {
	out := map[string]*PhaseNode{}
	var walk func(prefix string, n *PhaseNode)
	walk = func(prefix string, n *PhaseNode) {
		p := n.Name
		if prefix != "" {
			p = prefix + "/" + n.Name
		}
		out[p] = n
		for _, c := range n.Children {
			walk(p, c)
		}
	}
	for _, r := range roots {
		walk("", r)
	}
	return out
}
