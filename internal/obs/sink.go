package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event types emitted by the observer.
const (
	// EventSpan is a finished timed region.
	EventSpan = "span"
	// EventInstant is a point annotation with no duration.
	EventInstant = "event"
	// EventMetrics is a registry snapshot flushed into the trace
	// (counters and gauges flattened to attributes), emitted once at the
	// end of a run so trace analyzers can diff counters across runs.
	EventMetrics = "metrics"
)

// Event is one trace record: a finished span or an instant annotation.
type Event struct {
	Type     string
	Name     string
	ID       uint64
	Parent   uint64 // 0 for root spans and instants
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
}

// Attr returns the value of the named attribute, "" when absent.
func (e Event) Attr(key string) string {
	for _, a := range e.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Sink consumes finished events. Implementations must be safe for
// concurrent Emit calls: spans end on worker-pool goroutines.
type Sink interface {
	Emit(Event)
}

// MemSink buffers events in memory, for tests and small runs. Cap, when
// positive, bounds the buffer: once full, further events are discarded
// and counted instead of retained, so a long instrumented run cannot
// grow the observer without limit. Set Cap before the first Emit.
type MemSink struct {
	// Cap is the maximum number of events retained; zero or negative
	// means unbounded.
	Cap int

	mu      sync.Mutex
	events  []Event
	dropped int64
}

// Emit implements Sink.
func (m *MemSink) Emit(ev Event) {
	m.mu.Lock()
	if m.Cap > 0 && len(m.events) >= m.Cap {
		m.dropped++
	} else {
		m.events = append(m.events, ev)
	}
	m.mu.Unlock()
}

// Dropped reports how many events the cap discarded.
func (m *MemSink) Dropped() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropped
}

// Events returns a copy of everything emitted so far.
func (m *MemSink) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// Spans returns the span events with the given name.
func (m *MemSink) Spans(name string) []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Event
	for _, ev := range m.events {
		if ev.Type == EventSpan && ev.Name == name {
			out = append(out, ev)
		}
	}
	return out
}

// Len reports the number of buffered events.
func (m *MemSink) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.events)
}

// jsonlEvent is the wire form of an Event: one JSON object per line,
// microsecond timestamps, attributes flattened to a string map. Run is
// the owning run's ID on multi-run streams (arcsd span streams and
// flight-recorder dumps); single-run trace files leave it empty.
type jsonlEvent struct {
	Type    string            `json:"type"`
	Name    string            `json:"name"`
	ID      uint64            `json:"id"`
	Parent  uint64            `json:"parent,omitempty"`
	StartUS int64             `json:"ts_us"`
	DurUS   int64             `json:"dur_us,omitempty"`
	Run     string            `json:"run,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// EncodeEvent renders one event as a single JSONL line (no trailing
// newline) in the shared wire format consumed by ReadTrace and
// arcstrace. run, when non-empty, is carried as the "run" field — the
// form emitted by arcsd span streams and flight-recorder dumps.
func EncodeEvent(ev Event, run string) ([]byte, error) {
	rec := jsonlEvent{
		Type:    ev.Type,
		Name:    ev.Name,
		ID:      ev.ID,
		Parent:  ev.Parent,
		StartUS: ev.Start.UnixMicro(),
		DurUS:   ev.Duration.Microseconds(),
		Run:     run,
	}
	if len(ev.Attrs) > 0 {
		rec.Attrs = make(map[string]string, len(ev.Attrs))
		for _, a := range ev.Attrs {
			rec.Attrs[a.Key] = a.Value
		}
	}
	return json.Marshal(rec)
}

// JSONLSink streams events as newline-delimited JSON, one object per
// event — greppable, diffable across runs, and loadable with a one-line
// script. Emit never fails; the first write error is latched and
// reported by Err.
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJSONLSink wraps w. The caller owns w's lifetime (and buffering).
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Emit implements Sink.
func (s *JSONLSink) Emit(ev Event) {
	line, err := EncodeEvent(ev, "")
	if err != nil {
		s.setErr(err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if _, err := s.w.Write(append(line, '\n')); err != nil {
		s.err = err
	}
}

func (s *JSONLSink) setErr(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// Err reports the first write or encoding error, nil if none.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
