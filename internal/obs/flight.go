package obs

import (
	"io"
	"sync"
	"time"
)

// FlightRecorder is a bounded ring-buffer sink: it retains the most
// recent capacity events — spans, instants, metrics flushes, and teed
// log lines — across every run of a process, so the moments leading up
// to a degraded, cancelled, or crashed run can be dumped and triaged
// after the fact without having streamed anything while it happened.
// Each retained event optionally carries the ID of the run that emitted
// it, so dumps can be filtered per run.
//
// Emit is a mutex plus two assignments — no allocation — so the recorder
// can sit on every run's sink path permanently.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []flightSlot
	total uint64 // events ever emitted; buf index is total % cap
}

type flightSlot struct {
	run string
	ev  Event
}

// FlightEvent is one recovered ring entry: the event plus the run it
// belonged to ("" for process-level events such as daemon logs).
type FlightEvent struct {
	Run   string
	Event Event
}

// NewFlightRecorder builds a recorder retaining the last capacity events
// (minimum 16).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity < 16 {
		capacity = 16
	}
	return &FlightRecorder{buf: make([]flightSlot, capacity)}
}

// Emit implements Sink, recording the event with no run attribution.
func (r *FlightRecorder) Emit(ev Event) { r.EmitRun("", ev) }

// EmitRun records the event attributed to the given run ID.
func (r *FlightRecorder) EmitRun(run string, ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.total%uint64(len(r.buf))] = flightSlot{run: run, ev: ev}
	r.total++
	r.mu.Unlock()
}

// RunSink returns a Sink view of the recorder that attributes every
// event to the given run ID — the per-run leg of a Fanout tee.
func (r *FlightRecorder) RunSink(run string) Sink { return runSink{rec: r, run: run} }

type runSink struct {
	rec *FlightRecorder
	run string
}

func (s runSink) Emit(ev Event) { s.rec.EmitRun(s.run, ev) }

// Total reports how many events have ever been emitted (retained or
// evicted).
func (r *FlightRecorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Cap reports the ring capacity.
func (r *FlightRecorder) Cap() int { return len(r.buf) }

// Snapshot copies the retained events oldest-first. A non-empty run
// filters to that run's events.
func (r *FlightRecorder) Snapshot(run string) []FlightEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.total
	capU := uint64(len(r.buf))
	start := uint64(0)
	if n > capU {
		start = n - capU
	}
	out := make([]FlightEvent, 0, n-start)
	for i := start; i < n; i++ {
		slot := r.buf[i%capU]
		if run != "" && slot.run != run {
			continue
		}
		out = append(out, FlightEvent{Run: slot.run, Event: slot.ev})
	}
	return out
}

// WriteJSONL dumps the retained events oldest-first in the JSONL trace
// wire format (with a "run" field on attributed events), so a flight
// record is directly consumable by arcstrace summarize and ReadTrace. A
// non-empty run filters the dump to that run.
func (r *FlightRecorder) WriteJSONL(w io.Writer, run string) error {
	for _, fe := range r.Snapshot(run) {
		line, err := EncodeEvent(fe.Event, fe.Run)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// LogWriter returns an io.Writer that records each Write as a "log"
// instant event, so structured log output teed through it (via
// io.MultiWriter with the real log destination) lands in the flight
// record next to the spans it interleaved with.
func (r *FlightRecorder) LogWriter() io.Writer { return logWriter{rec: r} }

type logWriter struct{ rec *FlightRecorder }

func (lw logWriter) Write(p []byte) (int, error) {
	line := p
	for len(line) > 0 && (line[len(line)-1] == '\n' || line[len(line)-1] == '\r') {
		line = line[:len(line)-1]
	}
	lw.rec.Emit(Event{
		Type:  EventInstant,
		Name:  "log",
		Start: time.Now(),
		Attrs: []Attr{Str("line", string(line))},
	})
	return len(p), nil
}
