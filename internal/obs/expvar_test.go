package obs

import (
	"encoding/json"
	"expvar"
	"testing"
)

// expvarSnapshot reads the published variable back through expvar's own
// JSON rendering, the same view /debug/vars serves.
func expvarSnapshot(t *testing.T, name string) map[string]any {
	t.Helper()
	v := expvar.Get(name)
	if v == nil {
		t.Fatalf("expvar %q not published", name)
	}
	var doc struct {
		Counters map[string]any `json:"counters"`
	}
	if err := json.Unmarshal([]byte(v.String()), &doc); err != nil {
		t.Fatalf("expvar %q renders invalid JSON: %v", name, err)
	}
	return doc.Counters
}

func TestObsPublishExpvarRepublish(t *testing.T) {
	// expvar state is process-global and cannot be unpublished, so this
	// test owns a name no other test uses.
	const name = "test_republish"

	first := NewRegistry()
	first.Counter("probes_total").Add(7)
	if err := PublishExpvar(name, first); err != nil {
		t.Fatal(err)
	}
	if c := expvarSnapshot(t, name); c["probes_total"] != float64(7) {
		t.Fatalf("first registry snapshot = %v, want probes_total 7", c)
	}

	// Republishing the same name re-points it at the new registry — the
	// restarted-daemon case that used to silently serve stale data.
	second := NewRegistry()
	second.Counter("probes_total").Add(99)
	if err := PublishExpvar(name, second); err != nil {
		t.Fatalf("republish failed: %v", err)
	}
	if c := expvarSnapshot(t, name); c["probes_total"] != float64(99) {
		t.Fatalf("republished snapshot = %v, want probes_total 99", c)
	}
}

func TestObsPublishExpvarRejectsNilRegistry(t *testing.T) {
	if err := PublishExpvar("test_nil_registry", nil); err == nil {
		t.Fatal("publishing a nil registry should fail")
	}
}

func TestObsPublishExpvarRejectsForeignName(t *testing.T) {
	// A name some other package published must not be hijacked.
	const name = "test_foreign_owner"
	expvar.NewInt(name)
	if err := PublishExpvar(name, NewRegistry()); err == nil {
		t.Fatal("publishing over a foreign expvar should fail")
	}
}
