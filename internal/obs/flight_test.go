package obs

import (
	"bytes"
	"fmt"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestObsFlightRecorderRingEviction(t *testing.T) {
	r := NewFlightRecorder(16) // minimum capacity
	for i := 0; i < 20; i++ {
		r.EmitRun("r1", Event{Type: EventSpan, Name: fmt.Sprintf("s%02d", i)})
	}
	if r.Total() != 20 || r.Cap() != 16 {
		t.Fatalf("total=%d cap=%d, want 20/16", r.Total(), r.Cap())
	}
	snap := r.Snapshot("")
	if len(snap) != 16 {
		t.Fatalf("snapshot has %d events, want 16", len(snap))
	}
	if snap[0].Event.Name != "s04" || snap[15].Event.Name != "s19" {
		t.Fatalf("retained window [%s..%s], want [s04..s19]",
			snap[0].Event.Name, snap[15].Event.Name)
	}
}

func TestObsFlightRecorderRunFilter(t *testing.T) {
	r := NewFlightRecorder(32)
	r.RunSink("a").Emit(Event{Type: EventSpan, Name: "from-a"})
	r.RunSink("b").Emit(Event{Type: EventSpan, Name: "from-b"})
	r.Emit(Event{Type: EventInstant, Name: "process-level"})
	onlyA := r.Snapshot("a")
	if len(onlyA) != 1 || onlyA[0].Event.Name != "from-a" || onlyA[0].Run != "a" {
		t.Fatalf("run filter returned %+v, want one from-a event", onlyA)
	}
	if all := r.Snapshot(""); len(all) != 3 {
		t.Fatalf("unfiltered snapshot has %d events, want 3", len(all))
	}
}

func TestObsFlightRecorderDumpRoundTripsThroughReadTrace(t *testing.T) {
	r := NewFlightRecorder(32)
	sink := r.RunSink("r42")
	o := New(sink)
	sp := o.Root("run", Str("crit_value", "A"))
	o.Annotate("checkpoint", Str("reason", "test"))
	sp.End()

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf, "r42"); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var spans, instants []Event
	for _, e := range tr.Events {
		switch e.Type {
		case EventSpan:
			spans = append(spans, e)
		case EventInstant:
			instants = append(instants, e)
		}
	}
	if len(spans) != 1 || spans[0].Name != "run" {
		t.Fatalf("decoded %d spans, want the run span", len(spans))
	}
	// The dump's "run" field surfaces as a run attribute for arcstrace.
	if got := spans[0].Attr("run"); got != "r42" {
		t.Fatalf("span run attr = %q, want r42", got)
	}
	if len(instants) != 1 || instants[0].Attr("reason") != "test" {
		t.Fatalf("decoded instants %+v, want the checkpoint event", instants)
	}
}

// TestObsFlightRecorderLogTee covers the SetupSlog(io.Writer) satellite:
// a logger teed through LogWriter lands structured log lines in the
// flight record as "log" instants, interleaved with span traffic.
func TestObsFlightRecorderLogTee(t *testing.T) {
	r := NewFlightRecorder(32)
	var stderr bytes.Buffer
	logger, err := SetupSlog(io2(&stderr, r), "text", false)
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("run finished", "run", "r7", "state", "done")
	if !strings.Contains(stderr.String(), "run finished") {
		t.Fatal("primary log destination did not receive the line")
	}
	snap := r.Snapshot("")
	if len(snap) != 1 || snap[0].Event.Name != "log" {
		t.Fatalf("flight record holds %+v, want one log instant", snap)
	}
	line := snap[0].Event.Attr("line")
	if !strings.Contains(line, "run finished") || !strings.Contains(line, "state=done") {
		t.Fatalf("log instant line = %q, want the slog record", line)
	}
	if strings.HasSuffix(line, "\n") {
		t.Fatal("trailing newline not trimmed from log line")
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(&stderr, nil))) // detach default logger from test buffer
}

// io2 tees w with the recorder's log writer, the arcsd wiring.
func io2(w *bytes.Buffer, r *FlightRecorder) writerFunc {
	lw := r.LogWriter()
	return func(p []byte) (int, error) {
		if _, err := lw.Write(p); err != nil {
			return 0, err
		}
		return w.Write(p)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestZeroAllocFlightRecorderEmit guards the flight recorder's hot path:
// recording an event is slot assignment under a mutex, no allocation.
func TestZeroAllocFlightRecorderEmit(t *testing.T) {
	r := NewFlightRecorder(1024)
	e := Event{Type: EventSpan, Name: "probe", ID: 7, Start: time.Unix(0, 0)}
	allocs := testing.AllocsPerRun(100, func() { r.EmitRun("r1", e) })
	if allocs != 0 {
		t.Fatalf("FlightRecorder.EmitRun allocates %.1f/op, want 0", allocs)
	}
}

func TestObsFlightRecorderNilSafe(t *testing.T) {
	var r *FlightRecorder
	r.EmitRun("x", Event{}) // must not panic
}
