package obs

import (
	"runtime"
	"testing"
)

func TestObsRuntimeHarvesterSamplesGauges(t *testing.T) {
	reg := NewRegistry()
	h := NewRuntimeHarvester(reg)
	runtime.GC() // guarantee at least one completed cycle and pause
	h.Sample()

	if got := reg.Gauge("go_goroutines").Value(); got < 1 {
		t.Fatalf("go_goroutines = %d, want >= 1", got)
	}
	if got := reg.Gauge("go_heap_objects_bytes").Value(); got <= 0 {
		t.Fatalf("go_heap_objects_bytes = %d, want > 0", got)
	}
	if got := reg.Gauge("go_memory_total_bytes").Value(); got <= 0 {
		t.Fatalf("go_memory_total_bytes = %d, want > 0", got)
	}
	if got := reg.Gauge("go_gc_cycles_total").Value(); got < 1 {
		t.Fatalf("go_gc_cycles_total = %d, want >= 1", got)
	}
	if got := reg.Histogram("go_gc_pause_seconds").Count(); got < 1 {
		t.Fatalf("go_gc_pause_seconds count = %d, want >= 1", got)
	}
}

func TestObsRuntimeHarvesterPauseDeltas(t *testing.T) {
	reg := NewRegistry()
	h := NewRuntimeHarvester(reg)
	runtime.GC()
	h.Sample()
	before := reg.Histogram("go_gc_pause_seconds").Count()
	h.Sample() // no GC in between: no new pause observations
	if after := reg.Histogram("go_gc_pause_seconds").Count(); after != before {
		t.Fatalf("pause count moved %d -> %d with no GC between samples", before, after)
	}
	runtime.GC()
	h.Sample()
	if after := reg.Histogram("go_gc_pause_seconds").Count(); after <= before {
		t.Fatalf("pause count stayed at %d after a GC cycle", after)
	}
}

func TestObsRuntimeHarvesterNilSafe(t *testing.T) {
	if h := NewRuntimeHarvester(nil); h != nil {
		t.Fatal("nil registry should yield a nil harvester")
	}
	var h *RuntimeHarvester
	h.Sample() // must not panic
}
