package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"arcs/internal/obs"
)

// handleSpans streams a run's span/event trace as NDJSON (default) or
// SSE (?format=sse, or Accept: text/event-stream), live while the run is
// in flight. Connecting to a finished run replays its events from the
// flight recorder instead, so late triage still gets a trace.
//
// Live streams are lossy by design: a consumer that cannot keep up with
// the emission rate loses events (never stalling the mining pipeline)
// and the final stream.end record reports how many were dropped, so a
// consumer can always tell whether its trace is complete.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	run := s.lookup(r.PathValue("id"))
	if run == nil {
		http.Error(w, "unknown run", http.StatusNotFound)
		return
	}
	sse := r.URL.Query().Get("format") == "sse" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	flusher, canFlush := w.(http.Flusher)

	sub := run.fanout.Subscribe(s.subBuf)
	if sub == nil {
		// The run finished and its fan-out closed: replay the flight
		// record so the client still gets the retained trace.
		s.replaySpans(w, run.ID, sse)
		return
	}
	defer run.fanout.Unsubscribe(sub)

	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	if canFlush {
		flusher.Flush()
	}

	write := func(ev obs.Event) bool {
		if s.streamWriteDelay > 0 {
			time.Sleep(s.streamWriteDelay)
		}
		line, err := obs.EncodeEvent(ev, run.ID)
		if err != nil {
			return false
		}
		if sse {
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, line); err != nil {
				return false
			}
		} else {
			if _, err := fmt.Fprintf(w, "%s\n", line); err != nil {
				return false
			}
		}
		if canFlush {
			flusher.Flush()
		}
		return true
	}

	for {
		select {
		case <-r.Context().Done():
			// Client went away mid-run; unsubscribe (deferred) so the
			// fan-out stops queueing for us.
			return
		case ev, ok := <-sub.Events():
			if !ok {
				// Run complete: emit the end-of-stream record carrying
				// the drop count for this subscriber.
				write(streamEnd(run, sub.Dropped()))
				return
			}
			if !write(ev) {
				return
			}
		}
	}
}

// streamEnd builds the trailing stream.end record.
func streamEnd(run *Run, dropped int64) obs.Event {
	return obs.Event{
		Type:  obs.EventInstant,
		Name:  "stream.end",
		Start: time.Now(),
		Attrs: []obs.Attr{
			obs.Str("state", run.State()),
			obs.Str("dropped", strconv.FormatInt(dropped, 10)),
		},
	}
}

// replaySpans writes a finished run's retained flight-record events.
func (s *Server) replaySpans(w http.ResponseWriter, runID string, sse bool) {
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		for _, fe := range s.flight.Snapshot(runID) {
			line, err := obs.EncodeEvent(fe.Event, fe.Run)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", fe.Event.Type, line); err != nil {
				return
			}
		}
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = s.flight.WriteJSONL(w, runID)
}
