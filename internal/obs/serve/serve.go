package serve

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"arcs/internal/obs"
	"arcs/internal/segment/registry"
)

// Options configures a Server. Registry and Flight are required; the
// rest have serviceable defaults.
type Options struct {
	// Registry is the daemon-wide metrics registry: every run's
	// pipeline metrics, the runtime gauges, and the server's own HTTP
	// metrics all accumulate here and are rendered by GET /metrics.
	Registry *obs.Registry
	// Flight is the shared flight recorder; every run's events are teed
	// into it and GET /debug/flightrecord dumps it.
	Flight *obs.FlightRecorder
	// Harvester samples runtime gauges on scrape and at run boundaries.
	// Nil disables runtime sampling.
	Harvester *obs.RuntimeHarvester
	// Tee, when non-nil, additionally receives every run's events — the
	// daemon-level JSONL trace file.
	Tee obs.Sink
	// Namespace prefixes Prometheus metric names (default "arcs").
	Namespace string
	// CSVRoot restricts csv job specs to paths under this directory;
	// empty allows any path the process can read.
	CSVRoot string
	// SubscriberBuffer is the per-stream event buffer before the slow
	// consumer drop path engages (default 1024).
	SubscriberBuffer int
	// MaxRuns bounds the retained run history; the oldest finished runs
	// are evicted past it (default 64). Runs still in flight are never
	// evicted.
	MaxRuns int
	// QualityTestN is the held-out test table size used to evaluate
	// mining quality after synth-spec runs (the generator re-run on a
	// shifted seed). Default 5000; negative disables quality evaluation.
	QualityTestN int

	// Models is the versioned segmentation-model registry behind the
	// /models and /apply endpoints. Nil leaves the routes mounted but
	// answering 503, so probes distinguish "not configured" from 404.
	Models *registry.Registry
	// ApplyMaxInFlight bounds concurrently served /apply requests;
	// excess load is shed with 429 + Retry-After instead of queuing
	// (default 64).
	ApplyMaxInFlight int
	// ApplyTimeout is the per-request apply deadline; a request's
	// timeout_ms can lower it but never raise it (default 5s).
	ApplyTimeout time.Duration
	// ApplyBreakerThreshold is the consecutive bind/apply error count
	// that trips the apply breaker to fast 503s (default 5).
	ApplyBreakerThreshold int
	// ApplyBreakerCooldown is how long a tripped breaker holds before
	// half-opening (default 5s).
	ApplyBreakerCooldown time.Duration

	// MemBudget is the daemon-wide default count-substrate memory budget
	// in bytes for runs whose spec does not set mem_budget (0 keeps the
	// package default, negative means unlimited; see core.Config).
	MemBudget int64
	// CountsBackend is the daemon-wide default count backend ("auto",
	// "dense", "sparse", "spill") for runs whose spec does not set
	// counts_backend.
	CountsBackend string
	// SpillDir is where spill-backend runs keep their on-disk state;
	// empty uses the OS temp directory. Deliberately not exposed per
	// job: the spec would otherwise name arbitrary server paths.
	SpillDir string
}

// Server is the arcsd HTTP surface. Construct with New, mount
// Handler(), and flip SetReady(false) to begin a drain.
type Server struct {
	reg       *obs.Registry
	flight    *obs.FlightRecorder
	harvester *obs.RuntimeHarvester
	tee       obs.Sink
	namespace string
	csvRoot   string
	subBuf    int
	maxRuns   int
	qualityN  int

	// Daemon-wide count-substrate defaults, applied to specs that do
	// not choose their own (see JobSpec.coreConfig).
	defMemBudget int64
	defBackend   string
	spillDir     string

	ready atomic.Bool

	mu    sync.Mutex
	runs  map[string]*Run
	order []string // submission order, for listing and eviction
	seq   atomic.Uint64

	// Serving data plane: the model registry, the bounded in-flight
	// apply limiter, and the bind/apply-error breaker.
	models       *registry.Registry
	applySem     chan struct{}
	applyTimeout time.Duration
	applyBreaker *breaker

	mRunsStarted  *obs.Counter
	mRunsDegraded *obs.Counter
	mRunsCanceled *obs.Counter
	mRunsFailed   *obs.Counter
	mStreamDrops  *obs.Counter
	mHTTPReqs     *obs.Counter
	mHTTPLatency  *obs.Histogram

	mApplyReqs        *obs.Counter
	mApplyShed        *obs.Counter
	mApplyDeadline    *obs.Counter
	mApplyErrors      *obs.Counter
	mApplyBreakerOpen *obs.Counter
	mApplyTuples      *obs.Counter
	gApplyInFlight    *obs.Gauge
	hApplySeconds     *obs.Histogram

	// streamWriteDelay is a test seam: a per-event artificial write
	// stall in the span stream loop, forcing the slow-consumer drop
	// path deterministically. Zero in production.
	streamWriteDelay time.Duration
	// applyGate is a test seam: when non-nil it is called while an
	// /apply request holds its in-flight slot, so overload tests pin a
	// slot deterministically. Nil in production.
	applyGate func()
}

// New builds a Server over the shared observability plumbing.
func New(opts Options) *Server {
	if opts.Registry == nil {
		opts.Registry = obs.NewRegistry()
	}
	if opts.Flight == nil {
		opts.Flight = obs.NewFlightRecorder(8192)
	}
	if opts.Namespace == "" {
		opts.Namespace = "arcs"
	}
	if opts.SubscriberBuffer <= 0 {
		opts.SubscriberBuffer = 1024
	}
	if opts.MaxRuns <= 0 {
		opts.MaxRuns = 64
	}
	if opts.QualityTestN == 0 {
		opts.QualityTestN = 5000
	}
	if opts.ApplyMaxInFlight <= 0 {
		opts.ApplyMaxInFlight = 64
	}
	if opts.ApplyTimeout <= 0 {
		opts.ApplyTimeout = 5 * time.Second
	}
	if opts.ApplyBreakerThreshold <= 0 {
		opts.ApplyBreakerThreshold = 5
	}
	if opts.ApplyBreakerCooldown <= 0 {
		opts.ApplyBreakerCooldown = 5 * time.Second
	}
	s := &Server{
		reg:       opts.Registry,
		flight:    opts.Flight,
		harvester: opts.Harvester,
		tee:       opts.Tee,
		namespace: opts.Namespace,
		csvRoot:   opts.CSVRoot,
		subBuf:    opts.SubscriberBuffer,
		maxRuns:   opts.MaxRuns,
		qualityN:  opts.QualityTestN,
		runs:      make(map[string]*Run),

		defMemBudget: opts.MemBudget,
		defBackend:   opts.CountsBackend,
		spillDir:     opts.SpillDir,

		mRunsStarted:  opts.Registry.Counter("serve_runs_started_total"),
		mRunsDegraded: opts.Registry.Counter("serve_runs_degraded_total"),
		mRunsCanceled: opts.Registry.Counter("serve_runs_canceled_total"),
		mRunsFailed:   opts.Registry.Counter("serve_runs_failed_total"),
		mStreamDrops:  opts.Registry.Counter("serve_stream_dropped_total"),
		mHTTPReqs:     opts.Registry.Counter("serve_http_requests_total"),
		mHTTPLatency:  opts.Registry.Histogram("serve_http_request_seconds"),

		models:       opts.Models,
		applySem:     make(chan struct{}, opts.ApplyMaxInFlight),
		applyTimeout: opts.ApplyTimeout,
		applyBreaker: &breaker{
			threshold: opts.ApplyBreakerThreshold,
			cooldown:  opts.ApplyBreakerCooldown,
			now:       time.Now,
			mTripped:  opts.Registry.Counter("apply_breaker_tripped_total"),
		},

		mApplyReqs:        opts.Registry.Counter("apply_requests_total"),
		mApplyShed:        opts.Registry.Counter("apply_shed_total"),
		mApplyDeadline:    opts.Registry.Counter("apply_deadline_exceeded_total"),
		mApplyErrors:      opts.Registry.Counter("apply_errors_total"),
		mApplyBreakerOpen: opts.Registry.Counter("apply_breaker_open_total"),
		mApplyTuples:      opts.Registry.Counter("apply_tuples_total"),
		gApplyInFlight:    opts.Registry.Gauge("apply_in_flight"),
		hApplySeconds:     opts.Registry.Histogram("apply_seconds"),
	}
	s.ready.Store(true)
	return s
}

// SetReady flips the /readyz state; a draining daemon sets false so load
// balancers stop routing while in-flight requests and runs complete.
func (s *Server) SetReady(ok bool) { s.ready.Store(ok) }

// CancelAll requests cancellation of every run still in flight, for
// shutdown. It does not wait; callers that need completion select on
// each run's Done.
func (s *Server) CancelAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.runs {
		if !r.terminal() {
			r.Cancel()
		}
	}
}

// Runs snapshots all retained runs in submission order.
func (s *Server) Runs() []*Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Run, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.runs[id])
	}
	return out
}

// lookup resolves a run by ID, nil when unknown or evicted.
func (s *Server) lookup(id string) *Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs[id]
}

// Handler returns the full route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("POST /runs", s.handleSubmit)
	mux.HandleFunc("GET /runs", s.handleList)
	mux.HandleFunc("GET /runs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /runs/{id}", s.handleCancel)
	mux.HandleFunc("GET /runs/{id}/spans", s.handleSpans)
	mux.HandleFunc("POST /models", s.handlePublishModel)
	mux.HandleFunc("GET /models", s.handleListModels)
	mux.HandleFunc("GET /models/{id}", s.handleGetModel)
	mux.HandleFunc("POST /models/{id}/activate", s.handleActivateModel)
	mux.HandleFunc("POST /apply", s.handleApply)
	mux.HandleFunc("GET /debug/flightrecord", s.handleFlightRecord)
	mux.Handle("GET /debug/vars", expvar.Handler())
	// net/http/pprof registers on the default mux; mount its handlers
	// explicitly so arcsd's mux stays self-contained.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s.instrument(mux)
}

// instrument wraps the mux with request counting and latency tracking.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.mHTTPReqs.Inc()
		next.ServeHTTP(w, r)
		s.mHTTPLatency.Observe(time.Since(start).Seconds())
	})
}

// handleMetrics renders the live registry as Prometheus text, sampling
// the runtime gauges first so every scrape carries fresh GC/heap state.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.harvester.Sample()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// A write error here means the scraper hung up; nothing to recover.
	_ = obs.WritePrometheus(w, s.reg.Snapshot(), s.namespace)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleSubmit accepts a JobSpec, spawns the run, and answers 202 with
// the run ID and its endpoints.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		http.Error(w, "draining; not accepting new runs", http.StatusServiceUnavailable)
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, "bad spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := spec.validate(s.csvRoot); err != nil {
		http.Error(w, "bad spec: "+err.Error(), http.StatusBadRequest)
		return
	}

	id := fmt.Sprintf("r%06d", s.seq.Add(1))
	fanout := obs.NewFanout(s.flight.RunSink(id), s.tee)
	fanout.SetDropCounter(s.mStreamDrops)
	observer := obs.NewWithRegistry(fanout, s.reg)

	ctx, cancel := context.WithCancel(context.Background())
	if spec.TimeoutSec > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(spec.TimeoutSec*float64(time.Second)))
	}
	run := &Run{
		ID:        id,
		fanout:    fanout,
		cancel:    cancel,
		done:      make(chan struct{}),
		spec:      spec,
		state:     StatePending,
		submitted: time.Now(),
	}
	s.mu.Lock()
	s.runs[id] = run
	s.order = append(s.order, id)
	s.evictLocked()
	s.mu.Unlock()

	go s.execute(ctx, run, observer)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{
		"id":     id,
		"status": "/runs/" + id,
		"spans":  "/runs/" + id + "/spans",
	})
}

// evictLocked drops the oldest finished runs past the retention bound.
// Caller holds s.mu.
func (s *Server) evictLocked() {
	excess := len(s.order) - s.maxRuns
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if excess > 0 && s.runs[id].terminal() {
			delete(s.runs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	runs := s.Runs()
	statuses := make([]Status, 0, len(runs))
	for _, run := range runs {
		statuses = append(statuses, run.Status())
	}
	sort.Slice(statuses, func(i, j int) bool { return statuses[i].ID < statuses[j].ID })
	writeJSON(w, map[string]any{"runs": statuses})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	run := s.lookup(r.PathValue("id"))
	if run == nil {
		http.Error(w, "unknown run", http.StatusNotFound)
		return
	}
	writeJSON(w, run.Status())
}

// handleCancel requests cooperative cancellation; 202 while the pipeline
// drains to its next checkpoint, 200 if the run had already finished.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	run := s.lookup(r.PathValue("id"))
	if run == nil {
		http.Error(w, "unknown run", http.StatusNotFound)
		return
	}
	if run.terminal() {
		writeJSON(w, map[string]string{"id": run.ID, "state": run.State()})
		return
	}
	run.Cancel()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, map[string]string{"id": run.ID, "state": "canceling"})
}

// handleFlightRecord dumps the ring buffer as JSONL, optionally filtered
// to one run with ?run=<id> — the post-hoc triage surface for runs that
// degraded or were cancelled before anyone attached a stream.
func (s *Server) handleFlightRecord(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := s.flight.WriteJSONL(w, r.URL.Query().Get("run")); err != nil {
		// Mid-stream failure; the truncated dump is still useful.
		return
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	if w.Header().Get("Content-Type") == "" {
		w.Header().Set("Content-Type", "application/json")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
