package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"arcs/internal/obs"
	"arcs/internal/segment"
	"arcs/internal/segment/registry"
)

// newModelServer is newTestServer plus a fresh on-disk model registry
// sharing the server's metrics registry.
func newModelServer(t *testing.T, opts Options) (*Server, *httptest.Server, *registry.Registry) {
	t.Helper()
	if opts.Registry == nil {
		opts.Registry = obs.NewRegistry()
	}
	models, err := registry.Open(t.TempDir(), registry.Options{Metrics: opts.Registry})
	if err != nil {
		t.Fatal(err)
	}
	opts.Models = models
	s, ts := newTestServer(t, opts)
	return s, ts, models
}

// modelDoc is a valid model document matching the synth schema.
func modelDoc() string {
	m := segment.Model{
		XAttr: "age", YAttr: "salary",
		CritAttr: "group", CritValue: "A",
		MinSupport: 0.1, MinConfidence: 0.5,
		Rules: []segment.Rule{
			{XLo: 20, XHi: 40, YLo: 50, YHi: 100, Support: 0.2, Confidence: 0.9},
		},
	}
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		panic(err)
	}
	return buf.String()
}

// post sends a JSON body and returns status plus decoded object.
func post(t *testing.T, ts *httptest.Server, path, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var out map[string]any
	_ = json.Unmarshal(raw, &out)
	if out == nil {
		out = map[string]any{"_raw": string(raw)}
	}
	return resp.StatusCode, out
}

func TestModelUploadActivateApply(t *testing.T) {
	_, ts, models := newModelServer(t, Options{})

	code, body := post(t, ts, "/models", `{"model": `+modelDoc()+`, "note": "uploaded", "activate": true}`)
	if code != http.StatusCreated {
		t.Fatalf("POST /models = %d: %v", code, body)
	}
	if body["id"] != "m000001" || body["active"] != true {
		t.Fatalf("publish response = %v", body)
	}
	if models.ActiveID() != "m000001" {
		t.Fatalf("registry active = %q", models.ActiveID())
	}

	code, body = post(t, ts, "/apply", `{"tuple": {"age": 30, "salary": 75}}`)
	if code != http.StatusOK || body["covered"] != true {
		t.Fatalf("apply tuple = %d %v, want covered", code, body)
	}
	code, body = post(t, ts, "/apply", `{"points": [[30, 75], [55, 75], [21, 51]]}`)
	if code != http.StatusOK {
		t.Fatalf("apply points = %d %v", code, body)
	}
	if body["matched"] != float64(2) || body["total"] != float64(3) {
		t.Fatalf("apply points result = %v, want 2/3 matched", body)
	}
	results, _ := body["results"].([]any)
	if len(results) != 3 || results[0] != true || results[1] != false || results[2] != true {
		t.Fatalf("per-point results = %v", results)
	}
}

func TestModelListAndGet(t *testing.T) {
	_, ts, _ := newModelServer(t, Options{})
	post(t, ts, "/models", `{"model": `+modelDoc()+`}`)
	post(t, ts, "/models", `{"model": `+modelDoc()+`, "activate": true}`)

	code, body := post(t, ts, "/models/m000002/activate", "")
	if code != http.StatusOK {
		t.Fatalf("re-activate = %d %v", code, body)
	}
	resp, err := http.Get(ts.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Active string                 `json:"active"`
		Models []registry.VersionInfo `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if list.Active != "m000002" || len(list.Models) != 2 {
		t.Fatalf("GET /models = %+v", list)
	}

	resp, err = http.Get(ts.URL + "/models/m000001")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), `"x_attr": "age"`) {
		t.Fatalf("GET /models/m000001 = %d: %s", resp.StatusCode, raw)
	}
	resp, err = http.Get(ts.URL + "/models/m000099")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown model = %d, want 404", resp.StatusCode)
	}
}

func TestModelPublishFromRun(t *testing.T) {
	s, ts, models := newModelServer(t, Options{})
	id := submit(t, ts, synthSpec())
	if st := waitTerminal(t, s, ts, id); st.State != StateDone {
		t.Fatalf("run ended %q", st.State)
	}

	code, body := post(t, ts, "/models", fmt.Sprintf(`{"run": %q, "activate": true}`, id))
	if code != http.StatusCreated {
		t.Fatalf("publish from run = %d: %v", code, body)
	}
	mid, _ := body["id"].(string)
	m, man, err := models.Load(mid)
	if err != nil {
		t.Fatal(err)
	}
	if man.SourceRun != id {
		t.Fatalf("manifest source_run = %q, want %s", man.SourceRun, id)
	}
	if m.CritValue != "A" || len(m.Rules) == 0 {
		t.Fatalf("published model = %+v", m)
	}
	// The mined model serves real traffic end to end.
	code, resp := post(t, ts, "/apply", `{"points": [[30, 75], [55, 75]]}`)
	if code != http.StatusOK || resp["model"] != mid {
		t.Fatalf("apply after publish-from-run = %d %v", code, resp)
	}
	// The hot swap landed in the flight recorder for post-hoc triage.
	var swaps int
	for _, ev := range s.flight.Snapshot("models") {
		if ev.Event.Name == "model.swap" {
			swaps++
		}
	}
	if swaps != 1 {
		t.Fatalf("flight recorder has %d model.swap events, want 1", swaps)
	}

	// Publishing from an unknown or unfinished run fails cleanly.
	if code, _ := post(t, ts, "/models", `{"run": "r999999"}`); code != http.StatusNotFound {
		t.Fatalf("publish from unknown run = %d, want 404", code)
	}
}

func TestModelEndpointsWithoutRegistry(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, probe := range []struct{ method, path string }{
		{"POST", "/models"}, {"GET", "/models"}, {"POST", "/apply"},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, strings.NewReader("{}"))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s %s without registry = %d, want 503", probe.method, probe.path, resp.StatusCode)
		}
	}
}

func TestApplyWithoutActiveModel(t *testing.T) {
	_, ts, _ := newModelServer(t, Options{})
	code, body := post(t, ts, "/apply", `{"tuple": {"age": 1, "salary": 1}}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("apply without active model = %d %v, want 503", code, body)
	}
}

func TestChaosApplyOverloadShedsWith429(t *testing.T) {
	s, ts, _ := newModelServer(t, Options{ApplyMaxInFlight: 1})
	post(t, ts, "/models", `{"model": `+modelDoc()+`, "activate": true}`)

	entered := make(chan struct{})
	release := make(chan struct{})
	s.applyGate = func() {
		entered <- struct{}{}
		<-release
	}

	first := make(chan int)
	go func() {
		code, _ := post(t, ts, "/apply", `{"tuple": {"age": 30, "salary": 75}}`)
		first <- code
	}()
	<-entered // request 1 now owns the only in-flight slot

	// With the slot pinned, the next request must shed immediately —
	// 429 with Retry-After — rather than queue behind it.
	resp, err := http.Post(ts.URL+"/apply", "application/json",
		strings.NewReader(`{"tuple": {"age": 30, "salary": 75}}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded apply = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	close(release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("pinned request finished %d, want 200", code)
	}
	if got := s.reg.Counter("apply_shed_total").Value(); got != 1 {
		t.Fatalf("apply_shed_total = %d, want 1", got)
	}
	if got := s.reg.Counter("apply_requests_total").Value(); got != 2 {
		t.Fatalf("apply_requests_total = %d, want 2", got)
	}
}

func TestChaosApplyDeadlineExceeded(t *testing.T) {
	s, ts, _ := newModelServer(t, Options{})
	post(t, ts, "/models", `{"model": `+modelDoc()+`, "activate": true}`)
	// The gate burns the 1ms request deadline while the slot is held;
	// the scoring loop then hits its cancellation checkpoint.
	s.applyGate = func() { time.Sleep(20 * time.Millisecond) }

	var pts strings.Builder
	pts.WriteString(`{"timeout_ms": 1, "points": [`)
	for i := 0; i < 5000; i++ {
		if i > 0 {
			pts.WriteString(",")
		}
		pts.WriteString("[30,75]")
	}
	pts.WriteString("]}")

	code, body := post(t, ts, "/apply", pts.String())
	if code != http.StatusGatewayTimeout {
		t.Fatalf("expired apply = %d %v, want 504", code, body)
	}
	if got := s.reg.Counter("apply_deadline_exceeded_total").Value(); got != 1 {
		t.Fatalf("apply_deadline_exceeded_total = %d, want 1", got)
	}
}

func TestChaosApplyBreakerTripsTo503(t *testing.T) {
	s, ts, _ := newModelServer(t, Options{
		ApplyBreakerThreshold: 2,
		ApplyBreakerCooldown:  150 * time.Millisecond,
	})
	post(t, ts, "/models", `{"model": `+modelDoc()+`, "activate": true}`)

	// Two consecutive bind failures (tuples lacking the model's
	// attributes) trip the breaker.
	for i := 0; i < 2; i++ {
		if code, _ := post(t, ts, "/apply", `{"tuple": {"wrong": 1}}`); code != http.StatusUnprocessableEntity {
			t.Fatalf("bind failure %d = %d, want 422", i, code)
		}
	}
	resp, err := http.Post(ts.URL+"/apply", "application/json",
		strings.NewReader(`{"tuple": {"age": 30, "salary": 75}}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("tripped breaker = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("breaker 503 without Retry-After")
	}
	if got := s.reg.Counter("apply_breaker_tripped_total").Value(); got != 1 {
		t.Fatalf("apply_breaker_tripped_total = %d, want 1", got)
	}

	// After the cooldown the breaker half-opens: traffic flows, and a
	// single new failure re-trips immediately.
	time.Sleep(200 * time.Millisecond)
	if code, _ := post(t, ts, "/apply", `{"tuple": {"age": 30, "salary": 75}}`); code != http.StatusOK {
		t.Fatalf("half-open success = %d, want 200", code)
	}
	for i := 0; i < 2; i++ {
		post(t, ts, "/apply", `{"tuple": {"wrong": 1}}`)
	}
	if code, _ := post(t, ts, "/apply", `{"tuple": {"age": 30, "salary": 75}}`); code != http.StatusServiceUnavailable {
		t.Fatalf("re-tripped breaker = %d, want 503", code)
	}
	// Activating a model resets the breaker: stale errors say nothing
	// about the fresh version.
	if code, body := post(t, ts, "/models/m000001/activate", ""); code != http.StatusOK {
		t.Fatalf("re-activate = %d %v", code, body)
	}
	if code, _ := post(t, ts, "/apply", `{"tuple": {"age": 30, "salary": 75}}`); code != http.StatusOK {
		t.Fatalf("apply after activation reset = %d, want 200", code)
	}
}

func TestChaosActivateCorruptRollsBackOverHTTP(t *testing.T) {
	s, ts, models := newModelServer(t, Options{})
	post(t, ts, "/models", `{"model": `+modelDoc()+`, "activate": true}`)
	post(t, ts, "/models", `{"model": `+modelDoc()+`}`)

	// m000002 rots on disk before anyone activates it.
	path := filepath.Join(models.Dir(), "m000002.json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	code, body := post(t, ts, "/models/m000002/activate", "")
	if code != http.StatusConflict {
		t.Fatalf("activating corrupt model = %d %v, want 409", code, body)
	}
	if body["active"] != "m000001" {
		t.Fatalf("rollback response = %v, want active m000001", body)
	}
	// The old model never stopped serving.
	if code, resp := post(t, ts, "/apply", `{"tuple": {"age": 30, "salary": 75}}`); code != http.StatusOK || resp["model"] != "m000001" {
		t.Fatalf("apply after rollback = %d %v", code, resp)
	}
	// The quarantine is visible, and the failed swap was recorded.
	if code, resp := post(t, ts, "/models", `{"model": `+modelDoc()+`}`); code != http.StatusCreated {
		t.Fatalf("publish after rollback = %d %v", code, resp)
	}
	var failed int
	for _, ev := range s.flight.Snapshot("models") {
		if ev.Event.Name == "model.swap.failed" {
			failed++
		}
	}
	if failed != 1 {
		t.Fatalf("flight recorder has %d model.swap.failed events, want 1", failed)
	}
	if got := s.reg.Counter("models_quarantined_total").Value(); got != 1 {
		t.Fatalf("models_quarantined_total = %d, want 1", got)
	}
}

func TestChaosApplyCancelLeaksNoGoroutines(t *testing.T) {
	s, ts, _ := newModelServer(t, Options{ApplyMaxInFlight: 2})
	post(t, ts, "/models", `{"model": `+modelDoc()+`, "activate": true}`)
	// Warm up the client pool and handler path, then drop keep-alive
	// connections so the baseline counts only steady-state goroutines.
	post(t, ts, "/apply", `{"tuple": {"age": 30, "salary": 75}}`)
	http.DefaultClient.CloseIdleConnections()
	time.Sleep(50 * time.Millisecond)
	runtime.GC()
	baseline := runtime.NumGoroutine()

	s.applyGate = func() { time.Sleep(5 * time.Millisecond) }
	for i := 0; i < 40; i++ {
		// A mix of shed, expired, and successful requests, some with the
		// client hanging up first.
		body := `{"timeout_ms": 1, "points": [` + strings.Repeat("[30,75],", 4999) + `[30,75]]}`
		if i%3 == 0 {
			body = `{"tuple": {"age": 30, "salary": 75}}`
		}
		go func(b string) {
			resp, err := http.Post(ts.URL+"/apply", "application/json", strings.NewReader(b))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(body)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		// Idle keep-alive connections hold a goroutine on each side;
		// they are pool reuse, not leaks, so drop them before counting.
		http.DefaultClient.CloseIdleConnections()
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: baseline %d, now %d; stacks:\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
