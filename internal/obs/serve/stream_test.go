package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"arcs/internal/obs"
)

// bigSpec is a run slow enough that streams attach while it is in
// flight.
const bigSpec = `{"synth":{"function":2,"n":300000,"seed":1,"perturbation":0.05,"frac_a":0.4},
	"x":"age","y":"salary","crit":"group","value":"A","bins":50}`

func TestObsStreamNDJSONLiveRun(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	id := submit(t, ts, bigSpec)

	resp, err := http.Get(ts.URL + "/runs/" + id + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	names := readNDJSONStream(t, sc)
	if len(names) == 0 {
		t.Fatal("stream delivered no events")
	}
	if names[len(names)-1] != "stream.end" {
		t.Fatalf("stream ended with %q, want stream.end trailer", names[len(names)-1])
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []string{"run", "mine-final", "verify-final"} {
		if !seen[want] {
			t.Errorf("live stream lacks %s span", want)
		}
	}
	st := waitTerminal(t, s, ts, id)
	if st.State != StateDone {
		t.Fatalf("streamed run ended %q", st.State)
	}
}

// TestObsStreamMatchesFlightRecord checks stream/trace consistency: the
// spans a live subscriber received are the same records the flight
// recorder retained for that run (modulo the stream.end trailer and any
// ring eviction — the test ring is large enough to retain everything).
func TestObsStreamMatchesFlightRecord(t *testing.T) {
	flight := obs.NewFlightRecorder(65536)
	s, ts := newTestServer(t, Options{Flight: flight})
	id := submit(t, ts, synthSpec())

	resp, err := http.Get(ts.URL + "/runs/" + id + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	streamed := readNDJSONStream(t, sc)
	waitTerminal(t, s, ts, id)

	recorded := map[string]int{}
	for _, fe := range flight.Snapshot(id) {
		recorded[fe.Event.Name]++
	}
	counts := map[string]int{}
	for _, n := range streamed {
		if n == "stream.end" {
			continue
		}
		counts[n]++
	}
	// The subscriber attached after submission, so it may have missed
	// the earliest init-phase spans; every streamed record must be in
	// the flight record, and the late-run spans must match exactly.
	for name, n := range counts {
		if recorded[name] < n {
			t.Errorf("streamed %d %q events but flight record holds %d", n, name, recorded[name])
		}
	}
	for _, name := range []string{"mine-final", "verify-final"} {
		if counts[name] != recorded[name] {
			t.Errorf("%s: streamed %d, recorded %d", name, counts[name], recorded[name])
		}
	}
}

func TestObsStreamSSEFraming(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	id := submit(t, ts, synthSpec())

	resp, err := http.Get(ts.URL + "/runs/" + id + "/spans?format=sse")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	events, datas := 0, 0
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			events++
		case strings.HasPrefix(line, "data: "):
			datas++
			var rec struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal([]byte(line[len("data: "):]), &rec); err != nil {
				t.Fatalf("SSE data is not JSON: %v", err)
			}
		case line == "":
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if events == 0 || events != datas {
		t.Fatalf("SSE framing: %d event lines, %d data lines", events, datas)
	}
	waitTerminal(t, s, ts, id)
}

// TestObsStreamClientDisconnectMidRun drops the HTTP client while the
// run is still mining; the run must finish unaffected and the
// subscriber must detach (no goroutine wedged on a dead connection).
func TestObsStreamClientDisconnectMidRun(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	id := submit(t, ts, bigSpec)

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/runs/"+id+"/spans", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read a little to prove the stream was live, then hang up.
	buf := make([]byte, 1024)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("no live stream before disconnect: %v", err)
	}
	cancel()
	resp.Body.Close()

	st := waitTerminal(t, s, ts, id)
	if st.State != StateDone {
		t.Fatalf("run ended %q after client disconnect, want done", st.State)
	}
	// The handler unsubscribed on its way out; the fan-out must accept
	// and close a fresh subscriber cleanly (Close already ran).
	if sub := s.lookup(id).fanout.Subscribe(1); sub != nil {
		t.Fatal("fanout still open after run completion")
	}
}

// TestObsStreamSlowConsumerDrops forces the drop path: a one-event
// subscriber buffer plus an artificial per-write stall makes the
// subscriber fall behind a probe-heavy run, so events must be dropped
// (never blocking the miner) and accounted on the stream.end trailer
// and the run status.
func TestObsStreamSlowConsumerDrops(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Options{Registry: reg, SubscriberBuffer: 1})
	s.streamWriteDelay = 2 * time.Millisecond
	id := submit(t, ts, bigSpec)

	resp, err := http.Get(ts.URL + "/runs/" + id + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var trailerDropped string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec struct {
			Name  string            `json:"name"`
			Attrs map[string]string `json:"attrs"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad NDJSON line: %v", err)
		}
		if rec.Name == "stream.end" {
			trailerDropped = rec.Attrs["dropped"]
		}
	}
	st := waitTerminal(t, s, ts, id)
	if st.State != StateDone {
		t.Fatalf("run with slow consumer ended %q, want done (drops must not stall it)", st.State)
	}
	if trailerDropped == "" || trailerDropped == "0" {
		t.Fatalf("stream.end dropped=%q, want a positive drop count", trailerDropped)
	}
	if st.StreamDropped == 0 {
		t.Fatal("run status does not account the stream drops")
	}
	if got := reg.Counter("serve_stream_dropped_total").Value(); got == 0 {
		t.Fatal("serve_stream_dropped_total not bumped")
	}
}

// TestObsStreamReplayAfterCompletion attaches after the run finished:
// the handler replays the flight record instead of a live stream.
func TestObsStreamReplayAfterCompletion(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	id := submit(t, ts, synthSpec())
	waitTerminal(t, s, ts, id)

	resp, err := http.Get(ts.URL + "/runs/" + id + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("replay Content-Type = %q", ct)
	}
	tr, err := obs.ReadTrace(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, e := range tr.Events {
		seen[e.Name] = true
	}
	for _, want := range []string{"init", "run", "mine-final", "verify-final"} {
		if !seen[want] {
			t.Errorf("replayed trace lacks %s span", want)
		}
	}
}
