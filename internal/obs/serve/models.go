package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"arcs/internal/cancelcheck"
	"arcs/internal/obs"
	"arcs/internal/segment"
	"arcs/internal/segment/registry"
)

// publishRequest is the body of POST /models: either a finished run to
// publish a result from, or a direct model document upload.
type publishRequest struct {
	// Run names a finished mining run whose result becomes the model.
	Run string `json:"run,omitempty"`
	// Value picks the criterion value when the run segmented several;
	// optional when the run produced exactly one result.
	Value string `json:"value,omitempty"`
	// Model is a direct segment-model document upload, validated
	// through the same segment.Read path as every other load.
	Model json.RawMessage `json:"model,omitempty"`
	// Note is free-form provenance recorded in the manifest.
	Note string `json:"note,omitempty"`
	// Activate additionally activates the published version.
	Activate bool `json:"activate,omitempty"`
}

// applyRequest is the body of POST /apply: one named tuple or a
// positional batch, plus an optional per-request deadline.
type applyRequest struct {
	// Tuple maps attribute names to values; it must contain the active
	// model's x and y attributes.
	Tuple map[string]float64 `json:"tuple,omitempty"`
	// Points are positional [x, y] pairs in the model's attribute
	// space — the bulk path, scored allocation-free per point.
	Points [][2]float64 `json:"points,omitempty"`
	// TimeoutMS lowers the server's per-request deadline; it can never
	// raise it past the configured maximum.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// handlePublishModel publishes a model into the registry, from a
// finished run's result or a direct upload.
func (s *Server) handlePublishModel(w http.ResponseWriter, r *http.Request) {
	if s.models == nil {
		http.Error(w, "no model registry configured (start arcsd with -registry)", http.StatusServiceUnavailable)
		return
	}
	var req publishRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}

	var model *segment.Model
	switch {
	case req.Run != "" && req.Model != nil:
		http.Error(w, "set run or model, not both", http.StatusBadRequest)
		return
	case req.Run != "":
		var err error
		if model, err = s.modelFromRun(req.Run, req.Value); err != nil {
			status := http.StatusUnprocessableEntity
			if errors.Is(err, errUnknownRun) {
				status = http.StatusNotFound
			}
			http.Error(w, err.Error(), status)
			return
		}
	case req.Model != nil:
		var err error
		if model, err = segment.Read(bytes.NewReader(req.Model)); err != nil {
			http.Error(w, "invalid model: "+err.Error(), http.StatusUnprocessableEntity)
			return
		}
	default:
		http.Error(w, "set run (publish a finished run's result) or model (direct upload)", http.StatusBadRequest)
		return
	}

	info, err := s.models.Publish(model, registry.PublishMeta{SourceRun: req.Run, Note: req.Note})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := map[string]any{"id": info.ID, "state": info.State, "manifest": info.Manifest}
	status := http.StatusCreated
	if req.Activate {
		if _, err := s.activate(info.ID); err != nil {
			// The publish stood; only the activation failed. Surface both.
			resp["activation_error"] = err.Error()
			status = http.StatusConflict
		} else {
			resp["active"] = true
		}
	}
	writeJSONStatus(w, status, resp)
}

// errUnknownRun distinguishes a 404 from a 422 in publish-from-run.
var errUnknownRun = errors.New("unknown run")

// modelFromRun builds a segment model from a finished run's mined
// result — the daemon-side equivalent of `arcs -save`.
func (s *Server) modelFromRun(id, value string) (*segment.Model, error) {
	run := s.lookup(id)
	if run == nil {
		return nil, fmt.Errorf("%w %q", errUnknownRun, id)
	}
	if !run.terminal() {
		return nil, fmt.Errorf("run %s is still %s; publish needs a finished run", id, run.State())
	}
	run.mu.Lock()
	defer run.mu.Unlock()
	if len(run.results) == 0 {
		return nil, fmt.Errorf("run %s finished %s with no results", id, run.state)
	}
	label := value
	if label == "" {
		if len(run.results) > 1 {
			return nil, fmt.Errorf("run %s has %d results; set value to pick one", id, len(run.results))
		}
		for l := range run.results {
			label = l
		}
	}
	res, ok := run.results[label]
	if !ok {
		return nil, fmt.Errorf("run %s has no result for value %q", id, label)
	}
	model, err := segment.New(res.Rules, res.MinSupport, res.MinConfidence)
	if err != nil {
		return nil, fmt.Errorf("run %s result %q: %w", id, label, err)
	}
	return model, nil
}

// handleListModels lists every known version with its state, plus the
// active one — quarantined versions show up here with their reasons
// instead of disappearing.
func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	if s.models == nil {
		http.Error(w, "no model registry configured (start arcsd with -registry)", http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, map[string]any{
		"active": s.models.ActiveID(),
		"models": s.models.List(),
	})
}

// handleGetModel returns one version's state and, when it loads
// cleanly, the model document itself.
func (s *Server) handleGetModel(w http.ResponseWriter, r *http.Request) {
	if s.models == nil {
		http.Error(w, "no model registry configured (start arcsd with -registry)", http.StatusServiceUnavailable)
		return
	}
	id := r.PathValue("id")
	var info *registry.VersionInfo
	for _, v := range s.models.List() {
		if v.ID == id {
			vi := v
			info = &vi
			break
		}
	}
	if info == nil {
		http.Error(w, "unknown model version", http.StatusNotFound)
		return
	}
	resp := map[string]any{"id": info.ID, "state": info.State, "active": info.Active, "manifest": info.Manifest}
	if info.Reason != "" {
		resp["reason"] = info.Reason
	}
	if model, _, err := s.models.Load(id); err == nil {
		resp["model"] = model
	} else {
		resp["state"] = registry.StateQuarantined
		resp["reason"] = err.Error()
	}
	writeJSON(w, resp)
}

// handleActivateModel re-validates a version from disk and hot-swaps
// it in. On any failure the previous model keeps serving and the
// response names it, so an operator activating a corrupt version sees
// the rollback, not an outage.
func (s *Server) handleActivateModel(w http.ResponseWriter, r *http.Request) {
	if s.models == nil {
		http.Error(w, "no model registry configured (start arcsd with -registry)", http.StatusServiceUnavailable)
		return
	}
	id := r.PathValue("id")
	snap, err := s.activate(id)
	if err != nil {
		writeJSONStatus(w, http.StatusConflict, map[string]any{
			"error":  err.Error(),
			"active": s.models.ActiveID(),
		})
		return
	}
	writeJSON(w, map[string]any{"active": snap.ID})
}

// activate performs the swap and records it in the flight recorder, so
// a post-hoc flight dump shows exactly when traffic moved between
// versions.
func (s *Server) activate(id string) (*registry.Snapshot, error) {
	prev := s.models.ActiveID()
	snap, err := s.models.Activate(id)
	if err != nil {
		s.flight.EmitRun("models", obs.Event{
			Type: obs.EventInstant, Name: "model.swap.failed", Start: time.Now(),
			Attrs: []obs.Attr{obs.Str("model", id), obs.Str("active", prev), obs.Str("err", err.Error())},
		})
		return nil, err
	}
	s.flight.EmitRun("models", obs.Event{
		Type: obs.EventInstant, Name: "model.swap", Start: time.Now(),
		Attrs: []obs.Attr{obs.Str("model", snap.ID), obs.Str("previous", prev)},
	})
	// A fresh model resets the breaker: bind errors against the old
	// version say nothing about the new one.
	s.applyBreaker.success()
	return snap, nil
}

// handleApply is the hot data-plane endpoint: score one tuple or a
// positional batch against the active model. Admission control runs
// before any work: a tripped breaker answers 503, a full in-flight
// limiter sheds with 429 + Retry-After instead of queuing, and the
// per-request deadline propagates into the scoring loop so a stuck
// client cannot pin a slot past its budget.
func (s *Server) handleApply(w http.ResponseWriter, r *http.Request) {
	s.mApplyReqs.Inc()
	if s.models == nil {
		http.Error(w, "no model registry configured (start arcsd with -registry)", http.StatusServiceUnavailable)
		return
	}
	if wait, open := s.applyBreaker.state(); open {
		s.mApplyBreakerOpen.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int(wait.Seconds())+1))
		http.Error(w, "apply breaker open: recent model bind/apply errors; backing off", http.StatusServiceUnavailable)
		return
	}
	select {
	case s.applySem <- struct{}{}:
		defer func() { <-s.applySem }()
	default:
		s.mApplyShed.Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "overloaded: apply in-flight limit reached", http.StatusTooManyRequests)
		return
	}
	s.gApplyInFlight.Add(1)
	defer s.gApplyInFlight.Add(-1)

	// One snapshot per request: a concurrent activation swaps the
	// pointer for later requests, never for this one mid-batch.
	snap := s.models.Active()
	if snap == nil {
		http.Error(w, "no active model (publish and activate one first)", http.StatusServiceUnavailable)
		return
	}

	var req applyRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 32<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if (req.Tuple == nil) == (req.Points == nil) {
		http.Error(w, "set exactly one of tuple or points", http.StatusBadRequest)
		return
	}
	timeout := s.applyTimeout
	if req.TimeoutMS > 0 && time.Duration(req.TimeoutMS)*time.Millisecond < timeout {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	if s.applyGate != nil {
		// Test seam: hold the in-flight slot (overload tests) and burn
		// the request deadline (deadline tests) deterministically.
		s.applyGate()
	}

	start := time.Now()
	if req.Tuple != nil {
		x, okx := req.Tuple[snap.Model.XAttr]
		y, oky := req.Tuple[snap.Model.YAttr]
		if !okx || !oky {
			s.applyFailure(w, snap.ID, fmt.Sprintf(
				"tuple lacks the active model's attributes (%s, %s)",
				snap.Model.XAttr, snap.Model.YAttr))
			return
		}
		covered := snap.Covers(x, y)
		s.applyBreaker.success()
		s.mApplyTuples.Inc()
		s.hApplySeconds.Observe(time.Since(start).Seconds())
		writeJSON(w, map[string]any{"model": snap.ID, "covered": covered})
		return
	}

	out := make([]bool, len(req.Points))
	matched, err := snap.Model.ApplyPointsContext(ctx, req.Points, out)
	if err != nil {
		if cancelcheck.IsCancel(err) {
			s.mApplyDeadline.Inc()
			http.Error(w, fmt.Sprintf("deadline exceeded after scoring %d of %d points", matched, len(req.Points)), http.StatusGatewayTimeout)
			return
		}
		s.applyFailure(w, snap.ID, err.Error())
		return
	}
	s.applyBreaker.success()
	s.mApplyTuples.Add(int64(len(req.Points)))
	s.hApplySeconds.Observe(time.Since(start).Seconds())
	writeJSON(w, map[string]any{
		"model":   snap.ID,
		"total":   len(req.Points),
		"matched": matched,
		"results": out,
	})
}

// applyFailure answers a bind/apply error and feeds the breaker: a
// spike of these (a model whose attributes the traffic doesn't carry,
// say) trips the endpoint to fast 503s instead of grinding every
// request through the same failure.
func (s *Server) applyFailure(w http.ResponseWriter, modelID, msg string) {
	s.mApplyErrors.Inc()
	s.applyBreaker.failure()
	http.Error(w, "apply against "+modelID+": "+msg, http.StatusUnprocessableEntity)
}

// writeJSONStatus is writeJSON with an explicit status code.
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeJSON(w, v)
}

// breaker is a consecutive-error circuit breaker for the apply path.
// threshold consecutive failures open it for cooldown; after the
// cooldown it half-opens (traffic flows again, one more failure
// re-trips immediately, a success closes it). now is a test seam.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	mTripped  *obs.Counter

	mu          sync.Mutex
	consecutive int
	openUntil   time.Time
}

// state reports whether the breaker is open and, if so, how long until
// it half-opens. A breaker past its cooldown transitions to half-open
// here: traffic is admitted, primed to re-trip on a single failure.
func (b *breaker) state() (wait time.Duration, open bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return 0, false
	}
	if wait := b.openUntil.Sub(b.now()); wait > 0 {
		return wait, true
	}
	b.openUntil = time.Time{}
	b.consecutive = b.threshold - 1
	return 0, false
}

// failure records one error, opening the breaker at the threshold.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if b.consecutive >= b.threshold && b.openUntil.IsZero() {
		b.openUntil = b.now().Add(b.cooldown)
		b.mTripped.Inc()
	}
}

// success closes the breaker and clears the error streak, even if it
// is still inside its cooldown (a model activation mid-cooldown is a
// deliberate operator reset).
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	b.openUntil = time.Time{}
}
