// Package serve is the HTTP observability and control surface of arcsd:
// an async mining-job API wired into the core pipeline's cancellation
// plumbing, live Prometheus scrape of the shared metrics registry, span
// streaming over NDJSON/SSE through the obs.Fanout sink, flight-recorder
// dumps for post-hoc triage, and the standard pprof/expvar debug
// endpoints. It deliberately contains no mining logic — it is the
// serving skeleton later control-plane features (model registry,
// streaming ingest) mount onto.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"arcs/internal/core"
	"arcs/internal/counts"
	"arcs/internal/dataset"
	"arcs/internal/obs"
	"arcs/internal/optimizer"
	"arcs/internal/quality"
	"arcs/internal/report"
	"arcs/internal/synth"
)

// Run states, in lifecycle order. Degraded and canceled are terminal
// variants of a canceled run: degraded carries a usable best-so-far
// result, canceled carries none.
const (
	StatePending  = "pending"
	StateRunning  = "running"
	StateDone     = "done"
	StateDegraded = "degraded"
	StateCanceled = "canceled"
	StateFailed   = "failed"
)

// JobSpec is the body of POST /runs: one data source (csv or synth) plus
// the mining parameters. Zero-valued mining fields take the same
// defaults as the arcs CLI.
type JobSpec struct {
	// CSV and Synth select the tuple source; exactly one must be set.
	CSV   *CSVSpec   `json:"csv,omitempty"`
	Synth *SynthSpec `json:"synth,omitempty"`

	// X, Y are the LHS attributes; Crit is the categorical criterion.
	X    string `json:"x"`
	Y    string `json:"y"`
	Crit string `json:"crit"`
	// Value is the criterion value to segment; empty segments every
	// value (SegmentAll).
	Value string `json:"value,omitempty"`

	Bins      int     `json:"bins,omitempty"`
	Search    string  `json:"search,omitempty"`    // walk|anneal|factorial|fixed (default walk)
	Smoothing string  `json:"smoothing,omitempty"` // binary|off|weighted|morphological
	MinSup    float64 `json:"min_support,omitempty"`
	MinConf   float64 `json:"min_confidence,omitempty"`
	Lift      float64 `json:"lift,omitempty"`
	Seed      int64   `json:"seed,omitempty"`

	// IngestWorkers shards the counting pass (in-memory sources only).
	IngestWorkers int `json:"ingest_workers,omitempty"`
	// MemBudget is the count-substrate memory budget for this run:
	// bytes with an optional K/M/G/T suffix, or "off" for unlimited.
	// Empty inherits the daemon default (-mem-budget flag).
	MemBudget string `json:"mem_budget,omitempty"`
	// CountsBackend pins a count backend for this run: auto, dense,
	// sparse or spill. Empty inherits the daemon default
	// (-counts-backend flag). The selected backend and its footprint
	// come back in each result's "counts" block.
	CountsBackend string `json:"counts_backend,omitempty"`
	// TimeoutSec bounds the run; on expiry it degrades to the
	// best-so-far result exactly like the CLI's -timeout.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

// CSVSpec points a run at a CSV file on the server's filesystem.
type CSVSpec struct {
	Path string `json:"path"`
	// Stream reads the file in constant memory instead of materializing.
	Stream bool `json:"stream,omitempty"`
	// MaxBadRows is the quarantine budget (-1 unlimited, 0 strict).
	MaxBadRows int `json:"max_bad_rows,omitempty"`
	// Retries is the per-read retry budget for transient errors.
	Retries int `json:"retries,omitempty"`
}

// SynthSpec generates the Agrawal et al. synthetic workload in-process —
// the same generator the experiment harness uses — so the daemon can be
// smoke-tested and load-tested with no data files.
type SynthSpec struct {
	Function     int     `json:"function"`
	N            int     `json:"n"`
	Seed         int64   `json:"seed,omitempty"`
	Perturbation float64 `json:"perturbation,omitempty"`
	Outliers     float64 `json:"outliers,omitempty"`
	FracA        float64 `json:"frac_a,omitempty"`
	// Positional selects the position-deterministic stream generator
	// (shardable; required for ingest_workers > 1).
	Positional bool `json:"positional,omitempty"`
}

// validate checks the parts of the spec the server can reject before
// spawning a run.
func (j *JobSpec) validate(csvRoot string) error {
	switch {
	case j.CSV == nil && j.Synth == nil:
		return errors.New("spec needs a data source: set csv or synth")
	case j.CSV != nil && j.Synth != nil:
		return errors.New("spec sets both csv and synth; pick one")
	}
	if j.X == "" || j.Y == "" || j.Crit == "" {
		return errors.New("x, y and crit attributes are required")
	}
	if j.CSV != nil {
		if j.CSV.Path == "" {
			return errors.New("csv.path is required")
		}
		if csvRoot != "" {
			abs, err := filepath.Abs(j.CSV.Path)
			if err != nil {
				return fmt.Errorf("csv.path: %w", err)
			}
			root, err := filepath.Abs(csvRoot)
			if err != nil {
				return fmt.Errorf("csv root: %w", err)
			}
			if abs != root && !strings.HasPrefix(abs, root+string(filepath.Separator)) {
				return fmt.Errorf("csv.path %q is outside the served data root", j.CSV.Path)
			}
		}
	}
	if j.Synth != nil {
		if j.Synth.Function < 1 || j.Synth.Function > 10 {
			return fmt.Errorf("synth.function must be 1..10, got %d", j.Synth.Function)
		}
		if j.Synth.N <= 0 {
			return errors.New("synth.n must be positive")
		}
	}
	switch j.Search {
	case "", "walk", "anneal", "factorial", "fixed":
	default:
		return fmt.Errorf("unknown search %q (want walk, anneal, factorial or fixed)", j.Search)
	}
	switch j.Smoothing {
	case "", "binary", "off", "weighted", "morphological":
	default:
		return fmt.Errorf("unknown smoothing %q (want binary, off, weighted or morphological)", j.Smoothing)
	}
	if _, err := counts.ParseBudget(j.MemBudget); err != nil {
		return fmt.Errorf("mem_budget: %w", err)
	}
	if _, err := counts.ParseKind(j.CountsBackend); err != nil {
		return fmt.Errorf("counts_backend: %w", err)
	}
	if j.TimeoutSec < 0 {
		return errors.New("timeout_sec must be non-negative")
	}
	return nil
}

// countsDefaults are the daemon-wide count-substrate settings applied
// to specs that do not choose their own.
type countsDefaults struct {
	memBudget int64
	backend   string
	spillDir  string
}

// coreConfig maps the spec onto a core.Config for the given run ID and
// observer; def fills the count-substrate knobs the spec leaves unset.
func (j *JobSpec) coreConfig(runID string, observer *obs.Observer, def countsDefaults) core.Config {
	memBudget := def.memBudget
	// validate already vetted both fields; parse errors cannot reach here.
	if b, err := counts.ParseBudget(j.MemBudget); err == nil && b != 0 {
		memBudget = b
	}
	backend := j.CountsBackend
	if backend == "" {
		backend = def.backend
	}
	cfg := core.Config{
		XAttr: j.X, YAttr: j.Y,
		CritAttr: j.Crit, CritValue: j.Value,
		NumBins:            j.Bins,
		FixedMinSupport:    j.MinSup,
		FixedMinConfidence: j.MinConf,
		InterestLift:       j.Lift,
		Seed:               j.Seed,
		IngestWorkers:      j.IngestWorkers,
		MemBudget:          memBudget,
		CountsBackend:      backend,
		SpillDir:           def.spillDir,
		Walk:               optimizer.ThresholdWalk{},
		RunID:              runID,
		Observer:           observer,
	}
	switch j.Search {
	case "anneal":
		cfg.Search = core.SearchAnneal
	case "factorial":
		cfg.Search = core.SearchFactorial
	case "fixed":
		cfg.Search = core.SearchFixed
	default:
		cfg.Search = core.SearchWalk
	}
	switch j.Smoothing {
	case "off":
		cfg.Smoothing = core.SmoothOff
	case "weighted":
		cfg.Smoothing = core.SmoothWeighted
	case "morphological":
		cfg.Smoothing = core.SmoothMorphological
	default:
		cfg.Smoothing = core.SmoothBinary
	}
	return cfg
}

// Run is one submitted mining job: its spec, lifecycle state, the
// cancellation handle, and the fan-out sink its observer writes through
// (flight recorder + optional tee + live span subscribers).
type Run struct {
	ID string

	fanout *obs.Fanout
	cancel context.CancelFunc
	done   chan struct{}

	mu        sync.Mutex
	spec      JobSpec
	state     string
	submitted time.Time
	started   time.Time
	finished  time.Time
	errMsg    string
	results   map[string]*core.Result
	quality   map[string]*quality.Report
	quar      dataset.ResilientStats
}

// Status is the JSON shape of GET /runs/{id}.
type Status struct {
	ID          string         `json:"id"`
	State       string         `json:"state"`
	Spec        JobSpec        `json:"spec"`
	SubmittedAt time.Time      `json:"submitted_at"`
	StartedAt   *time.Time     `json:"started_at,omitempty"`
	FinishedAt  *time.Time     `json:"finished_at,omitempty"`
	Error       string         `json:"error,omitempty"`
	Results     map[string]any `json:"results,omitempty"`
	// Quality carries per-criterion-value mining-quality reports for
	// synth-spec runs: held-out classification error, per-rule
	// interestingness measures, and (when the function's generating
	// disjuncts are rectangular in the mined pair) rectangle recovery.
	Quality map[string]*quality.Report `json:"quality,omitempty"`
	// StreamDropped counts span-stream events lost to slow consumers of
	// this run (sum over all subscribers so far).
	StreamDropped int64 `json:"stream_dropped,omitempty"`
	// RowsQuarantined surfaces input degradation for CSV sources.
	RowsQuarantined int64 `json:"rows_quarantined,omitempty"`
}

// Status snapshots the run for the API.
func (r *Run) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Status{
		ID:            r.ID,
		State:         r.state,
		Spec:          r.spec,
		SubmittedAt:   r.submitted,
		Error:         r.errMsg,
		StreamDropped: r.fanout.Dropped(),
	}
	if !r.started.IsZero() {
		t := r.started
		st.StartedAt = &t
	}
	if !r.finished.IsZero() {
		t := r.finished
		st.FinishedAt = &t
	}
	if len(r.results) > 0 {
		st.Results = make(map[string]any, len(r.results))
		for label, res := range r.results {
			st.Results[label] = report.JSONResult(res)
		}
	}
	if len(r.quality) > 0 {
		st.Quality = make(map[string]*quality.Report, len(r.quality))
		for label, rep := range r.quality {
			st.Quality[label] = rep
		}
	}
	st.RowsQuarantined = int64(r.quar.Total())
	return st
}

// State returns the run's current lifecycle state.
func (r *Run) State() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// terminal reports whether the run has finished (any terminal state).
func (r *Run) terminal() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Cancel requests cooperative cancellation. The run transitions to
// canceled or degraded once the pipeline reaches its next checkpoint.
func (r *Run) Cancel() { r.cancel() }

// Done is closed when the run reaches a terminal state and its span
// stream has ended.
func (r *Run) Done() <-chan struct{} { return r.done }

// buildSource constructs the run's tuple source. The returned cleanup
// (possibly nil) runs after the mining completes. reg receives the
// resilient layer's quarantine/retry counters for CSV sources.
func (r *Run) buildSource(spec JobSpec, reg *obs.Registry) (dataset.Source, func(), error) {
	if spec.Synth != nil {
		scfg := synth.Config{
			Function:        spec.Synth.Function,
			N:               spec.Synth.N,
			Seed:            spec.Synth.Seed,
			Perturbation:    spec.Synth.Perturbation,
			OutlierFraction: spec.Synth.Outliers,
			FracA:           spec.Synth.FracA,
		}
		if spec.Synth.Positional {
			st, err := synth.NewStream(scfg)
			if err != nil {
				return nil, nil, err
			}
			return st.Source(), nil, nil
		}
		gen, err := synth.New(scfg)
		if err != nil {
			return nil, nil, err
		}
		return gen, nil, nil
	}

	schema, err := dataset.InferCSVSchema(spec.CSV.Path, 10_000)
	if err != nil {
		return nil, nil, err
	}
	cs, err := dataset.OpenCSVStream(spec.CSV.Path, schema)
	if err != nil {
		return nil, nil, err
	}
	resilient := dataset.NewResilient(cs,
		dataset.Retry{Max: spec.CSV.Retries, Seed: spec.Seed},
		dataset.Quarantine{MaxBadRows: spec.CSV.MaxBadRows,
			OnBad: func(reason string, row int, err error) {
				slog.Debug("quarantined row", "run", r.ID, "reason", reason, "row", row, "err", err)
			}})
	resilient.Observe(reg)
	record := func() {
		r.mu.Lock()
		r.quar = resilient.Stats()
		r.mu.Unlock()
	}
	if spec.CSV.Stream {
		return resilient, func() { record(); cs.Close() }, nil
	}
	tb, err := dataset.Materialize(resilient)
	record()
	if cerr := cs.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return nil, nil, err
	}
	return tb, nil, nil
}

// execute drives the run to a terminal state. It runs on its own
// goroutine under a pprof label carrying the run ID, so CPU profiles
// scraped from /debug/pprof attribute samples to runs
// (`go tool pprof -tagfocus arcs_run=<id>`).
func (s *Server) execute(ctx context.Context, r *Run, observer *obs.Observer) {
	defer close(r.done)
	defer r.fanout.Close()
	spec := func() JobSpec {
		r.mu.Lock()
		defer r.mu.Unlock()
		r.state = StateRunning
		r.started = time.Now()
		return r.spec
	}()
	s.harvester.Sample()
	s.mRunsStarted.Inc()

	var results map[string]*core.Result
	var runErr error
	pprof.Do(ctx, pprof.Labels("arcs_run", r.ID), func(ctx context.Context) {
		src, cleanup, err := r.buildSource(spec, observer.Registry())
		if err != nil {
			runErr = err
			return
		}
		if cleanup != nil {
			defer cleanup()
		}
		sys, err := core.NewContext(ctx, src, spec.coreConfig(r.ID, observer,
			countsDefaults{memBudget: s.defMemBudget, backend: s.defBackend, spillDir: s.spillDir}))
		if err != nil {
			runErr = err
			return
		}
		if spec.Value != "" {
			res, err := sys.RunContext(ctx)
			if res != nil {
				results = map[string]*core.Result{spec.Value: res}
			}
			runErr = err
			return
		}
		results, runErr = sys.SegmentAllContext(ctx)
	})

	// Synth runs know their own ground truth — re-running the generator
	// on a shifted seed yields a held-out test table — so mining quality
	// is measured and published before the metrics flush, landing the
	// quality gauges in the trace and on /metrics alongside perf.
	var qual map[string]*quality.Report
	if spec.Synth != nil && len(results) > 0 && s.qualityN > 0 {
		qual = s.evaluateQuality(r.ID, spec, results, observer.Registry())
	}

	// The final registry state and runtime gauges belong in the trace
	// (and flight record) before the stream closes.
	observer.FlushMetrics()
	s.harvester.Sample()

	r.mu.Lock()
	defer r.mu.Unlock()
	r.finished = time.Now()
	r.results = results
	r.quality = qual
	switch re := core.AsRunError(runErr); {
	case runErr == nil:
		r.state = StateDone
	case re != nil && re.Partial && len(results) > 0:
		r.state = StateDegraded
		r.errMsg = runErr.Error()
		s.mRunsDegraded.Inc()
	case errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded):
		r.state = StateCanceled
		r.errMsg = runErr.Error()
		s.mRunsCanceled.Inc()
	default:
		r.state = StateFailed
		r.errMsg = runErr.Error()
		s.mRunsFailed.Inc()
	}
	slog.Info("run finished", "run", r.ID, "state", r.state,
		"elapsed", r.finished.Sub(r.started).Round(time.Millisecond))
}

// evaluateQuality measures each mined result of a synth run against a
// held-out test table (the generator re-run on a shifted seed) and
// publishes the headline numbers into the shared registry. Generating
// disjuncts are attached only when the spec mines the function's
// recommended pair and that pair is fully quantitative — categorical
// regions live in unpermuted code space, which the server's default
// category reordering would misalign. Evaluation failures degrade to a
// missing quality block, never to a failed run.
func (s *Server) evaluateQuality(runID string, spec JobSpec, results map[string]*core.Result, reg *obs.Registry) map[string]*quality.Report {
	testGen, err := synth.New(synth.Config{
		Function:        spec.Synth.Function,
		N:               s.qualityN,
		Seed:            spec.Synth.Seed + 7919,
		Perturbation:    spec.Synth.Perturbation,
		OutlierFraction: spec.Synth.Outliers,
		FracA:           spec.Synth.FracA,
	})
	if err != nil {
		slog.Warn("quality: building test generator", "run", runID, "err", err)
		return nil
	}
	test, err := dataset.Materialize(testGen)
	if err != nil {
		slog.Warn("quality: materializing test table", "run", runID, "err", err)
		return nil
	}

	out := make(map[string]*quality.Report, len(results))
	for label, res := range results {
		opts := quality.Options{
			XAttr: spec.X, YAttr: spec.Y,
			CritAttr: spec.Crit, CritValue: label,
		}
		if tr, terr := synth.GroundTruth(spec.Synth.Function); terr == nil &&
			tr.HasRegions() && !tr.CategoricalY &&
			tr.XAttr == spec.X && tr.YAttr == spec.Y &&
			spec.Crit == synth.AttrGroup && label == synth.GroupA {
			opts.XLo, opts.XHi = tr.XLo, tr.XHi
			opts.YLo, opts.YHi = tr.YLo, tr.YHi
			opts.LatticeSteps = 200
			for _, reg := range tr.Regions {
				opts.Truth = append(opts.Truth, quality.Rect{
					XLo: reg.XLo, XHi: reg.XHi, YLo: reg.YLo, YHi: reg.YHi,
				})
			}
		}
		rep, err := quality.Evaluate(res, test, opts)
		if err != nil {
			slog.Warn("quality: evaluating result", "run", runID, "value", label, "err", err)
			continue
		}
		rep.Observe(reg)
		out[label] = rep
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
