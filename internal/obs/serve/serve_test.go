package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"arcs/internal/obs"
)

// newTestServer builds a Server with small limits and its HTTP harness.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Registry == nil {
		opts.Registry = obs.NewRegistry()
	}
	if opts.Flight == nil {
		opts.Flight = obs.NewFlightRecorder(4096)
	}
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.CancelAll()
		for _, r := range s.Runs() {
			<-r.Done()
		}
		ts.Close()
	})
	return s, ts
}

// synthSpec is a small job that completes in well under a second.
func synthSpec() string {
	return `{"synth":{"function":2,"n":5000,"seed":1,"perturbation":0.05,"frac_a":0.4},
	         "x":"age","y":"salary","crit":"group","value":"A","bins":20}`
}

// submit posts a spec and returns the run ID.
func submit(t *testing.T, ts *httptest.Server, spec string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("POST /runs = %d: %s", resp.StatusCode, buf.String())
	}
	var body struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.ID == "" {
		t.Fatal("submit response carries no run ID")
	}
	return body.ID
}

// getStatus fetches /runs/{id} and decodes it.
func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitTerminal polls until the run leaves pending/running.
func waitTerminal(t *testing.T, s *Server, ts *httptest.Server, id string) Status {
	t.Helper()
	run := s.lookup(id)
	if run == nil {
		t.Fatalf("run %s not retained", id)
	}
	select {
	case <-run.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("run %s still not terminal", id)
	}
	return getStatus(t, ts, id)
}

func TestObsServeSubmitRunsToCompletion(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	id := submit(t, ts, synthSpec())
	st := waitTerminal(t, s, ts, id)
	if st.State != StateDone {
		t.Fatalf("run ended %q (err %q), want done", st.State, st.Error)
	}
	if st.StartedAt == nil || st.FinishedAt == nil {
		t.Fatal("terminal status missing timestamps")
	}
	if len(st.Results) != 1 {
		t.Fatalf("status carries %d results, want 1", len(st.Results))
	}
	res, ok := st.Results["A"].(map[string]any)
	if !ok {
		t.Fatalf("result for A has shape %T", st.Results["A"])
	}
	if _, ok := res["min_support"]; !ok {
		t.Fatal("result JSON lacks min_support — report.JSONResult not wired through")
	}
}

func TestObsServeMetricsScrape(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Options{
		Registry:  reg,
		Harvester: obs.NewRuntimeHarvester(reg),
	})
	id := submit(t, ts, synthSpec())
	waitTerminal(t, s, ts, id)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	for _, want := range []string{
		"arcs_serve_runs_started_total 1",
		"arcs_go_goroutines ",    // harvester gauge, sampled on scrape
		"arcs_phase_run_seconds", // pipeline histogram from the run
		"arcs_serve_http_requests_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape lacks %q", want)
		}
	}
	// Minimal exposition-format sanity: every non-comment line is
	// "name value" or "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("unparseable exposition line %q", line)
		}
	}
}

// TestObsServeQualityBlock: a synth run's status carries a quality
// report for the mined value — held-out error, per-rule measures, and
// (Function 2 mines its recommended pair) rectangle recovery — and the
// quality gauges land on /metrics.
func TestObsServeQualityBlock(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Options{Registry: reg, QualityTestN: 2000})
	id := submit(t, ts, synthSpec())
	st := waitTerminal(t, s, ts, id)
	if st.State != StateDone {
		t.Fatalf("run ended %q (err %q)", st.State, st.Error)
	}
	rep, ok := st.Quality["A"]
	if !ok {
		t.Fatalf("status has no quality report for A: %+v", st.Quality)
	}
	if rep.TestN != 2000 {
		t.Errorf("quality TestN = %d, want the configured 2000", rep.TestN)
	}
	if rep.Rules < 1 || len(rep.RuleMeasures) != rep.Rules {
		t.Errorf("quality rules = %d with %d measures", rep.Rules, len(rep.RuleMeasures))
	}
	if rep.ErrorPct < 0 || rep.ErrorPct > 100 {
		t.Errorf("quality error = %g out of range", rep.ErrorPct)
	}
	// The spec mines Function 2 over age×salary = the recommended pair,
	// so recovery against the generating disjuncts must be present.
	if rep.Recovery == nil {
		t.Fatal("quality report lacks rectangle recovery for Function 2 on its recommended pair")
	}
	if rep.Recovery.IoU <= 0 || rep.Recovery.IoU > 1 {
		t.Errorf("recovery IoU = %g out of range", rep.Recovery.IoU)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, want := range []string{
		"arcs_quality_error_rate_pct",
		"arcs_quality_rules",
		"arcs_quality_recovery_iou",
		"arcs_quality_rule_lift_count",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("scrape lacks %q", want)
		}
	}
}

// TestObsServeQualityDisabled: a negative QualityTestN turns the
// evaluation off without touching the rest of the run.
func TestObsServeQualityDisabled(t *testing.T) {
	s, ts := newTestServer(t, Options{QualityTestN: -1})
	id := submit(t, ts, synthSpec())
	st := waitTerminal(t, s, ts, id)
	if st.State != StateDone {
		t.Fatalf("run ended %q (err %q)", st.State, st.Error)
	}
	if len(st.Quality) != 0 {
		t.Fatalf("quality evaluation ran despite being disabled: %+v", st.Quality)
	}
}

func TestObsServeCancelDegradesRun(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	// A large slow run so the cancel lands mid-flight.
	id := submit(t, ts, `{"synth":{"function":2,"n":400000,"seed":1,"perturbation":0.05,"frac_a":0.4},
		"x":"age","y":"salary","crit":"group","value":"A","bins":50}`)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/runs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /runs/%s = %d", id, resp.StatusCode)
	}
	st := waitTerminal(t, s, ts, id)
	switch st.State {
	case StateCanceled, StateDegraded, StateDone:
		// done is possible if the run beat the cancel; all three prove
		// the terminal-state machinery.
	default:
		t.Fatalf("canceled run ended %q", st.State)
	}
}

func TestObsServeFlightRecordDump(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	id := submit(t, ts, synthSpec())
	waitTerminal(t, s, ts, id)

	resp, err := http.Get(ts.URL + "/debug/flightrecord?run=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("flightrecord Content-Type = %q", ct)
	}
	tr, err := obs.ReadTrace(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range tr.Events {
		if e.Attr("run") != id {
			t.Fatalf("filtered dump contains event for run %q", e.Attr("run"))
		}
		names[e.Name] = true
	}
	for _, want := range []string{"init", "run", "mine-final", "verify-final"} {
		if !names[want] {
			t.Errorf("flight record lacks %s span", want)
		}
	}
	// The run's closing FlushMetrics lands in the record too.
	if len(tr.Metrics) == 0 {
		t.Error("flight record carries no metrics event")
	}
}

func TestObsServeHealthAndReadiness(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("readyz: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	s.SetReady(false)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", resp.StatusCode)
	}
	// Draining also refuses new submissions.
	resp, err = http.Post(ts.URL+"/runs", "application/json", strings.NewReader(synthSpec()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining POST /runs = %d, want 503", resp.StatusCode)
	}
}

func TestObsServeBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{CSVRoot: t.TempDir()})
	cases := []struct {
		name, body string
	}{
		{"no source", `{"x":"age","y":"salary","crit":"group"}`},
		{"both sources", `{"csv":{"path":"a.csv"},"synth":{"function":1,"n":10},"x":"a","y":"b","crit":"c"}`},
		{"missing attrs", `{"synth":{"function":1,"n":10}}`},
		{"bad function", `{"synth":{"function":11,"n":10},"x":"a","y":"b","crit":"c"}`},
		{"bad search", `{"synth":{"function":1,"n":10},"x":"a","y":"b","crit":"c","search":"magic"}`},
		{"unknown field", `{"synth":{"function":1,"n":10},"x":"a","y":"b","crit":"c","bogus":1}`},
		{"csv escape", `{"csv":{"path":"../../etc/passwd"},"x":"a","y":"b","crit":"c"}`},
		{"not json", `hello`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

func TestObsServeUnknownRun(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, path := range []string{"/runs/r999999", "/runs/r999999/spans"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/runs/r999999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown run = %d, want 404", resp.StatusCode)
	}
}

func TestObsServeListAndEviction(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxRuns: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		id := submit(t, ts, synthSpec())
		waitTerminal(t, s, ts, id)
		ids = append(ids, id)
	}
	resp, err := http.Get(ts.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Runs []Status `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Runs) != 2 {
		t.Fatalf("retained %d runs, want 2 (MaxRuns)", len(body.Runs))
	}
	if s.lookup(ids[0]) != nil {
		t.Fatalf("oldest run %s should have been evicted", ids[0])
	}
}

func TestObsServePprofIndex(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof index = %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "goroutine") {
		t.Fatal("pprof index does not list profiles")
	}
}

// TestObsServeConcurrentScrapeDuringRun races /metrics scrapes and
// status polls against an in-flight run — the shared-registry path the
// -race CI job is meant to exercise.
func TestObsServeConcurrentScrapeDuringRun(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Options{
		Registry:  reg,
		Harvester: obs.NewRuntimeHarvester(reg),
	})
	id := submit(t, ts, `{"synth":{"function":2,"n":150000,"seed":1,"perturbation":0.05,"frac_a":0.4},
		"x":"age","y":"salary","crit":"group","value":"A","bins":40}`)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			for _, path := range []string{"/metrics", "/runs/" + id, "/debug/flightrecord"} {
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					t.Error(err)
					return
				}
				var sink bytes.Buffer
				sink.ReadFrom(resp.Body)
				resp.Body.Close()
			}
		}
	}()
	st := waitTerminal(t, s, ts, id)
	<-done
	if st.State != StateDone {
		t.Fatalf("run under scrape load ended %q (err %q)", st.State, st.Error)
	}
}

// readNDJSONStream consumes a span stream to EOF, returning the decoded
// span/event names in order.
func readNDJSONStream(t *testing.T, body *bufio.Scanner) []string {
	t.Helper()
	var names []string
	for body.Scan() {
		line := strings.TrimSpace(body.Text())
		if line == "" {
			continue
		}
		var rec struct {
			Name string `json:"name"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		names = append(names, rec.Name)
	}
	return names
}
