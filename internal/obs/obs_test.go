package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestObsNilObserverIsSafeAndFree(t *testing.T) {
	var o *Observer
	if o.Enabled() {
		t.Fatal("nil observer reports enabled")
	}
	if o.Registry() != nil {
		t.Fatal("nil observer should hand out a nil registry")
	}
	root := o.Root("run", Int("n", 1))
	if root.Enabled() {
		t.Fatal("nil observer produced an enabled span")
	}
	child := root.Child("mine")
	child.End(Float("cost", 1.5))
	root.End()
	o.Annotate("note", Str("k", "v"))

	// Nil metric handles are silently inert.
	var reg *Registry
	reg.Counter("c").Add(3)
	reg.Gauge("g").Set(7)
	reg.Histogram("h").Observe(0.5)
	if got := reg.Counter("c").Value(); got != 0 {
		t.Fatalf("nil counter value = %d, want 0", got)
	}
	snap := reg.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestObsSpanNestingAndAttrs(t *testing.T) {
	sink := &MemSink{}
	o := New(sink)
	root := o.Root("run", Str("crit", "A"))
	child := root.Child("mine")
	grand := child.Child("cluster")
	grand.End(Int("rects", 4))
	child.End()
	o.Annotate("fallback", Str("reason", "edge"))
	root.End(Int("rules", 3))

	evs := sink.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	byName := map[string]Event{}
	for _, ev := range evs {
		byName[ev.Name] = ev
	}
	run, mine, cl := byName["run"], byName["mine"], byName["cluster"]
	if mine.Parent != run.ID || cl.Parent != mine.ID {
		t.Fatalf("nesting broken: run=%d mine(parent=%d) cluster(parent=%d)",
			run.ID, mine.Parent, cl.Parent)
	}
	if run.Parent != 0 {
		t.Fatalf("root span has parent %d", run.Parent)
	}
	if run.Attr("crit") != "A" || run.Attr("rules") != "3" {
		t.Fatalf("run attrs lost start/end values: %+v", run.Attrs)
	}
	if cl.Attr("rects") != "4" {
		t.Fatalf("cluster end attr missing: %+v", cl.Attrs)
	}
	fb := byName["fallback"]
	if fb.Type != EventInstant || fb.Duration != 0 || fb.Attr("reason") != "edge" {
		t.Fatalf("instant event malformed: %+v", fb)
	}
	// Every ended span feeds its phase histogram.
	for _, name := range []string{"run", "mine", "cluster"} {
		if n := o.Registry().Histogram("phase_" + name + "_seconds").Count(); n != 1 {
			t.Fatalf("phase_%s_seconds count = %d, want 1", name, n)
		}
	}
}

func TestObsRegistryMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(2)
	r.Counter("hits").Inc()
	r.Gauge("depth").Set(9)
	r.Gauge("depth").Add(-4)
	h := r.HistogramBuckets("sizes", SizeBuckets)
	for _, v := range []float64{1, 3, 3, 2000} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if snap.Counters["hits"] != 3 {
		t.Fatalf("hits = %d, want 3", snap.Counters["hits"])
	}
	if snap.Gauges["depth"] != 5 {
		t.Fatalf("depth = %d, want 5", snap.Gauges["depth"])
	}
	hs := snap.Histograms["sizes"]
	if hs.Count != 4 || hs.Sum != 2007 || hs.Min != 1 || hs.Max != 2000 {
		t.Fatalf("histogram snapshot wrong: %+v", hs)
	}
	// Cumulative buckets: le=1 holds 1, le=2 holds 1, le=4 holds 3; the
	// 2000 observation lives only in the implicit +Inf (= Count).
	want := map[float64]int64{1: 1, 2: 1, 4: 3, 1024: 3}
	for _, b := range hs.Buckets {
		if w, ok := want[b.UpperBound]; ok && b.Count != w {
			t.Fatalf("bucket le=%g count = %d, want %d", b.UpperBound, b.Count, w)
		}
	}
	if hs.Mean() != 2007.0/4 {
		t.Fatalf("mean = %g", hs.Mean())
	}
	// The snapshot must be JSON-clean (no infinities from min/max).
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
	empty := r.Histogram("never-observed")
	_ = empty
	if _, err := json.Marshal(r.Snapshot()); err != nil {
		t.Fatalf("snapshot with empty histogram does not marshal: %v", err)
	}
}

func TestObsFloatGauge(t *testing.T) {
	r := NewRegistry()
	r.FloatGauge("error_rate").Set(12.5)
	r.FloatGauge("error_rate").Add(-2.5)
	if got := r.FloatGauge("error_rate").Value(); got != 10 {
		t.Fatalf("error_rate = %g, want 10", got)
	}
	r.FloatGauge("bad").Set(math.Inf(1))
	snap := r.Snapshot()
	if snap.FloatGauges["error_rate"] != 10 {
		t.Fatalf("snapshot error_rate = %g, want 10", snap.FloatGauges["error_rate"])
	}
	// Non-finite values are clamped at snapshot time so the snapshot
	// stays JSON-encodable.
	if snap.FloatGauges["bad"] != math.MaxFloat64 {
		t.Fatalf("snapshot bad = %g, want clamp", snap.FloatGauges["bad"])
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, snap, "arcs"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE arcs_error_rate gauge",
		"arcs_error_rate 10",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("exposition missing %q in:\n%s", want, buf.String())
		}
	}
	// Nil registry hands out a nil no-op handle.
	var nilReg *Registry
	nilReg.FloatGauge("x").Set(1)
	if got := nilReg.FloatGauge("x").Value(); got != 0 {
		t.Fatalf("nil handle value = %g, want 0", got)
	}
}

func TestObsRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("concurrent histogram count = %d, want 8000", got)
	}
}

func TestObsJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	o := New(sink)
	sp := o.Root("run", Str("crit", "A"))
	sp.Child("mine").End()
	sp.End()
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []jsonlEvent
	for sc.Scan() {
		var rec jsonlEvent
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, rec)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL records, want 2", len(lines))
	}
	// Children end first: mine is line 0, run line 1.
	if lines[0].Name != "mine" || lines[1].Name != "run" {
		t.Fatalf("unexpected order: %q, %q", lines[0].Name, lines[1].Name)
	}
	if lines[0].Parent != lines[1].ID {
		t.Fatal("JSONL lost the parent link")
	}
	if lines[1].Attrs["crit"] != "A" {
		t.Fatalf("JSONL lost attrs: %+v", lines[1].Attrs)
	}
}

func TestObsPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("probe_cache_hits_total").Add(12)
	r.Gauge("pool_queue_depth").Set(3)
	r.HistogramBuckets("probe_batch_size", []float64{1, 8}).Observe(5)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot(), "arcs"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE arcs_probe_cache_hits_total counter",
		"arcs_probe_cache_hits_total 12",
		"# TYPE arcs_pool_queue_depth gauge",
		"arcs_pool_queue_depth 3",
		"# TYPE arcs_probe_batch_size histogram",
		`arcs_probe_batch_size_bucket{le="1"} 0`,
		`arcs_probe_batch_size_bucket{le="8"} 1`,
		`arcs_probe_batch_size_bucket{le="+Inf"} 1`,
		"arcs_probe_batch_size_sum 5",
		"arcs_probe_batch_size_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestObsSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"phase_mine-final_seconds": "phase_mine_final_seconds",
		"ok_name_9":                "ok_name_9",
		"9starts_with_digit":       "_starts_with_digit",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestObsPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	PublishExpvar("arcs_test_obs", r)
	// A second publication must not panic.
	PublishExpvar("arcs_test_obs", r)
	PublishExpvar("arcs_test_obs", NewRegistry())
}

func TestObsSetupSlogFormats(t *testing.T) {
	var buf bytes.Buffer
	logger, err := SetupSlog(&buf, "json", false)
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("hello", "k", 1)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json log line %q: %v", buf.String(), err)
	}
	if rec["msg"] != "hello" {
		t.Fatalf("unexpected json record: %v", rec)
	}
	// Debug suppressed at Info level, emitted when verbose.
	buf.Reset()
	logger.Debug("quiet")
	if buf.Len() != 0 {
		t.Fatal("debug line emitted at info level")
	}
	if logger, err = SetupSlog(&buf, "text", true); err != nil {
		t.Fatal(err)
	}
	logger.Debug("loud")
	if !strings.Contains(buf.String(), "loud") {
		t.Fatal("verbose logger dropped debug line")
	}
	if _, err := SetupSlog(&buf, "yaml", false); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestObsProfilerWritesFiles(t *testing.T) {
	dir := t.TempDir()
	p := &Profiler{
		CPUProfile: filepath.Join(dir, "cpu.out"),
		MemProfile: filepath.Join(dir, "mem.out"),
		TracePath:  filepath.Join(dir, "trace.out"),
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to hold.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i
	}
	_ = x
	time.Sleep(10 * time.Millisecond)
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{p.CPUProfile, p.MemProfile, p.TracePath} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile output missing: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile output %s is empty", path)
		}
	}
}

func TestObsProfilerFlagRegistration(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var p Profiler
	p.RegisterFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", "a", "-memprofile", "b", "-trace", "c"}); err != nil {
		t.Fatal(err)
	}
	if p.CPUProfile != "a" || p.MemProfile != "b" || p.TracePath != "c" {
		t.Fatalf("flags not bound: %+v", p)
	}
	if !p.Enabled() {
		t.Fatal("profiler with outputs reports disabled")
	}
	if (&Profiler{}).Enabled() {
		t.Fatal("empty profiler reports enabled")
	}
}
