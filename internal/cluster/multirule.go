package cluster

import (
	"fmt"

	"arcs/internal/dataset"
	"arcs/internal/obs"
	"arcs/internal/rules"
)

// Matcher compiles the multi-attribute rule against a schema, returning
// a predicate over tuples. Compiling once amortizes the attribute-name
// resolution across a verification pass.
func (m MultiRule) Matcher(schema *dataset.Schema) (func(dataset.Tuple) bool, error) {
	idx := make([]int, len(m.Ranges))
	for i, r := range m.Ranges {
		j, err := schema.Index(r.Attr)
		if err != nil {
			return nil, err
		}
		idx[i] = j
	}
	ranges := append([]AttrRange(nil), m.Ranges...)
	return func(t dataset.Tuple) bool {
		for i, r := range ranges {
			v := t[idx[i]]
			if v < r.Lo || v >= r.Hi {
				return false
			}
		}
		return true
	}, nil
}

// MultiRuleStats are the verified measures of a multi-attribute rule
// over a table: its true joint support and confidence (the Combine step
// only estimates them conservatively from the 2D parts).
type MultiRuleStats struct {
	Covered    int     // tuples matching the LHS
	Matching   int     // covered tuples with the criterion value
	Support    float64 // Matching / table size
	Confidence float64 // Matching / Covered
}

// VerifyMultiRule measures a combined rule's true joint support and
// confidence against a table. critIdx is the criterion attribute's
// schema position.
func VerifyMultiRule(m MultiRule, tb *dataset.Table, critIdx int) (MultiRuleStats, error) {
	if tb.Len() == 0 {
		return MultiRuleStats{}, fmt.Errorf("cluster: empty table")
	}
	crit := tb.Schema().At(critIdx)
	if crit.Kind != dataset.Categorical {
		return MultiRuleStats{}, fmt.Errorf("cluster: criterion attribute %q is not categorical", crit.Name)
	}
	segCode, ok := crit.LookupCategory(m.CritValue)
	if !ok {
		return MultiRuleStats{}, fmt.Errorf("cluster: criterion attribute %q has no value %q", crit.Name, m.CritValue)
	}
	match, err := m.Matcher(tb.Schema())
	if err != nil {
		return MultiRuleStats{}, err
	}
	var stats MultiRuleStats
	for i := 0; i < tb.Len(); i++ {
		row := tb.Row(i)
		if !match(row) {
			continue
		}
		stats.Covered++
		if int(row[critIdx]) == segCode {
			stats.Matching++
		}
	}
	stats.Support = float64(stats.Matching) / float64(tb.Len())
	if stats.Covered > 0 {
		stats.Confidence = float64(stats.Matching) / float64(stats.Covered)
	}
	return stats, nil
}

// ToMulti converts a 2D clustered rule into the multi-attribute form.
func ToMulti(r rules.ClusteredRule) MultiRule {
	m := MultiRule{
		Ranges: []AttrRange{
			{Attr: r.XAttr, Lo: r.XLo, Hi: r.XHi},
			{Attr: r.YAttr, Lo: r.YLo, Hi: r.YHi},
		},
		CritAttr:   r.CritAttr,
		CritValue:  r.CritValue,
		Support:    r.Support,
		Confidence: r.Confidence,
	}
	sortRanges(m.Ranges)
	return m
}

// CombineChain iteratively combines clustered-rule sets from a chain of
// attribute pairs — e.g. (A,B), (B,C), (C,D) — into rules over all the
// attributes involved, realizing the paper's §5 sketch of building
// clusters with an arbitrary number of attributes by repeatedly merging
// overlapping two-attribute clusters. Each step intersects the shared
// attributes' ranges; pairs of rules without a shared attribute or with
// disjoint shared ranges drop out.
func CombineChain(ruleSets ...[]rules.ClusteredRule) ([]MultiRule, error) {
	return CombineChainObserved(nil, ruleSets...)
}

// CombineChainObserved is CombineChain with merge accounting recorded
// through an observer: one "combine" span per chain step carrying the
// step's merge attempts (pairs whose criterion matched) versus accepted
// merges, plus cluster_merge_attempts_total / cluster_merge_accepted_total
// counters. A nil observer costs nothing.
func CombineChainObserved(o *obs.Observer, ruleSets ...[]rules.ClusteredRule) ([]MultiRule, error) {
	if len(ruleSets) < 2 {
		return nil, fmt.Errorf("cluster: need at least two rule sets to combine")
	}
	current := make([]MultiRule, len(ruleSets[0]))
	for i, r := range ruleSets[0] {
		current[i] = ToMulti(r)
	}
	for step, nextSet := range ruleSets[1:] {
		sp := o.Root("combine", obs.Int("step", step+1))
		next := make([]MultiRule, len(nextSet))
		for i, r := range nextSet {
			next[i] = ToMulti(r)
		}
		var attempts, accepted int
		current = combineMulti(current, next, &attempts, &accepted)
		if o.Enabled() {
			reg := o.Registry()
			reg.Counter("cluster_merge_attempts_total").Add(int64(attempts))
			reg.Counter("cluster_merge_accepted_total").Add(int64(accepted))
		}
		sp.End(obs.Int("attempts", attempts), obs.Int("accepted", accepted),
			obs.Int("rules", len(current)))
	}
	return current, nil
}

func combineMulti(a, b []MultiRule, attempts, accepted *int) []MultiRule {
	var out []MultiRule
	for _, ra := range a {
		for _, rb := range b {
			if ra.CritAttr != rb.CritAttr || ra.CritValue != rb.CritValue {
				continue
			}
			*attempts++
			if m, ok := mergeMulti(ra, rb); ok {
				*accepted++
				out = append(out, m)
			}
		}
	}
	return out
}

// mergeMulti merges two multi-rules when every shared attribute's ranges
// overlap; shared ranges are intersected, unique ranges carried over.
func mergeMulti(a, b MultiRule) (MultiRule, bool) {
	ranges := map[string]AttrRange{}
	for _, r := range a.Ranges {
		ranges[r.Attr] = r
	}
	shared := 0
	for _, r := range b.Ranges {
		if have, ok := ranges[r.Attr]; ok {
			shared++
			if !rangesOverlap(have.Lo, have.Hi, r.Lo, r.Hi) {
				return MultiRule{}, false
			}
			lo, hi := have.Lo, have.Hi
			if r.Lo > lo {
				lo = r.Lo
			}
			if r.Hi < hi {
				hi = r.Hi
			}
			ranges[r.Attr] = AttrRange{Attr: r.Attr, Lo: lo, Hi: hi}
		} else {
			ranges[r.Attr] = r
		}
	}
	if shared == 0 {
		return MultiRule{}, false
	}
	out := MultiRule{
		CritAttr:   a.CritAttr,
		CritValue:  a.CritValue,
		Support:    minF(a.Support, b.Support),
		Confidence: minF(a.Confidence, b.Confidence),
	}
	for _, r := range ranges {
		out.Ranges = append(out.Ranges, r)
	}
	sortRanges(out.Ranges)
	return out, true
}

func sortRanges(rs []AttrRange) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Attr < rs[j-1].Attr; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}
