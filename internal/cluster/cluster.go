// Package cluster turns the rectangles found by BitOp back into
// user-facing clustered association rules (paper §2.1), implements the
// dynamic cluster pruning of §3.5, and provides two of the paper's
// future-work extensions: combining overlapping two-attribute clustered
// rules into rules over more than two attributes, and ordering the
// values of a categorical LHS attribute so that the densest clusters
// become contiguous in the grid.
package cluster

import (
	"fmt"
	"sort"

	"arcs/internal/counts"
	"arcs/internal/binning"
	"arcs/internal/grid"
	"arcs/internal/rules"
)

// Meta names the attributes a clustered rule is expressed over.
type Meta struct {
	XAttr, YAttr string
	CritAttr     string
	CritValue    string
}

// FromRects converts BitOp rectangles (rows = y bins, cols = x bins) into
// clustered association rules, translating bin ranges back to attribute
// value ranges via the binners and computing each cluster's aggregate
// support and confidence from the BinArray.
func FromRects(rects []grid.Rect, ba counts.Backend, seg int, xb, yb binning.Binner, meta Meta) ([]rules.ClusteredRule, error) {
	if seg < 0 || seg >= ba.NSeg() {
		return nil, fmt.Errorf("cluster: criterion value %d out of range 0..%d", seg, ba.NSeg()-1)
	}
	out := make([]rules.ClusteredRule, 0, len(rects))
	for _, r := range rects {
		if r.C1 >= ba.NX() || r.R1 >= ba.NY() || r.C0 < 0 || r.R0 < 0 {
			return nil, fmt.Errorf("cluster: rectangle %v outside %d×%d grid", r, ba.NX(), ba.NY())
		}
		var segCount, total uint64
		for x := r.C0; x <= r.C1; x++ {
			for y := r.R0; y <= r.R1; y++ {
				segCount += uint64(ba.Count(x, y, seg))
				total += uint64(ba.CellTotal(x, y))
			}
		}
		xlo, _ := xb.Bounds(r.C0)
		_, xhi := xb.Bounds(r.C1)
		ylo, _ := yb.Bounds(r.R0)
		_, yhi := yb.Bounds(r.R1)
		cr := rules.ClusteredRule{
			XAttr: meta.XAttr, YAttr: meta.YAttr,
			CritAttr: meta.CritAttr, CritValue: meta.CritValue,
			XLoBin: r.C0, XHiBin: r.C1,
			YLoBin: r.R0, YHiBin: r.R1,
			XLo: xlo, XHi: xhi,
			YLo: ylo, YHi: yhi,
		}
		if ba.N() > 0 {
			cr.Support = float64(segCount) / float64(ba.N())
		}
		if total > 0 {
			cr.Confidence = float64(segCount) / float64(total)
		}
		out = append(out, cr)
	}
	return out, nil
}

// Prune applies §3.5's dynamic pruning: clusters covering less than
// minFraction of the overall grid area are dropped — unless every cluster
// is already sufficiently large, in which case no pruning is performed
// (the paper's explicit carve-out). The default minFraction in ARCS is
// 0.01 (1% of the grid).
func Prune(rs []rules.ClusteredRule, gridArea int, minFraction float64) []rules.ClusteredRule {
	if minFraction <= 0 || gridArea <= 0 {
		return rs
	}
	minCells := minFraction * float64(gridArea)
	allLarge := true
	for _, r := range rs {
		if float64(r.Area()) < minCells {
			allLarge = false
			break
		}
	}
	if allLarge {
		return rs
	}
	out := rs[:0:0]
	for _, r := range rs {
		if float64(r.Area()) >= minCells {
			out = append(out, r)
		}
	}
	return out
}

// AttrRange is one attribute's value range in a multi-attribute rule.
type AttrRange struct {
	Attr   string
	Lo, Hi float64 // half-open [Lo, Hi)
}

// MultiRule is a clustered association rule over an arbitrary number of
// LHS attributes, produced by iteratively combining overlapping
// two-attribute rules (paper §5 future work).
type MultiRule struct {
	Ranges    []AttrRange // sorted by attribute name
	CritAttr  string
	CritValue string
	// Support and Confidence are conservative estimates: the minimum
	// over the combined two-attribute rules. The true joint measures
	// require a verification pass over the data.
	Support    float64
	Confidence float64
}

// String renders the multi-attribute rule.
func (m MultiRule) String() string {
	s := ""
	for i, r := range m.Ranges {
		if i > 0 {
			s += " AND "
		}
		s += fmt.Sprintf("%g <= %s < %g", r.Lo, r.Attr, r.Hi)
	}
	return fmt.Sprintf("%s => %s = %s", s, m.CritAttr, m.CritValue)
}

// rangesOverlap reports whether two half-open ranges intersect.
func rangesOverlap(aLo, aHi, bLo, bHi float64) bool {
	return aLo < bHi && bLo < aHi
}

// Combine merges two-attribute clustered rules from two different
// attribute pairs that share exactly one attribute. Rules with the same
// criterion value whose shared-attribute ranges overlap are combined into
// a three-attribute rule whose shared range is the intersection. This is
// one step of the iterative combination the paper proposes for building
// clusters with arbitrarily many attributes.
func Combine(a, b []rules.ClusteredRule) ([]MultiRule, error) {
	var out []MultiRule
	for _, ra := range a {
		for _, rb := range b {
			if ra.CritAttr != rb.CritAttr || ra.CritValue != rb.CritValue {
				continue
			}
			shared, m, err := combinePair(ra, rb)
			if err != nil {
				return nil, err
			}
			if shared {
				out = append(out, m)
			}
		}
	}
	return out, nil
}

// combinePair attempts to merge two 2-attribute rules sharing one
// attribute. It reports whether they combine.
func combinePair(ra, rb rules.ClusteredRule) (bool, MultiRule, error) {
	type attrRange struct {
		attr   string
		lo, hi float64
	}
	aRanges := []attrRange{{ra.XAttr, ra.XLo, ra.XHi}, {ra.YAttr, ra.YLo, ra.YHi}}
	bRanges := []attrRange{{rb.XAttr, rb.XLo, rb.XHi}, {rb.YAttr, rb.YLo, rb.YHi}}

	// Find the shared attribute.
	sharedCount := 0
	var sharedA, sharedB attrRange
	var uniqueA, uniqueB []attrRange
	for _, x := range aRanges {
		found := false
		for _, y := range bRanges {
			if x.attr == y.attr {
				sharedCount++
				sharedA, sharedB = x, y
				found = true
			}
		}
		if !found {
			uniqueA = append(uniqueA, x)
		}
	}
	for _, y := range bRanges {
		found := false
		for _, x := range aRanges {
			if x.attr == y.attr {
				found = true
			}
		}
		if !found {
			uniqueB = append(uniqueB, y)
		}
	}
	if sharedCount == 0 {
		return false, MultiRule{}, nil
	}
	if sharedCount > 1 {
		return false, MultiRule{}, fmt.Errorf("cluster: rules share both attributes; use the 2D pipeline directly")
	}
	if !rangesOverlap(sharedA.lo, sharedA.hi, sharedB.lo, sharedB.hi) {
		return false, MultiRule{}, nil
	}
	lo := sharedA.lo
	if sharedB.lo > lo {
		lo = sharedB.lo
	}
	hi := sharedA.hi
	if sharedB.hi < hi {
		hi = sharedB.hi
	}
	ranges := []AttrRange{{Attr: sharedA.attr, Lo: lo, Hi: hi}}
	for _, u := range uniqueA {
		ranges = append(ranges, AttrRange{Attr: u.attr, Lo: u.lo, Hi: u.hi})
	}
	for _, u := range uniqueB {
		ranges = append(ranges, AttrRange{Attr: u.attr, Lo: u.lo, Hi: u.hi})
	}
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].Attr < ranges[j].Attr })
	m := MultiRule{
		Ranges:    ranges,
		CritAttr:  ra.CritAttr,
		CritValue: ra.CritValue,
		Support:   minF(ra.Support, rb.Support),
	}
	m.Confidence = minF(ra.Confidence, rb.Confidence)
	return true, m, nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// OrderCategories computes an ordering of grid columns (category codes of
// a categorical LHS attribute) that makes similar columns adjacent,
// enabling BitOp to find contiguous clusters over an attribute with no
// natural order (paper §5). The heuristic chains columns greedily: start
// from the densest column, then repeatedly append the unplaced column
// whose set-row profile shares the most rows with the previously placed
// one. The result maps category code to grid position, suitable for
// binning.NewCategoricalOrdered.
func OrderCategories(bm *grid.Bitmap) []int {
	cols := bm.Cols()
	rows := bm.Rows()
	profiles := make([][]bool, cols)
	density := make([]int, cols)
	for c := 0; c < cols; c++ {
		profiles[c] = make([]bool, rows)
		for r := 0; r < rows; r++ {
			if bm.Get(r, c) {
				profiles[c][r] = true
				density[c]++
			}
		}
	}
	similarity := func(a, b int) int {
		s := 0
		for r := 0; r < rows; r++ {
			if profiles[a][r] && profiles[b][r] {
				s++
			}
		}
		return s
	}
	placed := make([]bool, cols)
	// Start with the densest column (ties: lowest code).
	cur := 0
	for c := 1; c < cols; c++ {
		if density[c] > density[cur] {
			cur = c
		}
	}
	chain := []int{cur}
	placed[cur] = true
	for len(chain) < cols {
		best, bestSim := -1, -1
		for c := 0; c < cols; c++ {
			if placed[c] {
				continue
			}
			sim := similarity(cur, c)
			// Tie-break by density, then code, for determinism.
			if sim > bestSim || (sim == bestSim && best >= 0 && density[c] > density[best]) {
				best, bestSim = c, sim
			}
		}
		chain = append(chain, best)
		placed[best] = true
		cur = best
	}
	order := make([]int, cols)
	for pos, code := range chain {
		order[code] = pos
	}
	return order
}
