package cluster

import (
	"testing"

	"arcs/internal/dataset"
	"arcs/internal/rules"
)

func multiSchema() *dataset.Schema {
	s := dataset.NewSchema(
		dataset.Attribute{Name: "age", Kind: dataset.Quantitative},
		dataset.Attribute{Name: "salary", Kind: dataset.Quantitative},
		dataset.Attribute{Name: "loan", Kind: dataset.Quantitative},
		dataset.Attribute{Name: "g", Kind: dataset.Categorical},
	)
	s.Attr("g").CategoryCode("A")
	s.Attr("g").CategoryCode("other")
	return s
}

func TestMatcher(t *testing.T) {
	s := multiSchema()
	m := MultiRule{
		Ranges: []AttrRange{
			{Attr: "age", Lo: 30, Hi: 50},
			{Attr: "salary", Lo: 60_000, Hi: 100_000},
		},
		CritAttr: "g", CritValue: "A",
	}
	match, err := m.Matcher(s)
	if err != nil {
		t.Fatal(err)
	}
	if !match(dataset.Tuple{40, 80_000, 0, 0}) {
		t.Error("interior point should match")
	}
	if match(dataset.Tuple{50, 80_000, 0, 0}) {
		t.Error("upper bound is exclusive")
	}
	if !match(dataset.Tuple{30, 60_000, 0, 0}) {
		t.Error("lower bound is inclusive")
	}
	if match(dataset.Tuple{40, 50_000, 0, 0}) {
		t.Error("salary out of range should not match")
	}
	bad := MultiRule{Ranges: []AttrRange{{Attr: "nope", Lo: 0, Hi: 1}}}
	if _, err := bad.Matcher(s); err == nil {
		t.Error("unknown attribute should error")
	}
}

func TestVerifyMultiRule(t *testing.T) {
	s := multiSchema()
	tb := dataset.NewTable(s)
	// 4 tuples inside the box: 3 labeled A, 1 other. 2 outside.
	tb.MustAppend(dataset.Tuple{40, 80_000, 0, 0})
	tb.MustAppend(dataset.Tuple{41, 81_000, 0, 0})
	tb.MustAppend(dataset.Tuple{42, 82_000, 0, 0})
	tb.MustAppend(dataset.Tuple{43, 83_000, 0, 1})
	tb.MustAppend(dataset.Tuple{70, 80_000, 0, 0})
	tb.MustAppend(dataset.Tuple{40, 10_000, 0, 1})
	m := MultiRule{
		Ranges: []AttrRange{
			{Attr: "age", Lo: 30, Hi: 50},
			{Attr: "salary", Lo: 60_000, Hi: 100_000},
		},
		CritAttr: "g", CritValue: "A",
	}
	stats, err := VerifyMultiRule(m, tb, s.MustIndex("g"))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Covered != 4 || stats.Matching != 3 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Support != 0.5 || stats.Confidence != 0.75 {
		t.Errorf("support=%v confidence=%v", stats.Support, stats.Confidence)
	}
}

func TestVerifyMultiRuleErrors(t *testing.T) {
	s := multiSchema()
	empty := dataset.NewTable(s)
	m := MultiRule{CritAttr: "g", CritValue: "A"}
	if _, err := VerifyMultiRule(m, empty, s.MustIndex("g")); err == nil {
		t.Error("empty table should error")
	}
	tb := dataset.NewTable(s)
	tb.MustAppend(dataset.Tuple{1, 1, 1, 0})
	bad := MultiRule{CritAttr: "g", CritValue: "nonexistent"}
	if _, err := VerifyMultiRule(bad, tb, s.MustIndex("g")); err == nil {
		t.Error("unknown criterion value should error")
	}
	if _, err := VerifyMultiRule(m, tb, s.MustIndex("age")); err == nil {
		t.Error("quantitative criterion index should error")
	}
}

func TestToMulti(t *testing.T) {
	r := rules.ClusteredRule{
		XAttr: "salary", YAttr: "age", CritAttr: "g", CritValue: "A",
		XLo: 50_000, XHi: 100_000, YLo: 20, YHi: 40,
		Support: 0.2, Confidence: 0.9,
	}
	m := ToMulti(r)
	if len(m.Ranges) != 2 || m.Ranges[0].Attr != "age" || m.Ranges[1].Attr != "salary" {
		t.Errorf("ranges = %v (want sorted by attribute)", m.Ranges)
	}
	if m.Support != 0.2 || m.Confidence != 0.9 {
		t.Error("measures not carried over")
	}
}

func TestCombineChainThreeAttributes(t *testing.T) {
	ab := []rules.ClusteredRule{{
		XAttr: "age", YAttr: "salary", CritAttr: "g", CritValue: "A",
		XLo: 30, XHi: 50, YLo: 50_000, YHi: 100_000, Support: 0.3, Confidence: 0.9,
	}}
	bc := []rules.ClusteredRule{{
		XAttr: "salary", YAttr: "loan", CritAttr: "g", CritValue: "A",
		XLo: 70_000, XHi: 120_000, YLo: 0, YHi: 200_000, Support: 0.2, Confidence: 0.8,
	}}
	got, err := CombineChain(ab, bc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("combined = %v", got)
	}
	m := got[0]
	if len(m.Ranges) != 3 {
		t.Fatalf("ranges = %v", m.Ranges)
	}
	// salary intersected to [70k, 100k).
	for _, r := range m.Ranges {
		if r.Attr == "salary" && (r.Lo != 70_000 || r.Hi != 100_000) {
			t.Errorf("salary range = [%v, %v)", r.Lo, r.Hi)
		}
	}
	if m.Support != 0.2 {
		t.Errorf("support = %v (conservative min)", m.Support)
	}
}

func TestCombineChainFourAttributes(t *testing.T) {
	ab := []rules.ClusteredRule{{
		XAttr: "a", YAttr: "b", CritAttr: "g", CritValue: "A",
		XLo: 0, XHi: 10, YLo: 0, YHi: 10,
	}}
	bc := []rules.ClusteredRule{{
		XAttr: "b", YAttr: "c", CritAttr: "g", CritValue: "A",
		XLo: 5, XHi: 15, YLo: 0, YHi: 10,
	}}
	cd := []rules.ClusteredRule{{
		XAttr: "c", YAttr: "d", CritAttr: "g", CritValue: "A",
		XLo: 2, XHi: 8, YLo: 0, YHi: 10,
	}}
	got, err := CombineChain(ab, bc, cd)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Ranges) != 4 {
		t.Fatalf("combined = %v", got)
	}
	for _, r := range got[0].Ranges {
		switch r.Attr {
		case "b":
			if r.Lo != 5 || r.Hi != 10 {
				t.Errorf("b range = [%v, %v)", r.Lo, r.Hi)
			}
		case "c":
			if r.Lo != 2 || r.Hi != 8 {
				t.Errorf("c range = [%v, %v)", r.Lo, r.Hi)
			}
		}
	}
}

func TestCombineChainDisjointDropsOut(t *testing.T) {
	ab := []rules.ClusteredRule{{
		XAttr: "a", YAttr: "b", CritAttr: "g", CritValue: "A",
		XLo: 0, XHi: 10, YLo: 0, YHi: 5,
	}}
	bc := []rules.ClusteredRule{{
		XAttr: "b", YAttr: "c", CritAttr: "g", CritValue: "A",
		XLo: 6, XHi: 15, YLo: 0, YHi: 10,
	}}
	got, err := CombineChain(ab, bc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("disjoint b ranges should not combine: %v", got)
	}
	if _, err := CombineChain(ab); err == nil {
		t.Error("single rule set should error")
	}
}
