package cluster

import (
	"strings"
	"testing"

	"arcs/internal/binarray"
	"arcs/internal/binning"
	"arcs/internal/grid"
	"arcs/internal/rules"
)

func testMeta() Meta {
	return Meta{XAttr: "age", YAttr: "salary", CritAttr: "group", CritValue: "A"}
}

func TestFromRectsConvertsBinsToValues(t *testing.T) {
	ba, _ := binarray.New(4, 4, 2)
	// Rect cols 1-2, rows 0-1. Fill it with 6 seg-0 tuples and 2 seg-1.
	for x := 1; x <= 2; x++ {
		for y := 0; y <= 1; y++ {
			ba.Add(x, y, 0)
		}
	}
	ba.Add(1, 0, 0)
	ba.Add(2, 1, 0)
	ba.Add(1, 1, 1)
	ba.Add(2, 0, 1)
	xb, _ := binning.NewEquiWidth(20, 100, 4)     // width 20
	yb, _ := binning.NewEquiWidth(0, 200_000, 4)  // width 50k
	rect := grid.Rect{R0: 0, C0: 1, R1: 1, C1: 2} // y bins 0-1, x bins 1-2
	rs, err := FromRects([]grid.Rect{rect}, ba, 0, xb, yb, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("rules = %v", rs)
	}
	r := rs[0]
	if r.XLo != 40 || r.XHi != 80 {
		t.Errorf("x range = [%v, %v), want [40, 80)", r.XLo, r.XHi)
	}
	if r.YLo != 0 || r.YHi != 100_000 {
		t.Errorf("y range = [%v, %v), want [0, 100000)", r.YLo, r.YHi)
	}
	// 6 seg tuples of 8 total in rect; N = 8.
	if r.Support != 6.0/8 {
		t.Errorf("support = %v, want 0.75", r.Support)
	}
	if r.Confidence != 6.0/8 {
		t.Errorf("confidence = %v, want 0.75", r.Confidence)
	}
	if got := r.String(); !strings.Contains(got, "age") || !strings.Contains(got, "group = A") {
		t.Errorf("String = %q", got)
	}
}

func TestFromRectsValidation(t *testing.T) {
	ba, _ := binarray.New(2, 2, 1)
	xb, _ := binning.NewEquiWidth(0, 1, 2)
	yb, _ := binning.NewEquiWidth(0, 1, 2)
	if _, err := FromRects([]grid.Rect{{R0: 0, C0: 0, R1: 0, C1: 5}}, ba, 0, xb, yb, testMeta()); err == nil {
		t.Error("rect outside grid should error")
	}
	if _, err := FromRects(nil, ba, 7, xb, yb, testMeta()); err == nil {
		t.Error("bad segment should error")
	}
}

func TestFromRectsEmptyArray(t *testing.T) {
	ba, _ := binarray.New(2, 2, 1)
	xb, _ := binning.NewEquiWidth(0, 1, 2)
	yb, _ := binning.NewEquiWidth(0, 1, 2)
	rs, err := FromRects([]grid.Rect{{R0: 0, C0: 0, R1: 0, C1: 0}}, ba, 0, xb, yb, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Support != 0 || rs[0].Confidence != 0 {
		t.Error("empty BinArray should yield zero measures, not NaN")
	}
}

func mkRule(area int) rules.ClusteredRule {
	// area cells in a 1-row strip.
	return rules.ClusteredRule{XLoBin: 0, XHiBin: area - 1, YLoBin: 0, YHiBin: 0}
}

func TestPruneDropsSmall(t *testing.T) {
	rs := []rules.ClusteredRule{mkRule(50), mkRule(2), mkRule(30)}
	// Grid 100x100 = 10000 cells; 1% = 100 cells... use 1% of 2500 = 25.
	got := Prune(rs, 2500, 0.01)
	if len(got) != 2 {
		t.Fatalf("pruned to %d rules, want 2", len(got))
	}
	for _, r := range got {
		if r.Area() < 25 {
			t.Errorf("small rule survived: area %d", r.Area())
		}
	}
}

func TestPruneNoOpWhenAllLarge(t *testing.T) {
	rs := []rules.ClusteredRule{mkRule(50), mkRule(30)}
	got := Prune(rs, 2500, 0.01)
	if len(got) != 2 {
		t.Errorf("pruning should be skipped when all clusters are large")
	}
	// Zero fraction disables pruning entirely.
	rs2 := []rules.ClusteredRule{mkRule(1)}
	if got := Prune(rs2, 2500, 0); len(got) != 1 {
		t.Error("zero fraction should disable pruning")
	}
}

func TestCombineSharedAttribute(t *testing.T) {
	ab := rules.ClusteredRule{
		XAttr: "age", YAttr: "salary", CritAttr: "group", CritValue: "A",
		XLo: 30, XHi: 50, YLo: 40_000, YHi: 80_000,
		Support: 0.2, Confidence: 0.9,
	}
	bc := rules.ClusteredRule{
		XAttr: "salary", YAttr: "loan", CritAttr: "group", CritValue: "A",
		XLo: 60_000, XHi: 100_000, YLo: 0, YHi: 200_000,
		Support: 0.1, Confidence: 0.8,
	}
	got, err := Combine([]rules.ClusteredRule{ab}, []rules.ClusteredRule{bc})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("combined rules = %v", got)
	}
	m := got[0]
	if len(m.Ranges) != 3 {
		t.Fatalf("ranges = %v", m.Ranges)
	}
	// Ranges sorted by attribute: age, loan, salary.
	if m.Ranges[0].Attr != "age" || m.Ranges[1].Attr != "loan" || m.Ranges[2].Attr != "salary" {
		t.Errorf("range order = %v", m.Ranges)
	}
	// Shared salary range is the intersection [60k, 80k).
	if m.Ranges[2].Lo != 60_000 || m.Ranges[2].Hi != 80_000 {
		t.Errorf("salary intersection = [%v, %v)", m.Ranges[2].Lo, m.Ranges[2].Hi)
	}
	if m.Support != 0.1 || m.Confidence != 0.8 {
		t.Errorf("conservative measures = %v, %v", m.Support, m.Confidence)
	}
	if s := m.String(); !strings.Contains(s, "age") || !strings.Contains(s, "=> group = A") {
		t.Errorf("String = %q", s)
	}
}

func TestCombineNonOverlappingRangesSkipped(t *testing.T) {
	ab := rules.ClusteredRule{
		XAttr: "age", YAttr: "salary", CritAttr: "group", CritValue: "A",
		YLo: 40_000, YHi: 50_000, XLo: 0, XHi: 1,
	}
	bc := rules.ClusteredRule{
		XAttr: "salary", YAttr: "loan", CritAttr: "group", CritValue: "A",
		XLo: 90_000, XHi: 100_000, YLo: 0, YHi: 1,
	}
	got, err := Combine([]rules.ClusteredRule{ab}, []rules.ClusteredRule{bc})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("disjoint salary ranges should not combine: %v", got)
	}
}

func TestCombineDifferentCriteriaSkipped(t *testing.T) {
	a := rules.ClusteredRule{XAttr: "age", YAttr: "salary", CritAttr: "group", CritValue: "A", YLo: 0, YHi: 10, XLo: 0, XHi: 1}
	b := rules.ClusteredRule{XAttr: "salary", YAttr: "loan", CritAttr: "group", CritValue: "B", XLo: 0, XHi: 10, YLo: 0, YHi: 1}
	got, err := Combine([]rules.ClusteredRule{a}, []rules.ClusteredRule{b})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("different criterion values should not combine: %v", got)
	}
}

func TestCombineNoSharedAttribute(t *testing.T) {
	a := rules.ClusteredRule{XAttr: "age", YAttr: "salary", CritAttr: "g", CritValue: "A"}
	b := rules.ClusteredRule{XAttr: "loan", YAttr: "hvalue", CritAttr: "g", CritValue: "A"}
	got, err := Combine([]rules.ClusteredRule{a}, []rules.ClusteredRule{b})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("no shared attribute should not combine: %v", got)
	}
}

func TestCombineBothSharedErrors(t *testing.T) {
	a := rules.ClusteredRule{XAttr: "age", YAttr: "salary", CritAttr: "g", CritValue: "A", XLo: 0, XHi: 10, YLo: 0, YHi: 10}
	b := rules.ClusteredRule{XAttr: "age", YAttr: "salary", CritAttr: "g", CritValue: "A", XLo: 0, XHi: 10, YLo: 0, YHi: 10}
	if _, err := Combine([]rules.ClusteredRule{a}, []rules.ClusteredRule{b}); err == nil {
		t.Error("rules sharing both attributes should error")
	}
}

func TestOrderCategoriesMakesDenseColumnsAdjacent(t *testing.T) {
	// Columns 0 and 3 share the same row profile; columns 1 and 2 are
	// empty. A good ordering puts 0 and 3 next to each other.
	bm, _ := grid.New(4, 4)
	for r := 0; r < 4; r++ {
		bm.Set(r, 0)
		bm.Set(r, 3)
	}
	order := OrderCategories(bm)
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	posOf := func(code int) int { return order[code] }
	d := posOf(0) - posOf(3)
	if d != 1 && d != -1 {
		t.Errorf("similar columns 0 and 3 not adjacent: order = %v", order)
	}
	// The result must be a permutation.
	seen := make([]bool, 4)
	for _, p := range order {
		if p < 0 || p >= 4 || seen[p] {
			t.Fatalf("order is not a permutation: %v", order)
		}
		seen[p] = true
	}
}

func TestOrderCategoriesSingleColumn(t *testing.T) {
	bm, _ := grid.New(3, 1)
	bm.Set(1, 0)
	order := OrderCategories(bm)
	if len(order) != 1 || order[0] != 0 {
		t.Errorf("order = %v", order)
	}
}
