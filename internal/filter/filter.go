// Package filter implements the grid-smoothing preprocessing step of
// paper §3.4: a two-dimensional low-pass filter, borrowed from image
// processing, that replaces each cell with the average of its adjoining
// neighbors. Smoothing fills the small "holes" and jagged edges that
// inhibit BitOp from finding large complete clusters, and suppresses
// isolated noise cells.
//
// Two variants are provided, matching the paper: the binary filter used
// in the main experiments, and the support-weighted filter of §5 that
// averages rule support values instead of 0/1 presence. A small generic
// convolution engine with box, Gaussian and Sobel kernels supports the
// paper's suggestion of more advanced filters for detecting cluster edges
// and corners.
package filter

import (
	"fmt"
	"math"

	"arcs/internal/grid"
)

// LowPass applies the 3×3 binary low-pass filter: each output cell is set
// when the mean of its in-bounds 3×3 neighborhood (the cell included) is
// at least threshold. A threshold of 0.5 both fills single-cell holes in
// dense regions and erases isolated cells; thresholds <= 0 or > 1 are
// rejected. The input is not modified.
func LowPass(bm *grid.Bitmap, threshold float64) (*grid.Bitmap, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("filter: threshold %g outside (0, 1]", threshold)
	}
	rows, cols := bm.Rows(), bm.Cols()
	out, err := grid.New(rows, cols)
	if err != nil {
		return nil, err
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			set, total := 0, 0
			for dr := -1; dr <= 1; dr++ {
				for dc := -1; dc <= 1; dc++ {
					rr, cc := r+dr, c+dc
					if rr < 0 || rr >= rows || cc < 0 || cc >= cols {
						continue
					}
					total++
					if bm.Get(rr, cc) {
						set++
					}
				}
			}
			if float64(set) >= threshold*float64(total) {
				out.Set(r, c)
			}
		}
	}
	return out, nil
}

// Kernel is a square convolution kernel of odd size.
type Kernel struct {
	Size    int // odd edge length
	Weights []float64
}

func (k Kernel) validate() error {
	if k.Size <= 0 || k.Size%2 == 0 {
		return fmt.Errorf("filter: kernel size must be odd and positive, got %d", k.Size)
	}
	if len(k.Weights) != k.Size*k.Size {
		return fmt.Errorf("filter: kernel has %d weights, want %d", len(k.Weights), k.Size*k.Size)
	}
	return nil
}

// Box3 is the 3×3 box (uniform average) kernel — the paper's low-pass
// filter in kernel form.
func Box3() Kernel {
	w := make([]float64, 9)
	for i := range w {
		w[i] = 1.0 / 9
	}
	return Kernel{Size: 3, Weights: w}
}

// Gauss3 is a 3×3 Gaussian kernel, a gentler low-pass that preserves
// cluster cores better than the box filter.
func Gauss3() Kernel {
	return Kernel{Size: 3, Weights: []float64{
		1.0 / 16, 2.0 / 16, 1.0 / 16,
		2.0 / 16, 4.0 / 16, 2.0 / 16,
		1.0 / 16, 2.0 / 16, 1.0 / 16,
	}}
}

// SobelX is the horizontal Sobel gradient kernel (edge detection, paper
// §5 future work).
func SobelX() Kernel {
	return Kernel{Size: 3, Weights: []float64{
		-1, 0, 1,
		-2, 0, 2,
		-1, 0, 1,
	}}
}

// SobelY is the vertical Sobel gradient kernel.
func SobelY() Kernel {
	return Kernel{Size: 3, Weights: []float64{
		-1, -2, -1,
		0, 0, 0,
		1, 2, 1,
	}}
}

// Convolve applies a kernel to a dense grid. Out-of-bounds neighbors are
// treated by renormalizing over the in-bounds kernel weights (for kernels
// whose weights sum to ~1, i.e. smoothing kernels) or by zero-padding
// (for zero-sum kernels such as Sobel). The input is not modified.
func Convolve(d *grid.Dense, k Kernel) (*grid.Dense, error) {
	if err := k.validate(); err != nil {
		return nil, err
	}
	var wsum float64
	for _, w := range k.Weights {
		wsum += w
	}
	renormalize := math.Abs(wsum) > 1e-9
	rows, cols := d.Rows(), d.Cols()
	out, err := grid.NewDense(rows, cols)
	if err != nil {
		return nil, err
	}
	half := k.Size / 2
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			var acc, used float64
			for dr := -half; dr <= half; dr++ {
				for dc := -half; dc <= half; dc++ {
					rr, cc := r+dr, c+dc
					w := k.Weights[(dr+half)*k.Size+(dc+half)]
					if rr < 0 || rr >= rows || cc < 0 || cc >= cols {
						continue // zero padding
					}
					acc += w * d.At(rr, cc)
					used += w
				}
			}
			if renormalize && used != 0 {
				acc = acc * wsum / used
			}
			out.Set(r, c, acc)
		}
	}
	return out, nil
}

// LowPassWeighted applies the support-weighted smoothing of §5: the 3×3
// box filter runs over rule support values (a Dense grid) and the result
// is thresholded back to a bitmap at minSupport. Cells whose smoothed
// support reaches the mining threshold survive; this lets strong
// neighbors rescue boundary cells that individually just missed the
// support cut, while isolated weak cells fade out.
func LowPassWeighted(supports *grid.Dense, minSupport float64) (*grid.Bitmap, error) {
	if minSupport < 0 {
		return nil, fmt.Errorf("filter: negative support threshold %g", minSupport)
	}
	sm, err := Convolve(supports, Box3())
	if err != nil {
		return nil, err
	}
	return sm.Threshold(minSupport), nil
}

// EdgeMagnitude computes the Sobel gradient magnitude of a dense grid,
// highlighting cluster edges and corners (paper §5).
func EdgeMagnitude(d *grid.Dense) (*grid.Dense, error) {
	gx, err := Convolve(d, SobelX())
	if err != nil {
		return nil, err
	}
	gy, err := Convolve(d, SobelY())
	if err != nil {
		return nil, err
	}
	out, err := grid.NewDense(d.Rows(), d.Cols())
	if err != nil {
		return nil, err
	}
	for r := 0; r < d.Rows(); r++ {
		for c := 0; c < d.Cols(); c++ {
			out.Set(r, c, math.Hypot(gx.At(r, c), gy.At(r, c)))
		}
	}
	return out, nil
}
