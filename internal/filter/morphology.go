package filter

import (
	"sort"

	"arcs/internal/grid"
)

// Morphological operators on rule grids — the classical image-processing
// toolbox the paper's §5 points at for detecting cluster edges and
// corners. Erosion/dilation use the 3×3 cross (von Neumann) structuring
// element: a cell survives erosion when it and its four axis neighbors
// are set (edges treat out-of-bounds as set, so clusters touching the
// border are not eaten), and dilation sets every neighbor of a set cell.
//
// Opening (erode then dilate) removes isolated cells and thin spurs
// without growing the remaining clusters; closing (dilate then erode)
// fills pinholes and hairline gaps without shrinking them. Both are
// idempotent, which makes them predictable preprocessing steps compared
// to repeated low-pass smoothing.

// Erode returns the erosion of the bitmap by the 3×3 cross.
func Erode(bm *grid.Bitmap) *grid.Bitmap {
	rows, cols := bm.Rows(), bm.Cols()
	out, _ := grid.New(rows, cols)
	get := func(r, c int) bool {
		if r < 0 || r >= rows || c < 0 || c >= cols {
			return true // border padding: set
		}
		return bm.Get(r, c)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if get(r, c) && get(r-1, c) && get(r+1, c) && get(r, c-1) && get(r, c+1) {
				if bm.Get(r, c) {
					out.Set(r, c)
				}
			}
		}
	}
	return out
}

// Dilate returns the dilation of the bitmap by the 3×3 cross.
func Dilate(bm *grid.Bitmap) *grid.Bitmap {
	rows, cols := bm.Rows(), bm.Cols()
	out, _ := grid.New(rows, cols)
	set := func(r, c int) {
		if r >= 0 && r < rows && c >= 0 && c < cols {
			out.Set(r, c)
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if bm.Get(r, c) {
				set(r, c)
				set(r-1, c)
				set(r+1, c)
				set(r, c-1)
				set(r, c+1)
			}
		}
	}
	return out
}

// Open erodes then dilates: isolated cells and one-cell-wide spurs
// disappear, solid clusters survive unchanged.
func Open(bm *grid.Bitmap) *grid.Bitmap { return Dilate(Erode(bm)) }

// Close dilates then erodes: single-cell holes and hairline gaps inside
// clusters are filled, the outline is preserved.
func Close(bm *grid.Bitmap) *grid.Bitmap { return Erode(Dilate(bm)) }

// MedianDense applies a 3×3 median filter to a dense grid: each cell
// becomes the median of its in-bounds neighborhood. Unlike the mean
// (box) filter, the median is robust to isolated extreme values, so a
// single high-support noise cell cannot drag its neighborhood above a
// threshold.
func MedianDense(d *grid.Dense) *grid.Dense {
	rows, cols := d.Rows(), d.Cols()
	out, _ := grid.NewDense(rows, cols)
	var window [9]float64
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			n := 0
			for dr := -1; dr <= 1; dr++ {
				for dc := -1; dc <= 1; dc++ {
					rr, cc := r+dr, c+dc
					if rr < 0 || rr >= rows || cc < 0 || cc >= cols {
						continue
					}
					window[n] = d.At(rr, cc)
					n++
				}
			}
			vals := window[:n]
			sort.Float64s(vals)
			var med float64
			if n%2 == 1 {
				med = vals[n/2]
			} else {
				med = (vals[n/2-1] + vals[n/2]) / 2
			}
			out.Set(r, c, med)
		}
	}
	return out
}
