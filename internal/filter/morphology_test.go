package filter

import (
	"testing"

	"arcs/internal/grid"
)

func TestErodeRemovesIsolatedCell(t *testing.T) {
	bm := mk(t,
		".....",
		"..#..",
		".....",
	)
	out := Erode(bm)
	if out.Any() {
		t.Errorf("isolated cell survived erosion:\n%s", out)
	}
}

func TestErodeKeepsBlockCore(t *testing.T) {
	bm := mk(t,
		"#####",
		"#####",
		"#####",
	)
	out := Erode(bm)
	// With set border padding, the full block survives.
	if out.PopCount() != bm.PopCount() {
		t.Errorf("full block eroded: %d -> %d", bm.PopCount(), out.PopCount())
	}
}

func TestDilateGrows(t *testing.T) {
	bm := mk(t,
		".....",
		"..#..",
		".....",
	)
	out := Dilate(bm)
	want := [][2]int{{1, 2}, {0, 2}, {2, 2}, {1, 1}, {1, 3}}
	if out.PopCount() != len(want) {
		t.Fatalf("dilated popcount = %d, want %d:\n%s", out.PopCount(), len(want), out)
	}
	for _, c := range want {
		if !out.Get(c[0], c[1]) {
			t.Errorf("cell %v not set after dilation", c)
		}
	}
}

func TestOpenRemovesNoiseKeepsClusters(t *testing.T) {
	// The block spans the full image height, so the set border padding
	// protects it; interior rectangle corners away from the border are
	// legitimately rounded by a cross structuring element.
	bm := mk(t,
		"####...#",
		"####....",
		"####..#.",
	)
	out := Open(bm)
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			if !out.Get(r, c) {
				t.Errorf("block cell (%d,%d) lost by opening", r, c)
			}
		}
	}
	if out.Get(0, 7) || out.Get(2, 6) {
		t.Error("isolated noise survived opening")
	}
}

func TestCloseFillsHole(t *testing.T) {
	bm := mk(t,
		"#####",
		"##.##",
		"#####",
	)
	out := Close(bm)
	if !out.Get(1, 2) {
		t.Errorf("hole not filled by closing:\n%s", out)
	}
	// Closing must not shrink the block.
	if out.PopCount() < bm.PopCount() {
		t.Errorf("closing lost cells: %d -> %d", bm.PopCount(), out.PopCount())
	}
}

func TestOpenIdempotent(t *testing.T) {
	bm := mk(t,
		"##..#",
		"##.##",
		".#.##",
		"#....",
	)
	once := Open(bm)
	twice := Open(once)
	if once.PopCount() != twice.PopCount() {
		t.Fatalf("opening not idempotent: %d vs %d cells", once.PopCount(), twice.PopCount())
	}
	for r := 0; r < bm.Rows(); r++ {
		for c := 0; c < bm.Cols(); c++ {
			if once.Get(r, c) != twice.Get(r, c) {
				t.Fatalf("opening not idempotent at (%d,%d)", r, c)
			}
		}
	}
}

func TestMedianDenseSuppressesSpike(t *testing.T) {
	d, _ := grid.NewDense(3, 3)
	// Uniform 1.0 field with a 100.0 spike in the middle.
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			d.Set(r, c, 1)
		}
	}
	d.Set(1, 1, 100)
	out := MedianDense(d)
	if out.At(1, 1) != 1 {
		t.Errorf("spike survived median: %v", out.At(1, 1))
	}
	// Compare: the box filter smears the spike across the neighborhood.
	box, err := Convolve(d, Box3())
	if err != nil {
		t.Fatal(err)
	}
	if box.At(0, 0) <= out.At(0, 0) {
		t.Error("box filter should smear the spike where the median does not")
	}
}

func TestMedianDensePreservesConstantField(t *testing.T) {
	d, _ := grid.NewDense(4, 5)
	for r := 0; r < 4; r++ {
		for c := 0; c < 5; c++ {
			d.Set(r, c, 2.5)
		}
	}
	out := MedianDense(d)
	for r := 0; r < 4; r++ {
		for c := 0; c < 5; c++ {
			if out.At(r, c) != 2.5 {
				t.Fatalf("constant field changed at (%d,%d): %v", r, c, out.At(r, c))
			}
		}
	}
}
