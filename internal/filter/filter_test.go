package filter

import (
	"math"
	"testing"

	"arcs/internal/grid"
)

func mk(t *testing.T, rows ...string) *grid.Bitmap {
	t.Helper()
	bm, err := grid.New(len(rows), len(rows[0]))
	if err != nil {
		t.Fatal(err)
	}
	for r, line := range rows {
		for c, ch := range line {
			if ch == '#' {
				bm.Set(r, c)
			}
		}
	}
	return bm
}

func TestLowPassFillsHole(t *testing.T) {
	// A dense block with a single hole: the hole's neighborhood is 8/9
	// set, so a 0.5 threshold fills it (the Figure 7 effect).
	bm := mk(t,
		"#####",
		"##.##",
		"#####",
	)
	out, err := LowPass(bm, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Get(1, 2) {
		t.Error("hole not filled")
	}
}

func TestLowPassRemovesIsolatedNoise(t *testing.T) {
	bm := mk(t,
		".....",
		"..#..",
		".....",
	)
	out, err := LowPass(bm, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if out.Any() {
		t.Errorf("isolated cell survived smoothing:\n%s", out)
	}
}

func TestLowPassPreservesSolidBlock(t *testing.T) {
	bm := mk(t,
		"....",
		".##.",
		".##.",
		"....",
	)
	out, err := LowPass(bm, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 2; r++ {
		for c := 1; c <= 2; c++ {
			if !out.Get(r, c) {
				t.Errorf("block cell (%d,%d) lost", r, c)
			}
		}
	}
}

func TestLowPassThresholdValidation(t *testing.T) {
	bm := mk(t, "#")
	if _, err := LowPass(bm, 0); err == nil {
		t.Error("threshold 0 should error")
	}
	if _, err := LowPass(bm, 1.5); err == nil {
		t.Error("threshold > 1 should error")
	}
}

func TestLowPassInputUnmodified(t *testing.T) {
	bm := mk(t, "#..", "...", "...")
	LowPass(bm, 0.5)
	if !bm.Get(0, 0) {
		t.Error("LowPass modified its input")
	}
}

func TestLowPassEdgeNeighborhoods(t *testing.T) {
	// A corner cell has a 4-cell neighborhood; 3 of 4 set >= 0.5 keeps it.
	bm := mk(t,
		"##..",
		"#...",
		"....",
	)
	out, err := LowPass(bm, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Get(0, 0) {
		t.Error("corner with 3/4 set neighborhood should survive")
	}
}

func TestKernelValidation(t *testing.T) {
	d, _ := grid.NewDense(3, 3)
	if _, err := Convolve(d, Kernel{Size: 2, Weights: make([]float64, 4)}); err == nil {
		t.Error("even kernel size should error")
	}
	if _, err := Convolve(d, Kernel{Size: 3, Weights: make([]float64, 4)}); err == nil {
		t.Error("wrong weight count should error")
	}
}

func TestConvolveBoxUniformField(t *testing.T) {
	// A constant field must be unchanged by a normalized smoothing kernel
	// (including at the edges, thanks to renormalization).
	d, _ := grid.NewDense(4, 5)
	for r := 0; r < 4; r++ {
		for c := 0; c < 5; c++ {
			d.Set(r, c, 2.5)
		}
	}
	for _, k := range []Kernel{Box3(), Gauss3()} {
		out, err := Convolve(d, k)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 4; r++ {
			for c := 0; c < 5; c++ {
				if math.Abs(out.At(r, c)-2.5) > 1e-9 {
					t.Fatalf("constant field changed at (%d,%d): %v", r, c, out.At(r, c))
				}
			}
		}
	}
}

func TestConvolveBoxAveragesSpike(t *testing.T) {
	d, _ := grid.NewDense(3, 3)
	d.Set(1, 1, 9)
	out, err := Convolve(d, Box3())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.At(1, 1)-1) > 1e-9 {
		t.Errorf("center = %v, want 1 (9/9)", out.At(1, 1))
	}
	// Corner neighborhood holds 4 in-bounds cells incl. the spike;
	// renormalized box average = 9/4... no: weights are 1/9 each, used
	// sum = 4/9, acc = 9/9 = 1, renormalized = 1 * 1 / (4/9) = 9/4.
	if math.Abs(out.At(0, 0)-2.25) > 1e-9 {
		t.Errorf("corner = %v, want 2.25", out.At(0, 0))
	}
}

func TestSobelDetectsVerticalEdge(t *testing.T) {
	// Left half 0, right half 1: SobelX fires along the boundary,
	// SobelY stays ~0 in the interior.
	d, _ := grid.NewDense(5, 6)
	for r := 0; r < 5; r++ {
		for c := 3; c < 6; c++ {
			d.Set(r, c, 1)
		}
	}
	gx, err := Convolve(d, SobelX())
	if err != nil {
		t.Fatal(err)
	}
	gy, err := Convolve(d, SobelY())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gx.At(2, 2)) < 1 {
		t.Errorf("SobelX at edge = %v, want strong response", gx.At(2, 2))
	}
	if math.Abs(gy.At(2, 2)) > 1e-9 {
		t.Errorf("SobelY in interior = %v, want 0", gy.At(2, 2))
	}
	mag, err := EdgeMagnitude(d)
	if err != nil {
		t.Fatal(err)
	}
	if mag.At(2, 2) < 1 {
		t.Errorf("edge magnitude = %v, want strong", mag.At(2, 2))
	}
	if mag.At(2, 0) > 1e-9 {
		t.Errorf("edge magnitude far from edge = %v, want 0", mag.At(2, 0))
	}
}

func TestLowPassWeightedRescuesBoundaryCell(t *testing.T) {
	// A cell just below the support threshold surrounded by strong cells
	// is rescued; an isolated weak cell is not.
	sup, _ := grid.NewDense(3, 5)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			sup.Set(r, c, 0.10)
		}
	}
	sup.Set(1, 1, 0.04) // weak interior cell among strong neighbors
	sup.Set(1, 4, 0.04) // isolated weak cell
	bm, err := LowPassWeighted(sup, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !bm.Get(1, 1) {
		t.Error("interior weak cell should be rescued by strong neighbors")
	}
	if bm.Get(1, 4) {
		t.Error("isolated weak cell should not survive")
	}
	if _, err := LowPassWeighted(sup, -1); err == nil {
		t.Error("negative threshold should error")
	}
}

func TestSmoothingImprovesClusterability(t *testing.T) {
	// The Figure 7 scenario: a ragged blob with holes becomes a compact
	// block after smoothing, reducing the number of set-cell "islands".
	bm := mk(t,
		"######",
		"##.###",
		"###.##",
		"######",
	)
	out, err := LowPass(bm, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if out.PopCount() < bm.PopCount() {
		t.Errorf("smoothing lost cells: %d -> %d", bm.PopCount(), out.PopCount())
	}
	if !out.Get(1, 2) || !out.Get(2, 3) {
		t.Error("holes not filled")
	}
}
