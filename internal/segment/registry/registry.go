// Package registry is a versioned, crash-safe store for segmentation
// models — the control half of the serving data plane. Each published
// model becomes an immutable numbered version committed by a
// temp-file + fsync + atomic-rename protocol with a checksummed
// manifest; the manifest rename is the commit point, so a crash at any
// earlier instant leaves debris the next Open quarantines instead of a
// half-written version that could be served. Activation hot-swaps the
// served model through an atomic pointer (in-flight applies finish on
// the version they started with) and records an activation history so
// a corrupt or missing version always falls back to the last known
// good one instead of taking serving down.
//
// On-disk layout, all inside one directory:
//
//	m000001.json           model document (segment JSON)
//	m000001.manifest.json  commit record: sha256, size, provenance
//	ACTIVE                 activation history, most recent first
//	*.tmp                  in-flight writes; removed at next Open
package registry

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"arcs/internal/obs"
	"arcs/internal/segment"
)

// Version states as surfaced by List and GET /models.
const (
	// StateOK marks a version that loaded and validated cleanly.
	StateOK = "ok"
	// StateQuarantined marks a version that failed checksum or
	// validation; it is never served and never silently deleted.
	StateQuarantined = "quarantined"
)

// manifestFormat is the manifest wire-format generation.
const manifestFormat = 1

// historyCap bounds the ACTIVE file's activation history.
const historyCap = 8

// Manifest is a version's commit record. Its atomic rename into place
// is what makes the version visible; SHA256/Size let every later load
// detect truncation and bit rot before the model is trusted.
type Manifest struct {
	Format  int       `json:"format"`
	ID      string    `json:"id"`
	SHA256  string    `json:"sha256"`
	Size    int64     `json:"size"`
	Created time.Time `json:"created"`
	Rules   int       `json:"rules"`
	// SourceRun and Note are provenance: the mining run the model was
	// published from, and a free-form operator annotation.
	SourceRun string `json:"source_run,omitempty"`
	Note      string `json:"note,omitempty"`
}

// VersionInfo is one version's externally visible state.
type VersionInfo struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Reason explains a quarantine; empty for healthy versions.
	Reason string `json:"reason,omitempty"`
	// Active marks the currently served version.
	Active   bool     `json:"active,omitempty"`
	Manifest Manifest `json:"manifest,omitempty"`
}

// Snapshot is an immutable loaded version: what the hot apply path
// scores against. Handlers take one Snapshot per request so a
// concurrent activation never changes the model mid-request.
type Snapshot struct {
	ID    string
	Model *segment.Model
}

// Covers reports segment membership for an (x, y) point.
func (s *Snapshot) Covers(x, y float64) bool { return s.Model.Covers(x, y) }

// Options configures Open.
type Options struct {
	// FS overrides the filesystem, for fault injection. Nil uses OSFS.
	FS FS
	// Metrics, when non-nil, receives the registry's counters and the
	// active-version gauge (models_published_total,
	// models_quarantined_total, models_activated_total,
	// models_activate_failed_total, model_active_version).
	Metrics *obs.Registry
}

// Registry is the store. All mutating operations are serialized by an
// internal mutex; the active snapshot is read lock-free.
type Registry struct {
	dir string
	fs  FS

	mu       sync.Mutex
	versions map[string]*VersionInfo
	seq      int
	history  []string // activation history, most recent first

	active atomic.Pointer[Snapshot]

	mPublished      *obs.Counter
	mQuarantined    *obs.Counter
	mActivated      *obs.Counter
	mActivateFailed *obs.Counter
	gActiveVersion  *obs.Gauge
}

// activeFile is the JSON body of the ACTIVE pointer file.
type activeFile struct {
	History []string `json:"history"`
}

// Open loads (or initializes) a registry directory: leftover temp
// files from interrupted publishes are removed, every version is
// read-validated (corrupt ones quarantined, never deleted), and the
// activation history is replayed to the most recent version that still
// loads cleanly — the last-known-good fallback.
func Open(dir string, opts Options) (*Registry, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS{}
	}
	r := &Registry{
		dir:      dir,
		fs:       fsys,
		versions: make(map[string]*VersionInfo),

		mPublished:      opts.Metrics.Counter("models_published_total"),
		mQuarantined:    opts.Metrics.Counter("models_quarantined_total"),
		mActivated:      opts.Metrics.Counter("models_activated_total"),
		mActivateFailed: opts.Metrics.Counter("models_activate_failed_total"),
		gActiveVersion:  opts.Metrics.Gauge("model_active_version"),
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: creating %s: %w", dir, err)
	}
	if err := r.scan(); err != nil {
		return nil, err
	}
	r.restoreActive()
	return r, nil
}

// scan inventories the directory: temp debris is deleted, manifested
// versions are validated, unmanifested model files (a crash between
// the two renames) are quarantined.
func (r *Registry) scan() error {
	entries, err := r.fs.ReadDir(r.dir)
	if err != nil {
		return fmt.Errorf("registry: reading %s: %w", r.dir, err)
	}
	manifests := map[string]bool{}
	models := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// An interrupted write that was never renamed into place;
			// it was never visible, so deleting it is safe.
			_ = r.fs.Remove(filepath.Join(r.dir, name))
		case strings.HasSuffix(name, ".manifest.json"):
			id := strings.TrimSuffix(name, ".manifest.json")
			if n, ok := parseID(id); ok {
				manifests[id] = true
				if n > r.seq {
					r.seq = n
				}
			}
		case strings.HasSuffix(name, ".json"):
			id := strings.TrimSuffix(name, ".json")
			if n, ok := parseID(id); ok {
				models[id] = true
				if n > r.seq {
					r.seq = n
				}
			}
		}
	}
	for id := range models {
		if !manifests[id] {
			r.quarantineLocked(id, "missing manifest (interrupted publish)")
		}
	}
	for id := range manifests {
		_, man, err := r.load(id)
		if err != nil {
			r.quarantineLocked(id, err.Error())
			continue
		}
		r.versions[id] = &VersionInfo{ID: id, State: StateOK, Manifest: *man}
	}
	return nil
}

// restoreActive replays the ACTIVE history to the most recent version
// that still loads, quarantining the ones that no longer do.
func (r *Registry) restoreActive() {
	raw, err := r.fs.ReadFile(filepath.Join(r.dir, "ACTIVE"))
	if err != nil {
		return // never activated (or pointer unreadable): serve nothing
	}
	var af activeFile
	if err := json.Unmarshal(raw, &af); err != nil {
		return
	}
	r.history = af.History
	for _, id := range af.History {
		model, _, err := r.load(id)
		if err != nil {
			r.quarantineLocked(id, err.Error())
			continue
		}
		r.active.Store(&Snapshot{ID: id, Model: model})
		if n, ok := parseID(id); ok {
			r.gActiveVersion.Set(int64(n))
		}
		return
	}
}

// quarantineLocked marks a version as unservable. The files stay on
// disk for forensics; only the in-memory state and metrics change.
func (r *Registry) quarantineLocked(id, reason string) {
	v := r.versions[id]
	if v == nil {
		v = &VersionInfo{ID: id}
		r.versions[id] = v
	}
	if v.State == StateQuarantined {
		v.Reason = reason
		return
	}
	v.State = StateQuarantined
	v.Reason = reason
	r.mQuarantined.Inc()
}

// parseID accepts the m%06d version naming, returning the sequence
// number.
func parseID(id string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(id, "m%d", &n); err != nil || !strings.HasPrefix(id, "m") {
		return 0, false
	}
	return n, true
}

// readManifest loads and structurally checks a version's manifest.
func (r *Registry) readManifest(id string) (*Manifest, error) {
	raw, err := r.fs.ReadFile(filepath.Join(r.dir, id+".manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("corrupt manifest: %w", err)
	}
	if m.Format != manifestFormat {
		return nil, fmt.Errorf("manifest format %d not supported", m.Format)
	}
	if m.ID != id {
		return nil, fmt.Errorf("manifest names %q, file names %q", m.ID, id)
	}
	return &m, nil
}

// load reads and fully validates one version from disk: manifest
// structure, model size and checksum, then segment.Read's semantic
// validation. Every serving and activation path funnels through here,
// so a version that passes load is safe to serve.
func (r *Registry) load(id string) (*segment.Model, *Manifest, error) {
	man, err := r.readManifest(id)
	if err != nil {
		return nil, nil, err
	}
	raw, err := r.fs.ReadFile(filepath.Join(r.dir, id+".json"))
	if err != nil {
		return nil, nil, fmt.Errorf("reading model: %w", err)
	}
	if int64(len(raw)) != man.Size {
		return nil, nil, fmt.Errorf("model is %d bytes, manifest says %d (truncated?)", len(raw), man.Size)
	}
	sum := sha256.Sum256(raw)
	if got := hex.EncodeToString(sum[:]); got != man.SHA256 {
		return nil, nil, fmt.Errorf("model checksum %s does not match manifest %s", got[:12], man.SHA256[:12])
	}
	model, err := segment.Read(bytes.NewReader(raw))
	if err != nil {
		return nil, nil, err
	}
	return model, man, nil
}

// Load read-validates one version and returns its model — the shared
// path the arcsapply CLI and the daemon both load through.
func (r *Registry) Load(id string) (*segment.Model, *Manifest, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	model, man, err := r.load(id)
	if err != nil {
		r.quarantineLocked(id, err.Error())
		return nil, nil, fmt.Errorf("registry: version %s: %w", id, err)
	}
	return model, man, nil
}

// PublishMeta is optional provenance recorded in the manifest.
type PublishMeta struct {
	SourceRun string
	Note      string
}

// Publish commits a new version: model document first, checksummed
// manifest second, each through temp + fsync + rename with a directory
// sync after. A crash anywhere in between leaves either invisible temp
// debris or an unmanifested model file — both quarantined, never
// served — and every previously committed version untouched.
func (r *Registry) Publish(m *segment.Model, meta PublishMeta) (*VersionInfo, error) {
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		return nil, fmt.Errorf("registry: encoding model: %w", err)
	}
	doc := buf.Bytes()
	sum := sha256.Sum256(doc)

	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	id := fmt.Sprintf("m%06d", r.seq)
	man := Manifest{
		Format:    manifestFormat,
		ID:        id,
		SHA256:    hex.EncodeToString(sum[:]),
		Size:      int64(len(doc)),
		Created:   time.Now().UTC(),
		Rules:     len(m.Rules),
		SourceRun: meta.SourceRun,
		Note:      meta.Note,
	}
	manDoc, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("registry: encoding manifest: %w", err)
	}
	if err := r.writeFileAtomic(id+".json", doc); err != nil {
		return nil, fmt.Errorf("registry: publishing %s: %w", id, err)
	}
	if err := r.writeFileAtomic(id+".manifest.json", manDoc); err != nil {
		// The unmanifested model file is exactly what a crash here would
		// leave; remove it eagerly since we are still alive to do so.
		_ = r.fs.Remove(filepath.Join(r.dir, id+".json"))
		return nil, fmt.Errorf("registry: committing %s: %w", id, err)
	}
	v := &VersionInfo{ID: id, State: StateOK, Manifest: man}
	r.versions[id] = v
	r.mPublished.Inc()
	out := *v
	return &out, nil
}

// writeFileAtomic writes name via a temp file, fsyncs it, renames it
// into place, and fsyncs the directory so the rename itself is
// durable.
func (r *Registry) writeFileAtomic(name string, data []byte) error {
	path := filepath.Join(r.dir, name)
	tmp := path + ".tmp"
	f, err := r.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		_ = r.fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = r.fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = r.fs.Remove(tmp)
		return err
	}
	if err := r.fs.Rename(tmp, path); err != nil {
		_ = r.fs.Remove(tmp)
		return err
	}
	return r.syncDir()
}

// syncDir makes a completed rename durable.
func (r *Registry) syncDir() error {
	d, err := r.fs.Open(r.dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Activate makes a version the served model. The version is re-read
// and re-validated from disk first — activation is the last gate
// before traffic — and on any failure the previous model keeps
// serving untouched (the rollback guarantee); the broken version is
// quarantined. The swap itself is a single atomic pointer store:
// requests that already took a Snapshot finish on the version they
// started with.
func (r *Registry) Activate(id string) (*Snapshot, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	model, _, err := r.load(id)
	if err != nil {
		r.quarantineLocked(id, err.Error())
		r.mActivateFailed.Inc()
		return nil, fmt.Errorf("registry: activating %s: %w (still serving %s)", id, err, r.activeIDLocked())
	}

	// Durable pointer first: if the ACTIVE write fails the in-memory
	// active model is untouched, so disk and memory never disagree in
	// the dangerous direction (serving a version a restart would lose).
	hist := make([]string, 0, historyCap)
	hist = append(hist, id)
	for _, h := range r.history {
		if h != id && len(hist) < historyCap {
			hist = append(hist, h)
		}
	}
	doc, err := json.MarshalIndent(activeFile{History: hist}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("registry: encoding ACTIVE: %w", err)
	}
	if err := r.writeFileAtomic("ACTIVE", doc); err != nil {
		r.mActivateFailed.Inc()
		return nil, fmt.Errorf("registry: recording activation of %s: %w (still serving %s)", id, err, r.activeIDLocked())
	}
	r.history = hist
	snap := &Snapshot{ID: id, Model: model}
	r.active.Store(snap)
	if n, ok := parseID(id); ok {
		r.gActiveVersion.Set(int64(n))
	}
	r.mActivated.Inc()
	return snap, nil
}

// activeIDLocked names the served version for error messages; "none"
// when nothing is active.
func (r *Registry) activeIDLocked() string {
	if s := r.active.Load(); s != nil {
		return s.ID
	}
	return "none"
}

// Active returns the served model snapshot, nil when nothing has been
// activated. The load is a single atomic read — this is the per-request
// entry to the hot path and allocates nothing.
func (r *Registry) Active() *Snapshot { return r.active.Load() }

// ActiveID returns the served version's ID, "" when none.
func (r *Registry) ActiveID() string {
	if s := r.active.Load(); s != nil {
		return s.ID
	}
	return ""
}

// List snapshots every known version in ID order, marking the active
// one.
func (r *Registry) List() []VersionInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	activeID := r.activeIDLocked()
	out := make([]VersionInfo, 0, len(r.versions))
	for _, v := range r.versions {
		vi := *v
		vi.Active = vi.ID == activeID
		out = append(out, vi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Dir returns the backing directory.
func (r *Registry) Dir() string { return r.dir }

// ErrNoActive is returned by helpers that need a served model when
// nothing has been activated yet.
var ErrNoActive = errors.New("registry: no active model")
