package registry

import "arcs/internal/vfs"

// The registry's filesystem seam moved to internal/vfs when the
// spill-to-disk count backend started sharing it; these aliases keep the
// registry's public surface (and every chaos test written against it)
// unchanged. See vfs for the interface contract.

// FS is the filesystem surface the registry publishes through.
type FS = vfs.FS

// File is the subset of *os.File the registry needs: sequential write,
// durability, close.
type File = vfs.File

// OSFS is the real filesystem.
type OSFS = vfs.OSFS
