package registry

import (
	"io"
	"io/fs"
	"os"
)

// FS is the filesystem surface the registry publishes through. It is an
// interface for the same reason dataset.Source is: the chaos suite
// wraps the real implementation with internal/faultinject to script
// torn writes, ENOSPC and read errors at exact call positions.
// Production code always uses OSFS.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(dir string) ([]fs.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	// Create opens name for writing (O_WRONLY|O_CREATE|O_TRUNC).
	Create(name string) (File, error)
	// Open opens name read-only; the registry uses it to fsync
	// directories after renames.
	Open(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// File is the subset of *os.File the registry needs: sequential write,
// durability, close.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OSFS is the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

// Open implements FS.
func (OSFS) Open(name string) (File, error) { return os.Open(name) }

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }
