package registry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"arcs/internal/obs"
	"arcs/internal/segment"
)

// testModel is a small valid two-rule segmentation.
func testModel() *segment.Model {
	return &segment.Model{
		XAttr: "age", YAttr: "salary",
		CritAttr: "group", CritValue: "A",
		MinSupport: 0.1, MinConfidence: 0.5,
		Rules: []segment.Rule{
			{XLo: 20, XHi: 40, YLo: 50, YHi: 100, Support: 0.2, Confidence: 0.9},
			{XLo: 60, XHi: 75, YLo: 25, YHi: 60, Support: 0.1, Confidence: 0.8},
		},
	}
}

func mustOpen(t *testing.T, dir string, opts Options) *Registry {
	t.Helper()
	r, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustPublish(t *testing.T, r *Registry) string {
	t.Helper()
	v, err := r.Publish(testModel(), PublishMeta{Note: "test"})
	if err != nil {
		t.Fatal(err)
	}
	return v.ID
}

func TestPublishActivateServe(t *testing.T) {
	reg := mustOpen(t, t.TempDir(), Options{})
	if reg.Active() != nil {
		t.Fatal("fresh registry should have no active model")
	}
	id := mustPublish(t, reg)
	if id != "m000001" {
		t.Fatalf("first version = %s, want m000001", id)
	}
	snap, err := reg.Activate(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID != id || reg.ActiveID() != id {
		t.Fatalf("active = %s / %s, want %s", snap.ID, reg.ActiveID(), id)
	}
	if !snap.Covers(30, 75) || snap.Covers(50, 75) {
		t.Fatal("active model does not score like the published one")
	}
}

func TestReopenRestoresActiveAndHistory(t *testing.T) {
	dir := t.TempDir()
	reg := mustOpen(t, dir, Options{})
	id1 := mustPublish(t, reg)
	id2 := mustPublish(t, reg)
	if _, err := reg.Activate(id1); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Activate(id2); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, dir, Options{})
	if re.ActiveID() != id2 {
		t.Fatalf("reopened active = %q, want %s", re.ActiveID(), id2)
	}
	list := re.List()
	if len(list) != 2 {
		t.Fatalf("reopened registry lists %d versions, want 2", len(list))
	}
	for _, v := range list {
		if v.State != StateOK {
			t.Fatalf("version %s reopened as %s (%s)", v.ID, v.State, v.Reason)
		}
	}
	// Sequence numbering continues after the highest on disk.
	if id3 := mustPublish(t, re); id3 != "m000003" {
		t.Fatalf("post-reopen publish = %s, want m000003", id3)
	}
}

// corruptFile flips bytes in the middle of a file without changing its
// size, so only the checksum can catch it.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(raw) / 2; i < len(raw)/2+8 && i < len(raw); i++ {
		raw[i] ^= 0xff
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestActivateCorruptVersionRollsBack(t *testing.T) {
	dir := t.TempDir()
	mreg := obs.NewRegistry()
	reg := mustOpen(t, dir, Options{Metrics: mreg})
	id1 := mustPublish(t, reg)
	id2 := mustPublish(t, reg)
	if _, err := reg.Activate(id1); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, filepath.Join(dir, id2+".json"))

	_, err := reg.Activate(id2)
	if err == nil {
		t.Fatal("activating a corrupt version succeeded")
	}
	if !strings.Contains(err.Error(), "still serving "+id1) {
		t.Fatalf("activation error does not name the surviving model: %v", err)
	}
	if reg.ActiveID() != id1 {
		t.Fatalf("active = %q after failed activation, want %s", reg.ActiveID(), id1)
	}
	if s := reg.Active(); s == nil || !s.Covers(30, 75) {
		t.Fatal("last-known-good model stopped serving")
	}
	var quarantined *VersionInfo
	for _, v := range reg.List() {
		if v.ID == id2 {
			vv := v
			quarantined = &vv
		}
	}
	if quarantined == nil || quarantined.State != StateQuarantined {
		t.Fatalf("corrupt version not quarantined: %+v", quarantined)
	}
	if got := mreg.Counter("models_quarantined_total").Value(); got != 1 {
		t.Fatalf("models_quarantined_total = %d, want 1", got)
	}
	if got := mreg.Counter("models_activate_failed_total").Value(); got != 1 {
		t.Fatalf("models_activate_failed_total = %d, want 1", got)
	}
	if got := mreg.Gauge("model_active_version").Value(); got != 1 {
		t.Fatalf("model_active_version = %d, want 1", got)
	}
}

func TestReopenFallsBackPastCorruptActive(t *testing.T) {
	dir := t.TempDir()
	reg := mustOpen(t, dir, Options{})
	id1 := mustPublish(t, reg)
	id2 := mustPublish(t, reg)
	for _, id := range []string{id1, id2} {
		if _, err := reg.Activate(id); err != nil {
			t.Fatal(err)
		}
	}
	// The active version rots on disk while the daemon is down. The
	// next Open must fall back to the previous activation instead of
	// serving garbage or nothing.
	corruptFile(t, filepath.Join(dir, id2+".json"))
	mreg := obs.NewRegistry()
	re := mustOpen(t, dir, Options{Metrics: mreg})
	if re.ActiveID() != id1 {
		t.Fatalf("reopened active = %q, want fallback to %s", re.ActiveID(), id1)
	}
	if got := mreg.Counter("models_quarantined_total").Value(); got != 1 {
		t.Fatalf("models_quarantined_total = %d, want 1", got)
	}
}

func TestUnmanifestedModelQuarantined(t *testing.T) {
	dir := t.TempDir()
	// A model file with no manifest is exactly what a crash between the
	// two publish renames leaves behind.
	if err := os.WriteFile(filepath.Join(dir, "m000009.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := mustOpen(t, dir, Options{})
	list := reg.List()
	if len(list) != 1 || list[0].State != StateQuarantined {
		t.Fatalf("unmanifested model not quarantined: %+v", list)
	}
	if !strings.Contains(list[0].Reason, "interrupted publish") {
		t.Fatalf("quarantine reason = %q", list[0].Reason)
	}
	// The sequence must skip past quarantined IDs, never reuse them.
	if id := mustPublish(t, reg); id != "m000010" {
		t.Fatalf("publish after quarantined m000009 = %s, want m000010", id)
	}
}

func TestTruncatedModelQuarantinedOnLoad(t *testing.T) {
	dir := t.TempDir()
	reg := mustOpen(t, dir, Options{})
	id := mustPublish(t, reg)
	path := filepath.Join(dir, id+".json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Load(id); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated load error = %v, want size mismatch", err)
	}
	if _, err := reg.Activate(id); err == nil {
		t.Fatal("truncated version activated")
	}
}

func TestActivateUnknownVersion(t *testing.T) {
	reg := mustOpen(t, t.TempDir(), Options{})
	id := mustPublish(t, reg)
	if _, err := reg.Activate(id); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Activate("m999999"); err == nil {
		t.Fatal("activating an unknown version succeeded")
	}
	if reg.ActiveID() != id {
		t.Fatalf("active changed to %q after failed activation", reg.ActiveID())
	}
}

func TestTempDebrisRemovedAtOpen(t *testing.T) {
	dir := t.TempDir()
	reg := mustOpen(t, dir, Options{})
	mustPublish(t, reg)
	if err := os.WriteFile(filepath.Join(dir, "m000002.json.tmp"), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, dir, Options{})
	if _, err := os.Stat(filepath.Join(dir, "m000002.json.tmp")); !os.IsNotExist(err) {
		t.Fatal("temp debris survived reopen")
	}
	if got := len(re.List()); got != 1 {
		t.Fatalf("registry lists %d versions, want 1", got)
	}
}

func TestManifestIDMismatchQuarantined(t *testing.T) {
	dir := t.TempDir()
	reg := mustOpen(t, dir, Options{})
	id := mustPublish(t, reg)
	// Copy the version under a different ID: checksums match but the
	// manifest names the original — a moved/renamed file must not serve.
	for _, suffix := range []string{".json", ".manifest.json"} {
		raw, err := os.ReadFile(filepath.Join(dir, id+suffix))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "m000007"+suffix), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	re := mustOpen(t, dir, Options{})
	for _, v := range re.List() {
		if v.ID == "m000007" && v.State != StateQuarantined {
			t.Fatalf("renamed version served as %s", v.State)
		}
	}
}
