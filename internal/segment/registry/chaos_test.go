package registry_test

import (
	"context"
	"strings"
	"testing"

	"arcs/internal/faultinject"
	"arcs/internal/obs"
	"arcs/internal/segment"
	"arcs/internal/segment/registry"
)

// chaosModel mirrors registry_test's testModel (the chaos suite lives
// in the external test package to avoid an import cycle through
// faultinject).
func chaosModel() *segment.Model {
	return &segment.Model{
		XAttr: "age", YAttr: "salary",
		CritAttr: "group", CritValue: "A",
		MinSupport: 0.1, MinConfidence: 0.5,
		Rules: []segment.Rule{
			{XLo: 20, XHi: 40, YLo: 50, YHi: 100, Support: 0.2, Confidence: 0.9},
		},
	}
}

// publishAndActivate seeds a registry with one good, active version.
// Write/sync/rename counts after it: model (write 1, sync 1+dir,
// rename 1), manifest (write 2, rename 2), ACTIVE (write 3, rename 3).
func publishAndActivate(t *testing.T, reg *registry.Registry) string {
	t.Helper()
	v, err := reg.Publish(chaosModel(), registry.PublishMeta{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Activate(v.ID); err != nil {
		t.Fatal(err)
	}
	return v.ID
}

// assertServes checks the last-known-good contract: id is active and
// scores correctly, now and after a clean reopen of the directory.
func assertServes(t *testing.T, reg *registry.Registry, dir, id string) {
	t.Helper()
	if reg.ActiveID() != id {
		t.Fatalf("active = %q, want %s", reg.ActiveID(), id)
	}
	if s := reg.Active(); s == nil || !s.Covers(30, 75) {
		t.Fatal("active model does not serve")
	}
	re, err := registry.Open(dir, registry.Options{})
	if err != nil {
		t.Fatalf("reopen after fault: %v", err)
	}
	if re.ActiveID() != id {
		t.Fatalf("reopened active = %q, want %s", re.ActiveID(), id)
	}
}

func TestChaosTornModelWriteLeavesRegistryServing(t *testing.T) {
	dir := t.TempDir()
	// Publish #2's model write is global write call 4 (model 1,
	// manifest 2, ACTIVE 3 during seeding).
	ffs := faultinject.WrapFS(nil, faultinject.FSSchedule{TornWriteAt: 4})
	reg, err := registry.Open(dir, registry.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	id := publishAndActivate(t, reg)

	if _, err := reg.Publish(chaosModel(), registry.PublishMeta{}); err == nil {
		t.Fatal("publish with a torn model write succeeded")
	}
	if got := ffs.Stats().TornWrites; got != 1 {
		t.Fatalf("torn writes injected = %d, want 1", got)
	}
	if got := len(reg.List()); got != 1 {
		t.Fatalf("failed publish registered a version: %d listed, want 1", got)
	}
	assertServes(t, reg, dir, id)
}

func TestChaosENOSPCManifestWriteNeverCommits(t *testing.T) {
	dir := t.TempDir()
	// Publish #2's manifest write is global write call 5.
	ffs := faultinject.WrapFS(nil, faultinject.FSSchedule{FailWriteAt: 5})
	reg, err := registry.Open(dir, registry.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	id := publishAndActivate(t, reg)

	if _, err := reg.Publish(chaosModel(), registry.PublishMeta{}); err == nil {
		t.Fatal("publish with ENOSPC on the manifest succeeded")
	}
	assertServes(t, reg, dir, id)
	// The fault was transient (fires once): the next publish must
	// succeed and get a fresh sequence number.
	v, err := reg.Publish(chaosModel(), registry.PublishMeta{})
	if err != nil {
		t.Fatalf("publish after transient ENOSPC: %v", err)
	}
	if v.ID != "m000003" {
		t.Fatalf("recovered publish = %s, want m000003 (sequence not reused)", v.ID)
	}
}

func TestChaosRenameFailureMidPublish(t *testing.T) {
	dir := t.TempDir()
	// Publish #2's manifest rename is global rename call 5 — the model
	// file is already in place, the commit record is not: the moment a
	// crash would leave an unmanifested model.
	ffs := faultinject.WrapFS(nil, faultinject.FSSchedule{FailRenameAt: 5})
	reg, err := registry.Open(dir, registry.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	id := publishAndActivate(t, reg)
	if _, err := reg.Publish(chaosModel(), registry.PublishMeta{}); err == nil {
		t.Fatal("publish with a failed manifest rename succeeded")
	}
	assertServes(t, reg, dir, id)
}

func TestChaosFsyncFailureFailsPublish(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.WrapFS(nil, faultinject.FSSchedule{FailSyncAt: 1})
	reg, err := registry.Open(dir, registry.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	// The very first publish hits the fsync failure: nothing may be
	// registered, and the registry must keep working afterwards.
	if _, err := reg.Publish(chaosModel(), registry.PublishMeta{}); err == nil {
		t.Fatal("publish with a failed fsync succeeded")
	}
	if got := len(reg.List()); got != 0 {
		t.Fatalf("failed publish registered %d versions", got)
	}
	id := publishAndActivate(t, reg)
	assertServes(t, reg, dir, id)
}

func TestChaosReadErrorDuringActivationRollsBack(t *testing.T) {
	dir := t.TempDir()
	reg, err := registry.Open(dir, registry.Options{FS: faultinject.WrapFS(nil, faultinject.FSSchedule{})})
	if err != nil {
		t.Fatal(err)
	}
	id1 := publishAndActivate(t, reg) // reads 1 (manifest), 2 (model)
	v2, err := reg.Publish(chaosModel(), registry.PublishMeta{})
	if err != nil {
		t.Fatal(err)
	}
	_ = v2

	// A second registry over the same dir, with a read fault scheduled
	// for the activation's model read. Open's reads: 2 versions x
	// (manifest + model) = 4, ACTIVE = 5, history replay of id1 = 6, 7;
	// the activation then reads v2's manifest (8) and model (9).
	ffs := faultinject.WrapFS(nil, faultinject.FSSchedule{FailReadAt: 9})
	re, err := registry.Open(dir, registry.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if re.ActiveID() != id1 {
		t.Fatalf("reopened active = %q, want %s", re.ActiveID(), id1)
	}
	if _, err := re.Activate(v2.ID); err == nil {
		t.Fatal("activation with an injected read error succeeded")
	} else if !strings.Contains(err.Error(), "still serving "+id1) {
		t.Fatalf("error does not promise the surviving model: %v", err)
	}
	if re.ActiveID() != id1 {
		t.Fatalf("active = %q after failed activation, want %s", re.ActiveID(), id1)
	}
}

func TestChaosShortReadQuarantinesAsTruncated(t *testing.T) {
	dir := t.TempDir()
	reg, err := registry.Open(dir, registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	id1 := publishAndActivate(t, reg)
	v2, err := reg.Publish(chaosModel(), registry.PublishMeta{})
	if err != nil {
		t.Fatal(err)
	}

	// Same counting as above: the activation's model read is read 9.
	ffs := faultinject.WrapFS(nil, faultinject.FSSchedule{ShortReadAt: 9})
	re, err := registry.Open(dir, registry.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	_, err = re.Activate(v2.ID)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("short-read activation error = %v, want truncation", err)
	}
	if re.ActiveID() != id1 {
		t.Fatalf("active = %q, want %s", re.ActiveID(), id1)
	}
}

// TestApplyHotPathZeroAlloc is the allocation guard on the per-tuple
// serving path: one atomic snapshot load per request plus a scoring
// loop that allocates nothing per point.
func TestApplyHotPathZeroAlloc(t *testing.T) {
	reg, err := registry.Open(t.TempDir(), registry.Options{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	v, err := reg.Publish(chaosModel(), registry.PublishMeta{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Activate(v.ID); err != nil {
		t.Fatal(err)
	}
	pts := make([][2]float64, 10_000)
	for i := range pts {
		pts[i] = [2]float64{float64(i % 100), float64(i % 120)}
	}
	out := make([]bool, len(pts))
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		snap := reg.Active()
		if _, err := snap.Model.ApplyPointsContext(ctx, pts, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("apply hot path allocates %.1f times per 10k-point batch, want 0", allocs)
	}
}
