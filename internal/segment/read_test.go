package segment

import (
	"bytes"
	"strings"
	"testing"
)

// validDoc is a minimal model document that must pass Read.
const validDoc = `{
  "format": 1,
  "x_attr": "age",
  "y_attr": "salary",
  "criterion_attr": "group",
  "criterion_value": "A",
  "rules": [
    {"x_lo": 20, "x_hi": 40, "y_lo": 50, "y_hi": 100, "support": 0.2, "confidence": 0.9}
  ],
  "min_support": 0.1,
  "min_confidence": 0.5
}`

// TestReadTable is the registry's load-validation contract in table
// form: every way a model document can be damaged on disk — truncation,
// bit rot inside values, a future format, hand-edits that break the
// invariants — must be rejected with a diagnosable error, and the
// legacy pre-format document must still load.
func TestReadTable(t *testing.T) {
	cases := []struct {
		name    string
		doc     string
		ok      bool
		errWant string // substring of the error when !ok
	}{
		{name: "valid", doc: validDoc, ok: true},
		{
			name: "legacy format zero",
			doc:  strings.Replace(validDoc, `"format": 1,`, "", 1),
			ok:   true,
		},
		{
			name:    "future format",
			doc:     strings.Replace(validDoc, `"format": 1`, `"format": 99`, 1),
			errWant: "format 99 is not supported",
		},
		{
			name:    "truncated mid-document",
			doc:     validDoc[:len(validDoc)/2],
			errWant: "decoding model",
		},
		{
			name:    "truncated to nothing",
			doc:     "",
			errWant: "decoding model",
		},
		{
			name:    "corrupt byte inside a number",
			doc:     strings.Replace(validDoc, `"x_lo": 20`, `"x_lo": 2}0`, 1),
			errWant: "decoding model",
		},
		{
			name:    "unknown field",
			doc:     strings.Replace(validDoc, `"format": 1`, `"formatt": 1`, 1),
			errWant: "decoding model",
		},
		{
			name:    "not json at all",
			doc:     "PK\x03\x04 this is a zip, not a model",
			errWant: "decoding model",
		},
		{
			name:    "missing attribute names",
			doc:     strings.Replace(validDoc, `"x_attr": "age"`, `"x_attr": ""`, 1),
			errWant: "missing attribute names",
		},
		{
			name:    "no rules",
			doc:     strings.Replace(validDoc, `"rules": [`, `"rules": [],  "ignore": [`, 1),
			errWant: "decoding model", // unknown field guard fires first
		},
		{
			name:    "empty x range",
			doc:     strings.Replace(validDoc, `"x_hi": 40`, `"x_hi": 20`, 1),
			errWant: "empty range",
		},
		{
			name:    "inverted y range",
			doc:     strings.Replace(validDoc, `"y_hi": 100`, `"y_hi": 10`, 1),
			errWant: "empty range",
		},
		{
			name:    "non-finite bound",
			doc:     strings.Replace(validDoc, `"x_hi": 40`, `"x_hi": 1e999`, 1),
			errWant: "decoding model", // json rejects the overflow itself
		},
		{
			name:    "support above one",
			doc:     strings.Replace(validDoc, `"support": 0.2`, `"support": 1.5`, 1),
			errWant: "outside [0, 1]",
		},
		{
			name:    "negative confidence",
			doc:     strings.Replace(validDoc, `"confidence": 0.9`, `"confidence": -0.1`, 1),
			errWant: "outside [0, 1]",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, err := Read(strings.NewReader(c.doc))
			if c.ok {
				if err != nil {
					t.Fatalf("Read: %v", err)
				}
				if !m.Covers(30, 75) || m.Covers(50, 75) {
					t.Fatal("loaded model scores wrong")
				}
				return
			}
			if err == nil {
				t.Fatal("Read accepted a damaged document")
			}
			if !strings.Contains(err.Error(), c.errWant) {
				t.Fatalf("error = %v, want substring %q", err, c.errWant)
			}
		})
	}
}

// FuzzRead drives Read with arbitrary bytes. The invariant is narrow
// but important for a file format that is hot-loaded by a daemon: Read
// never panics, and anything it accepts survives a write/read round
// trip with identical validation status.
func FuzzRead(f *testing.F) {
	// Seeds: the valid document, its legacy form, and the damage classes
	// from the table test.
	f.Add([]byte(validDoc))
	f.Add([]byte(strings.Replace(validDoc, `"format": 1,`, "", 1)))
	f.Add([]byte(strings.Replace(validDoc, `"format": 1`, `"format": 99`, 1)))
	f.Add([]byte(validDoc[:len(validDoc)/2]))
	f.Add([]byte(validDoc[:len(validDoc)-3]))
	f.Add([]byte(""))
	f.Add([]byte("{}"))
	f.Add([]byte("null"))
	f.Add([]byte(`{"x_attr":"a","y_attr":"b","criterion_attr":"g","criterion_value":"A","rules":[{"x_lo":0,"x_hi":0,"y_lo":0,"y_hi":1}]}`))
	f.Add([]byte(strings.Replace(validDoc, `"support": 0.2`, `"support": 1e308`, 1)))
	f.Add([]byte(strings.Replace(validDoc, `20`, `-20`, 1)))
	f.Add([]byte("PK\x03\x04"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := Read(bytes.NewReader(raw))
		if err != nil {
			return
		}
		// Accepted documents must re-serialize to something Read accepts
		// again — otherwise a registry could publish a model it can never
		// load back.
		var buf bytes.Buffer
		if err := m.Write(&buf); err != nil {
			t.Fatalf("Write of an accepted model failed: %v", err)
		}
		re, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip of an accepted model failed: %v", err)
		}
		if len(re.Rules) != len(m.Rules) || re.XAttr != m.XAttr {
			t.Fatalf("round trip changed the model: %+v vs %+v", re, m)
		}
	})
}
