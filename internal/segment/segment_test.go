package segment

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"arcs/internal/dataset"
	"arcs/internal/rules"
)

func demoRules() []rules.ClusteredRule {
	return []rules.ClusteredRule{
		{
			XAttr: "age", YAttr: "salary", CritAttr: "group", CritValue: "A",
			XLo: 20, XHi: 40, YLo: 50_000, YHi: 100_000,
			Support: 0.12, Confidence: 0.9,
		},
		{
			XAttr: "age", YAttr: "salary", CritAttr: "group", CritValue: "A",
			XLo: 60, XHi: 80, YLo: 25_000, YHi: 75_000,
			Support: 0.10, Confidence: 0.88,
		},
	}
}

func TestNewModel(t *testing.T) {
	m, err := New(demoRules(), 0.0001, 0.39)
	if err != nil {
		t.Fatal(err)
	}
	if m.XAttr != "age" || m.CritValue != "A" || len(m.Rules) != 2 {
		t.Errorf("model = %+v", m)
	}
	if _, err := New(nil, 0, 0); err == nil {
		t.Error("empty rules should error")
	}
	mixed := demoRules()
	mixed[1].XAttr = "loan"
	if _, err := New(mixed, 0, 0); err == nil {
		t.Error("mismatched attributes should error")
	}
}

func TestModelCovers(t *testing.T) {
	m, _ := New(demoRules(), 0, 0)
	cases := []struct {
		x, y float64
		want bool
	}{
		{30, 75_000, true},
		{70, 50_000, true},
		{50, 75_000, false},  // between the clusters
		{40, 75_000, false},  // exclusive upper bound
		{20, 50_000, true},   // inclusive lower bound
		{30, 100_000, false}, // exclusive y upper bound
	}
	for _, c := range cases {
		if got := m.Covers(c.x, c.y); got != c.want {
			t.Errorf("Covers(%v, %v) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	m, _ := New(demoRules(), 0.0001, 0.39)
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.XAttr != m.XAttr || len(loaded.Rules) != len(m.Rules) {
		t.Errorf("round trip lost data: %+v", loaded)
	}
	if loaded.MinSupport != 0.0001 || loaded.MinConfidence != 0.39 {
		t.Error("thresholds not preserved")
	}
	// Behavioural equality.
	for _, p := range [][2]float64{{30, 75_000}, {50, 75_000}, {70, 30_000}} {
		if loaded.Covers(p[0], p[1]) != m.Covers(p[0], p[1]) {
			t.Errorf("coverage differs after round trip at %v", p)
		}
	}
}

func TestReadValidation(t *testing.T) {
	bad := []string{
		`{}`,
		`{"x_attr":"a","y_attr":"b","criterion_attr":"g","criterion_value":"A","rules":[]}`,
		`{"x_attr":"a","y_attr":"b","criterion_attr":"g","criterion_value":"A",
		  "rules":[{"x_lo":5,"x_hi":5,"y_lo":0,"y_hi":1}]}`,
		`{"unknown_field":1}`,
		`not json`,
	}
	for i, s := range bad {
		if _, err := Read(strings.NewReader(s)); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestBindAndApply(t *testing.T) {
	m, _ := New(demoRules(), 0, 0)
	schema := dataset.NewSchema(
		dataset.Attribute{Name: "salary", Kind: dataset.Quantitative}, // note: different order
		dataset.Attribute{Name: "age", Kind: dataset.Quantitative},
	)
	app, err := m.Bind(schema)
	if err != nil {
		t.Fatal(err)
	}
	// Tuple is (salary, age).
	if !app.Covers(dataset.Tuple{75_000, 30}) {
		t.Error("binding must respect schema order")
	}
	if app.Covers(dataset.Tuple{75_000, 50}) {
		t.Error("uncovered point misclassified")
	}
	tb := dataset.NewTable(schema)
	tb.MustAppend(dataset.Tuple{75_000, 30})
	tb.MustAppend(dataset.Tuple{75_000, 50})
	covered := 0
	err = app.Apply(tb, func(_ dataset.Tuple, c bool) error {
		if c {
			covered++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if covered != 1 {
		t.Errorf("covered = %d, want 1", covered)
	}
	// Binding against a schema missing the attribute fails.
	missing := dataset.NewSchema(dataset.Attribute{Name: "other", Kind: dataset.Quantitative})
	if _, err := m.Bind(missing); err == nil {
		t.Error("missing attribute should error")
	}
}

func TestClusteredRulesRoundTrip(t *testing.T) {
	orig := demoRules()
	m, _ := New(orig, 0, 0)
	back := m.ClusteredRules()
	if len(back) != len(orig) {
		t.Fatalf("lost rules")
	}
	for i := range orig {
		if back[i].String() != orig[i].String() {
			t.Errorf("rule %d: %q vs %q", i, back[i], orig[i])
		}
	}
}

func TestModelRoundTripProperty(t *testing.T) {
	// Property: any valid model survives a JSON round trip with
	// identical coverage behaviour on a probe lattice.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 8 {
			raw = raw[:8]
		}
		var rs []rules.ClusteredRule
		for _, r := range raw {
			xlo := float64(r % 50)
			ylo := float64((r >> 4) % 50)
			rs = append(rs, rules.ClusteredRule{
				XAttr: "x", YAttr: "y", CritAttr: "g", CritValue: "A",
				XLo: xlo, XHi: xlo + 1 + float64(r%7),
				YLo: ylo, YHi: ylo + 1 + float64((r>>8)%7),
			})
		}
		m, err := New(rs, 0.001, 0.5)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := m.Write(&buf); err != nil {
			return false
		}
		loaded, err := Read(&buf)
		if err != nil {
			return false
		}
		for x := 0.0; x < 60; x += 3.5 {
			for y := 0.0; y < 60; y += 3.5 {
				if m.Covers(x, y) != loaded.Covers(x, y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
