// Package segment turns an ARCS result into a persistent, applicable
// artifact: a segmentation model that can be saved as JSON, loaded back,
// and applied to new tuples. This is the deployment half of the paper's
// marketing scenario — the segmentation is computed once on the existing
// customer base and then used to score prospects.
package segment

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"arcs/internal/cancelcheck"
	"arcs/internal/dataset"
	"arcs/internal/rules"
)

// FormatVersion is the model wire-format generation this package
// writes. Read accepts the current generation plus 0 (models saved
// before the field existed); anything else is from a newer binary and
// is rejected rather than misinterpreted.
const FormatVersion = 1

// Model is a serializable segmentation: the clustered rules for one
// criterion value over a fixed attribute pair.
type Model struct {
	// Format is the wire-format generation (see FormatVersion). Zero in
	// documents written before the field existed.
	Format int `json:"format,omitempty"`
	// XAttr and YAttr are the LHS attribute names the rules range over.
	XAttr string `json:"x_attr"`
	YAttr string `json:"y_attr"`
	// CritAttr and CritValue identify the segmented group.
	CritAttr  string `json:"criterion_attr"`
	CritValue string `json:"criterion_value"`
	// Rules are the clustered association rules.
	Rules []Rule `json:"rules"`
	// MinSupport / MinConfidence record the thresholds the rules were
	// mined at, for provenance.
	MinSupport    float64 `json:"min_support"`
	MinConfidence float64 `json:"min_confidence"`
}

// Rule is the serialized form of one clustered rule.
type Rule struct {
	XLo        float64 `json:"x_lo"`
	XHi        float64 `json:"x_hi"`
	YLo        float64 `json:"y_lo"`
	YHi        float64 `json:"y_hi"`
	Support    float64 `json:"support"`
	Confidence float64 `json:"confidence"`
}

// New builds a model from clustered rules. All rules must share the same
// attribute pair and criterion; the first rule defines them.
func New(rs []rules.ClusteredRule, minSupport, minConfidence float64) (*Model, error) {
	if len(rs) == 0 {
		return nil, fmt.Errorf("segment: no rules")
	}
	first := rs[0]
	m := &Model{
		Format: FormatVersion,
		XAttr:  first.XAttr, YAttr: first.YAttr,
		CritAttr: first.CritAttr, CritValue: first.CritValue,
		MinSupport: minSupport, MinConfidence: minConfidence,
	}
	for _, r := range rs {
		if r.XAttr != m.XAttr || r.YAttr != m.YAttr ||
			r.CritAttr != m.CritAttr || r.CritValue != m.CritValue {
			return nil, fmt.Errorf("segment: rule %q does not match model attributes (%s, %s) => %s = %s",
				r, m.XAttr, m.YAttr, m.CritAttr, m.CritValue)
		}
		m.Rules = append(m.Rules, Rule{
			XLo: r.XLo, XHi: r.XHi, YLo: r.YLo, YHi: r.YHi,
			Support: r.Support, Confidence: r.Confidence,
		})
	}
	return m, nil
}

// Covers reports whether an (x, y) point in attribute value space falls
// in any of the model's clusters. Bounds are half-open, matching the
// clustered rules.
func (m *Model) Covers(x, y float64) bool {
	for _, r := range m.Rules {
		if r.XLo <= x && x < r.XHi && r.YLo <= y && y < r.YHi {
			return true
		}
	}
	return false
}

// Applier compiles the model against a schema for tuple scoring.
type Applier struct {
	model      *Model
	xIdx, yIdx int
}

// Bind resolves the model's attributes against a schema.
func (m *Model) Bind(schema *dataset.Schema) (*Applier, error) {
	xIdx, err := schema.Index(m.XAttr)
	if err != nil {
		return nil, err
	}
	yIdx, err := schema.Index(m.YAttr)
	if err != nil {
		return nil, err
	}
	return &Applier{model: m, xIdx: xIdx, yIdx: yIdx}, nil
}

// Covers reports whether the tuple belongs to the segment.
func (a *Applier) Covers(t dataset.Tuple) bool {
	return a.model.Covers(t[a.xIdx], t[a.yIdx])
}

// Apply streams a source and invokes fn with every tuple and its segment
// membership.
func (a *Applier) Apply(src dataset.Source, fn func(t dataset.Tuple, covered bool) error) error {
	return a.ApplyContext(context.Background(), src, fn)
}

// ApplyContext is Apply with checkpointed cancellation: a canceled
// context stops the pass at the next checkpoint and returns the
// cancellation error; every tuple already handed to fn stays valid, so
// callers can flush partial output.
func (a *Applier) ApplyContext(ctx context.Context, src dataset.Source, fn func(t dataset.Tuple, covered bool) error) error {
	return dataset.ForEachContext(ctx, src, func(t dataset.Tuple) error {
		return fn(t, a.Covers(t))
	})
}

// ApplyPoints scores (x, y) pairs in attribute value space against the
// model. When out is non-nil it must have len(pts) slots and receives
// the per-point membership. The loop allocates nothing per point.
func (m *Model) ApplyPoints(pts [][2]float64, out []bool) (matched int) {
	matched, _ = m.ApplyPointsContext(context.Background(), pts, out)
	return matched
}

// ApplyPointsContext is ApplyPoints with checkpointed cancellation: a
// canceled context or expired deadline stops the pass at the next
// checkpoint and returns the cancellation error, with every point
// scored so far still recorded in out. This is the hot serving path —
// per-request deadlines propagate from the daemon's /apply handler down
// to this loop — so the cancellation poll is batched the same way the
// ingest path batches it.
func (m *Model) ApplyPointsContext(ctx context.Context, pts [][2]float64, out []bool) (matched int, err error) {
	chk := cancelcheck.New(ctx).Point(4096)
	for i := range pts {
		if err := chk.Check(); err != nil {
			return matched, err
		}
		c := m.Covers(pts[i][0], pts[i][1])
		if out != nil {
			out[i] = c
		}
		if c {
			matched++
		}
	}
	return matched, nil
}

// Write serializes the model as indented JSON, stamping the current
// format version so readers can tell a document from a newer generation
// apart from a corrupt one.
func (m *Model) Write(w io.Writer) error {
	if m.Format == 0 {
		m.Format = FormatVersion
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// Read deserializes a model and validates it.
func Read(r io.Reader) (*Model, error) {
	var m Model
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("segment: decoding model: %w", err)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

func (m *Model) validate() error {
	if m.Format != 0 && m.Format != FormatVersion {
		return fmt.Errorf("segment: model format %d is not supported (this build reads format %d)", m.Format, FormatVersion)
	}
	if m.XAttr == "" || m.YAttr == "" || m.CritAttr == "" || m.CritValue == "" {
		return fmt.Errorf("segment: model is missing attribute names")
	}
	if len(m.Rules) == 0 {
		return fmt.Errorf("segment: model has no rules")
	}
	for i, r := range m.Rules {
		for _, v := range [...]float64{r.XLo, r.XHi, r.YLo, r.YHi} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("segment: rule %d has a non-finite bound", i)
			}
		}
		if !(r.XLo < r.XHi) || !(r.YLo < r.YHi) {
			return fmt.Errorf("segment: rule %d has an empty range", i)
		}
		if math.IsNaN(r.Support) || r.Support < 0 || r.Support > 1 ||
			math.IsNaN(r.Confidence) || r.Confidence < 0 || r.Confidence > 1 {
			return fmt.Errorf("segment: rule %d has support/confidence outside [0, 1]", i)
		}
	}
	return nil
}

// ClusteredRules converts the model back to clustered rule values.
func (m *Model) ClusteredRules() []rules.ClusteredRule {
	out := make([]rules.ClusteredRule, len(m.Rules))
	for i, r := range m.Rules {
		out[i] = rules.ClusteredRule{
			XAttr: m.XAttr, YAttr: m.YAttr,
			CritAttr: m.CritAttr, CritValue: m.CritValue,
			XLo: r.XLo, XHi: r.XHi, YLo: r.YLo, YHi: r.YHi,
			Support: r.Support, Confidence: r.Confidence,
		}
	}
	return out
}
