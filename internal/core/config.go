// Package core wires the ARCS components into the full system of paper
// Figure 2: binner → association rule engine → grid → smoothing → BitOp
// clustering → pruning → verifier → heuristic optimizer, with the
// feedback loop that adjusts the support and confidence thresholds until
// the MDL cost of the segmentation stops improving.
package core

import (
	"fmt"

	"arcs/internal/counts"
	"arcs/internal/mdl"
	"arcs/internal/obs"
	"arcs/internal/optimizer"
)

// BinStrategy selects how quantitative attributes are partitioned.
type BinStrategy int

const (
	// BinEquiWidth uses equal-width intervals (the paper's default).
	BinEquiWidth BinStrategy = iota
	// BinEquiDepth uses quantile boundaries so bins hold roughly equal
	// tuple counts.
	BinEquiDepth
	// BinHomogeneity sizes bins so tuples within each bin are
	// near-uniformly distributed.
	BinHomogeneity
	// BinSupervised places bin boundaries with the entropy-based MDL
	// criterion of Fayyad & Irani against the criterion attribute, so
	// boundaries align with class changes — the paper's §5 suggestion of
	// applying information-gain measures to threshold determination.
	// NumBins acts as a cap rather than an exact count.
	//
	// Caveat: the cuts are chosen on each attribute's MARGINAL class
	// distribution. On interaction-driven data the marginal can be flat
	// where the joint structure changes (Function 2's age axis entirely,
	// and its salary boundary at 75k), so cuts are missed; axes with no
	// accepted cut fall back to equi-width. Prefer this strategy when
	// the criterion varies with each attribute individually.
	BinSupervised
)

// String names the strategy.
func (b BinStrategy) String() string {
	switch b {
	case BinEquiWidth:
		return "equi-width"
	case BinEquiDepth:
		return "equi-depth"
	case BinHomogeneity:
		return "homogeneity"
	case BinSupervised:
		return "supervised"
	default:
		return fmt.Sprintf("BinStrategy(%d)", int(b))
	}
}

// SmoothingMode selects the grid-smoothing preprocessing (paper §3.4, §5).
type SmoothingMode int

const (
	// SmoothBinary applies the 3×3 binary low-pass filter (the paper's
	// default in the main experiments).
	SmoothBinary SmoothingMode = iota
	// SmoothOff disables smoothing.
	SmoothOff
	// SmoothWeighted smooths rule support values instead of presence
	// bits (paper §5 extension).
	SmoothWeighted
	// SmoothMorphological closes then opens the grid (fill pinholes,
	// drop isolated noise) using the image-processing morphology
	// operators — the "more advanced filters" direction of §5. Unlike
	// the low-pass filter it is idempotent and never moves cluster
	// boundaries by more than one cell.
	SmoothMorphological
)

// String names the mode.
func (s SmoothingMode) String() string {
	switch s {
	case SmoothBinary:
		return "binary"
	case SmoothOff:
		return "off"
	case SmoothWeighted:
		return "support-weighted"
	case SmoothMorphological:
		return "morphological"
	default:
		return fmt.Sprintf("SmoothingMode(%d)", int(s))
	}
}

// SearchStrategy selects the threshold optimizer.
type SearchStrategy int

const (
	// SearchWalk is the paper's low-to-high threshold walk (§3.7).
	SearchWalk SearchStrategy = iota
	// SearchAnneal uses simulated annealing (§5).
	SearchAnneal
	// SearchFactorial uses iterated two-level factorial design (§5).
	SearchFactorial
	// SearchFixed skips the search and uses FixedMinSupport /
	// FixedMinConfidence directly.
	SearchFixed
)

// String names the strategy.
func (s SearchStrategy) String() string {
	switch s {
	case SearchWalk:
		return "threshold-walk"
	case SearchAnneal:
		return "simulated-annealing"
	case SearchFactorial:
		return "factorial-design"
	case SearchFixed:
		return "fixed"
	default:
		return fmt.Sprintf("SearchStrategy(%d)", int(s))
	}
}

// Config parameterizes an ARCS run. Only the attribute names are
// required; every other field has the paper's default.
type Config struct {
	// XAttr and YAttr are the two LHS attributes chosen by the user
	// (or by attribute selection; see SelectAttributePair).
	XAttr, YAttr string
	// CritAttr is the categorical RHS criterion attribute; CritValue is
	// the group being segmented (e.g. customer-rating = "excellent").
	CritAttr, CritValue string

	// NumBins is the per-axis bin count for quantitative attributes.
	// The paper presets 50. Categorical LHS attributes always get one
	// bin per category.
	NumBins int
	// XBins / YBins override NumBins per axis when non-zero.
	XBins, YBins int
	// BinStrategy selects the quantitative partitioning scheme.
	BinStrategy BinStrategy
	// XRange / YRange optionally fix a quantitative attribute's domain
	// [lo, hi], avoiding the need to fit it from data.
	XRange, YRange *[2]float64

	// Smoothing selects the grid preprocessing; SmoothThreshold is the
	// neighborhood fraction for the binary filter (default 0.5).
	Smoothing       SmoothingMode
	SmoothThreshold float64

	// PruneFraction is the dynamic pruning threshold of §3.5: clusters
	// smaller than this fraction of the grid are discarded and the
	// clustering loop stops when no larger cluster remains. The paper
	// uses 1%. Negative disables pruning.
	PruneFraction float64

	// InterestLift, when positive, additionally requires every mined
	// cell to beat the criterion value's global prior by this factor —
	// the "greater-than-expected-value" interest measure discussed in
	// §1.1 (Srikant & Agrawal). It composes with the confidence
	// threshold: the effective minimum confidence is
	// max(minConfidence, InterestLift × prior).
	InterestLift float64

	// Weights biases the MDL cost (default wc = we = 1).
	Weights mdl.Weights

	// Search picks the optimizer; Walk/Anneal/Factorial carry the
	// per-strategy knobs. With SearchFixed, FixedMinSupport and
	// FixedMinConfidence are used verbatim.
	Search             SearchStrategy
	Walk               optimizer.ThresholdWalk
	Anneal             optimizer.Anneal
	Factorial          optimizer.Factorial
	FixedMinSupport    float64
	FixedMinConfidence float64

	// SampleSize is the number of tuples reservoir-sampled for the
	// verifier (default 2000). SampleRounds and SampleK configure the
	// repeated k-out-of-n measurement (defaults 5 rounds of half the
	// sample).
	SampleSize   int
	SampleRounds int
	SampleK      int

	// ReorderCategorical enables the densest-cluster category ordering
	// for a categorical LHS attribute (default on; only relevant when an
	// LHS attribute is categorical).
	ReorderCategorical *bool

	// Seed drives all sampling; runs are deterministic per seed.
	Seed int64

	// IngestWorkers sets the parallelism of the counting pass. 0 or 1
	// builds the dense count array sequentially; larger values shard the
	// pass across that many workers when the source supports range
	// sharding (in-memory tables, deterministic generators — see
	// dataset.Sharder), falling back to the sequential build for
	// streaming sources. Counts and results are bit-identical at any
	// setting; only wall-clock time changes.
	IngestWorkers int

	// MemBudget is the advisory memory cap in bytes for the count
	// substrate. 0 applies the deprecated binarray.DefaultMemBudget
	// (1 GiB); negative means unlimited. When the dense array would not
	// fit, the build dispatches to the sparse or spill backend instead
	// of failing — counts are byte-identical whichever backend serves
	// them (see counts.Options).
	MemBudget int64

	// CountsBackend pins a count backend: "auto" (default), "dense",
	// "sparse" or "spill". Auto selects dense when the full grid fits
	// MemBudget, sparse when the expected occupied cells fit, spill
	// otherwise.
	CountsBackend string

	// SpillDir is where the spill backend keeps its run and record
	// files; empty uses the OS temp directory.
	SpillDir string

	// SerialSearch forces the optimizer's probe batches to evaluate one
	// at a time instead of fanning out across the worker pool. Results
	// are identical either way (the batch path merges in probe order and
	// every probe is a pure function of its thresholds); the knob exists
	// for debugging and as the benchmark baseline.
	SerialSearch bool

	// DisableProbeCache turns off the per-System memoization of
	// threshold probes. Results are identical either way; benchmarks use
	// it to measure uncached probe cost.
	DisableProbeCache bool

	// RunID, when non-empty, is prepended as a "run_id" attribute on
	// every root span the System emits (init, thresholds, run), so a
	// process hosting many concurrent mining jobs over one shared sink —
	// arcsd — can attribute the interleaved span stream to jobs. Leave
	// empty for single-run commands; it costs one small allocation per
	// root span when set and nothing when empty.
	RunID string

	// Observer receives phase spans and metrics for every run of the
	// System (see internal/obs for the span taxonomy and metric names).
	// Nil — the default — disables observability entirely: the probe hot
	// path then performs no allocations and no atomic work beyond the
	// existing cache stats, and no pprof phase labels are applied.
	Observer *obs.Observer

	// ProbeHook, when set, runs at the start of every probe evaluation
	// (cache misses only) with the probe's criterion code and thresholds.
	// It is the fault-injection seam for chaos tests: a hook that panics
	// exercises the probe isolation layer — the panic is recovered, the
	// probe fails with a PanicError, and the search continues. Production
	// configs leave it nil.
	ProbeHook func(seg int, minSup, minConf float64)
}

// withDefaults fills the zero values with the paper's defaults.
func (c Config) withDefaults() Config {
	if c.NumBins == 0 {
		c.NumBins = 50
	}
	if c.XBins == 0 {
		c.XBins = c.NumBins
	}
	if c.YBins == 0 {
		c.YBins = c.NumBins
	}
	if c.SmoothThreshold == 0 {
		c.SmoothThreshold = 0.5
	}
	if c.PruneFraction == 0 {
		c.PruneFraction = 0.01
	}
	if c.Weights == (mdl.Weights{}) {
		c.Weights = mdl.DefaultWeights()
	}
	if c.SampleSize == 0 {
		c.SampleSize = 2000
	}
	if c.SampleRounds == 0 {
		c.SampleRounds = 5
	}
	if c.SampleK == 0 {
		c.SampleK = c.SampleSize / 2
	}
	if c.ReorderCategorical == nil {
		t := true
		c.ReorderCategorical = &t
	}
	return c
}

func (c Config) validate() error {
	if c.XAttr == "" || c.YAttr == "" || c.CritAttr == "" {
		return fmt.Errorf("core: XAttr, YAttr and CritAttr are required")
	}
	if c.XAttr == c.YAttr {
		return fmt.Errorf("core: LHS attributes must differ, both are %q", c.XAttr)
	}
	if c.XAttr == c.CritAttr || c.YAttr == c.CritAttr {
		return fmt.Errorf("core: criterion attribute %q cannot also be an LHS attribute", c.CritAttr)
	}
	if c.NumBins < 0 || c.XBins < 0 || c.YBins < 0 {
		return fmt.Errorf("core: bin counts must be non-negative")
	}
	if c.SmoothThreshold < 0 || c.SmoothThreshold > 1 {
		return fmt.Errorf("core: smooth threshold %g outside [0, 1]", c.SmoothThreshold)
	}
	if c.PruneFraction > 1 {
		return fmt.Errorf("core: prune fraction %g exceeds 1", c.PruneFraction)
	}
	if c.InterestLift < 0 {
		return fmt.Errorf("core: interest lift %g is negative", c.InterestLift)
	}
	if c.IngestWorkers < 0 {
		return fmt.Errorf("core: ingest workers %d is negative", c.IngestWorkers)
	}
	if _, err := counts.ParseKind(c.CountsBackend); err != nil {
		return err
	}
	if c.Search == SearchFixed {
		if c.FixedMinSupport < 0 || c.FixedMinSupport > 1 ||
			c.FixedMinConfidence < 0 || c.FixedMinConfidence > 1 {
			return fmt.Errorf("core: fixed thresholds (%g, %g) outside [0, 1]",
				c.FixedMinSupport, c.FixedMinConfidence)
		}
	}
	return nil
}
