package core

import (
	"fmt"
	"sort"

	"arcs/internal/binning"
	"arcs/internal/dataset"
	"arcs/internal/stats"
)

// AttributeScore is one candidate LHS attribute with its information gain
// against the criterion attribute.
type AttributeScore struct {
	Attr string
	Gain float64
}

// SelectAttributePair ranks the quantitative attributes of a table by the
// information gain of their binned values against the criterion attribute
// and returns the two highest-ranked, realizing the paper's §5 suggestion
// of using information-gain measures to choose the segmentation
// attributes (in place of the user, or of factor analysis / PCA).
//
// tb should be a representative sample; bins controls the granularity of
// the gain estimate (e.g. 10).
func SelectAttributePair(tb *dataset.Table, critAttr string, bins int) (x, y string, scores []AttributeScore, err error) {
	if bins <= 1 {
		return "", "", nil, fmt.Errorf("core: need at least 2 bins for attribute selection, got %d", bins)
	}
	schema := tb.Schema()
	critIdx, err := schema.Index(critAttr)
	if err != nil {
		return "", "", nil, err
	}
	crit := schema.At(critIdx)
	if crit.Kind != dataset.Categorical {
		return "", "", nil, fmt.Errorf("core: criterion attribute %q must be categorical", critAttr)
	}
	nseg := crit.NumCategories()
	if nseg == 0 || tb.Len() == 0 {
		return "", "", nil, fmt.Errorf("core: no data to select attributes from")
	}
	candidates := schema.QuantitativeNames()
	if len(candidates) < 2 {
		return "", "", nil, fmt.Errorf("core: need at least 2 quantitative attributes, have %d", len(candidates))
	}
	for _, name := range candidates {
		idx := schema.MustIndex(name)
		b, err := binning.NewEquiWidthFromData(tb.Column(idx), bins)
		if err != nil {
			return "", "", nil, err
		}
		children := make([][]float64, b.NumBins())
		for i := range children {
			children[i] = make([]float64, nseg)
		}
		for r := 0; r < tb.Len(); r++ {
			row := tb.Row(r)
			children[b.Bin(row[idx])][int(row[critIdx])]++
		}
		scores = append(scores, AttributeScore{Attr: name, Gain: stats.InfoGain(children)})
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].Gain != scores[j].Gain {
			return scores[i].Gain > scores[j].Gain
		}
		return scores[i].Attr < scores[j].Attr
	})
	return scores[0].Attr, scores[1].Attr, scores, nil
}

// PairScore is one candidate LHS attribute pair with the information
// gain of its joint binned partition against the criterion.
type PairScore struct {
	X, Y string
	Gain float64
}

// SelectAttributePairJoint evaluates every pair of quantitative
// attributes by the information gain of their joint bins × bins
// partition against the criterion, and returns the best pair. Unlike
// the univariate ranking of SelectAttributePair, this detects attributes
// that are individually uninformative but jointly decisive — exactly the
// structure of the paper's Function 2, where the group depends on the
// (age, salary) combination while the marginal distribution over age
// alone is flat.
func SelectAttributePairJoint(tb *dataset.Table, critAttr string, bins int) (x, y string, scores []PairScore, err error) {
	if bins <= 1 {
		return "", "", nil, fmt.Errorf("core: need at least 2 bins for attribute selection, got %d", bins)
	}
	schema := tb.Schema()
	critIdx, err := schema.Index(critAttr)
	if err != nil {
		return "", "", nil, err
	}
	crit := schema.At(critIdx)
	if crit.Kind != dataset.Categorical {
		return "", "", nil, fmt.Errorf("core: criterion attribute %q must be categorical", critAttr)
	}
	nseg := crit.NumCategories()
	if nseg == 0 || tb.Len() == 0 {
		return "", "", nil, fmt.Errorf("core: no data to select attributes from")
	}
	candidates := schema.QuantitativeNames()
	if len(candidates) < 2 {
		return "", "", nil, fmt.Errorf("core: need at least 2 quantitative attributes, have %d", len(candidates))
	}
	binners := make(map[string]binning.Binner, len(candidates))
	for _, name := range candidates {
		b, err := binning.NewEquiWidthFromData(tb.Column(schema.MustIndex(name)), bins)
		if err != nil {
			return "", "", nil, err
		}
		binners[name] = b
	}
	for i := 0; i < len(candidates); i++ {
		for j := i + 1; j < len(candidates); j++ {
			xi := schema.MustIndex(candidates[i])
			yi := schema.MustIndex(candidates[j])
			bx, by := binners[candidates[i]], binners[candidates[j]]
			children := make([][]float64, bins*bins)
			for c := range children {
				children[c] = make([]float64, nseg)
			}
			for r := 0; r < tb.Len(); r++ {
				row := tb.Row(r)
				cell := bx.Bin(row[xi])*bins + by.Bin(row[yi])
				children[cell][int(row[critIdx])]++
			}
			scores = append(scores, PairScore{
				X: candidates[i], Y: candidates[j],
				Gain: stats.InfoGain(children),
			})
		}
	}
	sort.Slice(scores, func(a, b int) bool {
		if scores[a].Gain != scores[b].Gain {
			return scores[a].Gain > scores[b].Gain
		}
		if scores[a].X != scores[b].X {
			return scores[a].X < scores[b].X
		}
		return scores[a].Y < scores[b].Y
	})
	return scores[0].X, scores[0].Y, scores, nil
}
