package core

import (
	"testing"

	"arcs/internal/obs"
)

// TestObsRunIDOnRootSpans checks the arcsd attribution contract: with
// Config.RunID set, every root span (init, run, and — via SegmentAll —
// thresholds) carries a run_id attribute, while child spans stay
// untouched so the probe hot path pays nothing.
func TestObsRunIDOnRootSpans(t *testing.T) {
	sink := &obs.MemSink{}
	sys := f2System(t, 6_000, 0, Config{
		NumBins: 20, Walk: walkBudget(),
		RunID:    "r000042",
		Observer: obs.New(sink),
	})
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"init", "run"} {
		spans := sink.Spans(name)
		if len(spans) != 1 {
			t.Fatalf("%d %q spans, want 1", len(spans), name)
		}
		if got := spans[0].Attr("run_id"); got != "r000042" {
			t.Errorf("%s span run_id = %q, want r000042", name, got)
		}
	}
	for _, name := range []string{"search", "probe", "mine-final"} {
		for _, sp := range sink.Spans(name) {
			if sp.Attr("run_id") != "" {
				t.Errorf("child span %q carries run_id; only roots should", name)
			}
		}
	}
}

// TestObsRunIDSegmentAllThresholds covers the thresholds root emitted
// by the shared-search SegmentAll path.
func TestObsRunIDSegmentAllThresholds(t *testing.T) {
	sink := &obs.MemSink{}
	sys := f2System(t, 6_000, 0, Config{
		NumBins: 20, Walk: walkBudget(),
		RunID:    "r7",
		Observer: obs.New(sink),
	})
	if _, err := sys.SegmentAll(); err != nil {
		t.Fatal(err)
	}
	spans := sink.Spans("thresholds")
	if len(spans) == 0 {
		t.Fatal("no thresholds root span emitted")
	}
	for _, sp := range spans {
		if got := sp.Attr("run_id"); got != "r7" {
			t.Errorf("thresholds span run_id = %q, want r7", got)
		}
	}
}

// TestObsRunIDEmptyAddsNothing pins the zero-cost contract: without a
// RunID, root spans carry exactly their call-site attributes.
func TestObsRunIDEmptyAddsNothing(t *testing.T) {
	sink := &obs.MemSink{}
	sys := f2System(t, 6_000, 0, Config{
		NumBins: 20, Walk: walkBudget(), Observer: obs.New(sink),
	})
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"init", "run"} {
		for _, sp := range sink.Spans(name) {
			if sp.Attr("run_id") != "" {
				t.Errorf("%s span has run_id with none configured", name)
			}
		}
	}
}
