package core

import (
	"context"
	"sync"
	"sync/atomic"

	"arcs/internal/obs"
)

// CacheStats reports probe-cache effectiveness — either for one run
// (Result.Cache) or cumulatively for a System (ProbeCacheStats).
type CacheStats struct {
	// Hits counts probes answered from the cache, including probes that
	// joined an in-flight computation (single-flight).
	Hits int
	// Misses counts probes that had to run the mine/cluster/verify
	// pipeline.
	Misses int
}

// Probes reports the total probes observed.
func (c CacheStats) Probes() int { return c.Hits + c.Misses }

// HitRate reports the fraction of probes served from cache, 0 when no
// probes were observed.
func (c CacheStats) HitRate() float64 {
	if c.Hits+c.Misses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Hits+c.Misses)
}

// probeKey identifies one threshold probe. Support and confidence are
// used verbatim: the optimizer probes either exact threshold-list values
// or factorial midpoints, both bit-stable across repeats.
type probeKey struct {
	seg       int
	sup, conf float64
}

type probeEntry struct {
	once sync.Once
	// ready flips after once completes. The hit path checks it before
	// touching once so no compute closure is ever constructed for a
	// settled entry — keeping warm probes at zero allocations.
	ready    atomic.Bool
	cost     float64
	numRules int
	err      error
}

// probeCache memoizes threshold evaluations per (criterion code,
// support, confidence) with single-flight semantics: when several
// goroutines (batched walk probes, concurrent SegmentAll runs, Anneal
// revisits) request the same probe, exactly one executes the pipeline
// and the rest block on its sync.Once and share the result. Memoization
// is sound because evaluateProbe is a pure function of the key for a
// fixed System: it reseeds its sampling RNG per call and only reads the
// immutable BinArray, sample, and verification index.
type probeCache struct {
	mu      sync.Mutex
	entries map[probeKey]*probeEntry

	hits, misses atomic.Int64

	// onHit/onMiss mirror the stats into the observer's metrics registry
	// when one is attached. They stay nil otherwise; obs.Counter methods
	// are nil-safe, so the hot path never branches on observability.
	onHit, onMiss *obs.Counter
}

func newProbeCache() *probeCache {
	return &probeCache{entries: make(map[probeKey]*probeEntry)}
}

// do returns the memoized evaluation for key, computing it at most once
// across all concurrent callers via s.safeEvaluateProbe. hit reports
// whether an entry already existed (possibly still in flight) when this
// caller arrived. Taking the System and span instead of a closure keeps
// the warm-hit path allocation-free: the compute closure is only built
// for entries that are not settled yet.
//
// Failed evaluations are never memoized: a cancellation or recovered
// panic settles the entry for the waiters that already joined it (they
// share the error), but the entry is then dropped so the next request
// recomputes instead of replaying a stale failure forever.
//
// The panic recovery sits INSIDE the compute call (safeEvaluateProbe):
// sync.Once marks itself done even when its function panics, so a
// recover outside the closure would leave a half-written entry that
// every waiter reads as a silent zero-cost success.
func (c *probeCache) do(ctx context.Context, s *System, parent obs.Span, key probeKey) (cost float64, numRules int, hit bool, err error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &probeEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if !e.ready.Load() {
		e.once.Do(func() {
			e.cost, e.numRules, e.err = s.safeEvaluateProbe(ctx, parent, key.seg, key.sup, key.conf)
			e.ready.Store(true)
		})
		if e.err != nil {
			c.mu.Lock()
			if c.entries[key] == e {
				delete(c.entries, key)
			}
			c.mu.Unlock()
		}
	}
	if ok {
		c.hits.Add(1)
		c.onHit.Inc()
	} else {
		c.misses.Add(1)
		c.onMiss.Inc()
	}
	return e.cost, e.numRules, ok, e.err
}

// reset drops all memoized probes (after Extend, or for cold-cache
// benchmarking). Stats are cumulative and survive resets.
func (c *probeCache) reset() {
	c.mu.Lock()
	c.entries = make(map[probeKey]*probeEntry)
	c.mu.Unlock()
}

func (c *probeCache) stats() CacheStats {
	return CacheStats{Hits: int(c.hits.Load()), Misses: int(c.misses.Load())}
}
