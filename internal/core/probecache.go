package core

import (
	"sync"
	"sync/atomic"
)

// CacheStats reports probe-cache effectiveness — either for one run
// (Result.Cache) or cumulatively for a System (ProbeCacheStats).
type CacheStats struct {
	// Hits counts probes answered from the cache, including probes that
	// joined an in-flight computation (single-flight).
	Hits int
	// Misses counts probes that had to run the mine/cluster/verify
	// pipeline.
	Misses int
}

// Probes reports the total probes observed.
func (c CacheStats) Probes() int { return c.Hits + c.Misses }

// HitRate reports the fraction of probes served from cache, 0 when no
// probes were observed.
func (c CacheStats) HitRate() float64 {
	if c.Hits+c.Misses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Hits+c.Misses)
}

// probeKey identifies one threshold probe. Support and confidence are
// used verbatim: the optimizer probes either exact threshold-list values
// or factorial midpoints, both bit-stable across repeats.
type probeKey struct {
	seg       int
	sup, conf float64
}

type probeEntry struct {
	once     sync.Once
	cost     float64
	numRules int
	err      error
}

// probeCache memoizes threshold evaluations per (criterion code,
// support, confidence) with single-flight semantics: when several
// goroutines (batched walk probes, concurrent SegmentAll runs, Anneal
// revisits) request the same probe, exactly one executes the pipeline
// and the rest block on its sync.Once and share the result. Memoization
// is sound because evaluateProbe is a pure function of the key for a
// fixed System: it reseeds its sampling RNG per call and only reads the
// immutable BinArray, sample, and verification index.
type probeCache struct {
	mu      sync.Mutex
	entries map[probeKey]*probeEntry

	hits, misses atomic.Int64
}

func newProbeCache() *probeCache {
	return &probeCache{entries: make(map[probeKey]*probeEntry)}
}

// do returns the memoized evaluation for key, computing it at most once
// across all concurrent callers. hit reports whether an entry already
// existed (possibly still in flight) when this caller arrived.
func (c *probeCache) do(key probeKey, compute func() (float64, int, error)) (cost float64, numRules int, hit bool, err error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &probeEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.cost, e.numRules, e.err = compute()
	})
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e.cost, e.numRules, ok, e.err
}

// reset drops all memoized probes (after Extend, or for cold-cache
// benchmarking). Stats are cumulative and survive resets.
func (c *probeCache) reset() {
	c.mu.Lock()
	c.entries = make(map[probeKey]*probeEntry)
	c.mu.Unlock()
}

func (c *probeCache) stats() CacheStats {
	return CacheStats{Hits: int(c.hits.Load()), Misses: int(c.misses.Load())}
}
