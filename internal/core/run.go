package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"arcs/internal/bitop"
	"arcs/internal/cancelcheck"
	"arcs/internal/engine"
	"arcs/internal/grid"
	"arcs/internal/mdl"
	"arcs/internal/obs"
	"arcs/internal/optimizer"
	"arcs/internal/rules"
	"arcs/internal/verify"
)

// bitopCluster adapts the BitOp call for the pipeline, keeping the
// presentation order stable. A nil st disables operation accounting.
func bitopCluster(bm *grid.Bitmap, minArea int, st *bitop.Stats) []grid.Rect {
	rects := bitop.Cluster(bm, bitop.Options{MinArea: minArea, Stats: st})
	bitop.SortRects(rects)
	return rects
}

// Result is the outcome of a full ARCS run for one criterion value.
type Result struct {
	// CritValue is the segmented group.
	CritValue string
	// Rules is the final segmentation.
	Rules []rules.ClusteredRule
	// MinSupport and MinConfidence are the thresholds the optimizer
	// settled on.
	MinSupport, MinConfidence float64
	// Cost is the MDL cost of the segmentation.
	Cost float64
	// Errors are the verification counts over the full sample.
	Errors verify.ErrorCounts
	// Evaluations is the number of threshold probes the search spent.
	Evaluations int
	// Trace records every probe, for reports and debugging.
	Trace []optimizer.Step
	// Cache reports how many of this run's probes were answered by the
	// System's memoized probe cache versus computed fresh.
	Cache CacheStats
	// Provenance summarizes the search trace: how many probes the
	// strategy issued, how they were classified, and how many were
	// answered from the probe cache.
	Provenance Provenance
	// Phases are the wall-clock durations of the run's top-level stages
	// (search, mine-final, verify-final), in execution order. Always
	// populated — the three time stamps cost nothing — so reports and
	// benchmarks get per-phase timings even without an Observer.
	Phases []PhaseTiming
	// Degraded reports that the threshold search was cut short by
	// cancellation and this result carries the best thresholds found up
	// to that point (re-mined and verified to completion — the final mine
	// and verify run detached from the canceled context). The
	// accompanying error is a RunError with Partial set.
	Degraded bool
	// FailedProbes counts search probes skipped after an isolated failure
	// (recovered panic); see optimizer.Best.Failures.
	FailedProbes int
	// Counts identifies the count backend the run read from and its
	// memory/disk footprint.
	Counts CountsInfo
}

// PhaseTiming is the wall-clock duration of one pipeline stage of a run.
type PhaseTiming struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// Provenance is the per-run summary of the threshold search: every probe
// the strategy issued, classified by outcome. It condenses Result.Trace
// into the numbers reports and regressions care about.
type Provenance struct {
	// Probes is the number of trace steps (== Result.Evaluations for the
	// built-in strategies).
	Probes int `json:"probes"`
	// Accepted counts probes that displaced the incumbent best.
	Accepted int `json:"accepted"`
	// ZeroRules counts probes whose segmentation produced no rules.
	ZeroRules int `json:"zero_rules"`
	// NoImprovement counts probes that produced rules but lost to the
	// incumbent.
	NoImprovement int `json:"no_improvement"`
	// CacheHits counts probes answered from the memoized probe cache,
	// as seen by the optimizer's batch path.
	CacheHits int `json:"cache_hits"`
}

// summarizeProvenance folds a search trace into its Provenance counts.
func summarizeProvenance(trace []optimizer.Step) Provenance {
	p := Provenance{Probes: len(trace)}
	for _, st := range trace {
		if st.Accepted {
			p.Accepted++
		}
		switch st.Reason {
		case optimizer.ReasonZeroRules:
			p.ZeroRules++
		case optimizer.ReasonNoImprovement:
			p.NoImprovement++
		}
		if st.CacheHit {
			p.CacheHits++
		}
	}
	return p
}

// timed runs fn as one top-level phase: it is appended to *phases,
// emitted as a span under parent (handed to fn so nested work can
// parent to it), and labeled for CPU profiles.
func (s *System) timed(parent obs.Span, phases *[]PhaseTiming, name string, fn func(obs.Span) error) error {
	sp := parent.Child(name)
	start := time.Now()
	var err error
	s.labeled(name, func() { err = fn(sp) })
	*phases = append(*phases, PhaseTiming{Name: name, Seconds: time.Since(start).Seconds()})
	sp.End()
	return err
}

// resetThresholdCache drops the Figure 10 indexes, forcing recomputation
// over the current BinArray counts (used after Extend).
func (s *System) resetThresholdCache() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.thresholds = make(map[int]*engine.Thresholds)
}

// ResetProbeCache drops every memoized probe evaluation. Extend calls it
// internally when the sample changes; benchmarks use it to measure
// cold-cache behavior. Cumulative stats are preserved.
func (s *System) ResetProbeCache() { s.probes.reset() }

// ProbeCacheStats reports cumulative probe-cache hits and misses over
// the System's lifetime (across runs and resets).
func (s *System) ProbeCacheStats() CacheStats { return s.probes.stats() }

// thresholdsFor caches the Figure 10 structure per criterion code.
// The cache is guarded so concurrent RunValue calls (SegmentAll) can
// share it.
func (s *System) thresholdsFor(seg int) (*engine.Thresholds, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if th, ok := s.thresholds[seg]; ok {
		return th, nil
	}
	tsp := s.obs.Root("thresholds", s.rootAttrs(obs.Int("seg", seg))...)
	th, err := engine.NewThresholds(s.ba, seg)
	if err != nil {
		tsp.End(obs.Str("error", err.Error()))
		return nil, err
	}
	s.thresholds[seg] = th
	tsp.End(obs.Int("supports", len(th.Supports())))
	return th, nil
}

// Objective adapts the system to one criterion code so the optimizer
// strategies can probe it. Objectives for different codes are
// independent and safe to drive concurrently: every probe only reads the
// BinArray and the verification sample.
func (s *System) Objective(label string) (optimizer.Objective, error) {
	seg, err := s.segCode(label)
	if err != nil {
		return nil, err
	}
	return &segObjective{sys: s, seg: seg}, nil
}

// segObjective drives one criterion code through the System. It also
// implements optimizer.ObjectiveBatch, fanning independent probes across
// a worker pool, and tracks per-run cache hits/misses for Result.Cache.
type segObjective struct {
	sys *System
	seg int
	// span is the enclosing search span (zero outside an observed
	// RunValue); probe batches and probes nest under it.
	span obs.Span
	// ctx/ck carry the run's cancellation scope into the probes. Both are
	// nil for uncancellable runs: ck's nil methods keep the hot path
	// branch-free beyond a single predictable comparison.
	ctx context.Context
	ck  *cancelcheck.Checker

	hits, misses atomic.Int64
}

// SupportLevels implements optimizer.Objective.
func (o *segObjective) SupportLevels() ([]float64, error) {
	th, err := o.sys.thresholdsFor(o.seg)
	if err != nil {
		return nil, err
	}
	return th.Supports(), nil
}

// ConfidenceLevels implements optimizer.Objective.
func (o *segObjective) ConfidenceLevels(support float64) ([]float64, error) {
	th, err := o.sys.thresholdsFor(o.seg)
	if err != nil {
		return nil, err
	}
	return th.ConfidencesAtOrAbove(support), nil
}

// Evaluate implements optimizer.Objective, memoized through the System's
// probe cache: concurrent and repeated requests for the same
// (seg, support, confidence) run the pipeline exactly once. Under a
// cancellable run the probe is refused once the context is canceled.
func (o *segObjective) Evaluate(minSup, minConf float64) (float64, int, error) {
	if err := o.ck.Err(); err != nil {
		return 0, 0, err
	}
	cost, n, _, err := o.evaluate(o.span, minSup, minConf)
	return cost, n, err
}

// evaluate is Evaluate with an explicit parent span for probe-level
// observability (the batch path nests probes under the batch span) and
// the cache-hit flag exposed for search provenance.
// With observability off this path performs zero allocations beyond the
// probe pipeline itself — the allocation test in obs_test.go enforces
// that for the warm-cache case.
func (o *segObjective) evaluate(parent obs.Span, minSup, minConf float64) (float64, int, bool, error) {
	s := o.sys
	if s.cfg.DisableProbeCache {
		cost, n, err := s.safeEvaluateProbe(o.ctx, parent, o.seg, minSup, minConf)
		o.misses.Add(1)
		return cost, n, false, err
	}
	cost, n, hit, err := s.probes.do(o.ctx, s, parent, probeKey{seg: o.seg, sup: minSup, conf: minConf})
	if hit {
		o.hits.Add(1)
	} else {
		o.misses.Add(1)
	}
	return cost, n, hit, err
}

// safeEvaluateProbe is the probe isolation layer: it runs the configured
// ProbeHook (the chaos-test fault seam) and the probe pipeline with a
// recover, so a panic anywhere inside one probe — including panics
// re-raised from bitop worker goroutines — fails only that probe. The
// recovered panic comes back as a *PanicError (stack attached, counted
// on probe_panics_recovered_total) which unwraps to
// optimizer.ErrProbeFailed so the search strategies skip the probe.
func (s *System) safeEvaluateProbe(ctx context.Context, parent obs.Span, seg int, minSup, minConf float64) (cost float64, numRules int, err error) {
	defer func() {
		if v := recover(); v != nil {
			stack := debug.Stack()
			// A bitop worker panic already carries the worker's stack —
			// prefer it over this goroutine's unwinding stack.
			if wp, ok := v.(*bitop.WorkerPanic); ok {
				stack = wp.Stack
				v = wp.Value
			}
			s.mPanics.Inc()
			cost, numRules = 0, 0
			err = &PanicError{Phase: "probe", Value: v, Stack: stack}
		}
	}()
	if s.cfg.ProbeHook != nil {
		s.cfg.ProbeHook(seg, minSup, minConf)
	}
	return s.evaluateProbe(ctx, parent, seg, minSup, minConf)
}

// poolDispatchMinCells is the grid-cost floor for parallel probe
// dispatch: a probe over an nx×ny grid smaller than this runs in
// microseconds, so spawning pool workers (goroutine startup, channel
// traffic, WaitGroup) costs more than it saves. Batches on grids below
// the floor evaluate inline on the calling goroutine. The value was
// picked from the feedbackloop bench, where batched-cold search on the
// default 50×50 demo grid ran at or below sequential: 64×64 = 4096
// cells sits just above the demo sizes that lose and below the scaled
// grids that win.
const poolDispatchMinCells = 4096

// batchWorkers sizes the probe pool for one batch adaptively: serial
// search and small batches aside, grids under poolDispatchMinCells
// cells skip pool dispatch entirely — on those, per-probe work is too
// cheap to amortize goroutine handoff.
func (o *segObjective) batchWorkers(probes int) int {
	if o.sys.cfg.SerialSearch {
		return 1
	}
	if ba := o.sys.ba; ba != nil && ba.NX()*ba.NY() < poolDispatchMinCells {
		return 1
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > probes {
		workers = probes
	}
	return workers
}

// EvaluateBatch implements optimizer.ObjectiveBatch: the probes are
// evaluated concurrently on up to GOMAXPROCS workers (one, when
// Config.SerialSearch is set or the grid is below the pool-dispatch
// cost floor) and returned in probe order. Each probe goes through the
// same memoized Evaluate as the sequential path, and every evaluation
// is a pure function of its thresholds, so the merged results are
// bit-identical to sequential evaluation.
func (o *segObjective) EvaluateBatch(probes []optimizer.Probe) []optimizer.ProbeResult {
	out := make([]optimizer.ProbeResult, len(probes))
	workers := o.batchWorkers(len(probes))
	sp := o.span.Child("probe-batch",
		obs.Int("probes", len(probes)), obs.Int("workers", workers))
	o.sys.mBatchSize.Observe(float64(len(probes)))
	o.sys.mPoolWork.Set(int64(workers))
	if workers <= 1 {
		for i, p := range probes {
			if err := o.ck.Err(); err != nil {
				// Canceled: refuse this and every later probe without
				// running the pipeline. The strategies stop at the first
				// cancellation error in merge order.
				out[i].Err = err
				continue
			}
			out[i].Cost, out[i].NumRules, out[i].CacheHit, out[i].Err = o.evaluate(sp, p.Support, p.Confidence)
		}
		sp.End()
		return out
	}
	next := make(chan int, len(probes))
	for i := range probes {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := o.ck.Err(); err != nil {
					// Canceled: stop starting probes; drain the queue
					// marking the rest refused so the merge sees the
					// cancellation in order.
					out[i].Err = err
					continue
				}
				o.sys.mQueueDepth.Set(int64(len(next)))
				p := probes[i]
				out[i].Cost, out[i].NumRules, out[i].CacheHit, out[i].Err = o.evaluate(sp, p.Support, p.Confidence)
			}
		}()
	}
	wg.Wait()
	o.sys.mQueueDepth.Set(0)
	sp.End()
	return out
}

// cacheStats snapshots the probes this objective has issued so far.
func (o *segObjective) cacheStats() CacheStats {
	return CacheStats{Hits: int(o.hits.Load()), Misses: int(o.misses.Load())}
}

// evaluateProbe mines and clusters at the thresholds, verifies against
// the pre-binned sample index with repeated k-of-n draws, and returns
// the MDL cost. Each evaluation reseeds its sampler so probes are
// compared on identical draws — which also makes the result a pure
// function of (seg, minSup, minConf), the property both the probe cache
// and the parallel batch path rely on. The probe emits a "probe" span
// with "mine"/"cluster"/"verify"/"mdl" children under parent; probes
// run only on cache misses, so the span cost sits beside a full mining
// pass.
func (s *System) evaluateProbe(ctx context.Context, parent obs.Span, seg int, minSup, minConf float64) (float64, int, error) {
	sp := parent.Child("probe",
		obs.Float("support", minSup), obs.Float("confidence", minConf))
	rs, err := s.mineAtSeg(sp, seg, minSup, minConf)
	if err != nil {
		sp.End()
		return 0, 0, err
	}
	if len(rs) == 0 {
		sp.End(obs.Int("rules", 0))
		return 0, 0, nil
	}
	vsp := sp.Child("verify",
		obs.Int("rules", len(rs)), obs.Int("rounds", s.cfg.SampleRounds))
	rng := rand.New(rand.NewSource(s.cfg.Seed + 1))
	var meanErrors float64
	s.labeled("verify", func() {
		meanErrors, _, err = s.vindex.MeasureRepeatedContext(ctx, rs, rng,
			s.cfg.SampleRounds, s.cfg.SampleK, seg)
	})
	vsp.End()
	if err != nil {
		sp.End()
		return 0, 0, err
	}
	// Scale the sampled error count up to the full sample so MDL costs
	// are comparable across sample sizes.
	scale := 1.0
	if s.cfg.SampleK > 0 && s.sample.Len() > 0 {
		k := s.cfg.SampleK
		if k > s.sample.Len() {
			k = s.sample.Len()
		}
		scale = float64(s.sample.Len()) / float64(k)
	}
	msp := sp.Child("mdl")
	bd, err := mdl.CostBreakdown(len(rs), meanErrors*scale, s.cfg.Weights)
	cost := bd.Total
	if err == nil && s.obs.Enabled() {
		s.mMDLCluster.Observe(bd.ClusterTerm)
		s.mMDLError.Observe(bd.ErrorTerm)
	}
	msp.End(obs.Float("cluster_term", bd.ClusterTerm),
		obs.Float("error_term", bd.ErrorTerm))
	if err != nil {
		sp.End()
		return 0, 0, err
	}
	sp.End(obs.Int("rules", len(rs)), obs.Float("cost", cost))
	return cost, len(rs), nil
}

// Run executes the full feedback loop for the configured criterion value.
func (s *System) Run() (*Result, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation; see RunValueContext
// for the degraded-result contract.
func (s *System) RunContext(ctx context.Context) (*Result, error) {
	if s.cfg.CritValue == "" {
		return nil, fmt.Errorf("core: Config.CritValue is required for Run; use SegmentAll for every value")
	}
	return s.RunValueContext(ctx, s.cfg.CritValue)
}

// RunValue executes the full feedback loop for an arbitrary criterion
// value, reusing the BinArray (no re-binning, §3.1). It is safe to call
// concurrently for different values.
func (s *System) RunValue(label string) (*Result, error) {
	return s.RunValueContext(context.Background(), label)
}

// RunValueContext is RunValue with cooperative cancellation and graceful
// degradation. When the context is canceled (or its deadline expires)
// mid-search, the run does not discard the work already done: if the
// search had an incumbent best, the final mine and verify execute
// DETACHED from the canceled context (they are bounded — one pipeline
// pass at known thresholds) and the call returns that best-so-far Result
// with Degraded set, alongside a *RunError{Phase: "search", Partial:
// true} wrapping the cancellation. Callers that only check err != nil
// stay correct — they just lose the partial result; callers that want it
// check RunError.Partial or Result != nil.
//
// Cancellation before any probe settles returns a nil Result and a
// non-partial RunError.
func (s *System) RunValueContext(ctx context.Context, label string) (*Result, error) {
	seg, err := s.segCode(label)
	if err != nil {
		return nil, err
	}
	root := s.obs.Root("run", s.rootAttrs(
		obs.Str("crit_value", label), obs.Int("seg", seg),
		obs.Str("strategy", s.cfg.Search.String()))...)
	var phases []PhaseTiming

	obj := &segObjective{sys: s, seg: seg, ctx: ctx, ck: cancelcheck.New(ctx)}
	var best optimizer.Best
	serr := s.timed(root, &phases, "search", func(sp obs.Span) error {
		obj.span = sp
		defer func() { obj.span = obs.Span{} }()
		switch s.cfg.Search {
		case SearchFixed:
			cost, n, err := obj.Evaluate(s.cfg.FixedMinSupport, s.cfg.FixedMinConfidence)
			if err != nil {
				return err
			}
			best = optimizer.Best{
				Support:     s.cfg.FixedMinSupport,
				Confidence:  s.cfg.FixedMinConfidence,
				Cost:        cost,
				NumRules:    n,
				Evaluations: 1,
				Trace: []optimizer.Step{{
					Support: s.cfg.FixedMinSupport, Confidence: s.cfg.FixedMinConfidence,
					Cost: cost, NumRules: n,
					Accepted: true, Reason: optimizer.ReasonFixed,
				}},
			}
			return nil
		case SearchWalk:
			best, err = s.cfg.Walk.OptimizeContext(ctx, obj)
		case SearchAnneal:
			best, err = s.cfg.Anneal.OptimizeContext(ctx, obj)
		case SearchFactorial:
			best, err = s.cfg.Factorial.OptimizeContext(ctx, obj)
		default:
			return fmt.Errorf("core: unknown search strategy %v", s.cfg.Search)
		}
		if err != nil {
			if cancelcheck.IsCancel(err) {
				return err // classified by the caller; keep the chain bare
			}
			return fmt.Errorf("core: optimizing %q: %w", label, err)
		}
		return nil
	})
	degraded := false
	if serr != nil {
		// Cancellation with an incumbent best degrades to a partial
		// result; everything else — including cancellation before any
		// probe produced rules — fails the run.
		if !cancelcheck.IsCancel(serr) || best.NumRules == 0 || math.IsInf(best.Cost, 1) {
			root.End(obs.Str("error", serr.Error()))
			if cancelcheck.IsCancel(serr) {
				return nil, &RunError{Phase: "search", Err: serr}
			}
			return nil, serr
		}
		degraded = true
		s.mDegraded.Inc()
	}
	s.annotateSearchTrace(best.Trace)

	// The final mine and verify run detached from ctx even on the
	// degraded path: re-mining at the chosen thresholds is one bounded
	// pipeline pass, and a Degraded result must still be internally
	// consistent (rules, error counts and cost all from the same
	// thresholds).
	var finalRules []rules.ClusteredRule
	if err := s.timed(root, &phases, "mine-final", func(sp obs.Span) error {
		var err error
		finalRules, err = s.mineAtSeg(sp, seg, best.Support, best.Confidence)
		return err
	}); err != nil {
		root.End()
		return nil, &RunError{Phase: "mine-final", Err: err}
	}
	var errs verify.ErrorCounts
	_ = s.timed(root, &phases, "verify-final", func(obs.Span) error {
		errs = s.vindex.Measure(finalRules, seg)
		return nil
	})
	root.End(obs.Int("rules", len(finalRules)), obs.Int("evaluations", best.Evaluations))
	res := &Result{
		CritValue:     label,
		Rules:         finalRules,
		MinSupport:    best.Support,
		MinConfidence: best.Confidence,
		Cost:          best.Cost,
		Errors:        errs,
		Evaluations:   best.Evaluations,
		Trace:         best.Trace,
		Cache:         obj.cacheStats(),
		Provenance:    summarizeProvenance(best.Trace),
		Phases:        phases,
		Degraded:      degraded,
		FailedProbes:  best.Failures,
		Counts:        s.countsInfo,
	}
	if degraded {
		return res, &RunError{Phase: "search", Err: serr, Partial: true}
	}
	return res, nil
}

// annotateSearchTrace replays the finished search trace into the span
// stream as structured "search.probe" events — one per probe, carrying
// the thresholds tried, the MDL cost, the accept/reject classification
// and whether the probe cache answered it. Emitted after the search so
// the hot probe path stays allocation-free; a disabled observer skips
// the whole replay.
func (s *System) annotateSearchTrace(trace []optimizer.Step) {
	if !s.obs.Enabled() {
		return
	}
	for i, st := range trace {
		accepted := "false"
		if st.Accepted {
			accepted = "true"
		}
		hit := "false"
		if st.CacheHit {
			hit = "true"
		}
		s.obs.Annotate("search.probe",
			obs.Int("step", i),
			obs.Float("support", st.Support),
			obs.Float("confidence", st.Confidence),
			obs.Float("cost", st.Cost),
			obs.Int("rules", st.NumRules),
			obs.Str("accepted", accepted),
			obs.Str("reason", st.Reason),
			obs.Str("cache_hit", hit))
	}
}

// SegmentAll runs the feedback loop for every value of the criterion
// attribute, exploiting the BinArray's nseg+1 layout: no re-binning is
// needed to segment a different group (§3.1). The per-value runs only
// read shared state, so they execute concurrently (bounded by
// GOMAXPROCS). Results are keyed by criterion label.
func (s *System) SegmentAll() (map[string]*Result, error) {
	return s.SegmentAllContext(context.Background())
}

// SegmentAllContext is SegmentAll with cooperative cancellation. The
// per-value runs share the context; on cancellation the map still holds
// every value whose run completed — including degraded best-so-far
// results from runs that were mid-search — and the error is a
// *RunError{Phase: "segment-all"} whose Partial flag reports whether the
// map is non-empty. Non-cancellation failures of any value fail the
// whole segmentation with a nil map, as before.
func (s *System) SegmentAllContext(ctx context.Context) (map[string]*Result, error) {
	labels := s.schema.At(s.critIdx).Categories()
	sort.Strings(labels)
	type outcome struct {
		res *Result
		err error
	}
	outcomes := make([]outcome, len(labels))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, label := range labels {
		wg.Add(1)
		go func(i int, label string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := s.RunValueContext(ctx, label)
			if err != nil && isNoThresholds(err) {
				// A group too small to support any rules is reported as
				// an empty result rather than failing the segmentation.
				res, err = &Result{CritValue: label}, nil
			}
			outcomes[i] = outcome{res: res, err: err}
		}(i, label)
	}
	wg.Wait()
	out := make(map[string]*Result, len(labels))
	var cancelErr error
	for i, label := range labels {
		res, err := outcomes[i].res, outcomes[i].err
		if err != nil {
			if cancelcheck.IsCancel(err) {
				if cancelErr == nil {
					cancelErr = err
				}
				// A degraded run still yields a usable result; a refused
				// run yields nothing for this label.
				if res != nil {
					out[label] = res
				}
				continue
			}
			return nil, err
		}
		out[label] = res
	}
	if cancelErr != nil {
		return out, &RunError{Phase: "segment-all", Err: cancelErr, Partial: len(out) > 0}
	}
	return out, nil
}

func isNoThresholds(err error) bool {
	return errors.Is(err, optimizer.ErrNoThresholds)
}
