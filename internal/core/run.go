package core

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"arcs/internal/bitop"
	"arcs/internal/engine"
	"arcs/internal/grid"
	"arcs/internal/mdl"
	"arcs/internal/optimizer"
	"arcs/internal/rules"
	"arcs/internal/verify"
)

// bitopCluster adapts the BitOp call for the pipeline, keeping the
// presentation order stable.
func bitopCluster(bm *grid.Bitmap, minArea int) []grid.Rect {
	rects := bitop.Cluster(bm, bitop.Options{MinArea: minArea})
	bitop.SortRects(rects)
	return rects
}

// Result is the outcome of a full ARCS run for one criterion value.
type Result struct {
	// CritValue is the segmented group.
	CritValue string
	// Rules is the final segmentation.
	Rules []rules.ClusteredRule
	// MinSupport and MinConfidence are the thresholds the optimizer
	// settled on.
	MinSupport, MinConfidence float64
	// Cost is the MDL cost of the segmentation.
	Cost float64
	// Errors are the verification counts over the full sample.
	Errors verify.ErrorCounts
	// Evaluations is the number of threshold probes the search spent.
	Evaluations int
	// Trace records every probe, for reports and debugging.
	Trace []optimizer.Step
}

// resetThresholdCache drops the Figure 10 indexes, forcing recomputation
// over the current BinArray counts (used after Extend).
func (s *System) resetThresholdCache() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.thresholds = make(map[int]*engine.Thresholds)
}

// thresholdsFor caches the Figure 10 structure per criterion code.
// The cache is guarded so concurrent RunValue calls (SegmentAll) can
// share it.
func (s *System) thresholdsFor(seg int) (*engine.Thresholds, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if th, ok := s.thresholds[seg]; ok {
		return th, nil
	}
	th, err := engine.NewThresholds(s.ba, seg)
	if err != nil {
		return nil, err
	}
	s.thresholds[seg] = th
	return th, nil
}

// Objective adapts the system to one criterion code so the optimizer
// strategies can probe it. Objectives for different codes are
// independent and safe to drive concurrently: every probe only reads the
// BinArray and the verification sample.
func (s *System) Objective(label string) (optimizer.Objective, error) {
	seg, err := s.segCode(label)
	if err != nil {
		return nil, err
	}
	return &segObjective{sys: s, seg: seg}, nil
}

type segObjective struct {
	sys *System
	seg int
}

// SupportLevels implements optimizer.Objective.
func (o *segObjective) SupportLevels() []float64 {
	th, err := o.sys.thresholdsFor(o.seg)
	if err != nil {
		return nil
	}
	return th.Supports()
}

// ConfidenceLevels implements optimizer.Objective.
func (o *segObjective) ConfidenceLevels(support float64) []float64 {
	th, err := o.sys.thresholdsFor(o.seg)
	if err != nil {
		return nil
	}
	return th.ConfidencesAtOrAbove(support)
}

// Evaluate implements optimizer.Objective: it mines and clusters at the
// thresholds, verifies against the sample with repeated k-of-n draws, and
// returns the MDL cost. Each evaluation reseeds its sampler so probes are
// compared on identical draws.
func (o *segObjective) Evaluate(minSup, minConf float64) (float64, int, error) {
	s := o.sys
	rs, err := s.mineAtSeg(o.seg, minSup, minConf)
	if err != nil {
		return 0, 0, err
	}
	if len(rs) == 0 {
		return 0, 0, nil
	}
	rng := rand.New(rand.NewSource(s.cfg.Seed + 1))
	meanErrors, _, err := verify.MeasureRepeated(rs, s.sample, rng,
		s.cfg.SampleRounds, s.cfg.SampleK, s.xIdx, s.yIdx, s.critIdx, o.seg)
	if err != nil {
		return 0, 0, err
	}
	// Scale the sampled error count up to the full sample so MDL costs
	// are comparable across sample sizes.
	scale := 1.0
	if s.cfg.SampleK > 0 && s.sample.Len() > 0 {
		k := s.cfg.SampleK
		if k > s.sample.Len() {
			k = s.sample.Len()
		}
		scale = float64(s.sample.Len()) / float64(k)
	}
	cost, err := mdl.Cost(len(rs), meanErrors*scale, s.cfg.Weights)
	if err != nil {
		return 0, 0, err
	}
	return cost, len(rs), nil
}

// Run executes the full feedback loop for the configured criterion value.
func (s *System) Run() (*Result, error) {
	if s.cfg.CritValue == "" {
		return nil, fmt.Errorf("core: Config.CritValue is required for Run; use SegmentAll for every value")
	}
	return s.RunValue(s.cfg.CritValue)
}

// RunValue executes the full feedback loop for an arbitrary criterion
// value, reusing the BinArray (no re-binning, §3.1). It is safe to call
// concurrently for different values.
func (s *System) RunValue(label string) (*Result, error) {
	seg, err := s.segCode(label)
	if err != nil {
		return nil, err
	}
	obj := &segObjective{sys: s, seg: seg}

	var best optimizer.Best
	switch s.cfg.Search {
	case SearchFixed:
		cost, n, err := obj.Evaluate(s.cfg.FixedMinSupport, s.cfg.FixedMinConfidence)
		if err != nil {
			return nil, err
		}
		best = optimizer.Best{
			Support:     s.cfg.FixedMinSupport,
			Confidence:  s.cfg.FixedMinConfidence,
			Cost:        cost,
			NumRules:    n,
			Evaluations: 1,
			Trace: []optimizer.Step{{
				Support: s.cfg.FixedMinSupport, Confidence: s.cfg.FixedMinConfidence,
				Cost: cost, NumRules: n,
			}},
		}
	case SearchWalk:
		best, err = s.cfg.Walk.Optimize(obj)
	case SearchAnneal:
		best, err = s.cfg.Anneal.Optimize(obj)
	case SearchFactorial:
		best, err = s.cfg.Factorial.Optimize(obj)
	default:
		return nil, fmt.Errorf("core: unknown search strategy %v", s.cfg.Search)
	}
	if err != nil {
		return nil, fmt.Errorf("core: optimizing %q: %w", label, err)
	}

	finalRules, err := s.mineAtSeg(seg, best.Support, best.Confidence)
	if err != nil {
		return nil, err
	}
	errs := verify.Measure(finalRules, s.sample, s.xIdx, s.yIdx, s.critIdx, seg)
	return &Result{
		CritValue:     label,
		Rules:         finalRules,
		MinSupport:    best.Support,
		MinConfidence: best.Confidence,
		Cost:          best.Cost,
		Errors:        errs,
		Evaluations:   best.Evaluations,
		Trace:         best.Trace,
	}, nil
}

// SegmentAll runs the feedback loop for every value of the criterion
// attribute, exploiting the BinArray's nseg+1 layout: no re-binning is
// needed to segment a different group (§3.1). The per-value runs only
// read shared state, so they execute concurrently (bounded by
// GOMAXPROCS). Results are keyed by criterion label.
func (s *System) SegmentAll() (map[string]*Result, error) {
	labels := s.schema.At(s.critIdx).Categories()
	sort.Strings(labels)
	type outcome struct {
		res *Result
		err error
	}
	outcomes := make([]outcome, len(labels))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, label := range labels {
		wg.Add(1)
		go func(i int, label string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := s.RunValue(label)
			if err != nil && isNoThresholds(err) {
				// A group too small to support any rules is reported as
				// an empty result rather than failing the segmentation.
				res, err = &Result{CritValue: label}, nil
			}
			outcomes[i] = outcome{res: res, err: err}
		}(i, label)
	}
	wg.Wait()
	out := make(map[string]*Result, len(labels))
	for i, label := range labels {
		if outcomes[i].err != nil {
			return nil, outcomes[i].err
		}
		out[label] = outcomes[i].res
	}
	return out, nil
}

func isNoThresholds(err error) bool {
	return errors.Is(err, optimizer.ErrNoThresholds)
}
