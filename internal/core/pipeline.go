package core

import (
	"context"

	"arcs/internal/obs"
)

// The construction pipeline is an explicit sequence of stages:
//
//	Ingest  — one sequential pass collecting axis statistics and the
//	          reservoir sample (order-dependent, so never parallel);
//	BinFit  — construct the axis binners from those statistics;
//	Count   — fill the count backend (dense, sharded, or fused with
//	          Ingest when the binners needed no fitting pass).
//
// The Search and Emit halves of a run have the same stage shape but
// live on the run path (run.go: search → mine-final → verify-final),
// where their timings also land in Result.Phases.
type stage struct {
	name string
	// skip drops the stage for this build (e.g. the Ingest pass when the
	// fused fast path covers it inside Count).
	skip bool
	// run does the work and returns the attributes its span ends with.
	run func(ctx context.Context) ([]obs.Attr, error)
}

// runStages executes the stages in order under parent: each gets its own
// child span and pprof phase label, polls ctx through the dataset
// layer's checkpoints, and aborts the pipeline on first failure with
// cancellations wrapped as RunError{Phase: "init"}.
func (s *System) runStages(ctx context.Context, parent obs.Span, stages []stage) error {
	for _, st := range stages {
		if st.skip {
			continue
		}
		sp := parent.Child(st.name)
		var attrs []obs.Attr
		var err error
		s.labeled(st.name, func() { attrs, err = st.run(ctx) })
		if err != nil {
			sp.End()
			return initErr(err)
		}
		sp.End(attrs...)
	}
	return nil
}
