package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"arcs/internal/dataset"
	"arcs/internal/stats"
)

// ingestStats is the Ingest stage's product: the observed axis ranges
// for the BinFit stage, plus the reservoir-sampled fit buffer that the
// quantile/supervised binners and the verification sample draw from.
type ingestStats struct {
	xLo, xHi, yLo, yHi float64
	buf                []dataset.Tuple
}

// sampler is the reservoir over the stream that both the standalone
// Ingest stage and the fused Ingest+Count pass feed. Seeding and offer
// order are identical on both paths, so the drawn sample — and with it
// every verification measurement — does not depend on which path ran.
type sampler struct {
	res *stats.Reservoir
	buf []dataset.Tuple
}

func (s *System) newSampler() *sampler {
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	fitSize := s.cfg.SampleSize
	if fitSize < 4096 {
		fitSize = 4096
	}
	return &sampler{
		res: stats.NewReservoir(rng, fitSize),
		buf: make([]dataset.Tuple, 0, fitSize),
	}
}

// observe offers one tuple to the reservoir, cloning kept tuples (the
// stream's buffer may be reused by the next row).
func (sm *sampler) observe(t dataset.Tuple) {
	if slot, keep := sm.res.Offer(); keep {
		if slot == len(sm.buf) {
			sm.buf = append(sm.buf, t.Clone())
		} else {
			sm.buf[slot] = t.Clone()
		}
	}
}

// stageIngest is the Ingest stage: one pass over the source collecting
// the axis min/max for binner fitting and the reservoir sample. It is
// sequential on purpose — reservoir sampling is order-dependent, so this
// pass defines the sample bit-for-bit; only the Count stage shards.
func (s *System) stageIngest(ctx context.Context, src dataset.Source) (*ingestStats, error) {
	sm := s.newSampler()
	ing := &ingestStats{
		xLo: math.Inf(1), xHi: math.Inf(-1),
		yLo: math.Inf(1), yHi: math.Inf(-1),
	}
	err := dataset.ForEachContext(ctx, src, func(t dataset.Tuple) error {
		if v := t[s.xIdx]; v < ing.xLo {
			ing.xLo = v
		}
		if v := t[s.xIdx]; v > ing.xHi {
			ing.xHi = v
		}
		if v := t[s.yIdx]; v < ing.yLo {
			ing.yLo = v
		}
		if v := t[s.yIdx]; v > ing.yHi {
			ing.yHi = v
		}
		sm.observe(t)
		return nil
	})
	if err != nil {
		return nil, err
	}
	ing.buf = sm.buf
	if err := s.buildSample(sm.buf); err != nil {
		return nil, err
	}
	return ing, nil
}

// buildSample installs the verifier's sample — a uniform subsample of
// the fit buffer — shared by the Ingest stage and the fused Count pass.
func (s *System) buildSample(buf []dataset.Tuple) error {
	if len(buf) == 0 {
		return fmt.Errorf("core: source yielded no tuples")
	}
	sample := dataset.NewTable(s.schema)
	limit := s.cfg.SampleSize
	if limit > len(buf) {
		limit = len(buf)
	}
	for _, t := range buf[:limit] {
		if err := sample.Append(t); err != nil {
			return err
		}
	}
	s.sample = sample
	return nil
}
