package core

import (
	"testing"

	"arcs/internal/obs"
	"arcs/internal/synth"
)

// TestObsCoreSpansAndMetrics runs the full pipeline with an in-memory
// sink attached and checks the emitted span tree against the taxonomy
// documented in internal/obs, plus the registry counters against the
// run's own cache stats.
func TestObsCoreSpansAndMetrics(t *testing.T) {
	sink := &obs.MemSink{}
	observer := obs.New(sink)
	sys := f2System(t, 6_000, 0, Config{
		NumBins: 20, Walk: walkBudget(), Observer: observer,
	})
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}

	one := func(name string) obs.Event {
		t.Helper()
		spans := sink.Spans(name)
		if len(spans) != 1 {
			t.Fatalf("%d %q spans, want exactly 1", len(spans), name)
		}
		return spans[0]
	}

	// System construction: init with its stage children.
	init := one("init")
	for _, name := range []string{"ingest", "binfit", "count", "verify-index"} {
		if sp := one(name); sp.Parent != init.ID {
			t.Errorf("%q span parent = %d, want init span %d", name, sp.Parent, init.ID)
		}
	}
	if got := one("count").Attr("tuples"); got == "" || got == "0" {
		t.Errorf("count span tuples attr = %q, want a positive count", got)
	}
	if got := one("count").Attr("backend"); got != "dense" {
		t.Errorf("count span backend attr = %q, want %q", got, "dense")
	}

	// The run itself: run → search/mine-final/verify-final, with
	// probe-batch → probe → mine/cluster/verify/mdl under search.
	runSpan := one("run")
	if got := runSpan.Attr("crit_value"); got != synth.GroupA {
		t.Errorf("run span crit_value = %q, want %q", got, synth.GroupA)
	}
	search := one("search")
	for _, name := range []string{"search", "mine-final", "verify-final"} {
		if sp := one(name); sp.Parent != runSpan.ID {
			t.Errorf("%q span parent = %d, want run span %d", name, sp.Parent, runSpan.ID)
		}
	}
	batches := sink.Spans("probe-batch")
	if len(batches) == 0 {
		t.Fatal("no probe-batch spans emitted")
	}
	batchIDs := map[uint64]bool{}
	for _, b := range batches {
		if b.Parent != search.ID {
			t.Errorf("probe-batch span parent = %d, want search span %d", b.Parent, search.ID)
		}
		batchIDs[b.ID] = true
	}
	probes := sink.Spans("probe")
	if len(probes) != res.Cache.Misses {
		t.Errorf("%d probe spans, want one per cache miss (%d)", len(probes), res.Cache.Misses)
	}
	probeIDs := map[uint64]bool{}
	for _, p := range probes {
		if !batchIDs[p.Parent] {
			t.Errorf("probe span %d parented to %d, not a probe-batch span", p.ID, p.Parent)
		}
		probeIDs[p.ID] = true
	}
	// verify and mdl happen once per probe; mine and cluster additionally
	// run once more under mine-final for the winning thresholds.
	mineFinal := one("mine-final")
	for _, name := range []string{"mine", "cluster", "verify", "mdl"} {
		stages := sink.Spans(name)
		want := len(probes)
		if name == "mine" || name == "cluster" {
			want++
		}
		if len(stages) != want {
			t.Errorf("%d %q spans, want %d", len(stages), name, want)
		}
		for _, sp := range stages {
			if !probeIDs[sp.Parent] && sp.Parent != mineFinal.ID {
				t.Errorf("%q span %d parented to %d, not a probe or mine-final span", name, sp.ID, sp.Parent)
			}
		}
	}

	// Metrics: cache counters mirror the run's cache stats, the verify
	// fast path carried every mined rule, and the probe phase histogram
	// saw one observation per evaluation.
	snap := observer.Registry().Snapshot()
	if got := snap.Counters["probe_cache_misses_total"]; got != int64(res.Cache.Misses) {
		t.Errorf("probe_cache_misses_total = %d, want %d", got, res.Cache.Misses)
	}
	if got := snap.Counters["probe_cache_hits_total"]; got != int64(res.Cache.Hits) {
		t.Errorf("probe_cache_hits_total = %d, want %d", got, res.Cache.Hits)
	}
	if got := snap.Counters["verify_fastpath_rules_total"]; got == 0 {
		t.Error("verify_fastpath_rules_total = 0, want > 0")
	}
	if got := snap.Counters["verify_fallback_rules_total"]; got != 0 {
		t.Errorf("verify_fallback_rules_total = %d, want 0 for mined rules", got)
	}
	if got := snap.Histograms["phase_probe_seconds"].Count; got != int64(len(probes)) {
		t.Errorf("phase_probe_seconds count = %d, want %d", got, len(probes))
	}

	// Stage-level metrics lit up by the data-plane instrumentation:
	// BitOp operation accounting, cluster geometry, MDL term breakdown
	// and the bin-phase occupancy scan.
	for _, name := range []string{
		"bitop_and_word_ops_total", "bitop_cmp_word_ops_total",
		"bitop_candidates_total", "bitop_rounds_total",
	} {
		if got := snap.Counters[name]; got <= 0 {
			t.Errorf("%s = %d, want > 0", name, got)
		}
	}
	for _, name := range []string{
		"bin_cell_occupancy", "cluster_rect_area", "cluster_rect_width",
		"cluster_rect_height", "mdl_cluster_term_bits", "mdl_error_term_bits",
	} {
		if got := snap.Histograms[name].Count; got <= 0 {
			t.Errorf("histogram %s count = %d, want > 0", name, got)
		}
	}
	for _, name := range []string{"binarray_mem_bytes", "bin_cells_total"} {
		if got := snap.Gauges[name]; got <= 0 {
			t.Errorf("gauge %s = %d, want > 0", name, got)
		}
	}

	// The binfit span carries the fitted methods; the count span carries
	// the occupancy attributes from the post-build cell scan.
	binfit := one("binfit")
	for _, attr := range []string{"method_x", "method_y"} {
		if binfit.Attr(attr) == "" {
			t.Errorf("binfit span missing %q attr", attr)
		}
	}
	count := one("count")
	for _, attr := range []string{"empty_fraction", "occupied_cells", "mem_bytes"} {
		if count.Attr(attr) == "" {
			t.Errorf("count span missing %q attr", attr)
		}
	}
	// The Figure 10 threshold structure is built exactly once per segment
	// and announces its support-level count.
	if th := one("thresholds"); th.Attr("supports") == "" || th.Attr("supports") == "0" {
		t.Errorf("thresholds span supports attr = %q, want a positive count", th.Attr("supports"))
	}
	// Every cluster span carries the BitOp accounting attrs.
	for _, sp := range sink.Spans("cluster") {
		if sp.Attr("and_word_ops") == "" || sp.Attr("rounds") == "" {
			t.Errorf("cluster span %d missing BitOp accounting attrs", sp.ID)
		}
	}

	// Search provenance: one structured search.probe event per trace
	// step, and the Result summary folds the trace's classifications.
	var probeEvents []obs.Event
	for _, ev := range sink.Events() {
		if ev.Type == obs.EventInstant && ev.Name == "search.probe" {
			probeEvents = append(probeEvents, ev)
		}
	}
	if len(probeEvents) != len(res.Trace) {
		t.Fatalf("%d search.probe events, want one per trace step (%d)", len(probeEvents), len(res.Trace))
	}
	for i, ev := range probeEvents {
		for _, attr := range []string{"support", "confidence", "cost", "rules", "accepted", "reason", "cache_hit"} {
			if ev.Attr(attr) == "" {
				t.Errorf("search.probe event %d missing %q attr", i, attr)
			}
		}
	}
	p := res.Provenance
	if p.Probes != res.Evaluations {
		t.Errorf("Provenance.Probes = %d, want Evaluations %d", p.Probes, res.Evaluations)
	}
	if p.Accepted == 0 {
		t.Error("Provenance.Accepted = 0, want at least the winning probe")
	}
	if p.Accepted+p.ZeroRules+p.NoImprovement != p.Probes {
		t.Errorf("Provenance classifications %d+%d+%d != probes %d",
			p.Accepted, p.ZeroRules, p.NoImprovement, p.Probes)
	}

	// A warm re-run adds hits but no new probe spans: every probe is
	// answered from the cache without re-entering the pipeline.
	res2, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cache.Misses != 0 {
		t.Fatalf("warm re-run missed %d probes", res2.Cache.Misses)
	}
	if got := len(sink.Spans("probe")); got != len(probes) {
		t.Errorf("warm re-run grew probe spans %d -> %d, want unchanged", len(probes), got)
	}
	snap2 := observer.Registry().Snapshot()
	want := int64(res.Cache.Hits + res2.Cache.Hits)
	if got := snap2.Counters["probe_cache_hits_total"]; got != want {
		t.Errorf("probe_cache_hits_total after re-run = %d, want %d", got, want)
	}
}

// TestObsRunPhasesAlwaysPopulated: Result.Phases carries the stage
// timings even with no Observer configured.
func TestObsRunPhasesAlwaysPopulated(t *testing.T) {
	sys := f2System(t, 4_000, 0, Config{NumBins: 15, Walk: walkBudget()})
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"search", "mine-final", "verify-final"}
	if len(res.Phases) != len(want) {
		t.Fatalf("Phases = %+v, want %v", res.Phases, want)
	}
	for i, name := range want {
		if res.Phases[i].Name != name {
			t.Errorf("Phases[%d].Name = %q, want %q", i, res.Phases[i].Name, name)
		}
		if res.Phases[i].Seconds < 0 {
			t.Errorf("Phases[%d].Seconds = %g, want >= 0", i, res.Phases[i].Seconds)
		}
	}
}

// TestObsDisabledProbeZeroAlloc is the acceptance gate for the nil
// observer: a warm-cache threshold probe must not allocate at all when
// observability is off.
func TestObsDisabledProbeZeroAlloc(t *testing.T) {
	sys := f2System(t, 4_000, 0, Config{NumBins: 15, Walk: walkBudget()})
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := sys.Objective(synth.GroupA)
	if err != nil {
		t.Fatal(err)
	}
	sup, conf := res.MinSupport, res.MinConfidence
	if allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := obj.Evaluate(sup, conf); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("warm probe with nil observer allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkProbeObserverOverhead measures the warm-cache probe path with
// observability off and on. The disabled case must report 0 allocs/op;
// the enabled case shows the cost of the counters (no span is created
// for a cache hit).
func BenchmarkProbeObserverOverhead(b *testing.B) {
	bench := func(b *testing.B, observer *obs.Observer) {
		gen, err := synth.New(synth.Config{
			Function: 2, N: 4_000, Seed: 42, Perturbation: 0.05, FracA: 0.4,
		})
		if err != nil {
			b.Fatal(err)
		}
		sys, err := New(gen, Config{
			XAttr: synth.AttrAge, YAttr: synth.AttrSalary,
			CritAttr: synth.AttrGroup, CritValue: synth.GroupA,
			NumBins: 15, Walk: walkBudget(), Observer: observer,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		obj, err := sys.Objective(synth.GroupA)
		if err != nil {
			b.Fatal(err)
		}
		sup, conf := res.MinSupport, res.MinConfidence
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := obj.Evaluate(sup, conf); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { bench(b, nil) })
	b.Run("enabled", func(b *testing.B) { bench(b, obs.New(&obs.MemSink{})) })
}
