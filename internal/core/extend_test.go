package core

import (
	"testing"

	"arcs/internal/dataset"
	"arcs/internal/synth"
)

func extSystem(t *testing.T, n int) *System {
	t.Helper()
	gen, err := synth.New(synth.Config{Function: 2, N: n, Seed: 1, FracA: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(gen, Config{
		XAttr: synth.AttrAge, YAttr: synth.AttrSalary,
		CritAttr: synth.AttrGroup, CritValue: synth.GroupA,
		NumBins: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestExtendAddsData(t *testing.T) {
	sys := extSystem(t, 5_000)
	before := sys.BinArray().N()

	// A fresh generator has a structurally identical schema (different
	// instance): Extend must remap category codes by label.
	more, err := synth.New(synth.Config{Function: 2, N: 3_000, Seed: 2, FracA: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Extend(more); err != nil {
		t.Fatal(err)
	}
	if got := sys.BinArray().N(); got != before+3_000 {
		t.Errorf("N = %d, want %d", got, before+3_000)
	}
	rs, err := sys.MineAt(0.0001, 0.39)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Error("no rules after Extend")
	}
	// Full feedback loop still works (threshold cache was invalidated).
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) == 0 {
		t.Error("Run found no rules after Extend")
	}
	if res.Errors.Rate() > 0.15 {
		t.Errorf("error rate after Extend = %.2f%%", 100*res.Errors.Rate())
	}
}

func TestExtendSampleStaysBounded(t *testing.T) {
	sys := extSystem(t, 5_000)
	capacity := sys.Sample().Len()
	more, _ := synth.New(synth.Config{Function: 2, N: 10_000, Seed: 3, FracA: 0.4})
	if err := sys.Extend(more); err != nil {
		t.Fatal(err)
	}
	if sys.Sample().Len() > 5_000 {
		t.Errorf("sample grew to %d", sys.Sample().Len())
	}
	if sys.Sample().Len() < capacity {
		t.Errorf("sample shrank from %d to %d", capacity, sys.Sample().Len())
	}
}

func TestExtendRejectsIncompatibleSchema(t *testing.T) {
	sys := extSystem(t, 1_000)
	// Wrong width.
	narrow := dataset.NewTable(dataset.NewSchema(
		dataset.Attribute{Name: "age", Kind: dataset.Quantitative},
	))
	narrow.MustAppend(dataset.Tuple{1})
	if err := sys.Extend(narrow); err == nil {
		t.Error("narrow schema should be rejected")
	}
	// Same width, wrong attribute name.
	wrong := synth.NewSchema()
	tb := dataset.NewTable(wrong)
	// Build a schema with a renamed attribute by hand.
	renamed := dataset.NewSchema(
		dataset.Attribute{Name: "WRONG", Kind: dataset.Quantitative},
		dataset.Attribute{Name: synth.AttrCommission, Kind: dataset.Quantitative},
		dataset.Attribute{Name: synth.AttrAge, Kind: dataset.Quantitative},
		dataset.Attribute{Name: synth.AttrELevel, Kind: dataset.Categorical},
		dataset.Attribute{Name: synth.AttrCar, Kind: dataset.Categorical},
		dataset.Attribute{Name: synth.AttrZipcode, Kind: dataset.Categorical},
		dataset.Attribute{Name: synth.AttrHValue, Kind: dataset.Quantitative},
		dataset.Attribute{Name: synth.AttrHYears, Kind: dataset.Quantitative},
		dataset.Attribute{Name: synth.AttrLoan, Kind: dataset.Quantitative},
		dataset.Attribute{Name: synth.AttrGroup, Kind: dataset.Categorical},
	)
	tb2 := dataset.NewTable(renamed)
	tb2.MustAppend(make(dataset.Tuple, renamed.Len()))
	if err := sys.Extend(tb2); err == nil {
		t.Error("renamed attribute should be rejected")
	}
	_ = tb
}

func TestExtendRejectsUnknownCriterionLabel(t *testing.T) {
	sys := extSystem(t, 1_000)
	// A structurally identical schema whose group dictionary holds an
	// extra label unknown to the system.
	schema := synth.NewSchema()
	schema.Attr(synth.AttrGroup).CategoryCode("mystery")
	tb := dataset.NewTable(schema)
	row := make(dataset.Tuple, schema.Len())
	code, _ := schema.Attr(synth.AttrGroup).LookupCategory("mystery")
	row[schema.MustIndex(synth.AttrGroup)] = float64(code)
	row[schema.MustIndex(synth.AttrAge)] = 30
	row[schema.MustIndex(synth.AttrSalary)] = 50_000
	tb.MustAppend(row)
	if err := sys.Extend(tb); err == nil {
		t.Error("unknown criterion label should be rejected")
	}
}

func TestExtendDeterministic(t *testing.T) {
	run := func() uint64 {
		sys := extSystem(t, 2_000)
		more, _ := synth.New(synth.Config{Function: 2, N: 1_000, Seed: 9, FracA: 0.4})
		if err := sys.Extend(more); err != nil {
			t.Fatal(err)
		}
		return sys.BinArray().N()
	}
	if run() != run() {
		t.Error("Extend is not deterministic")
	}
}
