package core

import (
	"fmt"
	"math/rand"

	"arcs/internal/counts"
	"arcs/internal/dataset"
)

// Extend folds additional tuples into an existing system: the new data
// is binned through the already-fitted binners into the same BinArray,
// and the verification sample is refreshed by continuing the reservoir
// over the combined stream. Because the BinArray is additive, no prior
// data is re-read — the incremental counterpart of the paper's
// single-pass design, for segmentations that must track a growing table.
//
// The source's schema must be structurally compatible with the system's:
// same attribute names and kinds in the same order. Category codes of
// the criterion attribute (and of a categorical LHS attribute) are
// remapped by label; labels the original dictionary does not know are
// rejected, because the BinArray's axes are fixed at construction.
//
// The binners are NOT refitted: values outside the originally observed
// domain clamp into the edge bins. If the data distribution drifts far
// from the fit, build a fresh System instead. Cached threshold indexes
// are invalidated; the next Run recomputes them over the combined
// counts.
//
// Extend must not be called concurrently with RunValue/SegmentAll.
func (s *System) Extend(src dataset.Source) error {
	remaps, err := s.compatibleRemaps(src.Schema())
	if err != nil {
		return err
	}
	adder, ok := counts.AsAdder(s.ba)
	if !ok {
		return fmt.Errorf("core: count backend %T does not support incremental extension", s.ba)
	}
	nseg := s.ba.NSeg()
	// Continue reservoir sampling over the logical concatenation of the
	// original stream and the extension, so the sample stays uniform
	// over everything seen. The original stream length seeds the "seen"
	// counter.
	rng := rand.New(rand.NewSource(s.cfg.Seed + int64(s.ba.N())))
	seen := int(s.ba.N())
	capacity := s.cfg.SampleSize
	buf := make(dataset.Tuple, s.schema.Len())
	err = dataset.ForEach(src, func(t dataset.Tuple) error {
		if len(t) != s.schema.Len() {
			return dataset.ErrSchemaMismatch
		}
		copy(buf, t)
		for idx, remap := range remaps {
			code := int(t[idx])
			if code < 0 || code >= len(remap) {
				return fmt.Errorf("core: attribute %q category code %d out of range in extension data",
					s.schema.At(idx).Name, code)
			}
			mapped := remap[code]
			if mapped < 0 {
				return fmt.Errorf("core: attribute %q value %q is not in the original dictionary; rebuild the system to admit it",
					s.schema.At(idx).Name, src.Schema().At(idx).Category(code))
			}
			buf[idx] = float64(mapped)
		}
		seg := int(buf[s.critIdx])
		if seg < 0 || seg >= nseg {
			return fmt.Errorf("core: criterion value %d outside the original dictionary (0..%d)", seg, nseg-1)
		}
		adder.Add(s.xb.Bin(buf[s.xIdx]), s.yb.Bin(buf[s.yIdx]), seg)

		// Algorithm-R continuation over the combined stream.
		seen++
		if s.sample.Len() < capacity {
			return s.sample.Append(buf.Clone())
		}
		if j := rng.Intn(seen); j < s.sample.Len() {
			copy(s.sample.Row(j), buf)
		}
		return nil
	})
	if err != nil {
		return err
	}
	s.resetThresholdCache()
	// The sample rows and BinArray counts changed: memoized probes are
	// stale and the verification index must be rebuilt over the updated
	// sample.
	s.ResetProbeCache()
	return s.buildVerifyIndex()
}

// compatibleRemaps validates structural schema compatibility and builds
// category-code remaps (source code -> system code, -1 for unknown) for
// the attributes whose codes the pipeline interprets: the criterion and
// any categorical LHS attribute. Identical schema instances need no
// remapping.
func (s *System) compatibleRemaps(other *dataset.Schema) (map[int][]int, error) {
	if other == s.schema {
		return nil, nil
	}
	if other.Len() != s.schema.Len() {
		return nil, fmt.Errorf("core: extension schema has %d attributes, system has %d",
			other.Len(), s.schema.Len())
	}
	for i := 0; i < s.schema.Len(); i++ {
		a, b := s.schema.At(i), other.At(i)
		if a.Name != b.Name || a.Kind != b.Kind {
			return nil, fmt.Errorf("core: extension attribute %d is %s/%v, system expects %s/%v",
				i, b.Name, b.Kind, a.Name, a.Kind)
		}
	}
	remaps := make(map[int][]int)
	needs := []int{s.critIdx}
	if s.xCat {
		needs = append(needs, s.xIdx)
	}
	if s.yCat {
		needs = append(needs, s.yIdx)
	}
	for _, idx := range needs {
		mine, theirs := s.schema.At(idx), other.At(idx)
		remap := make([]int, theirs.NumCategories())
		for code := range remap {
			if myCode, ok := mine.LookupCategory(theirs.Category(code)); ok {
				remap[code] = myCode
			} else {
				remap[code] = -1
			}
		}
		remaps[idx] = remap
	}
	return remaps, nil
}
