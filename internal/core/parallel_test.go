package core

import (
	"reflect"
	"runtime"
	"sync"
	"testing"

	"arcs/internal/optimizer"
	"arcs/internal/synth"
)

// stripCache zeroes the fields that legitimately differ between a cached
// and an uncached run — cache stats (aggregate, per-step and in the
// provenance summary) and wall-clock phase timings — leaving everything
// the search and pipeline produced.
func stripCache(r *Result) *Result {
	c := *r
	c.Cache = CacheStats{}
	c.Phases = nil
	c.Provenance.CacheHits = 0
	c.Trace = append([]optimizer.Step(nil), r.Trace...)
	for i := range c.Trace {
		c.Trace[i].CacheHit = false
	}
	return &c
}

// TestParallelSearchMatchesSequential is the tentpole determinism
// contract at the system level: for every search strategy, the batched,
// cached, worker-pool path must return bit-identical Best thresholds,
// Cost, Trace, and final Rules to the serial, uncached path.
func TestParallelSearchMatchesSequential(t *testing.T) {
	searches := map[string]Config{
		"walk": {Search: SearchWalk,
			Walk: walkBudget()},
		"anneal": {Search: SearchAnneal,
			Anneal: annealBudget()},
		"factorial": {Search: SearchFactorial,
			Factorial: factorialBudget()},
	}
	for name, cfg := range searches {
		t.Run(name, func(t *testing.T) {
			serialCfg := cfg
			serialCfg.NumBins = 20
			serialCfg.SerialSearch = true
			serialCfg.DisableProbeCache = true
			seq := f2System(t, 8_000, 0.05, serialCfg)
			seqRes, err := seq.Run()
			if err != nil {
				t.Fatal(err)
			}

			parCfg := cfg
			parCfg.NumBins = 20
			par := f2System(t, 8_000, 0.05, parCfg)
			parRes, err := par.Run()
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(stripCache(seqRes), stripCache(parRes)) {
				t.Errorf("parallel result differs from sequential:\nseq: %+v\npar: %+v", seqRes, parRes)
			}
		})
	}
}

func annealBudget() optimizer.Anneal {
	return optimizer.Anneal{Seed: 5, Iterations: 40}
}

func factorialBudget() optimizer.Factorial {
	return optimizer.Factorial{Rounds: 5}
}

// TestProbeCacheAcrossRuns: repeating a run on the same System must be
// answered entirely from the cache, with an identical Result.
func TestProbeCacheAcrossRuns(t *testing.T) {
	sys := f2System(t, 8_000, 0.05, Config{NumBins: 20, Search: SearchWalk, Walk: walkBudget()})
	first, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if first.Cache.Misses == 0 || first.Cache.Hits != 0 {
		t.Errorf("first run cache stats = %+v, want all misses", first.Cache)
	}
	second, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if second.Cache.Misses != 0 || second.Cache.Hits != second.Evaluations {
		t.Errorf("second run cache stats = %+v over %d evaluations, want all hits",
			second.Cache, second.Evaluations)
	}
	if !reflect.DeepEqual(stripCache(first), stripCache(second)) {
		t.Error("cached re-run differs from the original")
	}
	if got := sys.ProbeCacheStats(); got.Probes() != first.Cache.Probes()+second.Cache.Probes() {
		t.Errorf("system stats %+v do not aggregate run stats %+v + %+v", got, first.Cache, second.Cache)
	}

	// After a reset the same probes must recompute to the same values.
	sys.ResetProbeCache()
	third, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if third.Cache.Misses == 0 {
		t.Errorf("post-reset run cache stats = %+v, want misses", third.Cache)
	}
	if !reflect.DeepEqual(stripCache(first), stripCache(third)) {
		t.Error("post-reset re-run differs from the original")
	}
}

// TestProbeCacheConcurrentStress hammers the single-flight probe cache:
// SegmentAll (one goroutine per criterion value) racing additional
// RunValue goroutines for the same values, on one shared System. Run
// under -race in CI; also asserts every path returns the same results.
func TestProbeCacheConcurrentStress(t *testing.T) {
	cfg := Config{NumBins: 15, Search: SearchWalk,
		Walk: walkBudget(), SampleSize: 600}
	sys := f2System(t, 6_000, 0.05, cfg)
	labels := []string{synth.GroupA, synth.GroupOther}

	// Reference results computed alone, on an identical System.
	refSys := f2System(t, 6_000, 0.05, cfg)
	refs := make(map[string]*Result, len(labels))
	for _, l := range labels {
		r, err := refSys.RunValue(l)
		if err != nil {
			t.Fatal(err)
		}
		refs[l] = r
	}

	const runsPerLabel = 4
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []string
	check := func(l string, res *Result, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			failures = append(failures, err.Error())
			return
		}
		if !reflect.DeepEqual(stripCache(refs[l]), stripCache(res)) {
			failures = append(failures, "result for "+l+" differs across concurrent runs")
		}
	}
	for i := 0; i < runsPerLabel; i++ {
		for _, l := range labels {
			wg.Add(1)
			go func(l string) {
				defer wg.Done()
				res, err := sys.RunValue(l)
				check(l, res, err)
			}(l)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			all, err := sys.SegmentAll()
			if err != nil {
				mu.Lock()
				failures = append(failures, err.Error())
				mu.Unlock()
				return
			}
			for _, l := range labels {
				check(l, all[l], nil)
			}
		}()
	}
	wg.Wait()
	for _, f := range failures {
		t.Error(f)
	}

	// Every probe beyond the first computation of each key must have hit
	// the cache: exactly one miss per distinct probe across the storm.
	st := sys.ProbeCacheStats()
	if st.Hits == 0 {
		t.Errorf("concurrent stress produced no cache hits: %+v", st)
	}
	ref := refSys.ProbeCacheStats()
	if st.Misses != ref.Misses {
		t.Errorf("distinct probes computed = %d, solo reference computed %d", st.Misses, ref.Misses)
	}
}

// TestBatchDispatchAdaptive pins the grid-cost floor for probe-pool
// dispatch: a small grid evaluates batches inline (one worker — pool
// handoff costs more than a cheap probe), while a grid at or above
// poolDispatchMinCells cells fans out to GOMAXPROCS workers.
func TestBatchDispatchAdaptive(t *testing.T) {
	small := f2System(t, 2_000, 0, Config{NumBins: 20, Walk: walkBudget()})
	obj, err := small.Objective(synth.GroupA)
	if err != nil {
		t.Fatal(err)
	}
	if got := obj.(*segObjective).batchWorkers(8); got != 1 {
		t.Errorf("20×20 grid batch workers = %d, want 1 (inline, below pool floor)", got)
	}

	big := f2System(t, 2_000, 0, Config{NumBins: 64, Walk: walkBudget()})
	obj, err = big.Objective(synth.GroupA)
	if err != nil {
		t.Fatal(err)
	}
	want := runtime.GOMAXPROCS(0)
	if want > 8 {
		want = 8
	}
	if got := obj.(*segObjective).batchWorkers(8); got != want {
		t.Errorf("64×64 grid batch workers = %d, want %d", got, want)
	}

	serial := f2System(t, 2_000, 0, Config{NumBins: 64, Walk: walkBudget(), SerialSearch: true})
	obj, err = serial.Objective(synth.GroupA)
	if err != nil {
		t.Fatal(err)
	}
	if got := obj.(*segObjective).batchWorkers(8); got != 1 {
		t.Errorf("SerialSearch batch workers = %d, want 1", got)
	}
}
