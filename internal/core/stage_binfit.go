package core

import (
	"fmt"

	"arcs/internal/binning"
)

// widenDegenerate widens a degenerate fitted range [lo, lo] to a unit
// interval so equi-width binning over a constant column stays
// well-formed — every value lands in bin 0 — instead of constructing a
// zero-width domain.
func widenDegenerate(lo, hi float64) (float64, float64) {
	if lo == hi {
		hi = lo + 1
	}
	return lo, hi
}

// axisFitFree reports whether an axis binner can be constructed without
// the Ingest pass: categorical axes (one bin per dictionary entry) and
// fixed-range equi-width axes need no fitted statistics.
func (s *System) axisFitFree(cat bool, fixed *[2]float64) bool {
	return cat || (s.cfg.BinStrategy == BinEquiWidth && fixed != nil)
}

// fuseEligible reports whether the fused single-pass fast path applies:
// with both binners fit-free, Ingest and Count collapse into one pass
// over the source. Sharded ingest (IngestWorkers > 1) keeps the
// sequential sample pass regardless, so fusion only pays off when the
// count pass is sequential too.
func (s *System) fuseEligible() bool {
	return s.axisFitFree(s.xCat, s.cfg.XRange) && s.axisFitFree(s.yCat, s.cfg.YRange)
}

// stageBinFit is the BinFit stage: construct the two axis binners from
// the Ingest stage's statistics. ing is nil on the fused path, where
// both axes are fit-free and never consult it.
func (s *System) stageBinFit(ing *ingestStats) error {
	cfg := s.cfg
	col := func(idx int) []float64 {
		out := make([]float64, len(ing.buf))
		for i, t := range ing.buf {
			out[i] = t[idx]
		}
		return out
	}
	mkBinner := func(idx int, cat bool, bins int, fixed *[2]float64, lo, hi float64) (binning.Binner, error) {
		if cat {
			n := s.schema.At(idx).NumCategories()
			return binning.NewCategorical(n)
		}
		switch cfg.BinStrategy {
		case BinEquiWidth:
			if fixed != nil {
				return binning.NewEquiWidth(fixed[0], fixed[1], bins)
			}
			lo, hi = widenDegenerate(lo, hi)
			return binning.NewEquiWidth(lo, hi, bins)
		case BinEquiDepth:
			return binning.NewEquiDepth(col(idx), bins)
		case BinHomogeneity:
			return binning.NewHomogeneity(col(idx), bins)
		case BinSupervised:
			classes := make([]int, len(ing.buf))
			for i, t := range ing.buf {
				classes[i] = int(t[s.critIdx])
			}
			sb, err := binning.NewSupervised(col(idx), classes, bins)
			if err != nil {
				return nil, err
			}
			// Supervised cuts only exist where the attribute's marginal
			// class distribution changes. On interaction-driven data
			// (e.g. Function 2, where P(group | age) is flat although
			// age matters jointly with salary) no cut passes the MDL
			// test and the axis would collapse to one bin; fall back to
			// the unsupervised default there.
			if sb.NumBins() < 3 {
				lo, hi = widenDegenerate(lo, hi)
				return binning.NewEquiWidth(lo, hi, bins)
			}
			return sb, nil
		default:
			return nil, fmt.Errorf("core: unknown bin strategy %v", cfg.BinStrategy)
		}
	}
	var xLo, xHi, yLo, yHi float64
	if ing != nil {
		xLo, xHi, yLo, yHi = ing.xLo, ing.xHi, ing.yLo, ing.yHi
	}
	var err error
	if s.xb, err = mkBinner(s.xIdx, s.xCat, cfg.XBins, cfg.XRange, xLo, xHi); err != nil {
		return err
	}
	if s.yb, err = mkBinner(s.yIdx, s.yCat, cfg.YBins, cfg.YRange, yLo, yHi); err != nil {
		return err
	}
	return nil
}
