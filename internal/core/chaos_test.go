package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"arcs/internal/dataset"
	"arcs/internal/faultinject"
	"arcs/internal/obs"
	"arcs/internal/optimizer"
	"arcs/internal/synth"
)

// f2Source builds the Function 2 generator the chaos tests wound.
func f2Source(t *testing.T, n int) dataset.Source {
	t.Helper()
	gen, err := synth.New(synth.Config{
		Function: 2, N: n, Seed: 42,
		Perturbation: 0.05, OutlierFraction: 0.05, FracA: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

func chaosConfig() Config {
	return Config{
		XAttr: synth.AttrAge, YAttr: synth.AttrSalary,
		CritAttr: synth.AttrGroup, CritValue: synth.GroupA,
		NumBins: 20,
	}
}

// runDegraded builds a System whose search cancels itself at the start
// of probe cancelAt, runs it, and returns the degraded outcome plus the
// metrics registry.
func runDegraded(t *testing.T, cancelAt int) (*Result, error, *obs.Registry) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := chaosConfig()
	// Serial, uncached probes make the cancellation cut point exact: the
	// hook fires on the cancelAt-th evaluation, every earlier probe has
	// settled, every later probe is refused.
	cfg.SerialSearch = true
	cfg.DisableProbeCache = true
	cfg.ProbeHook = faultinject.CancelOnProbe(cancelAt, cancel)
	cfg.Observer = obs.New(&obs.MemSink{})
	sys, err := New(f2Source(t, 8_000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, rerr := sys.RunValueContext(ctx, synth.GroupA)
	return res, rerr, cfg.Observer.Registry()
}

func TestChaosCancelMidSearchDegradesToBestSoFar(t *testing.T) {
	res, err, reg := runDegraded(t, 5)
	if err == nil {
		t.Fatal("canceled search returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
	re := AsRunError(err)
	if re == nil || re.Phase != "search" || !re.Partial {
		t.Fatalf("error %v is not a partial search RunError", err)
	}
	if res == nil || !res.Degraded {
		t.Fatalf("result %+v is not a degraded partial result", res)
	}
	if len(res.Rules) == 0 {
		t.Fatal("degraded result carries no best-so-far rules")
	}
	if res.Evaluations == 0 || res.Evaluations >= 6 {
		t.Fatalf("evaluations = %d, want 1..5 (cut at probe 5)", res.Evaluations)
	}
	if got := reg.Counter("runs_degraded_total").Value(); got != 1 {
		t.Fatalf("runs_degraded_total = %d, want 1", got)
	}
}

func TestChaosDegradedResultIsDeterministic(t *testing.T) {
	first, ferr, _ := runDegraded(t, 4)
	second, serr, _ := runDegraded(t, 4)
	if ferr == nil || serr == nil {
		t.Fatal("expected both canceled runs to report the cancellation")
	}
	if first == nil || second == nil {
		t.Fatal("expected both canceled runs to return degraded results")
	}
	if first.MinSupport != second.MinSupport || first.MinConfidence != second.MinConfidence {
		t.Fatalf("thresholds differ across identical canceled runs: (%g,%g) vs (%g,%g)",
			first.MinSupport, first.MinConfidence, second.MinSupport, second.MinConfidence)
	}
	if len(first.Rules) != len(second.Rules) {
		t.Fatalf("rule counts differ: %d vs %d", len(first.Rules), len(second.Rules))
	}
	for i := range first.Rules {
		if first.Rules[i].String() != second.Rules[i].String() {
			t.Fatalf("rule %d differs: %s vs %s", i, first.Rules[i], second.Rules[i])
		}
	}
}

func TestChaosCancelBeforeFirstProbeFailsOutright(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sys := f2System(t, 2_000, 0, Config{NumBins: 20})
	res, err := sys.RunValueContext(ctx, synth.GroupA)
	if res != nil {
		t.Fatalf("pre-canceled run returned a result: %+v", res)
	}
	re := AsRunError(err)
	if re == nil || re.Phase != "search" || re.Partial {
		t.Fatalf("error %v is not a non-partial search RunError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
}

func TestChaosNewContextCancelReturnsNoSystem(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sys, err := NewContext(ctx, f2Source(t, 2_000), chaosConfig())
	if sys != nil {
		t.Fatal("canceled initialization returned a System")
	}
	re := AsRunError(err)
	if re == nil || re.Phase != "init" || re.Partial {
		t.Fatalf("error %v is not a non-partial init RunError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
}

func TestChaosProbePanicFailsOnlyThatProbe(t *testing.T) {
	cfg := chaosConfig()
	cfg.SerialSearch = true
	cfg.DisableProbeCache = true
	cfg.ProbeHook = faultinject.PanicOnProbe(3)
	cfg.Observer = obs.New(&obs.MemSink{})
	sys, err := New(f2Source(t, 8_000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatalf("run with one panicking probe failed outright: %v", err)
	}
	if res.Degraded {
		t.Fatal("panic-isolated run reported Degraded")
	}
	if res.FailedProbes != 1 {
		t.Fatalf("FailedProbes = %d, want exactly 1", res.FailedProbes)
	}
	if len(res.Rules) == 0 {
		t.Fatal("run with one failed probe produced no rules")
	}
	var failedSteps int
	for _, st := range res.Trace {
		if st.Reason == optimizer.ReasonProbeFailed {
			failedSteps++
		}
	}
	if failedSteps != 1 {
		t.Fatalf("trace records %d failed probes, want 1", failedSteps)
	}
	if got := cfg.Observer.Registry().Counter("probe_panics_recovered_total").Value(); got != 1 {
		t.Fatalf("probe_panics_recovered_total = %d, want 1", got)
	}
}

func TestChaosAllProbesPanickingFailsRun(t *testing.T) {
	cfg := chaosConfig()
	cfg.SerialSearch = true
	cfg.DisableProbeCache = true
	cfg.ProbeHook = func(int, float64, float64) { panic("chaos: scripted") }
	sys, err := New(f2Source(t, 4_000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every probe panics, so the search measures nothing and must
	// surface the failure rather than mining at zero-value thresholds.
	res, rerr := sys.Run()
	if rerr == nil {
		t.Fatalf("all-probes-panicking run succeeded: %+v", res)
	}
	if !errors.Is(rerr, optimizer.ErrProbeFailed) {
		t.Fatalf("error %v does not unwrap to ErrProbeFailed", rerr)
	}
	// Crucially it must NOT look like "this group admits no rules", or
	// SegmentAll would swallow it into an empty per-group result.
	if errors.Is(rerr, optimizer.ErrNoThresholds) {
		t.Fatalf("error %v is classified as ErrNoThresholds", rerr)
	}
}

func TestChaosDirtyRowsAreQuarantined(t *testing.T) {
	// ~1% of rows replaced with row-scoped errors; the resilient wrapper
	// quarantines them and the pipeline still finds the segmentation.
	faulty := faultinject.Wrap(f2Source(t, 10_000), faultinject.Schedule{
		Seed: 7, RowErrorProb: 0.01, TransientEvery: 997,
	})
	r := dataset.NewResilient(faulty,
		dataset.Retry{Max: 3, Sleep: func(time.Duration) {}},
		dataset.Quarantine{MaxBadRows: -1})
	sys, err := New(r, chaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatalf("run over dirty source failed: %v", err)
	}
	if len(res.Rules) == 0 {
		t.Fatal("run over dirty source produced no rules")
	}
	st := r.Stats()
	if st.Quarantined["injected"] == 0 {
		t.Fatal("no rows were quarantined despite 1% injection")
	}
	if st.Retries == 0 {
		t.Fatal("no transient retries despite injected transient errors")
	}
}

func TestChaosStrictQuarantineBudgetFails(t *testing.T) {
	faulty := faultinject.Wrap(f2Source(t, 5_000), faultinject.Schedule{RowErrorEvery: 100})
	r := dataset.NewResilient(faulty, dataset.Retry{}, dataset.Quarantine{MaxBadRows: 3})
	_, err := New(r, chaosConfig())
	if !errors.Is(err, dataset.ErrTooManyBadRows) {
		t.Fatalf("error %v does not unwrap to ErrTooManyBadRows", err)
	}
}

func TestChaosSegmentAllContextKeepsCompletedValues(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sys := f2System(t, 2_000, 0, Config{NumBins: 20})
	out, err := sys.SegmentAllContext(ctx)
	re := AsRunError(err)
	if re == nil || re.Phase != "segment-all" {
		t.Fatalf("error %v is not a segment-all RunError", err)
	}
	if re.Partial != (len(out) > 0) {
		t.Fatalf("Partial=%v disagrees with %d returned results", re.Partial, len(out))
	}
	// An uncanceled SegmentAllContext behaves exactly like SegmentAll.
	out, err = sys.SegmentAllContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("background SegmentAllContext returned no results")
	}
}

func TestChaosCancelLeaksNoGoroutines(t *testing.T) {
	// Warm up once so lazily started runtime helpers do not count as
	// leaks, then run a parallel-batch search that gets canceled
	// mid-flight and verify the goroutine count settles back.
	{
		sys := f2System(t, 2_000, 0, Config{NumBins: 20})
		if _, err := sys.Run(); err != nil {
			t.Fatal(err)
		}
	}
	runtime.GC()
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := chaosConfig()
	cfg.ProbeHook = faultinject.CancelOnProbe(2, cancel)
	sys, err := New(f2Source(t, 8_000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = sys.RunValueContext(ctx, synth.GroupA)

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: baseline %d, now %d; stacks:\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestChaosDeadlineExpiryDegrades(t *testing.T) {
	// A real deadline (not a scripted hook) must produce the same
	// degraded contract. The latency injection stretches the binning
	// pass enough that the search phase hits the deadline on any
	// hardware; if the deadline instead lands during init, that is a
	// legitimate non-partial outcome and the test accepts both shapes.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	src := faultinject.Wrap(f2Source(t, 8_000), faultinject.Schedule{
		Latency: 10 * time.Microsecond,
	})
	sys, err := NewContext(ctx, src, chaosConfig())
	if err != nil {
		re := AsRunError(err)
		if re == nil || re.Phase != "init" {
			t.Fatalf("init error %v is not an init RunError", err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("error %v does not unwrap to DeadlineExceeded", err)
		}
		return
	}
	res, err := sys.RunValueContext(ctx, synth.GroupA)
	if err == nil {
		// The run beat the deadline — nothing to assert, but note it so
		// a systematically-too-generous deadline is visible in -v runs.
		t.Log("run completed before the deadline; degraded path not exercised")
		return
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not unwrap to DeadlineExceeded", err)
	}
	if re := AsRunError(err); re == nil {
		t.Fatalf("error %v is not a RunError", err)
	} else if re.Partial != (res != nil) {
		t.Fatalf("Partial=%v but result=%v", re.Partial, res != nil)
	}
}

// errorReason exercises fmt verbs on the error types so the chaos suite
// locks in their rendered shapes.
func TestChaosErrorRendering(t *testing.T) {
	re := &RunError{Phase: "search", Err: context.Canceled, Partial: true}
	want := "core: search: context canceled (partial result available)"
	if re.Error() != want {
		t.Fatalf("RunError renders %q, want %q", re.Error(), want)
	}
	pe := &PanicError{Phase: "probe", Value: "boom", Stack: []byte("stack")}
	if got := fmt.Sprint(pe); got != "core: recovered panic in probe: boom" {
		t.Fatalf("PanicError renders %q", got)
	}
	if !errors.Is(pe, optimizer.ErrProbeFailed) {
		t.Fatal("PanicError does not unwrap to ErrProbeFailed")
	}
}
