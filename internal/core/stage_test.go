package core

import (
	"bytes"
	"reflect"
	"testing"

	"arcs/internal/counts"
	"arcs/internal/dataset"
	"arcs/internal/obs"
	"arcs/internal/synth"
)

// f2Table materializes the Function-2 generator into an in-memory table,
// the shardable source the parallel-ingest tests need.
func f2Table(t *testing.T, n int) *dataset.Table {
	t.Helper()
	gen, err := synth.New(synth.Config{
		Function: 2, N: n, Seed: 42, Perturbation: 0.05, FracA: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := dataset.Materialize(gen)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func f2Config(cfg Config) Config {
	cfg.XAttr = synth.AttrAge
	cfg.YAttr = synth.AttrSalary
	cfg.CritAttr = synth.AttrGroup
	cfg.CritValue = synth.GroupA
	return cfg
}

// countsBytes snapshots a system's count backend through the dense
// wire format (counts.Snapshot) — the byte-identity claim of the
// refactor, and it holds for every backend kind, not just dense.
func countsBytes(t *testing.T, sys *System) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := counts.Snapshot(sys.Counts(), &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// sameOutcome compares everything deterministic about two runs.
func sameOutcome(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.MinSupport != b.MinSupport || a.MinConfidence != b.MinConfidence {
		t.Errorf("%s: thresholds (%g, %g) vs (%g, %g)", label,
			a.MinSupport, a.MinConfidence, b.MinSupport, b.MinConfidence)
	}
	if a.Cost != b.Cost {
		t.Errorf("%s: cost %g vs %g", label, a.Cost, b.Cost)
	}
	if a.Evaluations != b.Evaluations {
		t.Errorf("%s: evaluations %d vs %d", label, a.Evaluations, b.Evaluations)
	}
	if !reflect.DeepEqual(a.Rules, b.Rules) {
		t.Errorf("%s: rules differ: %d vs %d", label, len(a.Rules), len(b.Rules))
	}
	if a.Errors != b.Errors {
		t.Errorf("%s: verification errors %+v vs %+v", label, a.Errors, b.Errors)
	}
}

// sameSample: the verification sample must be row-for-row identical —
// it drives every verify measurement downstream.
func sameSample(t *testing.T, label string, a, b *dataset.Table) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: sample sizes %d vs %d", label, a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if !reflect.DeepEqual(a.Row(i), b.Row(i)) {
			t.Fatalf("%s: sample row %d differs: %v vs %v", label, i, a.Row(i), b.Row(i))
		}
	}
}

// TestShardedSystemMatchesDense is the refactor's acceptance test: any
// IngestWorkers setting yields a byte-identical count backend, the same
// verification sample, and an identical end-to-end Result.
func TestShardedSystemMatchesDense(t *testing.T) {
	tab := f2Table(t, 20_000)
	mk := func(workers int) *System {
		t.Helper()
		sys, err := New(tab, f2Config(Config{
			NumBins: 20, Walk: walkBudget(), IngestWorkers: workers,
		}))
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	ref := mk(0)
	refBytes := countsBytes(t, ref)
	refRes, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		sys := mk(workers)
		if workers > 1 {
			if _, ok := sys.Counts().(*counts.Sharded); !ok {
				t.Fatalf("workers=%d: backend is %T, want *counts.Sharded", workers, sys.Counts())
			}
		}
		if !bytes.Equal(countsBytes(t, sys), refBytes) {
			t.Errorf("workers=%d: counts differ from the sequential build", workers)
		}
		sameSample(t, "sharded", ref.Sample(), sys.Sample())
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		sameOutcome(t, "sharded", refRes, res)
	}
}

// TestFusedMatchesTwoPass: with fixed equi-width ranges the build fuses
// ingest and count into one pass; the counts, the reservoir sample and
// the full Result must match the two-pass build exactly.
func TestFusedMatchesTwoPass(t *testing.T) {
	tab := f2Table(t, 10_000)
	ageIdx := tab.Schema().MustIndex(synth.AttrAge)
	salIdx := tab.Schema().MustIndex(synth.AttrSalary)
	lohi := func(col []float64) *[2]float64 {
		lo, hi := col[0], col[0]
		for _, v := range col {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return &[2]float64{lo, hi}
	}
	base := f2Config(Config{
		NumBins: 20, Walk: walkBudget(),
		XRange: lohi(tab.Column(ageIdx)), YRange: lohi(tab.Column(salIdx)),
	})

	// Fused: fixed ranges, sequential ingest, with a sink to prove the
	// ingest span really was elided and the count pass reported fusion.
	sink := &obs.MemSink{}
	fusedCfg := base
	fusedCfg.Observer = obs.New(sink)
	fused, err := New(tab, fusedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sink.Spans("ingest")); got != 0 {
		t.Errorf("fused build emitted %d ingest spans, want 0", got)
	}
	countSpans := sink.Spans("count")
	if len(countSpans) != 1 || countSpans[0].Attr("mode") != "fused" {
		t.Errorf("count span mode = %q, want \"fused\"", countSpans[0].Attr("mode"))
	}
	if got := countSpans[0].Attr("backend"); got != "dense" {
		t.Errorf("count span backend = %q, want \"dense\"", got)
	}

	// Two-pass reference: same fixed ranges, but IngestWorkers=2 keeps
	// the standalone ingest stage (fusion requires a sequential count).
	twoPassCfg := base
	twoPassCfg.IngestWorkers = 2
	twoPass, err := New(tab, twoPassCfg)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(countsBytes(t, fused), countsBytes(t, twoPass)) {
		t.Error("fused counts differ from the two-pass build")
	}
	sameSample(t, "fused", twoPass.Sample(), fused.Sample())
	resFused, err := fused.Run()
	if err != nil {
		t.Fatal(err)
	}
	resTwo, err := twoPass.Run()
	if err != nil {
		t.Fatal(err)
	}
	sameOutcome(t, "fused", resTwo, resFused)
}

// TestConstantColumnBins: a constant quantitative column fits through
// the degenerate-range widening instead of collapsing the binner.
func TestConstantColumnBins(t *testing.T) {
	schema := dataset.NewSchema(
		dataset.Attribute{Name: "x", Kind: dataset.Quantitative},
		dataset.Attribute{Name: "y", Kind: dataset.Quantitative},
		dataset.Attribute{Name: "g", Kind: dataset.Categorical},
	)
	for _, label := range []string{"a", "b"} {
		if _, err := schema.At(2).CategoryCode(label); err != nil {
			t.Fatal(err)
		}
	}
	tab := dataset.NewTable(schema)
	for i := 0; i < 50; i++ {
		tab.MustAppend(dataset.Tuple{float64(i % 10), 7.5, float64(i % 2)})
	}
	sys, err := New(tab, Config{
		XAttr: "x", YAttr: "y", CritAttr: "g", CritValue: "a", NumBins: 5,
	})
	if err != nil {
		t.Fatalf("constant column broke the build: %v", err)
	}
	ba := sys.Counts()
	if ba.N() != 50 {
		t.Fatalf("N() = %d, want 50", ba.N())
	}
	// Every tuple lands in y bin 0: the widened range is [7.5, 8.5).
	var inBin0 uint32
	for x := 0; x < ba.NX(); x++ {
		inBin0 += ba.CellTotal(x, 0)
	}
	if inBin0 != 50 {
		t.Errorf("%d tuples in y bin 0, want all 50", inBin0)
	}
}

func TestWidenDegenerate(t *testing.T) {
	if lo, hi := widenDegenerate(5, 5); lo != 5 || hi != 6 {
		t.Errorf("widenDegenerate(5, 5) = (%g, %g), want (5, 6)", lo, hi)
	}
	if lo, hi := widenDegenerate(1, 2); lo != 1 || hi != 2 {
		t.Errorf("widenDegenerate(1, 2) = (%g, %g), want unchanged", lo, hi)
	}
}
