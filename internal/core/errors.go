package core

import (
	"errors"
	"fmt"

	"arcs/internal/optimizer"
)

// RunError is the structured failure of a pipeline run: which top-level
// phase failed ("init", "search", "mine-final", "verify-final"), the
// underlying cause, and whether a usable partial Result accompanies the
// error. Cancellation mid-search produces Partial=true together with a
// degraded best-so-far Result; everything earlier fails outright.
type RunError struct {
	// Phase is the pipeline stage the error escaped from, matching the
	// PhaseTiming names.
	Phase string
	// Err is the underlying cause; errors.Is/As see through it, so
	// context.Canceled and context.DeadlineExceeded remain matchable.
	Err error
	// Partial reports that the call returned a non-nil degraded Result
	// next to this error.
	Partial bool
}

// Error renders the phase ahead of the cause.
func (e *RunError) Error() string {
	if e.Partial {
		return fmt.Sprintf("core: %s: %v (partial result available)", e.Phase, e.Err)
	}
	return fmt.Sprintf("core: %s: %v", e.Phase, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// AsRunError extracts a *RunError from err's chain, nil when absent.
func AsRunError(err error) *RunError {
	var re *RunError
	if errors.As(err, &re) {
		return re
	}
	return nil
}

// PanicError is a panic recovered inside a single threshold probe: the
// panic value and the stack captured at the point of panic (the worker's
// own stack for panics escaping bitop worker goroutines). It unwraps to
// optimizer.ErrProbeFailed, so the search strategies treat it as an
// isolated failure — the probe is skipped and the search continues.
type PanicError struct {
	// Phase names where the panic surfaced (always "probe" today).
	Phase string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at the point of panic.
	Stack []byte
}

// Error summarizes the panic; the stack is available on the struct.
func (e *PanicError) Error() string {
	return fmt.Sprintf("core: recovered panic in %s: %v", e.Phase, e.Value)
}

// Unwrap marks the error as an isolated probe failure.
func (e *PanicError) Unwrap() error { return optimizer.ErrProbeFailed }

// AsPanicError extracts a *PanicError from err's chain, nil when absent.
func AsPanicError(err error) *PanicError {
	var pe *PanicError
	if errors.As(err, &pe) {
		return pe
	}
	return nil
}
