package core

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"runtime/pprof"
	"sync"

	"arcs/internal/binning"
	"arcs/internal/bitop"
	"arcs/internal/cancelcheck"
	"arcs/internal/cluster"
	"arcs/internal/counts"
	"arcs/internal/dataset"
	"arcs/internal/engine"
	"arcs/internal/filter"
	"arcs/internal/grid"
	"arcs/internal/obs"
	"arcs/internal/rules"
	"arcs/internal/verify"
)

// System is a fully initialized ARCS instance: the data has been binned
// into the in-memory count backend and a verification sample drawn, so
// any number of threshold probes, criterion values or full optimizer
// runs can execute without touching the source again.
type System struct {
	cfg    Config
	schema *dataset.Schema

	xIdx, yIdx, critIdx int
	xb, yb              binning.Binner
	xCat, yCat          bool

	ba counts.Backend
	// countsInfo is the build-time summary of the count backend (kind,
	// parallelism, footprint), set once by stageCount and copied into
	// every Result.
	countsInfo CountsInfo
	sample     *dataset.Table
	// vindex pre-bins the verification sample against the binner
	// boundaries, so every probe verifies coverage in O(1) per tuple.
	// Rebuilt by Extend; read-only otherwise.
	vindex *verify.Index
	// probes memoizes threshold evaluations across runs and goroutines.
	probes *probeCache

	// obs is the observability layer (nil when Config.Observer is unset:
	// every span/metric call then no-ops without allocating). The metric
	// handles below are resolved once at construction so the worker-pool
	// hot path never touches the registry map.
	obs         *obs.Observer
	mBatchSize  *obs.Histogram
	mQueueDepth *obs.Gauge
	mPoolWork   *obs.Gauge
	// Stage-level handles: BitOp operation accounting, cluster geometry
	// and MDL term breakdown, observed on every probe and final mine.
	mBitopAnd    *obs.Counter
	mBitopCmp    *obs.Counter
	mBitopCand   *obs.Counter
	mBitopRounds *obs.Counter
	mWorkerRows  *obs.Histogram
	mRectArea    *obs.Histogram
	mRectWidth   *obs.Histogram
	mRectHeight  *obs.Histogram
	mMDLCluster  *obs.Histogram
	mMDLError    *obs.Histogram
	// Robustness accounting: probes whose panics were recovered, and runs
	// that returned a degraded (best-so-far) result after cancellation.
	mPanics   *obs.Counter
	mDegraded *obs.Counter

	// mu guards the thresholds cache; everything else is read-only
	// after New, so concurrent RunValue calls are safe.
	mu sync.Mutex
	// thresholds caches the Figure 10 structure per criterion code.
	thresholds map[int]*engine.Thresholds
}

// New builds a System from a tuple source by running the construction
// stages (see pipeline.go): Ingest (stats + reservoir sample), BinFit,
// and Count. Normally that is two passes over the data; when both
// binners are fit-free (fixed ranges or categorical axes) Ingest and
// Count fuse into a single pass, and with Config.IngestWorkers > 1 the
// Count pass shards across a worker pool for shardable sources. All
// variants produce bit-identical counts and samples.
func New(src dataset.Source, cfg Config) (*System, error) {
	return NewContext(context.Background(), src, cfg)
}

// NewContext is New with cooperative cancellation of the data passes:
// every stage polls the context at the dataset layer's checkpoint
// granularity, and construction fails with a RunError{Phase: "init"}
// wrapping the cancellation. There is no partial System — a half-filled
// count backend would silently bias every later result.
func NewContext(ctx context.Context, src dataset.Source, cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	schema := src.Schema()
	s := &System{cfg: cfg, schema: schema, thresholds: make(map[int]*engine.Thresholds)}
	s.obs = cfg.Observer
	reg := s.obs.Registry()
	s.mBatchSize = reg.HistogramBuckets("probe_batch_size", obs.SizeBuckets)
	s.mQueueDepth = reg.Gauge("pool_queue_depth")
	s.mPoolWork = reg.Gauge("pool_workers")
	s.mBitopAnd = reg.Counter("bitop_and_word_ops_total")
	s.mBitopCmp = reg.Counter("bitop_cmp_word_ops_total")
	s.mBitopCand = reg.Counter("bitop_candidates_total")
	s.mBitopRounds = reg.Counter("bitop_rounds_total")
	s.mWorkerRows = reg.HistogramBuckets("bitop_worker_rows", obs.SizeBuckets)
	s.mRectArea = reg.HistogramBuckets("cluster_rect_area", obs.SizeBuckets)
	s.mRectWidth = reg.HistogramBuckets("cluster_rect_width", obs.SizeBuckets)
	s.mRectHeight = reg.HistogramBuckets("cluster_rect_height", obs.SizeBuckets)
	s.mMDLCluster = reg.HistogramBuckets("mdl_cluster_term_bits", obs.SizeBuckets)
	s.mMDLError = reg.HistogramBuckets("mdl_error_term_bits", obs.SizeBuckets)
	s.mPanics = reg.Counter("probe_panics_recovered_total")
	s.mDegraded = reg.Counter("runs_degraded_total")
	init := s.obs.Root("init", s.rootAttrs(
		obs.Str("x_attr", cfg.XAttr), obs.Str("y_attr", cfg.YAttr),
		obs.Str("crit_attr", cfg.CritAttr))...)

	var err error
	if s.xIdx, err = schema.Index(cfg.XAttr); err != nil {
		return nil, err
	}
	if s.yIdx, err = schema.Index(cfg.YAttr); err != nil {
		return nil, err
	}
	if s.critIdx, err = schema.Index(cfg.CritAttr); err != nil {
		return nil, err
	}
	if schema.At(s.critIdx).Kind != dataset.Categorical {
		return nil, fmt.Errorf("core: criterion attribute %q must be categorical", cfg.CritAttr)
	}
	s.xCat = schema.At(s.xIdx).Kind == dataset.Categorical
	s.yCat = schema.At(s.yIdx).Kind == dataset.Categorical
	if s.xCat && s.yCat {
		return nil, fmt.Errorf("core: at most one LHS attribute may be categorical (got %q and %q)",
			cfg.XAttr, cfg.YAttr)
	}
	nseg := schema.At(s.critIdx).NumCategories()
	if nseg == 0 {
		return nil, fmt.Errorf("core: criterion attribute %q has no categories", cfg.CritAttr)
	}

	// The construction pipeline. When both binners are fit-free and the
	// count pass is sequential, the Ingest stage is skipped entirely and
	// Count runs the fused single pass (sampling + counting together).
	fused := s.fuseEligible() && cfg.IngestWorkers <= 1
	var ing *ingestStats
	err = s.runStages(ctx, init, []stage{
		{name: "ingest", skip: fused, run: func(ctx context.Context) ([]obs.Attr, error) {
			var err error
			if ing, err = s.stageIngest(ctx, src); err != nil {
				return nil, err
			}
			return []obs.Attr{obs.Int("sample", s.sample.Len())}, nil
		}},
		{name: "binfit", run: func(context.Context) ([]obs.Attr, error) {
			if err := s.stageBinFit(ing); err != nil {
				return nil, err
			}
			return []obs.Attr{
				obs.Str("method_x", binning.MethodName(s.xb)),
				obs.Str("method_y", binning.MethodName(s.yb)),
				obs.Int("boundaries_x", len(binning.Boundaries(s.xb))),
				obs.Int("boundaries_y", len(binning.Boundaries(s.yb))),
			}, nil
		}},
		{name: "count", run: func(ctx context.Context) ([]obs.Attr, error) {
			return s.stageCount(ctx, src, nseg, fused)
		}},
	})
	if err != nil {
		return nil, err
	}

	if *cfg.ReorderCategorical && (s.xCat || s.yCat) {
		sp := init.Child("reorder")
		if err := s.reorderCategorical(); err != nil {
			return nil, err
		}
		sp.End()
	}
	// Built last: the index depends on the final binner boundaries, which
	// reorderCategorical may have replaced.
	sp := init.Child("verify-index")
	if err := s.buildVerifyIndex(); err != nil {
		return nil, err
	}
	sp.End(obs.Int("tuples", s.vindex.Len()))
	s.probes = newProbeCache()
	s.probes.onHit = reg.Counter("probe_cache_hits_total")
	s.probes.onMiss = reg.Counter("probe_cache_misses_total")
	init.End()
	return s, nil
}

// rootAttrs prefixes the configured run ID onto a root span's attribute
// list. With no RunID (or observability off) it returns attrs untouched,
// keeping single-run callers allocation-free.
func (s *System) rootAttrs(attrs ...obs.Attr) []obs.Attr {
	if s.cfg.RunID == "" || !s.obs.Enabled() {
		return attrs
	}
	return append([]obs.Attr{obs.Str("run_id", s.cfg.RunID)}, attrs...)
}

// labeled runs fn under a pprof label keyed by pipeline phase, so CPU
// profiles attribute samples to stages (`-tagfocus arcs_phase=...`).
// With observability off it degenerates to a plain call — pprof.Do
// allocates a label set, which the disabled hot path must not.
func (s *System) labeled(phase string, fn func()) {
	if !s.obs.Enabled() {
		fn()
		return
	}
	pprof.Do(context.Background(), pprof.Labels("arcs_phase", phase),
		func(context.Context) { fn() })
}

// buildVerifyIndex pre-bins the verification sample against the current
// binner boundaries (also called by Extend after the sample changes).
func (s *System) buildVerifyIndex() error {
	ix, err := verify.NewIndex(s.sample, s.xIdx, s.yIdx, s.critIdx,
		binning.Boundaries(s.xb), binning.Boundaries(s.yb))
	if err != nil {
		return fmt.Errorf("core: building verification index: %w", err)
	}
	if s.obs.Enabled() {
		reg := s.obs.Registry()
		ix.Observe(
			reg.Counter("verify_fastpath_rules_total"),
			reg.Counter("verify_fallback_rules_total"),
			func(fb verify.Fallback) {
				// A fallback rule silently costs O(rules) per tuple; make
				// the degradation and its cause visible in the trace and
				// the debug log.
				s.obs.Annotate("verify.fallback",
					obs.Str("rule", fb.Rule.String()),
					obs.Str("reason", fb.Reason))
				slog.Debug("verify index fell back to rect scan",
					"rule", fb.Rule.String(), "reason", fb.Reason)
			})
	}
	s.vindex = ix
	return nil
}

// initErr wraps construction-pass failures as RunError{Phase: "init"}
// when they stem from cancellation, leaving other errors untouched so
// existing callers keep their error shapes.
func initErr(err error) error {
	if cancelcheck.IsCancel(err) {
		return &RunError{Phase: "init", Err: err}
	}
	return err
}

// reorderCategorical computes the densest-cluster ordering for the
// categorical LHS attribute (paper §5) from a zero-threshold rule grid
// and permutes the count backend in memory.
func (s *System) reorderCategorical() error {
	seg, err := s.segCode(s.cfg.CritValue)
	if err != nil {
		// No criterion value chosen yet (e.g. SegmentAll); reorder by
		// the first category.
		seg = 0
	}
	cellRules, err := engine.GenAssociationRules(s.ba, seg, 0, 0)
	if err != nil {
		return err
	}
	if len(cellRules) == 0 {
		return nil
	}
	bm, err := grid.FromRules(cellRules, s.ba.NX(), s.ba.NY())
	if err != nil {
		return err
	}
	if s.xCat {
		order := cluster.OrderCategories(bm)
		ordered, err := binning.NewCategoricalOrdered(order)
		if err != nil {
			return err
		}
		if s.ba, err = counts.PermuteX(s.ba, order); err != nil {
			return err
		}
		s.xb = ordered
	} else {
		// Column-order the transpose so OrderCategories sees the y
		// categories as columns.
		order := cluster.OrderCategories(bm.Transpose())
		ordered, err := binning.NewCategoricalOrdered(order)
		if err != nil {
			return err
		}
		if s.ba, err = counts.PermuteY(s.ba, order); err != nil {
			return err
		}
		s.yb = ordered
	}
	// Any cached thresholds refer to the old layout's cells; supports
	// and confidences are permutation-invariant, but rebuild for safety.
	s.thresholds = make(map[int]*engine.Thresholds)
	return nil
}

// segCode resolves a criterion label to its category code.
func (s *System) segCode(label string) (int, error) {
	code, ok := s.schema.At(s.critIdx).LookupCategory(label)
	if !ok {
		return 0, fmt.Errorf("core: criterion attribute %q has no value %q (have %v)",
			s.cfg.CritAttr, label, s.schema.At(s.critIdx).Categories())
	}
	return code, nil
}

// Counts exposes the count backend (read-only by convention).
func (s *System) Counts() counts.Backend { return s.ba }

// CountsStats reports which backend the build selected and what it
// costs in memory and disk — the numbers behind the counts_* gauges.
func (s *System) CountsStats() CountsInfo { return s.countsInfo }

// BinArray is the historical name for Counts, from when the dense array
// was the only backend.
func (s *System) BinArray() counts.Backend { return s.ba }

// Sample exposes the verification sample.
func (s *System) Sample() *dataset.Table { return s.sample }

// Binners exposes the fitted binners for the two LHS attributes.
func (s *System) Binners() (x, y binning.Binner) { return s.xb, s.yb }

// Grid builds the (optionally smoothed) rule bitmap at the given
// thresholds for a criterion label — the exact input BitOp sees. Useful
// for visualization (paper Figures 1, 7).
func (s *System) Grid(label string, minSup, minConf float64) (*grid.Bitmap, error) {
	seg, err := s.segCode(label)
	if err != nil {
		return nil, err
	}
	return s.buildGrid(seg, minSup, minConf)
}

// effectiveMinConf applies the interest-measure extension: when
// InterestLift is configured, the confidence bar is raised to
// lift × prior of the criterion value if that exceeds minConf.
func (s *System) effectiveMinConf(seg int, minConf float64) float64 {
	if s.cfg.InterestLift > 0 && s.ba.N() > 0 {
		prior := float64(s.ba.SegmentTotal(seg)) / float64(s.ba.N())
		if bar := s.cfg.InterestLift * prior; bar > minConf {
			return bar
		}
	}
	return minConf
}

func (s *System) buildGrid(seg int, minSup, minConf float64) (*grid.Bitmap, error) {
	minConf = s.effectiveMinConf(seg, minConf)
	switch s.cfg.Smoothing {
	case SmoothWeighted:
		// Smooth support values of confidence-passing cells, then
		// threshold at the support minimum.
		dense, err := grid.NewDense(s.ba.NY(), s.ba.NX())
		if err != nil {
			return nil, err
		}
		s.ba.Occupied(seg, func(x, y int, segCount, cellTotal uint32) {
			conf := float64(segCount) / float64(cellTotal)
			if conf >= minConf {
				dense.Set(y, x, float64(segCount)/float64(s.ba.N()))
			}
		})
		return filter.LowPassWeighted(dense, minSup)
	default:
		cellRules, err := engine.GenAssociationRules(s.ba, seg, minSup, minConf)
		if err != nil {
			return nil, err
		}
		bm, err := grid.FromRules(cellRules, s.ba.NX(), s.ba.NY())
		if err != nil {
			return nil, err
		}
		switch s.cfg.Smoothing {
		case SmoothBinary:
			return filter.LowPass(bm, s.cfg.SmoothThreshold)
		case SmoothMorphological:
			return filter.Open(filter.Close(bm)), nil
		default:
			return bm, nil
		}
	}
}

// MineAt runs the full clustering pipeline at fixed thresholds for the
// configured criterion value: mine cell rules, build and smooth the grid,
// run BitOp with dynamic pruning, and convert the rectangles to clustered
// association rules.
func (s *System) MineAt(minSup, minConf float64) ([]rules.ClusteredRule, error) {
	seg, err := s.segCode(s.cfg.CritValue)
	if err != nil {
		return nil, err
	}
	return s.mineAtSeg(obs.Span{}, seg, minSup, minConf)
}

// mineAtSeg emits "mine" (rule generation + grid + smoothing) and
// "cluster" (BitOp + rule conversion) spans under parent; a zero parent
// span disables both.
func (s *System) mineAtSeg(parent obs.Span, seg int, minSup, minConf float64) ([]rules.ClusteredRule, error) {
	minConf = s.effectiveMinConf(seg, minConf)
	sp := parent.Child("mine",
		obs.Float("support", minSup), obs.Float("confidence", minConf))
	var bm *grid.Bitmap
	var err error
	s.labeled("mine", func() { bm, err = s.buildGrid(seg, minSup, minConf) })
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.End(obs.Int("grid_x", s.ba.NX()), obs.Int("grid_y", s.ba.NY()))
	gridArea := s.ba.NX() * s.ba.NY()
	minArea := 1
	if s.cfg.PruneFraction > 0 {
		minArea = int(math.Ceil(s.cfg.PruneFraction * float64(gridArea)))
		if minArea < 1 {
			minArea = 1
		}
	}
	sp = parent.Child("cluster", obs.Int("min_area", minArea), obs.Int("seg", seg))
	var st *bitop.Stats
	if s.obs.Enabled() {
		st = &bitop.Stats{}
	}
	var rects []grid.Rect
	s.labeled("cluster", func() { rects = bitopCluster(bm, minArea, st) })
	if st != nil {
		s.mBitopAnd.Add(st.AndWordOps())
		s.mBitopCmp.Add(st.CmpWordOps())
		s.mBitopCand.Add(st.Candidates())
		s.mBitopRounds.Add(st.Rounds())
		for _, rows := range st.WorkerRows() {
			s.mWorkerRows.Observe(float64(rows))
		}
		for _, r := range rects {
			s.mRectArea.Observe(float64(r.Area()))
			s.mRectWidth.Observe(float64(r.Width()))
			s.mRectHeight.Observe(float64(r.Height()))
		}
	}
	meta := cluster.Meta{
		XAttr: s.cfg.XAttr, YAttr: s.cfg.YAttr,
		CritAttr:  s.cfg.CritAttr,
		CritValue: s.schema.At(s.critIdx).Category(seg),
	}
	rs, err := cluster.FromRects(rects, s.ba, seg, s.xb, s.yb, meta)
	if err != nil {
		sp.End()
		return nil, err
	}
	// §2.1 invariant: clustered rules always meet the minimum thresholds.
	// Smoothing can pull cells into a cluster that were never rules, so
	// clusters whose aggregate confidence fell below the minimum — noise
	// fragments, mostly — are discarded here.
	kept := rs[:0]
	for _, r := range rs {
		if r.Confidence >= minConf {
			kept = append(kept, r)
		}
	}
	if st != nil {
		sp.End(obs.Int("rects", len(rects)), obs.Int("rules", len(kept)),
			obs.Int("and_word_ops", int(st.AndWordOps())),
			obs.Int("cmp_word_ops", int(st.CmpWordOps())),
			obs.Int("candidates", int(st.Candidates())),
			obs.Int("rounds", int(st.Rounds())))
	} else {
		sp.End(obs.Int("rects", len(rects)), obs.Int("rules", len(kept)))
	}
	return kept, nil
}
