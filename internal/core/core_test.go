package core

import (
	"testing"

	"arcs/internal/dataset"
	"arcs/internal/optimizer"
	"arcs/internal/synth"
	"arcs/internal/verify"
)

// f2System builds an ARCS system over Function 2 data.
func f2System(t *testing.T, n int, outliers float64, cfg Config) *System {
	t.Helper()
	gen, err := synth.New(synth.Config{
		Function: 2, N: n, Seed: 42,
		Perturbation: 0.05, OutlierFraction: outliers, FracA: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.XAttr == "" {
		cfg.XAttr = synth.AttrAge
	}
	if cfg.YAttr == "" {
		cfg.YAttr = synth.AttrSalary
	}
	if cfg.CritAttr == "" {
		cfg.CritAttr = synth.AttrGroup
	}
	if cfg.CritValue == "" {
		cfg.CritValue = synth.GroupA
	}
	sys, err := New(gen, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestConfigValidation(t *testing.T) {
	gen, _ := synth.New(synth.Config{Function: 2, N: 100, Seed: 1})
	bad := []Config{
		{}, // missing attrs
		{XAttr: "age", YAttr: "age", CritAttr: "group"},        // same LHS
		{XAttr: "age", YAttr: "group", CritAttr: "group"},      // crit on LHS
		{XAttr: "age", YAttr: "salary", CritAttr: "nope"},      // unknown attr
		{XAttr: "age", YAttr: "salary", CritAttr: "salary"},    // quantitative criterion
		{XAttr: "elevel", YAttr: "zipcode", CritAttr: "group"}, // both LHS categorical
	}
	for i, cfg := range bad {
		gen.Reset()
		if _, err := New(gen, cfg); err == nil {
			t.Errorf("case %d: config %+v should be rejected", i, cfg)
		}
	}
}

func TestMineAtFixedThresholdsFindsThreeClusters(t *testing.T) {
	// The paper's §4.2 result: at minsup 0.01 / minconf 0.39 on F2 data
	// with outliers, ARCS produces exactly three clustered rules, one
	// per disjunct.
	sys := f2System(t, 30_000, 0.10, Config{NumBins: 50})
	rs, err := sys.MineAt(0.0001, 0.39)
	if err != nil {
		t.Fatal(err)
	}
	// The union of the Function 2 disjuncts admits several near-optimal
	// rectangle covers (the young and middle bands overlap in salary),
	// so the greedy cover may use 3 or 4 rectangles; the paper reports 3.
	if len(rs) < 3 || len(rs) > 4 {
		for _, r := range rs {
			t.Logf("rule: %s (sup %.4f conf %.2f)", r, r.Support, r.Confidence)
		}
		t.Fatalf("got %d clustered rules, want 3-4", len(rs))
	}
	// The union of the clusters must coincide with the generating
	// regions geometrically: false-positive and false-negative area
	// fractions over the attribute domain must both be small.
	truth := func(x, y float64) bool {
		for _, reg := range synth.Function2Regions() {
			if reg.Contains(x, y) {
				return true
			}
		}
		return false
	}
	fp, fn, err := verify.RegionErrors(rs, truth,
		synth.AgeMin, synth.AgeMax, synth.SalaryMin, synth.SalaryMax, 200)
	if err != nil {
		t.Fatal(err)
	}
	if fp > 0.04 || fn > 0.06 {
		for _, r := range rs {
			t.Logf("rule: %s", r)
		}
		t.Errorf("geometric error too high: fp=%.3f fn=%.3f of the domain", fp, fn)
	}
}

func TestRunOptimizerConverges(t *testing.T) {
	sys := f2System(t, 20_000, 0.10, Config{
		NumBins: 30,
		Walk:    walkBudget(),
	})
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) < 2 || len(res.Rules) > 6 {
		for _, r := range res.Rules {
			t.Logf("rule: %s", r)
		}
		t.Errorf("optimizer found %d rules, expected ~3", len(res.Rules))
	}
	if res.Errors.Rate() > 0.16 {
		t.Errorf("error rate %.2f%% too high", 100*res.Errors.Rate())
	}
	if res.Evaluations == 0 || len(res.Trace) == 0 {
		t.Error("missing search trace")
	}
	if res.MinSupport <= 0 {
		t.Errorf("MinSupport = %v", res.MinSupport)
	}
}

// walkBudget keeps optimizer probes cheap in tests while leaving enough
// confidence resolution to find the good region of the search space.
func walkBudget() optimizer.ThresholdWalk {
	return optimizer.ThresholdWalk{MaxSupportLevels: 10, MaxConfLevels: 8, MaxEvals: 120}
}

func TestSegmentAllCoversBothGroups(t *testing.T) {
	sys := f2System(t, 15_000, 0, Config{NumBins: 20, Walk: walkBudget()})
	results, err := sys.SegmentAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results for %d groups, want 2", len(results))
	}
	a := results[synth.GroupA]
	if a == nil || len(a.Rules) == 0 {
		t.Error("no segmentation for Group A")
	}
	other := results[synth.GroupOther]
	if other == nil {
		t.Error("missing result for Group other")
	}
}

func TestGridAccessors(t *testing.T) {
	sys := f2System(t, 5_000, 0, Config{NumBins: 20})
	bm, err := sys.Grid(synth.GroupA, 0.0001, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if bm.Rows() != 20 || bm.Cols() != 20 {
		t.Errorf("grid dims = %d×%d", bm.Rows(), bm.Cols())
	}
	if !bm.Any() {
		t.Error("grid empty at low thresholds")
	}
	if _, err := sys.Grid("bogus", 0.1, 0.1); err == nil {
		t.Error("unknown criterion label should error")
	}
	if sys.BinArray() == nil || sys.Sample() == nil {
		t.Error("accessors returned nil")
	}
	xb, yb := sys.Binners()
	if xb.NumBins() != 20 || yb.NumBins() != 20 {
		t.Error("binner accessor wrong")
	}
}

func TestSmoothingModes(t *testing.T) {
	for _, mode := range []SmoothingMode{SmoothOff, SmoothBinary, SmoothWeighted, SmoothMorphological} {
		sys := f2System(t, 10_000, 0.10, Config{NumBins: 25, Smoothing: mode})
		rs, err := sys.MineAt(0.0001, 0.39)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if len(rs) == 0 {
			t.Errorf("mode %v: no rules", mode)
		}
	}
}

func TestBinStrategies(t *testing.T) {
	for _, strat := range []BinStrategy{BinEquiWidth, BinEquiDepth, BinHomogeneity, BinSupervised} {
		sys := f2System(t, 10_000, 0, Config{NumBins: 20, BinStrategy: strat})
		rs, err := sys.MineAt(0.0001, 0.39)
		if err != nil {
			t.Fatalf("strategy %v: %v", strat, err)
		}
		if len(rs) == 0 {
			t.Errorf("strategy %v: no rules", strat)
		}
	}
}

func TestFixedSearch(t *testing.T) {
	sys := f2System(t, 10_000, 0, Config{
		NumBins:            25,
		Search:             SearchFixed,
		FixedMinSupport:    0.0001,
		FixedMinConfidence: 0.39,
	})
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MinSupport != 0.0001 || res.MinConfidence != 0.39 {
		t.Errorf("fixed thresholds not honored: %v, %v", res.MinSupport, res.MinConfidence)
	}
	if res.Evaluations != 1 {
		t.Errorf("Evaluations = %d", res.Evaluations)
	}
}

func TestExplicitRangesSkipFitDependence(t *testing.T) {
	xr := [2]float64{synth.AgeMin, synth.AgeMax}
	yr := [2]float64{synth.SalaryMin, synth.SalaryMax}
	sys := f2System(t, 10_000, 0, Config{NumBins: 25, XRange: &xr, YRange: &yr})
	rs, err := sys.MineAt(0.0001, 0.39)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Error("no rules with explicit ranges")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	mk := func() *Result {
		sys := f2System(t, 8_000, 0.1, Config{NumBins: 20, Walk: walkBudget()})
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.MinSupport != b.MinSupport || a.MinConfidence != b.MinConfidence || len(a.Rules) != len(b.Rules) {
		t.Errorf("non-deterministic results: %+v vs %+v", a, b)
	}
}

func TestCategoricalLHSReordered(t *testing.T) {
	// elevel (categorical, 5 values) × salary: the pipeline must accept
	// a categorical LHS attribute and still produce rules. Function 3
	// ties group to (age, elevel); use elevel × age.
	gen, err := synth.New(synth.Config{Function: 3, N: 20_000, Seed: 7, FracA: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(gen, Config{
		XAttr: synth.AttrELevel, YAttr: synth.AttrAge,
		CritAttr: synth.AttrGroup, CritValue: synth.GroupA,
		NumBins: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sys.MineAt(0.0005, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Error("categorical LHS produced no rules")
	}
	xb, _ := sys.Binners()
	if xb.NumBins() != 5 {
		t.Errorf("elevel bins = %d, want 5 (one per category)", xb.NumBins())
	}
}

func TestRunValueUnknownLabel(t *testing.T) {
	sys := f2System(t, 1_000, 0, Config{NumBins: 10})
	if _, err := sys.RunValue("nonexistent"); err == nil {
		t.Error("unknown label should error")
	}
}

func TestEmptySourceRejected(t *testing.T) {
	schema := synth.NewSchema()
	empty := dataset.NewTable(schema)
	_, err := New(empty, Config{
		XAttr: synth.AttrAge, YAttr: synth.AttrSalary,
		CritAttr: synth.AttrGroup, CritValue: synth.GroupA,
	})
	if err == nil {
		t.Error("empty source should be rejected")
	}
}

func TestSelectAttributePair(t *testing.T) {
	// Function 1 is determined purely by age, so age must rank first.
	// (On Function 2 the marginal distribution of group given age alone
	// is flat by construction, so age carries almost no univariate gain
	// there — salary and its correlate commission dominate instead.)
	gen, _ := synth.New(synth.Config{Function: 1, N: 10_000, Seed: 3})
	tb, err := dataset.Materialize(gen)
	if err != nil {
		t.Fatal(err)
	}
	x, _, scores, err := SelectAttributePair(tb, synth.AttrGroup, 10)
	if err != nil {
		t.Fatal(err)
	}
	if x != synth.AttrAge {
		t.Errorf("top attribute = %s, want age. scores: %v", x, scores)
	}
	if len(scores) == 0 || scores[0].Gain < scores[len(scores)-1].Gain {
		t.Error("scores not sorted descending")
	}
	// On Function 2, salary must rank first.
	gen2, _ := synth.New(synth.Config{Function: 2, N: 10_000, Seed: 3, FracA: 0.4})
	tb2, _ := dataset.Materialize(gen2)
	x2, _, scores2, err := SelectAttributePair(tb2, synth.AttrGroup, 10)
	if err != nil {
		t.Fatal(err)
	}
	if x2 != synth.AttrSalary {
		t.Errorf("top F2 attribute = %s, want salary. scores: %v", x2, scores2)
	}
}

func TestSelectAttributePairValidation(t *testing.T) {
	gen, _ := synth.New(synth.Config{Function: 2, N: 100, Seed: 3})
	tb, _ := dataset.Materialize(gen)
	if _, _, _, err := SelectAttributePair(tb, synth.AttrGroup, 1); err == nil {
		t.Error("bins < 2 should error")
	}
	if _, _, _, err := SelectAttributePair(tb, "nope", 10); err == nil {
		t.Error("unknown criterion should error")
	}
	if _, _, _, err := SelectAttributePair(tb, synth.AttrSalary, 10); err == nil {
		t.Error("quantitative criterion should error")
	}
}

func TestInterestLift(t *testing.T) {
	sys := f2System(t, 10_000, 0, Config{NumBins: 25, InterestLift: 1.5})
	// With lift 1.5 and prior 0.4, the effective confidence floor is
	// 0.6 even when the caller asks for 0.
	lifted, err := sys.MineAt(0.0001, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range lifted {
		if r.Confidence < 0.6 {
			t.Errorf("rule confidence %.2f below lift bar 0.6: %s", r.Confidence, r)
		}
	}
	// The lift bar admits fewer or equal grid cells than no bar (the
	// cluster count can go either way: fewer cells may fragment into
	// more rectangles).
	liftedGrid, err := sys.Grid(synth.GroupA, 0.0001, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain := f2System(t, 10_000, 0, Config{NumBins: 25})
	plainGrid, err := plain.Grid(synth.GroupA, 0.0001, 0)
	if err != nil {
		t.Fatal(err)
	}
	if liftedGrid.PopCount() > plainGrid.PopCount() {
		t.Errorf("lift bar admitted more cells (%d) than no bar (%d)",
			liftedGrid.PopCount(), plainGrid.PopCount())
	}
	// Negative lift is rejected.
	gen, _ := synth.New(synth.Config{Function: 2, N: 100, Seed: 1})
	if _, err := New(gen, Config{
		XAttr: synth.AttrAge, YAttr: synth.AttrSalary,
		CritAttr: synth.AttrGroup, CritValue: synth.GroupA,
		InterestLift: -1,
	}); err == nil {
		t.Error("negative lift should be rejected")
	}
}

func TestEnumStrings(t *testing.T) {
	cases := map[string]string{
		BinEquiWidth.String():        "equi-width",
		BinEquiDepth.String():        "equi-depth",
		BinHomogeneity.String():      "homogeneity",
		BinSupervised.String():       "supervised",
		SmoothBinary.String():        "binary",
		SmoothOff.String():           "off",
		SmoothWeighted.String():      "support-weighted",
		SmoothMorphological.String(): "morphological",
		SearchWalk.String():          "threshold-walk",
		SearchAnneal.String():        "simulated-annealing",
		SearchFactorial.String():     "factorial-design",
		SearchFixed.String():         "fixed",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if BinStrategy(99).String() == "" || SmoothingMode(99).String() == "" || SearchStrategy(99).String() == "" {
		t.Error("unknown enum values should render non-empty")
	}
}

func TestObjectiveAccessor(t *testing.T) {
	sys := f2System(t, 5_000, 0, Config{NumBins: 15})
	obj, err := sys.Objective(synth.GroupA)
	if err != nil {
		t.Fatal(err)
	}
	sups, err := obj.SupportLevels()
	if err != nil {
		t.Fatal(err)
	}
	if len(sups) == 0 {
		t.Error("no support levels")
	}
	confs, err := obj.ConfidenceLevels(sups[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(confs) == 0 {
		t.Error("no confidence levels")
	}
	cost, n, err := obj.Evaluate(sups[0], confs[0])
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 && cost != 0 {
		t.Errorf("inconsistent evaluation: cost=%v n=%d", cost, n)
	}
	if _, err := sys.Objective("bogus"); err == nil {
		t.Error("unknown label should error")
	}
}

func TestRunValueWithAnnealAndFactorial(t *testing.T) {
	for _, search := range []SearchStrategy{SearchAnneal, SearchFactorial} {
		sys := f2System(t, 10_000, 0, Config{
			NumBins:   20,
			Search:    search,
			Anneal:    optimizer.Anneal{Seed: 1, Iterations: 40},
			Factorial: optimizer.Factorial{Rounds: 6},
		})
		res, err := sys.Run()
		if err != nil {
			t.Fatalf("%v: %v", search, err)
		}
		if len(res.Rules) == 0 {
			t.Errorf("%v found no rules", search)
		}
		// Search quality differs by strategy (factorial probes box
		// corners and can settle for a coarser optimum on this
		// small-budget configuration); both must at least beat the
		// trivial segmentation.
		if res.Errors.Rate() > 0.38 {
			t.Errorf("%v error rate %.2f%%", search, 100*res.Errors.Rate())
		}
	}
}

func TestSegmentAllWithEmptyGroup(t *testing.T) {
	// Register a criterion label that never occurs; SegmentAll must
	// report an empty result for it, not fail.
	gen, _ := synth.New(synth.Config{Function: 2, N: 5_000, Seed: 3, FracA: 0.4})
	gen.Schema().Attr(synth.AttrGroup).CategoryCode("phantom")
	sys, err := New(gen, Config{
		XAttr: synth.AttrAge, YAttr: synth.AttrSalary,
		CritAttr: synth.AttrGroup,
		NumBins:  15,
		Walk:     walkBudget(),
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := sys.SegmentAll()
	if err != nil {
		t.Fatal(err)
	}
	phantom := results["phantom"]
	if phantom == nil {
		t.Fatal("missing phantom result")
	}
	if len(phantom.Rules) != 0 {
		t.Errorf("phantom group has %d rules", len(phantom.Rules))
	}
	if len(results[synth.GroupA].Rules) == 0 {
		t.Error("real group lost its rules")
	}
}

func TestSelectAttributePairJointInternal(t *testing.T) {
	gen, _ := synth.New(synth.Config{Function: 2, N: 8_000, Seed: 3, FracA: 0.4})
	tb, err := dataset.Materialize(gen)
	if err != nil {
		t.Fatal(err)
	}
	x, y, scores, err := SelectAttributePairJoint(tb, synth.AttrGroup, 8)
	if err != nil {
		t.Fatal(err)
	}
	pair := map[string]bool{x: true, y: true}
	if !pair[synth.AttrAge] || !pair[synth.AttrSalary] {
		t.Errorf("joint selection picked (%s, %s), want age+salary; scores %v", x, y, scores[:3])
	}
	if _, _, _, err := SelectAttributePairJoint(tb, synth.AttrGroup, 1); err == nil {
		t.Error("bins < 2 should error")
	}
	if _, _, _, err := SelectAttributePairJoint(tb, "nope", 8); err == nil {
		t.Error("unknown criterion should error")
	}
	if _, _, _, err := SelectAttributePairJoint(tb, synth.AttrSalary, 8); err == nil {
		t.Error("quantitative criterion should error")
	}
}
