package core

import (
	"context"
	"fmt"

	"arcs/internal/counts"
	"arcs/internal/dataset"
	"arcs/internal/obs"
)

// stageCount is the Count stage: fill the count backend with one pass
// over the source. Three variants, all producing bit-identical counts:
//
//   - fused: a single pass doing reservoir sampling and counting
//     together, taken when the binners needed no fitting pass (fixed
//     ranges or categorical axes) and ingest is sequential;
//   - sharded: IngestWorkers > 1 and the source shards by range — each
//     worker fills a private dense array, merged deterministically;
//   - dense: the sequential reference build (also the fallback when a
//     streaming source cannot shard).
func (s *System) stageCount(ctx context.Context, src dataset.Source, nseg int, fused bool) ([]obs.Attr, error) {
	spec := counts.Spec{
		XIdx: s.xIdx, YIdx: s.yIdx, CritIdx: s.critIdx,
		XBinner: s.xb, YBinner: s.yb, NSeg: nseg,
	}
	mode, workers := "dense", 1
	var err error
	switch {
	case fused:
		mode = "fused"
		sm := s.newSampler()
		if s.ba, err = counts.BuildFused(ctx, src, spec, sm.observe); err != nil {
			return nil, err
		}
		if s.ba.N() == 0 {
			return nil, fmt.Errorf("core: source yielded no tuples")
		}
		if err = s.buildSample(sm.buf); err != nil {
			return nil, err
		}
	default:
		if s.ba, err = counts.Build(ctx, src, spec, s.cfg.IngestWorkers); err != nil {
			return nil, err
		}
		if sh, ok := s.ba.(*counts.Sharded); ok {
			mode, workers = "sharded", sh.Workers()
		}
		if s.ba.N() == 0 {
			return nil, fmt.Errorf("core: source yielded no tuples")
		}
	}
	attrs := []obs.Attr{
		obs.Int("tuples", int(s.ba.N())),
		obs.Int("grid_x", s.ba.NX()), obs.Int("grid_y", s.ba.NY()),
		obs.Int("segments", nseg),
		obs.Str("backend", mode), obs.Int("workers", workers),
	}
	if s.obs.Enabled() {
		attrs = append(attrs, s.countMetrics()...)
	}
	return attrs, nil
}

// countMetrics scans the built backend once for occupancy metrics and
// reports the occupancy span attributes. The cell scan runs once per
// New with observability on, never on the probe path.
func (s *System) countMetrics() []obs.Attr {
	reg := s.obs.Registry()
	occ := reg.HistogramBuckets("bin_cell_occupancy", obs.SizeBuckets)
	occupied := 0
	cells := s.ba.NX() * s.ba.NY()
	for y := 0; y < s.ba.NY(); y++ {
		for x := 0; x < s.ba.NX(); x++ {
			if n := s.ba.CellTotal(x, y); n > 0 {
				occupied++
				occ.Observe(float64(n))
			}
		}
	}
	memBytes := 0
	if szr, ok := s.ba.(counts.Sizer); ok {
		memBytes = szr.Stats().MemBytes
	}
	reg.Gauge("binarray_mem_bytes").Set(int64(memBytes))
	reg.Gauge("bin_cells_total").Set(int64(cells))
	reg.Gauge("bin_cells_empty").Set(int64(cells - occupied))
	emptyFrac := 0.0
	if cells > 0 {
		emptyFrac = float64(cells-occupied) / float64(cells)
	}
	return []obs.Attr{
		obs.Int("occupied_cells", occupied),
		obs.Float("empty_fraction", emptyFrac),
		obs.Int("mem_bytes", memBytes),
	}
}
