package core

import (
	"context"
	"fmt"

	"arcs/internal/counts"
	"arcs/internal/dataset"
	"arcs/internal/obs"
)

// CountsInfo identifies the count backend a System serves reads from
// and its footprint — published on every Result, in the JSON report,
// and as gauges on /metrics, so operators can see which substrate a
// run landed on and what it cost.
type CountsInfo struct {
	// Backend is the backend kind: dense, sparse or spill.
	Backend string `json:"backend"`
	// Workers is the ingest parallelism of the build (1 = sequential).
	Workers int `json:"workers,omitempty"`
	// Cells is the grid size nx×ny; OccupiedCells counts cells holding
	// at least one tuple.
	Cells         int64 `json:"cells"`
	OccupiedCells int64 `json:"occupied_cells"`
	// MemBytes is resident memory; DiskBytes is on-disk state (spill
	// backend only).
	MemBytes  int64 `json:"mem_bytes"`
	DiskBytes int64 `json:"disk_bytes,omitempty"`
}

// countsInfoOf summarizes a built backend.
func countsInfoOf(b counts.Backend, workers int) CountsInfo {
	info := CountsInfo{
		Backend: counts.KindOf(b).String(),
		Workers: workers,
		Cells:   int64(b.NX()) * int64(b.NY()),
	}
	if szr, ok := b.(counts.Sizer); ok {
		st := szr.Stats()
		info.OccupiedCells = int64(st.OccupiedCells)
		info.MemBytes = int64(st.MemBytes)
		info.DiskBytes = st.DiskBytes
	}
	return info
}

// stageCount is the Count stage: fill the count backend with one pass
// over the source. The pass shape (fused single-pass, sharded
// parallel, sequential) and the backend kind (dense, sparse,
// spill-to-disk) dispatch independently — Config.CountsBackend pins a
// kind, Config.MemBudget lets Auto pick one the budget fits — and all
// combinations produce bit-identical counts.
func (s *System) stageCount(ctx context.Context, src dataset.Source, nseg int, fused bool) ([]obs.Attr, error) {
	spec := counts.Spec{
		XIdx: s.xIdx, YIdx: s.yIdx, CritIdx: s.critIdx,
		XBinner: s.xb, YBinner: s.yb, NSeg: nseg,
	}
	kind, err := counts.ParseKind(s.cfg.CountsBackend)
	if err != nil {
		return nil, err // unreachable: Config.validate parses it first
	}
	opts := counts.Options{
		Workers:   s.cfg.IngestWorkers,
		Kind:      kind,
		MemBudget: s.cfg.MemBudget,
		SpillDir:  s.cfg.SpillDir,
	}
	mode, workers := "sequential", 1
	switch {
	case fused:
		mode = "fused"
		sm := s.newSampler()
		if s.ba, err = counts.BuildFused(ctx, src, spec, sm.observe, opts); err != nil {
			return nil, err
		}
		if s.ba.N() == 0 {
			return nil, fmt.Errorf("core: source yielded no tuples")
		}
		if err = s.buildSample(sm.buf); err != nil {
			return nil, err
		}
	default:
		if s.ba, err = counts.Build(ctx, src, spec, opts); err != nil {
			return nil, err
		}
		if sh, ok := s.ba.(*counts.Sharded); ok {
			mode, workers = "sharded", sh.Workers()
		}
		if s.ba.N() == 0 {
			return nil, fmt.Errorf("core: source yielded no tuples")
		}
	}
	s.countsInfo = countsInfoOf(s.ba, workers)
	attrs := []obs.Attr{
		obs.Int("tuples", int(s.ba.N())),
		obs.Int("grid_x", s.ba.NX()), obs.Int("grid_y", s.ba.NY()),
		obs.Int("segments", nseg),
		obs.Str("backend", s.countsInfo.Backend),
		obs.Str("mode", mode), obs.Int("workers", workers),
	}
	if s.obs.Enabled() {
		attrs = append(attrs, s.countMetrics()...)
	}
	return attrs, nil
}

// countMetrics walks the built backend's occupied cells once for
// occupancy metrics and reports the occupancy span attributes. The
// walk is occupied-cells-only (counts.Backend.Cells), so a sparse or
// spilled high-resolution grid pays for its tuples, not its
// resolution; it runs once per New with observability on, never on the
// probe path.
func (s *System) countMetrics() []obs.Attr {
	reg := s.obs.Registry()
	occ := reg.HistogramBuckets("bin_cell_occupancy", obs.SizeBuckets)
	nseg := s.ba.NSeg()
	occupied := int64(0)
	s.ba.Cells(func(_, _ int, cell []uint32) {
		if n := cell[nseg]; n > 0 {
			occupied++
			occ.Observe(float64(n))
		}
	})
	info := s.countsInfo
	cells := info.Cells
	reg.Gauge("binarray_mem_bytes").Set(info.MemBytes)
	reg.Gauge("counts_disk_bytes").Set(info.DiskBytes)
	reg.Gauge("counts_occupied_cells").Set(occupied)
	reg.Gauge("bin_cells_total").Set(cells)
	reg.Gauge("bin_cells_empty").Set(cells - occupied)
	// The backend identity as a one-hot gauge family: no label support
	// in the registry, so the kind is encoded in the metric name
	// (counts_backend_dense|sparse|spill), with the losers zeroed so a
	// scrape after a backend switch does not show two ones.
	for _, k := range []counts.Kind{counts.Dense, counts.Sparse, counts.Spill} {
		v := int64(0)
		if k.String() == info.Backend {
			v = 1
		}
		reg.Gauge("counts_backend_" + k.String()).Set(v)
	}
	emptyFrac := 0.0
	if cells > 0 {
		emptyFrac = float64(cells-occupied) / float64(cells)
	}
	return []obs.Attr{
		obs.Int("occupied_cells", int(occupied)),
		obs.Float("empty_fraction", emptyFrac),
		obs.Int("mem_bytes", int(info.MemBytes)),
		obs.Int("disk_bytes", int(info.DiskBytes)),
	}
}
