package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestComparisonShapes(t *testing.T) {
	// Small sizes keep the test fast; the paper's qualitative shape must
	// hold: ARCS emits far fewer rules than C4.5, and both achieve low
	// error on clean data.
	// 20k is the paper's smallest database size; below that a 50-bin
	// grid is too sparse to support rules at all.
	rows, err := Comparison([]int{20_000}, 0, 20_000, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.C45Run {
			t.Fatalf("C4.5 skipped at %d tuples", r.N)
		}
		if r.ARCSRules >= r.C45Rules {
			t.Errorf("N=%d: ARCS rules (%d) should be far fewer than C4.5 rules (%d)",
				r.N, r.ARCSRules, r.C45Rules)
		}
		if r.ARCSErrorPct > 20 {
			t.Errorf("N=%d: ARCS error %.1f%% too high", r.N, r.ARCSErrorPct)
		}
		if r.C45ErrorPct > 10 {
			t.Errorf("N=%d: C4.5 error %.1f%% too high", r.N, r.C45ErrorPct)
		}
	}
}

func TestComparisonCap(t *testing.T) {
	rows, err := Comparison([]int{10_000, 30_000}, 0.10, 10_000, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	if !rows[0].C45Run {
		t.Error("C4.5 should run at the cap")
	}
	if rows[1].C45Run {
		t.Error("C4.5 should be skipped above the cap")
	}
	// Render both table styles.
	errTable := RenderComparison(rows, false)
	if !strings.Contains(errTable, "—") {
		t.Error("skipped C4.5 entry should render as —")
	}
	timeTable := RenderComparison(rows, true)
	if !strings.Contains(timeTable, "s") {
		t.Error("time table missing seconds")
	}
}

func TestScaleupLinearity(t *testing.T) {
	rows, err := Scaleup([]int{10_000, 40_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("missing rows")
	}
	ratio := LinearityCheck(rows)
	// Per-tuple time must not blow up; allow generous slack for
	// fixed overheads at small sizes.
	if ratio > 2.0 {
		t.Errorf("per-tuple time ratio %.2f suggests superlinear scaling", ratio)
	}
}

func TestBinGranularityTrend(t *testing.T) {
	rows, err := BinGranularity(10_000, []int{10, 50}, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("missing rows")
	}
	// The paper's finding: finer binning trends toward more optimal
	// clusters (lower geometric error).
	if rows[1].GeomErrorPct > rows[0].GeomErrorPct+2 {
		t.Errorf("50 bins geometric error %.2f%% much worse than 10 bins %.2f%%",
			rows[1].GeomErrorPct, rows[0].GeomErrorPct)
	}
}

func TestRecoveredRulesHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-tuple run")
	}
	res, err := RecoveredRules()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) < 3 || len(res.Rules) > 5 {
		for _, r := range res.Rules {
			t.Logf("rule: %s", r)
		}
		t.Errorf("recovered %d rules, paper reports 3 (3-5 acceptable for greedy cover)", len(res.Rules))
	}
}

func TestSmoothingDemo(t *testing.T) {
	before, after, err := SmoothingDemo(20_000, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(before, "#") || !strings.Contains(after, "#") {
		t.Error("demo grids empty")
	}
	if before == after {
		t.Error("smoothing had no visible effect")
	}
}

func TestFormatDuration(t *testing.T) {
	if got := FormatDuration(1500 * time.Millisecond); got != "1.50s" {
		t.Errorf("FormatDuration = %q", got)
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("four full optimizer runs per study")
	}
	studies, err := Ablations(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(studies) != 4 {
		t.Fatalf("studies = %d", len(studies))
	}
	for _, st := range studies {
		if len(st.Rows) < 3 {
			t.Errorf("study %q has %d rows", st.Name, len(st.Rows))
		}
		for _, r := range st.Rows {
			if r.Variant == "" {
				t.Errorf("study %q has unnamed variant", st.Name)
			}
			if r.ErrorPct < 0 || r.ErrorPct > 100 {
				t.Errorf("study %q variant %q error %.2f out of range", st.Name, r.Variant, r.ErrorPct)
			}
		}
	}
	out := RenderAblations(studies)
	if !strings.Contains(out, "smoothing mode") || !strings.Contains(out, "bin strategy") {
		t.Error("render missing sections")
	}
}

func TestWhyClustering(t *testing.T) {
	res, err := WhyClustering(10_000, 30)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's motivation: clustering condenses the rule count by
	// orders of magnitude.
	if res.ClusteredRules == 0 {
		t.Fatal("no clustered rules")
	}
	if res.CellRules < 10*res.ClusteredRules {
		t.Errorf("cell rules (%d) should dwarf clustered rules (%d)", res.CellRules, res.ClusteredRules)
	}
	if res.QuantRules <= res.ClusteredRules {
		t.Errorf("quantitative rules (%d) should exceed clustered rules (%d)",
			res.QuantRules, res.ClusteredRules)
	}
}
