package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"arcs/internal/core"
)

// BenchRecord is one appended run in a BENCH_*.json trajectory, keyed by
// git SHA and timestamp so successive CI runs accumulate into a history
// instead of overwriting each other.
type BenchRecord struct {
	// GitSHA is the short commit hash the run was built from, when
	// discoverable.
	GitSHA string `json:"git_sha,omitempty"`
	// Timestamp is the run's wall-clock time, RFC 3339.
	Timestamp string `json:"timestamp"`
	// Tuples and Workers mirror the report's workload parameters.
	Tuples  int `json:"tuples,omitempty"`
	Workers int `json:"workers,omitempty"`
	// Crossover is the ingest experiment's scaling headline: the
	// smallest measured size at which sharded ingest beat the dense
	// build (0 = never). The diff gate fails a run whose crossover
	// regresses to 0 while the predecessor had one.
	Crossover int `json:"crossover,omitempty"`
	// Phases holds per-phase wall-clock timings. Records appended from a
	// feedbackloop report use the batched-cold variant's phases; records
	// appended from a span trace (arcstrace append) use the trace's
	// aggregated phase paths.
	Phases []core.PhaseTiming `json:"phases,omitempty"`
	// Variants carries the full per-variant measurements for records
	// appended from a feedbackloop report.
	Variants []FeedbackLoopVariant `json:"variants,omitempty"`
	// Quality carries per-function mining-quality rows for records
	// appended from a quality sweep (BENCH_quality.json). The diff gate
	// compares rows matched by function number.
	Quality []QualityRow `json:"quality,omitempty"`
}

// BenchFile is the on-disk schema of BENCH_*.json: the latest report's
// fields stay readable at the top level (inlined, so consumers of the
// old single-report schema keep working), and History accumulates one
// record per run. The embedded report is nil — and its fields absent —
// in trajectories built purely from appended records.
type BenchFile struct {
	*FeedbackLoopReport
	History []BenchRecord `json:"history,omitempty"`
}

// ReadBenchFile loads a BENCH_*.json file. A missing or empty file
// yields an empty BenchFile (an interrupted writer's truncated target,
// or a fresh `touch`, should not wedge the trajectory forever); files
// written by the old single-report schema parse with an empty History.
// Corrupted JSON is an error — history is append-only and silently
// dropping it would erase the trajectory on the next write.
func ReadBenchFile(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &BenchFile{}, nil
	}
	if err != nil {
		return nil, err
	}
	if len(strings.TrimSpace(string(data))) == 0 {
		return &BenchFile{}, nil
	}
	var bf BenchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("experiments: parsing %s: %w", path, err)
	}
	return &bf, nil
}

// WriteBenchFile writes the bench file as indented JSON, atomically: a
// tmpfile in the target's directory is renamed over the destination, so
// a reader (or a crash) mid-write never observes a truncated
// trajectory.
func WriteBenchFile(path string, bf *BenchFile) error {
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// AppendBenchReport installs r as the file's top-level latest report and
// appends a history record derived from it, preserving prior history.
func AppendBenchReport(path string, r *FeedbackLoopReport, gitSHA string, now time.Time) error {
	bf, err := ReadBenchFile(path)
	if err != nil {
		return err
	}
	rec := BenchRecord{
		GitSHA:    gitSHA,
		Timestamp: now.UTC().Format(time.RFC3339),
		Tuples:    r.Tuples,
		Workers:   r.Workers,
		Variants:  r.Variants,
	}
	for _, v := range r.Variants {
		if v.Name == "batched-cold" {
			rec.Phases = v.Phases
		}
	}
	bf.FeedbackLoopReport = r
	bf.History = append(bf.History, rec)
	return WriteBenchFile(path, bf)
}

// AppendBenchRecord appends a pre-built record to the file's history,
// leaving the top-level latest report untouched (used by arcstrace to
// fold a span trace into a trajectory).
func AppendBenchRecord(path string, rec BenchRecord) error {
	bf, err := ReadBenchFile(path)
	if err != nil {
		return err
	}
	bf.History = append(bf.History, rec)
	return WriteBenchFile(path, bf)
}

// GitSHA returns the short commit hash of the working tree, or "" when
// git is unavailable (detached environments, release tarballs).
func GitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
