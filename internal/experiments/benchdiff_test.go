package experiments

import (
	"testing"

	"arcs/internal/core"
	"arcs/internal/obs"
)

func phaseRec(crossover int, phases ...core.PhaseTiming) BenchRecord {
	return BenchRecord{GitSHA: "test", Crossover: crossover, Phases: phases}
}

// TestDiffBenchRecordsPhases: phase growth beyond tolerance regresses;
// noise-floor phases, phases missing from either side, and shrinkage do
// not.
func TestDiffBenchRecordsPhases(t *testing.T) {
	oldRec := phaseRec(0,
		core.PhaseTiming{Name: "ingest-dense-1000000", Seconds: 1.0},
		core.PhaseTiming{Name: "ingest-sharded-4-1000000", Seconds: 0.8},
		core.PhaseTiming{Name: "tiny", Seconds: 0.001},
		core.PhaseTiming{Name: "old-only", Seconds: 1.0},
	)
	newRec := phaseRec(0,
		core.PhaseTiming{Name: "ingest-dense-1000000", Seconds: 1.5},     // +50% — regresses
		core.PhaseTiming{Name: "ingest-sharded-4-1000000", Seconds: 0.7}, // faster — fine
		core.PhaseTiming{Name: "tiny", Seconds: 0.004},                   // below noise floor both sides
		core.PhaseTiming{Name: "new-only", Seconds: 5.0},                 // unmatched — skipped
	)
	regs := DiffBenchRecords(oldRec, newRec, obs.DiffOptions{})
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly the dense phase", regs)
	}
	if regs[0].Kind != "phase" || regs[0].Name != "ingest-dense-1000000" {
		t.Fatalf("regression = %+v", regs[0])
	}
	if regs[0].Growth < 0.49 || regs[0].Growth > 0.51 {
		t.Fatalf("growth = %v, want ~0.5", regs[0].Growth)
	}
}

// TestDiffBenchRecordsCrossoverLost: a run that loses its crossover
// (parallel ingest no longer pays at any measured size) regresses even
// when every phase stays in budget.
func TestDiffBenchRecordsCrossoverLost(t *testing.T) {
	oldRec := phaseRec(2_000_000)
	newRec := phaseRec(0)
	regs := DiffBenchRecords(oldRec, newRec, obs.DiffOptions{})
	if len(regs) != 1 || regs[0].Kind != "xover" {
		t.Fatalf("regressions = %+v, want one xover", regs)
	}
}

// TestDiffBenchRecordsCrossoverMoved: the crossover shifting to a
// larger size beyond tolerance regresses; within tolerance it does not.
func TestDiffBenchRecordsCrossoverMoved(t *testing.T) {
	oldRec := phaseRec(2_000_000)
	if regs := DiffBenchRecords(oldRec, phaseRec(5_000_000), obs.DiffOptions{}); len(regs) != 1 || regs[0].Kind != "xover" {
		t.Fatalf("2M→5M regressions = %+v, want one xover", regs)
	}
	if regs := DiffBenchRecords(oldRec, phaseRec(2_000_000), obs.DiffOptions{}); len(regs) != 0 {
		t.Fatalf("2M→2M regressions = %+v, want none", regs)
	}
	// A run that gains a crossover the old record lacked never regresses.
	if regs := DiffBenchRecords(phaseRec(0), phaseRec(2_000_000), obs.DiffOptions{}); len(regs) != 0 {
		t.Fatalf("0→2M regressions = %+v, want none", regs)
	}
}

func qualityRec(rows ...QualityRow) BenchRecord {
	return BenchRecord{GitSHA: "test", Quality: rows}
}

// TestDiffBenchRecordsQualityError: error-rate growth must clear both
// the relative tolerance and the absolute percentage-point floor.
func TestDiffBenchRecordsQualityError(t *testing.T) {
	oldRec := qualityRec(
		QualityRow{Function: 1, ErrorPct: 8.0},
		QualityRow{Function: 2, ErrorPct: 10.0},
		QualityRow{Function: 3, ErrorPct: 0.2},
		QualityRow{Function: 9, ErrorPct: 60.0},
	)
	newRec := qualityRec(
		QualityRow{Function: 1, ErrorPct: 12.0}, // +50%, +4pts — regresses
		QualityRow{Function: 2, ErrorPct: 10.9}, // +9%, under both floors — fine
		QualityRow{Function: 3, ErrorPct: 0.9},  // +350% but under the 1pt floor — fine
		QualityRow{Function: 9, ErrorPct: 64.0}, // +4pts but only +6.7% — within tolerance
		QualityRow{Function: 5, ErrorPct: 50.0}, // unmatched — skipped
	)
	regs := DiffBenchRecords(oldRec, newRec, obs.DiffOptions{})
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly f1", regs)
	}
	if regs[0].Kind != "quality" || regs[0].Name != "f1-error-pct" {
		t.Fatalf("regression = %+v", regs[0])
	}
	if regs[0].Growth < 0.49 || regs[0].Growth > 0.51 {
		t.Fatalf("growth = %v, want ~0.5", regs[0].Growth)
	}
}

// TestDiffBenchRecordsQualityIoU: a recovery-IoU drop beyond the
// absolute floor regresses; smaller drops, gains, and rows without
// recovery on either side do not.
func TestDiffBenchRecordsQualityIoU(t *testing.T) {
	oldRec := qualityRec(
		QualityRow{Function: 1, HasRecovery: true, RecoveryIoU: 0.95},
		QualityRow{Function: 2, HasRecovery: true, RecoveryIoU: 0.90},
		QualityRow{Function: 4, HasRecovery: false},
	)
	newRec := qualityRec(
		QualityRow{Function: 1, HasRecovery: true, RecoveryIoU: 0.80}, // −0.15 — regresses
		QualityRow{Function: 2, HasRecovery: true, RecoveryIoU: 0.88}, // −0.02 — noise
		QualityRow{Function: 4, HasRecovery: true, RecoveryIoU: 0.50}, // old had none — skipped
	)
	regs := DiffBenchRecords(oldRec, newRec, obs.DiffOptions{})
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly f1", regs)
	}
	r := regs[0]
	if r.Kind != "quality" || r.Name != "f1-recovery-iou" {
		t.Fatalf("regression = %+v", r)
	}
	// Growth is the fractional drop: (0.95−0.80)/0.95.
	if r.Growth < 0.15 || r.Growth > 0.17 {
		t.Fatalf("growth = %v, want ~0.158", r.Growth)
	}
}

// TestLastRecords: LastRecord/LastTwoRecords pull from the tail and
// error on short histories.
func TestLastRecords(t *testing.T) {
	bf := &BenchFile{}
	if _, err := LastRecord(bf); err == nil {
		t.Fatal("LastRecord on empty history returned nil error")
	}
	if _, _, err := LastTwoRecords(bf); err == nil {
		t.Fatal("LastTwoRecords on empty history returned nil error")
	}
	bf.History = append(bf.History, BenchRecord{GitSHA: "a"}, BenchRecord{GitSHA: "b"})
	last, err := LastRecord(bf)
	if err != nil || last.GitSHA != "b" {
		t.Fatalf("LastRecord = %+v, %v", last, err)
	}
	oldRec, newRec, err := LastTwoRecords(bf)
	if err != nil || oldRec.GitSHA != "a" || newRec.GitSHA != "b" {
		t.Fatalf("LastTwoRecords = %+v, %+v, %v", oldRec, newRec, err)
	}
}
