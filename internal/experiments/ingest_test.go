package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestIngestBenchSmall: a small run produces the dense baseline plus one
// variant per worker count, all byte-identical, with sane throughputs.
func TestIngestBenchSmall(t *testing.T) {
	r, err := IngestBench(20_000, 30, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Identical {
		t.Fatal("sharded counting pass diverged from the dense build")
	}
	if len(r.Variants) != 3 {
		t.Fatalf("%d variants, want dense + 2 sharded", len(r.Variants))
	}
	if r.Variants[0].Name != "dense" || r.Variants[1].Name != "sharded-2" || r.Variants[2].Name != "sharded-4" {
		t.Fatalf("variant names = %v", []string{r.Variants[0].Name, r.Variants[1].Name, r.Variants[2].Name})
	}
	for _, v := range r.Variants {
		if v.Seconds <= 0 || v.TuplesPerS <= 0 || v.SpeedupVsDense <= 0 {
			t.Errorf("variant %s has non-positive measurements: %+v", v.Name, v)
		}
	}
	if out := RenderIngest(r); !strings.Contains(out, "sharded-4") {
		t.Errorf("rendered report missing variant row:\n%s", out)
	}
}

// TestIngestBenchRecord: the history record carries one phase per
// variant in the BENCH_*.json schema.
func TestIngestBenchRecord(t *testing.T) {
	r := &IngestReport{
		Experiment: "ingest", Tuples: 1_000_000, Identical: true,
		Variants: []IngestVariant{
			{Name: "dense", Workers: 1, Seconds: 2.0},
			{Name: "sharded-4", Workers: 4, Seconds: 0.6},
		},
	}
	rec := IngestBenchRecord(r, "abc1234", time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC))
	if rec.Tuples != 1_000_000 || rec.Workers != 4 || rec.GitSHA != "abc1234" {
		t.Fatalf("record header = %+v", rec)
	}
	if len(rec.Phases) != 2 || rec.Phases[0].Name != "ingest-dense" || rec.Phases[1].Name != "ingest-sharded-4" {
		t.Fatalf("record phases = %+v", rec.Phases)
	}
}
