package experiments

import (
	"context"
	"strings"
	"testing"
	"time"

	"arcs/internal/counts"
)

// TestIngestBenchSmall: a small multi-size run produces one row per
// size with the dense baseline, one variant per swept backend, and one
// variant per worker count — all byte-identical, with sane throughputs.
func TestIngestBenchSmall(t *testing.T) {
	r, err := IngestBench(context.Background(), []int{10_000, 20_000}, 30, []int{2, 4},
		[]counts.Kind{counts.Sparse, counts.Spill})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Identical {
		t.Fatal("a counting-pass variant diverged from the dense build")
	}
	if r.Partial {
		t.Fatal("uncanceled run marked partial")
	}
	if len(r.Sizes) != 2 {
		t.Fatalf("%d size rows, want 2", len(r.Sizes))
	}
	want := []string{"dense", "sparse", "spill", "sharded-2", "sharded-4"}
	for _, row := range r.Sizes {
		if len(row.Variants) != len(want) {
			t.Fatalf("size %d: %d variants, want %d (dense + 2 backends + 2 sharded)",
				row.Tuples, len(row.Variants), len(want))
		}
		for i, v := range row.Variants {
			if v.Name != want[i] {
				t.Fatalf("size %d variant %d = %q, want %q", row.Tuples, i, v.Name, want[i])
			}
			if v.Seconds <= 0 || v.TuplesPerS <= 0 || v.SpeedupVsDense <= 0 {
				t.Errorf("size %d variant %s has non-positive measurements: %+v", row.Tuples, v.Name, v)
			}
		}
	}
	// Legacy top-level fields mirror the largest size.
	if r.Tuples != 20_000 || len(r.Variants) != len(want) {
		t.Errorf("top-level mirror = %d tuples, %d variants; want 20000, %d", r.Tuples, len(r.Variants), len(want))
	}
	out := RenderIngest(r)
	if !strings.Contains(out, "sharded-4") || !strings.Contains(out, "sparse") || !strings.Contains(out, "crossover") {
		t.Errorf("rendered report missing variant row or crossover line:\n%s", out)
	}
}

// TestIngestBenchCanceled: a pre-canceled context degrades to a partial
// report instead of an opaque failure.
func TestIngestBenchCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := IngestBench(ctx, []int{10_000}, 30, []int{2}, nil)
	if err == nil {
		t.Fatal("canceled bench returned nil error")
	}
	if r == nil || !r.Partial {
		t.Fatalf("canceled bench report = %+v, want non-nil partial", r)
	}
	if len(r.Sizes) != 0 {
		t.Errorf("pre-canceled run measured %d sizes, want 0", len(r.Sizes))
	}
}

// TestIngestBenchRecord: the history record carries one phase per
// (variant, size) in the BENCH_*.json schema plus the crossover
// summary.
func TestIngestBenchRecord(t *testing.T) {
	r := &IngestReport{
		Experiment: "ingest", Tuples: 2_000_000, Identical: true, Crossover: 2_000_000,
		Sizes: []IngestSizeRow{
			{Tuples: 1_000_000, Identical: true, BestSpeedup: 0.9, Variants: []IngestVariant{
				{Name: "dense", Workers: 1, Seconds: 2.0},
				{Name: "sharded-4", Workers: 4, Seconds: 2.2},
			}},
			{Tuples: 2_000_000, Identical: true, BestSpeedup: 1.6, Variants: []IngestVariant{
				{Name: "dense", Workers: 1, Seconds: 4.0},
				{Name: "sharded-4", Workers: 4, Seconds: 2.5},
			}},
		},
	}
	rec := IngestBenchRecord(r, "abc1234", time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC))
	if rec.Tuples != 2_000_000 || rec.Workers != 4 || rec.GitSHA != "abc1234" || rec.Crossover != 2_000_000 {
		t.Fatalf("record header = %+v", rec)
	}
	if len(rec.Phases) != 4 {
		t.Fatalf("%d phases, want 4 (2 variants × 2 sizes)", len(rec.Phases))
	}
	if rec.Phases[0].Name != "ingest-dense-1000000" || rec.Phases[3].Name != "ingest-sharded-4-2000000" {
		t.Fatalf("record phases = %+v", rec.Phases)
	}
}

// TestIngestStreamSpec: the streamed spec's source is sized and
// shardable with a two-segment criterion — the inputs the scaled bench
// relies on.
func TestIngestStreamSpec(t *testing.T) {
	src, spec, err := IngestStreamSpec(5_000, 20)
	if err != nil {
		t.Fatal(err)
	}
	if src.Len() != 5_000 {
		t.Fatalf("stream length %d, want 5000", src.Len())
	}
	if spec.NSeg != 2 {
		t.Fatalf("NSeg = %d, want 2 (GroupA/other)", spec.NSeg)
	}
	if spec.XBinner.NumBins() != 20 || spec.YBinner.NumBins() != 20 {
		t.Fatalf("bins = %d×%d, want 20×20", spec.XBinner.NumBins(), spec.YBinner.NumBins())
	}
}
