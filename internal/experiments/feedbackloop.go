package experiments

import (
	"encoding/json"
	"fmt"
	"time"

	"arcs/internal/core"
	"arcs/internal/obs"
	"arcs/internal/synth"
)

// FeedbackLoopVariant is one measured configuration of the
// threshold-search loop.
type FeedbackLoopVariant struct {
	Name       string  `json:"name"`
	Seconds    float64 `json:"seconds"`
	Probes     int     `json:"probes"`
	ProbesPerS float64 `json:"probes_per_sec"`
	CacheHit   float64 `json:"cache_hit_pct"`
	// SpeedupVsSequential is wall-clock relative to the sequential
	// baseline (>1 means faster).
	SpeedupVsSequential float64 `json:"speedup_vs_sequential"`
	// Phases breaks the run into its top-level stage durations
	// (search / mine-final / verify-final).
	Phases []core.PhaseTiming `json:"phases"`
}

// FeedbackLoopReport is the JSON document emitted by the feedbackloop
// experiment (BENCH_feedbackloop.json).
type FeedbackLoopReport struct {
	Experiment string                `json:"experiment"`
	Tuples     int                   `json:"tuples"`
	Workers    int                   `json:"workers"`
	Identical  bool                  `json:"results_identical"`
	Variants   []FeedbackLoopVariant `json:"variants"`
	// Metrics is the observability snapshot of the batched system after
	// both its runs: probe-cache counters, verify fast-path/fallback
	// counters, batch-size and per-phase duration histograms.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// FeedbackLoop measures the threshold-search feedback loop on the
// Figure 11 workload (Function 2, U=10%) in three configurations:
// sequential probes without memoization, the batched worker-pool search
// with a cold probe cache, and the same search warm. It also checks that
// the batched search's trace and rules are identical to the sequential
// baseline's.
//
// The batched system runs with an obs.Observer attached: its metric
// snapshot lands in the report and, when sink is non-nil (e.g. a
// JSONL trace sink), every phase and probe span is emitted to it. The
// sequential baseline stays observer-free so its timing is the true
// uninstrumented cost.
func FeedbackLoop(n, workers int, sink obs.Sink) (*FeedbackLoopReport, error) {
	build := func(serial, nocache bool, observer *obs.Observer) (*core.System, error) {
		gen, err := synth.New(dataConfig(n, 0.10, DefaultSeed))
		if err != nil {
			return nil, err
		}
		cfg := arcsConfig(50, DefaultSeed)
		cfg.SerialSearch = serial
		cfg.DisableProbeCache = nocache
		cfg.Observer = observer
		return core.New(gen, cfg)
	}
	timeRun := func(sys *core.System) (*core.Result, FeedbackLoopVariant, error) {
		start := time.Now()
		res, err := sys.Run()
		if err != nil {
			return nil, FeedbackLoopVariant{}, err
		}
		secs := time.Since(start).Seconds()
		return res, FeedbackLoopVariant{
			Seconds:    secs,
			Probes:     res.Evaluations,
			ProbesPerS: float64(res.Evaluations) / secs,
			CacheHit:   100 * res.Cache.HitRate(),
			Phases:     res.Phases,
		}, nil
	}

	seqSys, err := build(true, true, nil)
	if err != nil {
		return nil, err
	}
	seqRes, seq, err := timeRun(seqSys)
	if err != nil {
		return nil, err
	}
	seq.Name = "sequential"

	observer := obs.New(sink)
	parSys, err := build(false, false, observer)
	if err != nil {
		return nil, err
	}
	parRes, cold, err := timeRun(parSys)
	if err != nil {
		return nil, err
	}
	cold.Name = "batched-cold"

	_, warm, err := timeRun(parSys)
	if err != nil {
		return nil, err
	}
	warm.Name = "batched-warm"

	// Flush the registry into the trace before snapshotting, so a JSONL
	// sink carries the final counter/histogram state for arcstrace diff.
	observer.FlushMetrics()
	report := &FeedbackLoopReport{
		Experiment: "feedbackloop",
		Tuples:     n,
		Workers:    workers,
		Identical: seqRes.MinSupport == parRes.MinSupport &&
			seqRes.MinConfidence == parRes.MinConfidence &&
			seqRes.Cost == parRes.Cost &&
			len(seqRes.Trace) == len(parRes.Trace),
		Variants: []FeedbackLoopVariant{seq, cold, warm},
		Metrics:  observer.Registry().Snapshot(),
	}
	for i := range report.Variants {
		report.Variants[i].SpeedupVsSequential = seq.Seconds / report.Variants[i].Seconds
	}
	if !report.Identical {
		return report, fmt.Errorf("experiments: batched search diverged from sequential baseline")
	}
	return report, nil
}

// RenderFeedbackLoop formats the report as an aligned table.
func RenderFeedbackLoop(r *FeedbackLoopReport) string {
	out := fmt.Sprintf("%14s %10s %8s %12s %10s %9s\n",
		"variant", "time", "probes", "probes/sec", "cache-hit", "speedup")
	for _, v := range r.Variants {
		out += fmt.Sprintf("%14s %10s %8d %12.0f %9.1f%% %8.2fx\n",
			v.Name, FormatDuration(time.Duration(v.Seconds*float64(time.Second))),
			v.Probes, v.ProbesPerS, v.CacheHit, v.SpeedupVsSequential)
	}
	return out
}

// MarshalFeedbackLoop renders the report as indented JSON for
// BENCH_feedbackloop.json.
func MarshalFeedbackLoop(r *FeedbackLoopReport) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
