package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"arcs/internal/core"
)

func benchReport(tuples int, secs float64) *FeedbackLoopReport {
	return &FeedbackLoopReport{
		Experiment: "feedbackloop",
		Tuples:     tuples,
		Workers:    4,
		Identical:  true,
		Variants: []FeedbackLoopVariant{
			{Name: "sequential", Seconds: secs * 2, Probes: 32},
			{Name: "batched-cold", Seconds: secs, Probes: 32,
				Phases: []core.PhaseTiming{{Name: "search", Seconds: secs * 0.9}}},
		},
	}
}

// TestBenchFileAppendAccumulates: successive reports append history
// records instead of overwriting, and the latest report stays readable
// at the top level.
func TestBenchFileAppendAccumulates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_feedbackloop.json")
	t0 := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	if err := AppendBenchReport(path, benchReport(20_000, 0.5), "aaaa111", t0); err != nil {
		t.Fatal(err)
	}
	if err := AppendBenchReport(path, benchReport(20_000, 0.4), "bbbb222", t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}

	bf, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bf.FeedbackLoopReport == nil || bf.Experiment != "feedbackloop" {
		t.Fatalf("latest report not readable at top level: %+v", bf.FeedbackLoopReport)
	}
	if got := bf.Variants[1].Seconds; got != 0.4 {
		t.Errorf("top-level latest batched-cold seconds = %g, want the second run's 0.4", got)
	}
	if len(bf.History) != 2 {
		t.Fatalf("history has %d records, want 2", len(bf.History))
	}
	if bf.History[0].GitSHA != "aaaa111" || bf.History[1].GitSHA != "bbbb222" {
		t.Errorf("history SHAs = %q, %q", bf.History[0].GitSHA, bf.History[1].GitSHA)
	}
	if bf.History[0].Timestamp != "2026-08-05T12:00:00Z" {
		t.Errorf("history timestamp = %q, want RFC3339 UTC", bf.History[0].Timestamp)
	}
	if len(bf.History[0].Phases) == 0 || bf.History[0].Phases[0].Name != "search" {
		t.Errorf("history record missing batched-cold phases: %+v", bf.History[0].Phases)
	}
}

// TestBenchFileOldSchemaUpgrade: a file written by the pre-trajectory
// schema (a bare report) reads back with the report intact and gains a
// history on the next append.
func TestBenchFileOldSchemaUpgrade(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_feedbackloop.json")
	data, err := MarshalFeedbackLoop(benchReport(50_000, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	bf, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bf.FeedbackLoopReport == nil || bf.Tuples != 50_000 {
		t.Fatalf("old-schema report not parsed: %+v", bf.FeedbackLoopReport)
	}
	if len(bf.History) != 0 {
		t.Fatalf("old-schema file has %d history records, want 0", len(bf.History))
	}
	if err := AppendBenchReport(path, benchReport(50_000, 0.8), "cccc333", time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	bf, err = ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(bf.History) != 1 {
		t.Errorf("upgraded file has %d history records, want 1", len(bf.History))
	}
}

// TestBenchFileDuplicateGitSHA: the trajectory is append-only even when
// the same commit runs twice (CI re-runs, the double-run protocol) —
// both records land in the history, distinguished by timestamp.
func TestBenchFileDuplicateGitSHA(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_quality.json")
	t0 := time.Date(2026, 8, 8, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 2; i++ {
		rec := BenchRecord{
			GitSHA:    "same111",
			Timestamp: t0.Add(time.Duration(i) * time.Minute).UTC().Format(time.RFC3339),
			Quality:   []QualityRow{{Function: 1, ErrorPct: float64(8 + i)}},
		}
		if err := AppendBenchRecord(path, rec); err != nil {
			t.Fatal(err)
		}
	}
	bf, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(bf.History) != 2 {
		t.Fatalf("history has %d records, want both same-SHA runs", len(bf.History))
	}
	if bf.History[0].GitSHA != "same111" || bf.History[1].GitSHA != "same111" {
		t.Errorf("SHAs = %q, %q", bf.History[0].GitSHA, bf.History[1].GitSHA)
	}
	if bf.History[0].Timestamp == bf.History[1].Timestamp {
		t.Error("same-SHA records should still differ by timestamp")
	}
	oldRec, newRec, err := LastTwoRecords(bf)
	if err != nil {
		t.Fatal(err)
	}
	if oldRec.Quality[0].ErrorPct != 8 || newRec.Quality[0].ErrorPct != 9 {
		t.Errorf("records out of order: %+v, %+v", oldRec.Quality, newRec.Quality)
	}
}

// TestBenchFileEmptyFile: an empty file (a `touch`ed placeholder, or
// what a non-atomic writer would have left after a crash) reads as a
// missing trajectory instead of a parse error, so the next append
// recovers it.
func TestBenchFileEmptyFile(t *testing.T) {
	for name, content := range map[string]string{"empty": "", "whitespace": "\n  \n"} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "BENCH_quality.json")
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			bf, err := ReadBenchFile(path)
			if err != nil {
				t.Fatalf("empty file should read as empty trajectory: %v", err)
			}
			if bf.FeedbackLoopReport != nil || len(bf.History) != 0 {
				t.Fatalf("empty file parsed as %+v", bf)
			}
			if err := AppendBenchRecord(path, BenchRecord{GitSHA: "rec0"}); err != nil {
				t.Fatalf("append over empty file: %v", err)
			}
			bf, err = ReadBenchFile(path)
			if err != nil || len(bf.History) != 1 {
				t.Fatalf("recovered trajectory = %+v, %v", bf, err)
			}
		})
	}
}

// TestBenchFileCorrupted: corrupted JSON errors on read and append —
// the append-only history must never be silently replaced by an empty
// one — and the failed append leaves the corrupt file untouched.
func TestBenchFileCorrupted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_quality.json")
	corrupt := `{"history": [{"git_sha": "aaa", "timestamp":`
	if err := os.WriteFile(path, []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchFile(path); err == nil {
		t.Fatal("corrupted trajectory read without error")
	}
	if err := AppendBenchRecord(path, BenchRecord{GitSHA: "bbb"}); err == nil {
		t.Fatal("append to corrupted trajectory succeeded")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != corrupt {
		t.Errorf("failed append modified the corrupt file: %q", data)
	}
}

// TestBenchFileAtomicWrite: WriteBenchFile goes through a tmpfile +
// rename, so the destination always holds complete JSON and no tmpfile
// debris survives a successful write.
func TestBenchFileAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_quality.json")
	if err := WriteBenchFile(path, &BenchFile{History: []BenchRecord{{GitSHA: "aaa"}}}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("tmpfile %q left behind", e.Name())
		}
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o644 {
		t.Errorf("mode = %v, want 0644", info.Mode().Perm())
	}
	// Writing into a missing directory fails without leaving debris.
	if err := WriteBenchFile(filepath.Join(dir, "missing", "x.json"), &BenchFile{}); err == nil {
		t.Error("write into missing directory succeeded")
	}
}

// TestBenchFileConcurrentAppend: concurrent appenders race on the
// read-modify-write (appends may be lost — the callers are sequential
// CI steps, not a database), but the atomic rename guarantees every
// reader always sees a complete, parseable trajectory.
func TestBenchFileConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_quality.json")
	const writers = 8
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := BenchRecord{GitSHA: fmt.Sprintf("sha%d", i), Timestamp: "2026-08-08T00:00:00Z"}
			if err := AppendBenchRecord(path, rec); err != nil {
				t.Errorf("writer %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	bf, err := ReadBenchFile(path)
	if err != nil {
		t.Fatalf("trajectory unreadable after concurrent appends: %v", err)
	}
	if len(bf.History) < 1 || len(bf.History) > writers {
		t.Fatalf("history has %d records after %d concurrent appends", len(bf.History), writers)
	}
}

// TestBenchFileRecordOnlyAppend: appending a bare record (the arcstrace
// path) to a missing file creates a history-only trajectory with no
// zero-value report at the top level.
func TestBenchFileRecordOnlyAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_trace.json")
	rec := BenchRecord{Timestamp: "2026-08-05T00:00:00Z", Tuples: 9,
		Phases: []core.PhaseTiming{{Name: "run", Seconds: 0.1}}}
	if err := AppendBenchRecord(path, rec); err != nil {
		t.Fatal(err)
	}
	bf, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bf.FeedbackLoopReport != nil {
		t.Errorf("record-only file grew a latest report: %+v", bf.FeedbackLoopReport)
	}
	if len(bf.History) != 1 || bf.History[0].Tuples != 9 {
		t.Fatalf("history = %+v, want the one appended record", bf.History)
	}
}
