package experiments

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"arcs/internal/core"
)

func benchReport(tuples int, secs float64) *FeedbackLoopReport {
	return &FeedbackLoopReport{
		Experiment: "feedbackloop",
		Tuples:     tuples,
		Workers:    4,
		Identical:  true,
		Variants: []FeedbackLoopVariant{
			{Name: "sequential", Seconds: secs * 2, Probes: 32},
			{Name: "batched-cold", Seconds: secs, Probes: 32,
				Phases: []core.PhaseTiming{{Name: "search", Seconds: secs * 0.9}}},
		},
	}
}

// TestBenchFileAppendAccumulates: successive reports append history
// records instead of overwriting, and the latest report stays readable
// at the top level.
func TestBenchFileAppendAccumulates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_feedbackloop.json")
	t0 := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	if err := AppendBenchReport(path, benchReport(20_000, 0.5), "aaaa111", t0); err != nil {
		t.Fatal(err)
	}
	if err := AppendBenchReport(path, benchReport(20_000, 0.4), "bbbb222", t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}

	bf, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bf.FeedbackLoopReport == nil || bf.Experiment != "feedbackloop" {
		t.Fatalf("latest report not readable at top level: %+v", bf.FeedbackLoopReport)
	}
	if got := bf.Variants[1].Seconds; got != 0.4 {
		t.Errorf("top-level latest batched-cold seconds = %g, want the second run's 0.4", got)
	}
	if len(bf.History) != 2 {
		t.Fatalf("history has %d records, want 2", len(bf.History))
	}
	if bf.History[0].GitSHA != "aaaa111" || bf.History[1].GitSHA != "bbbb222" {
		t.Errorf("history SHAs = %q, %q", bf.History[0].GitSHA, bf.History[1].GitSHA)
	}
	if bf.History[0].Timestamp != "2026-08-05T12:00:00Z" {
		t.Errorf("history timestamp = %q, want RFC3339 UTC", bf.History[0].Timestamp)
	}
	if len(bf.History[0].Phases) == 0 || bf.History[0].Phases[0].Name != "search" {
		t.Errorf("history record missing batched-cold phases: %+v", bf.History[0].Phases)
	}
}

// TestBenchFileOldSchemaUpgrade: a file written by the pre-trajectory
// schema (a bare report) reads back with the report intact and gains a
// history on the next append.
func TestBenchFileOldSchemaUpgrade(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_feedbackloop.json")
	data, err := MarshalFeedbackLoop(benchReport(50_000, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	bf, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bf.FeedbackLoopReport == nil || bf.Tuples != 50_000 {
		t.Fatalf("old-schema report not parsed: %+v", bf.FeedbackLoopReport)
	}
	if len(bf.History) != 0 {
		t.Fatalf("old-schema file has %d history records, want 0", len(bf.History))
	}
	if err := AppendBenchReport(path, benchReport(50_000, 0.8), "cccc333", time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	bf, err = ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(bf.History) != 1 {
		t.Errorf("upgraded file has %d history records, want 1", len(bf.History))
	}
}

// TestBenchFileRecordOnlyAppend: appending a bare record (the arcstrace
// path) to a missing file creates a history-only trajectory with no
// zero-value report at the top level.
func TestBenchFileRecordOnlyAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_trace.json")
	rec := BenchRecord{Timestamp: "2026-08-05T00:00:00Z", Tuples: 9,
		Phases: []core.PhaseTiming{{Name: "run", Seconds: 0.1}}}
	if err := AppendBenchRecord(path, rec); err != nil {
		t.Fatal(err)
	}
	bf, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bf.FeedbackLoopReport != nil {
		t.Errorf("record-only file grew a latest report: %+v", bf.FeedbackLoopReport)
	}
	if len(bf.History) != 1 || bf.History[0].Tuples != 9 {
		t.Fatalf("history = %+v, want the one appended record", bf.History)
	}
}
