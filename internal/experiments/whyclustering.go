package experiments

import (
	"arcs/internal/binning"
	"arcs/internal/core"
	"arcs/internal/dataset"
	"arcs/internal/engine"
	"arcs/internal/quant"
	"arcs/internal/synth"
)

// WhyClusteringResult quantifies the paper's §1 motivation on one
// dataset: the number of rules a user would have to read under each
// mining regime.
type WhyClusteringResult struct {
	// CellRules is the number of raw two-dimensional association rules
	// (one per qualifying grid cell) — "hundreds or thousands of rules
	// corresponding to specific attribute values".
	CellRules int
	// QuantRules is the number of Srikant & Agrawal quantitative
	// interval rules over the same two attributes (with interest
	// pruning), the §1.1 related-work approach.
	QuantRules int
	// ClusteredRules is ARCS's output.
	ClusteredRules int
	// ClusteredErrPct is the ARCS segmentation's verification error.
	ClusteredErrPct float64
}

// WhyClustering mines the same Function 2 data three ways: raw cell
// rules, quantitative interval rules, and ARCS clustered rules.
func WhyClustering(n, bins int) (WhyClusteringResult, error) {
	var out WhyClusteringResult

	gen, err := synth.New(dataConfig(n, 0.10, DefaultSeed))
	if err != nil {
		return out, err
	}
	sys, err := core.New(gen, arcsConfig(bins, DefaultSeed))
	if err != nil {
		return out, err
	}
	res, err := sys.Run()
	if err != nil {
		return out, err
	}
	out.ClusteredRules = len(res.Rules)
	out.ClusteredErrPct = 100 * res.Errors.Rate()

	// Raw cell rules at the thresholds ARCS settled on.
	schema := sys.Sample().Schema()
	segCode, _ := schema.Attr(synth.AttrGroup).LookupCategory(synth.GroupA)
	cellRules, err := engine.GenAssociationRules(sys.BinArray(), segCode, res.MinSupport, res.MinConfidence)
	if err != nil {
		return out, err
	}
	out.CellRules = len(cellRules)

	// Quantitative interval rules over (age, salary) -> group, on the
	// same binning, with interest pruning at R = 1.1.
	if err := gen.Reset(); err != nil {
		return out, err
	}
	binned, xb, yb, critIdx, err := binF2(gen, bins)
	if err != nil {
		return out, err
	}
	_ = xb
	_ = yb
	// Standard SIGMOD'96-style parameters: minsup 1%, maxsup 15%,
	// interest factor 1.1. (ARCS's own MDL-chosen support is far lower
	// because single cells are tiny; feeding it here would explode the
	// interval lattice rather than model how a practitioner would run
	// the quantitative miner.)
	qRules, err := quant.Mine(binned, quant.Config{
		MinSupport:    0.01,
		MinConfidence: res.MinConfidence,
		MaxSupport:    0.15,
		Interest:      1.1,
		RHSAttr:       critIdx,
		Bins:          []int{bins, bins, 2},
	})
	if err != nil {
		return out, err
	}
	out.QuantRules = len(qRules)
	return out, nil
}

// binF2 projects the generator stream to (age, salary, group) and bins
// the quantitative attributes equi-width for the quant miner.
func binF2(src dataset.Source, bins int) (*dataset.Table, binning.Binner, binning.Binner, int, error) {
	xb, err := binning.NewEquiWidth(synth.AgeMin, synth.AgeMax, bins)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	yb, err := binning.NewEquiWidth(synth.SalaryMin, synth.SalaryMax, bins)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	schema := dataset.NewSchema(
		dataset.Attribute{Name: synth.AttrAge, Kind: dataset.Quantitative},
		dataset.Attribute{Name: synth.AttrSalary, Kind: dataset.Quantitative},
		dataset.Attribute{Name: synth.AttrGroup, Kind: dataset.Categorical},
	)
	schema.Attr(synth.AttrGroup).CategoryCode(synth.GroupA)
	schema.Attr(synth.AttrGroup).CategoryCode(synth.GroupOther)
	tb := dataset.NewTable(schema)

	srcSchema := src.Schema()
	ai := srcSchema.MustIndex(synth.AttrAge)
	si := srcSchema.MustIndex(synth.AttrSalary)
	gi := srcSchema.MustIndex(synth.AttrGroup)
	err = dataset.ForEach(src, func(t dataset.Tuple) error {
		return tb.Append(dataset.Tuple{
			float64(xb.Bin(t[ai])),
			float64(yb.Bin(t[si])),
			t[gi],
		})
	})
	if err != nil {
		return nil, nil, nil, 0, err
	}
	return tb, xb, yb, 2, nil
}
