package experiments

import (
	"strings"
	"testing"
	"time"

	"arcs/internal/synth"
)

// TestQualitySweep: the all-functions sweep produces one row per
// function with sane measurements, recovery only where the ground truth
// is rectangular, and a bench record the diff gate can consume.
func TestQualitySweep(t *testing.T) {
	report, err := Quality(3_000, 1_500)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rows) != 10 || len(report.Reports) != 10 {
		t.Fatalf("got %d rows / %d reports, want 10 each", len(report.Rows), len(report.Reports))
	}
	for i, row := range report.Rows {
		fn := i + 1
		if row.Function != fn {
			t.Errorf("row %d function = %d", i, row.Function)
		}
		if row.ErrorPct < 0 || row.ErrorPct > 100 {
			t.Errorf("f%d error = %g out of range", fn, row.ErrorPct)
		}
		tr, err := synth.GroundTruth(fn)
		if err != nil {
			t.Fatal(err)
		}
		if row.HasRecovery != tr.HasRegions() {
			t.Errorf("f%d HasRecovery = %v, truth HasRegions = %v", fn, row.HasRecovery, tr.HasRegions())
		}
		if row.HasRecovery && (row.RecoveryIoU < 0 || row.RecoveryIoU > 1) {
			t.Errorf("f%d IoU = %g out of range", fn, row.RecoveryIoU)
		}
		if row.XAttr != tr.XAttr || row.YAttr != tr.YAttr {
			t.Errorf("f%d pair = %s×%s, want %s×%s", fn, row.XAttr, row.YAttr, tr.XAttr, tr.YAttr)
		}
	}

	rendered := RenderQuality(report)
	for _, want := range []string{"err%", "IoU", "age×salary", "salary×elevel"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered table missing %q:\n%s", want, rendered)
		}
	}

	rec := QualityBenchRecord(report, "abc1234", time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC))
	if rec.GitSHA != "abc1234" || rec.Tuples != 3_000 {
		t.Fatalf("record header = %+v", rec)
	}
	if len(rec.Quality) != 10 || len(rec.Phases) != 10 {
		t.Fatalf("record has %d quality rows / %d phases, want 10 each", len(rec.Quality), len(rec.Phases))
	}
	if rec.Phases[0].Name != "quality-f1" || rec.Phases[9].Name != "quality-f10" {
		t.Fatalf("phase names = %v", rec.Phases)
	}
}

// TestTruthOptions: the converter carries the pair, criterion, domain
// and regions across, and leaves Truth empty for region-less functions.
func TestTruthOptions(t *testing.T) {
	tr, err := synth.GroundTruth(2)
	if err != nil {
		t.Fatal(err)
	}
	opts := TruthOptions(tr)
	if opts.XAttr != synth.AttrAge || opts.YAttr != synth.AttrSalary {
		t.Fatalf("pair = %s×%s", opts.XAttr, opts.YAttr)
	}
	if opts.CritAttr != synth.AttrGroup || opts.CritValue != synth.GroupA {
		t.Fatalf("criterion = %s=%s", opts.CritAttr, opts.CritValue)
	}
	if len(opts.Truth) != 3 {
		t.Fatalf("got %d truth rects, want 3", len(opts.Truth))
	}
	if opts.XLo != synth.AgeMin || opts.XHi != synth.AgeMax ||
		opts.YLo != synth.SalaryMin || opts.YHi != synth.SalaryMax {
		t.Fatalf("domain = [%g,%g]×[%g,%g]", opts.XLo, opts.XHi, opts.YLo, opts.YHi)
	}

	tr7, err := synth.GroundTruth(7)
	if err != nil {
		t.Fatal(err)
	}
	if opts7 := TruthOptions(tr7); len(opts7.Truth) != 0 {
		t.Fatalf("function 7 should have no truth rects, got %d", len(opts7.Truth))
	}
}
