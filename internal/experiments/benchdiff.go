package experiments

import (
	"fmt"
	"time"

	"arcs/internal/obs"
)

// Quality-trajectory noise floors. Mining quality jitters run to run
// (the threshold walk is a search, not a closed form), so a quality
// regression must clear an absolute floor as well as the relative
// tolerance before the gate fires.
const (
	// QualityErrFloorPts is the minimum absolute error-rate growth, in
	// percentage points, for an error regression.
	QualityErrFloorPts = 1.0
	// QualityIoUFloor is the minimum absolute recovery-IoU drop for a
	// recovery regression.
	QualityIoUFloor = 0.05
)

// DiffBenchRecords compares two BENCH_*.json history records — phase
// timings matched by name under the same tolerance/noise-floor rules as
// the span-trace diff, plus the ingest crossover summary and the
// quality rows — returning every regression found. Phases present in
// only one record are ignored (the gate compares like with like); the
// crossover regresses when the old record had one and the new record
// lost it, or when it moved to a larger size by more than the tolerance
// (parallel ingest needing more tuples before it pays is a scaling
// regression even if each phase individually stayed in budget).
//
// Quality rows are matched by function number. A function regresses
// when its held-out error rate grows beyond both the tolerance and
// QualityErrFloorPts percentage points, or when its rectangle-recovery
// IoU drops by more than QualityIoUFloor. For an IoU regression the
// reported Growth is the fractional drop (old−new)/old, so positive
// growth always means worse, matching the other kinds.
func DiffBenchRecords(oldRec, newRec BenchRecord, opts obs.DiffOptions) []obs.Regression {
	tol := opts.Tolerance
	if tol == 0 {
		tol = 0.2
	}
	minPhase := opts.MinPhase
	if minPhase == 0 {
		minPhase = 5 * time.Millisecond
	}
	var out []obs.Regression

	oldPhases := make(map[string]float64, len(oldRec.Phases))
	for _, p := range oldRec.Phases {
		oldPhases[p.Name] = p.Seconds
	}
	for _, p := range newRec.Phases {
		old, ok := oldPhases[p.Name]
		if !ok {
			continue
		}
		if old < minPhase.Seconds() && p.Seconds < minPhase.Seconds() {
			continue
		}
		if old <= 0 {
			continue
		}
		if growth := p.Seconds/old - 1; growth > tol {
			out = append(out, obs.Regression{
				Kind: "phase", Name: p.Name, Old: old, New: p.Seconds, Growth: growth,
			})
		}
	}

	if oldRec.Crossover > 0 {
		switch {
		case newRec.Crossover == 0:
			out = append(out, obs.Regression{
				Kind: "xover", Name: "ingest-crossover",
				Old: float64(oldRec.Crossover), New: 0, Growth: 1,
			})
		case float64(newRec.Crossover) > float64(oldRec.Crossover)*(1+tol):
			out = append(out, obs.Regression{
				Kind: "xover", Name: "ingest-crossover",
				Old: float64(oldRec.Crossover), New: float64(newRec.Crossover),
				Growth: float64(newRec.Crossover)/float64(oldRec.Crossover) - 1,
			})
		}
	}

	oldQ := make(map[int]QualityRow, len(oldRec.Quality))
	for _, q := range oldRec.Quality {
		oldQ[q.Function] = q
	}
	for _, q := range newRec.Quality {
		old, ok := oldQ[q.Function]
		if !ok {
			continue
		}
		if q.ErrorPct-old.ErrorPct > QualityErrFloorPts && q.ErrorPct > old.ErrorPct*(1+tol) {
			growth := 1.0
			if old.ErrorPct > 0 {
				growth = q.ErrorPct/old.ErrorPct - 1
			}
			out = append(out, obs.Regression{
				Kind: "quality", Name: fmt.Sprintf("f%d-error-pct", q.Function),
				Old: old.ErrorPct, New: q.ErrorPct, Growth: growth,
			})
		}
		if old.HasRecovery && q.HasRecovery && old.RecoveryIoU-q.RecoveryIoU > QualityIoUFloor {
			out = append(out, obs.Regression{
				Kind: "quality", Name: fmt.Sprintf("f%d-recovery-iou", q.Function),
				Old: old.RecoveryIoU, New: q.RecoveryIoU,
				Growth: (old.RecoveryIoU - q.RecoveryIoU) / old.RecoveryIoU,
			})
		}
	}
	return out
}

// LastRecord returns the newest history record of a trajectory file.
func LastRecord(bf *BenchFile) (BenchRecord, error) {
	if len(bf.History) == 0 {
		return BenchRecord{}, fmt.Errorf("experiments: trajectory has no history records")
	}
	return bf.History[len(bf.History)-1], nil
}

// LastTwoRecords returns the two newest history records of a
// trajectory file, oldest first.
func LastTwoRecords(bf *BenchFile) (oldRec, newRec BenchRecord, err error) {
	if len(bf.History) < 2 {
		return BenchRecord{}, BenchRecord{}, fmt.Errorf("experiments: trajectory has %d history records, need 2", len(bf.History))
	}
	return bf.History[len(bf.History)-2], bf.History[len(bf.History)-1], nil
}
