// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): the §4.2 clustered-rule recovery, the error-rate and
// rule-count comparisons against C4.5 (Figures 11-14), the comparative
// execution times (Table 2), the ARCS scale-up curve (Figure 15), the
// bin-granularity sensitivity study, and the Figure 7 smoothing
// illustration. It is shared by the arcsbench command and the top-level
// Go benchmarks.
package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"arcs/internal/c45"
	"arcs/internal/core"
	"arcs/internal/dataset"
	"arcs/internal/filter"
	"arcs/internal/optimizer"
	"arcs/internal/synth"
	"arcs/internal/verify"
)

// DefaultSeed keeps every experiment deterministic.
const DefaultSeed = 1997

// dataConfig mirrors paper Table 1.
func dataConfig(n int, outlierFrac float64, seed int64) synth.Config {
	return synth.Config{
		Function:        2,
		N:               n,
		Seed:            seed,
		Perturbation:    0.05,
		OutlierFraction: outlierFrac,
		FracA:           0.4,
	}
}

// arcsConfig is the standard ARCS configuration used across experiments:
// the paper's presets (50 bins, binary smoothing, 1% pruning) plus a
// bounded threshold walk.
func arcsConfig(bins int, seed int64) core.Config {
	return core.Config{
		XAttr: synth.AttrAge, YAttr: synth.AttrSalary,
		CritAttr: synth.AttrGroup, CritValue: synth.GroupA,
		NumBins: bins,
		Walk:    optimizer.ThresholdWalk{MaxSupportLevels: 12, MaxConfLevels: 8, MaxEvals: 100},
		Seed:    seed,
	}
}

// RunARCS trains ARCS on n Function-2 tuples and measures its
// segmentation against an independent test table. It returns the
// result, the test error rate and the wall-clock training time.
func RunARCS(n int, outlierFrac float64, bins int, test *dataset.Table) (*core.Result, float64, time.Duration, error) {
	gen, err := synth.New(dataConfig(n, outlierFrac, DefaultSeed))
	if err != nil {
		return nil, 0, 0, err
	}
	start := time.Now()
	sys, err := core.New(gen, arcsConfig(bins, DefaultSeed))
	if err != nil {
		return nil, 0, 0, err
	}
	res, err := sys.Run()
	if err != nil {
		return nil, 0, 0, err
	}
	elapsed := time.Since(start)

	schema := test.Schema()
	xIdx := schema.MustIndex(synth.AttrAge)
	yIdx := schema.MustIndex(synth.AttrSalary)
	critIdx := schema.MustIndex(synth.AttrGroup)
	segCode, _ := schema.At(critIdx).LookupCategory(synth.GroupA)
	errCounts := verify.Measure(res.Rules, test, xIdx, yIdx, critIdx, segCode)
	return res, errCounts.Rate(), elapsed, nil
}

// C45Outcome is the baseline measurement for one database size.
type C45Outcome struct {
	TreeTime  time.Duration // C4.5 induction
	RulesTime time.Duration // C4.5RULES extraction (on top of the tree)
	ErrorRate float64       // rule-set error on the test table
	NumRules  int
}

// RunC45 trains the C4.5 baseline on n Function-2 tuples, extracts rules
// and measures their error on the test table.
func RunC45(n int, outlierFrac float64, test *dataset.Table) (C45Outcome, error) {
	gen, err := synth.New(dataConfig(n, outlierFrac, DefaultSeed))
	if err != nil {
		return C45Outcome{}, err
	}
	train, err := dataset.Materialize(gen)
	if err != nil {
		return C45Outcome{}, err
	}
	start := time.Now()
	tree, err := c45.Train(train, synth.AttrGroup, c45.Config{})
	if err != nil {
		return C45Outcome{}, err
	}
	treeTime := time.Since(start)
	start = time.Now()
	rs := tree.ExtractRules(train)
	rulesTime := time.Since(start)
	return C45Outcome{
		TreeTime:  treeTime,
		RulesTime: rulesTime,
		ErrorRate: rs.ErrorRate(test),
		NumRules:  len(rs.Rules),
	}, nil
}

// TestTable generates an independent evaluation table (different seed
// from every training set).
func TestTable(n int, outlierFrac float64) (*dataset.Table, error) {
	gen, err := synth.New(dataConfig(n, outlierFrac, DefaultSeed+7919))
	if err != nil {
		return nil, err
	}
	return dataset.Materialize(gen)
}

// ComparisonRow is one point of Figures 11-14 and Table 2.
type ComparisonRow struct {
	N            int
	ARCSErrorPct float64
	ARCSRules    int
	ARCSTime     time.Duration
	C45Run       bool // false when the size exceeds the C4.5 cap
	C45ErrorPct  float64
	C45Rules     int
	C45TreeTime  time.Duration
	C45TotalTime time.Duration // tree + rule extraction
}

// Comparison runs ARCS and C4.5 across database sizes, capping C4.5 at
// c45Cap tuples — the stand-in for the paper's virtual-memory depletion
// that prevented C4.5 results beyond 100k tuples. testN is the size of
// the held-out test table.
func Comparison(sizes []int, outlierFrac float64, c45Cap, testN int) ([]ComparisonRow, error) {
	test, err := TestTable(testN, outlierFrac)
	if err != nil {
		return nil, err
	}
	var rows []ComparisonRow
	for _, n := range sizes {
		res, errRate, arcsTime, err := RunARCS(n, outlierFrac, 50, test)
		if err != nil {
			return nil, fmt.Errorf("ARCS at %d tuples: %w", n, err)
		}
		row := ComparisonRow{
			N:            n,
			ARCSErrorPct: 100 * errRate,
			ARCSRules:    len(res.Rules),
			ARCSTime:     arcsTime,
		}
		if c45Cap <= 0 || n <= c45Cap {
			out, err := RunC45(n, outlierFrac, test)
			if err != nil {
				return nil, fmt.Errorf("C4.5 at %d tuples: %w", n, err)
			}
			row.C45Run = true
			row.C45ErrorPct = 100 * out.ErrorRate
			row.C45Rules = out.NumRules
			row.C45TreeTime = out.TreeTime
			row.C45TotalTime = out.TreeTime + out.RulesTime
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ScaleupRow is one point of Figure 15.
type ScaleupRow struct {
	N       int
	Elapsed time.Duration
	// TuplesPerSec is the streaming throughput of the full run.
	TuplesPerSec float64
}

// Scaleup measures end-to-end ARCS execution time (binning pass through
// optimized segmentation) across database sizes, streaming straight from
// the generator so memory stays constant as in the paper.
func Scaleup(sizes []int) ([]ScaleupRow, error) {
	var rows []ScaleupRow
	for _, n := range sizes {
		gen, err := synth.New(dataConfig(n, 0, DefaultSeed))
		if err != nil {
			return nil, err
		}
		start := time.Now()
		sys, err := core.New(gen, arcsConfig(50, DefaultSeed))
		if err != nil {
			return nil, err
		}
		if _, err := sys.Run(); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		rows = append(rows, ScaleupRow{
			N:            n,
			Elapsed:      elapsed,
			TuplesPerSec: float64(n) / elapsed.Seconds(),
		})
	}
	return rows, nil
}

// BinRow is one point of the §4.2 bin-granularity study.
type BinRow struct {
	Bins         int
	ErrorPct     float64
	NumRules     int
	GeomErrorPct float64 // exact geometric FP+FN area vs the generating function
}

// BinGranularity measures segmentation quality as the number of bins per
// attribute grows (the paper tests 10 to 50 and observes a trend toward
// more optimal clusters with more bins).
func BinGranularity(n int, binCounts []int, testN int) ([]BinRow, error) {
	test, err := TestTable(testN, 0)
	if err != nil {
		return nil, err
	}
	truth := func(x, y float64) bool {
		for _, reg := range synth.Function2Regions() {
			if reg.Contains(x, y) {
				return true
			}
		}
		return false
	}
	var rows []BinRow
	for _, bins := range binCounts {
		res, errRate, _, err := RunARCS(n, 0, bins, test)
		if err != nil {
			return nil, err
		}
		fp, fn, err := verify.RegionErrors(res.Rules, truth,
			synth.AgeMin, synth.AgeMax, synth.SalaryMin, synth.SalaryMax, 200)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BinRow{
			Bins:         bins,
			ErrorPct:     100 * errRate,
			NumRules:     len(res.Rules),
			GeomErrorPct: 100 * (fp + fn),
		})
	}
	return rows, nil
}

// RecoveredRules reruns the paper's §4.2 headline experiment: 50k tuples
// with 10% outliers, and returns the clustered rules ARCS settles on —
// expected to closely match the three Function 2 disjuncts.
func RecoveredRules() (*core.Result, error) {
	gen, err := synth.New(dataConfig(50_000, 0.10, DefaultSeed))
	if err != nil {
		return nil, err
	}
	sys, err := core.New(gen, arcsConfig(50, DefaultSeed))
	if err != nil {
		return nil, err
	}
	return sys.Run()
}

// SmoothingDemo reproduces Figure 7: the rule grid for Function 2 data
// with outliers before and after the low-pass filter, rendered as ASCII.
func SmoothingDemo(n, bins int) (before, after string, err error) {
	gen, err := synth.New(dataConfig(n, 0.10, DefaultSeed))
	if err != nil {
		return "", "", err
	}
	cfg := arcsConfig(bins, DefaultSeed)
	cfg.Smoothing = core.SmoothOff
	sys, err := core.New(gen, cfg)
	if err != nil {
		return "", "", err
	}
	raw, err := sys.Grid(synth.GroupA, 0.0001, 0.39)
	if err != nil {
		return "", "", err
	}
	smoothed, err := filter.LowPass(raw, 0.5)
	if err != nil {
		return "", "", err
	}
	return raw.String(), smoothed.String(), nil
}

// FormatDuration renders a duration with two significant decimals in
// seconds, matching the paper's tables.
func FormatDuration(d time.Duration) string {
	return fmt.Sprintf("%.2fs", d.Seconds())
}

// LinearityCheck summarizes a scale-up series: the ratio of
// time-per-tuple between the largest and smallest runs. Values <= 1 mean
// the system scales linearly or better, the paper's Figure 15 claim.
func LinearityCheck(rows []ScaleupRow) float64 {
	if len(rows) < 2 {
		return math.NaN()
	}
	first := rows[0].Elapsed.Seconds() / float64(rows[0].N)
	last := rows[len(rows)-1].Elapsed.Seconds() / float64(rows[len(rows)-1].N)
	return last / first
}

// RenderComparison formats comparison rows as an aligned text table.
func RenderComparison(rows []ComparisonRow, withTimes bool) string {
	var b strings.Builder
	if withTimes {
		fmt.Fprintf(&b, "%10s %12s %12s %12s %12s\n", "tuples", "ARCS", "C4.5", "C4.5+RULES", "")
		for _, r := range rows {
			c45t, c45tot := "—", "—"
			if r.C45Run {
				c45t = FormatDuration(r.C45TreeTime)
				c45tot = FormatDuration(r.C45TotalTime)
			}
			fmt.Fprintf(&b, "%10d %12s %12s %12s\n", r.N, FormatDuration(r.ARCSTime), c45t, c45tot)
		}
		return b.String()
	}
	fmt.Fprintf(&b, "%10s %12s %12s %12s %12s\n", "tuples", "ARCS err%", "C4.5 err%", "ARCS rules", "C4.5 rules")
	for _, r := range rows {
		c45e, c45r := "—", "—"
		if r.C45Run {
			c45e = fmt.Sprintf("%.2f", r.C45ErrorPct)
			c45r = fmt.Sprintf("%d", r.C45Rules)
		}
		fmt.Fprintf(&b, "%10d %12.2f %12s %12d %12s\n", r.N, r.ARCSErrorPct, c45e, r.ARCSRules, c45r)
	}
	return b.String()
}
