package experiments

import (
	"fmt"
	"strings"
	"time"

	"arcs/internal/core"
	"arcs/internal/optimizer"
	"arcs/internal/synth"
)

// AblationRow is one configuration's outcome in an ablation study.
type AblationRow struct {
	Variant  string
	Rules    int
	ErrorPct float64
	Cost     float64
	Elapsed  time.Duration
}

// ablationRun executes one full ARCS run with the given config over a
// standard noisy Function 2 workload and measures it.
func ablationRun(n int, cfg core.Config) (AblationRow, error) {
	gen, err := synth.New(dataConfig(n, 0.10, DefaultSeed))
	if err != nil {
		return AblationRow{}, err
	}
	if cfg.XAttr == "" {
		cfg.XAttr, cfg.YAttr = synth.AttrAge, synth.AttrSalary
		cfg.CritAttr, cfg.CritValue = synth.AttrGroup, synth.GroupA
	}
	if cfg.NumBins == 0 {
		cfg.NumBins = 50
	}
	if cfg.Walk == (optimizer.ThresholdWalk{}) {
		cfg.Walk = optimizer.ThresholdWalk{MaxSupportLevels: 12, MaxConfLevels: 8, MaxEvals: 100}
	}
	cfg.Seed = DefaultSeed
	start := time.Now()
	sys, err := core.New(gen, cfg)
	if err != nil {
		return AblationRow{}, err
	}
	res, err := sys.Run()
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Rules:    len(res.Rules),
		ErrorPct: 100 * res.Errors.Rate(),
		Cost:     res.Cost,
		Elapsed:  time.Since(start),
	}, nil
}

// AblationStudy is a named set of configuration variants.
type AblationStudy struct {
	Name string
	Rows []AblationRow
}

// Ablations runs the design-choice studies DESIGN.md calls out: smoothing
// modes, pruning thresholds, search strategies and binning strategies,
// all on the same noisy workload.
func Ablations(n int) ([]AblationStudy, error) {
	var studies []AblationStudy

	smooth := AblationStudy{Name: "smoothing mode"}
	for _, mode := range []core.SmoothingMode{core.SmoothOff, core.SmoothBinary, core.SmoothWeighted, core.SmoothMorphological} {
		row, err := ablationRun(n, core.Config{Smoothing: mode})
		if err != nil {
			return nil, fmt.Errorf("smoothing %v: %w", mode, err)
		}
		row.Variant = mode.String()
		smooth.Rows = append(smooth.Rows, row)
	}
	studies = append(studies, smooth)

	prune := AblationStudy{Name: "pruning fraction"}
	for _, frac := range []float64{-1, 0.005, 0.01, 0.05} {
		row, err := ablationRun(n, core.Config{PruneFraction: frac})
		if err != nil {
			return nil, fmt.Errorf("pruning %v: %w", frac, err)
		}
		if frac < 0 {
			row.Variant = "off"
		} else {
			row.Variant = fmt.Sprintf("%g%%", 100*frac)
		}
		prune.Rows = append(prune.Rows, row)
	}
	studies = append(studies, prune)

	search := AblationStudy{Name: "threshold search"}
	searchCfgs := []struct {
		name string
		cfg  core.Config
	}{
		{"walk", core.Config{Search: core.SearchWalk}},
		{"anneal", core.Config{Search: core.SearchAnneal, Anneal: optimizer.Anneal{Seed: 1, Iterations: 100}}},
		{"factorial", core.Config{Search: core.SearchFactorial, Factorial: optimizer.Factorial{Rounds: 6}}},
	}
	for _, sc := range searchCfgs {
		row, err := ablationRun(n, sc.cfg)
		if err != nil {
			return nil, fmt.Errorf("search %s: %w", sc.name, err)
		}
		row.Variant = sc.name
		search.Rows = append(search.Rows, row)
	}
	studies = append(studies, search)

	binning := AblationStudy{Name: "bin strategy"}
	for _, strat := range []core.BinStrategy{core.BinEquiWidth, core.BinEquiDepth, core.BinHomogeneity, core.BinSupervised} {
		row, err := ablationRun(n, core.Config{BinStrategy: strat})
		if err != nil {
			return nil, fmt.Errorf("binning %v: %w", strat, err)
		}
		row.Variant = strat.String()
		binning.Rows = append(binning.Rows, row)
	}
	studies = append(studies, binning)

	return studies, nil
}

// RenderAblations formats the studies as aligned text.
func RenderAblations(studies []AblationStudy) string {
	var b strings.Builder
	for _, st := range studies {
		fmt.Fprintf(&b, "-- %s --\n", st.Name)
		fmt.Fprintf(&b, "%-18s %8s %10s %10s %10s\n", "variant", "rules", "err%", "mdl cost", "time")
		for _, r := range st.Rows {
			fmt.Fprintf(&b, "%-18s %8d %10.2f %10.2f %10s\n",
				r.Variant, r.Rules, r.ErrorPct, r.Cost, FormatDuration(r.Elapsed))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
