package experiments

import (
	"fmt"
	"strings"
	"time"

	"arcs/internal/core"
	"arcs/internal/dataset"
	"arcs/internal/quality"
	"arcs/internal/synth"
)

// QualityRow is one function's entry in the quality trajectory: the
// headline numbers of a quality.Report, flat and JSON-stable so
// BENCH_quality.json records diff across commits.
type QualityRow struct {
	Function int    `json:"function"`
	XAttr    string `json:"x_attr"`
	YAttr    string `json:"y_attr"`
	Rules    int    `json:"rules"`
	// ErrorPct is the held-out classification error (FP+FN) in percent.
	ErrorPct float64 `json:"error_pct"`
	MDLCost  float64 `json:"mdl_cost"`
	// HasRecovery marks functions whose generating disjuncts are
	// rectangular in the mined plane; the Recovery* fields are only
	// meaningful when it is set.
	HasRecovery       bool    `json:"has_recovery,omitempty"`
	RecoveryIoU       float64 `json:"recovery_iou,omitempty"`
	RecoveryPrecision float64 `json:"recovery_precision,omitempty"`
	RecoveryRecall    float64 `json:"recovery_recall,omitempty"`
	// MeanLift is the average lift across the mined rules (0 when the
	// segmentation is empty).
	MeanLift float64 `json:"mean_lift,omitempty"`
	// Seconds is the wall-clock cost of mining + evaluating the function.
	Seconds float64 `json:"seconds"`
}

// QualityReport is the outcome of one all-functions quality sweep.
type QualityReport struct {
	TrainN int `json:"train_n"`
	TestN  int `json:"test_n"`
	// Rows has one entry per classification function, 1..10 in order.
	Rows []QualityRow `json:"rows"`
	// Reports are the full per-function quality reports (per-rule
	// measures included), in Rows order. Not persisted in the bench
	// trajectory — rows carry the diffable summary.
	Reports []*quality.Report `json:"-"`
}

// TruthOptions converts exported synth ground truth into quality
// evaluation options: the mined pair, the criterion, the recovery
// domain and (when the function is rectangular in the pair) the
// generating disjuncts.
func TruthOptions(tr synth.Truth) quality.Options {
	opts := quality.Options{
		XAttr: tr.XAttr, YAttr: tr.YAttr,
		CritAttr: synth.AttrGroup, CritValue: synth.GroupA,
		XLo: tr.XLo, XHi: tr.XHi,
		YLo: tr.YLo, YHi: tr.YHi,
	}
	for _, r := range tr.Regions {
		opts.Truth = append(opts.Truth, quality.Rect{XLo: r.XLo, XHi: r.XHi, YLo: r.YLo, YHi: r.YHi})
	}
	return opts
}

// qualityDataConfig is the per-function generator setup: the paper's
// standard noise regime (P=5%, U=10%, 40% Group A) on every function.
func qualityDataConfig(fn, n int, seed int64) synth.Config {
	return synth.Config{
		Function:        fn,
		N:               n,
		Seed:            seed,
		Perturbation:    0.05,
		OutlierFraction: 0.10,
		FracA:           0.4,
	}
}

// QualityEval mines one classification function with the standard ARCS
// configuration and evaluates the segmentation against a held-out test
// table. Functions whose recommended pair has a categorical axis are
// mined with categorical reordering disabled, so the mined value ranges
// live in the same unpermuted code space as the ground-truth regions.
func QualityEval(fn, trainN, testN int) (*quality.Report, error) {
	tr, err := synth.GroundTruth(fn)
	if err != nil {
		return nil, err
	}
	gen, err := synth.New(qualityDataConfig(fn, trainN, DefaultSeed))
	if err != nil {
		return nil, err
	}
	cfg := arcsConfig(50, DefaultSeed)
	cfg.XAttr, cfg.YAttr = tr.XAttr, tr.YAttr
	if tr.CategoricalY {
		f := false
		cfg.ReorderCategorical = &f
	}
	sys, err := core.New(gen, cfg)
	if err != nil {
		return nil, err
	}
	res, err := sys.Run()
	if err != nil {
		return nil, err
	}
	testGen, err := synth.New(qualityDataConfig(fn, testN, DefaultSeed+7919))
	if err != nil {
		return nil, err
	}
	test, err := dataset.Materialize(testGen)
	if err != nil {
		return nil, err
	}
	opts := TruthOptions(tr)
	opts.LatticeSteps = 200
	return quality.Evaluate(res, test, opts)
}

// Quality sweeps all ten Agrawal classification functions, mining each
// with the standard configuration and measuring the segmentation's
// quality on an independent test table. It is the producer behind
// `arcsbench -exp quality` and the BENCH_quality.json trajectory.
func Quality(trainN, testN int) (*QualityReport, error) {
	report := &QualityReport{TrainN: trainN, TestN: testN}
	for fn := 1; fn <= 10; fn++ {
		tr, err := synth.GroundTruth(fn)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		rep, err := QualityEval(fn, trainN, testN)
		if err != nil {
			return nil, fmt.Errorf("quality on function %d: %w", fn, err)
		}
		row := QualityRow{
			Function: fn,
			XAttr:    tr.XAttr, YAttr: tr.YAttr,
			Rules:    rep.Rules,
			ErrorPct: rep.ErrorPct,
			MDLCost:  rep.MDLCost,
			Seconds:  time.Since(start).Seconds(),
		}
		if rep.Recovery != nil {
			row.HasRecovery = true
			row.RecoveryIoU = rep.Recovery.IoU
			row.RecoveryPrecision = rep.Recovery.Precision
			row.RecoveryRecall = rep.Recovery.Recall
		}
		if len(rep.RuleMeasures) > 0 {
			sum := 0.0
			for _, m := range rep.RuleMeasures {
				sum += m.Lift
			}
			row.MeanLift = sum / float64(len(rep.RuleMeasures))
		}
		report.Rows = append(report.Rows, row)
		report.Reports = append(report.Reports, rep)
	}
	return report, nil
}

// RenderQuality formats a quality sweep as an aligned text table.
func RenderQuality(r *QualityReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "train %d tuples, test %d tuples, P=5%% U=10%%\n", r.TrainN, r.TestN)
	fmt.Fprintf(&b, "%4s %18s %6s %10s %10s %10s %10s %8s\n",
		"fn", "pair", "rules", "err%", "IoU", "mdl cost", "mean lift", "time")
	for _, row := range r.Rows {
		iou := "—"
		if row.HasRecovery {
			iou = fmt.Sprintf("%.3f", row.RecoveryIoU)
		}
		fmt.Fprintf(&b, "%4d %18s %6d %10.2f %10s %10.1f %10.2f %7.2fs\n",
			row.Function, row.XAttr+"×"+row.YAttr, row.Rules,
			row.ErrorPct, iou, row.MDLCost, row.MeanLift, row.Seconds)
	}
	return b.String()
}

// QualityBenchRecord converts a quality sweep into the BENCH_*.json
// history schema: the per-function rows the diff gate compares, plus
// one quality-f<N> phase timing per function so the sweep's wall-clock
// cost is trended alongside its quality.
func QualityBenchRecord(r *QualityReport, gitSHA string, now time.Time) BenchRecord {
	rec := BenchRecord{
		GitSHA:    gitSHA,
		Timestamp: now.UTC().Format(time.RFC3339),
		Tuples:    r.TrainN,
		Quality:   r.Rows,
	}
	for _, row := range r.Rows {
		rec.Phases = append(rec.Phases, core.PhaseTiming{
			Name: fmt.Sprintf("quality-f%d", row.Function), Seconds: row.Seconds,
		})
	}
	return rec
}
