package experiments

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"arcs/internal/binarray"
	"arcs/internal/binning"
	"arcs/internal/core"
	"arcs/internal/counts"
	"arcs/internal/dataset"
	"arcs/internal/synth"
)

// IngestVariant is one measured configuration of the counting pass.
type IngestVariant struct {
	Name    string `json:"name"`
	Workers int    `json:"workers"`
	// Seconds is the wall-clock time of the pass alone (the table is
	// pre-materialized, so no generator or I/O cost is included).
	Seconds    float64 `json:"seconds"`
	TuplesPerS float64 `json:"tuples_per_sec"`
	// SpeedupVsDense is wall-clock relative to the sequential dense
	// build (>1 means faster).
	SpeedupVsDense float64 `json:"speedup_vs_dense"`
}

// IngestReport is the JSON document emitted by the ingest experiment
// (BENCH_ingest.json history records).
type IngestReport struct {
	Experiment string `json:"experiment"`
	Tuples     int    `json:"tuples"`
	// Identical reports that every sharded build produced bytes equal to
	// the dense build — the refactor's correctness claim, re-checked on
	// every benchmark run.
	Identical bool            `json:"results_identical"`
	Variants  []IngestVariant `json:"variants"`
}

// IngestSpec prepares the counting-pass inputs the benchmark and the
// experiment share: the Figure 11 workload materialized into a shardable
// in-memory table, and the fitted count spec for it.
func IngestSpec(n, bins int) (*dataset.Table, counts.Spec, error) {
	gen, err := synth.New(dataConfig(n, 0.10, DefaultSeed))
	if err != nil {
		return nil, counts.Spec{}, err
	}
	tab, err := dataset.Materialize(gen)
	if err != nil {
		return nil, counts.Spec{}, err
	}
	schema := tab.Schema()
	xIdx := schema.MustIndex(synth.AttrAge)
	yIdx := schema.MustIndex(synth.AttrSalary)
	critIdx := schema.MustIndex(synth.AttrGroup)
	fit := func(idx int) (binning.Binner, error) {
		col := tab.Column(idx)
		lo, hi := col[0], col[0]
		for _, v := range col {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if lo == hi {
			hi = lo + 1
		}
		return binning.NewEquiWidth(lo, hi, bins)
	}
	xb, err := fit(xIdx)
	if err != nil {
		return nil, counts.Spec{}, err
	}
	yb, err := fit(yIdx)
	if err != nil {
		return nil, counts.Spec{}, err
	}
	return tab, counts.Spec{
		XIdx: xIdx, YIdx: yIdx, CritIdx: critIdx,
		XBinner: xb, YBinner: yb,
		NSeg: schema.At(critIdx).NumCategories(),
	}, nil
}

// IngestBench measures the counting pass on n Figure-11 tuples: the
// sequential dense build, then the sharded build at each worker count,
// verifying byte-identity of every variant against the dense baseline.
func IngestBench(n, bins int, workerCounts []int) (*IngestReport, error) {
	tab, spec, err := IngestSpec(n, bins)
	if err != nil {
		return nil, err
	}
	snapshot := func(ba *binarray.BinArray) ([]byte, error) {
		var buf bytes.Buffer
		if err := ba.Write(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}

	start := time.Now()
	dense, err := counts.Build(context.Background(), tab, spec, 1)
	if err != nil {
		return nil, err
	}
	denseSecs := time.Since(start).Seconds()
	ref, err := snapshot(dense.(*binarray.BinArray))
	if err != nil {
		return nil, err
	}

	report := &IngestReport{
		Experiment: "ingest", Tuples: n, Identical: true,
		Variants: []IngestVariant{{
			Name: "dense", Workers: 1, Seconds: denseSecs,
			TuplesPerS: float64(n) / denseSecs, SpeedupVsDense: 1,
		}},
	}
	for _, w := range workerCounts {
		start := time.Now()
		sh, err := counts.BuildSharded(context.Background(), tab, spec, w)
		if err != nil {
			return nil, err
		}
		secs := time.Since(start).Seconds()
		got, err := snapshot(sh.Merged())
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(got, ref) {
			report.Identical = false
		}
		report.Variants = append(report.Variants, IngestVariant{
			Name:    fmt.Sprintf("sharded-%d", w),
			Workers: w, Seconds: secs,
			TuplesPerS:     float64(n) / secs,
			SpeedupVsDense: denseSecs / secs,
		})
	}
	if !report.Identical {
		return report, fmt.Errorf("experiments: sharded counting pass diverged from the dense build")
	}
	return report, nil
}

// RenderIngest formats the report as an aligned table.
func RenderIngest(r *IngestReport) string {
	out := fmt.Sprintf("%12s %8s %10s %14s %9s\n",
		"variant", "workers", "time", "tuples/sec", "speedup")
	for _, v := range r.Variants {
		out += fmt.Sprintf("%12s %8d %10s %14.0f %8.2fx\n",
			v.Name, v.Workers,
			FormatDuration(time.Duration(v.Seconds*float64(time.Second))),
			v.TuplesPerS, v.SpeedupVsDense)
	}
	return out
}

// IngestBenchRecord converts a report into the BENCH_*.json history
// schema: one phase timing per variant, named ingest-dense /
// ingest-sharded-N.
func IngestBenchRecord(r *IngestReport, gitSHA string, now time.Time) BenchRecord {
	rec := BenchRecord{
		GitSHA:    gitSHA,
		Timestamp: now.UTC().Format(time.RFC3339),
		Tuples:    r.Tuples,
	}
	for _, v := range r.Variants {
		rec.Phases = append(rec.Phases, core.PhaseTiming{
			Name: "ingest-" + v.Name, Seconds: v.Seconds,
		})
		if v.Workers > rec.Workers {
			rec.Workers = v.Workers
		}
	}
	return rec
}
