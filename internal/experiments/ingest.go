package experiments

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"arcs/internal/binning"
	"arcs/internal/core"
	"arcs/internal/counts"
	"arcs/internal/dataset"
	"arcs/internal/synth"
)

// IngestVariant is one measured configuration of the counting pass.
type IngestVariant struct {
	Name    string `json:"name"`
	Workers int    `json:"workers"`
	// Seconds is the wall-clock time of the pass alone. Streamed sizes
	// include tuple synthesis (the generator runs inside each shard's
	// worker, exactly like streaming ingest from disk or network would).
	Seconds    float64 `json:"seconds"`
	TuplesPerS float64 `json:"tuples_per_sec"`
	// SpeedupVsDense is wall-clock relative to the sequential dense
	// build at the same size (>1 means faster).
	SpeedupVsDense float64 `json:"speedup_vs_dense"`
}

// IngestSizeRow is the full measurement of one workload size: the dense
// baseline plus every sharded worker count, byte-identity re-checked.
type IngestSizeRow struct {
	Tuples int `json:"tuples"`
	// Identical reports that every sharded build at this size produced
	// bytes equal to the dense build.
	Identical bool            `json:"results_identical"`
	Variants  []IngestVariant `json:"variants"`
	// BestSpeedup is the largest sharded SpeedupVsDense at this size —
	// the number the crossover summary and the perf gate read.
	BestSpeedup float64 `json:"best_speedup"`
}

// IngestReport is the JSON document emitted by the ingest experiment
// (BENCH_ingest.json history records). Earlier revisions measured one
// size; Tuples/Identical/Variants keep that single-size shape at the
// top level (mirroring the largest completed size) so existing readers
// of the trajectory continue to parse, while Sizes carries the per-size
// rows and Crossover the scaling summary.
type IngestReport struct {
	Experiment string `json:"experiment"`
	Tuples     int    `json:"tuples"`
	Identical  bool   `json:"results_identical"`
	// Crossover is the smallest measured size at which some sharded
	// worker count beat the dense sequential build (BestSpeedup > 1);
	// zero when sharding never won. This is the scaling headline the
	// arcstrace diff gate compares across runs.
	Crossover int `json:"crossover"`
	// Partial marks a run cut short by cancellation: the rows present
	// are valid, later sizes are missing.
	Partial  bool            `json:"partial,omitempty"`
	Sizes    []IngestSizeRow `json:"sizes"`
	Variants []IngestVariant `json:"variants"`
}

// IngestSpec prepares the counting-pass inputs over a materialized
// in-memory table: the Figure 11 workload with binners fitted to the
// realized columns. Suitable for sizes that comfortably fit in RAM;
// the streamed spec below scales beyond that.
func IngestSpec(n, bins int) (*dataset.Table, counts.Spec, error) {
	gen, err := synth.New(dataConfig(n, 0.10, DefaultSeed))
	if err != nil {
		return nil, counts.Spec{}, err
	}
	tab, err := dataset.Materialize(gen)
	if err != nil {
		return nil, counts.Spec{}, err
	}
	schema := tab.Schema()
	xIdx := schema.MustIndex(synth.AttrAge)
	yIdx := schema.MustIndex(synth.AttrSalary)
	critIdx := schema.MustIndex(synth.AttrGroup)
	fit := func(idx int) (binning.Binner, error) {
		col := tab.Column(idx)
		lo, hi := col[0], col[0]
		for _, v := range col {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if lo == hi {
			hi = lo + 1
		}
		return binning.NewEquiWidth(lo, hi, bins)
	}
	xb, err := fit(xIdx)
	if err != nil {
		return nil, counts.Spec{}, err
	}
	yb, err := fit(yIdx)
	if err != nil {
		return nil, counts.Spec{}, err
	}
	return tab, counts.Spec{
		XIdx: xIdx, YIdx: yIdx, CritIdx: critIdx,
		XBinner: xb, YBinner: yb,
		NSeg: schema.At(critIdx).NumCategories(),
	}, nil
}

// IngestStreamSpec prepares the counting-pass inputs as a constant-
// memory stream: a position-deterministic synth.Stream wrapped in a
// shardable dataset.FuncSource, with fixed-range equi-width binners
// over the known age/salary domains (no fitting pass — the generator's
// domains are the paper's, so fitting would only rediscover them).
// This is how the bench reaches 10M-100M tuples without a 100M-row
// table in RAM: each shard synthesizes its own index range on the fly.
func IngestStreamSpec(n, bins int) (*dataset.FuncSource, counts.Spec, error) {
	cfg := dataConfig(n, 0.10, DefaultSeed)
	st, err := synth.NewStream(cfg)
	if err != nil {
		return nil, counts.Spec{}, err
	}
	schema := st.Schema()
	xIdx := schema.MustIndex(synth.AttrAge)
	yIdx := schema.MustIndex(synth.AttrSalary)
	critIdx := schema.MustIndex(synth.AttrGroup)
	xb, err := binning.NewEquiWidth(synth.AgeMin, synth.AgeMax, bins)
	if err != nil {
		return nil, counts.Spec{}, err
	}
	yb, err := binning.NewEquiWidth(synth.SalaryMin, synth.SalaryMax, bins)
	if err != nil {
		return nil, counts.Spec{}, err
	}
	return st.Source(), counts.Spec{
		XIdx: xIdx, YIdx: yIdx, CritIdx: critIdx,
		XBinner: xb, YBinner: yb,
		NSeg: schema.At(critIdx).NumCategories(),
	}, nil
}

// IngestBench measures the counting pass at each workload size: the
// sequential dense build, then each alternative backend (sparse,
// spill) sequentially, then the sharded dense build at each worker
// count — verifying byte-identity of every variant's snapshot against
// the dense baseline and locating the dense-vs-sharded crossover
// across sizes. Tuples are streamed (IngestStreamSpec), so memory
// stays constant no matter the size. A canceled context stops between
// measurements and returns the completed rows as a partial report
// alongside the cancellation error, so long runs degrade to a usable
// partial trajectory append.
func IngestBench(ctx context.Context, sizes []int, bins int, workerCounts []int, backends []counts.Kind) (*IngestReport, error) {
	report := &IngestReport{Experiment: "ingest", Identical: true}
	snapshot := func(b counts.Backend) ([]byte, error) {
		var buf bytes.Buffer
		if err := counts.Snapshot(b, &buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	finishPartial := func(err error) (*IngestReport, error) {
		report.Partial = true
		return report, err
	}
	for _, n := range sizes {
		if err := ctx.Err(); err != nil {
			return finishPartial(err)
		}
		src, spec, err := IngestStreamSpec(n, bins)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		dense, err := counts.Build(ctx, src, spec, counts.Options{Kind: counts.Dense, MemBudget: -1})
		if err != nil {
			if ctx.Err() != nil {
				return finishPartial(ctx.Err())
			}
			return nil, err
		}
		denseSecs := time.Since(start).Seconds()
		ref, err := snapshot(dense)
		if err != nil {
			return nil, err
		}
		row := IngestSizeRow{
			Tuples: n, Identical: true,
			Variants: []IngestVariant{{
				Name: "dense", Workers: 1, Seconds: denseSecs,
				TuplesPerS: float64(n) / denseSecs, SpeedupVsDense: 1,
			}},
		}
		// The backend dimension: the same pass through each alternative
		// substrate, sequential so the comparison isolates the backend's
		// per-tuple cost from sharding effects.
		for _, kind := range backends {
			if kind == counts.Dense || kind == counts.Auto {
				continue
			}
			if err := ctx.Err(); err != nil {
				return finishPartial(err)
			}
			start := time.Now()
			alt, err := counts.Build(ctx, src, spec, counts.Options{Kind: kind, MemBudget: -1})
			if err != nil {
				if ctx.Err() != nil {
					return finishPartial(ctx.Err())
				}
				return nil, err
			}
			secs := time.Since(start).Seconds()
			got, err := snapshot(alt)
			if err != nil {
				return nil, err
			}
			if c, ok := alt.(interface{ Close() error }); ok {
				_ = c.Close() // spill backend: release fd + disk promptly
			}
			if !bytes.Equal(got, ref) {
				row.Identical = false
				report.Identical = false
			}
			row.Variants = append(row.Variants, IngestVariant{
				Name: kind.String(), Workers: 1, Seconds: secs,
				TuplesPerS:     float64(n) / secs,
				SpeedupVsDense: denseSecs / secs,
			})
		}
		for _, w := range workerCounts {
			if err := ctx.Err(); err != nil {
				return finishPartial(err)
			}
			start := time.Now()
			sh, err := counts.BuildSharded(ctx, src, spec, counts.Options{Workers: w, Kind: counts.Dense, MemBudget: -1})
			if err != nil {
				if ctx.Err() != nil {
					return finishPartial(ctx.Err())
				}
				return nil, err
			}
			secs := time.Since(start).Seconds()
			got, err := snapshot(sh)
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(got, ref) {
				row.Identical = false
				report.Identical = false
			}
			speedup := denseSecs / secs
			if speedup > row.BestSpeedup {
				row.BestSpeedup = speedup
			}
			row.Variants = append(row.Variants, IngestVariant{
				Name:    fmt.Sprintf("sharded-%d", w),
				Workers: w, Seconds: secs,
				TuplesPerS:     float64(n) / secs,
				SpeedupVsDense: speedup,
			})
		}
		report.Sizes = append(report.Sizes, row)
		report.Tuples = n
		report.Variants = row.Variants
		if report.Crossover == 0 && row.BestSpeedup > 1 {
			report.Crossover = n
		}
	}
	if !report.Identical {
		return report, fmt.Errorf("experiments: sharded counting pass diverged from the dense build")
	}
	return report, nil
}

// RenderIngest formats the report as per-size aligned tables with the
// crossover summary.
func RenderIngest(r *IngestReport) string {
	var out string
	for _, row := range r.Sizes {
		out += fmt.Sprintf("--- %d tuples ---\n", row.Tuples)
		out += fmt.Sprintf("%12s %8s %10s %14s %9s\n",
			"variant", "workers", "time", "tuples/sec", "speedup")
		for _, v := range row.Variants {
			out += fmt.Sprintf("%12s %8d %10s %14.0f %8.2fx\n",
				v.Name, v.Workers,
				FormatDuration(time.Duration(v.Seconds*float64(time.Second))),
				v.TuplesPerS, v.SpeedupVsDense)
		}
	}
	if r.Crossover > 0 {
		out += fmt.Sprintf("crossover: sharded ingest first beats dense at %d tuples\n", r.Crossover)
	} else {
		out += "crossover: none measured — dense won at every size (add workers or tuples)\n"
	}
	if r.Partial {
		out += "NOTE: run canceled before all sizes completed; rows above are valid partial results\n"
	}
	return out
}

// IngestBenchRecord converts a report into the BENCH_*.json history
// schema: one phase timing per (variant, size), named
// ingest-dense-<n> / ingest-sharded-W-<n>, plus the crossover summary
// the diff gate compares.
func IngestBenchRecord(r *IngestReport, gitSHA string, now time.Time) BenchRecord {
	rec := BenchRecord{
		GitSHA:    gitSHA,
		Timestamp: now.UTC().Format(time.RFC3339),
		Tuples:    r.Tuples,
		Crossover: r.Crossover,
	}
	for _, row := range r.Sizes {
		for _, v := range row.Variants {
			rec.Phases = append(rec.Phases, core.PhaseTiming{
				Name: fmt.Sprintf("ingest-%s-%d", v.Name, row.Tuples), Seconds: v.Seconds,
			})
			if v.Workers > rec.Workers {
				rec.Workers = v.Workers
			}
		}
	}
	return rec
}
