// Package cancelcheck implements checkpointed cooperative cancellation
// for the ARCS pipeline's tight loops. Polling context.Err() per tuple
// would put a mutex acquisition on every hot-path iteration; a Point
// instead counts iterations locally and consults the context only every
// N checks. A nil Checker (the nil-context configuration) degenerates to
// a single predictable branch per checkpoint, so the uncancellable hot
// path stays as fast as before cancellation existed — the same
// zero-cost-when-off contract the obs layer follows.
package cancelcheck

import (
	"context"
	"errors"
	"fmt"
)

// Checker wraps a cancellable context for distribution to workers. Each
// goroutine derives its own Point so the iteration counters stay local
// (no shared atomics on the hot path).
type Checker struct {
	ctx context.Context
}

// New returns a Checker for ctx, or nil when ctx can never be canceled
// (nil, context.Background(), context.TODO(), or any other context
// without a Done channel). All methods are nil-safe, so callers thread
// the possibly-nil result unconditionally.
func New(ctx context.Context) *Checker {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return &Checker{ctx: ctx}
}

// Err polls the context immediately: nil until cancellation, then an
// error matching (errors.Is) both the context error and the cancel
// cause when a distinct one was set. Nil-safe.
func (c *Checker) Err() error {
	if c == nil {
		return nil
	}
	err := c.ctx.Err()
	if err == nil {
		return nil
	}
	if cause := context.Cause(c.ctx); cause != nil && cause != err {
		return fmt.Errorf("%w (cause: %w)", err, cause)
	}
	return err
}

// Point returns a checkpoint that polls the context once per `every`
// Check calls. Each worker goroutine must take its own Point; Points
// must not be shared. A Point from a nil Checker never fires.
func (c *Checker) Point(every int) Point {
	if every < 1 {
		every = 1
	}
	return Point{c: c, every: uint32(every)}
}

// Point is a per-goroutine cancellation checkpoint.
type Point struct {
	c     *Checker
	every uint32
	n     uint32
}

// Check counts one unit of work and polls the context at checkpoint
// granularity. It returns nil almost always; once the context is
// canceled, the next checkpoint returns the cancellation error and every
// later Check short-circuits to it.
func (p *Point) Check() error {
	if p.c == nil {
		return nil
	}
	p.n++
	if p.n%p.every != 0 {
		return nil
	}
	return p.c.Err()
}

// IsCancel reports whether err stems from context cancellation or an
// expired deadline, however deeply wrapped.
func IsCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
