package cancelcheck

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestNilCheckerIsFree(t *testing.T) {
	var c *Checker
	if err := c.Err(); err != nil {
		t.Fatalf("nil checker Err = %v", err)
	}
	p := c.Point(64)
	for i := 0; i < 1000; i++ {
		if err := p.Check(); err != nil {
			t.Fatalf("nil checker Check = %v", err)
		}
	}
}

func TestNewRejectsUncancellable(t *testing.T) {
	if New(nil) != nil {
		t.Error("New(nil) should be nil")
	}
	if New(context.Background()) != nil {
		t.Error("New(Background) should be nil")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if New(ctx) == nil {
		t.Error("New(cancellable) should be non-nil")
	}
}

func TestCheckpointGranularity(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := New(ctx)
	p := c.Point(10)
	cancel()
	// The first 9 checks fall between checkpoints and stay nil; the
	// 10th polls the context and fires.
	for i := 1; i <= 9; i++ {
		if err := p.Check(); err != nil {
			t.Fatalf("check %d fired early: %v", i, err)
		}
	}
	if err := p.Check(); !IsCancel(err) {
		t.Fatalf("checkpoint did not fire: %v", err)
	}
}

func TestErrCarriesCause(t *testing.T) {
	cause := errors.New("probe budget exhausted")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	err := New(ctx).Err()
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err %v should be context.Canceled", err)
	}
	if !errors.Is(err, cause) {
		t.Errorf("err %v should carry the cause", err)
	}
	if !IsCancel(err) {
		t.Errorf("IsCancel(%v) = false", err)
	}
}

func TestIsCancelClassification(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	<-ctx.Done()
	if err := New(ctx).Err(); !IsCancel(err) {
		t.Errorf("deadline error not classified: %v", err)
	}
	if IsCancel(errors.New("disk on fire")) {
		t.Error("ordinary error misclassified as cancellation")
	}
	if IsCancel(nil) {
		t.Error("nil misclassified as cancellation")
	}
	if !IsCancel(fmt.Errorf("outer: %w", context.Canceled)) {
		t.Error("wrapped cancellation not classified")
	}
}

func BenchmarkPointNilChecker(b *testing.B) {
	var c *Checker
	p := c.Point(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.Check(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPointLiveChecker(b *testing.B) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := New(ctx).Point(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.Check(); err != nil {
			b.Fatal(err)
		}
	}
}
