package grid

import (
	"strings"
	"testing"
	"testing/quick"

	"arcs/internal/rules"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 5); err == nil {
		t.Error("zero rows should error")
	}
	if _, err := New(5, 0); err == nil {
		t.Error("zero cols should error")
	}
}

func TestSetGetClear(t *testing.T) {
	bm, _ := New(3, 130) // spans three words per row
	cells := [][2]int{{0, 0}, {1, 63}, {1, 64}, {2, 129}}
	for _, c := range cells {
		bm.Set(c[0], c[1])
	}
	for _, c := range cells {
		if !bm.Get(c[0], c[1]) {
			t.Errorf("cell %v should be set", c)
		}
	}
	if bm.PopCount() != 4 {
		t.Errorf("PopCount = %d", bm.PopCount())
	}
	bm.Clear(1, 64)
	if bm.Get(1, 64) {
		t.Error("cell (1,64) should be cleared")
	}
	if bm.Get(1, 63) != true {
		t.Error("clearing one bit must not disturb neighbors")
	}
}

func TestGetPanicsOutOfRange(t *testing.T) {
	bm, _ := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Get should panic")
		}
	}()
	bm.Get(2, 0)
}

func TestAnyAndClone(t *testing.T) {
	bm, _ := New(4, 4)
	if bm.Any() {
		t.Error("fresh bitmap should be empty")
	}
	bm.Set(2, 3)
	clone := bm.Clone()
	bm.Clear(2, 3)
	if !clone.Get(2, 3) {
		t.Error("clone should be independent")
	}
	if bm.Any() {
		t.Error("original should be empty after clear")
	}
}

func TestClearAndFillRect(t *testing.T) {
	bm, _ := New(5, 5)
	rect := Rect{R0: 1, C0: 1, R1: 3, C1: 2}
	bm.FillRect(rect)
	if bm.PopCount() != rect.Area() {
		t.Errorf("PopCount = %d, want %d", bm.PopCount(), rect.Area())
	}
	bm.ClearRect(rect)
	if bm.Any() {
		t.Error("bitmap should be empty after ClearRect")
	}
}

func TestRowOps(t *testing.T) {
	bm, _ := New(2, 70)
	bm.Set(0, 5)
	bm.Set(0, 65)
	bm.Set(1, 5)
	mask := make([]uint64, bm.WordsPerRow())
	bm.CopyRow(mask, 0)
	if MaskEmpty(mask) {
		t.Error("copied row should not be empty")
	}
	bm.AndRow(mask, 1)
	// Only column 5 survives the AND.
	var cols []int
	MaskRuns(mask, 70, func(c0, c1 int) {
		for c := c0; c <= c1; c++ {
			cols = append(cols, c)
		}
	})
	if len(cols) != 1 || cols[0] != 5 {
		t.Errorf("AND result columns = %v, want [5]", cols)
	}
	empty := make([]uint64, bm.WordsPerRow())
	if !MaskEmpty(empty) {
		t.Error("zero mask should be empty")
	}
	if MasksEqual(mask, empty) {
		t.Error("masks should differ")
	}
	same := append([]uint64(nil), mask...)
	if !MasksEqual(mask, same) {
		t.Error("identical masks should be equal")
	}
}

func TestMaskRuns(t *testing.T) {
	bm, _ := New(1, 10)
	for _, c := range []int{0, 1, 2, 4, 7, 8, 9} {
		bm.Set(0, c)
	}
	var runs [][2]int
	MaskRuns(bm.Row(0), 10, func(c0, c1 int) {
		runs = append(runs, [2]int{c0, c1})
	})
	want := [][2]int{{0, 2}, {4, 4}, {7, 9}}
	if len(runs) != len(want) {
		t.Fatalf("runs = %v, want %v", runs, want)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Errorf("runs = %v, want %v", runs, want)
			break
		}
	}
}

func TestMaskRunsAcrossWordBoundary(t *testing.T) {
	bm, _ := New(1, 130)
	for c := 60; c < 70; c++ {
		bm.Set(0, c)
	}
	var runs [][2]int
	MaskRuns(bm.Row(0), 130, func(c0, c1 int) {
		runs = append(runs, [2]int{c0, c1})
	})
	if len(runs) != 1 || runs[0] != [2]int{60, 69} {
		t.Errorf("runs = %v, want [[60 69]]", runs)
	}
}

func TestFromRules(t *testing.T) {
	cellRules := []rules.CellRule{{X: 1, Y: 2}, {X: 0, Y: 0}}
	bm, err := FromRules(cellRules, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bm.Get(2, 1) || !bm.Get(0, 0) {
		t.Error("rule cells not set")
	}
	if bm.PopCount() != 2 {
		t.Errorf("PopCount = %d", bm.PopCount())
	}
	if _, err := FromRules([]rules.CellRule{{X: 5, Y: 0}}, 3, 3); err == nil {
		t.Error("out-of-grid rule should error")
	}
}

func TestBitmapString(t *testing.T) {
	bm, _ := New(2, 3)
	bm.Set(0, 0) // bottom-left in rendering
	bm.Set(1, 2) // top-right
	got := bm.String()
	want := "..#\n#..\n"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if !strings.Contains(got, "#") {
		t.Error("rendering missing set cells")
	}
}

func TestRectGeometry(t *testing.T) {
	r := Rect{R0: 1, C0: 2, R1: 3, C1: 5}
	if r.Area() != 12 || r.Width() != 4 || r.Height() != 3 {
		t.Errorf("Area/Width/Height = %d/%d/%d", r.Area(), r.Width(), r.Height())
	}
	if !r.Contains(1, 2) || !r.Contains(3, 5) || r.Contains(0, 2) || r.Contains(1, 6) {
		t.Error("Contains wrong")
	}
	if !r.Intersects(Rect{R0: 3, C0: 5, R1: 9, C1: 9}) {
		t.Error("corner-touching rectangles intersect")
	}
	if r.Intersects(Rect{R0: 4, C0: 0, R1: 5, C1: 9}) {
		t.Error("disjoint rows should not intersect")
	}
	u := r.Union(Rect{R0: 0, C0: 4, R1: 2, C1: 7})
	if u != (Rect{R0: 0, C0: 2, R1: 3, C1: 7}) {
		t.Errorf("Union = %v", u)
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
}

func TestPopCountMatchesGets(t *testing.T) {
	f := func(cells []uint16) bool {
		bm, _ := New(16, 100)
		want := map[[2]int]bool{}
		for _, raw := range cells {
			r := int(raw) % 16
			c := int(raw>>4) % 100
			bm.Set(r, c)
			want[[2]int{r, c}] = true
		}
		return bm.PopCount() == len(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDenseGrid(t *testing.T) {
	d, err := NewDense(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDense(0, 1); err == nil {
		t.Error("zero rows should error")
	}
	d.Set(1, 2, 0.7)
	d.Set(2, 3, 0.2)
	if d.At(1, 2) != 0.7 {
		t.Errorf("At = %v", d.At(1, 2))
	}
	clone := d.Clone()
	d.Set(1, 2, 0)
	if clone.At(1, 2) != 0.7 {
		t.Error("Dense clone should be independent")
	}
	bm := clone.Threshold(0.5)
	if !bm.Get(1, 2) || bm.Get(2, 3) {
		t.Error("Threshold wrong")
	}
	if bm.Rows() != 3 || bm.Cols() != 4 {
		t.Errorf("Threshold dims = %d×%d", bm.Rows(), bm.Cols())
	}
}

func TestTranspose(t *testing.T) {
	bm, _ := New(2, 3)
	bm.Set(0, 2)
	bm.Set(1, 0)
	tr := bm.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("dims = %dx%d", tr.Rows(), tr.Cols())
	}
	if !tr.Get(2, 0) || !tr.Get(0, 1) {
		t.Error("cells not transposed")
	}
	if tr.PopCount() != bm.PopCount() {
		t.Error("pop count changed")
	}
	// Double transpose is identity.
	back := tr.Transpose()
	for r := 0; r < 2; r++ {
		for c := 0; c < 3; c++ {
			if back.Get(r, c) != bm.Get(r, c) {
				t.Fatalf("double transpose differs at (%d,%d)", r, c)
			}
		}
	}
}
