// Package grid provides the two-dimensional bitmap the BitOp algorithm
// operates on (paper §3.2–3.3): rows of word-packed bits supporting the
// bitwise AND and shift operations BitOp is built from, plus the
// axis-aligned rectangle type shared by the clustering packages and a
// dense float grid used by support-weighted smoothing.
//
// Convention: columns index the x attribute's bins, rows index the y
// attribute's bins. Cell (row r, col c) is set when the association rule
// X=c ∧ Y=r ⇒ Gk was mined.
package grid

import (
	"fmt"
	"math/bits"
	"strings"

	"arcs/internal/rules"
)

const wordBits = 64

// Bitmap is a rows × cols bit matrix with word-packed rows.
type Bitmap struct {
	rows, cols int
	wpr        int // words per row
	words      []uint64
}

// New allocates an all-zero bitmap.
func New(rows, cols int) (*Bitmap, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("grid: invalid dimensions %d×%d", rows, cols)
	}
	wpr := (cols + wordBits - 1) / wordBits
	return &Bitmap{rows: rows, cols: cols, wpr: wpr, words: make([]uint64, rows*wpr)}, nil
}

// FromRules builds a bitmap from mined cell rules on an nx × ny grid.
// Rule (X, Y) sets cell (row Y, col X).
func FromRules(cellRules []rules.CellRule, nx, ny int) (*Bitmap, error) {
	bm, err := New(ny, nx)
	if err != nil {
		return nil, err
	}
	for _, r := range cellRules {
		if r.X < 0 || r.X >= nx || r.Y < 0 || r.Y >= ny {
			return nil, fmt.Errorf("grid: rule cell (%d, %d) outside %d×%d grid", r.X, r.Y, nx, ny)
		}
		bm.Set(r.Y, r.X)
	}
	return bm, nil
}

// Rows reports the number of rows.
func (b *Bitmap) Rows() int { return b.rows }

// Cols reports the number of columns.
func (b *Bitmap) Cols() int { return b.cols }

func (b *Bitmap) check(r, c int) {
	if r < 0 || r >= b.rows || c < 0 || c >= b.cols {
		panic(fmt.Sprintf("grid: cell (%d, %d) outside %d×%d bitmap", r, c, b.rows, b.cols))
	}
}

// Set turns on cell (r, c).
func (b *Bitmap) Set(r, c int) {
	b.check(r, c)
	b.words[r*b.wpr+c/wordBits] |= 1 << uint(c%wordBits)
}

// Clear turns off cell (r, c).
func (b *Bitmap) Clear(r, c int) {
	b.check(r, c)
	b.words[r*b.wpr+c/wordBits] &^= 1 << uint(c%wordBits)
}

// Get reports cell (r, c).
func (b *Bitmap) Get(r, c int) bool {
	b.check(r, c)
	return b.words[r*b.wpr+c/wordBits]&(1<<uint(c%wordBits)) != 0
}

// Row returns the packed words of row r. The slice aliases the bitmap;
// callers must not modify it.
func (b *Bitmap) Row(r int) []uint64 {
	return b.words[r*b.wpr : (r+1)*b.wpr]
}

// CopyRow copies row r into dst, which must have length WordsPerRow.
func (b *Bitmap) CopyRow(dst []uint64, r int) {
	copy(dst, b.Row(r))
}

// AndRow computes dst &= row r in place.
func (b *Bitmap) AndRow(dst []uint64, r int) {
	row := b.Row(r)
	for i := range dst {
		dst[i] &= row[i]
	}
}

// AndRowInto computes dst = src AND row r in one fused pass, reporting
// whether dst differs from src and whether dst came out all-zero. The
// three answers the BitOp sweep needs per row (the ANDed mask, did it
// shrink, is it dead) cost one word scan instead of the copy + AND +
// equality + emptiness scans of the unfused primitives; the change and
// emptiness signals accumulate in branch-free OR registers. dst and src
// must both have length WordsPerRow and may not alias.
func (b *Bitmap) AndRowInto(dst, src []uint64, r int) (changed, empty bool) {
	row := b.words[r*b.wpr : (r+1)*b.wpr]
	var diff, any uint64
	for i, s := range src {
		v := s & row[i]
		dst[i] = v
		diff |= s ^ v
		any |= v
	}
	return diff != 0, any == 0
}

// WordsPerRow reports the packed row width in words.
func (b *Bitmap) WordsPerRow() int { return b.wpr }

// PopCount reports the number of set cells.
func (b *Bitmap) PopCount() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether any cell is set.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Reset clears every cell, keeping the allocation. It lets callers that
// build many short-lived masks of the same geometry (the verification
// index's coverage bitmaps) recycle bitmaps instead of reallocating.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Clone returns an independent copy.
func (b *Bitmap) Clone() *Bitmap {
	c := *b
	c.words = append([]uint64(nil), b.words...)
	return &c
}

// rectMasks validates the rectangle and returns its word-column range
// plus the partial masks of the first and last word. When the rectangle
// spans a single word column both masks apply to it (AND them).
func (b *Bitmap) rectMasks(rect Rect) (w0, w1 int, first, last uint64) {
	b.check(rect.R0, rect.C0)
	b.check(rect.R1, rect.C1)
	w0, w1 = rect.C0/wordBits, rect.C1/wordBits
	first = ^uint64(0) << uint(rect.C0%wordBits)
	last = ^uint64(0) >> uint(wordBits-1-rect.C1%wordBits)
	return w0, w1, first, last
}

// ClearRect zeroes the inclusive rectangle, whole words at a time:
// interior word columns are assigned, the two edge columns are masked.
// This is the per-greedy-round clear of BitOp, so its cost scales with
// the rectangle's word span rather than its cell count.
func (b *Bitmap) ClearRect(rect Rect) {
	w0, w1, first, last := b.rectMasks(rect)
	for r := rect.R0; r <= rect.R1; r++ {
		row := b.words[r*b.wpr : (r+1)*b.wpr]
		if w0 == w1 {
			row[w0] &^= first & last
			continue
		}
		row[w0] &^= first
		for wi := w0 + 1; wi < w1; wi++ {
			row[wi] = 0
		}
		row[w1] &^= last
	}
}

// FillRect sets the inclusive rectangle, whole words at a time (the
// word-level dual of ClearRect).
func (b *Bitmap) FillRect(rect Rect) {
	w0, w1, first, last := b.rectMasks(rect)
	for r := rect.R0; r <= rect.R1; r++ {
		row := b.words[r*b.wpr : (r+1)*b.wpr]
		if w0 == w1 {
			row[w0] |= first & last
			continue
		}
		row[w0] |= first
		for wi := w0 + 1; wi < w1; wi++ {
			row[wi] = ^uint64(0)
		}
		row[w1] |= last
	}
}

// String renders the bitmap as ASCII art, row 0 at the bottom (matching
// the paper's figures where the y attribute grows upward): '#' for set
// cells, '.' for clear.
func (b *Bitmap) String() string {
	var sb strings.Builder
	for r := b.rows - 1; r >= 0; r-- {
		for c := 0; c < b.cols; c++ {
			if b.Get(r, c) {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Transpose returns a new bitmap with rows and columns swapped.
func (b *Bitmap) Transpose() *Bitmap {
	out, _ := New(b.cols, b.rows)
	for r := 0; r < b.rows; r++ {
		for c := 0; c < b.cols; c++ {
			if b.Get(r, c) {
				out.Set(c, r)
			}
		}
	}
	return out
}

// MaskEmpty reports whether a packed row mask has no set bits.
func MaskEmpty(mask []uint64) bool {
	for _, w := range mask {
		if w != 0 {
			return false
		}
	}
	return true
}

// MasksEqual reports whether two packed row masks are identical.
func MasksEqual(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MaskRuns invokes fn for every maximal run of consecutive set bits in a
// packed row mask of the given logical width, passing the inclusive
// column range [c0, c1]. Runs are located with trailing-zero scans on
// whole words — all-zero and all-one words cost one comparison each —
// so the cost scales with the number of run edges, not the column count.
func MaskRuns(mask []uint64, cols int, fn func(c0, c1 int)) {
	inRun := false
	start := 0
	for wi := 0; wi*wordBits < cols; wi++ {
		base := wi * wordBits
		w := mask[wi]
		if n := cols - base; n < wordBits {
			w &= uint64(1)<<uint(n) - 1
		}
		pos := 0
		for pos < wordBits {
			rem := w >> uint(pos)
			if inRun {
				// Count the ones extending the run: the shifted-in high
				// bits of rem are zero, so ^rem has a set bit at the end
				// of any run that stops inside this word.
				ones := bits.TrailingZeros64(^rem)
				if ones >= wordBits-pos {
					pos = wordBits // run continues into the next word
					continue
				}
				pos += ones
				fn(start, base+pos-1)
				inRun = false
				continue
			}
			if rem == 0 {
				break // rest of the word is clear
			}
			pos += bits.TrailingZeros64(rem)
			inRun = true
			start = base + pos
		}
	}
	if inRun {
		fn(start, cols-1)
	}
}

// Rect is an axis-aligned rectangle of grid cells with inclusive bounds.
type Rect struct {
	R0, C0 int // top-left (lowest row/col indices)
	R1, C1 int // bottom-right (highest row/col indices)
}

// Area reports the number of cells the rectangle covers.
func (r Rect) Area() int { return (r.R1 - r.R0 + 1) * (r.C1 - r.C0 + 1) }

// Width reports the number of columns spanned.
func (r Rect) Width() int { return r.C1 - r.C0 + 1 }

// Height reports the number of rows spanned.
func (r Rect) Height() int { return r.R1 - r.R0 + 1 }

// Contains reports whether cell (row, col) lies inside the rectangle.
func (r Rect) Contains(row, col int) bool {
	return r.R0 <= row && row <= r.R1 && r.C0 <= col && col <= r.C1
}

// Intersects reports whether two rectangles share any cell.
func (r Rect) Intersects(o Rect) bool {
	return r.R0 <= o.R1 && o.R0 <= r.R1 && r.C0 <= o.C1 && o.C0 <= r.C1
}

// Union returns the smallest rectangle containing both r and o.
func (r Rect) Union(o Rect) Rect {
	out := r
	if o.R0 < out.R0 {
		out.R0 = o.R0
	}
	if o.C0 < out.C0 {
		out.C0 = o.C0
	}
	if o.R1 > out.R1 {
		out.R1 = o.R1
	}
	if o.C1 > out.C1 {
		out.C1 = o.C1
	}
	return out
}

// String renders the rectangle for diagnostics.
func (r Rect) String() string {
	return fmt.Sprintf("rows %d-%d, cols %d-%d", r.R0, r.R1, r.C0, r.C1)
}

// Dense is a rows × cols float64 grid used by the support-weighted
// smoothing filter, which operates on rule support values rather than
// binary presence (paper §5).
type Dense struct {
	rows, cols int
	vals       []float64
}

// NewDense allocates a zero-valued dense grid.
func NewDense(rows, cols int) (*Dense, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("grid: invalid dimensions %d×%d", rows, cols)
	}
	return &Dense{rows: rows, cols: cols, vals: make([]float64, rows*cols)}, nil
}

// Rows reports the number of rows.
func (d *Dense) Rows() int { return d.rows }

// Cols reports the number of columns.
func (d *Dense) Cols() int { return d.cols }

// At returns cell (r, c).
func (d *Dense) At(r, c int) float64 { return d.vals[r*d.cols+c] }

// Set assigns cell (r, c).
func (d *Dense) Set(r, c int, v float64) { d.vals[r*d.cols+c] = v }

// Clone returns an independent copy.
func (d *Dense) Clone() *Dense {
	c := *d
	c.vals = append([]float64(nil), d.vals...)
	return &c
}

// Threshold converts the dense grid to a bitmap: cells with value >= t
// are set.
func (d *Dense) Threshold(t float64) *Bitmap {
	bm, _ := New(d.rows, d.cols)
	for r := 0; r < d.rows; r++ {
		for c := 0; c < d.cols; c++ {
			if d.At(r, c) >= t {
				bm.Set(r, c)
			}
		}
	}
	return bm
}
