package report

import (
	"encoding/json"
	"strings"
	"testing"

	"arcs/internal/core"
	"arcs/internal/grid"
	"arcs/internal/rules"
	"arcs/internal/verify"
)

func demoResult() *core.Result {
	return &core.Result{
		CritValue: "A",
		Rules: []rules.ClusteredRule{{
			XAttr: "age", YAttr: "salary", CritAttr: "group", CritValue: "A",
			XLo: 20, XHi: 40, YLo: 50_000, YHi: 100_000,
			Support: 0.12, Confidence: 0.91,
		}},
		MinSupport:    0.0001,
		MinConfidence: 0.39,
		Cost:          9.2,
		Evaluations:   32,
		Errors:        verify.ErrorCounts{FalsePositives: 10, FalseNegatives: 20, Total: 1000},
	}
}

func TestParseFormat(t *testing.T) {
	cases := map[string]Format{
		"": Text, "text": Text, "markdown": Markdown, "md": Markdown, "json": JSON, "JSON": JSON,
	}
	for in, want := range cases {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Error("unknown format should error")
	}
}

func TestWriteResultText(t *testing.T) {
	var sb strings.Builder
	if err := WriteResult(&sb, demoResult(), Text); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"age", "=> group = A", "support 0.1200", "verification:", "3.00%"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// Empty result.
	sb.Reset()
	if err := WriteResult(&sb, &core.Result{}, Text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no clustered rules") {
		t.Error("empty result should say so")
	}
}

func TestWriteResultMarkdown(t *testing.T) {
	var sb strings.Builder
	if err := WriteResult(&sb, demoResult(), Markdown); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "| rule | support | confidence |") {
		t.Errorf("markdown missing table header:\n%s", out)
	}
	if !strings.Contains(out, "### Segmentation for A") {
		t.Error("markdown missing heading")
	}
}

func TestWriteResultJSONRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := WriteResult(&sb, demoResult(), JSON); err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if doc["criterion_value"] != "A" {
		t.Errorf("criterion_value = %v", doc["criterion_value"])
	}
	rs, ok := doc["rules"].([]interface{})
	if !ok || len(rs) != 1 {
		t.Fatalf("rules = %v", doc["rules"])
	}
	rule := rs[0].(map[string]interface{})
	if rule["x_attr"] != "age" || rule["support"].(float64) != 0.12 {
		t.Errorf("rule = %v", rule)
	}
	if doc["error_rate_pct"].(float64) != 3 {
		t.Errorf("error_rate_pct = %v", doc["error_rate_pct"])
	}
}

func TestWriteAll(t *testing.T) {
	results := map[string]*core.Result{
		"A": demoResult(),
		"B": {CritValue: "B"},
	}
	labels := []string{"A", "B"}
	var sb strings.Builder
	if err := WriteAll(&sb, results, labels, Text); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "segmentation for A") || !strings.Contains(out, "segmentation for B") {
		t.Errorf("WriteAll text missing sections:\n%s", out)
	}
	sb.Reset()
	if err := WriteAll(&sb, results, labels, JSON); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc) != 2 {
		t.Errorf("JSON map has %d entries", len(doc))
	}
	sb.Reset()
	if err := WriteAll(&sb, results, labels, Markdown); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "### Segmentation for A") {
		t.Error("markdown WriteAll missing heading")
	}
}

func TestRenderGrid(t *testing.T) {
	bm, err := grid.New(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Rule cells: a 2x2 block and one stray.
	bm.Set(0, 0)
	bm.Set(0, 1)
	bm.Set(1, 0)
	bm.Set(1, 1)
	bm.Set(2, 4)
	clusters := []rules.ClusteredRule{{
		XLoBin: 0, XHiBin: 1, YLoBin: 0, YHiBin: 1,
		XAttr: "x", YAttr: "y", CritAttr: "g", CritValue: "A",
	}}
	out := RenderGrid(bm, clusters)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	// Row 0 renders last (bottom). Cluster cells show '0', stray '#'.
	if lines[2] != "00..." {
		t.Errorf("bottom row = %q, want 00...", lines[2])
	}
	if lines[0] != "....#" {
		t.Errorf("top row = %q, want ....#", lines[0])
	}
	legend := RenderGridLegend(clusters)
	if !strings.Contains(legend, "0: ") || !strings.Contains(legend, "=> g = A") {
		t.Errorf("legend = %q", legend)
	}
}

func TestRenderGridSmoothedCell(t *testing.T) {
	bm, _ := grid.New(2, 2)
	bm.Set(0, 0)
	// Cluster covers (0,0)-(0,1) but only (0,0) holds a rule.
	clusters := []rules.ClusteredRule{{XLoBin: 0, XHiBin: 1, YLoBin: 0, YHiBin: 0}}
	out := RenderGrid(bm, clusters)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[1] != "0+" {
		t.Errorf("bottom row = %q, want 0+", lines[1])
	}
}
