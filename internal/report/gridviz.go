package report

import (
	"fmt"
	"strings"

	"arcs/internal/grid"
	"arcs/internal/rules"
)

// RenderGrid draws the rule grid with cluster overlays in the style of
// the paper's Figures 1, 4 and 5: '#' marks a rule cell, digits mark
// cells belonging to a cluster (the digit is the cluster's index mod 10,
// so adjacent clusters are visually distinct), and '+' marks a cluster
// cell that holds no rule (filled by smoothing). Row 0 renders at the
// bottom so the y attribute grows upward as in the paper.
func RenderGrid(bm *grid.Bitmap, clusters []rules.ClusteredRule) string {
	var sb strings.Builder
	for r := bm.Rows() - 1; r >= 0; r-- {
		for c := 0; c < bm.Cols(); c++ {
			cluster := -1
			for i, cl := range clusters {
				if r >= cl.YLoBin && r <= cl.YHiBin && c >= cl.XLoBin && c <= cl.XHiBin {
					cluster = i
					break
				}
			}
			switch {
			case cluster >= 0 && bm.Get(r, c):
				sb.WriteByte(byte('0' + cluster%10))
			case cluster >= 0:
				sb.WriteByte('+')
			case bm.Get(r, c):
				sb.WriteByte('#')
			default:
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RenderGridLegend lists the clusters under the grid, keyed by the digit
// used in RenderGrid.
func RenderGridLegend(clusters []rules.ClusteredRule) string {
	var sb strings.Builder
	for i, cl := range clusters {
		fmt.Fprintf(&sb, "%d: %s\n", i%10, cl)
	}
	return sb.String()
}
