// Package report renders ARCS results for humans and machines: aligned
// plain text, Markdown tables, and JSON. The CLI's -format flag and the
// experiment harness both use it; keeping rendering out of the core
// packages lets library users define their own.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"arcs/internal/core"
	"arcs/internal/rules"
)

// Format selects an output encoding.
type Format int

const (
	// Text is aligned, human-readable plain text (the default).
	Text Format = iota
	// Markdown emits a GitHub-flavored table.
	Markdown
	// JSON emits a machine-readable document.
	JSON
)

// ParseFormat maps a CLI flag value to a Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "", "text":
		return Text, nil
	case "markdown", "md":
		return Markdown, nil
	case "json":
		return JSON, nil
	default:
		return Text, fmt.Errorf("report: unknown format %q (want text, markdown or json)", s)
	}
}

// jsonRule is the serialized form of one clustered rule.
type jsonRule struct {
	XAttr      string  `json:"x_attr"`
	XLo        float64 `json:"x_lo"`
	XHi        float64 `json:"x_hi"`
	YAttr      string  `json:"y_attr"`
	YLo        float64 `json:"y_lo"`
	YHi        float64 `json:"y_hi"`
	CritAttr   string  `json:"criterion_attr"`
	CritValue  string  `json:"criterion_value"`
	Support    float64 `json:"support"`
	Confidence float64 `json:"confidence"`
	Text       string  `json:"text"`
}

// jsonResult is the serialized form of a Result.
type jsonResult struct {
	CritValue      string     `json:"criterion_value"`
	MinSupport     float64    `json:"min_support"`
	MinConfidence  float64    `json:"min_confidence"`
	MDLCost        float64    `json:"mdl_cost"`
	Evaluations    int        `json:"evaluations"`
	Rules          []jsonRule `json:"rules"`
	FalsePositives int        `json:"false_positives"`
	FalseNegatives int        `json:"false_negatives"`
	SampleSize     int        `json:"sample_size"`
	ErrorRatePct   float64    `json:"error_rate_pct"`
	// Counts identifies the count backend the run read from (dense,
	// sparse or spill) and its memory/disk footprint. Omitted on
	// results predating the backend refactor (empty backend name).
	Counts *core.CountsInfo `json:"counts,omitempty"`
}

func toJSONRule(r rules.ClusteredRule) jsonRule {
	return jsonRule{
		XAttr: r.XAttr, XLo: r.XLo, XHi: r.XHi,
		YAttr: r.YAttr, YLo: r.YLo, YHi: r.YHi,
		CritAttr: r.CritAttr, CritValue: r.CritValue,
		Support: r.Support, Confidence: r.Confidence,
		Text: r.String(),
	}
}

// JSONResult builds the JSON-serializable document WriteResult emits in
// JSON mode, for callers embedding results in larger payloads (the arcsd
// run-status endpoint).
func JSONResult(res *core.Result) any {
	doc := jsonResult{
		CritValue:      res.CritValue,
		MinSupport:     res.MinSupport,
		MinConfidence:  res.MinConfidence,
		MDLCost:        res.Cost,
		Evaluations:    res.Evaluations,
		FalsePositives: res.Errors.FalsePositives,
		FalseNegatives: res.Errors.FalseNegatives,
		SampleSize:     res.Errors.Total,
		ErrorRatePct:   100 * res.Errors.Rate(),
		Rules:          make([]jsonRule, 0, len(res.Rules)),
	}
	for _, r := range res.Rules {
		doc.Rules = append(doc.Rules, toJSONRule(r))
	}
	if res.Counts.Backend != "" {
		c := res.Counts
		doc.Counts = &c
	}
	return doc
}

// WriteResult renders a single segmentation result in the chosen format.
func WriteResult(w io.Writer, res *core.Result, f Format) error {
	switch f {
	case JSON:
		doc := JSONResult(res)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)

	case Markdown:
		fmt.Fprintf(w, "### Segmentation for %s\n\n", res.CritValue)
		fmt.Fprintln(w, "| rule | support | confidence |")
		fmt.Fprintln(w, "|------|--------:|-----------:|")
		for _, r := range res.Rules {
			fmt.Fprintf(w, "| %s | %.4f | %.2f |\n", r, r.Support, r.Confidence)
		}
		fmt.Fprintf(w, "\nThresholds: support ≥ %.5f, confidence ≥ %.3f (MDL cost %.2f, %d probes).\n",
			res.MinSupport, res.MinConfidence, res.Cost, res.Evaluations)
		fmt.Fprintf(w, "Verification: %s.\n", res.Errors)
		return nil

	default: // Text
		if len(res.Rules) == 0 {
			fmt.Fprintln(w, "(no clustered rules)")
			return nil
		}
		for _, r := range res.Rules {
			fmt.Fprintf(w, "%s   [support %.4f, confidence %.2f]\n", r, r.Support, r.Confidence)
		}
		fmt.Fprintf(w, "thresholds: support >= %.5f, confidence >= %.3f  (MDL cost %.2f, %d probes)\n",
			res.MinSupport, res.MinConfidence, res.Cost, res.Evaluations)
		fmt.Fprintf(w, "verification: %s\n", res.Errors)
		return nil
	}
}

// WriteAll renders a full per-value segmentation map, ordered by label.
func WriteAll(w io.Writer, results map[string]*core.Result, labels []string, f Format) error {
	if f == JSON {
		docs := make(map[string]json.RawMessage, len(results))
		for _, label := range labels {
			var sb strings.Builder
			if err := WriteResult(&sb, results[label], JSON); err != nil {
				return err
			}
			docs[label] = json.RawMessage(sb.String())
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(docs)
	}
	for _, label := range labels {
		switch f {
		case Markdown:
			// WriteResult emits its own heading.
		default:
			fmt.Fprintf(w, "== segmentation for %s ==\n", label)
		}
		if err := WriteResult(w, results[label], f); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
