package synth

import (
	"arcs/internal/dataset"
)

// IsGroupA evaluates classification function fn (1..10) from Agrawal et
// al. on a raw (unperturbed) tuple in generator column order, reporting
// whether the tuple belongs to Group A. Unknown function numbers panic;
// Config validation prevents them from reaching here.
func IsGroupA(fn int, t dataset.Tuple) bool {
	salary := t[ColSalary]
	commission := t[ColCommission]
	age := t[ColAge]
	elevel := int(t[ColELevel])
	hvalue := t[ColHValue]
	hyears := t[ColHYears]
	loan := t[ColLoan]

	switch fn {
	case 1:
		// Group A: age < 40 or age >= 60.
		return age < 40 || age >= 60

	case 2:
		// The paper's Figure 8 function:
		//   (age < 40          and  50K <= salary <= 100K) or
		//   (40 <= age < 60    and  75K <= salary <= 125K) or
		//   (age >= 60         and  25K <= salary <=  75K)
		switch {
		case age < 40:
			return 50_000 <= salary && salary <= 100_000
		case age < 60:
			return 75_000 <= salary && salary <= 125_000
		default:
			return 25_000 <= salary && salary <= 75_000
		}

	case 3:
		switch {
		case age < 40:
			return elevel == 0 || elevel == 1
		case age < 60:
			return 1 <= elevel && elevel <= 3
		default:
			return 2 <= elevel && elevel <= 4
		}

	case 4:
		switch {
		case age < 40:
			if elevel == 0 || elevel == 1 {
				return 25_000 <= salary && salary <= 75_000
			}
			return 50_000 <= salary && salary <= 100_000
		case age < 60:
			if 1 <= elevel && elevel <= 3 {
				return 50_000 <= salary && salary <= 100_000
			}
			return 75_000 <= salary && salary <= 125_000
		default:
			if 2 <= elevel && elevel <= 4 {
				return 50_000 <= salary && salary <= 100_000
			}
			return 25_000 <= salary && salary <= 75_000
		}

	case 5:
		switch {
		case age < 40:
			if 50_000 <= salary && salary <= 100_000 {
				return 100_000 <= loan && loan <= 300_000
			}
			return 200_000 <= loan && loan <= 400_000
		case age < 60:
			if 75_000 <= salary && salary <= 125_000 {
				return 200_000 <= loan && loan <= 400_000
			}
			return 300_000 <= loan && loan <= 500_000
		default:
			if 25_000 <= salary && salary <= 75_000 {
				return 300_000 <= loan && loan <= 500_000
			}
			return 100_000 <= loan && loan <= 300_000
		}

	case 6:
		total := salary + commission
		switch {
		case age < 40:
			return 50_000 <= total && total <= 100_000
		case age < 60:
			return 75_000 <= total && total <= 125_000
		default:
			return 25_000 <= total && total <= 75_000
		}

	case 7:
		disposable := 0.67*(salary+commission) - 0.2*loan - 20_000
		return disposable > 0

	case 8:
		disposable := 0.67*(salary+commission) - 5_000*float64(elevel) - 10_000
		return disposable > 0

	case 9:
		disposable := 0.67*(salary+commission) - 5_000*float64(elevel) - 0.2*loan - 10_000
		return disposable > 0

	case 10:
		var equity float64
		if hyears >= 20 {
			equity = 0.1 * hvalue * (hyears - 20)
		}
		disposable := 0.67*(salary+commission) - 5_000*float64(elevel) + 0.2*equity - 10_000
		return disposable > 0

	default:
		panic("synth: unknown function")
	}
}

// Region is an axis-aligned rectangle in (age, salary) space, the shape
// of one disjunct of Function 2. The bounds are inclusive.
type Region struct {
	AgeLo, AgeHi       float64
	SalaryLo, SalaryHi float64
}

// Contains reports whether an (age, salary) point falls in the region.
func (r Region) Contains(age, salary float64) bool {
	return r.AgeLo <= age && age <= r.AgeHi && r.SalaryLo <= salary && salary <= r.SalaryHi
}

// Function2Regions returns the ground-truth rectangles of the three
// disjuncts of Function 2 in (age, salary) space. The upper age bounds
// are represented as the next disjunct's threshold (exclusive boundaries
// 40 and 60 become inclusive hi bounds just below the threshold via the
// closed-interval convention used here; the exact boundary has measure
// zero for continuous attributes).
func Function2Regions() []Region {
	return []Region{
		{AgeLo: AgeMin, AgeHi: 40, SalaryLo: 50_000, SalaryHi: 100_000},
		{AgeLo: 40, AgeHi: 60, SalaryLo: 75_000, SalaryHi: 125_000},
		{AgeLo: 60, AgeHi: AgeMax, SalaryLo: 25_000, SalaryHi: 75_000},
	}
}
