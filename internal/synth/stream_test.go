package synth

import (
	"io"
	"testing"

	"arcs/internal/dataset"
)

func streamConfig(n int) Config {
	return Config{Function: 2, N: n, Seed: 7, Perturbation: 0.05, OutlierFraction: 0.1, FracA: 0.4}
}

// TestStreamPositionDeterminism checks the core contract: tuple i is a
// pure function of (seed, i), independent of visit order.
func TestStreamPositionDeterminism(t *testing.T) {
	s, err := NewStream(streamConfig(500))
	if err != nil {
		t.Fatal(err)
	}
	forward := make([]dataset.Tuple, 500)
	buf := make(dataset.Tuple, numCols)
	for i := range forward {
		s.At(i, buf)
		forward[i] = buf.Clone()
	}
	// Revisit in reverse with a different buffer.
	buf2 := make(dataset.Tuple, numCols)
	for i := len(forward) - 1; i >= 0; i-- {
		s.At(i, buf2)
		for c := range buf2 {
			if buf2[c] != forward[i][c] {
				t.Fatalf("tuple %d col %d: reverse visit %g != forward %g", i, c, buf2[c], forward[i][c])
			}
		}
	}
}

// TestStreamShardsPartition checks that consuming the FuncSource shards
// concurrently reproduces the sequential stream exactly.
func TestStreamShardsPartition(t *testing.T) {
	s, err := NewStream(streamConfig(1_000))
	if err != nil {
		t.Fatal(err)
	}
	src := s.Source()
	var seq []dataset.Tuple
	if err := dataset.ForEach(src, func(tp dataset.Tuple) error {
		seq = append(seq, tp.Clone())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seq) != 1_000 {
		t.Fatalf("sequential pass yielded %d tuples, want 1000", len(seq))
	}
	const shards = 4
	type part struct {
		idx    int
		tuples []dataset.Tuple
	}
	out := make(chan part, shards)
	for i := 0; i < shards; i++ {
		sh, err := s.Source().Shard(i, shards)
		if err != nil {
			t.Fatal(err)
		}
		go func(i int, sh dataset.Source) {
			var got []dataset.Tuple
			for {
				tp, err := sh.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					out <- part{i, nil}
					return
				}
				got = append(got, tp.Clone())
			}
			out <- part{i, got}
		}(i, sh)
	}
	parts := make([][]dataset.Tuple, shards)
	for i := 0; i < shards; i++ {
		p := <-out
		if p.tuples == nil {
			t.Fatal("shard failed")
		}
		parts[p.idx] = p.tuples
	}
	var merged []dataset.Tuple
	for _, p := range parts {
		merged = append(merged, p...)
	}
	if len(merged) != len(seq) {
		t.Fatalf("shards yielded %d tuples, want %d", len(merged), len(seq))
	}
	for i := range seq {
		for c := range seq[i] {
			if merged[i][c] != seq[i][c] {
				t.Fatalf("tuple %d col %d: sharded %g != sequential %g", i, c, merged[i][c], seq[i][c])
			}
		}
	}
}

// TestStreamGroupFractionControl checks rejection sampling hits the
// configured Group A fraction within sampling noise.
func TestStreamGroupFractionControl(t *testing.T) {
	s, err := NewStream(Config{Function: 2, N: 20_000, Seed: 3, FracA: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	buf := make(dataset.Tuple, numCols)
	a := 0
	for i := 0; i < 20_000; i++ {
		s.At(i, buf)
		if buf[ColGroup] == 0 {
			a++
		}
	}
	frac := float64(a) / 20_000
	if frac < 0.37 || frac > 0.43 {
		t.Errorf("Group A fraction = %.3f, want ~0.40", frac)
	}
}

// TestStreamAtZeroAlloc guards the generator hot path: synthesizing a
// tuple into a caller buffer must not allocate, or 100M-tuple streamed
// benches would spend their time in GC.
func TestStreamAtZeroAlloc(t *testing.T) {
	s, err := NewStream(streamConfig(1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	buf := make(dataset.Tuple, numCols)
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		s.At(i, buf)
		i++
	})
	if allocs != 0 {
		t.Errorf("Stream.At allocated %.1f times per tuple, want 0", allocs)
	}
}
