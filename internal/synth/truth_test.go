package synth

import (
	"testing"

	"arcs/internal/dataset"
)

// TestGroundTruthRegionsMatchLabel: for every function that exports
// generating regions, region containment in the (XAttr, YAttr) plane
// must agree with IsGroupA on tuples that vary only those attributes —
// the regions ARE the function, not an approximation of it.
func TestGroundTruthRegionsMatchLabel(t *testing.T) {
	schema := NewSchema()
	for fn := 1; fn <= 10; fn++ {
		tr, err := GroundTruth(fn)
		if err != nil {
			t.Fatalf("GroundTruth(%d): %v", fn, err)
		}
		if tr.Function != fn {
			t.Errorf("GroundTruth(%d).Function = %d", fn, tr.Function)
		}
		for _, name := range []string{tr.XAttr, tr.YAttr} {
			if _, err := schema.Index(name); err != nil {
				t.Errorf("function %d: pair attribute %q not in schema: %v", fn, name, err)
			}
		}
		if !tr.HasRegions() {
			continue
		}
		xIdx := schema.MustIndex(tr.XAttr)
		yIdx := schema.MustIndex(tr.YAttr)
		tuple := make(dataset.Tuple, numCols)
		const steps = 120
		for i := 0; i < steps; i++ {
			x := tr.XLo + (tr.XHi-tr.XLo)*(float64(i)+0.5)/steps
			for j := 0; j < steps; j++ {
				y := tr.YLo + (tr.YHi-tr.YLo)*(float64(j)+0.5)/steps
				tuple[xIdx] = x
				if tr.CategoricalY {
					// Code-space axis: the function reads whole codes.
					tuple[yIdx] = float64(int(y))
				} else {
					tuple[yIdx] = y
				}
				got := tr.ContainsPoint(x, y)
				want := tr.Label(tuple)
				if got != want {
					t.Fatalf("function %d at (%g, %g): regions say %v, IsGroupA says %v",
						fn, x, y, got, want)
				}
			}
		}
	}
}

// TestGroundTruthFunction2MatchesLegacyRegions: the general helper and
// the original Function2Regions describe the same three rectangles.
func TestGroundTruthFunction2MatchesLegacyRegions(t *testing.T) {
	tr, err := GroundTruth(2)
	if err != nil {
		t.Fatal(err)
	}
	legacy := Function2Regions()
	if len(tr.Regions) != len(legacy) {
		t.Fatalf("GroundTruth(2) has %d regions, Function2Regions has %d", len(tr.Regions), len(legacy))
	}
	for i, r := range tr.Regions {
		l := legacy[i]
		if r.XLo != l.AgeLo || r.XHi != l.AgeHi || r.YLo != l.SalaryLo || r.YHi != l.SalaryHi {
			t.Errorf("region %d: %+v != legacy %+v", i, r, l)
		}
	}
}

// TestGroundTruthValidation: out-of-range function numbers error
// instead of panicking.
func TestGroundTruthValidation(t *testing.T) {
	for _, fn := range []int{0, 11, -3} {
		if _, err := GroundTruth(fn); err == nil {
			t.Errorf("GroundTruth(%d) succeeded, want error", fn)
		}
	}
}

// TestGroundTruthRegionHalfOpen: region containment is half-open so
// adjacent disjuncts never double-claim a boundary point.
func TestGroundTruthRegionHalfOpen(t *testing.T) {
	r := TruthRegion{XLo: 20, XHi: 40, YLo: 0, YHi: 2}
	if r.Contains(40, 1) {
		t.Error("XHi boundary should be exclusive")
	}
	if !r.Contains(20, 0) {
		t.Error("XLo/YLo boundary should be inclusive")
	}
	if r.Contains(30, 2) {
		t.Error("YHi boundary should be exclusive")
	}
}
