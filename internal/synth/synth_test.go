package synth

import (
	"io"
	"math"
	"testing"

	"arcs/internal/dataset"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Function: 0, N: 10},
		{Function: 11, N: 10},
		{Function: 2, N: -1},
		{Function: 2, N: 10, Perturbation: -0.1},
		{Function: 2, N: 10, Perturbation: 1.5},
		{Function: 2, N: 10, OutlierFraction: -0.1},
		{Function: 2, N: 10, OutlierFraction: 1.1},
		{Function: 2, N: 10, FracA: -0.2},
		{Function: 2, N: 10, FracA: 1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: config %+v should be rejected", i, cfg)
		}
	}
	if _, err := New(Config{Function: 2, N: 10}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestSchemaStableCodes(t *testing.T) {
	s := NewSchema()
	g := s.Attr(AttrGroup)
	if code, ok := g.LookupCategory(GroupA); !ok || code != 0 {
		t.Errorf("GroupA code = %d, %v; want 0", code, ok)
	}
	if code, ok := g.LookupCategory(GroupOther); !ok || code != 1 {
		t.Errorf("GroupOther code = %d, %v; want 1", code, ok)
	}
	if s.Attr(AttrZipcode).NumCategories() != NumZipcodes {
		t.Errorf("zipcode categories = %d", s.Attr(AttrZipcode).NumCategories())
	}
}

func TestGeneratorDeterministicReplay(t *testing.T) {
	cfg := Config{Function: 2, N: 100, Seed: 42, Perturbation: 0.05, OutlierFraction: 0.1, FracA: 0.4}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := dataset.Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	second, err := dataset.Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	if first.Len() != 100 || second.Len() != 100 {
		t.Fatalf("lengths %d, %d", first.Len(), second.Len())
	}
	for i := 0; i < first.Len(); i++ {
		a, b := first.Row(i), second.Row(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("row %d col %d differs after Reset: %v vs %v", i, j, a[j], b[j])
			}
		}
	}
}

func TestGeneratorEOF(t *testing.T) {
	g, _ := New(Config{Function: 1, N: 2, Seed: 1})
	g.Next()
	g.Next()
	if _, err := g.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestDomains(t *testing.T) {
	g, err := New(Config{Function: 2, N: 5000, Seed: 7, Perturbation: 0.05, OutlierFraction: 0.1, FracA: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	err = dataset.ForEach(g, func(tp dataset.Tuple) error {
		if tp[ColSalary] < SalaryMin || tp[ColSalary] > SalaryMax {
			t.Errorf("salary %v out of domain", tp[ColSalary])
		}
		if tp[ColAge] < AgeMin || tp[ColAge] > AgeMax {
			t.Errorf("age %v out of domain", tp[ColAge])
		}
		if tp[ColCommission] != 0 && (tp[ColCommission] < CommissionMin || tp[ColCommission] > CommissionMax) {
			t.Errorf("commission %v out of domain", tp[ColCommission])
		}
		if e := int(tp[ColELevel]); e < 0 || e >= NumELevels {
			t.Errorf("elevel %d out of domain", e)
		}
		if z := int(tp[ColZipcode]); z < 0 || z >= NumZipcodes {
			t.Errorf("zipcode %d out of domain", z)
		}
		if grp := int(tp[ColGroup]); grp != 0 && grp != 1 {
			t.Errorf("group code %d out of domain", grp)
		}
		if tp[ColLoan] < LoanMin || tp[ColLoan] > LoanMax {
			t.Errorf("loan %v out of domain", tp[ColLoan])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFractionControl(t *testing.T) {
	g, err := New(Config{Function: 2, N: 20000, Seed: 3, FracA: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	countA := 0
	total := 0
	dataset.ForEach(g, func(tp dataset.Tuple) error {
		if int(tp[ColGroup]) == 0 {
			countA++
		}
		total++
		return nil
	})
	frac := float64(countA) / float64(total)
	if math.Abs(frac-0.4) > 0.02 {
		t.Errorf("fraction of Group A = %v, want ~0.40", frac)
	}
}

func TestLabelsMatchFunctionWithoutNoise(t *testing.T) {
	// With no perturbation and no outliers, every label must agree with
	// the generating function exactly.
	g, err := New(Config{Function: 2, N: 5000, Seed: 11, FracA: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	err = dataset.ForEach(g, func(tp dataset.Tuple) error {
		want := IsGroupA(2, tp)
		got := int(tp[ColGroup]) == 0
		if want != got {
			t.Fatalf("label %v disagrees with function %v for tuple %v", got, want, tp)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOutliersProduceRuleViolations(t *testing.T) {
	// With 100% outliers every tuple is drawn uniformly, so a sizable
	// fraction must violate the generating function.
	g, err := New(Config{Function: 2, N: 5000, Seed: 13, OutlierFraction: 1, FracA: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	violations := 0
	total := 0
	dataset.ForEach(g, func(tp dataset.Tuple) error {
		if IsGroupA(2, tp) != (int(tp[ColGroup]) == 0) {
			violations++
		}
		total++
		return nil
	})
	if violations < total/4 {
		t.Errorf("only %d/%d outliers violate the rules; generator is not producing outliers", violations, total)
	}
}

func TestAllFunctionsProduceBothGroups(t *testing.T) {
	for fn := 1; fn <= 10; fn++ {
		g, err := New(Config{Function: fn, N: 2000, Seed: int64(fn)})
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]int{}
		dataset.ForEach(g, func(tp dataset.Tuple) error {
			seen[int(tp[ColGroup])]++
			return nil
		})
		if seen[0] == 0 || seen[1] == 0 {
			t.Errorf("function %d: group counts %v; both groups should appear", fn, seen)
		}
	}
}

func TestFunction2MatchesRegions(t *testing.T) {
	regions := Function2Regions()
	probe := func(age, salary float64) bool {
		tp := make(dataset.Tuple, numCols)
		tp[ColAge] = age
		tp[ColSalary] = salary
		return IsGroupA(2, tp)
	}
	cases := []struct {
		age, salary float64
		want        bool
	}{
		{30, 75_000, true},
		{30, 120_000, false},
		{50, 100_000, true},
		{50, 60_000, false},
		{70, 50_000, true},
		{70, 100_000, false},
	}
	for _, c := range cases {
		if got := probe(c.age, c.salary); got != c.want {
			t.Errorf("F2(age=%v, salary=%v) = %v, want %v", c.age, c.salary, got, c.want)
		}
		inRegion := false
		for _, r := range regions {
			if r.Contains(c.age, c.salary) {
				inRegion = true
			}
		}
		if inRegion != c.want {
			t.Errorf("regions disagree with function at (%v, %v)", c.age, c.salary)
		}
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{AgeLo: 20, AgeHi: 40, SalaryLo: 50_000, SalaryHi: 100_000}
	if !r.Contains(20, 50_000) || !r.Contains(40, 100_000) {
		t.Error("inclusive bounds should contain their corners")
	}
	if r.Contains(41, 75_000) || r.Contains(30, 101_000) {
		t.Error("points outside the rectangle must not be contained")
	}
}

func TestFunctionEvaluations(t *testing.T) {
	// Spot checks for the formula-based functions.
	tp := make(dataset.Tuple, numCols)
	tp[ColSalary] = 100_000
	tp[ColCommission] = 0
	tp[ColLoan] = 100_000
	// F7: 0.67*100000 - 0.2*100000 - 20000 = 67000-20000-20000 = 27000 > 0
	if !IsGroupA(7, tp) {
		t.Error("F7 should be Group A for salary 100k, loan 100k")
	}
	tp[ColLoan] = 400_000
	// 67000 - 80000 - 20000 < 0
	if IsGroupA(7, tp) {
		t.Error("F7 should be other for salary 100k, loan 400k")
	}
	tp[ColELevel] = 4
	tp[ColLoan] = 0
	// F8: 67000 - 20000 - 10000 = 37000 > 0
	if !IsGroupA(8, tp) {
		t.Error("F8 should be Group A")
	}
	// F10 with equity: hyears 30, hvalue 500k -> equity = 0.1*500000*10 = 500000
	tp[ColHYears] = 30
	tp[ColHValue] = 500_000
	if !IsGroupA(10, tp) {
		t.Error("F10 should be Group A with high equity")
	}
	tp[ColHYears] = 10 // no equity
	tp[ColSalary] = 20_000
	tp[ColCommission] = 0
	if IsGroupA(10, tp) {
		t.Error("F10 should be other with low income and no equity")
	}
}

func TestPerturbationMovesValues(t *testing.T) {
	// Same seed with and without perturbation: quantitative values must
	// differ for at least some tuples (RNG consumption differs, so just
	// check the perturbed stream stays in domain and isn't identical to
	// an unperturbed stream of the same seed).
	base, _ := New(Config{Function: 2, N: 200, Seed: 99})
	pert, _ := New(Config{Function: 2, N: 200, Seed: 99, Perturbation: 0.05})
	bt, _ := dataset.Materialize(base)
	pt, _ := dataset.Materialize(pert)
	diff := 0
	for i := 0; i < bt.Len(); i++ {
		if bt.Row(i)[ColSalary] != pt.Row(i)[ColSalary] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("perturbation had no effect on salaries")
	}
}
