package synth

import (
	"arcs/internal/dataset"
)

// Stream is the position-deterministic variant of Generator: tuple i is
// a pure function of (Config.Seed, i), so the stream can be produced
// out of order, restarted anywhere, and — through dataset.FuncSource
// index-range sharding — generated concurrently by ingest workers with
// no shared RNG state. That makes 10M–100M-tuple benchmark workloads
// possible without materializing a table: each worker synthesizes its
// own index range on the fly.
//
// Stream draws from the same attribute domains and classification
// functions as Generator but uses a per-index splitmix64 sequence
// instead of one sequential math/rand stream, so its tuples are not the
// same values Generator emits for a given seed. Both are valid draws
// from the same distribution; fixtures that depend on exact tuples
// should pick one generator and stay with it.
type Stream struct {
	cfg    Config
	schema *dataset.Schema
}

// NewStream constructs a position-deterministic generator after
// validating the config.
func NewStream(cfg Config) (*Stream, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Stream{cfg: cfg, schema: NewSchema()}, nil
}

// Schema returns the nine-attribute person schema plus the group label.
func (s *Stream) Schema() *dataset.Schema { return s.schema }

// Source adapts the stream into a shardable dataset source of cfg.N
// tuples. Each call returns an independent source with its own tuple
// buffer; all of them yield identical data.
func (s *Stream) Source() *dataset.FuncSource {
	return dataset.NewFuncSource(s.schema, s.cfg.N, s.At)
}

// At writes tuple i into out. It is safe for concurrent calls with
// distinct out buffers and performs no allocations.
func (s *Stream) At(i int, out dataset.Tuple) {
	// Seed the per-index sequence by folding the index into the
	// configured seed through one splitmix64 step — adjacent indices
	// land in uncorrelated parts of the sequence space.
	rng := sm64{state: mix64(uint64(s.cfg.Seed) ^ (uint64(i)+1)*0x9e3779b97f4a7c15)}

	if s.cfg.OutlierFraction > 0 && rng.float64() < s.cfg.OutlierFraction {
		s.drawUniform(&rng, out)
		frac := s.cfg.FracA
		if frac == 0 {
			frac = 0.5
		}
		if rng.float64() < frac {
			out[ColGroup] = 0 // GroupA
		} else {
			out[ColGroup] = 1 // GroupOther
		}
		s.perturb(&rng, out)
		return
	}

	if s.cfg.FracA > 0 {
		wantA := rng.float64() < s.cfg.FracA
		for {
			s.drawUniform(&rng, out)
			if IsGroupA(s.cfg.Function, out) == wantA {
				break
			}
		}
	} else {
		s.drawUniform(&rng, out)
	}
	if IsGroupA(s.cfg.Function, out) {
		out[ColGroup] = 0
	} else {
		out[ColGroup] = 1
	}
	s.perturb(&rng, out)
}

// drawUniform mirrors Generator.drawUniform over the splitmix64 stream.
func (s *Stream) drawUniform(rng *sm64, out dataset.Tuple) {
	out[ColSalary] = streamUniform(rng, SalaryMin, SalaryMax)
	if out[ColSalary] >= 75_000 {
		out[ColCommission] = 0
	} else {
		out[ColCommission] = streamUniform(rng, CommissionMin, CommissionMax)
	}
	out[ColAge] = streamUniform(rng, AgeMin, AgeMax)
	out[ColELevel] = float64(rng.intn(NumELevels))
	out[ColCar] = float64(rng.intn(NumCars))
	zip := rng.intn(NumZipcodes)
	out[ColZipcode] = float64(zip)
	k := float64(zip + 1)
	out[ColHValue] = streamUniform(rng, 0.5*k*100_000, 1.5*k*100_000)
	out[ColHYears] = streamUniform(rng, HYearsMin, HYearsMax)
	out[ColLoan] = streamUniform(rng, LoanMin, LoanMax)
}

// perturb mirrors Generator.perturb over the splitmix64 stream.
func (s *Stream) perturb(rng *sm64, out dataset.Tuple) {
	p := s.cfg.Perturbation
	if p <= 0 {
		return
	}
	jitter := func(v, lo, hi float64) float64 {
		w := (hi - lo) * p
		v += (rng.float64() - 0.5) * w
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		return v
	}
	out[ColSalary] = jitter(out[ColSalary], SalaryMin, SalaryMax)
	if out[ColCommission] > 0 {
		out[ColCommission] = jitter(out[ColCommission], CommissionMin, CommissionMax)
	}
	out[ColAge] = jitter(out[ColAge], AgeMin, AgeMax)
	out[ColHValue] = jitter(out[ColHValue], 0.5*100_000, 1.5*float64(NumZipcodes)*100_000)
	out[ColHYears] = jitter(out[ColHYears], HYearsMin, HYearsMax)
	out[ColLoan] = jitter(out[ColLoan], LoanMin, LoanMax)
}

func streamUniform(rng *sm64, lo, hi float64) float64 {
	return lo + rng.float64()*(hi-lo)
}

// sm64 is a splitmix64 sequence — a tiny, allocation-free PRNG whose
// whole state is one word, so seeding one per tuple index costs
// nothing. Quality is ample for synthetic benchmark data.
type sm64 struct {
	state uint64
}

func (r *sm64) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}

// float64 returns a uniform draw in [0, 1) with 53 random bits.
func (r *sm64) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform draw in [0, n) by modulo reduction; the bias
// is below 2^-50 for the single-digit n used here.
func (r *sm64) intn(n int) int {
	return int(r.next() % uint64(n))
}
