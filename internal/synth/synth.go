// Package synth reimplements the synthetic data generator of Agrawal,
// Imielinski and Swami ("Database Mining: A Performance Perspective",
// IEEE TKDE 5(6), 1993) — reference [2] of the ARCS paper — which defines
// nine person-record attributes and ten classification functions of
// varying complexity. The ARCS evaluation (paper §4.1, Table 1, Figure 8)
// draws all of its data from this generator with Function 2.
//
// In addition to the classification functions, the generator models the
// three distortions the paper studies:
//
//   - a group-fraction control (fracA / fracOther, Table 1) realized by
//     rejection sampling,
//   - a perturbation factor that fuzzes attribute values near disjunct
//     boundaries, and
//   - an outlier percentage: tuples keep their assigned group label but
//     their attributes are drawn uniformly, ignoring the rules.
package synth

import (
	"fmt"
	"io"
	"math/rand"

	"arcs/internal/dataset"
)

// Attribute domains, following Agrawal et al. §5.1.
const (
	SalaryMin, SalaryMax = 20_000.0, 150_000.0
	CommissionMin        = 10_000.0
	CommissionMax        = 75_000.0
	AgeMin, AgeMax       = 20.0, 80.0
	HYearsMin, HYearsMax = 1.0, 30.0
	LoanMin, LoanMax     = 0.0, 500_000.0
	NumELevels           = 5  // education level 0..4
	NumCars              = 20 // make of car 1..20
	NumZipcodes          = 9  // zipcode 0..8, also scales hvalue
)

// GroupA and GroupOther are the labels of the criterion attribute.
const (
	GroupA     = "A"
	GroupOther = "other"
)

// Attribute names in schema order.
const (
	AttrSalary     = "salary"
	AttrCommission = "commission"
	AttrAge        = "age"
	AttrELevel     = "elevel"
	AttrCar        = "car"
	AttrZipcode    = "zipcode"
	AttrHValue     = "hvalue"
	AttrHYears     = "hyears"
	AttrLoan       = "loan"
	AttrGroup      = "group"
)

// Column indices into generated tuples, in schema order.
const (
	ColSalary = iota
	ColCommission
	ColAge
	ColELevel
	ColCar
	ColZipcode
	ColHValue
	ColHYears
	ColLoan
	ColGroup
	numCols
)

// Config parameterizes a generator run. The zero value is not valid; use
// the exported fields mirroring paper Table 1.
type Config struct {
	// Function selects the classification function, 1 through 10.
	Function int
	// N is the number of tuples to generate.
	N int
	// Seed makes the stream deterministic and replayable.
	Seed int64
	// Perturbation is the perturbation factor P of Table 1 (e.g. 0.05):
	// each quantitative attribute is shifted by a uniform offset of up to
	// ±P/2 of its domain width after the group label is assigned.
	Perturbation float64
	// OutlierFraction is U of Table 1 (e.g. 0.10): the fraction of tuples
	// whose label is kept but whose attributes are redrawn uniformly.
	OutlierFraction float64
	// FracA is the target fraction of tuples labeled Group A (Table 1
	// uses 0.40). Zero disables fraction control and the natural label
	// distribution of the function is kept.
	FracA float64
}

func (c Config) validate() error {
	if c.Function < 1 || c.Function > 10 {
		return fmt.Errorf("synth: function must be 1..10, got %d", c.Function)
	}
	if c.N < 0 {
		return fmt.Errorf("synth: N must be non-negative, got %d", c.N)
	}
	if c.Perturbation < 0 || c.Perturbation > 1 {
		return fmt.Errorf("synth: perturbation must be in [0,1], got %g", c.Perturbation)
	}
	if c.OutlierFraction < 0 || c.OutlierFraction > 1 {
		return fmt.Errorf("synth: outlier fraction must be in [0,1], got %g", c.OutlierFraction)
	}
	if c.FracA < 0 || c.FracA >= 1 {
		return fmt.Errorf("synth: fracA must be in [0,1), got %g", c.FracA)
	}
	return nil
}

// NewSchema builds the nine-attribute person schema plus the categorical
// group attribute, with GroupA and GroupOther pre-registered (GroupA gets
// code 0).
func NewSchema() *dataset.Schema {
	s := dataset.NewSchema(
		dataset.Attribute{Name: AttrSalary, Kind: dataset.Quantitative},
		dataset.Attribute{Name: AttrCommission, Kind: dataset.Quantitative},
		dataset.Attribute{Name: AttrAge, Kind: dataset.Quantitative},
		dataset.Attribute{Name: AttrELevel, Kind: dataset.Categorical},
		dataset.Attribute{Name: AttrCar, Kind: dataset.Categorical},
		dataset.Attribute{Name: AttrZipcode, Kind: dataset.Categorical},
		dataset.Attribute{Name: AttrHValue, Kind: dataset.Quantitative},
		dataset.Attribute{Name: AttrHYears, Kind: dataset.Quantitative},
		dataset.Attribute{Name: AttrLoan, Kind: dataset.Quantitative},
		dataset.Attribute{Name: AttrGroup, Kind: dataset.Categorical},
	)
	// Register categorical domains eagerly so codes are stable regardless
	// of generation order.
	for e := 0; e < NumELevels; e++ {
		s.Attr(AttrELevel).CategoryCode(fmt.Sprintf("%d", e))
	}
	for c := 1; c <= NumCars; c++ {
		s.Attr(AttrCar).CategoryCode(fmt.Sprintf("%d", c))
	}
	for z := 0; z < NumZipcodes; z++ {
		s.Attr(AttrZipcode).CategoryCode(fmt.Sprintf("%d", z))
	}
	s.Attr(AttrGroup).CategoryCode(GroupA)
	s.Attr(AttrGroup).CategoryCode(GroupOther)
	return s
}

// Generator is a deterministic, resettable stream of synthetic tuples
// implementing dataset.SizedSource.
type Generator struct {
	cfg    Config
	schema *dataset.Schema
	rng    *rand.Rand
	pos    int
	buf    dataset.Tuple
}

// New constructs a generator after validating the config.
func New(cfg Config) (*Generator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		cfg:    cfg,
		schema: NewSchema(),
		buf:    make(dataset.Tuple, numCols),
	}
	g.rng = rand.New(rand.NewSource(cfg.Seed))
	return g, nil
}

// Schema implements dataset.Source.
func (g *Generator) Schema() *dataset.Schema { return g.schema }

// Len implements dataset.SizedSource.
func (g *Generator) Len() int { return g.cfg.N }

// Reset implements dataset.Source: it re-seeds the RNG so the stream
// replays identically.
func (g *Generator) Reset() error {
	g.rng = rand.New(rand.NewSource(g.cfg.Seed))
	g.pos = 0
	return nil
}

// Next implements dataset.Source. The returned tuple is reused between
// calls; clone it to retain.
func (g *Generator) Next() (dataset.Tuple, error) {
	if g.pos >= g.cfg.N {
		return nil, io.EOF
	}
	g.pos++
	g.generate(g.buf)
	return g.buf, nil
}

// generate fills out with one tuple according to the config.
func (g *Generator) generate(out dataset.Tuple) {
	rng := g.rng

	if g.cfg.OutlierFraction > 0 && rng.Float64() < g.cfg.OutlierFraction {
		// Outlier: uniform attributes, label chosen by target fraction
		// (or fair coin when fraction control is off). These tuples
		// belong to the group per their label but lie outside every
		// generating rule with high probability (paper §3.3).
		g.drawUniform(out)
		frac := g.cfg.FracA
		if frac == 0 {
			frac = 0.5
		}
		if rng.Float64() < frac {
			out[ColGroup] = 0 // GroupA
		} else {
			out[ColGroup] = 1 // GroupOther
		}
		g.perturb(out)
		return
	}

	if g.cfg.FracA > 0 {
		// Fraction control: decide the desired label first, then
		// rejection-sample attribute vectors until the function agrees.
		wantA := rng.Float64() < g.cfg.FracA
		for {
			g.drawUniform(out)
			if IsGroupA(g.cfg.Function, out) == wantA {
				break
			}
		}
	} else {
		g.drawUniform(out)
	}
	if IsGroupA(g.cfg.Function, out) {
		out[ColGroup] = 0
	} else {
		out[ColGroup] = 1
	}
	g.perturb(out)
}

// drawUniform fills the nine person attributes from their domains.
func (g *Generator) drawUniform(out dataset.Tuple) {
	rng := g.rng
	out[ColSalary] = uniform(rng, SalaryMin, SalaryMax)
	if out[ColSalary] >= 75_000 {
		out[ColCommission] = 0
	} else {
		out[ColCommission] = uniform(rng, CommissionMin, CommissionMax)
	}
	out[ColAge] = uniform(rng, AgeMin, AgeMax)
	out[ColELevel] = float64(rng.Intn(NumELevels))
	out[ColCar] = float64(rng.Intn(NumCars)) // codes 0..19 = cars 1..20
	zip := rng.Intn(NumZipcodes)
	out[ColZipcode] = float64(zip)
	// hvalue is uniform in [0.5k, 1.5k] * 100000 where k depends on zipcode.
	k := float64(zip + 1)
	out[ColHValue] = uniform(rng, 0.5*k*100_000, 1.5*k*100_000)
	out[ColHYears] = uniform(rng, HYearsMin, HYearsMax)
	out[ColLoan] = uniform(rng, LoanMin, LoanMax)
}

// perturb applies the perturbation factor to the quantitative attributes
// after labeling, modeling fuzzy boundaries between disjuncts. The offset
// is uniform in ±P/2 of the attribute's domain width and the result is
// clamped back into the domain.
func (g *Generator) perturb(out dataset.Tuple) {
	p := g.cfg.Perturbation
	if p <= 0 {
		return
	}
	rng := g.rng
	jitter := func(v, lo, hi float64) float64 {
		w := (hi - lo) * p
		v += (rng.Float64() - 0.5) * w
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		return v
	}
	out[ColSalary] = jitter(out[ColSalary], SalaryMin, SalaryMax)
	if out[ColCommission] > 0 {
		out[ColCommission] = jitter(out[ColCommission], CommissionMin, CommissionMax)
	}
	out[ColAge] = jitter(out[ColAge], AgeMin, AgeMax)
	out[ColHValue] = jitter(out[ColHValue], 0.5*100_000, 1.5*float64(NumZipcodes)*100_000)
	out[ColHYears] = jitter(out[ColHYears], HYearsMin, HYearsMax)
	out[ColLoan] = jitter(out[ColLoan], LoanMin, LoanMax)
}

func uniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}
