package synth

import (
	"fmt"

	"arcs/internal/dataset"
)

// TruthRegion is one generating disjunct of a classification function,
// expressed as an axis-aligned rectangle in the (XAttr, YAttr) plane of
// its Truth. Bounds are half-open [lo, hi) to match the binners' value
// ranges; for categorical axes the bounds are category codes (code c
// occupies [c, c+1)).
type TruthRegion struct {
	XLo float64 `json:"x_lo"`
	XHi float64 `json:"x_hi"`
	YLo float64 `json:"y_lo"`
	YHi float64 `json:"y_hi"`
}

// Contains reports whether an (x, y) point falls in the region.
func (r TruthRegion) Contains(x, y float64) bool {
	return r.XLo <= x && x < r.XHi && r.YLo <= y && y < r.YHi
}

// Truth is the exported ground truth of one Agrawal classification
// function: the attribute pair a 2D miner should segment over, that
// pair's domain, and — when the function is exactly a union of
// axis-aligned rectangles in the pair's plane — the generating
// disjuncts themselves. Functions whose Group A membership depends on
// more than two attributes or on linear combinations (4-10 except as
// noted) carry no Regions; their ground truth is the Label function,
// measured against a held-out test table.
type Truth struct {
	// Function is the classification function number, 1..10.
	Function int `json:"function"`
	// XAttr and YAttr are the recommended LHS pair for mining this
	// function with a two-attribute system: the pair that carries the
	// most of the function's structure.
	XAttr string `json:"x_attr"`
	YAttr string `json:"y_attr"`
	// XLo/XHi and YLo/YHi are the pair's domain, the lattice over which
	// rectangle-recovery metrics are measured. For categorical axes the
	// domain is code space [0, numCodes).
	XLo float64 `json:"x_domain_lo"`
	XHi float64 `json:"x_domain_hi"`
	YLo float64 `json:"y_domain_lo"`
	YHi float64 `json:"y_domain_hi"`
	// Regions are the generating disjuncts in the (XAttr, YAttr) plane,
	// nil when the function is not a union of axis-aligned rectangles
	// there. Categorical-axis regions (Function 3) are in unpermuted
	// code space: evaluate against rules mined with categorical
	// reordering disabled.
	Regions []TruthRegion `json:"regions,omitempty"`
	// CategoricalY marks YAttr as categorical (code-space axis).
	CategoricalY bool `json:"categorical_y,omitempty"`
}

// Label reports whether a raw generator tuple (schema order, before
// perturbation) belongs to Group A under the truth's function. This is
// the exact generating predicate; it is defined for every function,
// including the ones with no rectangular Regions.
func (tr Truth) Label(t dataset.Tuple) bool { return IsGroupA(tr.Function, t) }

// HasRegions reports whether rectangle-recovery metrics are defined for
// this function.
func (tr Truth) HasRegions() bool { return len(tr.Regions) > 0 }

// ContainsPoint reports whether (x, y) lies inside any generating
// region. Only meaningful when HasRegions.
func (tr Truth) ContainsPoint(x, y float64) bool {
	for _, r := range tr.Regions {
		if r.Contains(x, y) {
			return true
		}
	}
	return false
}

// GroundTruth returns the exported ground truth for classification
// function fn (1..10). The recommended pairs:
//
//	1  age × salary     rectangular (age bands, full salary span)
//	2  age × salary     rectangular (the paper's Figure 8 staircase)
//	3  age × elevel     rectangular in code space
//	4  age × salary     salary bands nested under age AND elevel — no 2D rects
//	5  salary × loan    loan bands nested under age AND salary — no 2D rects
//	6  age × salary     thresholds on salary+commission — no 2D rects
//	7  salary × loan    halfplane on 0.67(salary+commission)-0.2 loan
//	8  salary × elevel  halfplane on 0.67(salary+commission)-5000 elevel
//	9  salary × elevel  adds a loan term — no 2D rects
//	10 salary × elevel  adds an hvalue/hyears equity term — no 2D rects
//
// Unknown function numbers return an error rather than panicking, so
// callers can validate user input.
func GroundTruth(fn int) (Truth, error) {
	ageSalary := Truth{
		Function: fn,
		XAttr:    AttrAge, YAttr: AttrSalary,
		XLo: AgeMin, XHi: AgeMax,
		YLo: SalaryMin, YHi: SalaryMax,
	}
	switch fn {
	case 1:
		ageSalary.Regions = []TruthRegion{
			{XLo: AgeMin, XHi: 40, YLo: SalaryMin, YHi: SalaryMax},
			{XLo: 60, XHi: AgeMax, YLo: SalaryMin, YHi: SalaryMax},
		}
		return ageSalary, nil
	case 2:
		ageSalary.Regions = []TruthRegion{
			{XLo: AgeMin, XHi: 40, YLo: 50_000, YHi: 100_000},
			{XLo: 40, XHi: 60, YLo: 75_000, YHi: 125_000},
			{XLo: 60, XHi: AgeMax, YLo: 25_000, YHi: 75_000},
		}
		return ageSalary, nil
	case 3:
		return Truth{
			Function: fn,
			XAttr:    AttrAge, YAttr: AttrELevel,
			XLo: AgeMin, XHi: AgeMax,
			YLo: 0, YHi: NumELevels,
			CategoricalY: true,
			Regions: []TruthRegion{
				{XLo: AgeMin, XHi: 40, YLo: 0, YHi: 2},
				{XLo: 40, XHi: 60, YLo: 1, YHi: 4},
				{XLo: 60, XHi: AgeMax, YLo: 2, YHi: 5},
			},
		}, nil
	case 4, 6:
		return ageSalary, nil
	case 5, 7:
		return Truth{
			Function: fn,
			XAttr:    AttrSalary, YAttr: AttrLoan,
			XLo: SalaryMin, XHi: SalaryMax,
			YLo: LoanMin, YHi: LoanMax,
		}, nil
	case 8, 9, 10:
		return Truth{
			Function: fn,
			XAttr:    AttrSalary, YAttr: AttrELevel,
			XLo: SalaryMin, XHi: SalaryMax,
			YLo: 0, YHi: NumELevels,
			CategoricalY: true,
		}, nil
	default:
		return Truth{}, fmt.Errorf("synth: ground truth wants function 1..10, got %d", fn)
	}
}
