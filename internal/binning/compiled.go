package binning

import "sort"

// Compiled kinds, one per specialized Bin implementation.
const (
	compEquiWidth = iota
	compLUT
	compBoundaries
	compFallback
)

// Compiled is a devirtualized bin-lookup program: Compile flattens a
// Binner's parameters into one concrete struct so the build hot loop
// performs a direct (inlinable) method call per value instead of an
// interface dispatch. The compiled program produces bit-identical bin
// numbers to the source binner — EquiWidth keeps the exact same
// division (no multiply-by-reciprocal, which could flip a boundary
// value's bin by one ulp), and Categorical materializes its identity
// or permutation into a lookup table, removing the per-value identity
// branch.
type Compiled struct {
	kind int
	// equi-width parameters (compEquiWidth)
	lo, hi, width float64
	n             int
	// category code -> bin table (compLUT)
	lut []int32
	// sorted bin lower bounds (compBoundaries: equi-depth, homogeneity)
	boundaries []float64
	// any other Binner implementation (compFallback)
	iface Binner
}

// Compile builds the specialized lookup program for b. Unknown Binner
// implementations degrade to interface dispatch, so Compile is always
// safe to apply.
func Compile(b Binner) Compiled {
	switch v := b.(type) {
	case *EquiWidth:
		return Compiled{kind: compEquiWidth, lo: v.lo, hi: v.hi, width: v.width, n: v.n}
	case *Categorical:
		lut := make([]int32, v.n)
		for code := range lut {
			if v.ident {
				lut[code] = int32(code)
			} else {
				lut[code] = int32(v.perm[code])
			}
		}
		return Compiled{kind: compLUT, n: v.n, lut: lut}
	case *EquiDepth:
		return Compiled{kind: compBoundaries, n: v.NumBins(), boundaries: v.boundaries}
	case *Homogeneity:
		return Compiled{kind: compBoundaries, n: v.NumBins(), boundaries: v.boundaries}
	default:
		return Compiled{kind: compFallback, n: b.NumBins(), iface: b}
	}
}

// NumBins reports the bin count of the compiled program.
func (c *Compiled) NumBins() int { return c.n }

// Bin maps a value to its bin, identically to the source binner.
func (c *Compiled) Bin(v float64) int {
	switch c.kind {
	case compEquiWidth:
		if v <= c.lo {
			return 0
		}
		if v >= c.hi {
			return c.n - 1
		}
		b := int((v - c.lo) / c.width)
		if b >= c.n {
			b = c.n - 1
		}
		return b
	case compLUT:
		code := int(v)
		if code < 0 {
			code = 0
		}
		if code >= c.n {
			code = c.n - 1
		}
		return int(c.lut[code])
	case compBoundaries:
		n := c.n
		if v <= c.boundaries[0] {
			return 0
		}
		if v >= c.boundaries[n] {
			return n - 1
		}
		b := sort.SearchFloat64s(c.boundaries, v)
		if b > 0 && c.boundaries[b] != v {
			b--
		}
		if b >= n {
			b = n - 1
		}
		return b
	default:
		return c.iface.Bin(v)
	}
}
