package binning

import (
	"math/rand"
	"testing"
)

func TestSupervisedFindsClassBoundary(t *testing.T) {
	// class = (v > 50): a single decisive cut near 50.
	rng := rand.New(rand.NewSource(1))
	var values []float64
	var classes []int
	for i := 0; i < 2000; i++ {
		v := rng.Float64() * 100
		c := 0
		if v > 50 {
			c = 1
		}
		values = append(values, v)
		classes = append(classes, c)
	}
	s, err := NewSupervised(values, classes, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumBins() != 2 {
		t.Fatalf("bins = %d, want 2 (one decisive cut)", s.NumBins())
	}
	_, cut := s.Bounds(0)
	if cut < 48 || cut > 52 {
		t.Errorf("cut at %v, want ~50", cut)
	}
}

func TestSupervisedTwoBoundaries(t *testing.T) {
	// class = 1 inside [30, 70): two cuts.
	rng := rand.New(rand.NewSource(2))
	var values []float64
	var classes []int
	for i := 0; i < 4000; i++ {
		v := rng.Float64() * 100
		c := 0
		if v >= 30 && v < 70 {
			c = 1
		}
		values = append(values, v)
		classes = append(classes, c)
	}
	s, err := NewSupervised(values, classes, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumBins() != 3 {
		t.Fatalf("bins = %d, want 3", s.NumBins())
	}
	_, c1 := s.Bounds(0)
	_, c2 := s.Bounds(1)
	if c1 < 27 || c1 > 33 || c2 < 67 || c2 > 73 {
		t.Errorf("cuts at %v, %v; want ~30 and ~70", c1, c2)
	}
}

func TestSupervisedRejectsNoiseCuts(t *testing.T) {
	// Random labels: the MDL criterion should accept no cut.
	rng := rand.New(rand.NewSource(3))
	var values []float64
	var classes []int
	for i := 0; i < 1000; i++ {
		values = append(values, rng.Float64()*100)
		classes = append(classes, rng.Intn(2))
	}
	s, err := NewSupervised(values, classes, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumBins() > 2 {
		t.Errorf("noise data produced %d bins; MDL should reject cuts", s.NumBins())
	}
}

func TestSupervisedMaxBinsCap(t *testing.T) {
	// A staircase of 8 class changes, capped at 4 bins.
	var values []float64
	var classes []int
	for i := 0; i < 800; i++ {
		values = append(values, float64(i))
		classes = append(classes, (i/100)%2)
	}
	s, err := NewSupervised(values, classes, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumBins() > 4 {
		t.Errorf("bins = %d exceeds cap 4", s.NumBins())
	}
	if s.NumBins() < 2 {
		t.Errorf("bins = %d, want at least one accepted cut", s.NumBins())
	}
}

func TestSupervisedValidation(t *testing.T) {
	if _, err := NewSupervised(nil, nil, 4); err == nil {
		t.Error("empty data should error")
	}
	if _, err := NewSupervised([]float64{1, 2}, []int{0}, 4); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := NewSupervised([]float64{1, 2}, []int{0, 1}, 1); err == nil {
		t.Error("maxBins < 2 should error")
	}
	if _, err := NewSupervised([]float64{1, 2}, []int{0, -1}, 4); err == nil {
		t.Error("negative class should error")
	}
}

func TestSupervisedConstantValues(t *testing.T) {
	values := []float64{5, 5, 5, 5}
	classes := []int{0, 1, 0, 1}
	s, err := NewSupervised(values, classes, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b := s.Bin(5); b < 0 || b >= s.NumBins() {
		t.Errorf("Bin(5) = %d out of range", b)
	}
}

func TestSupervisedImplementsBinner(t *testing.T) {
	var _ Binner = &Supervised{}
}
