package binning

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEquiWidthBasics(t *testing.T) {
	e, err := NewEquiWidth(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumBins() != 10 {
		t.Fatalf("NumBins = %d", e.NumBins())
	}
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {5, 0}, {10, 1}, {99.9, 9}, {100, 9},
		{-5, 0},  // clamp below
		{150, 9}, // clamp above
	}
	for _, c := range cases {
		if got := e.Bin(c.v); got != c.want {
			t.Errorf("Bin(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	lo, hi := e.Bounds(3)
	if lo != 30 || hi != 40 {
		t.Errorf("Bounds(3) = [%v, %v)", lo, hi)
	}
}

func TestEquiWidthErrors(t *testing.T) {
	if _, err := NewEquiWidth(0, 100, 0); err == nil {
		t.Error("zero bins should error")
	}
	if _, err := NewEquiWidth(5, 5, 3); err == nil {
		t.Error("empty domain should error")
	}
	if _, err := NewEquiWidthFromData(nil, 3); err == nil {
		t.Error("no data should error")
	}
}

func TestEquiWidthFromDataDegenerateDomain(t *testing.T) {
	e, err := NewEquiWidthFromData([]float64{7, 7, 7}, 4)
	if err != nil {
		t.Fatal(err)
	}
	b := e.Bin(7)
	if b < 0 || b >= e.NumBins() {
		t.Errorf("constant data bin = %d out of range", b)
	}
}

func TestEquiWidthRoundTripProperty(t *testing.T) {
	e, _ := NewEquiWidth(-50, 50, 25)
	f := func(raw int16) bool {
		v := float64(raw) / 400 // within and slightly beyond domain
		b := e.Bin(v)
		if b < 0 || b >= e.NumBins() {
			return false
		}
		lo, hi := e.Bounds(b)
		if v >= -50 && v < 50 {
			// In-domain values must land inside their bin's bounds
			// (allowing the half-open convention).
			return v >= lo-1e-9 && v < hi+1e-9
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEquiDepthBalancedCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Skewed data: equi-depth should still give balanced counts.
	values := make([]float64, 10000)
	for i := range values {
		v := rng.Float64()
		values[i] = v * v * 100 // quadratic skew toward 0
	}
	e, err := NewEquiDepth(values, 10)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, e.NumBins())
	for _, v := range values {
		counts[e.Bin(v)]++
	}
	for b, c := range counts {
		if c < 500 || c > 2000 {
			t.Errorf("bin %d holds %d of 10000; equi-depth should be ~1000", b, c)
		}
	}
}

func TestEquiDepthBoundsMonotone(t *testing.T) {
	values := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	e, err := NewEquiDepth(values, 5)
	if err != nil {
		t.Fatal(err)
	}
	prevHi := -1e18
	for b := 0; b < e.NumBins(); b++ {
		lo, hi := e.Bounds(b)
		if lo >= hi {
			t.Errorf("bin %d has empty range [%v, %v)", b, lo, hi)
		}
		if lo < prevHi {
			t.Errorf("bin %d overlaps previous", b)
		}
		prevHi = hi
	}
}

func TestEquiDepthRepeatedValues(t *testing.T) {
	values := make([]float64, 100)
	for i := range values {
		values[i] = 5 // all identical
	}
	e, err := NewEquiDepth(values, 10)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumBins() < 1 {
		t.Fatal("no bins for constant data")
	}
	if b := e.Bin(5); b < 0 || b >= e.NumBins() {
		t.Errorf("Bin(5) = %d out of range", b)
	}
}

func TestEquiDepthErrors(t *testing.T) {
	if _, err := NewEquiDepth(nil, 5); err == nil {
		t.Error("no data should error")
	}
	if _, err := NewEquiDepth([]float64{1}, 0); err == nil {
		t.Error("zero bins should error")
	}
}

func TestEquiDepthClampAndCoverage(t *testing.T) {
	values := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90}
	e, _ := NewEquiDepth(values, 4)
	if e.Bin(-100) != 0 {
		t.Error("below-domain should clamp to bin 0")
	}
	if e.Bin(1000) != e.NumBins()-1 {
		t.Error("above-domain should clamp to last bin")
	}
	for _, v := range values {
		b := e.Bin(v)
		lo, hi := e.Bounds(b)
		if v < lo-1e-9 || (v > hi+1e-9 && b != e.NumBins()-1) {
			t.Errorf("value %v assigned bin %d with bounds [%v,%v)", v, b, lo, hi)
		}
	}
}

func TestHomogeneitySplitsAtDensityChange(t *testing.T) {
	// Two uniform plateaus of very different density: a homogeneity
	// binner with 2 bins should put its boundary near the plateau edge.
	rng := rand.New(rand.NewSource(2))
	var values []float64
	for i := 0; i < 9000; i++ {
		values = append(values, rng.Float64()*50) // dense [0,50)
	}
	for i := 0; i < 1000; i++ {
		values = append(values, 50+rng.Float64()*50) // sparse [50,100)
	}
	h, err := NewHomogeneity(values, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumBins() != 2 {
		t.Fatalf("NumBins = %d", h.NumBins())
	}
	_, boundary := h.Bounds(0)
	if boundary < 35 || boundary > 65 {
		t.Errorf("boundary at %v, want near 50", boundary)
	}
}

func TestHomogeneityCoverage(t *testing.T) {
	values := []float64{1, 2, 3, 10, 11, 12, 100}
	h, err := NewHomogeneity(values, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range values {
		b := h.Bin(v)
		if b < 0 || b >= h.NumBins() {
			t.Errorf("Bin(%v) = %d out of range", v, b)
		}
	}
	if _, err := NewHomogeneity(nil, 3); err == nil {
		t.Error("no data should error")
	}
	if _, err := NewHomogeneity(values, 0); err == nil {
		t.Error("zero bins should error")
	}
}

func TestCategoricalIdentity(t *testing.T) {
	c, err := NewCategorical(5)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumBins() != 5 {
		t.Fatalf("NumBins = %d", c.NumBins())
	}
	for code := 0; code < 5; code++ {
		if got := c.Bin(float64(code)); got != code {
			t.Errorf("Bin(%d) = %d", code, got)
		}
		if got := c.Code(code); got != code {
			t.Errorf("Code(%d) = %d", code, got)
		}
	}
	if c.Bin(-1) != 0 || c.Bin(99) != 4 {
		t.Error("out-of-range codes should clamp")
	}
	lo, hi := c.Bounds(2)
	if lo != 2 || hi != 3 {
		t.Errorf("Bounds(2) = [%v, %v)", lo, hi)
	}
}

func TestCategoricalOrdered(t *testing.T) {
	// code 0 -> bin 2, code 1 -> bin 0, code 2 -> bin 1
	c, err := NewCategoricalOrdered([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Bin(0) != 2 || c.Bin(1) != 0 || c.Bin(2) != 1 {
		t.Error("permutation not applied")
	}
	if c.Code(0) != 1 || c.Code(1) != 2 || c.Code(2) != 0 {
		t.Error("inverse permutation wrong")
	}
	lo, _ := c.Bounds(0)
	if int(lo) != 1 {
		t.Errorf("Bounds(0) lo = %v, want code 1", lo)
	}
}

func TestCategoricalOrderedErrors(t *testing.T) {
	if _, err := NewCategoricalOrdered(nil); err == nil {
		t.Error("empty order should error")
	}
	if _, err := NewCategoricalOrdered([]int{0, 0}); err == nil {
		t.Error("non-permutation should error")
	}
	if _, err := NewCategoricalOrdered([]int{0, 5}); err == nil {
		t.Error("out-of-range order should error")
	}
	if _, err := NewCategorical(0); err == nil {
		t.Error("zero categories should error")
	}
}

func TestBinnersAreInterface(t *testing.T) {
	var _ Binner = &EquiWidth{}
	var _ Binner = &EquiDepth{}
	var _ Binner = &Homogeneity{}
	var _ Binner = &Categorical{}
}
