package binning

import (
	"math"
	"testing"
)

// TestCompileMatchesBinner differentially checks every compiled program
// against its source binner across the fitted domain, beyond both edges
// and exactly on boundary values — the cases where a one-ulp arithmetic
// change would silently shift a bin assignment.
func TestCompileMatchesBinner(t *testing.T) {
	vals := []float64{1, 3, 3, 4, 7, 9, 12, 12, 12, 15, 21, 30, 30, 42}
	ew, err := NewEquiWidth(-5, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	ed, err := NewEquiDepth(vals, 4)
	if err != nil {
		t.Fatal(err)
	}
	hg, err := NewHomogeneity(vals, 4)
	if err != nil {
		t.Fatal(err)
	}
	catID, err := NewCategorical(6)
	if err != nil {
		t.Fatal(err)
	}
	catPerm, err := NewCategoricalOrdered([]int{2, 0, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []Binner{ew, ed, hg, catID, catPerm} {
		c := Compile(b)
		if c.NumBins() != b.NumBins() {
			t.Errorf("%s: compiled NumBins %d != %d", MethodName(b), c.NumBins(), b.NumBins())
		}
		probe := func(v float64) {
			if got, want := c.Bin(v), b.Bin(v); got != want {
				t.Errorf("%s: compiled Bin(%g) = %d, want %d", MethodName(b), v, got, want)
			}
		}
		for v := -10.0; v <= 60.0; v += 0.37 {
			probe(v)
		}
		for i := 0; i < b.NumBins(); i++ {
			lo, hi := b.Bounds(i)
			probe(lo)
			probe(hi)
			probe(math.Nextafter(lo, math.Inf(1)))
			probe(math.Nextafter(hi, math.Inf(-1)))
		}
	}
}

// TestCompileFallback checks that an unknown Binner implementation
// degrades to interface dispatch with identical results.
func TestCompileFallback(t *testing.T) {
	b := oddEvenBinner{}
	c := Compile(b)
	for v := -3.0; v < 10; v++ {
		if got, want := c.Bin(v), b.Bin(v); got != want {
			t.Errorf("fallback Bin(%g) = %d, want %d", v, got, want)
		}
	}
}

type oddEvenBinner struct{}

func (oddEvenBinner) NumBins() int { return 2 }
func (oddEvenBinner) Bin(v float64) int {
	if int(math.Abs(v))%2 == 1 {
		return 1
	}
	return 0
}
func (oddEvenBinner) Bounds(b int) (float64, float64) { return float64(b), float64(b + 1) }
