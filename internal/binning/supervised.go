package binning

import (
	"fmt"
	"math"
	"sort"

	"arcs/internal/stats"
)

// Supervised is an entropy-based (Fayyad & Irani style) discretizer: cut
// points are chosen to minimize class entropy and accepted only while
// they pass the MDL stopping criterion, so bin boundaries align with the
// places where the class distribution actually changes. This realizes
// the paper's §5 suggestion of applying information-gain measures to
// threshold determination: on ARCS's Function 2 data, supervised cuts on
// age land at 40 and 60 and on salary at the disjunct edges, instead of
// wherever the equi-width lattice happens to fall.
type Supervised struct {
	boundaries []float64
}

// NewSupervised fits a supervised binner on (value, class) pairs.
// maxBins caps the number of bins (recursion stops early when reached);
// it must be at least 2. Classes are category codes.
func NewSupervised(values []float64, classes []int, maxBins int) (*Supervised, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("binning: no data to fit")
	}
	if len(values) != len(classes) {
		return nil, fmt.Errorf("binning: %d values but %d classes", len(values), len(classes))
	}
	if maxBins < 2 {
		return nil, fmt.Errorf("binning: need at least 2 bins, got %d", maxBins)
	}
	nClasses := 0
	for _, c := range classes {
		if c < 0 {
			return nil, fmt.Errorf("binning: negative class code %d", c)
		}
		if c+1 > nClasses {
			nClasses = c + 1
		}
	}
	// Sort jointly by value.
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] < values[idx[b]] })
	sv := make([]float64, len(values))
	sc := make([]int, len(values))
	for i, j := range idx {
		sv[i] = values[j]
		sc[i] = classes[j]
	}

	var cuts []float64
	var recurse func(lo, hi int)
	recurse = func(lo, hi int) {
		if len(cuts)+1 >= maxBins {
			return
		}
		cut, ok := bestCut(sv, sc, lo, hi, nClasses)
		if !ok {
			return
		}
		cuts = append(cuts, cut)
		// Partition at the cut and recurse into both halves.
		mid := sort.SearchFloat64s(sv[lo:hi], cut) + lo
		recurse(lo, mid)
		if len(cuts)+1 < maxBins {
			recurse(mid, hi)
		}
	}
	recurse(0, len(sv))

	lo := sv[0]
	hi := sv[len(sv)-1]
	if lo == hi {
		hi = lo + 1
	}
	boundaries := append([]float64{lo}, cuts...)
	boundaries = append(boundaries, hi)
	sort.Float64s(boundaries)
	// Collapse duplicate boundaries (possible with repeated values).
	dedup := boundaries[:1]
	for _, b := range boundaries[1:] {
		if b > dedup[len(dedup)-1] {
			dedup = append(dedup, b)
		}
	}
	if len(dedup) < 2 {
		dedup = append(dedup, dedup[0]+1)
	}
	return &Supervised{boundaries: dedup}, nil
}

// bestCut finds the entropy-minimizing cut in sv[lo:hi] and applies the
// Fayyad-Irani MDL acceptance test. It returns the cut value (midpoint
// between adjacent distinct values) and whether a cut was accepted.
func bestCut(sv []float64, sc []int, lo, hi, nClasses int) (float64, bool) {
	n := hi - lo
	if n < 4 {
		return 0, false
	}
	total := make([]float64, nClasses)
	for i := lo; i < hi; i++ {
		total[sc[i]]++
	}
	parentH := stats.Entropy(total)
	if parentH == 0 {
		return 0, false
	}
	left := make([]float64, nClasses)
	right := append([]float64(nil), total...)
	bestGain, bestCutV := 0.0, 0.0
	var bestLeft, bestRight []float64
	found := false
	for i := lo; i < hi-1; i++ {
		left[sc[i]]++
		right[sc[i]]--
		if sv[i] == sv[i+1] {
			continue
		}
		nl := float64(i - lo + 1)
		nr := float64(n) - nl
		gain := parentH - (nl/float64(n))*stats.Entropy(left) - (nr/float64(n))*stats.Entropy(right)
		if gain > bestGain {
			bestGain = gain
			bestCutV = (sv[i] + sv[i+1]) / 2
			bestLeft = append(bestLeft[:0], left...)
			bestRight = append(bestRight[:0], right...)
			found = true
		}
	}
	if !found {
		return 0, false
	}
	// Fayyad-Irani MDL criterion: accept when
	//   gain > log2(n-1)/n + delta/n
	// with delta = log2(3^k - 2) - (k*H(S) - k1*H(S1) - k2*H(S2)),
	// where k, k1, k2 are the class counts present in the node and its
	// halves.
	k := countPresent(total)
	k1 := countPresent(bestLeft)
	k2 := countPresent(bestRight)
	h := parentH
	h1 := stats.Entropy(bestLeft)
	h2 := stats.Entropy(bestRight)
	delta := math.Log2(math.Pow(3, float64(k))-2) -
		(float64(k)*h - float64(k1)*h1 - float64(k2)*h2)
	threshold := (math.Log2(float64(n)-1) + delta) / float64(n)
	if bestGain <= threshold {
		return 0, false
	}
	return bestCutV, true
}

func countPresent(counts []float64) int {
	k := 0
	for _, c := range counts {
		if c > 0 {
			k++
		}
	}
	return k
}

// NumBins implements Binner.
func (s *Supervised) NumBins() int { return len(s.boundaries) - 1 }

// Bin implements Binner.
func (s *Supervised) Bin(v float64) int {
	n := s.NumBins()
	if v <= s.boundaries[0] {
		return 0
	}
	if v >= s.boundaries[n] {
		return n - 1
	}
	b := sort.SearchFloat64s(s.boundaries, v)
	if b > 0 && s.boundaries[b] != v {
		b--
	}
	if b >= n {
		b = n - 1
	}
	return b
}

// Bounds implements Binner.
func (s *Supervised) Bounds(b int) (lo, hi float64) {
	return s.boundaries[b], s.boundaries[b+1]
}
