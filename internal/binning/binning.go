// Package binning partitions attribute domains into bins (paper §3.1).
// Quantitative attributes are mapped to consecutive integer bin numbers
// before mining so that the binning process is transparent to the
// association rule engine. The paper's experiments use equi-width bins;
// equi-depth and homogeneity-based binning are provided as the paper's
// suggested alternatives, and a categorical binner supports the
// future-work extension of one categorical LHS attribute.
package binning

import (
	"fmt"
	"math"
	"sort"
)

// Binner maps attribute values to bin numbers 0..NumBins-1 and back to
// value ranges. Bins are half-open [lo, hi) except the last, which is
// closed so the domain maximum maps to a valid bin.
type Binner interface {
	// NumBins reports the number of bins.
	NumBins() int
	// Bin maps a value to its bin, clamping values outside the fitted
	// domain to the first or last bin.
	Bin(v float64) int
	// Bounds returns the value range covered by bin b.
	Bounds(b int) (lo, hi float64)
}

// EquiWidth divides [lo, hi] into n bins of equal width — the paper's
// default strategy.
type EquiWidth struct {
	lo, hi float64
	n      int
	width  float64
}

// NewEquiWidth constructs an equi-width binner over [lo, hi].
func NewEquiWidth(lo, hi float64, n int) (*EquiWidth, error) {
	if n <= 0 {
		return nil, fmt.Errorf("binning: need at least one bin, got %d", n)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("binning: invalid domain [%g, %g]", lo, hi)
	}
	return &EquiWidth{lo: lo, hi: hi, n: n, width: (hi - lo) / float64(n)}, nil
}

// NewEquiWidthFromData fits an equi-width binner to the min/max of values.
func NewEquiWidthFromData(values []float64, n int) (*EquiWidth, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("binning: no data to fit")
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo == hi {
		// Degenerate domain: widen symmetrically so every value maps to
		// a well-defined bin.
		hi = lo + 1
	}
	return NewEquiWidth(lo, hi, n)
}

// NumBins implements Binner.
func (e *EquiWidth) NumBins() int { return e.n }

// Bin implements Binner.
func (e *EquiWidth) Bin(v float64) int {
	if v <= e.lo {
		return 0
	}
	if v >= e.hi {
		return e.n - 1
	}
	b := int((v - e.lo) / e.width)
	if b >= e.n {
		b = e.n - 1
	}
	return b
}

// Bounds implements Binner.
func (e *EquiWidth) Bounds(b int) (lo, hi float64) {
	return e.lo + float64(b)*e.width, e.lo + float64(b+1)*e.width
}

// EquiDepth divides the domain so each bin holds roughly the same number
// of tuples, using quantile boundaries from a fitted sample (the strategy
// of Srikant & Agrawal's quantitative rule mining, paper §1.1).
type EquiDepth struct {
	// boundaries[i] is the lower bound of bin i; boundaries has n+1
	// entries, the last being the domain maximum.
	boundaries []float64
}

// NewEquiDepth fits an equi-depth binner with n bins to values.
// Heavily repeated values can make some quantile boundaries coincide; the
// fitted binner may then have fewer than n distinct bins.
func NewEquiDepth(values []float64, n int) (*EquiDepth, error) {
	if n <= 0 {
		return nil, fmt.Errorf("binning: need at least one bin, got %d", n)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("binning: no data to fit")
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var bounds []float64
	prev := math.Inf(-1)
	for i := 0; i <= n; i++ {
		pos := float64(i) / float64(n) * float64(len(sorted)-1)
		v := sorted[int(math.Round(pos))]
		if v > prev {
			bounds = append(bounds, v)
			prev = v
		}
	}
	if len(bounds) < 2 {
		// All values identical.
		bounds = []float64{sorted[0], sorted[0] + 1}
	}
	return &EquiDepth{boundaries: bounds}, nil
}

// NumBins implements Binner.
func (e *EquiDepth) NumBins() int { return len(e.boundaries) - 1 }

// Bin implements Binner.
func (e *EquiDepth) Bin(v float64) int {
	n := e.NumBins()
	if v <= e.boundaries[0] {
		return 0
	}
	if v >= e.boundaries[n] {
		return n - 1
	}
	// boundaries is sorted; find the right-most lower bound <= v.
	b := sort.SearchFloat64s(e.boundaries, v)
	if b > 0 && e.boundaries[b] != v {
		b--
	}
	if b >= n {
		b = n - 1
	}
	return b
}

// Bounds implements Binner.
func (e *EquiDepth) Bounds(b int) (lo, hi float64) {
	return e.boundaries[b], e.boundaries[b+1]
}

// Homogeneity sizes bins so the tuples within each bin are near-uniformly
// distributed (paper references [14, 23]). It fits by building a fine
// equi-width micro-histogram and recursively splitting: at each step the
// segment whose micro-bin counts deviate most from uniform (largest
// within-segment sum of squared errors) is split at the point minimizing
// the children's summed SSE. On already-uniform data ties resolve to
// splitting the longest segment at its midpoint, so the result degrades
// gracefully to equi-width.
type Homogeneity struct {
	boundaries []float64
}

// NewHomogeneity fits a homogeneity-based binner with n bins to values.
func NewHomogeneity(values []float64, n int) (*Homogeneity, error) {
	if n <= 0 {
		return nil, fmt.Errorf("binning: need at least one bin, got %d", n)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("binning: no data to fit")
	}
	micro := n * 8
	ew, err := NewEquiWidthFromData(values, micro)
	if err != nil {
		return nil, err
	}
	counts := make([]float64, micro)
	for _, v := range values {
		counts[ew.Bin(v)]++
	}
	// Prefix sums give O(1) SSE of any micro-bin range [a, b).
	prefix := make([]float64, micro+1)
	prefixSq := make([]float64, micro+1)
	for i, c := range counts {
		prefix[i+1] = prefix[i] + c
		prefixSq[i+1] = prefixSq[i] + c*c
	}
	sse := func(a, b int) float64 {
		k := float64(b - a)
		if k <= 1 {
			return 0
		}
		sum := prefix[b] - prefix[a]
		sumSq := prefixSq[b] - prefixSq[a]
		return sumSq - sum*sum/k
	}
	type segment struct{ start, end int }
	segs := []segment{{0, micro}}
	for len(segs) < n {
		// Pick the least homogeneous segment; ties go to the longest,
		// then the lowest start, keeping the fit deterministic.
		pick := -1
		for i, s := range segs {
			if s.end-s.start < 2 {
				continue
			}
			if pick < 0 {
				pick = i
				continue
			}
			p := segs[pick]
			si, sp := sse(s.start, s.end), sse(p.start, p.end)
			switch {
			case si > sp+1e-12:
				pick = i
			case math.Abs(si-sp) <= 1e-12 && (s.end-s.start) > (p.end-p.start):
				pick = i
			}
		}
		if pick < 0 {
			break // every segment is a single micro-bin
		}
		s := segs[pick]
		// Split at the cut minimizing the children's summed SSE; ties
		// prefer the cut nearest the midpoint.
		mid := (s.start + s.end) / 2
		bestCut, bestCost := mid, math.Inf(1)
		for cut := s.start + 1; cut < s.end; cut++ {
			cost := sse(s.start, cut) + sse(cut, s.end)
			better := cost < bestCost-1e-12
			tie := math.Abs(cost-bestCost) <= 1e-12 && abs(cut-mid) < abs(bestCut-mid)
			if better || tie {
				bestCut, bestCost = cut, cost
			}
		}
		segs[pick] = segment{s.start, bestCut}
		segs = append(segs, segment{bestCut, s.end})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	bounds := make([]float64, 0, len(segs)+1)
	for _, s := range segs {
		lo, _ := ew.Bounds(s.start)
		bounds = append(bounds, lo)
	}
	_, last := ew.Bounds(micro - 1)
	bounds = append(bounds, last)
	return &Homogeneity{boundaries: bounds}, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// NumBins implements Binner.
func (h *Homogeneity) NumBins() int { return len(h.boundaries) - 1 }

// Bin implements Binner.
func (h *Homogeneity) Bin(v float64) int {
	n := h.NumBins()
	if v <= h.boundaries[0] {
		return 0
	}
	if v >= h.boundaries[n] {
		return n - 1
	}
	b := sort.SearchFloat64s(h.boundaries, v)
	if b > 0 && h.boundaries[b] != v {
		b--
	}
	if b >= n {
		b = n - 1
	}
	return b
}

// Bounds implements Binner.
func (h *Homogeneity) Bounds(b int) (lo, hi float64) {
	return h.boundaries[b], h.boundaries[b+1]
}

// Categorical maps category codes to bins one-to-one, optionally through
// a permutation. It supports the future-work extension of clustering with
// one categorical LHS attribute: reordering categories changes adjacency
// in the grid, and the densest ordering yields the best clusters.
type Categorical struct {
	n     int
	perm  []int // category code -> bin, nil means identity
	inv   []int // bin -> category code
	ident bool
}

// NewCategorical constructs an identity categorical binner over n codes.
func NewCategorical(n int) (*Categorical, error) {
	if n <= 0 {
		return nil, fmt.Errorf("binning: need at least one category, got %d", n)
	}
	return &Categorical{n: n, ident: true}, nil
}

// NewCategoricalOrdered constructs a categorical binner where category
// code c maps to bin order[c]. order must be a permutation of 0..n-1.
func NewCategoricalOrdered(order []int) (*Categorical, error) {
	n := len(order)
	if n == 0 {
		return nil, fmt.Errorf("binning: empty ordering")
	}
	seen := make([]bool, n)
	inv := make([]int, n)
	for code, b := range order {
		if b < 0 || b >= n || seen[b] {
			return nil, fmt.Errorf("binning: order is not a permutation: %v", order)
		}
		seen[b] = true
		inv[b] = code
	}
	return &Categorical{n: n, perm: append([]int(nil), order...), inv: inv}, nil
}

// NumBins implements Binner.
func (c *Categorical) NumBins() int { return c.n }

// Bin implements Binner. Codes outside [0, n) clamp to the edge bins.
func (c *Categorical) Bin(v float64) int {
	code := int(v)
	if code < 0 {
		code = 0
	}
	if code >= c.n {
		code = c.n - 1
	}
	if c.ident {
		return code
	}
	return c.perm[code]
}

// Bounds implements Binner. For categorical bins the "range" is the
// single category code occupying the bin, returned as [code, code+1).
func (c *Categorical) Bounds(b int) (lo, hi float64) {
	code := b
	if !c.ident {
		code = c.inv[b]
	}
	return float64(code), float64(code + 1)
}

// Code returns the category code occupying bin b.
func (c *Categorical) Code(b int) int {
	if c.ident {
		return b
	}
	return c.inv[b]
}

// MethodName reports a stable identifier for a binner's strategy, used
// to label binning metrics and span attributes per method.
func MethodName(b Binner) string {
	switch b.(type) {
	case *EquiWidth:
		return "equi-width"
	case *EquiDepth:
		return "equi-depth"
	case *Homogeneity:
		return "homogeneity"
	case *Categorical:
		return "categorical"
	default:
		return "unknown"
	}
}

// Boundaries collects every boundary value a binner can produce — the
// lo and hi of each bin's Bounds — sorted ascending with duplicates
// removed. For the quantitative binners, whose bins tile the domain
// contiguously, the result is the boundary array B[0..n] with bin b
// spanning [B[b], B[b+1]); for a permuted categorical binner it is the
// category cut points 0, 1, ..., n regardless of bin order. Because
// cluster rule bounds are taken verbatim from Bounds, every rule edge is
// a member of this array — the property the verification index relies on
// to replace value comparisons with slot comparisons exactly.
func Boundaries(b Binner) []float64 {
	n := b.NumBins()
	vals := make([]float64, 0, 2*n)
	for i := 0; i < n; i++ {
		lo, hi := b.Bounds(i)
		vals = append(vals, lo, hi)
	}
	sort.Float64s(vals)
	out := vals[:0]
	for i, v := range vals {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
