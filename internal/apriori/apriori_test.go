package apriori

import (
	"math"
	"testing"

	"arcs/internal/dataset"
	"arcs/internal/rules"
)

// binnedTable builds a table of already-binned integer attributes.
func binnedTable(t *testing.T, rows [][]float64, attrs int) *dataset.Table {
	t.Helper()
	s := &dataset.Schema{}
	for i := 0; i < attrs; i++ {
		s.MustAdd(string(rune('a'+i)), dataset.Quantitative)
	}
	tb := dataset.NewTable(s)
	for _, r := range rows {
		tb.MustAppend(dataset.Tuple(r))
	}
	return tb
}

func TestFrequentItemsetsSimple(t *testing.T) {
	// 10 tuples; item a=1 appears 8 times, b=2 appears 6 times together
	// with a=1 5 times.
	var rows [][]float64
	for i := 0; i < 5; i++ {
		rows = append(rows, []float64{1, 2}) // a=1, b=2
	}
	for i := 0; i < 3; i++ {
		rows = append(rows, []float64{1, 3})
	}
	rows = append(rows, []float64{0, 2})
	rows = append(rows, []float64{0, 9})
	tb := binnedTable(t, rows, 2)
	support, frequent, err := FrequentItemsets(tb, Config{MinSupport: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if got := support["0=1"]; math.Abs(got-0.8) > 1e-12 {
		t.Errorf("sup(a=1) = %v", got)
	}
	if got := support["0=1|1=2"]; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("sup(a=1,b=2) = %v", got)
	}
	// b=3 (support .3) must be absent.
	if _, ok := support["1=3"]; ok {
		t.Error("infrequent item b=3 should be pruned")
	}
	found2 := false
	for _, is := range frequent {
		if len(is) == 2 {
			found2 = true
		}
	}
	if !found2 {
		t.Error("no 2-itemsets found")
	}
}

func TestMineRules(t *testing.T) {
	var rows [][]float64
	for i := 0; i < 9; i++ {
		rows = append(rows, []float64{1, 2})
	}
	rows = append(rows, []float64{1, 7})
	tb := binnedTable(t, rows, 2)
	rs, err := Mine(tb, Config{MinSupport: 0.5, MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	// a=1 => b=2 with confidence 0.9 must be present.
	found := false
	for _, r := range rs {
		if len(r.X) == 1 && r.X[0] == (rules.Item{Attr: 0, Val: 1}) &&
			len(r.Y) == 1 && r.Y[0] == (rules.Item{Attr: 1, Val: 2}) {
			found = true
			if math.Abs(r.Confidence-0.9) > 1e-12 {
				t.Errorf("confidence = %v, want 0.9", r.Confidence)
			}
			if math.Abs(r.Support-0.9) > 1e-12 {
				t.Errorf("support = %v, want 0.9", r.Support)
			}
		}
	}
	if !found {
		t.Fatalf("rule a=1 => b=2 not mined; got %v", rs)
	}
	// b=2 => a=1 has confidence 1.0, also present.
	foundRev := false
	for _, r := range rs {
		if len(r.X) == 1 && r.X[0] == (rules.Item{Attr: 1, Val: 2}) {
			foundRev = true
		}
	}
	if !foundRev {
		t.Error("reverse rule missing")
	}
}

func TestMineConfidenceFilter(t *testing.T) {
	// a=1 occurs 10 times, with b=2 only 5: confidence 0.5 < 0.8.
	var rows [][]float64
	for i := 0; i < 5; i++ {
		rows = append(rows, []float64{1, 2})
	}
	for i := 0; i < 5; i++ {
		rows = append(rows, []float64{1, 3})
	}
	tb := binnedTable(t, rows, 2)
	rs, err := Mine(tb, Config{MinSupport: 0.4, MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if len(r.X) == 1 && r.X[0] == (rules.Item{Attr: 0, Val: 1}) {
			t.Errorf("low-confidence rule emitted: %v", r)
		}
	}
}

func TestThreeItemsets(t *testing.T) {
	// Three attributes always co-occurring.
	var rows [][]float64
	for i := 0; i < 10; i++ {
		rows = append(rows, []float64{1, 2, 3})
	}
	tb := binnedTable(t, rows, 3)
	support, frequent, err := FrequentItemsets(tb, Config{MinSupport: 0.9, MaxItemsetSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := support["0=1|1=2|2=3"]; math.Abs(got-1) > 1e-12 {
		t.Errorf("3-itemset support = %v", got)
	}
	max := 0
	for _, is := range frequent {
		if len(is) > max {
			max = len(is)
		}
	}
	if max != 3 {
		t.Errorf("max itemset size = %d, want 3", max)
	}
	// Rules from the 3-itemset include 2-item LHS.
	rs, err := Mine(tb, Config{MinSupport: 0.9, MinConfidence: 0.9, MaxItemsetSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	has2LHS := false
	for _, r := range rs {
		if len(r.X) == 2 {
			has2LHS = true
		}
	}
	if !has2LHS {
		t.Error("no rule with 2-item LHS")
	}
}

func TestMaxItemsetSizeBound(t *testing.T) {
	var rows [][]float64
	for i := 0; i < 10; i++ {
		rows = append(rows, []float64{1, 2, 3})
	}
	tb := binnedTable(t, rows, 3)
	_, frequent, err := FrequentItemsets(tb, Config{MinSupport: 0.5, MaxItemsetSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, is := range frequent {
		if len(is) > 2 {
			t.Errorf("itemset %v exceeds max size 2", is)
		}
	}
}

func TestValidationAndEmpty(t *testing.T) {
	tb := binnedTable(t, nil, 2)
	if _, _, err := FrequentItemsets(tb, Config{MinSupport: -1}); err == nil {
		t.Error("negative support should error")
	}
	if _, _, err := FrequentItemsets(tb, Config{MinConfidence: 2}); err == nil {
		t.Error("confidence > 1 should error")
	}
	if _, _, err := FrequentItemsets(tb, Config{MaxItemsetSize: -1}); err == nil {
		t.Error("negative max size should error")
	}
	sup, freq, err := FrequentItemsets(tb, Config{MinSupport: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sup) != 0 || len(freq) != 0 {
		t.Error("empty source should yield nothing")
	}
}

func TestNoDuplicateAttrInItemset(t *testing.T) {
	var rows [][]float64
	for i := 0; i < 10; i++ {
		rows = append(rows, []float64{1, 1}) // same value, different attrs
	}
	tb := binnedTable(t, rows, 2)
	_, frequent, err := FrequentItemsets(tb, Config{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, is := range frequent {
		seen := map[int]bool{}
		for _, it := range is {
			if seen[it.Attr] {
				t.Fatalf("itemset %v repeats attribute %d", is, it.Attr)
			}
			seen[it.Attr] = true
		}
	}
}

func TestSupportMonotonicity(t *testing.T) {
	// Property: every frequent itemset's subsets are frequent with at
	// least its support (downward closure).
	var rows [][]float64
	vals := [][]float64{{1, 2, 3}, {1, 2, 4}, {1, 5, 3}, {2, 2, 3}, {1, 2, 3}}
	for i := 0; i < 4; i++ {
		rows = append(rows, vals...)
	}
	tb := binnedTable(t, rows, 3)
	support, frequent, err := FrequentItemsets(tb, Config{MinSupport: 0.2, MaxItemsetSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, z := range frequent {
		if len(z) < 2 {
			continue
		}
		supZ := support[itemsetKey(z)]
		forEachProperSubset(z, func(x rules.Itemset) {
			supX, ok := support[itemsetKey(x)]
			if !ok {
				t.Fatalf("subset %v of frequent %v is not frequent", x, z)
			}
			if supX < supZ-1e-12 {
				t.Fatalf("sup(%v)=%v < sup(%v)=%v violates monotonicity", x, supX, z, supZ)
			}
		})
	}
}

func TestMineLift(t *testing.T) {
	// a=1 and b=2 perfectly associated in half the data; b=2 never
	// appears without a=1, so lift of a=1 => b=2 is 1/sup(b=2) = 2.
	var rows [][]float64
	for i := 0; i < 5; i++ {
		rows = append(rows, []float64{1, 2})
	}
	for i := 0; i < 5; i++ {
		rows = append(rows, []float64{0, 3})
	}
	tb := binnedTable(t, rows, 2)
	rs, err := Mine(tb, Config{MinSupport: 0.3, MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if len(r.X) == 1 && r.X[0] == (rules.Item{Attr: 0, Val: 1}) &&
			len(r.Y) == 1 && r.Y[0] == (rules.Item{Attr: 1, Val: 2}) {
			if math.Abs(r.Lift-2) > 1e-12 {
				t.Errorf("lift = %v, want 2", r.Lift)
			}
			return
		}
	}
	t.Fatal("rule a=1 => b=2 not found")
}
