// Package apriori implements the classical Apriori association rule
// mining algorithm of Agrawal, Imielinski and Swami (SIGMOD 1993) —
// reference [3] of the ARCS paper — over binned attribute=value items.
//
// ARCS's special-purpose engine replaces this general algorithm for the
// two-dimensional case (paper §3.2): Apriori makes one pass over the data
// per itemset size and must re-scan everything when thresholds change,
// whereas the BinArray supports instantaneous re-mining. This package
// exists as the "existing algorithms" baseline the paper contrasts with,
// and as a general-purpose miner for rules with more than two LHS items.
package apriori

import (
	"fmt"
	"sort"
	"strings"

	"arcs/internal/dataset"
	"arcs/internal/obs"
	"arcs/internal/rules"
)

// Config controls a mining run.
type Config struct {
	// MinSupport is the minimum itemset frequency as a fraction of the
	// tuple count.
	MinSupport float64
	// MinConfidence is the minimum rule confidence.
	MinConfidence float64
	// MaxItemsetSize bounds the size of frequent itemsets explored
	// (and therefore rule length). Zero means 3.
	MaxItemsetSize int
	// Observer, when non-nil, records one span per mining level with the
	// level's candidate/pruned/frequent accounting, plus registry
	// counters. The per-tuple counting loops are never touched, so a nil
	// observer costs nothing.
	Observer *obs.Observer
}

// emitLevel records one level's accounting: a span event carrying the
// per-level numbers and pipeline-wide counters. The level span is
// started by the caller (so it brackets the level's data pass); this
// attaches the counts at End. Zero-cost when the observer is disabled.
func emitLevel(o *obs.Observer, span obs.Span, k, generated, pruned, frequent int) {
	if !o.Enabled() {
		return
	}
	reg := o.Registry()
	reg.Counter("apriori_candidates_total").Add(int64(generated))
	reg.Counter("apriori_pruned_total").Add(int64(pruned))
	reg.Counter("apriori_frequent_total").Add(int64(frequent))
	span.End(obs.Int("level", k), obs.Int("candidates", generated),
		obs.Int("pruned", pruned), obs.Int("frequent", frequent))
}

func (c Config) validate() error {
	if c.MinSupport < 0 || c.MinSupport > 1 {
		return fmt.Errorf("apriori: min support %g outside [0, 1]", c.MinSupport)
	}
	if c.MinConfidence < 0 || c.MinConfidence > 1 {
		return fmt.Errorf("apriori: min confidence %g outside [0, 1]", c.MinConfidence)
	}
	if c.MaxItemsetSize < 0 {
		return fmt.Errorf("apriori: negative max itemset size %d", c.MaxItemsetSize)
	}
	return nil
}

// itemsetKey is a canonical string form of an itemset, usable as a map
// key.
func itemsetKey(is rules.Itemset) string {
	var b strings.Builder
	for i, it := range is {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%d=%d", it.Attr, it.Val)
	}
	return b.String()
}

// normalize sorts an itemset by (Attr, Val).
func normalize(is rules.Itemset) rules.Itemset {
	sort.Slice(is, func(i, j int) bool {
		if is[i].Attr != is[j].Attr {
			return is[i].Attr < is[j].Attr
		}
		return is[i].Val < is[j].Val
	})
	return is
}

// contains reports whether the (sorted) itemset covers item it.
func contains(is rules.Itemset, it rules.Item) bool {
	for _, x := range is {
		if x == it {
			return true
		}
	}
	return false
}

// tupleHas reports whether a tuple matches every item of the itemset.
// Values are compared after truncation to int, matching the binned
// encoding.
func tupleHas(t dataset.Tuple, is rules.Itemset) bool {
	for _, it := range is {
		if int(t[it.Attr]) != it.Val {
			return false
		}
	}
	return true
}

// FrequentItemsets mines all itemsets meeting MinSupport, level by level:
// candidate generation by joining (k-1)-itemsets sharing a prefix, the
// Apriori pruning of candidates with infrequent subsets, and one data
// pass per level to count support.
func FrequentItemsets(src dataset.Source, cfg Config) (map[string]float64, []rules.Itemset, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	maxK := cfg.MaxItemsetSize
	if maxK == 0 {
		maxK = 3
	}
	n, err := dataset.Count(src)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return map[string]float64{}, nil, nil
	}
	minCount := cfg.MinSupport * float64(n)
	root := cfg.Observer.Root("apriori", obs.Int("tuples", int(n)))

	// Level 1: count single items.
	lvlSpan := root.Child("apriori-level")
	counts := make(map[rules.Item]int)
	err = dataset.ForEach(src, func(t dataset.Tuple) error {
		for attr, v := range t {
			counts[rules.Item{Attr: attr, Val: int(v)}]++
		}
		return nil
	})
	if err != nil {
		lvlSpan.End(obs.Str("error", err.Error()))
		root.End()
		return nil, nil, err
	}
	support := make(map[string]float64)
	var frequent []rules.Itemset
	var level []rules.Itemset
	for it, c := range counts {
		if float64(c) >= minCount {
			is := rules.Itemset{it}
			level = append(level, is)
			support[itemsetKey(is)] = float64(c) / float64(n)
		}
	}
	sortItemsets(level)
	frequent = append(frequent, level...)
	emitLevel(cfg.Observer, lvlSpan, 1, len(counts), 0, len(level))

	for k := 2; k <= maxK && len(level) > 1; k++ {
		lvlSpan = root.Child("apriori-level")
		candidates, pruned := generateCandidates(level, support)
		if len(candidates) == 0 {
			emitLevel(cfg.Observer, lvlSpan, k, 0, pruned, 0)
			break
		}
		// One pass to count all candidates of this level.
		candCounts := make([]int, len(candidates))
		err = dataset.ForEach(src, func(t dataset.Tuple) error {
			for i, cand := range candidates {
				if tupleHas(t, cand) {
					candCounts[i]++
				}
			}
			return nil
		})
		if err != nil {
			lvlSpan.End(obs.Str("error", err.Error()))
			root.End()
			return nil, nil, err
		}
		level = level[:0]
		for i, cand := range candidates {
			if float64(candCounts[i]) >= minCount {
				level = append(level, cand)
				support[itemsetKey(cand)] = float64(candCounts[i]) / float64(n)
			}
		}
		sortItemsets(level)
		frequent = append(frequent, level...)
		emitLevel(cfg.Observer, lvlSpan, k, len(candidates), pruned, len(level))
	}
	root.End(obs.Int("frequent_itemsets", len(frequent)))
	return support, frequent, nil
}

// generateCandidates joins k-1 itemsets differing only in their last item
// and prunes candidates with an infrequent (k-1)-subset. The second
// result counts the candidates that survived the structural join but
// fell to the Apriori subset prune — the per-level pruning power the
// observability layer reports.
func generateCandidates(level []rules.Itemset, support map[string]float64) ([]rules.Itemset, int) {
	var out []rules.Itemset
	pruned := 0
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i], level[j]
			if !samePrefix(a, b) {
				continue
			}
			last := b[len(b)-1]
			// Items must come from distinct attributes: an attribute
			// appears at most once in a rule (paper §2.1).
			if last.Attr == a[len(a)-1].Attr {
				continue
			}
			cand := normalize(append(append(rules.Itemset{}, a...), last))
			if hasDuplicateAttr(cand) {
				continue
			}
			if !allSubsetsFrequent(cand, support) {
				pruned++
				continue
			}
			out = append(out, cand)
		}
	}
	// The join can produce duplicates after normalization.
	seen := make(map[string]bool, len(out))
	dedup := out[:0]
	for _, c := range out {
		k := itemsetKey(c)
		if !seen[k] {
			seen[k] = true
			dedup = append(dedup, c)
		}
	}
	return dedup, pruned
}

func samePrefix(a, b rules.Itemset) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func hasDuplicateAttr(is rules.Itemset) bool {
	for i := 1; i < len(is); i++ {
		if is[i].Attr == is[i-1].Attr {
			return true
		}
	}
	return false
}

func allSubsetsFrequent(cand rules.Itemset, support map[string]float64) bool {
	if len(cand) <= 2 {
		return true
	}
	sub := make(rules.Itemset, 0, len(cand)-1)
	for skip := range cand {
		sub = sub[:0]
		for i, it := range cand {
			if i != skip {
				sub = append(sub, it)
			}
		}
		if _, ok := support[itemsetKey(sub)]; !ok {
			return false
		}
	}
	return true
}

func sortItemsets(level []rules.Itemset) {
	sort.Slice(level, func(i, j int) bool {
		a, b := level[i], level[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k].Attr != b[k].Attr {
				return a[k].Attr < b[k].Attr
			}
			if a[k].Val != b[k].Val {
				return a[k].Val < b[k].Val
			}
		}
		return len(a) < len(b)
	})
}

// Mine runs the full Apriori pipeline: frequent itemsets, then rule
// generation. For every frequent itemset Z and non-empty proper subset X,
// the rule X ⇒ Z∖X is emitted when its confidence sup(Z)/sup(X) meets
// the threshold. Rules are returned sorted by descending confidence then
// support.
func Mine(src dataset.Source, cfg Config) ([]rules.Rule, error) {
	support, frequent, err := FrequentItemsets(src, cfg)
	if err != nil {
		return nil, err
	}
	rsp := cfg.Observer.Root("apriori-rules", obs.Int("itemsets", len(frequent)))
	var out []rules.Rule
	for _, z := range frequent {
		if len(z) < 2 {
			continue
		}
		supZ := support[itemsetKey(z)]
		forEachProperSubset(z, func(x rules.Itemset) {
			supX, ok := support[itemsetKey(x)]
			if !ok || supX == 0 {
				return
			}
			conf := supZ / supX
			if conf < cfg.MinConfidence {
				return
			}
			y := make(rules.Itemset, 0, len(z)-len(x))
			for _, it := range z {
				if !contains(x, it) {
					y = append(y, it)
				}
			}
			r := rules.Rule{
				X: append(rules.Itemset{}, x...), Y: y,
				Support: supZ, Confidence: conf,
			}
			// Lift needs sup(Y); it is known when Y itself was frequent.
			if supY, ok := support[itemsetKey(y)]; ok && supY > 0 {
				r.Lift = conf / supY
			}
			out = append(out, r)
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return itemsetKey(out[i].X) < itemsetKey(out[j].X)
	})
	if cfg.Observer.Enabled() {
		cfg.Observer.Registry().Counter("apriori_rules_total").Add(int64(len(out)))
	}
	rsp.End(obs.Int("rules", len(out)))
	return out, nil
}

// forEachProperSubset enumerates the non-empty proper subsets of z.
func forEachProperSubset(z rules.Itemset, fn func(rules.Itemset)) {
	n := len(z)
	for mask := 1; mask < (1<<n)-1; mask++ {
		sub := make(rules.Itemset, 0, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, z[i])
			}
		}
		fn(sub)
	}
}
