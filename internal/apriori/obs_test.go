package apriori

import (
	"strconv"
	"testing"

	"arcs/internal/obs"
)

func TestAprioriObsLevelSpans(t *testing.T) {
	tb := binnedTable(t, [][]float64{
		{1, 2, 3},
		{1, 2, 3},
		{1, 2, 4},
		{1, 5, 3},
	}, 3)
	sink := &obs.MemSink{}
	o := obs.New(sink)
	rs, err := Mine(tb, Config{MinSupport: 0.5, MinConfidence: 0.5, Observer: o})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no rules mined")
	}

	levels := sink.Spans("apriori-level")
	if len(levels) < 2 {
		t.Fatalf("got %d level spans, want >= 2", len(levels))
	}
	roots := sink.Spans("apriori")
	if len(roots) != 1 {
		t.Fatalf("got %d apriori root spans, want 1", len(roots))
	}
	for _, lvl := range levels {
		if lvl.Parent != roots[0].ID {
			t.Fatalf("level span not nested under apriori root: %+v", lvl)
		}
		k, err := strconv.Atoi(lvl.Attr("level"))
		if err != nil || k < 1 {
			t.Fatalf("level span missing level attr: %+v", lvl.Attrs)
		}
		if lvl.Attr("candidates") == "" || lvl.Attr("pruned") == "" || lvl.Attr("frequent") == "" {
			t.Fatalf("level span missing accounting attrs: %+v", lvl.Attrs)
		}
	}
	if rules := sink.Spans("apriori-rules"); len(rules) != 1 || rules[0].Attr("rules") == "" {
		t.Fatalf("apriori-rules span missing or unannotated: %+v", rules)
	}

	snap := o.Registry().Snapshot()
	if snap.Counters["apriori_candidates_total"] == 0 {
		t.Fatal("apriori_candidates_total not incremented")
	}
	if snap.Counters["apriori_frequent_total"] == 0 {
		t.Fatal("apriori_frequent_total not incremented")
	}
	if got := snap.Counters["apriori_rules_total"]; got != int64(len(rs)) {
		t.Fatalf("apriori_rules_total = %d, want %d", got, len(rs))
	}

	// The observer must not change the mining result.
	plain, err := Mine(tb, Config{MinSupport: 0.5, MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(rs) {
		t.Fatalf("observer changed result: %d vs %d rules", len(rs), len(plain))
	}
}

// TestAprioriObsDisabledZeroAlloc pins the nil-observer contract on the
// Apriori path: the per-level accounting helper — the only
// instrumentation the miner adds, called once per level outside the
// per-tuple loops — is free when observability is off.
func TestAprioriObsDisabledZeroAlloc(t *testing.T) {
	var o *obs.Observer
	span := o.Root("apriori")
	allocs := testing.AllocsPerRun(1000, func() {
		emitLevel(o, span.Child("apriori-level"), 2, 500, 100, 50)
	})
	if allocs != 0 {
		t.Fatalf("disabled emitLevel allocates %.1f per op, want 0", allocs)
	}
}
