package verify

import (
	"math/rand"
	"testing"

	"arcs/internal/binning"
	"arcs/internal/dataset"
	"arcs/internal/rules"
)

func indexFixture(t *testing.T, rng *rand.Rand, n int) (*dataset.Table, []float64, []float64) {
	t.Helper()
	schema := dataset.NewSchema(
		dataset.Attribute{Name: "x", Kind: dataset.Quantitative},
		dataset.Attribute{Name: "y", Kind: dataset.Quantitative},
		dataset.Attribute{Name: "g", Kind: dataset.Categorical},
	)
	tb := dataset.NewTable(schema)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 100
		y := rng.Float64() * 100
		switch rng.Intn(10) {
		case 0: // below the binned range
			x = -5 - rng.Float64()*10
		case 1: // above it
			y = 105 + rng.Float64()*10
		case 2: // exactly on the top boundary (outside every half-open bin)
			x = 100
		case 3: // exactly on an interior boundary
			x = float64(rng.Intn(10)) * 10
		}
		tb.MustAppend(dataset.Tuple{x, y, float64(rng.Intn(3))})
	}
	xb, err := binning.NewEquiWidth(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	yb, err := binning.NewEquiWidth(0, 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	return tb, binning.Boundaries(xb), binning.Boundaries(yb)
}

// randomRules draws boundary-aligned rule rectangles, sprinkling in
// inverted ranges (which cover nothing, like permuted-categorical rules)
// and, when misaligned is set, rules whose edges are not boundary values
// (forcing the rect-scan fallback).
func randomRules(rng *rand.Rand, xB, yB []float64, count int, misaligned bool) []rules.ClusteredRule {
	rs := make([]rules.ClusteredRule, 0, count)
	for len(rs) < count {
		r := rules.ClusteredRule{}
		switch {
		case misaligned && rng.Intn(3) == 0:
			lo := rng.Float64() * 90
			r.XLo, r.XHi = lo, lo+3.7+rng.Float64()*20
			lo = rng.Float64() * 90
			r.YLo, r.YHi = lo, lo+5.1+rng.Float64()*20
		case rng.Intn(8) == 0: // inverted: covers nothing
			i, j := rng.Intn(len(xB)), rng.Intn(len(xB))
			if i < j {
				i, j = j, i
			}
			r.XLo, r.XHi = xB[i], xB[j]
			r.YLo, r.YHi = yB[0], yB[len(yB)-1]
		default:
			i, j := rng.Intn(len(xB)-1), rng.Intn(len(xB)-1)
			if i > j {
				i, j = j, i
			}
			r.XLo, r.XHi = xB[i], xB[j+1]
			i, j = rng.Intn(len(yB)-1), rng.Intn(len(yB)-1)
			if i > j {
				i, j = j, i
			}
			r.YLo, r.YHi = yB[i], yB[j+1]
		}
		rs = append(rs, r)
	}
	return rs
}

// TestIndexMatchesScan is the equivalence contract: the bitmap-based
// index must report exactly the same error counts as the O(|rules|)
// rect scan, on randomized rule sets, for tables containing tuples
// outside the binned range and on bin boundaries.
func TestIndexMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tb, xB, yB := indexFixture(t, rng, 500)
	ix, err := NewIndex(tb, 0, 1, 2, xB, yB)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != tb.Len() {
		t.Fatalf("index len %d, table len %d", ix.Len(), tb.Len())
	}
	for trial := 0; trial < 50; trial++ {
		misaligned := trial%2 == 1
		rs := randomRules(rng, xB, yB, 1+rng.Intn(6), misaligned)
		seg := rng.Intn(3)

		want := Measure(rs, tb, 0, 1, 2, seg)
		got := ix.Measure(rs, seg)
		if got != want {
			t.Fatalf("trial %d (misaligned=%v): Measure mismatch\nindex: %v\nscan:  %v\nrules: %v",
				trial, misaligned, got, want, rs)
		}

		idx := make([]int, 0, 100)
		for i := 0; i < 100; i++ {
			idx = append(idx, rng.Intn(tb.Len()))
		}
		want = MeasureIndices(rs, tb, idx, 0, 1, 2, seg)
		got = ix.MeasureIndices(rs, idx, seg)
		if got != want {
			t.Fatalf("trial %d: MeasureIndices mismatch index=%v scan=%v", trial, got, want)
		}
	}
}

// TestIndexMeasureRepeatedMatches checks the sampling path consumes the
// RNG identically, so equal seeds give bit-equal mean/std either way.
func TestIndexMeasureRepeatedMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tb, xB, yB := indexFixture(t, rng, 400)
	ix, err := NewIndex(tb, 0, 1, 2, xB, yB)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		rs := randomRules(rng, xB, yB, 1+rng.Intn(5), trial%3 == 0)
		seg := rng.Intn(3)
		m1, s1, err1 := MeasureRepeated(rs, tb, rand.New(rand.NewSource(99)), 5, 120, 0, 1, 2, seg)
		m2, s2, err2 := ix.MeasureRepeated(rs, rand.New(rand.NewSource(99)), 5, 120, seg)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if m1 != m2 || s1 != s2 {
			t.Fatalf("trial %d: repeated measure mismatch: scan (%v, %v) index (%v, %v)",
				trial, m1, s1, m2, s2)
		}
	}
}

// TestIndexPermutedCategorical models the permuted-categorical binner: a
// non-monotone bin order whose Bounds produce single-category ranges and
// whose multi-bin clusters can yield inverted value ranges.
func TestIndexPermutedCategorical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	schema := dataset.NewSchema(
		dataset.Attribute{Name: "cat", Kind: dataset.Categorical},
		dataset.Attribute{Name: "y", Kind: dataset.Quantitative},
		dataset.Attribute{Name: "g", Kind: dataset.Categorical},
	)
	tb := dataset.NewTable(schema)
	for i := 0; i < 300; i++ {
		tb.MustAppend(dataset.Tuple{float64(rng.Intn(5)), rng.Float64() * 10, float64(rng.Intn(2))})
	}
	cat, err := binning.NewCategoricalOrdered([]int{3, 0, 4, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	yb, err := binning.NewEquiWidth(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	xB, yB := binning.Boundaries(cat), binning.Boundaries(yb)
	ix, err := NewIndex(tb, 0, 1, 2, xB, yB)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		// Rules spanning bin rects of the permuted binner, value ranges
		// from Bounds — exactly how cluster.FromRects builds them. Spans
		// crossing a permutation discontinuity produce inverted or
		// oversized value ranges; equivalence must still be exact.
		b0, b1 := rng.Intn(5), rng.Intn(5)
		if b0 > b1 {
			b0, b1 = b1, b0
		}
		xlo, _ := cat.Bounds(b0)
		_, xhi := cat.Bounds(b1)
		r := rules.ClusteredRule{XLo: xlo, XHi: xhi, YLo: 0, YHi: 10}
		seg := rng.Intn(2)
		want := Measure([]rules.ClusteredRule{r}, tb, 0, 1, 2, seg)
		got := ix.Measure([]rules.ClusteredRule{r}, seg)
		if got != want {
			t.Fatalf("trial %d: permuted mismatch bins [%d,%d] range [%g,%g): index %v scan %v",
				trial, b0, b1, xlo, xhi, got, want)
		}
	}
}

func TestSlotOf(t *testing.T) {
	bounds := []float64{0, 10, 20, 30}
	cases := []struct {
		v    float64
		want int
	}{
		{-1, -1}, {0, 0}, {5, 0}, {10, 1}, {19.999, 1},
		{20, 2}, {29.999, 2}, {30, -1}, {31, -1},
	}
	for _, c := range cases {
		if got := slotOf(bounds, c.v); got != c.want {
			t.Errorf("slotOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}
