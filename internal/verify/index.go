package verify

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"arcs/internal/cancelcheck"
	"arcs/internal/dataset"
	"arcs/internal/grid"
	"arcs/internal/obs"
	"arcs/internal/rules"
	"arcs/internal/stats"
)

// Index is a pre-binned verification sample: each tuple's (x, y) value is
// resolved once to a boundary slot, so measuring a candidate segmentation
// costs O(1) per tuple instead of O(|rules|).
//
// The slot arrays are built against the binner's boundary values
// (binning.Boundaries): slot s holds values v with B[s] <= v < B[s+1],
// found with the same float comparisons rules.Covers performs. Because
// every clustered rule's value range is bounded by members of B (cluster
// bounds are taken verbatim from Binner.Bounds), "rule covers tuple" in
// value space is exactly "tuple slot inside rule slot-rectangle" — so a
// per-ruleset coverage bitmap over the slot grid answers Covered with a
// single bit test, bit-for-bit equal to the rect scan. Rules whose edges
// are not boundary values (possible only for hand-built rules, never for
// mined clusters) fall back to the rect scan; tuples outside the boundary
// range are provably uncovered by every boundary-aligned rule.
//
// An Index is immutable after construction and safe for concurrent use.
type Index struct {
	tb         *dataset.Table
	xIdx, yIdx int
	xB, yB     []float64 // sorted boundary values per axis
	xSlot      []int32   // per-tuple x slot, -1 when out of range
	ySlot      []int32   // per-tuple y slot, -1 when out of range
	crit       []int32   // per-tuple criterion category code

	pool sync.Pool // *grid.Bitmap scratch masks, one slot grid each

	// Observability hooks, set once via Observe before concurrent use.
	// fastC/fallC count rules rasterized on the O(1) slot-grid fast path
	// versus degraded to the O(rules) scan fallback; onFallback, when
	// non-nil, receives each fallback rule with the reason its bounds
	// were not boundary-aligned.
	fastC, fallC *obs.Counter
	onFallback   func(Fallback)
}

// Fallback describes one rule that could not use the slot-grid fast
// path and forces the per-tuple rect-scan fallback: the rule, and which
// of its edges are not binner boundary values.
type Fallback struct {
	Rule   rules.ClusteredRule
	Reason string
}

// Observe attaches observability hooks: per-rule fast-path/fallback
// counters (either may be nil) and an optional callback invoked for
// every fallback rule with the reason it was non-boundary-aligned.
// Observe must be called before the Index is used concurrently.
func (ix *Index) Observe(fast, fallback *obs.Counter, onFallback func(Fallback)) {
	ix.fastC, ix.fallC, ix.onFallback = fast, fallback, onFallback
}

// NewIndex pre-bins every row of tb. xBounds/yBounds are the sorted,
// deduplicated boundary values of the two LHS binners; xIdx/yIdx/critIdx
// are schema positions of the LHS and criterion attributes.
func NewIndex(tb *dataset.Table, xIdx, yIdx, critIdx int, xBounds, yBounds []float64) (*Index, error) {
	for _, b := range [][]float64{xBounds, yBounds} {
		if len(b) < 2 {
			return nil, fmt.Errorf("verify: need at least 2 boundary values, got %d", len(b))
		}
		for i := 1; i < len(b); i++ {
			if !(b[i-1] < b[i]) {
				return nil, fmt.Errorf("verify: boundaries must be strictly increasing at %d: %v", i, b)
			}
		}
	}
	n := tb.Len()
	ix := &Index{
		tb:   tb,
		xIdx: xIdx, yIdx: yIdx,
		xB: xBounds, yB: yBounds,
		xSlot: make([]int32, n),
		ySlot: make([]int32, n),
		crit:  make([]int32, n),
	}
	for i := 0; i < n; i++ {
		row := tb.Row(i)
		ix.xSlot[i] = int32(slotOf(xBounds, row[xIdx]))
		ix.ySlot[i] = int32(slotOf(yBounds, row[yIdx]))
		ix.crit[i] = int32(row[critIdx])
	}
	rows, cols := len(yBounds)-1, len(xBounds)-1
	ix.pool.New = func() any {
		bm, err := grid.New(rows, cols)
		if err != nil { // unreachable: rows, cols >= 1 by validation above
			panic(err)
		}
		return bm
	}
	return ix, nil
}

// Len reports the number of indexed tuples.
func (ix *Index) Len() int { return len(ix.crit) }

// slotOf locates v in the sorted boundary array: the s with
// bounds[s] <= v < bounds[s+1], or -1 when v falls outside
// [bounds[0], bounds[len-1]). Same comparisons, same floats as
// rules.Covers — no epsilon, no recomputation.
func slotOf(bounds []float64, v float64) int {
	i := sort.SearchFloat64s(bounds, v) // smallest i with bounds[i] >= v
	if i < len(bounds) && bounds[i] == v {
		if i == len(bounds)-1 {
			return -1 // v sits on the top boundary: outside every half-open slot
		}
		return i
	}
	if i == 0 || i == len(bounds) {
		return -1 // below the bottom boundary or above the top one
	}
	return i - 1
}

// boundaryIndex reports the position of v in bounds, or ok=false when v
// is not a boundary value (the rule must then use the rect-scan
// fallback).
func boundaryIndex(bounds []float64, v float64) (int, bool) {
	i := sort.SearchFloat64s(bounds, v)
	if i < len(bounds) && bounds[i] == v {
		return i, true
	}
	return 0, false
}

// Coverage is the per-ruleset acceleration structure: a bitmap over the
// slot grid with every boundary-aligned rule's rectangle filled, plus the
// (normally empty) list of rules that need the rect-scan fallback.
// A Coverage is read-only after NewCoverage and safe for concurrent
// Covered calls; Release recycles its bitmap.
type Coverage struct {
	ix       *Index
	bm       *grid.Bitmap
	fallback []rules.ClusteredRule
	reasons  []string // parallel to fallback: why each rule degraded
}

// NewCoverage rasterizes the rule set onto a pooled slot-grid bitmap.
// Rules whose edges are not boundary values are recorded (with the
// offending edges), counted on the index's fallback counter, and
// reported through the OnFallback hook — the degradation to O(rules)
// scanning is never silent.
func (ix *Index) NewCoverage(rs []rules.ClusteredRule) *Coverage {
	bm := ix.pool.Get().(*grid.Bitmap)
	bm.Reset()
	cv := &Coverage{ix: ix, bm: bm}
	for _, r := range rs {
		xlo, ok1 := boundaryIndex(ix.xB, r.XLo)
		xhi, ok2 := boundaryIndex(ix.xB, r.XHi)
		ylo, ok3 := boundaryIndex(ix.yB, r.YLo)
		yhi, ok4 := boundaryIndex(ix.yB, r.YHi)
		if !ok1 || !ok2 || !ok3 || !ok4 {
			reason := fallbackReason(r, ok1, ok2, ok3, ok4)
			cv.fallback = append(cv.fallback, r)
			cv.reasons = append(cv.reasons, reason)
			ix.fallC.Inc()
			if ix.onFallback != nil {
				ix.onFallback(Fallback{Rule: r, Reason: reason})
			}
			continue
		}
		ix.fastC.Inc()
		if xhi <= xlo || yhi <= ylo {
			// Empty or inverted value range (permuted categorical bins
			// produce these): Covers is identically false, so the rule
			// contributes nothing.
			continue
		}
		bm.FillRect(grid.Rect{R0: ylo, C0: xlo, R1: yhi - 1, C1: xhi - 1})
	}
	return cv
}

// fallbackReason names the rule edges whose values are absent from the
// index's boundary arrays. Only hand-built rules can trigger this —
// mined clusters take their bounds verbatim from the binners.
func fallbackReason(r rules.ClusteredRule, xlo, xhi, ylo, yhi bool) string {
	var bad []string
	if !xlo {
		bad = append(bad, fmt.Sprintf("x_lo=%g", r.XLo))
	}
	if !xhi {
		bad = append(bad, fmt.Sprintf("x_hi=%g", r.XHi))
	}
	if !ylo {
		bad = append(bad, fmt.Sprintf("y_lo=%g", r.YLo))
	}
	if !yhi {
		bad = append(bad, fmt.Sprintf("y_hi=%g", r.YHi))
	}
	return "not a binner boundary: " + strings.Join(bad, ", ")
}

// Fallbacks returns the rules of this coverage that degraded to the
// rect-scan fallback, each with the reason. Empty for purely mined rule
// sets.
func (cv *Coverage) Fallbacks() []Fallback {
	out := make([]Fallback, len(cv.fallback))
	for i, r := range cv.fallback {
		out[i] = Fallback{Rule: r, Reason: cv.reasons[i]}
	}
	return out
}

// Release returns the coverage bitmap to the index's pool. The Coverage
// must not be used afterwards.
func (cv *Coverage) Release() {
	if cv.bm != nil {
		cv.ix.pool.Put(cv.bm)
		cv.bm = nil
	}
}

// Covered reports whether any rule covers indexed tuple i.
func (cv *Coverage) Covered(i int) bool {
	ix := cv.ix
	xs, ys := ix.xSlot[i], ix.ySlot[i]
	if xs >= 0 && ys >= 0 && cv.bm.Get(int(ys), int(xs)) {
		return true
	}
	if len(cv.fallback) > 0 {
		row := ix.tb.Row(i)
		return Covered(cv.fallback, row[ix.xIdx], row[ix.yIdx])
	}
	return false
}

func (e *ErrorCounts) addIndexed(cv *Coverage, i, segCode int) {
	e.Total++
	isSeg := int(cv.ix.crit[i]) == segCode
	covered := cv.Covered(i)
	switch {
	case covered && !isSeg:
		e.FalsePositives++
	case !covered && isSeg:
		e.FalseNegatives++
	}
}

// Measure counts errors of the segmentation over every indexed tuple;
// equivalent to the package-level Measure on the same table.
func (ix *Index) Measure(rs []rules.ClusteredRule, segCode int) ErrorCounts {
	cv := ix.NewCoverage(rs)
	defer cv.Release()
	var e ErrorCounts
	for i := range ix.crit {
		e.addIndexed(cv, i, segCode)
	}
	return e
}

// MeasureIndices counts errors over the indexed tuples selected by idx;
// equivalent to the package-level MeasureIndices.
func (ix *Index) MeasureIndices(rs []rules.ClusteredRule, idx []int, segCode int) ErrorCounts {
	cv := ix.NewCoverage(rs)
	defer cv.Release()
	var e ErrorCounts
	for _, i := range idx {
		e.addIndexed(cv, i, segCode)
	}
	return e
}

// MeasureRepeated performs the repeated k-out-of-n sampling of §3.6 over
// the index. It consumes the RNG exactly like the package-level
// MeasureRepeated, so with equal seeds the two return identical values.
func (ix *Index) MeasureRepeated(rs []rules.ClusteredRule, rng *rand.Rand,
	rounds, k, segCode int) (meanErrors, stdErrors float64, err error) {
	return ix.MeasureRepeatedContext(context.Background(), rs, rng, rounds, k, segCode)
}

// measureCheckEvery is the cancellation checkpoint stride inside a
// measurement round: one context poll per this many tuples scored.
const measureCheckEvery = 2048

// MeasureRepeatedContext is MeasureRepeated with checkpointed
// cancellation: the sampling rounds poll the context every
// measureCheckEvery scored tuples and the call returns the cancellation
// error (with zero statistics — a half-measured error rate is not a
// usable partial result). The RNG is still advanced identically to the
// uncancelled call up to the point of cancellation. A background context
// adds no measurable cost.
func (ix *Index) MeasureRepeatedContext(ctx context.Context, rs []rules.ClusteredRule,
	rng *rand.Rand, rounds, k, segCode int) (meanErrors, stdErrors float64, err error) {
	n := len(ix.crit)
	if k > n {
		k = n
	}
	cv := ix.NewCoverage(rs)
	defer cv.Release()
	point := cancelcheck.New(ctx).Point(measureCheckEvery)
	var cancelErr error
	mean, std, err := stats.RepeatedKofN(rng, rounds, k, n, func(sample []int) float64 {
		if cancelErr != nil {
			return 0 // already canceled: drain remaining rounds without scoring
		}
		var e ErrorCounts
		for _, i := range sample {
			if cerr := point.Check(); cerr != nil {
				cancelErr = cerr
				return 0
			}
			e.addIndexed(cv, i, segCode)
		}
		return float64(e.Errors())
	})
	if cancelErr != nil {
		return 0, 0, cancelErr
	}
	return mean, std, err
}
