package verify

import (
	"fmt"

	"arcs/internal/dataset"
	"arcs/internal/rules"
)

// RuleStats holds one clustered rule's measures re-verified against a
// table. The mining-time support and confidence come from the BinArray
// over the training stream; verifying against a fresh sample quantifies
// how well they generalize.
type RuleStats struct {
	Rule       rules.ClusteredRule
	Covered    int     // tuples the rule's LHS covers
	Matching   int     // covered tuples carrying the criterion value
	Support    float64 // Matching / table size
	Confidence float64 // Matching / Covered
	// UniqueCovered counts covered tuples no earlier rule in the
	// segmentation covers — the rule's marginal contribution.
	UniqueCovered int
}

// SegmentStats verifies every rule of a segmentation against a table,
// in order. xIdx, yIdx and critIdx are schema positions; segCode is the
// criterion value's category code.
func SegmentStats(rs []rules.ClusteredRule, tb *dataset.Table, xIdx, yIdx, critIdx, segCode int) ([]RuleStats, error) {
	if tb.Len() == 0 {
		return nil, fmt.Errorf("verify: empty table")
	}
	out := make([]RuleStats, len(rs))
	for i, r := range rs {
		out[i].Rule = r
	}
	for row := 0; row < tb.Len(); row++ {
		t := tb.Row(row)
		x, y := t[xIdx], t[yIdx]
		isSeg := int(t[critIdx]) == segCode
		first := true
		for i, r := range rs {
			if !r.Covers(x, y) {
				continue
			}
			out[i].Covered++
			if isSeg {
				out[i].Matching++
			}
			if first {
				out[i].UniqueCovered++
				first = false
			}
		}
	}
	n := float64(tb.Len())
	for i := range out {
		out[i].Support = float64(out[i].Matching) / n
		if out[i].Covered > 0 {
			out[i].Confidence = float64(out[i].Matching) / float64(out[i].Covered)
		}
	}
	return out, nil
}
