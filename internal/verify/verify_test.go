package verify

import (
	"math/rand"
	"strings"
	"testing"

	"arcs/internal/dataset"
	"arcs/internal/rules"
)

// seg is a single rule covering x in [0,10), y in [0,10).
var seg = []rules.ClusteredRule{{XLo: 0, XHi: 10, YLo: 0, YHi: 10}}

func mkTable(t *testing.T, rows [][3]float64) *dataset.Table {
	t.Helper()
	s := dataset.NewSchema(
		dataset.Attribute{Name: "x", Kind: dataset.Quantitative},
		dataset.Attribute{Name: "y", Kind: dataset.Quantitative},
		dataset.Attribute{Name: "g", Kind: dataset.Categorical},
	)
	g := s.Attr("g")
	g.CategoryCode("A")     // code 0
	g.CategoryCode("other") // code 1
	tb := dataset.NewTable(s)
	for _, r := range rows {
		tb.MustAppend(dataset.Tuple{r[0], r[1], r[2]})
	}
	return tb
}

func TestMeasureCounts(t *testing.T) {
	tb := mkTable(t, [][3]float64{
		{5, 5, 0},   // covered, label A: correct
		{5, 5, 1},   // covered, label other: false positive
		{50, 50, 0}, // not covered, label A: false negative
		{50, 50, 1}, // not covered, label other: correct
	})
	e := Measure(seg, tb, 0, 1, 2, 0)
	if e.FalsePositives != 1 || e.FalseNegatives != 1 || e.Total != 4 {
		t.Errorf("counts = %+v", e)
	}
	if e.Errors() != 2 {
		t.Errorf("Errors = %d", e.Errors())
	}
	if e.Rate() != 0.5 {
		t.Errorf("Rate = %v", e.Rate())
	}
	if s := e.String(); !strings.Contains(s, "1 FP") || !strings.Contains(s, "1 FN") {
		t.Errorf("String = %q", s)
	}
}

func TestRateEmptySafe(t *testing.T) {
	var e ErrorCounts
	if e.Rate() != 0 {
		t.Error("empty rate should be 0")
	}
}

func TestCovered(t *testing.T) {
	if !Covered(seg, 0, 0) || Covered(seg, 10, 5) || Covered(nil, 1, 1) {
		t.Error("Covered boundary semantics wrong")
	}
}

func TestMeasureIndices(t *testing.T) {
	tb := mkTable(t, [][3]float64{
		{5, 5, 1},   // FP
		{5, 5, 0},   // ok
		{50, 50, 0}, // FN
	})
	e := MeasureIndices(seg, tb, []int{0, 2}, 0, 1, 2, 0)
	if e.Total != 2 || e.Errors() != 2 {
		t.Errorf("counts = %+v", e)
	}
}

func TestMeasureRepeated(t *testing.T) {
	// Homogeneous errors: every tuple is a false positive, so a k-draw
	// always measures exactly k errors and std = 0.
	rowsData := make([][3]float64, 50)
	for i := range rowsData {
		rowsData[i] = [3]float64{5, 5, 1}
	}
	tb := mkTable(t, rowsData)
	rng := rand.New(rand.NewSource(1))
	mean, std, err := MeasureRepeated(seg, tb, rng, 6, 10, 0, 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mean != 10 || std != 0 {
		t.Errorf("mean=%v std=%v, want 10, 0", mean, std)
	}
}

func TestMeasureRepeatedClampsK(t *testing.T) {
	tb := mkTable(t, [][3]float64{{5, 5, 1}, {5, 5, 1}})
	rng := rand.New(rand.NewSource(2))
	mean, _, err := MeasureRepeated(seg, tb, rng, 3, 100, 0, 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mean != 2 {
		t.Errorf("mean = %v, want 2 (k clamped to table size)", mean)
	}
}

func TestSampleSource(t *testing.T) {
	rowsData := make([][3]float64, 200)
	for i := range rowsData {
		rowsData[i] = [3]float64{float64(i), float64(i), 0}
	}
	tb := mkTable(t, rowsData)
	rng := rand.New(rand.NewSource(3))
	sample, err := SampleSource(tb, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if sample.Len() != 20 {
		t.Fatalf("sample size = %d", sample.Len())
	}
	// Sampled tuples must be actual rows.
	for i := 0; i < sample.Len(); i++ {
		v := sample.Row(i)[0]
		if v < 0 || v >= 200 || v != sample.Row(i)[1] {
			t.Errorf("sample row %d = %v not from source", i, sample.Row(i))
		}
	}
	// Small source: sample everything.
	small := mkTable(t, [][3]float64{{1, 1, 0}, {2, 2, 0}})
	sample, err = SampleSource(small, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if sample.Len() != 2 {
		t.Errorf("small sample size = %d", sample.Len())
	}
	if _, err := SampleSource(small, 0, rng); err == nil {
		t.Error("k=0 should error")
	}
}

func TestRegionErrorsExact(t *testing.T) {
	// Truth: [0,10)x[0,10) in a 20x20 domain. Cluster matches exactly:
	// zero error.
	truth := func(x, y float64) bool { return x < 10 && y < 10 }
	fp, fn, err := RegionErrors(seg, truth, 0, 20, 0, 20, 100)
	if err != nil {
		t.Fatal(err)
	}
	if fp != 0 || fn != 0 {
		t.Errorf("exact overlap: fp=%v fn=%v", fp, fn)
	}
}

func TestRegionErrorsOffset(t *testing.T) {
	// Cluster covers the left half of the truth region plus an equal
	// area outside: fp ≈ fn ≈ 1/8 of the 20x20 domain... use simple
	// numbers: truth = x<10, cluster = x in [5,15), both full height.
	clusterRules := []rules.ClusteredRule{{XLo: 5, XHi: 15, YLo: 0, YHi: 20}}
	truth := func(x, y float64) bool { return x < 10 }
	fp, fn, err := RegionErrors(clusterRules, truth, 0, 20, 0, 20, 200)
	if err != nil {
		t.Fatal(err)
	}
	// FP: x in [10,15) = 1/4 of domain; FN: x in [0,5) = 1/4.
	if fp < 0.22 || fp > 0.28 || fn < 0.22 || fn > 0.28 {
		t.Errorf("fp=%v fn=%v, want ~0.25 each", fp, fn)
	}
}

func TestRegionErrorsValidation(t *testing.T) {
	truth := func(x, y float64) bool { return true }
	if _, _, err := RegionErrors(nil, truth, 0, 1, 0, 1, 1); err == nil {
		t.Error("steps<2 should error")
	}
	if _, _, err := RegionErrors(nil, truth, 1, 0, 0, 1, 10); err == nil {
		t.Error("inverted domain should error")
	}
}
