package verify

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

func TestMeasureRepeatedContextMatchesBackground(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tb, xB, yB := indexFixture(t, rng, 500)
	ix, err := NewIndex(tb, 0, 1, 2, xB, yB)
	if err != nil {
		t.Fatal(err)
	}
	rs := randomRules(rng, xB, yB, 6, false)
	m1, s1, err := ix.MeasureRepeated(rs, rand.New(rand.NewSource(9)), 10, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	m2, s2, err := ix.MeasureRepeatedContext(context.Background(), rs, rand.New(rand.NewSource(9)), 10, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 || s1 != s2 {
		t.Errorf("context variant diverged: (%g, %g) vs (%g, %g)", m1, s1, m2, s2)
	}
}

func TestMeasureRepeatedContextCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	// Enough tuples per round to guarantee at least one checkpoint fires
	// (stride is measureCheckEvery tuples).
	tb, xB, yB := indexFixture(t, rng, 3*measureCheckEvery)
	ix, err := NewIndex(tb, 0, 1, 2, xB, yB)
	if err != nil {
		t.Fatal(err)
	}
	rs := randomRules(rng, xB, yB, 4, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mean, std, err := ix.MeasureRepeatedContext(ctx, rs, rand.New(rand.NewSource(9)), 5, tb.Len(), 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if mean != 0 || std != 0 {
		t.Errorf("canceled measurement leaked partial statistics: %g, %g", mean, std)
	}
}
