package verify

import (
	"math/rand"
	"strings"
	"testing"

	"arcs/internal/obs"
	"arcs/internal/rules"
)

// TestObsIndexFallbackCountersAndReasons: the slot-grid fast path and
// the rect-scan fallback are both counted, and every fallback rule is
// reported with the edges that disqualified it — the degradation is
// never silent.
func TestObsIndexFallbackCountersAndReasons(t *testing.T) {
	tb, xB, yB := indexFixture(t, rand.New(rand.NewSource(11)), 100)
	ix, err := NewIndex(tb, 0, 1, 2, xB, yB)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	fast := reg.Counter("verify_fastpath_rules_total")
	fall := reg.Counter("verify_fallback_rules_total")
	var reported []Fallback
	ix.Observe(fast, fall, func(fb Fallback) { reported = append(reported, fb) })

	aligned := rules.ClusteredRule{XLo: xB[0], XHi: xB[2], YLo: yB[1], YHi: yB[3]}
	offX := rules.ClusteredRule{XLo: 3.7, XHi: xB[2], YLo: yB[1], YHi: yB[3]}
	offBoth := rules.ClusteredRule{XLo: xB[0], XHi: 47.1, YLo: 0.5, YHi: yB[3]}
	cv := ix.NewCoverage([]rules.ClusteredRule{aligned, offX, aligned, offBoth})
	defer cv.Release()

	if got := fast.Value(); got != 2 {
		t.Errorf("fast-path counter = %d, want 2", got)
	}
	if got := fall.Value(); got != 2 {
		t.Errorf("fallback counter = %d, want 2", got)
	}
	fbs := cv.Fallbacks()
	if len(fbs) != 2 || len(reported) != 2 {
		t.Fatalf("Fallbacks() = %d, callback saw %d, want 2 and 2", len(fbs), len(reported))
	}
	for i := range fbs {
		if fbs[i].Rule != reported[i].Rule || fbs[i].Reason != reported[i].Reason {
			t.Errorf("Fallbacks()[%d] = %+v, callback saw %+v", i, fbs[i], reported[i])
		}
	}
	if r := fbs[0].Reason; !strings.Contains(r, "x_lo=3.7") {
		t.Errorf("offX reason %q does not name the misaligned edge x_lo=3.7", r)
	}
	if r := fbs[1].Reason; !strings.Contains(r, "x_hi=47.1") || !strings.Contains(r, "y_lo=0.5") {
		t.Errorf("offBoth reason %q does not name both misaligned edges", r)
	}

	// Coverage semantics are unchanged by the hooks: fallback rules are
	// still consulted, so a tuple inside offBoth's rectangle is covered.
	if got, want := ix.Measure([]rules.ClusteredRule{offBoth}, 1),
		Measure([]rules.ClusteredRule{offBoth}, tb, 0, 1, 2, 1); got != want {
		t.Errorf("indexed measure with fallback rule = %+v, scan measure = %+v", got, want)
	}
}

// TestObsIndexNilHooksAreSafe: an Index with no Observe call (the
// default) takes the same paths with nil-safe counters.
func TestObsIndexNilHooksAreSafe(t *testing.T) {
	tb, xB, yB := indexFixture(t, rand.New(rand.NewSource(13)), 50)
	ix, err := NewIndex(tb, 0, 1, 2, xB, yB)
	if err != nil {
		t.Fatal(err)
	}
	cv := ix.NewCoverage([]rules.ClusteredRule{
		{XLo: xB[0], XHi: xB[1], YLo: yB[0], YHi: yB[1]},
		{XLo: 1.23, XHi: xB[1], YLo: yB[0], YHi: yB[1]},
	})
	defer cv.Release()
	if got := len(cv.Fallbacks()); got != 1 {
		t.Errorf("Fallbacks() = %d, want 1", got)
	}
}
