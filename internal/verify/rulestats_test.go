package verify

import (
	"testing"

	"arcs/internal/rules"
)

func TestSegmentStats(t *testing.T) {
	// Two overlapping rules; 6 tuples.
	rs := []rules.ClusteredRule{
		{XLo: 0, XHi: 10, YLo: 0, YHi: 10}, // covers x,y < 10
		{XLo: 5, XHi: 15, YLo: 0, YHi: 10}, // covers 5 <= x < 15
	}
	tb := mkTable(t, [][3]float64{
		{2, 2, 0},   // rule 1 only, label A
		{7, 3, 0},   // both rules, label A
		{12, 3, 1},  // rule 2 only, label other
		{12, 4, 0},  // rule 2 only, label A
		{20, 20, 0}, // neither
		{3, 3, 1},   // rule 1 only, label other
	})
	stats, err := SegmentStats(rs, tb, 0, 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("stats = %d", len(stats))
	}
	r1 := stats[0]
	if r1.Covered != 3 || r1.Matching != 2 {
		t.Errorf("rule1: %+v", r1)
	}
	if r1.UniqueCovered != 3 {
		t.Errorf("rule1 unique = %d (first rule owns every cell it covers)", r1.UniqueCovered)
	}
	r2 := stats[1]
	if r2.Covered != 3 || r2.Matching != 2 {
		t.Errorf("rule2: %+v", r2)
	}
	// Tuple (7,3) was claimed by rule 1 first.
	if r2.UniqueCovered != 2 {
		t.Errorf("rule2 unique = %d, want 2", r2.UniqueCovered)
	}
	if r1.Support != 2.0/6 {
		t.Errorf("rule1 support = %v", r1.Support)
	}
	if r2.Confidence != 2.0/3 {
		t.Errorf("rule2 confidence = %v", r2.Confidence)
	}
}

func TestSegmentStatsEmptyTable(t *testing.T) {
	tb := mkTable(t, nil)
	if _, err := SegmentStats(nil, tb, 0, 1, 2, 0); err == nil {
		t.Error("empty table should error")
	}
}

func TestSegmentStatsRuleCoveringNothing(t *testing.T) {
	rs := []rules.ClusteredRule{{XLo: 100, XHi: 200, YLo: 100, YHi: 200}}
	tb := mkTable(t, [][3]float64{{1, 1, 0}})
	stats, err := SegmentStats(rs, tb, 0, 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Covered != 0 || stats[0].Confidence != 0 {
		t.Errorf("stats = %+v", stats[0])
	}
}
