// Package verify implements the verifier of paper §3.6 and Figure 2: it
// measures the accuracy of a candidate segmentation — a set of clustered
// association rules for one criterion value — against samples of the
// source data.
//
// A tuple is a false positive when some cluster covers it but its
// criterion value differs, and a false negative when it carries the
// criterion value but no cluster covers it. The total error is their sum.
// Because the optimal clustering of real data is unknown, the error is
// approximated on random samples; "repeated k out of n" sampling averages
// the measurement over several independent draws for a tighter estimate.
package verify

import (
	"fmt"
	"math/rand"

	"arcs/internal/dataset"
	"arcs/internal/rules"
	"arcs/internal/stats"
)

// ErrorCounts aggregates a verification pass.
type ErrorCounts struct {
	FalsePositives int // covered by a cluster, label differs
	FalseNegatives int // labeled with the criterion value, not covered
	Total          int // tuples examined
}

// Errors returns the summed error (FP + FN), the quantity MDL encodes.
func (e ErrorCounts) Errors() int { return e.FalsePositives + e.FalseNegatives }

// Rate returns the error fraction over the examined tuples, or 0 when no
// tuples were examined.
func (e ErrorCounts) Rate() float64 {
	if e.Total == 0 {
		return 0
	}
	return float64(e.Errors()) / float64(e.Total)
}

// String renders the counts for reports.
func (e ErrorCounts) String() string {
	return fmt.Sprintf("%d FP + %d FN of %d (%.2f%%)",
		e.FalsePositives, e.FalseNegatives, e.Total, 100*e.Rate())
}

// Covered reports whether any rule's LHS covers the (x, y) point.
func Covered(rs []rules.ClusteredRule, x, y float64) bool {
	for _, r := range rs {
		if r.Covers(x, y) {
			return true
		}
	}
	return false
}

// Measure counts errors of the segmentation over every row of tb.
// xIdx/yIdx/critIdx are schema positions of the LHS and criterion
// attributes; segCode is the category code of the criterion value.
func Measure(rs []rules.ClusteredRule, tb *dataset.Table, xIdx, yIdx, critIdx, segCode int) ErrorCounts {
	var e ErrorCounts
	for i := 0; i < tb.Len(); i++ {
		row := tb.Row(i)
		e.addTuple(rs, row, xIdx, yIdx, critIdx, segCode)
	}
	return e
}

// MeasureIndices counts errors over the rows of tb selected by idx —
// one k-of-n draw.
func MeasureIndices(rs []rules.ClusteredRule, tb *dataset.Table, idx []int, xIdx, yIdx, critIdx, segCode int) ErrorCounts {
	var e ErrorCounts
	for _, i := range idx {
		e.addTuple(rs, tb.Row(i), xIdx, yIdx, critIdx, segCode)
	}
	return e
}

func (e *ErrorCounts) addTuple(rs []rules.ClusteredRule, row dataset.Tuple, xIdx, yIdx, critIdx, segCode int) {
	e.Total++
	isSeg := int(row[critIdx]) == segCode
	covered := Covered(rs, row[xIdx], row[yIdx])
	switch {
	case covered && !isSeg:
		e.FalsePositives++
	case !covered && isSeg:
		e.FalseNegatives++
	}
}

// MeasureRepeated performs the repeated k-out-of-n sampling of §3.6:
// rounds independent k-of-n draws from tb, returning the mean and
// standard deviation of the summed error count across draws.
func MeasureRepeated(rs []rules.ClusteredRule, tb *dataset.Table, rng *rand.Rand,
	rounds, k int, xIdx, yIdx, critIdx, segCode int) (meanErrors, stdErrors float64, err error) {
	if k > tb.Len() {
		k = tb.Len()
	}
	return stats.RepeatedKofN(rng, rounds, k, tb.Len(), func(sample []int) float64 {
		return float64(MeasureIndices(rs, tb, sample, xIdx, yIdx, critIdx, segCode).Errors())
	})
}

// SampleSource reservoir-samples up to k tuples from a streaming source
// into an in-memory table, giving the verifier a uniform sample without
// materializing the data. The source is consumed from the beginning
// (Reset first).
func SampleSource(src dataset.Source, k int, rng *rand.Rand) (*dataset.Table, error) {
	if k <= 0 {
		return nil, fmt.Errorf("verify: sample size must be positive, got %d", k)
	}
	res := stats.NewReservoir(rng, k)
	buf := make([]dataset.Tuple, 0, k)
	err := dataset.ForEach(src, func(t dataset.Tuple) error {
		slot, keep := res.Offer()
		if !keep {
			return nil
		}
		if slot == len(buf) {
			buf = append(buf, t.Clone())
		} else {
			buf[slot] = t.Clone()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	tb := dataset.NewTable(src.Schema())
	for _, t := range buf {
		if err := tb.Append(t); err != nil {
			return nil, err
		}
	}
	return tb, nil
}

// RegionErrors computes the exact geometric error of a segmentation
// against known ground-truth rectangles (available only for synthetic
// data, Figure 9): it samples a uniform lattice of (x, y) points over the
// given domain and counts points where cluster coverage disagrees with
// ground-truth coverage. The result approximates the area of the
// false-positive and false-negative regions.
func RegionErrors(rs []rules.ClusteredRule, truth func(x, y float64) bool,
	xLo, xHi, yLo, yHi float64, steps int) (falsePosFrac, falseNegFrac float64, err error) {
	if steps < 2 {
		return 0, 0, fmt.Errorf("verify: need at least 2 lattice steps, got %d", steps)
	}
	if !(xLo < xHi) || !(yLo < yHi) {
		return 0, 0, fmt.Errorf("verify: invalid domain [%g,%g]×[%g,%g]", xLo, xHi, yLo, yHi)
	}
	var fp, fn, total int
	for i := 0; i < steps; i++ {
		x := xLo + (xHi-xLo)*(float64(i)+0.5)/float64(steps)
		for j := 0; j < steps; j++ {
			y := yLo + (yHi-yLo)*(float64(j)+0.5)/float64(steps)
			total++
			covered := Covered(rs, x, y)
			actual := truth(x, y)
			if covered && !actual {
				fp++
			} else if !covered && actual {
				fn++
			}
		}
	}
	return float64(fp) / float64(total), float64(fn) / float64(total), nil
}
