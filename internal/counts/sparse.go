package counts

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"arcs/internal/binarray"
)

// SparseArray is the hash-indexed count backend for high-resolution
// mostly-empty grids: memory scales with occupied cells, not grid
// cells. Each occupied cell owns a (nseg+1)-wide slice of one shared
// slab — per-segment counts first, cell total last, exactly the dense
// layout — and a map from row-major cell index to slab offset finds it.
// A lazily built sorted key cache makes Occupied/Cells iteration
// row-major deterministic, so snapshots are byte-identical to the dense
// reference.
type SparseArray struct {
	nx, ny, nseg int
	cells        map[int64]int // row-major cell index → slab offset
	slab         []uint32
	n            uint64

	// keyMu guards the sorted-key cache: concurrent readers may race to
	// build it after a mutation invalidated it. The cache holds every
	// occupied cell index in ascending (= row-major) order.
	keyMu sync.Mutex
	keys  []int64
}

// NewSparse returns an empty sparse backend for an nx × ny grid with an
// RHS attribute of cardinality nseg.
func NewSparse(nx, ny, nseg int) (*SparseArray, error) {
	if nx <= 0 || ny <= 0 || nseg <= 0 {
		return nil, fmt.Errorf("counts: invalid sparse dimensions %d×%d×%d", nx, ny, nseg)
	}
	// The cell index must fit int64 even when nx*ny overflows int.
	if uint64(nx) > math.MaxInt64/uint64(ny) {
		return nil, fmt.Errorf("counts: %d×%d cell index overflows", nx, ny)
	}
	return &SparseArray{nx: nx, ny: ny, nseg: nseg, cells: make(map[int64]int)}, nil
}

func (s *SparseArray) cellIdx(x, y int) int64 { return int64(x)*int64(s.ny) + int64(y) }

// slot returns the slab offset of cell (x, y), creating it zeroed when
// absent.
func (s *SparseArray) slot(x, y int) int {
	idx := s.cellIdx(x, y)
	off, ok := s.cells[idx]
	if !ok {
		off = len(s.slab)
		s.slab = append(s.slab, make([]uint32, s.nseg+1)...)
		s.cells[idx] = off
		s.keyMu.Lock()
		s.keys = nil // new cell invalidates the sorted iteration cache
		s.keyMu.Unlock()
	}
	return off
}

// Add records one tuple in cell (x, y) with RHS value seg, saturating
// at MaxUint32 like the dense array. Out-of-range indices panic — they
// always indicate a binner bug.
func (s *SparseArray) Add(x, y, seg int) { s.AddN(x, y, seg, 1) }

// AddN is the bulk form of Add: per-cell counters saturate, the 64-bit
// total always advances by n.
func (s *SparseArray) AddN(x, y, seg int, n uint32) {
	if x < 0 || x >= s.nx || y < 0 || y >= s.ny || seg < 0 || seg >= s.nseg {
		panic(fmt.Sprintf("counts: sparse AddN(%d, %d, %d) out of range %d×%d×%d", x, y, seg, s.nx, s.ny, s.nseg))
	}
	off := s.slot(x, y)
	s.slab[off+seg] = satAdd(s.slab[off+seg], n)
	s.slab[off+s.nseg] = satAdd(s.slab[off+s.nseg], n)
	s.n += uint64(n)
}

// addCell accumulates a full count slab (per-segment counts and the
// stored total) into cell (x, y) element-wise — the merge and permute
// primitive. Copying the stored total instead of re-deriving it keeps
// saturated cells byte-identical across rebuilds. n is not advanced.
func (s *SparseArray) addCell(x, y int, cell []uint32) {
	off := s.slot(x, y)
	dst := s.slab[off : off+s.nseg+1]
	for i, v := range cell {
		if v != 0 {
			dst[i] = satAdd(dst[i], v)
		}
	}
}

// satAdd mirrors the dense array's saturating accumulation: counters
// pin at MaxUint32 rather than wrapping. Saturating addition of
// non-negative values stays associative and commutative, which is what
// keeps sharded merges byte-identical to a sequential pass.
func satAdd(c, n uint32) uint32 {
	if c > math.MaxUint32-n {
		return math.MaxUint32
	}
	return c + n
}

// sortedKeys returns every occupied cell index ascending, building the
// cache under the lock when a mutation invalidated it. Ascending cell
// index is exactly row-major (x outer, y inner) order.
func (s *SparseArray) sortedKeys() []int64 {
	s.keyMu.Lock()
	defer s.keyMu.Unlock()
	if s.keys == nil {
		keys := make([]int64, 0, len(s.cells))
		for idx := range s.cells {
			keys = append(keys, idx)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		s.keys = keys
	}
	return s.keys
}

// NX implements Backend.
func (s *SparseArray) NX() int { return s.nx }

// NY implements Backend.
func (s *SparseArray) NY() int { return s.ny }

// NSeg implements Backend.
func (s *SparseArray) NSeg() int { return s.nseg }

// N implements Backend.
func (s *SparseArray) N() uint64 { return s.n }

// Count implements Backend.
func (s *SparseArray) Count(x, y, seg int) uint32 {
	off, ok := s.cells[s.cellIdx(x, y)]
	if !ok {
		return 0
	}
	return s.slab[off+seg]
}

// CellTotal implements Backend.
func (s *SparseArray) CellTotal(x, y int) uint32 { return s.Count(x, y, s.nseg) }

// Support implements Backend.
func (s *SparseArray) Support(x, y, seg int) float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.Count(x, y, seg)) / float64(s.n)
}

// Confidence implements Backend.
func (s *SparseArray) Confidence(x, y, seg int) float64 {
	total := s.CellTotal(x, y)
	if total == 0 {
		return 0
	}
	return float64(s.Count(x, y, seg)) / float64(total)
}

// SegmentTotal implements Backend.
func (s *SparseArray) SegmentTotal(seg int) uint64 {
	var total uint64
	stride := s.nseg + 1
	for off := seg; off < len(s.slab); off += stride {
		total += uint64(s.slab[off])
	}
	return total
}

// Occupied implements Backend: row-major deterministic iteration over
// cells with tuples of RHS value seg.
func (s *SparseArray) Occupied(seg int, fn func(x, y int, segCount, cellTotal uint32)) {
	for _, idx := range s.sortedKeys() {
		off := s.cells[idx]
		if c := s.slab[off+seg]; c > 0 {
			fn(int(idx/int64(s.ny)), int(idx%int64(s.ny)), c, s.slab[off+s.nseg])
		}
	}
}

// Cells implements Backend: row-major deterministic iteration over
// occupied cells with their full count slab.
func (s *SparseArray) Cells(fn func(x, y int, cell []uint32)) {
	stride := s.nseg + 1
	for _, idx := range s.sortedKeys() {
		off := s.cells[idx]
		fn(int(idx/int64(s.ny)), int(idx%int64(s.ny)), s.slab[off:off+stride:off+stride])
	}
}

// Stats implements Sizer.
func (s *SparseArray) Stats() binarray.Stats {
	cells := s.nx * s.ny
	return binarray.Stats{
		Cells:         cells,
		OccupiedCells: len(s.cells),
		MemBytes:      len(s.slab)*4 + len(s.cells)*56 + len(s.sortedKeys())*8,
	}
}

// permute rebuilds the sparse array with cell coordinates remapped
// through pos (old bin → new bin) on the chosen axis, copying raw cell
// slabs so saturated counts survive byte-identically.
func (s *SparseArray) permute(pos []int, onX bool) (*SparseArray, error) {
	out, err := NewSparse(s.nx, s.ny, s.nseg)
	if err != nil {
		return nil, err
	}
	s.Cells(func(x, y int, cell []uint32) {
		if onX {
			x = pos[x]
		} else {
			y = pos[y]
		}
		out.addCell(x, y, cell)
	})
	out.n = s.n
	return out, nil
}

// PermuteX implements Permuter: order lists old x-bin indices in their
// new arrangement, exactly like binarray.PermuteX.
func (s *SparseArray) PermuteX(order []int) (Backend, error) {
	pos, err := permutePositions(order, s.nx, "x")
	if err != nil {
		return nil, err
	}
	return s.permute(pos, true)
}

// PermuteY implements Permuter for the y axis.
func (s *SparseArray) PermuteY(order []int) (Backend, error) {
	pos, err := permutePositions(order, s.ny, "y")
	if err != nil {
		return nil, err
	}
	return s.permute(pos, false)
}

var (
	_ Adder    = (*SparseArray)(nil)
	_ Sizer    = (*SparseArray)(nil)
	_ Permuter = (*SparseArray)(nil)
)
