package counts

import (
	"context"
	"testing"

	"arcs/internal/binning"
	"arcs/internal/dataset"
)

func zeroAllocSchema() *dataset.Schema {
	return dataset.NewSchema(
		dataset.Attribute{Name: "x", Kind: dataset.Quantitative},
		dataset.Attribute{Name: "y", Kind: dataset.Quantitative},
		dataset.Attribute{Name: "g", Kind: dataset.Categorical},
	)
}

func zeroAllocTable(n int) *dataset.Table {
	tb := dataset.NewTable(zeroAllocSchema())
	for i := 0; i < n; i++ {
		tb.MustAppend(dataset.Tuple{float64(i % 100), float64(i % 77), float64(i % 3)})
	}
	return tb
}

func zeroAllocFuncSource(n int) *dataset.FuncSource {
	return dataset.NewFuncSource(zeroAllocSchema(), n, func(i int, out dataset.Tuple) {
		out[0] = float64(i % 100)
		out[1] = float64(i % 77)
		out[2] = float64(i % 3)
	})
}

// TestIngestZeroAllocPerTuple guards the zero-allocation property of the
// ingest hot loop: a dense build allocates a constant number of objects
// (the count array and its wrapper, the streaming checkpoint) regardless
// of how many tuples flow through it. The guard measures whole builds at
// two sizes 16× apart — if any code path allocated per tuple, the large
// build's count would exceed the small one's by thousands.
func TestIngestZeroAllocPerTuple(t *testing.T) {
	xb, err := binning.NewEquiWidth(0, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	yb, err := binning.NewEquiWidth(0, 77, 50)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{XIdx: 0, YIdx: 1, CritIdx: 2, XBinner: xb, YBinner: yb, NSeg: 3}
	ctx := context.Background()

	sources := []struct {
		name       string
		small, big dataset.Source
	}{
		{"table", zeroAllocTable(1_000), zeroAllocTable(16_000)},
		{"funcsource", zeroAllocFuncSource(1_000), zeroAllocFuncSource(16_000)},
	}
	for _, src := range sources {
		build := func(s dataset.Source) func() {
			return func() {
				if _, err := Build(ctx, s, spec, Options{Workers: 1}); err != nil {
					t.Fatal(err)
				}
			}
		}
		smallAllocs := testing.AllocsPerRun(20, build(src.small))
		bigAllocs := testing.AllocsPerRun(20, build(src.big))
		if bigAllocs > smallAllocs {
			t.Errorf("%s: build over 16k tuples allocates %.1f objects vs %.1f over 1k — ingest is allocating per tuple",
				src.name, bigAllocs, smallAllocs)
		}
		t.Logf("%s: constant allocations per build: %.1f", src.name, bigAllocs)
	}
}

// TestFusedZeroAllocPerTuple is the same guard for the fused
// ingest+count single pass.
func TestFusedZeroAllocPerTuple(t *testing.T) {
	xb, err := binning.NewEquiWidth(0, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	yb, err := binning.NewEquiWidth(0, 77, 50)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{XIdx: 0, YIdx: 1, CritIdx: 2, XBinner: xb, YBinner: yb, NSeg: 3}
	ctx := context.Background()
	small, big := zeroAllocFuncSource(1_000), zeroAllocFuncSource(16_000)
	build := func(s dataset.Source) func() {
		return func() {
			if _, err := BuildFused(ctx, s, spec, nil, Options{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	smallAllocs := testing.AllocsPerRun(20, build(small))
	bigAllocs := testing.AllocsPerRun(20, build(big))
	if bigAllocs > smallAllocs {
		t.Errorf("fused build over 16k tuples allocates %.1f objects vs %.1f over 1k — allocating per tuple",
			bigAllocs, smallAllocs)
	}
}
