package counts

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"syscall"
	"testing"

	"arcs/internal/faultinject"
	"arcs/internal/vfs"
)

// The spill chaos suite drives the spill backend through scripted
// filesystem faults and asserts its crash contract: any fault during
// the build fails cleanly with an error and no leftover files, and a
// read fault after the build panics rather than serving a zero count
// as data. The small test table produces one run file, so the fault
// schedule addresses exact protocol steps: write #1 / sync #1 are the
// run flush, write #2 / sync #2 the final segment, read #1 the merge
// cursor, read #2 the first post-build positioned read.

// chaosBuild runs a pinned spill build through a fault schedule.
func chaosBuild(t *testing.T, sch faultinject.FSSchedule) (Backend, string, error) {
	t.Helper()
	dir := t.TempDir()
	b, err := Build(context.Background(), testTable(t, 2_000), testSpec(t),
		Options{Kind: Spill, SpillDir: dir, FS: faultinject.WrapFS(vfs.OSFS{}, sch), MemBudget: -1})
	return b, dir, err
}

// assertCleanFailure checks the build surfaced an error wrapping want,
// returned no backend, and removed every spill file it created.
func assertCleanFailure(t *testing.T, b Backend, dir string, err, want error) {
	t.Helper()
	if err == nil {
		closeBackend(b)
		t.Fatal("build succeeded through the injected fault")
	}
	if want != nil && !errors.Is(err, want) {
		t.Errorf("build error = %v, want %v in the chain", err, want)
	}
	if b != nil {
		t.Errorf("backend %T returned alongside error", b)
	}
	entries, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	for _, e := range entries {
		t.Errorf("failed build left %s behind in the spill dir", e.Name())
	}
}

func TestSpillChaosRunWriteENOSPC(t *testing.T) {
	b, dir, err := chaosBuild(t, faultinject.FSSchedule{FailWriteAt: 1})
	assertCleanFailure(t, b, dir, err, syscall.ENOSPC)
}

func TestSpillChaosSegmentTornWrite(t *testing.T) {
	b, dir, err := chaosBuild(t, faultinject.FSSchedule{TornWriteAt: 2})
	assertCleanFailure(t, b, dir, err, syscall.ENOSPC)
}

func TestSpillChaosRunFsyncFault(t *testing.T) {
	b, dir, err := chaosBuild(t, faultinject.FSSchedule{FailSyncAt: 1})
	assertCleanFailure(t, b, dir, err, syscall.EIO)
}

func TestSpillChaosSegmentFsyncFault(t *testing.T) {
	b, dir, err := chaosBuild(t, faultinject.FSSchedule{FailSyncAt: 2})
	assertCleanFailure(t, b, dir, err, syscall.EIO)
}

func TestSpillChaosMergeReadFault(t *testing.T) {
	b, dir, err := chaosBuild(t, faultinject.FSSchedule{FailReadAt: 1})
	assertCleanFailure(t, b, dir, err, syscall.EIO)
}

// TestSpillChaosMergeShortRead injects the hardest corruption: the
// merge cursor's read silently returns half the requested bytes with
// no error. Record-count validation must turn that into a hard build
// error, never into missing counts.
func TestSpillChaosMergeShortRead(t *testing.T) {
	b, dir, err := chaosBuild(t, faultinject.FSSchedule{ShortReadAt: 1})
	assertCleanFailure(t, b, dir, err, nil)
	if !strings.Contains(err.Error(), "truncated") {
		t.Errorf("short merge read surfaced as %q, want a truncation error", err)
	}
}

// TestSpillChaosPostBuildReadPanics schedules the read fault one step
// past the merge: the build succeeds, then the first probe read hits
// EIO. The backend must panic — the engine's per-probe panic isolation
// contains it — instead of serving a zero count for an occupied cell.
func TestSpillChaosPostBuildReadPanics(t *testing.T) {
	b, _, err := chaosBuild(t, faultinject.FSSchedule{FailReadAt: 2})
	if err != nil {
		t.Fatalf("build failed before the scheduled post-build fault: %v", err)
	}
	defer closeBackend(b)
	sa, ok := b.(*SpillArray)
	if !ok {
		t.Fatalf("backend is %T, want *SpillArray", b)
	}
	if len(sa.idx) == 0 {
		t.Fatal("spill backend has no occupied cells")
	}
	// find consults only the in-RAM index, so this picks an occupied
	// cell without spending the scheduled read.
	x, y := int(sa.idx[0]/int64(sa.ny)), int(sa.idx[0]%int64(sa.ny))
	panicked := func() (msg string) {
		defer func() {
			if r := recover(); r != nil {
				msg = fmt.Sprint(r)
			}
		}()
		_ = sa.CellTotal(x, y)
		return ""
	}()
	if panicked == "" {
		t.Fatal("post-build read fault served a count instead of panicking")
	}
	if !strings.Contains(panicked, "refusing to serve corrupt counts") {
		t.Errorf("panic message %q lacks the corrupt-counts marker", panicked)
	}
}
