package counts

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"arcs/internal/binarray"
	"arcs/internal/binning"
	"arcs/internal/dataset"
)

// testSchema is (x quantitative, y quantitative, g categorical).
func testSchema(t *testing.T) *dataset.Schema {
	t.Helper()
	schema := dataset.NewSchema(
		dataset.Attribute{Name: "x", Kind: dataset.Quantitative},
		dataset.Attribute{Name: "y", Kind: dataset.Quantitative},
		dataset.Attribute{Name: "g", Kind: dataset.Categorical},
	)
	for _, label := range []string{"a", "b", "c"} {
		if _, err := schema.At(2).CategoryCode(label); err != nil {
			t.Fatal(err)
		}
	}
	return schema
}

// testTable builds n rows of deterministic pseudo-random data over
// testSchema using a small LCG, so shard tests exercise uneven counts.
func testTable(t *testing.T, n int) *dataset.Table {
	t.Helper()
	tab := dataset.NewTable(testSchema(t))
	state := uint64(1)
	next := func(mod int) float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64((state >> 33) % uint64(mod))
	}
	for i := 0; i < n; i++ {
		tab.MustAppend(dataset.Tuple{next(100), next(100), next(3)})
	}
	return tab
}

func testSpec(t *testing.T) Spec {
	t.Helper()
	xb, err := binning.NewEquiWidth(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	yb, err := binning.NewEquiWidth(0, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{XIdx: 0, YIdx: 1, CritIdx: 2, XBinner: xb, YBinner: yb, NSeg: 3}
}

// baBytes snapshots a dense array through its serialization, the
// strictest equality the package offers.
func baBytes(t *testing.T, ba *binarray.BinArray) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ba.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func denseOf(t *testing.T, b Backend) *binarray.BinArray {
	t.Helper()
	switch v := b.(type) {
	case *binarray.BinArray:
		return v
	case *Sharded:
		return denseOf(t, v.Inner())
	default:
		t.Fatalf("backend %T has no dense form", b)
		return nil
	}
}

// TestShardedMatchesDenseByteIdentical is the core equivalence claim:
// any worker count produces the same bytes as the sequential build.
func TestShardedMatchesDenseByteIdentical(t *testing.T) {
	tab := testTable(t, 10_007) // prime, so shards are uneven
	spec := testSpec(t)
	ref, err := Build(context.Background(), tab, spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := baBytes(t, denseOf(t, ref))
	for _, workers := range []int{1, 2, 3, 4, 8} {
		sh, err := BuildSharded(context.Background(), tab, spec, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := baBytes(t, denseOf(t, sh)); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: sharded build differs from sequential build", workers)
		}
		if sh.Workers() != workers {
			t.Errorf("workers=%d: Workers() = %d", workers, sh.Workers())
		}
		var sum uint64
		for _, n := range sh.ShardTuples() {
			sum += n
		}
		if sum != sh.N() {
			t.Errorf("workers=%d: shard tuples sum to %d, N() = %d", workers, sum, sh.N())
		}
	}
}

// TestShardedClampsWorkersToRows: more workers than rows degrades to one
// worker per row, never an empty panic or a lost tuple.
func TestShardedClampsWorkersToRows(t *testing.T) {
	tab := testTable(t, 3)
	spec := testSpec(t)
	sh, err := BuildSharded(context.Background(), tab, spec, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Workers() != 3 {
		t.Errorf("Workers() = %d, want clamped to 3 rows", sh.Workers())
	}
	if sh.N() != 3 {
		t.Errorf("N() = %d, want 3", sh.N())
	}
	ref, err := Build(context.Background(), tab, spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(baBytes(t, denseOf(t, sh)), baBytes(t, denseOf(t, ref))) {
		t.Error("clamped sharded build differs from sequential build")
	}
}

// TestBuildFallsBackToDense: workers > 1 over a source that cannot shard
// (a stream wrapper) silently builds the dense array instead.
func TestBuildFallsBackToDense(t *testing.T) {
	tab := testTable(t, 100)
	stream := dataset.Limit(tab, 100) // limitSource implements no Shard
	b, err := Build(context.Background(), stream, testSpec(t), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.(*binarray.BinArray); !ok {
		t.Errorf("non-shardable source built a %T, want the dense fallback", b)
	}
	if b.N() != 100 {
		t.Errorf("N() = %d, want 100", b.N())
	}
}

// TestBuildShardedUsesShards: a shardable source with workers > 1 gets
// the sharded backend through the Build front door.
func TestBuildShardedUsesShards(t *testing.T) {
	b, err := Build(context.Background(), testTable(t, 100), testSpec(t), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sh, ok := b.(*Sharded)
	if !ok {
		t.Fatalf("shardable source built a %T, want *Sharded", b)
	}
	if sh.Workers() != 4 {
		t.Errorf("Workers() = %d, want 4", sh.Workers())
	}
}

// TestBuildFusedMatchesTwoPass: the fused pass produces byte-identical
// counts and observes every tuple in stream order.
func TestBuildFusedMatchesTwoPass(t *testing.T) {
	tab := testTable(t, 1_000)
	spec := testSpec(t)
	ref, err := Build(context.Background(), tab, spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var seen []dataset.Tuple
	fused, err := BuildFused(context.Background(), tab, spec, func(tp dataset.Tuple) {
		seen = append(seen, tp.Clone())
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(baBytes(t, denseOf(t, fused)), baBytes(t, denseOf(t, ref))) {
		t.Error("fused build differs from two-pass build")
	}
	if len(seen) != tab.Len() {
		t.Fatalf("observed %d tuples, want %d", len(seen), tab.Len())
	}
	for i, tp := range seen {
		for j, v := range tp {
			if v != tab.Row(i)[j] {
				t.Fatalf("observed tuple %d = %v, want row %v (stream order)", i, tp, tab.Row(i))
			}
		}
	}
}

// TestBuildFusedRejectsBadCriterion mirrors the dense build's contract.
func TestBuildFusedRejectsBadCriterion(t *testing.T) {
	tab := dataset.NewTable(testSchema(t))
	tab.MustAppend(dataset.Tuple{1, 1, 7}) // category code 7 out of 0..2
	_, err := BuildFused(context.Background(), tab, testSpec(t), nil, Options{})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v, want criterion range error", err)
	}
}

// TestBuildShardedCancel: a pre-canceled context aborts the build.
func TestBuildShardedCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildSharded(ctx, testTable(t, 50_000), testSpec(t), Options{Workers: 4}); err == nil {
		t.Fatal("canceled sharded build returned nil error")
	}
}

// TestPermuteSharded: permuting a sharded backend matches permuting the
// dense array, and the result is still a *Sharded with its provenance.
func TestPermuteSharded(t *testing.T) {
	tab := testTable(t, 500)
	spec := testSpec(t)
	sh, err := BuildSharded(context.Background(), tab, spec, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	order := make([]int, sh.NX())
	for i := range order {
		order[i] = sh.NX() - 1 - i
	}
	got, err := PermuteX(sh, order)
	if err != nil {
		t.Fatal(err)
	}
	psh, ok := got.(*Sharded)
	if !ok {
		t.Fatalf("PermuteX(*Sharded) = %T, want *Sharded", got)
	}
	if psh.Workers() != sh.Workers() {
		t.Errorf("permuted Workers() = %d, want %d", psh.Workers(), sh.Workers())
	}
	want, err := binarray.PermuteX(denseOf(t, sh), order)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(baBytes(t, denseOf(t, psh)), baBytes(t, want)) {
		t.Error("permuted sharded counts differ from permuted dense counts")
	}
	yOrder := make([]int, sh.NY())
	for i := range yOrder {
		yOrder[i] = (i + 1) % sh.NY()
	}
	if _, err := PermuteY(sh, yOrder); err != nil {
		t.Fatalf("PermuteY: %v", err)
	}
}

// TestShardedAddDelegates: the Adder extension lands in the merged array.
func TestShardedAddDelegates(t *testing.T) {
	sh, err := BuildSharded(context.Background(), testTable(t, 10), testSpec(t), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := sh.Count(0, 0, 0)
	sh.Add(0, 0, 0)
	if got := sh.Count(0, 0, 0); got != before+1 {
		t.Errorf("Count after Add = %d, want %d", got, before+1)
	}
	if sh.Stats().MemBytes <= 0 {
		t.Error("Stats().MemBytes <= 0")
	}
}
