package counts

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"arcs/internal/binarray"
	"arcs/internal/vfs"
)

// The spill backend is a classic external sort, so neither grid
// resolution nor dataset size is bound by RAM:
//
//	ingest → bounded sparse accumulator → sorted run files → k-way
//	merge → one sorted record file + an in-RAM cell index
//
// Run files ("ARCSRN1\n" magic, record count, then records) and the
// final segment file ("ARCSSP1\n" magic, nx/ny/nseg/n header, then
// records) share one record shape: the row-major cell index as uint64
// followed by the (nseg+1)-wide uint32 count slab, little-endian —
// per-segment counts first, cell total last, exactly the dense layout.
// Records are strictly ascending by cell index within every file.
//
// Crash behavior: every write path (run flush, final merge) is
// buffered, fsynced and length-validated, so ENOSPC, fsync faults and
// torn writes fail the build with an error before a backend exists.
// Silent short reads during the merge are caught by record-count
// validation (each cursor knows exactly how many bytes its run
// promised). After the build, positioned reads serve the probe path
// lock-free; a read fault there panics rather than returning a zero
// count — the engine's per-probe panic isolation contains it, and a
// corrupt count is never served as data.

var (
	runMagic   = []byte("ARCSRN1\n")
	spillMagic = []byte("ARCSSP1\n")
)

// spillSeq disambiguates spill file names within a process; the PID
// disambiguates across processes sharing a spill directory.
var spillSeq atomic.Uint64

// spillReadBatch is how many records the sequential iteration paths
// (Occupied, Cells, SegmentTotal) pull per positioned read.
const spillReadBatch = 1024

// minAccumulatorCells floors the spill accumulator so a tiny budget
// still amortizes run-file overhead over a useful number of cells.
const minAccumulatorCells = 1024

// SpillArray is the spill-to-disk count backend: an immutable sorted
// record file on disk plus a sorted in-RAM cell index (8 bytes per
// occupied cell). Point reads binary-search the index and issue one
// positioned read; iteration streams the file in batches. All reads
// are safe for concurrent use — positioned reads share no cursor.
type SpillArray struct {
	nx, ny, nseg int
	n            uint64
	idx          []int64 // sorted row-major indices of occupied cells
	fs           vfs.FS
	path         string
	r            vfs.ReaderAtFile
	dir          string // spill directory, for permute rebuilds

	closeOnce sync.Once
}

func (s *SpillArray) stride() int  { return s.nseg + 1 }
func (s *SpillArray) recSize() int { return 8 + s.stride()*4 }

// spillHeaderSize is the final file's header: magic + nx, ny, nseg, n.
const spillHeaderSize = 8 + 4*8

// Close releases the open record file and deletes it. The backend is
// unusable afterwards; a finalizer calls Close if the last reference
// is dropped without one, so abandoned backends do not leak
// descriptors or disk in a long-running daemon.
func (s *SpillArray) Close() error {
	var err error
	s.closeOnce.Do(func() {
		runtime.SetFinalizer(s, nil)
		err = s.r.Close()
		_ = s.fs.Remove(s.path)
	})
	return err
}

// NX implements Backend.
func (s *SpillArray) NX() int { return s.nx }

// NY implements Backend.
func (s *SpillArray) NY() int { return s.ny }

// NSeg implements Backend.
func (s *SpillArray) NSeg() int { return s.nseg }

// N implements Backend.
func (s *SpillArray) N() uint64 { return s.n }

// readAt reads exactly len(p) bytes at off. Any failure — an I/O
// error or a silent short read — panics: a spill file that stops
// answering cannot be allowed to masquerade as empty cells.
func (s *SpillArray) readAt(p []byte, off int64) {
	n, err := s.r.ReadAt(p, off)
	if err != nil || n != len(p) {
		panic(fmt.Sprintf("counts: spill backend %s: read %d bytes at %d: n=%d err=%v (refusing to serve corrupt counts)",
			s.path, len(p), off, n, err))
	}
}

// recOffset is the file offset of the i-th record's count slab.
func (s *SpillArray) recOffset(i int) int64 {
	return spillHeaderSize + int64(i)*int64(s.recSize()) + 8
}

// find binary-searches the cell index; ok reports presence.
func (s *SpillArray) find(x, y int) (i int, ok bool) {
	idx := int64(x)*int64(s.ny) + int64(y)
	i = sort.Search(len(s.idx), func(i int) bool { return s.idx[i] >= idx })
	return i, i < len(s.idx) && s.idx[i] == idx
}

func (s *SpillArray) readSlot(x, y, slot int) uint32 {
	i, ok := s.find(x, y)
	if !ok {
		return 0
	}
	var buf [4]byte
	s.readAt(buf[:], s.recOffset(i)+int64(slot)*4)
	return binary.LittleEndian.Uint32(buf[:])
}

// Count implements Backend.
func (s *SpillArray) Count(x, y, seg int) uint32 { return s.readSlot(x, y, seg) }

// CellTotal implements Backend.
func (s *SpillArray) CellTotal(x, y int) uint32 { return s.readSlot(x, y, s.nseg) }

// Support implements Backend.
func (s *SpillArray) Support(x, y, seg int) float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.Count(x, y, seg)) / float64(s.n)
}

// Confidence implements Backend, reading the cell's slab once so the
// count and total come from the same record.
func (s *SpillArray) Confidence(x, y, seg int) float64 {
	i, ok := s.find(x, y)
	if !ok {
		return 0
	}
	buf := make([]byte, s.stride()*4)
	s.readAt(buf, s.recOffset(i))
	total := binary.LittleEndian.Uint32(buf[s.nseg*4:])
	if total == 0 {
		return 0
	}
	return float64(binary.LittleEndian.Uint32(buf[seg*4:])) / float64(total)
}

// SegmentTotal implements Backend.
func (s *SpillArray) SegmentTotal(seg int) uint64 {
	var total uint64
	s.eachRecord(func(_ int64, cell []uint32) {
		total += uint64(cell[seg])
	})
	return total
}

// eachRecord streams every record in file (= row-major) order, decoding
// the count slab into a reused buffer that is only valid during fn.
func (s *SpillArray) eachRecord(fn func(idx int64, cell []uint32)) {
	recSize := s.recSize()
	stride := s.stride()
	buf := make([]byte, spillReadBatch*recSize)
	cell := make([]uint32, stride)
	for start := 0; start < len(s.idx); start += spillReadBatch {
		nrec := len(s.idx) - start
		if nrec > spillReadBatch {
			nrec = spillReadBatch
		}
		chunk := buf[:nrec*recSize]
		s.readAt(chunk, spillHeaderSize+int64(start)*int64(recSize))
		for r := 0; r < nrec; r++ {
			rec := chunk[r*recSize : (r+1)*recSize]
			idx := int64(binary.LittleEndian.Uint64(rec[:8]))
			if idx != s.idx[start+r] {
				panic(fmt.Sprintf("counts: spill backend %s: record %d holds cell %d, index says %d (refusing to serve corrupt counts)",
					s.path, start+r, idx, s.idx[start+r]))
			}
			for k := 0; k < stride; k++ {
				cell[k] = binary.LittleEndian.Uint32(rec[8+k*4:])
			}
			fn(idx, cell)
		}
	}
}

// Occupied implements Backend: row-major deterministic iteration.
func (s *SpillArray) Occupied(seg int, fn func(x, y int, segCount, cellTotal uint32)) {
	s.eachRecord(func(idx int64, cell []uint32) {
		if c := cell[seg]; c > 0 {
			fn(int(idx/int64(s.ny)), int(idx%int64(s.ny)), c, cell[s.nseg])
		}
	})
}

// Cells implements Backend: row-major iteration with the full slab.
func (s *SpillArray) Cells(fn func(x, y int, cell []uint32)) {
	s.eachRecord(func(idx int64, cell []uint32) {
		fn(int(idx/int64(s.ny)), int(idx%int64(s.ny)), cell)
	})
}

// Stats implements Sizer: resident memory is the cell index; the
// record file is accounted as disk bytes.
func (s *SpillArray) Stats() binarray.Stats {
	return binarray.Stats{
		Cells:         s.nx * s.ny,
		OccupiedCells: len(s.idx),
		MemBytes:      len(s.idx) * 8,
		DiskBytes:     spillHeaderSize + int64(len(s.idx))*int64(s.recSize()),
	}
}

// permute rebuilds the spill file with cell coordinates remapped
// through pos on the chosen axis, reusing the external-sort machinery
// (the remapped cells arrive unsorted, so they take the same
// accumulate-flush-merge path as ingest).
func (s *SpillArray) permute(pos []int, onX bool) (Backend, error) {
	b, err := newSpillBuilder(s.nx, s.ny, s.nseg, Options{SpillDir: s.dir, FS: s.fs})
	if err != nil {
		return nil, err
	}
	var ferr error
	s.Cells(func(x, y int, cell []uint32) {
		if ferr != nil {
			return
		}
		if onX {
			x = pos[x]
		} else {
			y = pos[y]
		}
		ferr = b.addCell(x, y, cell)
	})
	if ferr != nil {
		b.abort()
		return nil, ferr
	}
	b.n = s.n
	sa, err := b.finalize()
	if err != nil {
		return nil, err
	}
	return sa, nil
}

// PermuteX implements Permuter, matching binarray.PermuteX semantics.
func (s *SpillArray) PermuteX(order []int) (Backend, error) {
	pos, err := permutePositions(order, s.nx, "x")
	if err != nil {
		return nil, err
	}
	return s.permute(pos, true)
}

// PermuteY implements Permuter for the y axis.
func (s *SpillArray) PermuteY(order []int) (Backend, error) {
	pos, err := permutePositions(order, s.ny, "y")
	if err != nil {
		return nil, err
	}
	return s.permute(pos, false)
}

var (
	_ Backend  = (*SpillArray)(nil)
	_ Sizer    = (*SpillArray)(nil)
	_ Permuter = (*SpillArray)(nil)
)

// spillBuilder accumulates tuples in a bounded sparse array, flushing
// sorted run files whenever the accumulator reaches its cell cap.
type spillBuilder struct {
	nx, ny, nseg int
	fs           vfs.FS
	dir          string
	prefix       string
	maxCells     int
	acc          *SparseArray
	runs         []spillRun
	n            uint64
	runSeq       int
}

type spillRun struct {
	path    string
	records int
}

func newSpillBuilder(nx, ny, nseg int, opts Options) (*spillBuilder, error) {
	dir := opts.SpillDir
	if dir == "" {
		dir = os.TempDir()
	}
	fsys := opts.fs()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("counts: spill dir: %w", err)
	}
	maxCells := minAccumulatorCells
	if b := opts.budget(); b > 0 {
		if c := b / sparseBytesPerCell(nseg); c > int64(maxCells) {
			if c > 1<<28 {
				c = 1 << 28
			}
			maxCells = int(c)
		}
	}
	acc, err := NewSparse(nx, ny, nseg)
	if err != nil {
		return nil, err
	}
	return &spillBuilder{
		nx: nx, ny: ny, nseg: nseg,
		fs: fsys, dir: dir,
		prefix:   fmt.Sprintf("arcs-spill-%d-%d", os.Getpid(), spillSeq.Add(1)),
		maxCells: maxCells,
		acc:      acc,
	}, nil
}

// Add records one tuple; the accumulator flushes to a run file when it
// hits its budgeted cell cap.
func (b *spillBuilder) Add(x, y, seg int) error { return b.AddN(x, y, seg, 1) }

// AddN is the bulk form of Add.
func (b *spillBuilder) AddN(x, y, seg int, n uint32) error {
	b.acc.AddN(x, y, seg, n)
	b.n += uint64(n)
	if len(b.acc.cells) >= b.maxCells {
		return b.flushRun()
	}
	return nil
}

// addCell accumulates a raw count slab (merge/permute primitive; does
// not advance n).
func (b *spillBuilder) addCell(x, y int, cell []uint32) error {
	b.acc.addCell(x, y, cell)
	if len(b.acc.cells) >= b.maxCells {
		return b.flushRun()
	}
	return nil
}

// flushRun writes the accumulator as one sorted, fsynced run file and
// resets it. An empty accumulator is a no-op.
func (b *spillBuilder) flushRun() error {
	if len(b.acc.cells) == 0 {
		return nil
	}
	b.runSeq++
	path := filepath.Join(b.dir, fmt.Sprintf("%s-%06d.run", b.prefix, b.runSeq))
	f, err := b.fs.Create(path)
	if err != nil {
		return fmt.Errorf("counts: spill run: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	werr := func() error {
		if _, err := w.Write(runMagic); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint64(len(b.acc.cells))); err != nil {
			return err
		}
		var ferr error
		rec := make([]byte, 8+(b.nseg+1)*4)
		b.acc.Cells(func(x, y int, cell []uint32) {
			if ferr != nil {
				return
			}
			binary.LittleEndian.PutUint64(rec[:8], uint64(int64(x)*int64(b.ny)+int64(y)))
			for k, v := range cell {
				binary.LittleEndian.PutUint32(rec[8+k*4:], v)
			}
			_, ferr = w.Write(rec)
		})
		if ferr != nil {
			return ferr
		}
		if err := w.Flush(); err != nil {
			return err
		}
		return f.Sync()
	}()
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = b.fs.Remove(path)
		return fmt.Errorf("counts: writing spill run %s: %w", path, werr)
	}
	b.runs = append(b.runs, spillRun{path: path, records: len(b.acc.cells)})
	acc, err := NewSparse(b.nx, b.ny, b.nseg)
	if err != nil {
		return err
	}
	b.acc = acc
	return nil
}

// abort removes every run file after a failed build.
func (b *spillBuilder) abort() {
	for _, r := range b.runs {
		_ = b.fs.Remove(r.path)
	}
	b.runs = nil
}

// mergeFrom folds another builder's state into b for the sharded merge:
// the other builder's residual accumulator is flushed and its runs are
// adopted. Saturating addition is associative and commutative, so run
// order cannot change the merged counts.
func (b *spillBuilder) mergeFrom(other *spillBuilder) error {
	if err := other.flushRun(); err != nil {
		return err
	}
	b.runs = append(b.runs, other.runs...)
	other.runs = nil
	b.n += other.n
	return nil
}

// runCursor streams one run file during the merge, validating that the
// file delivers exactly the bytes its record count promises — a silent
// short read surfaces as a hard error here, never as missing counts.
type runCursor struct {
	r         vfs.ReaderAtFile
	path      string
	recSize   int
	remaining int   // records not yet loaded into buf
	off       int64 // next read offset
	buf       []byte
	pos, lim  int
	head      []byte // current record; nil when exhausted
}

func (c *runCursor) next() error {
	if c.pos >= c.lim {
		if c.remaining == 0 {
			c.head = nil
			return nil
		}
		nrec := c.remaining
		if nrec > spillReadBatch {
			nrec = spillReadBatch
		}
		need := nrec * c.recSize
		n, err := c.r.ReadAt(c.buf[:need], c.off)
		if err != nil {
			return fmt.Errorf("counts: spill run %s: read at %d: %w", c.path, c.off, err)
		}
		if n != need {
			return fmt.Errorf("counts: spill run %s truncated: read %d of %d bytes at %d",
				c.path, n, need, c.off)
		}
		c.off += int64(need)
		c.remaining -= nrec
		c.pos, c.lim = 0, need
	}
	c.head = c.buf[c.pos : c.pos+c.recSize]
	c.pos += c.recSize
	return nil
}

// finalize flushes the residual accumulator, k-way merges every run
// into the final sorted segment file (combining equal cells with
// saturating addition), fsyncs it, deletes the runs and opens the
// backend. Any fault along the way fails the build with an error; no
// partially merged backend ever escapes.
func (b *spillBuilder) finalize() (*SpillArray, error) {
	back, err := b.finalizeInner()
	if err != nil {
		b.abort()
		return nil, err
	}
	return back, nil
}

func (b *spillBuilder) finalizeInner() (*SpillArray, error) {
	if err := b.flushRun(); err != nil {
		return nil, err
	}
	opener, ok := b.fs.(vfs.ReaderAtOpener)
	if !ok {
		return nil, fmt.Errorf("counts: spill filesystem %T does not support positioned reads", b.fs)
	}
	stride := b.nseg + 1
	recSize := 8 + stride*4

	cursors := make([]*runCursor, 0, len(b.runs))
	defer func() {
		for _, c := range cursors {
			_ = c.r.Close()
		}
	}()
	for _, run := range b.runs {
		r, err := opener.OpenReaderAt(run.path)
		if err != nil {
			return nil, fmt.Errorf("counts: opening spill run: %w", err)
		}
		c := &runCursor{
			r: r, path: run.path, recSize: recSize,
			remaining: run.records, off: int64(len(runMagic)) + 8,
			buf: make([]byte, spillReadBatch*recSize),
		}
		if err := c.next(); err != nil {
			cursors = append(cursors, c)
			return nil, err
		}
		cursors = append(cursors, c)
	}

	path := filepath.Join(b.dir, b.prefix+".seg")
	f, err := b.fs.Create(path)
	if err != nil {
		return nil, fmt.Errorf("counts: spill segment: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	var idx []int64
	werr := func() error {
		if _, err := w.Write(spillMagic); err != nil {
			return err
		}
		for _, v := range []uint64{uint64(b.nx), uint64(b.ny), uint64(b.nseg), b.n} {
			if err := binary.Write(w, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		out := make([]byte, recSize)
		slab := make([]uint32, stride)
		for {
			// Find the smallest live cell index across the run heads.
			min := int64(-1)
			for _, c := range cursors {
				if c.head == nil {
					continue
				}
				if h := int64(binary.LittleEndian.Uint64(c.head[:8])); min < 0 || h < min {
					min = h
				}
			}
			if min < 0 {
				break
			}
			for k := range slab {
				slab[k] = 0
			}
			for _, c := range cursors {
				if c.head == nil || int64(binary.LittleEndian.Uint64(c.head[:8])) != min {
					continue
				}
				for k := 0; k < stride; k++ {
					if v := binary.LittleEndian.Uint32(c.head[8+k*4:]); v != 0 {
						slab[k] = satAdd(slab[k], v)
					}
				}
				if err := c.next(); err != nil {
					return err
				}
			}
			binary.LittleEndian.PutUint64(out[:8], uint64(min))
			for k, v := range slab {
				binary.LittleEndian.PutUint32(out[8+k*4:], v)
			}
			if _, err := w.Write(out); err != nil {
				return err
			}
			idx = append(idx, min)
		}
		if err := w.Flush(); err != nil {
			return err
		}
		return f.Sync()
	}()
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = b.fs.Remove(path)
		return nil, fmt.Errorf("counts: writing spill segment %s: %w", path, werr)
	}
	for _, run := range b.runs {
		_ = b.fs.Remove(run.path)
	}
	b.runs = nil

	r, err := opener.OpenReaderAt(path)
	if err != nil {
		_ = b.fs.Remove(path)
		return nil, fmt.Errorf("counts: opening spill segment: %w", err)
	}
	s := &SpillArray{
		nx: b.nx, ny: b.ny, nseg: b.nseg, n: b.n,
		idx: idx, fs: b.fs, path: path, r: r, dir: b.dir,
	}
	runtime.SetFinalizer(s, func(sp *SpillArray) { _ = sp.Close() })
	return s, nil
}
