package counts

import (
	"fmt"
	"strconv"
	"strings"

	"arcs/internal/binarray"
	"arcs/internal/vfs"
)

// Kind names a count-backend implementation. The zero value is Auto:
// pick from the memory budget and the expected occupancy.
type Kind int

const (
	// Auto selects dense when the full grid fits the budget, sparse when
	// the expected occupied cells fit, and spill otherwise.
	Auto Kind = iota
	// Dense is the contiguous in-memory array — the paper's BinArray and
	// the byte-identity reference. Fastest per tuple; memory is
	// nx×ny×(nseg+1)×4 bytes regardless of occupancy.
	Dense
	// Sparse is the hash-indexed slab for high-resolution mostly-empty
	// grids: memory scales with occupied cells, not grid cells.
	Sparse
	// Spill is the external-sort on-disk backend: a bounded in-memory
	// accumulator flushes sorted runs to disk and a final merge leaves a
	// sorted record file served by binary search, so neither grid
	// resolution nor dataset size is RAM-bound.
	Spill
)

// String implements fmt.Stringer with the names ParseKind accepts.
func (k Kind) String() string {
	switch k {
	case Auto:
		return "auto"
	case Dense:
		return "dense"
	case Sparse:
		return "sparse"
	case Spill:
		return "spill"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// KindOf reports the kind of a built backend, unwrapping Sharded to
// the inner backend the shards merged into. Unknown (out-of-tree)
// backends report Auto.
func KindOf(b Backend) Kind {
	switch v := b.(type) {
	case *Sharded:
		return v.kind
	case *binarray.BinArray:
		return Dense
	case *SparseArray:
		return Sparse
	case *SpillArray:
		return Spill
	default:
		return Auto
	}
}

// ParseKind parses a backend name as accepted by the -counts-backend
// flags and job specs. The empty string means Auto.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return Auto, nil
	case "dense":
		return Dense, nil
	case "sparse":
		return Sparse, nil
	case "spill", "disk":
		return Spill, nil
	default:
		return Auto, fmt.Errorf("counts: unknown backend %q (want auto, dense, sparse or spill)", s)
	}
}

// ParseBudget parses a -mem-budget flag value: a byte count with an
// optional K/M/G/T suffix (binary multiples), "off"/"unlimited" for no
// cap, or empty for the deprecated package default.
func ParseBudget(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	switch s {
	case "":
		return 0, nil
	case "off", "unlimited", "none":
		return -1, nil
	}
	mult := int64(1)
	trimmed := strings.TrimSuffix(s, "b")
	if len(trimmed) > 0 {
		switch trimmed[len(trimmed)-1] {
		case 'k':
			mult = 1 << 10
		case 'm':
			mult = 1 << 20
		case 'g':
			mult = 1 << 30
		case 't':
			mult = 1 << 40
		}
		if mult > 1 {
			trimmed = strings.TrimSpace(trimmed[:len(trimmed)-1])
		}
	}
	if mult == 1 {
		trimmed = s
	}
	n, err := strconv.ParseInt(trimmed, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("counts: bad memory budget %q (want bytes, a K/M/G/T size, or off)", s)
	}
	if mult > 1 && n > (int64(^uint64(0)>>1))/mult {
		return 0, fmt.Errorf("counts: memory budget %q overflows", s)
	}
	return n * mult, nil
}

// Options configures a count build: parallelism, backend choice and the
// resources the choice is made against. The zero value reproduces the
// historical behavior — sequential dense build under the deprecated
// binarray.DefaultMemBudget.
type Options struct {
	// Workers shards the pass when > 1 and the source supports range
	// sharding; counts are byte-identical at any worker count.
	Workers int
	// Kind pins a backend; Auto dispatches on MemBudget and occupancy.
	Kind Kind
	// MemBudget is the advisory cap in bytes for in-memory count state.
	// 0 applies binarray.DefaultMemBudget (the deprecated global);
	// negative means unlimited.
	MemBudget int64
	// SpillDir is where the spill backend keeps run and record files;
	// empty uses the OS temp directory.
	SpillDir string
	// FS is the filesystem the spill backend writes through; nil uses
	// the real one. The chaos suite injects faults here.
	FS vfs.FS
}

// budget resolves the effective budget: the deprecated global for 0,
// otherwise the plumbed value (negative = unlimited, normalized to -1).
func (o Options) budget() int64 {
	if o.MemBudget == 0 {
		return binarray.DefaultMemBudget
	}
	if o.MemBudget < 0 {
		return -1
	}
	return o.MemBudget
}

func (o Options) fs() vfs.FS {
	if o.FS == nil {
		return vfs.OSFS{}
	}
	return o.FS
}

// sparseBytesPerCell estimates the resident cost of one occupied cell
// in the sparse backend: the count slab entry plus the hash-map entry
// and the sorted-key cache. The map constant is deliberately generous —
// Go map internals cost ~48 bytes per int64→int entry once load factor
// and tophash overhead are amortized.
func sparseBytesPerCell(nseg int) int64 {
	return int64(nseg+1)*4 + 48 + 8
}

// selectKind is the Auto dispatch policy: dense while the full grid
// fits the budget (it is the fastest and the reference), sparse while
// the expected occupied cells fit, spill otherwise. srcLen is the
// source size when known (occupancy can never exceed the tuple count)
// and -1 for unbounded streams; an unlimited budget always picks dense.
func selectKind(spec Spec, srcLen int64, budget int64) Kind {
	if budget <= 0 {
		return Dense
	}
	nx, ny := spec.XBinner.NumBins(), spec.YBinner.NumBins()
	denseBytes, err := binarray.MemNeeded(nx, ny, spec.NSeg)
	if err == nil && denseBytes <= budget {
		return Dense
	}
	// Expected occupancy: every tuple could land in its own cell, but
	// never more cells than the grid has or tuples exist.
	cells := uint64(nx) * uint64(ny)
	occ := int64(-1)
	if cells <= uint64(1<<62) {
		occ = int64(cells)
	}
	if srcLen >= 0 && (occ < 0 || srcLen < occ) {
		occ = srcLen
	}
	if occ >= 0 {
		perCell := sparseBytesPerCell(spec.NSeg)
		if occ <= budget/perCell {
			return Sparse
		}
	}
	return Spill
}
