package counts

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"testing"

	"arcs/internal/binarray"
	"arcs/internal/binning"
)

// snapBytes serializes any backend through Snapshot — the strictest
// equality the backend family promises.
func snapBytes(t testing.TB, b Backend) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Snapshot(b, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func closeBackend(b Backend) {
	if sh, ok := b.(*Sharded); ok {
		b = sh.Inner()
	}
	if c, ok := b.(interface{ Close() error }); ok {
		_ = c.Close()
	}
}

// gridOp is one AddN applied identically to every backend under test.
type gridOp struct {
	x, y, seg int
	n         uint32
}

// randOps generates a deterministic op stream from a small LCG. With
// saturate set, some ops land counts near MaxUint32 so the saturating
// accumulation path is exercised on every backend.
func randOps(seed uint64, nx, ny, nseg, nops int, saturate bool) []gridOp {
	state := seed*2862933555777941757 + 3037000493
	next := func(mod int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(mod))
	}
	ops := make([]gridOp, nops)
	for i := range ops {
		n := uint32(1 + next(7))
		if saturate && next(4) == 0 {
			n = math.MaxUint32 - uint32(next(3))
		}
		ops[i] = gridOp{x: next(nx), y: next(ny), seg: next(nseg), n: n}
	}
	return ops
}

// buildAllBackends applies ops to a fresh dense, sparse and spill
// backend and returns each snapshot keyed by kind name. The spill
// builder runs with a 1-byte budget so its accumulator floors at the
// minimum cell cap — grids with more occupied cells than the cap
// exercise the multi-run external merge.
func buildAllBackends(t testing.TB, nx, ny, nseg int, ops []gridOp) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, 3)

	ba, err := binarray.New(nx, ny, nseg)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		ba.AddN(op.x, op.y, op.seg, op.n)
	}
	out["dense"] = snapBytes(t, ba)

	sp, err := NewSparse(nx, ny, nseg)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		sp.AddN(op.x, op.y, op.seg, op.n)
	}
	out["sparse"] = snapBytes(t, sp)

	sb, err := newSpillBuilder(nx, ny, nseg, Options{SpillDir: t.TempDir(), MemBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := sb.AddN(op.x, op.y, op.seg, op.n); err != nil {
			t.Fatal(err)
		}
	}
	sa, err := sb.finalize()
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	out["spill"] = snapBytes(t, sa)
	return out
}

// TestBackendsByteIdenticalRandomGrids is the cross-backend property
// check: random grids — including saturating bulk adds — snapshot to
// the same bytes whether counted densely, sparsely or through the
// spill path's external sort.
func TestBackendsByteIdenticalRandomGrids(t *testing.T) {
	cases := []struct {
		name         string
		nx, ny, nseg int
		nops         int
		seed         uint64
		saturate     bool
	}{
		{name: "small-mostly-full", nx: 8, ny: 6, nseg: 3, nops: 2000, seed: 1},
		// 4000 cells with ~3000 occupied exceeds the spill accumulator's
		// minimum cap, forcing multiple run files and a real k-way merge.
		{name: "wide-multi-run", nx: 80, ny: 50, nseg: 4, nops: 5000, seed: 2},
		{name: "tall-sparse", nx: 200, ny: 3, nseg: 2, nops: 37, seed: 3},
		{name: "saturating", nx: 5, ny: 5, nseg: 3, nops: 400, seed: 4, saturate: true},
		{name: "empty", nx: 10, ny: 10, nseg: 2, nops: 0, seed: 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ops := randOps(tc.seed, tc.nx, tc.ny, tc.nseg, tc.nops, tc.saturate)
			got := buildAllBackends(t, tc.nx, tc.ny, tc.nseg, ops)
			for _, kind := range []string{"sparse", "spill"} {
				if !bytes.Equal(got[kind], got["dense"]) {
					t.Errorf("%s snapshot differs from dense (%d vs %d bytes)",
						kind, len(got[kind]), len(got["dense"]))
				}
			}
		})
	}
}

// FuzzBackendEquivalence drives all three backends with op streams
// decoded from fuzz input and requires byte-identical snapshots. Each
// 4-byte chunk is one op; an odd flag byte makes the op a near-MaxUint32
// bulk add so the fuzzer reaches the saturation plateau.
func FuzzBackendEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 0, 4, 5, 6, 1, 8})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 9, 9, 9, 9})
	f.Add(bytes.Repeat([]byte{0xab}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		const nx, ny, nseg = 7, 5, 3
		if len(data) > 4*256 {
			data = data[:4*256]
		}
		var ops []gridOp
		for ; len(data) >= 4; data = data[4:] {
			n := uint32(data[3]) + 1
			if data[3]&1 == 1 {
				n = math.MaxUint32 - uint32(data[3]>>1)
			}
			ops = append(ops, gridOp{
				x: int(data[0]) % nx, y: int(data[1]) % ny,
				seg: int(data[2]) % nseg, n: n,
			})
		}
		got := buildAllBackends(t, nx, ny, nseg, ops)
		for _, kind := range []string{"sparse", "spill"} {
			if !bytes.Equal(got[kind], got["dense"]) {
				t.Errorf("%s snapshot differs from dense for %d ops", kind, len(ops))
			}
		}
	})
}

// TestShardedBackendsByteIdenticalToDense pins each alternate backend
// through the sharded build at several worker counts and requires the
// merged result to snapshot identically to the sequential dense build.
func TestShardedBackendsByteIdenticalToDense(t *testing.T) {
	tab := testTable(t, 10_007) // prime, so shards are uneven
	spec := testSpec(t)
	ref, err := Build(context.Background(), tab, spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := snapBytes(t, ref)
	for _, kind := range []Kind{Sparse, Spill} {
		for _, workers := range []int{1, 2, 3, 4, 8} {
			t.Run(fmt.Sprintf("%s-w%d", kind, workers), func(t *testing.T) {
				sh, err := BuildSharded(context.Background(), tab, spec,
					Options{Workers: workers, Kind: kind, SpillDir: t.TempDir()})
				if err != nil {
					t.Fatal(err)
				}
				defer closeBackend(sh)
				if got := KindOf(sh); got != kind {
					t.Errorf("KindOf = %v, want %v", got, kind)
				}
				if got := snapBytes(t, sh); !bytes.Equal(got, want) {
					t.Errorf("sharded %s build differs from sequential dense build", kind)
				}
			})
		}
	}
}

// TestBudgetRefusedByDenseSelectsAlternate is the acceptance claim from
// the backend refactor: a grid the dense array refuses under a budget
// still builds — on sparse when the expected occupancy fits, on spill
// otherwise — and produces byte-identical counts either way.
func TestBudgetRefusedByDenseSelectsAlternate(t *testing.T) {
	// A 200×200 grid with 3 segments needs 640,000 bytes densely;
	// refuse it with a 64 KiB budget.
	const nbins, budget = 200, 64 << 10
	xb, err := binning.NewEquiWidth(0, 100, nbins)
	if err != nil {
		t.Fatal(err)
	}
	yb, err := binning.NewEquiWidth(0, 100, nbins)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{XIdx: 0, YIdx: 1, CritIdx: 2, XBinner: xb, YBinner: yb, NSeg: 3}
	if _, err := binarray.NewBudget(nbins, nbins, 3, budget); err == nil {
		t.Fatal("dense array unexpectedly fits the budget")
	}

	cases := []struct {
		name string
		rows int
		want Kind
	}{
		// 500 occupied cells of sparse state fit 64 KiB.
		{name: "low-occupancy-selects-sparse", rows: 500, want: Sparse},
		// ~10k expected cells of sparse state do not; spill it is.
		{name: "high-occupancy-selects-spill", rows: 10_007, want: Spill},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tab := testTable(t, tc.rows)
			ref, err := Build(context.Background(), tab, spec, Options{Kind: Dense, MemBudget: -1})
			if err != nil {
				t.Fatal(err)
			}
			want := snapBytes(t, ref)
			b, err := Build(context.Background(), tab, spec,
				Options{MemBudget: budget, SpillDir: t.TempDir()})
			if err != nil {
				t.Fatalf("budgeted build failed where dense refused: %v", err)
			}
			defer closeBackend(b)
			if got := KindOf(b); got != tc.want {
				t.Errorf("auto-selected %v, want %v", got, tc.want)
			}
			if got := snapBytes(t, b); !bytes.Equal(got, want) {
				t.Errorf("budgeted %v build differs from unlimited dense build", tc.want)
			}
		})
	}
}
