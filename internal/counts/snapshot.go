package counts

import (
	"bufio"
	"encoding/binary"
	"io"

	"arcs/internal/binarray"
)

// snapMagic mirrors the dense serialization header (binarray/io.go):
// Snapshot promises byte-for-byte the stream binarray.Write would
// produce for equal counts, whatever backend built them. That promise
// is what makes cross-backend equivalence cheap to prove — the test
// harness compares snapshots, not cells.
var snapMagic = []byte("ARCSBA1\n")

// Snapshot serializes any backend in the dense BinArray wire format:
// magic, nx/ny/nseg/n header, then the full row-major count array with
// empty cells as zeros. For a dense (or dense-sharded) backend this is
// exactly Write; other backends stream their occupied cells into the
// gaps, so even a spill-backed grid snapshots without materializing
// densely in memory.
func Snapshot(b Backend, w io.Writer) error {
	if sh, ok := b.(*Sharded); ok {
		b = sh.inner
	}
	if d, ok := b.(*binarray.BinArray); ok {
		return d.Write(w)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(snapMagic); err != nil {
		return err
	}
	for _, v := range []uint64{uint64(b.NX()), uint64(b.NY()), uint64(b.NSeg()), b.N()} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	stride := b.NSeg() + 1
	zeros := make([]byte, stride*4)
	cellBuf := make([]byte, stride*4)
	var werr error
	writeZeroCells := func(n int64) {
		for ; n > 0 && werr == nil; n-- {
			_, werr = bw.Write(zeros)
		}
	}
	next := int64(0) // row-major index of the next cell to emit
	b.Cells(func(x, y int, cell []uint32) {
		if werr != nil {
			return
		}
		idx := int64(x)*int64(b.NY()) + int64(y)
		writeZeroCells(idx - next)
		if werr != nil {
			return
		}
		for k, v := range cell {
			binary.LittleEndian.PutUint32(cellBuf[k*4:], v)
		}
		_, werr = bw.Write(cellBuf)
		next = idx + 1
	})
	if werr != nil {
		return werr
	}
	writeZeroCells(int64(b.NX())*int64(b.NY()) - next)
	if werr != nil {
		return werr
	}
	return bw.Flush()
}
