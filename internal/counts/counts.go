// Package counts abstracts the count substrate behind the ARCS pipeline.
// The paper's premise (§3.1) is that once the binned counts are built,
// the feedback loop never touches the source again; everything
// downstream of the build — the rule engine, grid construction,
// categorical reorder, threshold enumeration — needs only the small read
// API captured here as Backend. The dense in-memory BinArray is the
// reference implementation; Sharded is a second implementation that
// fills the same counts with a parallel, partitioned ingest pass.
package counts

import (
	"context"
	"fmt"

	"arcs/internal/binarray"
	"arcs/internal/binning"
	"arcs/internal/dataset"
)

// Backend is the read API of a built count substrate — exactly the
// surface the engine, grid construction and reorder consume. All
// methods must be safe for concurrent readers once the backend is
// built; mutation (if any) goes through the optional Adder extension.
type Backend interface {
	// NX and NY report the grid dimensions in bins.
	NX() int
	NY() int
	// NSeg reports the cardinality of the RHS segmentation attribute.
	NSeg() int
	// N reports the total number of tuples counted.
	N() uint64
	// Count returns |(i, j, Gk)| of §3.2: tuples in cell (x, y) with RHS
	// value seg.
	Count(x, y, seg int) uint32
	// CellTotal returns |(i, j)|: all tuples in cell (x, y).
	CellTotal(x, y int) uint32
	// Support returns Count/N (0 when empty).
	Support(x, y, seg int) float64
	// Confidence returns Count/CellTotal (0 for empty cells).
	Confidence(x, y, seg int) float64
	// SegmentTotal returns the number of tuples with RHS value seg
	// across all cells.
	SegmentTotal(seg int) uint64
	// Occupied invokes fn for every cell with at least one tuple of RHS
	// value seg, in deterministic row-major order (x outer, y inner).
	Occupied(seg int, fn func(x, y int, segCount, cellTotal uint32))
}

// Adder is the optional mutable extension of Backend, implemented by
// backends that admit incremental tuples after the build (core.Extend).
type Adder interface {
	Backend
	// Add records one tuple in cell (x, y) with RHS value seg.
	Add(x, y, seg int)
}

// Sizer is the optional introspection extension: backends that can
// summarize their shape and memory footprint for observability.
type Sizer interface {
	Stats() binarray.Stats
}

// The dense array is the reference Backend (and is mutable and sized).
var (
	_ Adder = (*binarray.BinArray)(nil)
	_ Sizer = (*binarray.BinArray)(nil)
)

// Spec carries everything a build pass needs to map a tuple to a cell:
// the schema positions of the two LHS attributes and the criterion, the
// fitted binners, and the criterion cardinality.
type Spec struct {
	XIdx, YIdx, CritIdx int
	XBinner, YBinner    binning.Binner
	NSeg                int
}

// Build fills a count backend from one pass over src. workers <= 1
// builds the dense array sequentially; workers > 1 shards the pass
// across a worker pool when the source supports range sharding
// (dataset.Sharder) and falls back to the sequential dense build when it
// does not. The resulting counts are bit-identical either way.
func Build(ctx context.Context, src dataset.Source, spec Spec, workers int) (Backend, error) {
	if workers > 1 {
		if sh, ok := src.(dataset.Sharder); ok {
			return BuildSharded(ctx, sh, spec, workers)
		}
	}
	return buildDense(ctx, src, spec)
}

func buildDense(ctx context.Context, src dataset.Source, spec Spec) (*binarray.BinArray, error) {
	return binarray.BuildContext(ctx, src, spec.XIdx, spec.YIdx, spec.CritIdx,
		spec.XBinner, spec.YBinner, spec.NSeg)
}

// BuildFused is the single-pass fast path fusing Ingest and Count: it
// streams src once, counting every tuple into a dense backend and
// invoking observe on it (for reservoir sampling) along the way. Used
// when the binners need no fitting pass — fixed-range equi-width or
// categorical axes. observe sees tuples in stream order; the tuple
// buffer may be reused, so observers that retain tuples must Clone.
func BuildFused(ctx context.Context, src dataset.Source, spec Spec, observe func(dataset.Tuple)) (Backend, error) {
	ba, err := binarray.New(spec.XBinner.NumBins(), spec.YBinner.NumBins(), spec.NSeg)
	if err != nil {
		return nil, err
	}
	width := src.Schema().Len()
	// Compile the binners once so the per-tuple cost is two direct
	// lookups instead of two interface dispatches, same as BuildContext.
	cx, cy := binning.Compile(spec.XBinner), binning.Compile(spec.YBinner)
	err = dataset.ForEachContext(ctx, src, func(t dataset.Tuple) error {
		if len(t) != width {
			return dataset.ErrSchemaMismatch
		}
		seg := int(t[spec.CritIdx])
		if seg < 0 || seg >= spec.NSeg {
			return fmt.Errorf("counts: criterion value %d out of range 0..%d", seg, spec.NSeg-1)
		}
		ba.Add(cx.Bin(t[spec.XIdx]), cy.Bin(t[spec.YIdx]), seg)
		if observe != nil {
			observe(t)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ba, nil
}

// PermuteX returns a backend with the x bins reordered by order (the
// categorical densest-cluster reorder). The dense array and the sharded
// backend both support it; other backends report an error.
func PermuteX(b Backend, order []int) (Backend, error) {
	switch v := b.(type) {
	case *binarray.BinArray:
		return binarray.PermuteX(v, order)
	case *Sharded:
		m, err := binarray.PermuteX(v.merged, order)
		if err != nil {
			return nil, err
		}
		return v.withMerged(m), nil
	default:
		return nil, fmt.Errorf("counts: backend %T does not support x permutation", b)
	}
}

// PermuteY is PermuteX for the y axis.
func PermuteY(b Backend, order []int) (Backend, error) {
	switch v := b.(type) {
	case *binarray.BinArray:
		return binarray.PermuteY(v, order)
	case *Sharded:
		m, err := binarray.PermuteY(v.merged, order)
		if err != nil {
			return nil, err
		}
		return v.withMerged(m), nil
	default:
		return nil, fmt.Errorf("counts: backend %T does not support y permutation", b)
	}
}
