// Package counts abstracts the count substrate behind the ARCS pipeline.
// The paper's premise (§3.1) is that once the binned counts are built,
// the feedback loop never touches the source again; everything
// downstream of the build — the rule engine, grid construction,
// categorical reorder, threshold enumeration — needs only the small read
// API captured here as Backend.
//
// Four implementations fill that API, selected by memory budget and
// expected occupancy (Options/Kind): the dense in-memory BinArray is
// the reference and the fast path; SparseArray keeps memory
// proportional to occupied cells for high-resolution mostly-empty
// grids; SpillArray external-sorts counts to disk so grid resolution
// and dataset size are not RAM-bound; and Sharded wraps any of them
// with a partitioned parallel ingest. Every backend produces counts
// byte-identical to the dense reference (see Snapshot), at any worker
// count — saturating addition is associative and commutative, so no
// partitioning or merge order can change a single bit.
package counts

import (
	"bytes"
	"context"
	"fmt"

	"arcs/internal/binarray"
	"arcs/internal/binning"
	"arcs/internal/cancelcheck"
	"arcs/internal/dataset"
)

// Backend is the read API of a built count substrate — exactly the
// surface the engine, grid construction and reorder consume. All
// methods must be safe for concurrent readers once the backend is
// built; mutation (if any) goes through the optional Adder extension.
type Backend interface {
	// NX and NY report the grid dimensions in bins.
	NX() int
	NY() int
	// NSeg reports the cardinality of the RHS segmentation attribute.
	NSeg() int
	// N reports the total number of tuples counted.
	N() uint64
	// Count returns |(i, j, Gk)| of §3.2: tuples in cell (x, y) with RHS
	// value seg.
	Count(x, y, seg int) uint32
	// CellTotal returns |(i, j)|: all tuples in cell (x, y).
	CellTotal(x, y int) uint32
	// Support returns Count/N (0 when empty).
	Support(x, y, seg int) float64
	// Confidence returns Count/CellTotal (0 for empty cells).
	Confidence(x, y, seg int) float64
	// SegmentTotal returns the number of tuples with RHS value seg
	// across all cells.
	SegmentTotal(seg int) uint64
	// Occupied invokes fn for every cell with at least one tuple of RHS
	// value seg, in deterministic row-major order (x outer, y inner).
	Occupied(seg int, fn func(x, y int, segCount, cellTotal uint32))
	// Cells invokes fn for every occupied cell in deterministic
	// row-major order with the full count slab [seg 0 .. seg nseg-1,
	// total]. The slice is only valid during the callback. This is the
	// bulk read path: snapshots, occupancy metrics and backend
	// conversion iterate occupied cells instead of scanning the grid.
	Cells(fn func(x, y int, cell []uint32))
}

// Adder is the optional mutable extension of Backend, implemented by
// backends that admit incremental tuples after the build (core.Extend).
type Adder interface {
	Backend
	// Add records one tuple in cell (x, y) with RHS value seg.
	Add(x, y, seg int)
}

// AsAdder reports whether b supports incremental mutation, unwrapping
// the Sharded decorator (whose Add delegates to its inner backend and
// is only valid when that backend is itself mutable — a spill-backed
// Sharded is not).
func AsAdder(b Backend) (Adder, bool) {
	if sh, ok := b.(*Sharded); ok {
		if _, ok := sh.inner.(Adder); !ok {
			return nil, false
		}
		return sh, true
	}
	a, ok := b.(Adder)
	return a, ok
}

// Sizer is the optional introspection extension: backends that can
// summarize their shape, memory footprint and disk footprint for
// observability.
type Sizer interface {
	Stats() binarray.Stats
}

// Permuter is the optional extension for the categorical
// densest-cluster reorder: backends that can rebuild themselves with
// bins reordered. Backends without it fall back to a dense copy in
// PermuteX/PermuteY, subject to the deprecated default budget.
type Permuter interface {
	// PermuteX returns a backend with old x bin i at position order[i];
	// order must be a permutation of 0..NX-1.
	PermuteX(order []int) (Backend, error)
	// PermuteY is PermuteX for the y axis.
	PermuteY(order []int) (Backend, error)
}

// The dense array is the reference Backend (and is mutable and sized).
var (
	_ Adder = (*binarray.BinArray)(nil)
	_ Sizer = (*binarray.BinArray)(nil)
)

// Spec carries everything a build pass needs to map a tuple to a cell:
// the schema positions of the two LHS attributes and the criterion, the
// fitted binners, and the criterion cardinality.
type Spec struct {
	XIdx, YIdx, CritIdx int
	XBinner, YBinner    binning.Binner
	NSeg                int
}

// resolveKind pins or auto-selects the backend for a build over src.
// For sharded builds each worker holds private count state, so the
// budget each one selects against is the plumbed budget divided by the
// worker count.
func resolveKind(spec Spec, src dataset.Source, opts Options, workers int) Kind {
	if opts.Kind != Auto {
		return opts.Kind
	}
	srcLen := int64(-1)
	if ss, ok := src.(dataset.SizedSource); ok {
		srcLen = int64(ss.Len())
	}
	budget := opts.budget()
	if budget > 0 && workers > 1 {
		budget /= int64(workers)
		if budget < 1 {
			budget = 1
		}
	}
	return selectKind(spec, srcLen, budget)
}

// Build fills a count backend from one pass over src. Options.Workers
// > 1 shards the pass across a worker pool when the source supports
// range sharding (dataset.Sharder) and falls back to the sequential
// build when it does not; Options.Kind/MemBudget pick the backend —
// Auto selects dense when the full grid fits the budget, sparse when
// the expected occupied cells fit, and spill-to-disk otherwise, so a
// grid the dense array refuses under the budget still builds. The
// resulting counts are bit-identical across every backend and worker
// count.
func Build(ctx context.Context, src dataset.Source, spec Spec, opts Options) (Backend, error) {
	if opts.Workers > 1 {
		if sh, ok := src.(dataset.Sharder); ok {
			return BuildSharded(ctx, sh, spec, opts)
		}
	}
	return buildOne(ctx, src, spec, resolveKind(spec, src, opts, 1), opts)
}

// buildOne builds a single (unsharded) backend of the given kind.
func buildOne(ctx context.Context, src dataset.Source, spec Spec, kind Kind, opts Options) (Backend, error) {
	switch kind {
	case Sparse:
		s, err := NewSparse(spec.XBinner.NumBins(), spec.YBinner.NumBins(), spec.NSeg)
		if err != nil {
			return nil, err
		}
		err = fillFrom(ctx, src, spec, nil, func(x, y, seg int) error {
			s.Add(x, y, seg)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return s, nil
	case Spill:
		b, err := newSpillBuilder(spec.XBinner.NumBins(), spec.YBinner.NumBins(), spec.NSeg, opts)
		if err != nil {
			return nil, err
		}
		if err := fillFrom(ctx, src, spec, nil, b.Add); err != nil {
			b.abort()
			return nil, err
		}
		sa, err := b.finalize()
		if err != nil {
			return nil, err
		}
		return sa, nil
	default:
		return buildDense(ctx, src, spec, opts.budget())
	}
}

func buildDense(ctx context.Context, src dataset.Source, spec Spec, budget int64) (*binarray.BinArray, error) {
	return binarray.BuildBudgetContext(ctx, src, spec.XIdx, spec.YIdx, spec.CritIdx,
		spec.XBinner, spec.YBinner, spec.NSeg, budget)
}

// fillCheckEvery matches the dense build's cooperative-cancellation
// granularity on the in-memory table fast path.
const fillCheckEvery = 1024

// fillFrom is the generic build pass feeding the sparse and spill
// builders (the dense backend keeps its own allocation-free pass in
// binarray): compiled binners, the Table row-index fast path, the same
// criterion validation and cancellation contract as the dense build.
func fillFrom(ctx context.Context, src dataset.Source, spec Spec, observe func(dataset.Tuple), add func(x, y, seg int) error) error {
	cx, cy := binning.Compile(spec.XBinner), binning.Compile(spec.YBinner)
	if tb, ok := src.(*dataset.Table); ok && observe == nil {
		point := cancelcheck.New(ctx).Point(fillCheckEvery)
		n := tb.Len()
		for i := 0; i < n; i++ {
			if err := point.Check(); err != nil {
				return err
			}
			t := tb.Row(i)
			seg := int(t[spec.CritIdx])
			if seg < 0 || seg >= spec.NSeg {
				return fmt.Errorf("counts: criterion value %d out of range 0..%d", seg, spec.NSeg-1)
			}
			if err := add(cx.Bin(t[spec.XIdx]), cy.Bin(t[spec.YIdx]), seg); err != nil {
				return err
			}
		}
		return nil
	}
	width := src.Schema().Len()
	return dataset.ForEachContext(ctx, src, func(t dataset.Tuple) error {
		if len(t) != width {
			return dataset.ErrSchemaMismatch
		}
		seg := int(t[spec.CritIdx])
		if seg < 0 || seg >= spec.NSeg {
			return fmt.Errorf("counts: criterion value %d out of range 0..%d", seg, spec.NSeg-1)
		}
		if err := add(cx.Bin(t[spec.XIdx]), cy.Bin(t[spec.YIdx]), seg); err != nil {
			return err
		}
		if observe != nil {
			observe(t)
		}
		return nil
	})
}

// BuildFused is the single-pass fast path fusing Ingest and Count: it
// streams src once, counting every tuple and invoking observe on it
// (for reservoir sampling) along the way. Used when the binners need
// no fitting pass — fixed-range equi-width or categorical axes. observe
// sees tuples in stream order; the tuple buffer may be reused, so
// observers that retain tuples must Clone. Backend selection follows
// the same Options policy as Build (the fused pass is sequential, so
// Workers is ignored).
func BuildFused(ctx context.Context, src dataset.Source, spec Spec, observe func(dataset.Tuple), opts Options) (Backend, error) {
	kind := resolveKind(spec, src, opts, 1)
	switch kind {
	case Sparse:
		s, err := NewSparse(spec.XBinner.NumBins(), spec.YBinner.NumBins(), spec.NSeg)
		if err != nil {
			return nil, err
		}
		err = fillFrom(ctx, src, spec, observe, func(x, y, seg int) error {
			s.Add(x, y, seg)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return s, nil
	case Spill:
		b, err := newSpillBuilder(spec.XBinner.NumBins(), spec.YBinner.NumBins(), spec.NSeg, opts)
		if err != nil {
			return nil, err
		}
		if err := fillFrom(ctx, src, spec, observe, b.Add); err != nil {
			b.abort()
			return nil, err
		}
		sa, err := b.finalize()
		if err != nil {
			return nil, err
		}
		return sa, nil
	}
	// Dense keeps the direct, allocation-free loop (guarded by
	// TestFusedZeroAllocPerTuple): no per-tuple closure indirection.
	ba, err := binarray.NewBudget(spec.XBinner.NumBins(), spec.YBinner.NumBins(), spec.NSeg, opts.budget())
	if err != nil {
		return nil, err
	}
	width := src.Schema().Len()
	cx, cy := binning.Compile(spec.XBinner), binning.Compile(spec.YBinner)
	err = dataset.ForEachContext(ctx, src, func(t dataset.Tuple) error {
		if len(t) != width {
			return dataset.ErrSchemaMismatch
		}
		seg := int(t[spec.CritIdx])
		if seg < 0 || seg >= spec.NSeg {
			return fmt.Errorf("counts: criterion value %d out of range 0..%d", seg, spec.NSeg-1)
		}
		ba.Add(cx.Bin(t[spec.XIdx]), cy.Bin(t[spec.YIdx]), seg)
		if observe != nil {
			observe(t)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ba, nil
}

// permutePositions validates a bin permutation, mirroring the dense
// array's contract: order[i] is the new position of old bin i.
func permutePositions(order []int, n int, axis string) ([]int, error) {
	if len(order) != n {
		return nil, fmt.Errorf("counts: order has %d entries for %d %s bins", len(order), n, axis)
	}
	seen := make([]bool, n)
	for _, p := range order {
		if p < 0 || p >= n || seen[p] {
			return nil, fmt.Errorf("counts: order is not a permutation: %v", order)
		}
		seen[p] = true
	}
	return order, nil
}

// PermuteX returns a backend with the x bins reordered by order (the
// categorical densest-cluster reorder). Backends implementing Permuter
// rebuild natively; anything else is densified through a snapshot
// round-trip (subject to the deprecated default budget) and permuted as
// a dense array.
func PermuteX(b Backend, order []int) (Backend, error) {
	switch v := b.(type) {
	case *binarray.BinArray:
		return binarray.PermuteX(v, order)
	case Permuter:
		return v.PermuteX(order)
	}
	d, err := densify(b)
	if err != nil {
		return nil, fmt.Errorf("counts: backend %T does not support x permutation: %w", b, err)
	}
	return binarray.PermuteX(d, order)
}

// PermuteY is PermuteX for the y axis.
func PermuteY(b Backend, order []int) (Backend, error) {
	switch v := b.(type) {
	case *binarray.BinArray:
		return binarray.PermuteY(v, order)
	case Permuter:
		return v.PermuteY(order)
	}
	d, err := densify(b)
	if err != nil {
		return nil, fmt.Errorf("counts: backend %T does not support y permutation: %w", b, err)
	}
	return binarray.PermuteY(d, order)
}

// densify copies any backend into a dense array by round-tripping the
// snapshot serialization — exact for any backend the dense format can
// represent under the deprecated default budget.
func densify(b Backend) (*binarray.BinArray, error) {
	var buf bytes.Buffer
	if err := Snapshot(b, &buf); err != nil {
		return nil, err
	}
	return binarray.Read(&buf)
}
