package counts

import (
	"context"
	"sync"

	"arcs/internal/binarray"
	"arcs/internal/dataset"
)

// Sharded is a count backend built by a partitioned parallel ingest:
// the source is split into disjoint range shards (dataset.Sharder),
// each worker fills a private dense array with no shared mutable state,
// and the shards are merged deterministically in shard order. Because
// count merging is plain uint32 addition, the merged array is
// byte-identical to a sequential single-pass build regardless of worker
// count or scheduling. Reads delegate to the merged dense array, so the
// probe path pays nothing for having been built in parallel.
type Sharded struct {
	merged  *binarray.BinArray
	workers int
	// shardN records the tuples each worker ingested — build provenance
	// for observability; not updated by later Adds.
	shardN []uint64
}

// BuildSharded partitions src into `workers` range shards and fills one
// private dense array per shard concurrently, then merges them in shard
// order. The worker count is clamped to the source size for sized
// sources; a canceled context aborts every worker and returns the
// cancellation error.
func BuildSharded(ctx context.Context, src dataset.Sharder, spec Spec, workers int) (*Sharded, error) {
	if workers < 1 {
		workers = 1
	}
	if ss, ok := src.(dataset.SizedSource); ok {
		if n := ss.Len(); n < workers {
			workers = n
		}
		if workers < 1 {
			workers = 1
		}
	}
	shards := make([]dataset.Source, workers)
	for i := range shards {
		sh, err := src.Shard(i, workers)
		if err != nil {
			return nil, err
		}
		shards[i] = sh
	}
	parts := make([]*binarray.BinArray, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parts[i], errs[i] = buildDense(ctx, shards[i], spec)
		}(i)
	}
	wg.Wait()
	// First error by shard index, so the reported failure is
	// deterministic when several shards hit the same bad data.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := parts[0]
	shardN := make([]uint64, workers)
	shardN[0] = parts[0].N()
	for i := 1; i < workers; i++ {
		shardN[i] = parts[i].N()
		if err := merged.Merge(parts[i]); err != nil {
			return nil, err
		}
	}
	return &Sharded{merged: merged, workers: workers, shardN: shardN}, nil
}

// withMerged is the permute helper: same build provenance, new counts.
func (s *Sharded) withMerged(m *binarray.BinArray) *Sharded {
	return &Sharded{merged: m, workers: s.workers, shardN: s.shardN}
}

// Merged exposes the underlying dense array (read-only by convention) —
// the seam equivalence tests use to compare byte-for-byte against a
// sequential build, and what snapshot serialization writes.
func (s *Sharded) Merged() *binarray.BinArray { return s.merged }

// Workers reports how many shards the build used after clamping.
func (s *Sharded) Workers() int { return s.workers }

// ShardTuples reports the per-shard tuple counts of the build pass.
func (s *Sharded) ShardTuples() []uint64 { return s.shardN }

// Backend delegation to the merged dense array.

// NX implements Backend.
func (s *Sharded) NX() int { return s.merged.NX() }

// NY implements Backend.
func (s *Sharded) NY() int { return s.merged.NY() }

// NSeg implements Backend.
func (s *Sharded) NSeg() int { return s.merged.NSeg() }

// N implements Backend.
func (s *Sharded) N() uint64 { return s.merged.N() }

// Count implements Backend.
func (s *Sharded) Count(x, y, seg int) uint32 { return s.merged.Count(x, y, seg) }

// CellTotal implements Backend.
func (s *Sharded) CellTotal(x, y int) uint32 { return s.merged.CellTotal(x, y) }

// Support implements Backend.
func (s *Sharded) Support(x, y, seg int) float64 { return s.merged.Support(x, y, seg) }

// Confidence implements Backend.
func (s *Sharded) Confidence(x, y, seg int) float64 { return s.merged.Confidence(x, y, seg) }

// SegmentTotal implements Backend.
func (s *Sharded) SegmentTotal(seg int) uint64 { return s.merged.SegmentTotal(seg) }

// Occupied implements Backend.
func (s *Sharded) Occupied(seg int, fn func(x, y int, segCount, cellTotal uint32)) {
	s.merged.Occupied(seg, fn)
}

// Add implements Adder: incremental tuples (core.Extend) land in the
// merged array directly.
func (s *Sharded) Add(x, y, seg int) { s.merged.Add(x, y, seg) }

// Stats implements Sizer.
func (s *Sharded) Stats() binarray.Stats { return s.merged.Stats() }

var (
	_ Adder = (*Sharded)(nil)
	_ Sizer = (*Sharded)(nil)
)
