package counts

import (
	"context"
	"fmt"
	"sync"

	"arcs/internal/binarray"
	"arcs/internal/dataset"
)

// Sharded is a count backend built by a partitioned parallel ingest:
// the source is split into disjoint range shards (dataset.Sharder),
// each worker fills private count state with no shared mutation, and
// the shards are merged deterministically in shard order. Because count
// merging is saturating addition — associative and commutative — the
// merged counts are byte-identical to a sequential single-pass build
// regardless of worker count or scheduling, whichever backend kind the
// workers filled. Reads delegate to the merged inner backend, so the
// probe path pays nothing for having been built in parallel.
type Sharded struct {
	inner   Backend
	kind    Kind
	workers int
	// shardN records the tuples each worker ingested — build provenance
	// for observability; not updated by later Adds.
	shardN []uint64
}

// makeShards clamps the worker count to the source size and cuts src
// into that many range shards.
func makeShards(src dataset.Sharder, workers int) ([]dataset.Source, int, error) {
	if workers < 1 {
		workers = 1
	}
	if ss, ok := src.(dataset.SizedSource); ok {
		if n := ss.Len(); n < workers {
			workers = n
		}
		if workers < 1 {
			workers = 1
		}
	}
	shards := make([]dataset.Source, workers)
	for i := range shards {
		sh, err := src.Shard(i, workers)
		if err != nil {
			return nil, 0, err
		}
		shards[i] = sh
	}
	return shards, workers, nil
}

// BuildSharded partitions src into Options.Workers range shards and
// fills private count state per shard concurrently, then merges in
// shard order. The backend kind follows the same Options policy as
// Build (each worker holds its own state, so Auto selects against the
// per-worker budget share). A canceled context aborts every worker and
// returns the cancellation error.
func BuildSharded(ctx context.Context, src dataset.Sharder, spec Spec, opts Options) (*Sharded, error) {
	shards, workers, err := makeShards(src, opts.Workers)
	if err != nil {
		return nil, err
	}
	kind := resolveKind(spec, src, opts, workers)
	if kind == Spill {
		return buildShardedSpill(ctx, shards, spec, opts, workers)
	}

	parts := make([]Backend, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parts[i], errs[i] = buildOne(ctx, shards[i], spec, kind, opts)
		}(i)
	}
	wg.Wait()
	// First error by shard index, so the reported failure is
	// deterministic when several shards hit the same bad data.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	shardN := make([]uint64, workers)
	for i, p := range parts {
		shardN[i] = p.N()
	}
	merged := parts[0]
	for i := 1; i < workers; i++ {
		if err := mergeInto(merged, parts[i]); err != nil {
			return nil, err
		}
	}
	return &Sharded{inner: merged, kind: kind, workers: workers, shardN: shardN}, nil
}

// mergeInto folds src's counts into dst in place (dst and src must be
// the same kind — BuildSharded guarantees it).
func mergeInto(dst, src Backend) error {
	switch d := dst.(type) {
	case *binarray.BinArray:
		s, ok := src.(*binarray.BinArray)
		if !ok {
			return fmt.Errorf("counts: cannot merge %T into dense array", src)
		}
		return d.Merge(s)
	case *SparseArray:
		s, ok := src.(*SparseArray)
		if !ok {
			return fmt.Errorf("counts: cannot merge %T into sparse array", src)
		}
		s.Cells(func(x, y int, cell []uint32) { d.addCell(x, y, cell) })
		d.n += s.n
		return nil
	default:
		return fmt.Errorf("counts: backend %T does not support merging", dst)
	}
}

// buildShardedSpill runs the spill build per shard — each worker
// accumulates and flushes its own sorted runs — then adopts every
// worker's runs into one builder and merges them in a single external
// pass. Run order cannot change the counts (saturating addition is
// associative and commutative), so the result is byte-identical to a
// sequential spill build, which is byte-identical to dense.
func buildShardedSpill(ctx context.Context, shards []dataset.Source, spec Spec, opts Options, workers int) (*Sharded, error) {
	builders := make([]*spillBuilder, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, err := newSpillBuilder(spec.XBinner.NumBins(), spec.YBinner.NumBins(), spec.NSeg, opts)
			if err != nil {
				errs[i] = err
				return
			}
			builders[i] = b
			errs[i] = fillFrom(ctx, shards[i], spec, nil, b.Add)
		}(i)
	}
	wg.Wait()
	abortAll := func() {
		for _, b := range builders {
			if b != nil {
				b.abort()
			}
		}
	}
	for _, err := range errs {
		if err != nil {
			abortAll()
			return nil, err
		}
	}
	shardN := make([]uint64, workers)
	for i, b := range builders {
		shardN[i] = b.n
	}
	root := builders[0]
	for i := 1; i < workers; i++ {
		if err := root.mergeFrom(builders[i]); err != nil {
			abortAll()
			return nil, err
		}
	}
	merged, err := root.finalize()
	if err != nil {
		return nil, err
	}
	return &Sharded{inner: merged, kind: Spill, workers: workers, shardN: shardN}, nil
}

// withInner is the permute helper: same build provenance, new counts.
func (s *Sharded) withInner(b Backend) *Sharded {
	return &Sharded{inner: b, kind: s.kind, workers: s.workers, shardN: s.shardN}
}

// Inner exposes the merged backend (read-only by convention) — the
// seam equivalence tests use to compare byte-for-byte against a
// sequential build, and what snapshot serialization writes.
func (s *Sharded) Inner() Backend { return s.inner }

// Kind reports the backend kind the workers filled.
func (s *Sharded) Kind() Kind { return s.kind }

// Workers reports how many shards the build used after clamping.
func (s *Sharded) Workers() int { return s.workers }

// ShardTuples reports the per-shard tuple counts of the build pass.
func (s *Sharded) ShardTuples() []uint64 { return s.shardN }

// Backend delegation to the merged inner backend.

// NX implements Backend.
func (s *Sharded) NX() int { return s.inner.NX() }

// NY implements Backend.
func (s *Sharded) NY() int { return s.inner.NY() }

// NSeg implements Backend.
func (s *Sharded) NSeg() int { return s.inner.NSeg() }

// N implements Backend.
func (s *Sharded) N() uint64 { return s.inner.N() }

// Count implements Backend.
func (s *Sharded) Count(x, y, seg int) uint32 { return s.inner.Count(x, y, seg) }

// CellTotal implements Backend.
func (s *Sharded) CellTotal(x, y int) uint32 { return s.inner.CellTotal(x, y) }

// Support implements Backend.
func (s *Sharded) Support(x, y, seg int) float64 { return s.inner.Support(x, y, seg) }

// Confidence implements Backend.
func (s *Sharded) Confidence(x, y, seg int) float64 { return s.inner.Confidence(x, y, seg) }

// SegmentTotal implements Backend.
func (s *Sharded) SegmentTotal(seg int) uint64 { return s.inner.SegmentTotal(seg) }

// Occupied implements Backend.
func (s *Sharded) Occupied(seg int, fn func(x, y int, segCount, cellTotal uint32)) {
	s.inner.Occupied(seg, fn)
}

// Cells implements Backend.
func (s *Sharded) Cells(fn func(x, y int, cell []uint32)) { s.inner.Cells(fn) }

// Add implements Adder when the inner backend is mutable: incremental
// tuples (core.Extend) land in the merged counts directly. Callers
// must gate on AsAdder — a spill-backed Sharded has no mutable inner
// and Add panics.
func (s *Sharded) Add(x, y, seg int) {
	a, ok := s.inner.(Adder)
	if !ok {
		panic(fmt.Sprintf("counts: sharded %s backend is immutable; gate Add on counts.AsAdder", s.kind))
	}
	a.Add(x, y, seg)
}

// Stats implements Sizer.
func (s *Sharded) Stats() binarray.Stats {
	if szr, ok := s.inner.(Sizer); ok {
		return szr.Stats()
	}
	return binarray.Stats{Cells: s.inner.NX() * s.inner.NY()}
}

// PermuteX implements Permuter by permuting the inner backend and
// keeping the build provenance.
func (s *Sharded) PermuteX(order []int) (Backend, error) {
	m, err := PermuteX(s.inner, order)
	if err != nil {
		return nil, err
	}
	return s.withInner(m), nil
}

// PermuteY implements Permuter for the y axis.
func (s *Sharded) PermuteY(order []int) (Backend, error) {
	m, err := PermuteY(s.inner, order)
	if err != nil {
		return nil, err
	}
	return s.withInner(m), nil
}

var (
	_ Adder    = (*Sharded)(nil)
	_ Sizer    = (*Sharded)(nil)
	_ Permuter = (*Sharded)(nil)
)
