package setcover

import (
	"math/rand"
	"testing"

	"arcs/internal/bitop"
	"arcs/internal/grid"
)

func mk(t *testing.T, rows ...string) *grid.Bitmap {
	t.Helper()
	bm, err := grid.New(len(rows), len(rows[0]))
	if err != nil {
		t.Fatal(err)
	}
	for r, line := range rows {
		for c, ch := range line {
			if ch == '#' {
				bm.Set(r, c)
			}
		}
	}
	return bm
}

func covers(t *testing.T, bm *grid.Bitmap, cover []grid.Rect) {
	t.Helper()
	for r := 0; r < bm.Rows(); r++ {
		for c := 0; c < bm.Cols(); c++ {
			in := false
			for _, rect := range cover {
				if rect.Contains(r, c) {
					in = true
					if !bm.Get(r, c) {
						t.Fatalf("cover rect %v includes unset cell (%d,%d)", rect, r, c)
					}
				}
			}
			if bm.Get(r, c) && !in {
				t.Fatalf("set cell (%d,%d) uncovered", r, c)
			}
		}
	}
}

func TestMaximalRectsSquare(t *testing.T) {
	bm := mk(t,
		"##.",
		"##.",
		"...",
	)
	rects := MaximalRects(bm)
	if len(rects) != 1 {
		t.Fatalf("rects = %v, want one 2x2", rects)
	}
	if rects[0] != (grid.Rect{R0: 0, C0: 0, R1: 1, C1: 1}) {
		t.Errorf("rect = %v", rects[0])
	}
}

func TestMaximalRectsCross(t *testing.T) {
	// A plus sign has two maximal rectangles: the horizontal and the
	// vertical bars.
	bm := mk(t,
		".#.",
		"###",
		".#.",
	)
	rects := MaximalRects(bm)
	if len(rects) != 2 {
		t.Fatalf("rects = %v, want 2", rects)
	}
}

func TestMaximalRectsEmpty(t *testing.T) {
	bm, _ := grid.New(3, 3)
	if got := MaximalRects(bm); len(got) != 0 {
		t.Errorf("rects = %v", got)
	}
}

func TestGreedyCovers(t *testing.T) {
	bm := mk(t,
		"####..",
		"####..",
		"..####",
		"..####",
	)
	cover := Greedy(bm)
	covers(t, bm, cover)
	if len(cover) > 3 {
		t.Errorf("greedy used %d rects; expect <= 3", len(cover))
	}
}

func TestGreedyLShape(t *testing.T) {
	bm := mk(t,
		"#..",
		"#..",
		"###",
	)
	cover := Greedy(bm)
	covers(t, bm, cover)
	if len(cover) != 2 {
		t.Errorf("L shape needs 2 rects, greedy used %d: %v", len(cover), cover)
	}
}

func TestExactOptimal(t *testing.T) {
	bm := mk(t,
		"#.#",
		"###",
		"#.#",
	)
	cover, err := Exact(bm)
	if err != nil {
		t.Fatal(err)
	}
	covers(t, bm, cover)
	// Optimal: 3 rects (two vertical bars + middle row, or equivalents).
	if len(cover) != 3 {
		t.Errorf("exact cover used %d rects, want 3: %v", len(cover), cover)
	}
}

func TestExactEmptyAndTooLarge(t *testing.T) {
	empty, _ := grid.New(2, 2)
	cover, err := Exact(empty)
	if err != nil || cover != nil {
		t.Errorf("empty: %v, %v", cover, err)
	}
	big, _ := grid.New(9, 9)
	for r := 0; r < 9; r++ {
		for c := 0; c < 9; c++ {
			big.Set(r, c)
		}
	}
	if _, err := Exact(big); err == nil {
		t.Error("81 cells should exceed the exact limit")
	}
}

func TestExactNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		bm, _ := grid.New(5, 6)
		for r := 0; r < 5; r++ {
			for c := 0; c < 6; c++ {
				if rng.Float64() < 0.45 {
					bm.Set(r, c)
				}
			}
		}
		if bm.PopCount() == 0 || bm.PopCount() > MaxExactCells {
			continue
		}
		greedy := Greedy(bm)
		exact, err := Exact(bm)
		if err != nil {
			t.Fatal(err)
		}
		covers(t, bm, greedy)
		covers(t, bm, exact)
		if len(exact) > len(greedy) {
			t.Fatalf("trial %d: exact (%d) worse than greedy (%d)\n%s",
				trial, len(exact), len(greedy), bm)
		}
	}
}

func TestBitOpNearOptimal(t *testing.T) {
	// The paper's claim: BitOp's greedy clustering is near-optimal.
	// Compare BitOp's cluster count with the exact minimum on random
	// small grids; allow at most a two-rectangle gap.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		bm, _ := grid.New(5, 6)
		for r := 0; r < 5; r++ {
			for c := 0; c < 6; c++ {
				if rng.Float64() < 0.4 {
					bm.Set(r, c)
				}
			}
		}
		if bm.PopCount() == 0 {
			continue
		}
		exact, err := Exact(bm)
		if err != nil {
			t.Fatal(err)
		}
		bitopClusters := bitop.Cluster(bm, bitop.Options{})
		if len(bitopClusters) > len(exact)+2 {
			t.Errorf("trial %d: BitOp used %d clusters vs optimal %d\n%s",
				trial, len(bitopClusters), len(exact), bm)
		}
	}
}
