// Package setcover provides reference rectangle-cover algorithms for the
// clustering problem. The paper observes (§1) that finding the fewest
// rectangular clusters covering the rule grid is an instance of the
// NP-complete k-decision set-covering problem and that greedy selection
// is near-optimal; this package supplies both the classical greedy
// set-cover over maximal all-set rectangles and an exact branch-and-bound
// cover for small grids, so BitOp's cluster counts can be compared
// against the true optimum in tests and ablation benchmarks.
package setcover

import (
	"fmt"
	"math/bits"

	"arcs/internal/grid"
)

// MaximalRects enumerates every maximal all-set rectangle of the bitmap:
// rectangles containing only set cells that cannot be extended in any of
// the four directions. These are the canonical candidate set for
// rectangle covering.
func MaximalRects(bm *grid.Bitmap) []grid.Rect {
	rows, cols := bm.Rows(), bm.Cols()
	// 2D prefix sums of set cells for O(1) all-set tests.
	pre := make([][]int, rows+1)
	for r := range pre {
		pre[r] = make([]int, cols+1)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := 0
			if bm.Get(r, c) {
				v = 1
			}
			pre[r+1][c+1] = v + pre[r][c+1] + pre[r+1][c] - pre[r][c]
		}
	}
	full := func(r0, c0, r1, c1 int) bool {
		if r0 < 0 || c0 < 0 || r1 >= rows || c1 >= cols {
			return false
		}
		area := (r1 - r0 + 1) * (c1 - c0 + 1)
		sum := pre[r1+1][c1+1] - pre[r0][c1+1] - pre[r1+1][c0] + pre[r0][c0]
		return sum == area
	}
	var out []grid.Rect
	for r0 := 0; r0 < rows; r0++ {
		for c0 := 0; c0 < cols; c0++ {
			for r1 := r0; r1 < rows; r1++ {
				if !full(r0, c0, r1, c0) {
					break
				}
				for c1 := c0; c1 < cols; c1++ {
					if !full(r0, c0, r1, c1) {
						break
					}
					// Maximal iff no single-step extension stays all-set.
					if full(r0-1, c0, r0-1, c1) || full(r1+1, c0, r1+1, c1) ||
						full(r0, c0-1, r1, c0-1) || full(r0, c1+1, r1, c1+1) {
						continue
					}
					out = append(out, grid.Rect{R0: r0, C0: c0, R1: r1, C1: c1})
				}
			}
		}
	}
	return out
}

// Greedy covers all set cells with maximal rectangles by repeatedly
// choosing the rectangle covering the most still-uncovered cells — the
// classical ln(n)-approximate set-cover algorithm. Ties break toward the
// lexicographically smallest rectangle for determinism.
func Greedy(bm *grid.Bitmap) []grid.Rect {
	cands := MaximalRects(bm)
	if len(cands) == 0 {
		return nil
	}
	uncovered := bm.Clone()
	var cover []grid.Rect
	for uncovered.Any() {
		best, bestGain := -1, 0
		for i, r := range cands {
			gain := 0
			for rr := r.R0; rr <= r.R1; rr++ {
				for cc := r.C0; cc <= r.C1; cc++ {
					if uncovered.Get(rr, cc) {
						gain++
					}
				}
			}
			if gain > bestGain || (gain == bestGain && gain > 0 && best >= 0 && lexLess(r, cands[best])) {
				best, bestGain = i, gain
			}
		}
		if best < 0 || bestGain == 0 {
			break
		}
		cover = append(cover, cands[best])
		uncovered.ClearRect(cands[best])
	}
	return cover
}

func lexLess(a, b grid.Rect) bool {
	if a.R0 != b.R0 {
		return a.R0 < b.R0
	}
	if a.C0 != b.C0 {
		return a.C0 < b.C0
	}
	if a.R1 != b.R1 {
		return a.R1 < b.R1
	}
	return a.C1 < b.C1
}

// MaxExactCells bounds the grids Exact accepts: the branch-and-bound
// represents the set cells as a 64-bit mask.
const MaxExactCells = 64

// Exact computes a minimum rectangle cover of the set cells by
// branch-and-bound over the maximal rectangles. It is exponential in the
// worst case and rejects bitmaps with more than MaxExactCells set cells;
// it exists as a test oracle and for the optimality-gap benchmarks.
func Exact(bm *grid.Bitmap) ([]grid.Rect, error) {
	k := bm.PopCount()
	if k == 0 {
		return nil, nil
	}
	if k > MaxExactCells {
		return nil, fmt.Errorf("setcover: %d set cells exceeds exact-solver limit %d", k, MaxExactCells)
	}
	// Index the set cells.
	idx := make(map[[2]int]uint, k)
	i := uint(0)
	for r := 0; r < bm.Rows(); r++ {
		for c := 0; c < bm.Cols(); c++ {
			if bm.Get(r, c) {
				idx[[2]int{r, c}] = i
				i++
			}
		}
	}
	cands := MaximalRects(bm)
	masks := make([]uint64, len(cands))
	for ci, rect := range cands {
		var m uint64
		for r := rect.R0; r <= rect.R1; r++ {
			for c := rect.C0; c <= rect.C1; c++ {
				m |= 1 << idx[[2]int{r, c}]
			}
		}
		masks[ci] = m
	}
	all := uint64(1)<<k - 1
	if k == 64 {
		all = ^uint64(0)
	}

	// Upper bound from greedy.
	bestLen := len(Greedy(bm))
	var best []int
	var cur []int

	// cellCands[j] lists candidates covering cell j, for branching on
	// the lowest uncovered cell.
	cellCands := make([][]int, k)
	for ci, m := range masks {
		mm := m
		for mm != 0 {
			j := bits.TrailingZeros64(mm)
			cellCands[j] = append(cellCands[j], ci)
			mm &= mm - 1
		}
	}

	var dfs func(uncovered uint64)
	dfs = func(uncovered uint64) {
		if uncovered == 0 {
			if best == nil || len(cur) < bestLen {
				bestLen = len(cur)
				best = append(best[:0], cur...)
			}
			return
		}
		if len(cur) >= bestLen {
			return // cannot beat the incumbent
		}
		j := bits.TrailingZeros64(uncovered)
		for _, ci := range cellCands[j] {
			cur = append(cur, ci)
			dfs(uncovered &^ masks[ci])
			cur = cur[:len(cur)-1]
		}
	}
	dfs(all)

	if best == nil {
		// Greedy's solution is already optimal; reconstruct it.
		return Greedy(bm), nil
	}
	out := make([]grid.Rect, len(best))
	for i, ci := range best {
		out[i] = cands[ci]
	}
	return out, nil
}
