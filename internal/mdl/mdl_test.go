package mdl

import (
	"math"
	"testing"
)

func TestCostBasics(t *testing.T) {
	w := DefaultWeights()
	c, err := Cost(4, 8, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-(2+3)) > 1e-12 {
		t.Errorf("Cost(4, 8) = %v, want 5", c)
	}
}

func TestCostGuardedZeros(t *testing.T) {
	w := DefaultWeights()
	if c, _ := Cost(0, 0, w); c != 0 {
		t.Errorf("Cost(0,0) = %v", c)
	}
	if c, _ := Cost(1, 0, w); c != 0 {
		t.Errorf("Cost(1,0) = %v, want 0 (log2(1)=0, log2(0) guarded)", c)
	}
}

func TestCostWeights(t *testing.T) {
	// Heavier cluster weight penalizes many-cluster segmentations more.
	many, _ := Cost(16, 2, Weights{Clusters: 3, Errors: 1})
	few, _ := Cost(2, 2, Weights{Clusters: 3, Errors: 1})
	if many <= few {
		t.Errorf("wc bias broken: many=%v few=%v", many, few)
	}
	// Heavier error weight penalizes high error more.
	hiErr, _ := Cost(2, 64, Weights{Clusters: 1, Errors: 5})
	loErr, _ := Cost(2, 2, Weights{Clusters: 1, Errors: 5})
	if hiErr <= loErr {
		t.Errorf("we bias broken: hi=%v lo=%v", hiErr, loErr)
	}
}

func TestCostValidation(t *testing.T) {
	if _, err := Cost(-1, 0, DefaultWeights()); err == nil {
		t.Error("negative cluster count should error")
	}
	if _, err := Cost(1, -1, DefaultWeights()); err == nil {
		t.Error("negative errors should error")
	}
	if _, err := Cost(1, 1, Weights{Clusters: -1, Errors: 1}); err == nil {
		t.Error("negative weight should error")
	}
}

func TestBetter(t *testing.T) {
	if !Better(1.0, 2.0, 0.5) {
		t.Error("1.0 improves 2.0 by more than 0.5")
	}
	if Better(1.8, 2.0, 0.5) {
		t.Error("improvement of 0.2 is within epsilon 0.5")
	}
	if Better(2.0, 2.0, 0) {
		t.Error("equal costs are not an improvement")
	}
}

func TestCostMonotonicity(t *testing.T) {
	w := DefaultWeights()
	prev := -1.0
	for clusters := 1; clusters <= 64; clusters *= 2 {
		c, _ := Cost(clusters, 10, w)
		if c <= prev {
			t.Errorf("cost not increasing in clusters: %v after %v", c, prev)
		}
		prev = c
	}
	prev = -1
	for errs := 1.0; errs <= 1024; errs *= 4 {
		c, _ := Cost(3, errs, w)
		if c <= prev {
			t.Errorf("cost not increasing in errors: %v after %v", c, prev)
		}
		prev = c
	}
}
