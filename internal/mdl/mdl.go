// Package mdl implements the Minimum Description Length cost model of
// paper §3.6, used to score candidate segmentations. The best model for
// encoding data minimizes the cost of describing the model (the clusters)
// plus the cost of describing the data using the model (the tuples the
// clusters misclassify):
//
//	cost = wc·log2(|C|) + we·log2(errors)
//
// where |C| is the number of clusters and errors is the summed
// false-positives + false-negatives over a sample. The logarithms give a
// favorable non-linear separation between close and near-optimal
// solutions; the weights let the user bias the search toward fewer
// clusters (wc) or lower error (we).
package mdl

import (
	"fmt"

	"arcs/internal/stats"
)

// Weights biases the cost function. The paper's default is wc = we = 1.
type Weights struct {
	Clusters float64 // wc: penalty weight on the number of clusters
	Errors   float64 // we: penalty weight on the error count
}

// DefaultWeights returns the unbiased wc = we = 1 configuration.
func DefaultWeights() Weights { return Weights{Clusters: 1, Errors: 1} }

func (w Weights) validate() error {
	if w.Clusters < 0 || w.Errors < 0 {
		return fmt.Errorf("mdl: weights must be non-negative, got %+v", w)
	}
	return nil
}

// Breakdown splits an MDL cost into its two terms: the model-description
// term wc·log2(|C|) and the data-description term we·log2(errors). The
// observability layer reports both so a run shows whether the search is
// trading clusters for errors or vice versa.
type Breakdown struct {
	// Total is ClusterTerm + ErrorTerm, identical to Cost's result.
	Total float64
	// ClusterTerm is wc·log2(numClusters) — the cost of the model.
	ClusterTerm float64
	// ErrorTerm is we·log2(errors) — the cost of the exceptions.
	ErrorTerm float64
}

// Cost computes the MDL cost of a segmentation with numClusters clusters
// and the given summed error count. Zero clusters or zero errors
// contribute zero bits (log2 is guarded), so a perfect one-cluster
// segmentation costs 0.
func Cost(numClusters int, errors float64, w Weights) (float64, error) {
	b, err := CostBreakdown(numClusters, errors, w)
	return b.Total, err
}

// CostBreakdown is Cost with the per-term decomposition exposed.
func CostBreakdown(numClusters int, errors float64, w Weights) (Breakdown, error) {
	if err := w.validate(); err != nil {
		return Breakdown{}, err
	}
	if numClusters < 0 {
		return Breakdown{}, fmt.Errorf("mdl: negative cluster count %d", numClusters)
	}
	if errors < 0 {
		return Breakdown{}, fmt.Errorf("mdl: negative error count %g", errors)
	}
	b := Breakdown{
		ClusterTerm: w.Clusters * stats.Log2(float64(numClusters)),
		ErrorTerm:   w.Errors * stats.Log2(errors),
	}
	b.Total = b.ClusterTerm + b.ErrorTerm
	return b, nil
}

// Better reports whether cost a improves on cost b by more than epsilon —
// the convergence test the heuristic optimizer uses ("until there is no
// improvement of the clustered association rules within some ε", §3.7).
func Better(a, b, epsilon float64) bool {
	return a < b-epsilon
}
