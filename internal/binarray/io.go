package binarray

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Serialization of the BinArray. The paper's headline efficiency claim —
// changing thresholds or criterion values re-mines instantly because the
// counts stay in memory — extends across process restarts by snapshotting
// the counts: a saved BinArray restores in milliseconds where re-binning
// a 10M-tuple source takes a full pass.
//
// Format (little-endian): magic "ARCSBA1\n", then nx, ny, nseg, n as
// uint64, then the raw count array.

var baMagic = [8]byte{'A', 'R', 'C', 'S', 'B', 'A', '1', '\n'}

// Write snapshots the BinArray.
func (b *BinArray) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(baMagic[:]); err != nil {
		return err
	}
	for _, v := range []uint64{uint64(b.nx), uint64(b.ny), uint64(b.nseg), b.n} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, b.counts); err != nil {
		return err
	}
	return bw.Flush()
}

// Read restores a BinArray written by Write, validating the header and
// internal consistency (the stored grand total must match the cell
// totals).
func Read(r io.Reader) (*BinArray, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("binarray: reading header: %w", err)
	}
	if magic != baMagic {
		return nil, fmt.Errorf("binarray: bad magic %q", magic[:])
	}
	var dims [4]uint64
	for i := range dims {
		if err := binary.Read(br, binary.LittleEndian, &dims[i]); err != nil {
			return nil, fmt.Errorf("binarray: reading dimensions: %w", err)
		}
	}
	const maxDim = 1 << 20
	if dims[0] == 0 || dims[1] == 0 || dims[2] == 0 ||
		dims[0] > maxDim || dims[1] > maxDim || dims[2] > maxDim {
		return nil, fmt.Errorf("binarray: implausible dimensions %v", dims[:3])
	}
	cells := dims[0] * dims[1] * (dims[2] + 1)
	if cells > (1 << 31) {
		return nil, fmt.Errorf("binarray: snapshot too large (%d cells)", cells)
	}
	ba, err := New(int(dims[0]), int(dims[1]), int(dims[2]))
	if err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, ba.counts); err != nil {
		return nil, fmt.Errorf("binarray: reading counts: %w", err)
	}
	ba.n = dims[3]
	// Consistency: the grand total of cell totals must equal n, and each
	// cell total must equal its per-segment sum.
	var grand uint64
	for x := 0; x < ba.nx; x++ {
		for y := 0; y < ba.ny; y++ {
			var sum uint32
			for s := 0; s < ba.nseg; s++ {
				sum += ba.Count(x, y, s)
			}
			if sum != ba.CellTotal(x, y) {
				return nil, fmt.Errorf("binarray: corrupt snapshot: cell (%d,%d) total mismatch", x, y)
			}
			grand += uint64(sum)
		}
	}
	if grand != ba.n {
		return nil, fmt.Errorf("binarray: corrupt snapshot: grand total %d, stored N %d", grand, ba.n)
	}
	return ba, nil
}
