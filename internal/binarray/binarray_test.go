package binarray

import (
	"math"
	"testing"
	"testing/quick"

	"arcs/internal/binning"
	"arcs/internal/dataset"
)

func TestNewValidation(t *testing.T) {
	for _, dims := range [][3]int{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 2, 2}} {
		if _, err := New(dims[0], dims[1], dims[2]); err == nil {
			t.Errorf("dims %v should be rejected", dims)
		}
	}
	ba, err := New(3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ba.NX() != 3 || ba.NY() != 4 || ba.NSeg() != 2 {
		t.Errorf("dims = %d, %d, %d", ba.NX(), ba.NY(), ba.NSeg())
	}
}

func TestAddAndCounts(t *testing.T) {
	ba, _ := New(2, 2, 3)
	ba.Add(0, 0, 1)
	ba.Add(0, 0, 1)
	ba.Add(0, 0, 2)
	ba.Add(1, 1, 0)
	if got := ba.Count(0, 0, 1); got != 2 {
		t.Errorf("Count(0,0,1) = %d", got)
	}
	if got := ba.CellTotal(0, 0); got != 3 {
		t.Errorf("CellTotal(0,0) = %d", got)
	}
	if got := ba.Count(0, 0, 0); got != 0 {
		t.Errorf("Count(0,0,0) = %d", got)
	}
	if ba.N() != 4 {
		t.Errorf("N = %d", ba.N())
	}
	if got := ba.SegmentTotal(1); got != 2 {
		t.Errorf("SegmentTotal(1) = %d", got)
	}
}

func TestSupportConfidence(t *testing.T) {
	ba, _ := New(2, 2, 2)
	// 8 tuples in cell (0,0): 6 of seg 0, 2 of seg 1; 2 tuples elsewhere.
	for i := 0; i < 6; i++ {
		ba.Add(0, 0, 0)
	}
	ba.Add(0, 0, 1)
	ba.Add(0, 0, 1)
	ba.Add(1, 0, 0)
	ba.Add(1, 1, 1)
	if got := ba.Support(0, 0, 0); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("Support = %v, want 0.6", got)
	}
	if got := ba.Confidence(0, 0, 0); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Confidence = %v, want 0.75", got)
	}
	if got := ba.Confidence(0, 1, 0); got != 0 {
		t.Errorf("Confidence of empty cell = %v", got)
	}
}

func TestZeroValueSupportSafe(t *testing.T) {
	ba, _ := New(1, 1, 1)
	if ba.Support(0, 0, 0) != 0 {
		t.Error("Support on empty array should be 0")
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	ba, _ := New(2, 2, 2)
	for _, c := range [][3]int{{2, 0, 0}, {0, 2, 0}, {0, 0, 2}, {-1, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add%v should panic", c)
				}
			}()
			ba.Add(c[0], c[1], c[2])
		}()
	}
}

func TestOccupiedDeterministicOrder(t *testing.T) {
	ba, _ := New(3, 3, 1)
	ba.Add(2, 0, 0)
	ba.Add(0, 1, 0)
	ba.Add(1, 2, 0)
	var cells [][2]int
	ba.Occupied(0, func(x, y int, c, total uint32) {
		cells = append(cells, [2]int{x, y})
		if c != 1 || total != 1 {
			t.Errorf("cell (%d,%d): count=%d total=%d", x, y, c, total)
		}
	})
	want := [][2]int{{0, 1}, {1, 2}, {2, 0}}
	if len(cells) != len(want) {
		t.Fatalf("cells = %v", cells)
	}
	for i := range want {
		if cells[i] != want[i] {
			t.Errorf("cell order %v, want %v", cells, want)
			break
		}
	}
}

func TestReset(t *testing.T) {
	ba, _ := New(2, 2, 2)
	ba.Add(1, 1, 1)
	ba.Reset()
	if ba.N() != 0 || ba.Count(1, 1, 1) != 0 || ba.CellTotal(1, 1) != 0 {
		t.Error("Reset did not zero counts")
	}
}

func TestInvariantTotalsMatch(t *testing.T) {
	// Property: after arbitrary Adds, cell totals equal the sum of the
	// per-segment counts, and N equals the grand total.
	f := func(ops []uint8) bool {
		ba, _ := New(4, 4, 3)
		for _, op := range ops {
			x := int(op) % 4
			y := int(op>>2) % 4
			s := int(op>>4) % 3
			ba.Add(x, y, s)
		}
		var grand uint64
		for x := 0; x < 4; x++ {
			for y := 0; y < 4; y++ {
				var sum uint32
				for s := 0; s < 3; s++ {
					sum += ba.Count(x, y, s)
				}
				if sum != ba.CellTotal(x, y) {
					return false
				}
				grand += uint64(sum)
			}
		}
		return grand == ba.N()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuildFromSource(t *testing.T) {
	schema := dataset.NewSchema(
		dataset.Attribute{Name: "age", Kind: dataset.Quantitative},
		dataset.Attribute{Name: "salary", Kind: dataset.Quantitative},
		dataset.Attribute{Name: "group", Kind: dataset.Categorical},
	)
	tb := dataset.NewTable(schema)
	rows := [][]interface{}{
		{25, 30_000.0, "A"},
		{25, 31_000.0, "A"},
		{45, 90_000.0, "B"},
		{75, 10_000.0, "A"},
	}
	for _, r := range rows {
		if err := tb.AppendValues(r...); err != nil {
			t.Fatal(err)
		}
	}
	xb, _ := binning.NewEquiWidth(20, 80, 3)     // bins: [20,40) [40,60) [60,80]
	yb, _ := binning.NewEquiWidth(0, 120_000, 3) // bins of 40k
	ba, err := Build(tb, 0, 1, 2, xb, yb, schema.Attr("group").NumCategories())
	if err != nil {
		t.Fatal(err)
	}
	if ba.N() != 4 {
		t.Fatalf("N = %d", ba.N())
	}
	codeA, _ := schema.Attr("group").LookupCategory("A")
	codeB, _ := schema.Attr("group").LookupCategory("B")
	if got := ba.Count(0, 0, codeA); got != 2 {
		t.Errorf("young low-salary A count = %d, want 2", got)
	}
	if got := ba.Count(1, 2, codeB); got != 1 {
		t.Errorf("middle high-salary B count = %d, want 1", got)
	}
	if got := ba.Count(2, 0, codeA); got != 1 {
		t.Errorf("old low-salary A count = %d, want 1", got)
	}
}

func TestBuildRejectsBadCriterion(t *testing.T) {
	schema := dataset.NewSchema(
		dataset.Attribute{Name: "x", Kind: dataset.Quantitative},
		dataset.Attribute{Name: "y", Kind: dataset.Quantitative},
		dataset.Attribute{Name: "g", Kind: dataset.Categorical},
	)
	tb := dataset.NewTable(schema)
	tb.MustAppend(dataset.Tuple{1, 1, 5}) // group code 5 with nseg 2
	xb, _ := binning.NewEquiWidth(0, 10, 2)
	yb, _ := binning.NewEquiWidth(0, 10, 2)
	if _, err := Build(tb, 0, 1, 2, xb, yb, 2); err == nil {
		t.Error("criterion code out of range should error")
	}
}
