package binarray

import "testing"

func TestMergeAddsCounts(t *testing.T) {
	a, err := New(3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	a.Add(0, 0, 0)
	a.Add(2, 1, 1)
	b.Add(0, 0, 0)
	b.Add(0, 0, 1)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Count(0, 0, 0); got != 2 {
		t.Errorf("Count(0,0,0) = %d, want 2", got)
	}
	if got := a.Count(0, 0, 1); got != 1 {
		t.Errorf("Count(0,0,1) = %d, want 1", got)
	}
	if got := a.Count(2, 1, 1); got != 1 {
		t.Errorf("Count(2,1,1) = %d, want 1", got)
	}
	if got := a.CellTotal(0, 0); got != 3 {
		t.Errorf("CellTotal(0,0) = %d, want 3", got)
	}
	if got := a.N(); got != 4 {
		t.Errorf("N() = %d, want 4", got)
	}
	// The merge source is untouched.
	if got := b.N(); got != 2 {
		t.Errorf("merge source N() = %d, want 2", got)
	}
}

func TestMergeRejectsDimensionMismatch(t *testing.T) {
	a, err := New(3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, dims := range [][3]int{{2, 2, 2}, {3, 3, 2}, {3, 2, 1}} {
		b, err := New(dims[0], dims[1], dims[2])
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Merge(b); err == nil {
			t.Errorf("Merge of %v-dimensioned array succeeded, want error", dims)
		}
	}
}
