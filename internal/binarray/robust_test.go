package binarray

import (
	"context"
	"errors"
	"strings"
	"testing"

	"arcs/internal/binning"
	"arcs/internal/dataset"
)

func TestNewBudgetRejectsOversizedGrid(t *testing.T) {
	// 1000×1000×(9+1) uint32 = 40 MB; a 1 MB budget must refuse it and
	// name both the computed size and the budget so operators can tune.
	_, err := NewBudget(1000, 1000, 9, 1<<20)
	if err == nil {
		t.Fatal("oversized grid accepted")
	}
	if !strings.Contains(err.Error(), "40000000 bytes") || !strings.Contains(err.Error(), "1048576") {
		t.Errorf("error should carry computed size and budget: %v", err)
	}
}

func TestNewBudgetDisabledStillRejectsOverflow(t *testing.T) {
	// Element count overflowing the int range must fail even with the
	// budget check disabled — this is the guard against silent index
	// wraparound, not a tunable.
	if _, err := NewBudget(1<<31, 1<<31, 1<<31, 0); err == nil {
		t.Fatal("overflowing dimensions accepted with budget disabled")
	}
	if _, err := MemNeeded(1<<31, 1<<31, 1<<62-2); err == nil {
		t.Fatal("element-count overflow accepted")
	}
}

func TestMemNeeded(t *testing.T) {
	got, err := MemNeeded(50, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(50 * 50 * 3 * 4); got != want {
		t.Errorf("MemNeeded(50,50,2) = %d, want %d", got, want)
	}
}

func TestNewUsesDefaultBudget(t *testing.T) {
	old := DefaultMemBudget
	DefaultMemBudget = 1 << 10
	defer func() { DefaultMemBudget = old }()
	if _, err := New(100, 100, 3); err == nil {
		t.Error("New ignored DefaultMemBudget")
	}
	if _, err := New(4, 4, 3); err != nil {
		t.Errorf("small grid rejected under tight budget: %v", err)
	}
}

func TestBuildContextCancel(t *testing.T) {
	schema := dataset.NewSchema(
		dataset.Attribute{Name: "x", Kind: dataset.Quantitative},
		dataset.Attribute{Name: "y", Kind: dataset.Quantitative},
		dataset.Attribute{Name: "g", Kind: dataset.Categorical},
	)
	src := dataset.NewFuncSource(schema, 100_000, func(i int, out dataset.Tuple) {
		out[0] = float64(i % 100)
		out[1] = float64(i % 50)
		out[2] = float64(i % 2)
	})
	xb, err := binning.NewEquiWidth(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	yb, err := binning.NewEquiWidth(0, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ba, err := BuildContext(ctx, src, 0, 1, 2, xb, yb, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if ba != nil {
		t.Error("canceled build returned a partial array")
	}
	// Same source, live context: the pass completes identically to Build.
	ba, err = BuildContext(context.Background(), src, 0, 1, 2, xb, yb, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ba.N() != 100_000 {
		t.Errorf("N = %d, want 100000", ba.N())
	}
}
