package binarray

import "testing"

func TestPermuteX(t *testing.T) {
	ba, _ := New(3, 2, 2)
	ba.Add(0, 0, 0)
	ba.Add(0, 0, 0)
	ba.Add(1, 1, 1)
	ba.Add(2, 0, 0)
	// old x 0 -> 2, 1 -> 0, 2 -> 1
	out, err := PermuteX(ba, []int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.N() != ba.N() {
		t.Errorf("N = %d, want %d", out.N(), ba.N())
	}
	if got := out.Count(2, 0, 0); got != 2 {
		t.Errorf("Count(2,0,0) = %d, want 2 (moved from x=0)", got)
	}
	if got := out.Count(0, 1, 1); got != 1 {
		t.Errorf("Count(0,1,1) = %d, want 1 (moved from x=1)", got)
	}
	if got := out.CellTotal(1, 0); got != 1 {
		t.Errorf("CellTotal(1,0) = %d, want 1 (moved from x=2)", got)
	}
	// Original untouched.
	if ba.Count(0, 0, 0) != 2 {
		t.Error("PermuteX modified its input")
	}
}

func TestPermuteY(t *testing.T) {
	ba, _ := New(2, 3, 1)
	ba.Add(0, 0, 0)
	ba.Add(1, 2, 0)
	out, err := PermuteY(ba, []int{1, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Count(0, 1, 0); got != 1 {
		t.Errorf("Count(0,1,0) = %d (y=0 should move to 1)", got)
	}
	if got := out.Count(1, 0, 0); got != 1 {
		t.Errorf("Count(1,0,0) = %d (y=2 should move to 0)", got)
	}
}

func TestPermuteValidation(t *testing.T) {
	ba, _ := New(3, 3, 1)
	if _, err := PermuteX(ba, []int{0, 1}); err == nil {
		t.Error("wrong-length order should error")
	}
	if _, err := PermuteX(ba, []int{0, 0, 1}); err == nil {
		t.Error("non-permutation should error")
	}
	if _, err := PermuteY(ba, []int{0, 1, 9}); err == nil {
		t.Error("out-of-range order should error")
	}
	if _, err := PermuteY(ba, []int{0, 1}); err == nil {
		t.Error("wrong-length y order should error")
	}
}
