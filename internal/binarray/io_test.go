package binarray

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	ba, _ := New(5, 7, 3)
	ba.Add(0, 0, 0)
	ba.Add(4, 6, 2)
	ba.Add(2, 3, 1)
	ba.Add(2, 3, 1)
	var buf bytes.Buffer
	if err := ba.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NX() != 5 || back.NY() != 7 || back.NSeg() != 3 || back.N() != 4 {
		t.Fatalf("restored dims/N = %d/%d/%d/%d", back.NX(), back.NY(), back.NSeg(), back.N())
	}
	for x := 0; x < 5; x++ {
		for y := 0; y < 7; y++ {
			for s := 0; s < 3; s++ {
				if back.Count(x, y, s) != ba.Count(x, y, s) {
					t.Fatalf("count (%d,%d,%d) differs", x, y, s)
				}
			}
			if back.CellTotal(x, y) != ba.CellTotal(x, y) {
				t.Fatalf("total (%d,%d) differs", x, y)
			}
		}
	}
	// Supports and confidences survive exactly.
	if back.Support(2, 3, 1) != ba.Support(2, 3, 1) {
		t.Error("support changed")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"short",
		"NOTMAGIC________________",
		string(baMagic[:]), // magic only, truncated dims
	}
	for i, s := range cases {
		if _, err := Read(strings.NewReader(s)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestReadRejectsCorruptCounts(t *testing.T) {
	ba, _ := New(2, 2, 2)
	ba.Add(0, 0, 0)
	var buf bytes.Buffer
	if err := ba.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a count byte in the payload (after the 8+32 byte header), so
	// a per-segment count disagrees with its stored cell total.
	data[8+32] ^= 0xFF
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("corrupt counts should be rejected")
	}
}

func TestReadRejectsImplausibleDims(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(baMagic[:])
	// nx = 0.
	buf.Write(make([]byte, 32))
	if _, err := Read(&buf); err == nil {
		t.Error("zero dims should be rejected")
	}
}

func TestWriteReadEmpty(t *testing.T) {
	ba, _ := New(3, 3, 2)
	var buf bytes.Buffer
	if err := ba.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 0 {
		t.Errorf("N = %d", back.N())
	}
}
