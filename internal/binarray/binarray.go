// Package binarray implements the BinArray of paper §3.1: a dense
// in-memory nx × ny × (nseg+1) count array indexed by the bin numbers of
// the two LHS attributes. For each (binx, biny) cell it maintains the
// number of tuples having each possible RHS attribute value, plus the
// cell total. The array is filled in a single pass over the data, after
// which association rules for any support/confidence thresholds — and
// any criterion value — can be derived without re-reading the data; this
// is what makes ARCS's "re-mining" nearly instantaneous (§3.2).
package binarray

import (
	"context"
	"fmt"
	"math"

	"arcs/internal/binning"
	"arcs/internal/cancelcheck"
	"arcs/internal/dataset"
)

// BinArray is the paper's central counting structure. Counts are uint32:
// the structure is designed to stay small enough for main memory even at
// a 1000×1000 grid, and 4 billion tuples per cell exceeds any workload
// the system targets.
type BinArray struct {
	nx, ny, nseg int
	// counts is laid out cell-major: cell (x, y) occupies the slice
	// [(x*ny+y)*(nseg+1), ...+nseg+1), with per-segment counts first and
	// the cell total in the final slot.
	counts []uint32
	n      uint64 // total tuples added
}

// DefaultMemBudget caps the count array New will allocate, in bytes.
// The paper's design point is a grid that comfortably fits main memory
// (50×50×3 ≈ 30 KB; even 1000×1000×16 is 68 MB), so the default — 1 GiB
// — only rejects absurd grids that would otherwise OOM-kill the process
// or wrap the int size arithmetic.
//
// Deprecated: mutating this package global is racy and process-wide.
// It survives only as the default applied when no budget is plumbed;
// configure budgets through counts.Options.MemBudget / core.Config.
// MemBudget / the -mem-budget flags instead. Note the budget is no
// longer a hard failure either: the counts layer treats a dense refusal
// as dispatch advice and falls over to the sparse or spill backend.
var DefaultMemBudget int64 = 1 << 30

// MemNeeded reports the bytes a BinArray of the given dimensions
// requires, or an error when the element count overflows int.
func MemNeeded(nx, ny, nseg int) (int64, error) {
	// Multiply stepwise in uint64 and re-check against the int range so
	// nx*ny*(nseg+1) can never wrap silently on any platform.
	const maxInt = int64(^uint(0) >> 1)
	cells := uint64(nx) * uint64(ny)
	if nx != 0 && cells/uint64(nx) != uint64(ny) || cells > uint64(maxInt) {
		return 0, fmt.Errorf("binarray: %d×%d cells overflows", nx, ny)
	}
	elems := cells * uint64(nseg+1)
	if cells != 0 && elems/cells != uint64(nseg+1) || elems > uint64(maxInt)/4 {
		return 0, fmt.Errorf("binarray: %d×%d×(%d+1) elements overflows", nx, ny, nseg)
	}
	return int64(elems) * 4, nil
}

// New allocates a BinArray for an nx × ny grid with an RHS attribute of
// cardinality nseg, under DefaultMemBudget.
func New(nx, ny, nseg int) (*BinArray, error) {
	return NewBudget(nx, ny, nseg, DefaultMemBudget)
}

// NewBudget is New with an explicit memory budget in bytes: the computed
// size of the count array is validated before allocation, so an absurd
// grid (overflowing index arithmetic, or simply bigger than the machine)
// returns an error naming the size instead of panicking mid-make or
// invoking the OOM killer. A non-positive budget disables the check
// (overflow is still rejected).
func NewBudget(nx, ny, nseg int, budget int64) (*BinArray, error) {
	if nx <= 0 || ny <= 0 || nseg <= 0 {
		return nil, fmt.Errorf("binarray: invalid dimensions %d×%d×%d", nx, ny, nseg)
	}
	bytes, err := MemNeeded(nx, ny, nseg)
	if err != nil {
		return nil, err
	}
	if budget > 0 && bytes > budget {
		return nil, fmt.Errorf("binarray: %d×%d×(%d+1) grid needs %d bytes, over the %d-byte budget",
			nx, ny, nseg, bytes, budget)
	}
	return &BinArray{
		nx:     nx,
		ny:     ny,
		nseg:   nseg,
		counts: make([]uint32, nx*ny*(nseg+1)),
	}, nil
}

// NX reports the number of x bins.
func (b *BinArray) NX() int { return b.nx }

// NY reports the number of y bins.
func (b *BinArray) NY() int { return b.ny }

// NSeg reports the cardinality of the RHS segmentation attribute.
func (b *BinArray) NSeg() int { return b.nseg }

// N reports the total number of tuples added.
func (b *BinArray) N() uint64 { return b.n }

func (b *BinArray) base(x, y int) int { return (x*b.ny + y) * (b.nseg + 1) }

// Add records one tuple falling in cell (x, y) with RHS value seg.
// Indices are the caller's responsibility; out-of-range indices panic, as
// they always indicate a bug in the binner. Counters saturate at
// MaxUint32 instead of wrapping (see AddN).
func (b *BinArray) Add(x, y, seg int) {
	if x < 0 || x >= b.nx || y < 0 || y >= b.ny || seg < 0 || seg >= b.nseg {
		panic(fmt.Sprintf("binarray: Add(%d, %d, %d) out of range %d×%d×%d", x, y, seg, b.nx, b.ny, b.nseg))
	}
	base := b.base(x, y)
	if b.counts[base+seg] != math.MaxUint32 {
		b.counts[base+seg]++
	}
	if b.counts[base+b.nseg] != math.MaxUint32 {
		b.counts[base+b.nseg]++
	}
	b.n++
}

// satAdd is the shared saturating accumulation of Add, AddN and Merge:
// counters pin at MaxUint32 rather than wrapping, so a cell that
// overflows its uint32 reads as "at least 4 billion" instead of a small
// garbage count. Saturating addition of non-negative values is
// associative and commutative, so sharded merges remain byte-identical
// to a sequential pass even at the saturation point.
func satAdd(c uint32, n uint32) uint32 {
	if c > math.MaxUint32-n {
		return math.MaxUint32
	}
	return c + n
}

// AddN records n tuples falling in cell (x, y) with RHS value seg in one
// bulk accumulation — the batched form of Add used by merge paths and
// pre-aggregated loaders. Per-cell counters saturate at MaxUint32; the
// total tuple count N is 64-bit and always advances by n.
func (b *BinArray) AddN(x, y, seg int, n uint32) {
	if x < 0 || x >= b.nx || y < 0 || y >= b.ny || seg < 0 || seg >= b.nseg {
		panic(fmt.Sprintf("binarray: AddN(%d, %d, %d) out of range %d×%d×%d", x, y, seg, b.nx, b.ny, b.nseg))
	}
	base := b.base(x, y)
	b.counts[base+seg] = satAdd(b.counts[base+seg], n)
	b.counts[base+b.nseg] = satAdd(b.counts[base+b.nseg], n)
	b.n += uint64(n)
}

// Count returns the number of tuples in cell (x, y) with RHS value seg —
// the |(i, j, Gk)| of §3.2.
func (b *BinArray) Count(x, y, seg int) uint32 {
	return b.counts[b.base(x, y)+seg]
}

// CellTotal returns the total number of tuples in cell (x, y) — the
// |(i, j)| of §3.2.
func (b *BinArray) CellTotal(x, y int) uint32 {
	return b.counts[b.base(x, y)+b.nseg]
}

// Support returns the support of the rule X=x ∧ Y=y ⇒ G=seg, i.e.
// |(i, j, Gk)| / N. It is zero when the array is empty.
func (b *BinArray) Support(x, y, seg int) float64 {
	if b.n == 0 {
		return 0
	}
	return float64(b.Count(x, y, seg)) / float64(b.n)
}

// Confidence returns the confidence of the rule X=x ∧ Y=y ⇒ G=seg, i.e.
// |(i, j, Gk)| / |(i, j)|. It is zero for empty cells.
func (b *BinArray) Confidence(x, y, seg int) float64 {
	total := b.CellTotal(x, y)
	if total == 0 {
		return 0
	}
	return float64(b.Count(x, y, seg)) / float64(total)
}

// SegmentTotal returns the total number of tuples with RHS value seg
// across all cells.
func (b *BinArray) SegmentTotal(seg int) uint64 {
	var total uint64
	for x := 0; x < b.nx; x++ {
		for y := 0; y < b.ny; y++ {
			total += uint64(b.Count(x, y, seg))
		}
	}
	return total
}

// Occupied invokes fn for every cell with at least one tuple of RHS value
// seg, passing the cell coordinates, the segment count and the cell
// total. Iteration is row-major (x outer, y inner) and deterministic.
func (b *BinArray) Occupied(seg int, fn func(x, y int, segCount, cellTotal uint32)) {
	for x := 0; x < b.nx; x++ {
		for y := 0; y < b.ny; y++ {
			if c := b.Count(x, y, seg); c > 0 {
				fn(x, y, c, b.CellTotal(x, y))
			}
		}
	}
}

// Cells invokes fn for every occupied cell (cell total > 0) in
// deterministic row-major order (x outer, y inner), passing the cell's
// full count slab [seg 0 .. seg nseg-1, total]. The slice aliases the
// backing array and is only valid during the callback; callers must not
// retain or mutate it. This is the bulk read path: snapshot
// serialization, occupancy metrics and backend conversion all iterate
// occupied cells instead of scanning the full grid.
func (b *BinArray) Cells(fn func(x, y int, cell []uint32)) {
	stride := b.nseg + 1
	for x := 0; x < b.nx; x++ {
		for y := 0; y < b.ny; y++ {
			base := (x*b.ny + y) * stride
			if b.counts[base+b.nseg] == 0 {
				continue
			}
			fn(x, y, b.counts[base:base+stride:base+stride])
		}
	}
}

// Merge adds every count of other into b; dimensions must match. This
// is how sharded ingest combines per-worker private arrays: saturating
// addition is commutative and associative, so the merged counts are
// identical to a single sequential pass no matter how the stream was
// partitioned or in which order the shards land. Merge is the bulk AddN
// accumulation applied cell-wise: cells empty in other (detected by one
// read of the cell total) are skipped outright, which makes merging the
// sparse per-worker shards of a large grid markedly cheaper than a flat
// element-by-element pass.
func (b *BinArray) Merge(other *BinArray) error {
	if other.nx != b.nx || other.ny != b.ny || other.nseg != b.nseg {
		return fmt.Errorf("binarray: merge dimension mismatch: %d×%d×%d vs %d×%d×%d",
			b.nx, b.ny, b.nseg, other.nx, other.ny, other.nseg)
	}
	stride := b.nseg + 1
	for base := 0; base < len(other.counts); base += stride {
		if other.counts[base+b.nseg] == 0 {
			continue // empty cell in other: nothing to accumulate
		}
		dst := b.counts[base : base+stride]
		src := other.counts[base : base+stride : base+stride]
		for i, v := range src {
			if v != 0 {
				dst[i] = satAdd(dst[i], v)
			}
		}
	}
	b.n += other.n
	return nil
}

// Stats summarizes a built array's shape and footprint for the
// observability layer.
type Stats struct {
	// Cells is nx*ny, the grid size.
	Cells int
	// OccupiedCells counts cells holding at least one tuple.
	OccupiedCells int
	// MemBytes is the resident size of the backing structures.
	MemBytes int
	// DiskBytes is the bytes a backend keeps on disk (the spill
	// backend's record file); zero for in-memory backends.
	DiskBytes int64
}

// Stats scans the cell totals and reports occupancy and memory use.
func (b *BinArray) Stats() Stats {
	s := Stats{Cells: b.nx * b.ny, MemBytes: len(b.counts) * 4}
	for x := 0; x < b.nx; x++ {
		for y := 0; y < b.ny; y++ {
			if b.CellTotal(x, y) > 0 {
				s.OccupiedCells++
			}
		}
	}
	return s
}

// Reset zeroes all counts, allowing the array to be reused for another
// pass without reallocating.
func (b *BinArray) Reset() {
	for i := range b.counts {
		b.counts[i] = 0
	}
	b.n = 0
}

// Build performs the single binning pass of Figure 2's binner component:
// it streams src once, maps the two LHS attributes through their binners
// and the criterion attribute through its category code, and accumulates
// the counts. xIdx, yIdx and critIdx are schema attribute positions.
func Build(src dataset.Source, xIdx, yIdx, critIdx int, xb, yb binning.Binner, nseg int) (*BinArray, error) {
	return BuildContext(context.Background(), src, xIdx, yIdx, critIdx, xb, yb, nseg)
}

// buildCheckEvery is the cooperative-cancellation granularity of the
// in-memory table fast path, matching the dataset layer's streaming
// checkpoint stride.
const buildCheckEvery = 1024

// BuildContext is Build with cooperative cancellation: the binning pass
// checks the context at the dataset layer's checkpoint granularity and
// returns the cancellation error, discarding the partial array. A
// background context adds no per-row cost.
//
// The pass is allocation-free per tuple (guarded by
// counts.TestIngestZeroAllocPerTuple): the binners are compiled into
// concrete lookup programs once up front, removing the two interface
// dispatches per tuple, and an in-memory dataset.Table source is walked
// by row index, skipping the Source cursor protocol entirely.
func BuildContext(ctx context.Context, src dataset.Source, xIdx, yIdx, critIdx int, xb, yb binning.Binner, nseg int) (*BinArray, error) {
	return BuildBudgetContext(ctx, src, xIdx, yIdx, critIdx, xb, yb, nseg, DefaultMemBudget)
}

// BuildBudgetContext is BuildContext under an explicit memory budget in
// bytes (non-positive: unlimited, overflow still rejected) — the
// plumbed replacement for mutating DefaultMemBudget. A refusal here is
// not terminal: counts.Build treats it as dispatch advice and retries
// the same pass on a backend that fits.
func BuildBudgetContext(ctx context.Context, src dataset.Source, xIdx, yIdx, critIdx int, xb, yb binning.Binner, nseg int, budget int64) (*BinArray, error) {
	ba, err := NewBudget(xb.NumBins(), yb.NumBins(), nseg, budget)
	if err != nil {
		return nil, err
	}
	cx, cy := binning.Compile(xb), binning.Compile(yb)
	if tb, ok := src.(*dataset.Table); ok {
		if err := ba.addTable(ctx, tb, xIdx, yIdx, critIdx, &cx, &cy, nseg); err != nil {
			return nil, err
		}
		return ba, nil
	}
	width := src.Schema().Len()
	err = dataset.ForEachContext(ctx, src, func(t dataset.Tuple) error {
		if len(t) != width {
			return dataset.ErrSchemaMismatch
		}
		seg := int(t[critIdx])
		if seg < 0 || seg >= nseg {
			return fmt.Errorf("binarray: criterion value %d out of range 0..%d", seg, nseg-1)
		}
		ba.Add(cx.Bin(t[xIdx]), cy.Bin(t[yIdx]), seg)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ba, nil
}

// addTable is the dense-build fast path over a materialized table: rows
// are visited by index (Table rows are width-checked on Append, so the
// per-tuple schema check of the streaming path is unnecessary), the
// compiled binners are called directly, and the context is polled every
// buildCheckEvery rows.
func (b *BinArray) addTable(ctx context.Context, tb *dataset.Table, xIdx, yIdx, critIdx int, cx, cy *binning.Compiled, nseg int) error {
	point := cancelcheck.New(ctx).Point(buildCheckEvery)
	n := tb.Len()
	for i := 0; i < n; i++ {
		if err := point.Check(); err != nil {
			return err
		}
		t := tb.Row(i)
		seg := int(t[critIdx])
		if seg < 0 || seg >= nseg {
			return fmt.Errorf("binarray: criterion value %d out of range 0..%d", seg, nseg-1)
		}
		b.Add(cx.Bin(t[xIdx]), cy.Bin(t[yIdx]), seg)
	}
	return nil
}
