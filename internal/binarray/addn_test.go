package binarray

import (
	"math"
	"testing"
)

// TestAddNMatchesAdd checks the bulk accumulation against repeated
// single Adds.
func TestAddNMatchesAdd(t *testing.T) {
	a, err := New(3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		a.Add(1, 2, 0)
	}
	a.Add(1, 2, 1)
	a.Add(2, 3, 1)
	b.AddN(1, 2, 0, 7)
	b.AddN(1, 2, 1, 1)
	b.AddN(2, 3, 1, 1)
	if a.n != b.n {
		t.Fatalf("N diverges: %d vs %d", a.n, b.n)
	}
	for i := range a.counts {
		if a.counts[i] != b.counts[i] {
			t.Fatalf("counts[%d] diverges: %d vs %d", i, a.counts[i], b.counts[i])
		}
	}
}

// TestAddNSaturation checks the overflow behavior: per-cell counters pin
// at MaxUint32 instead of wrapping, while the 64-bit total keeps exact
// count, and a merge of saturated shards stays saturated (saturating
// addition is associative, preserving sharded/sequential equivalence).
func TestAddNSaturation(t *testing.T) {
	b, err := New(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	b.AddN(0, 1, 0, math.MaxUint32-1)
	if got := b.Count(0, 1, 0); got != math.MaxUint32-1 {
		t.Fatalf("Count = %d, want %d", got, uint32(math.MaxUint32-1))
	}
	b.AddN(0, 1, 0, 5)
	if got := b.Count(0, 1, 0); got != math.MaxUint32 {
		t.Errorf("saturated Count = %d, want MaxUint32", got)
	}
	if got := b.CellTotal(0, 1); got != math.MaxUint32 {
		t.Errorf("saturated CellTotal = %d, want MaxUint32", got)
	}
	if got := b.N(); got != uint64(math.MaxUint32-1)+5 {
		t.Errorf("N = %d, want %d (64-bit total must not saturate)", got, uint64(math.MaxUint32-1)+5)
	}
	// Single Add on a saturated cell stays pinned.
	b.Add(0, 1, 0)
	if got := b.Count(0, 1, 0); got != math.MaxUint32 {
		t.Errorf("Add on saturated cell = %d, want MaxUint32", got)
	}

	// Merging two half-saturated shards saturates exactly like a single
	// sequential pass would.
	s1, err := New(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	s1.AddN(1, 0, 1, math.MaxUint32/2+7)
	s2.AddN(1, 0, 1, math.MaxUint32/2+9)
	if err := s1.Merge(s2); err != nil {
		t.Fatal(err)
	}
	if got := s1.Count(1, 0, 1); got != math.MaxUint32 {
		t.Errorf("merged saturated Count = %d, want MaxUint32", got)
	}
	if got := s1.N(); got != uint64(math.MaxUint32/2+7)+uint64(math.MaxUint32/2+9) {
		t.Errorf("merged N = %d, want exact 64-bit sum", got)
	}
}

// TestAddNOutOfRangePanics mirrors Add's contract.
func TestAddNOutOfRangePanics(t *testing.T) {
	b, err := New(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("AddN out of range did not panic")
		}
	}()
	b.AddN(2, 0, 0, 1)
}
