package binarray

import "fmt"

// PermuteX returns a new BinArray whose x bins are reordered so that old
// bin i lands at position order[i]. It supports the categorical-LHS
// extension: after a better category ordering is computed, the counts are
// permuted in memory instead of re-reading the source data. order must be
// a permutation of 0..NX-1.
func PermuteX(ba *BinArray, order []int) (*BinArray, error) {
	if len(order) != ba.nx {
		return nil, fmt.Errorf("binarray: order has %d entries for %d x bins", len(order), ba.nx)
	}
	seen := make([]bool, ba.nx)
	for _, p := range order {
		if p < 0 || p >= ba.nx || seen[p] {
			return nil, fmt.Errorf("binarray: order is not a permutation: %v", order)
		}
		seen[p] = true
	}
	out, err := New(ba.nx, ba.ny, ba.nseg)
	if err != nil {
		return nil, err
	}
	stride := ba.nseg + 1
	for x := 0; x < ba.nx; x++ {
		nx := order[x]
		for y := 0; y < ba.ny; y++ {
			src := ba.counts[ba.base(x, y) : ba.base(x, y)+stride]
			dst := out.counts[out.base(nx, y) : out.base(nx, y)+stride]
			copy(dst, src)
		}
	}
	out.n = ba.n
	return out, nil
}

// PermuteY returns a new BinArray with reordered y bins, the counterpart
// of PermuteX for a categorical y attribute.
func PermuteY(ba *BinArray, order []int) (*BinArray, error) {
	if len(order) != ba.ny {
		return nil, fmt.Errorf("binarray: order has %d entries for %d y bins", len(order), ba.ny)
	}
	seen := make([]bool, ba.ny)
	for _, p := range order {
		if p < 0 || p >= ba.ny || seen[p] {
			return nil, fmt.Errorf("binarray: order is not a permutation: %v", order)
		}
		seen[p] = true
	}
	out, err := New(ba.nx, ba.ny, ba.nseg)
	if err != nil {
		return nil, err
	}
	stride := ba.nseg + 1
	for x := 0; x < ba.nx; x++ {
		for y := 0; y < ba.ny; y++ {
			src := ba.counts[ba.base(x, y) : ba.base(x, y)+stride]
			dst := out.counts[out.base(x, order[y]) : out.base(x, order[y])+stride]
			copy(dst, src)
		}
	}
	out.n = ba.n
	return out, nil
}
