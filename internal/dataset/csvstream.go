package dataset

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
)

// CSVStream is a tuple source that reads a CSV file from disk on every
// pass instead of materializing it, preserving ARCS's constant-memory
// property for data sets that do not fit in RAM (the regime of the
// paper's Figure 15, where C4.5 dies of virtual-memory depletion and
// ARCS keeps streaming). Reset reopens the file.
//
// The schema must be known up front — either supplied by the caller or
// inferred by InferCSVSchema from a bounded prefix of the file — because
// a streaming pass cannot look ahead. Categorical labels not seen during
// inference are registered on the fly.
type CSVStream struct {
	path   string
	schema *Schema

	file *os.File
	cr   *csv.Reader
	buf  Tuple
	row  int
}

// OpenCSVStream opens path for streaming with the given schema. The
// header row is validated against the schema on every pass.
func OpenCSVStream(path string, schema *Schema) (*CSVStream, error) {
	if schema == nil {
		return nil, fmt.Errorf("dataset: OpenCSVStream requires a schema; use InferCSVSchema first")
	}
	s := &CSVStream{path: path, schema: schema, buf: make(Tuple, schema.Len())}
	if err := s.Reset(); err != nil {
		return nil, err
	}
	return s, nil
}

// InferCSVSchema reads up to sampleRows data rows from the file and
// infers a schema the same way ReadCSV does (numeric columns become
// quantitative). Pass the result to OpenCSVStream.
func InferCSVSchema(path string, sampleRows int) (*Schema, error) {
	if sampleRows <= 0 {
		sampleRows = 1000
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cr := csv.NewReader(bufio.NewReaderSize(f, 1<<20))
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	headerCopy := append([]string(nil), header...)
	var records [][]string
	for len(records) < sampleRows {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Malformed rows don't invalidate inference — the streaming
			// pass reports them per-row (see Next); skip them here so one
			// dirty row cannot block opening the file.
			var pe *csv.ParseError
			if errors.As(err, &pe) {
				continue
			}
			return nil, err
		}
		records = append(records, append([]string(nil), rec...))
	}
	return inferSchema(headerCopy, records), nil
}

// Schema implements Source.
func (s *CSVStream) Schema() *Schema { return s.schema }

// Reset implements Source: it reopens the file and re-validates the
// header. A close error on the previous pass's handle is reported
// rather than dropped — on some filesystems close is where write-back
// and revalidation errors surface.
func (s *CSVStream) Reset() error {
	if s.file != nil {
		err := s.file.Close()
		s.file = nil
		s.cr = nil
		if err != nil {
			return fmt.Errorf("dataset: closing %s before reset: %w", s.path, err)
		}
	}
	f, err := os.Open(s.path)
	if err != nil {
		return err
	}
	cr := csv.NewReader(bufio.NewReaderSize(f, 1<<20))
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		f.Close()
		return fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	if len(header) != s.schema.Len() {
		f.Close()
		return fmt.Errorf("dataset: CSV has %d columns, schema has %d attributes", len(header), s.schema.Len())
	}
	for i, name := range header {
		if s.schema.At(i).Name != name {
			f.Close()
			return fmt.Errorf("dataset: CSV column %d is %q, schema expects %q", i, name, s.schema.At(i).Name)
		}
	}
	s.file = f
	s.cr = cr
	s.row = 1
	return nil
}

// Next implements Source. The returned tuple is reused between calls.
//
// Errors confined to one row — malformed CSV syntax, a wrong field
// count, an unparseable cell — come back as *RowError carrying the
// file:line position; the stream stays positioned so the following Next
// yields the next row. I/O errors propagate unwrapped and are fatal.
func (s *CSVStream) Next() (Tuple, error) {
	if s.cr == nil {
		return nil, io.EOF
	}
	rec, err := s.cr.Read()
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		s.row++
		var pe *csv.ParseError
		if errors.As(err, &pe) {
			// csv.Reader keeps its position after a parse error, so the
			// row is skippable. Its error already carries "line N" —
			// prefer its line accounting (it counts physical lines,
			// which diverge from records on embedded newlines).
			reason := "malformed"
			if errors.Is(err, csv.ErrFieldCount) {
				reason = "field-count"
			}
			return nil, &RowError{Path: s.path, Row: pe.Line, Reason: reason, Err: err}
		}
		return nil, fmt.Errorf("dataset: %s:%d: %w", s.path, s.row, err)
	}
	s.row++
	if len(rec) != s.schema.Len() {
		return nil, &RowError{Path: s.path, Row: s.row, Reason: "field-count",
			Err: fmt.Errorf("has %d fields, want %d", len(rec), s.schema.Len())}
	}
	for i, field := range rec {
		a := s.schema.At(i)
		switch a.Kind {
		case Quantitative:
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, &RowError{Path: s.path, Row: s.row, Reason: "parse",
					Err: fmt.Errorf("attribute %q: %w", a.Name, err)}
			}
			s.buf[i] = v
		case Categorical:
			code, err := a.CategoryCode(field)
			if err != nil {
				return nil, &RowError{Path: s.path, Row: s.row, Reason: "category",
					Err: fmt.Errorf("attribute %q: %w", a.Name, err)}
			}
			s.buf[i] = float64(code)
		}
	}
	return s.buf, nil
}

// Close releases the underlying file. The stream is unusable afterwards
// except via Reset, which reopens it.
func (s *CSVStream) Close() error {
	if s.file == nil {
		return nil
	}
	err := s.file.Close()
	s.file = nil
	s.cr = nil
	return err
}
