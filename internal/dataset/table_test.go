package dataset

import (
	"io"
	"testing"
)

func demoSchema() *Schema {
	return NewSchema(
		Attribute{Name: "age", Kind: Quantitative},
		Attribute{Name: "salary", Kind: Quantitative},
		Attribute{Name: "group", Kind: Categorical},
	)
}

func demoTable(t *testing.T) *Table {
	t.Helper()
	tb := NewTable(demoSchema())
	rows := [][]interface{}{
		{30, 50000.0, "A"},
		{45, 80000.0, "B"},
		{62, 30000.0, "A"},
	}
	for _, r := range rows {
		if err := tb.AppendValues(r...); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestTableAppendAndIterate(t *testing.T) {
	tb := demoTable(t)
	if tb.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tb.Len())
	}
	var ages []float64
	if err := ForEach(tb, func(tp Tuple) error {
		ages = append(ages, tp[0])
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []float64{30, 45, 62}
	for i := range want {
		if ages[i] != want[i] {
			t.Errorf("age[%d] = %v, want %v", i, ages[i], want[i])
		}
	}
	// A second full pass must see the same data (Reset inside ForEach).
	n := 0
	if err := ForEach(tb, func(Tuple) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("second pass saw %d tuples, want 3", n)
	}
}

func TestTableAppendErrors(t *testing.T) {
	tb := NewTable(demoSchema())
	if err := tb.Append(Tuple{1}); err == nil {
		t.Error("Append with wrong width should error")
	}
	if err := tb.AppendValues(1.0, 2.0); err == nil {
		t.Error("AppendValues with wrong arity should error")
	}
	if err := tb.AppendValues("not a number", 2.0, "A"); err == nil {
		t.Error("AppendValues with string for quantitative should error")
	}
	if err := tb.AppendValues(1.0, 2.0, 3.0); err == nil {
		t.Error("AppendValues with float for categorical should error")
	}
}

func TestTableColumnSliceSelectFilter(t *testing.T) {
	tb := demoTable(t)
	col := tb.Column(1)
	if len(col) != 3 || col[1] != 80000 {
		t.Errorf("Column(1) = %v", col)
	}
	sl := tb.Slice(1, 3)
	if sl.Len() != 2 || sl.Row(0)[0] != 45 {
		t.Errorf("Slice(1,3) first row = %v", sl.Row(0))
	}
	sel := tb.Select([]int{2, 0})
	if sel.Len() != 2 || sel.Row(0)[0] != 62 || sel.Row(1)[0] != 30 {
		t.Errorf("Select rows = %v, %v", sel.Row(0), sel.Row(1))
	}
	groupIdx := tb.Schema().MustIndex("group")
	codeA, _ := tb.Schema().Attr("group").LookupCategory("A")
	fil := tb.Filter(func(tp Tuple) bool { return int(tp[groupIdx]) == codeA })
	if fil.Len() != 2 {
		t.Errorf("Filter group=A kept %d rows, want 2", fil.Len())
	}
}

func TestLimitSource(t *testing.T) {
	tb := demoTable(t)
	lim := Limit(tb, 2)
	n, err := Count(lim)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("Count(Limit 2) = %d", n)
	}
	// Limit larger than the source yields the source length.
	lim5 := Limit(demoTable(t), 5)
	if got := lim5.(SizedSource).Len(); got != 3 {
		t.Errorf("Limit(5).Len() = %d, want 3", got)
	}
}

func TestFuncSource(t *testing.T) {
	s := NewSchema(Attribute{Name: "i", Kind: Quantitative})
	fs := NewFuncSource(s, 4, func(i int, out Tuple) { out[0] = float64(i * i) })
	if fs.Len() != 4 {
		t.Fatalf("Len = %d", fs.Len())
	}
	var got []float64
	if err := ForEach(fs, func(tp Tuple) error {
		got = append(got, tp[0])
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 4, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Exhausted source keeps returning EOF.
	if _, err := fs.Next(); err != io.EOF {
		t.Errorf("Next after EOF = %v, want io.EOF", err)
	}
	// Reset replays deterministically.
	if err := fs.Reset(); err != nil {
		t.Fatal(err)
	}
	tp, err := fs.Next()
	if err != nil || tp[0] != 0 {
		t.Errorf("after Reset Next = %v, %v", tp, err)
	}
}

func TestMaterialize(t *testing.T) {
	s := NewSchema(Attribute{Name: "i", Kind: Quantitative})
	fs := NewFuncSource(s, 3, func(i int, out Tuple) { out[0] = float64(i) })
	tb, err := Materialize(fs)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 3 {
		t.Fatalf("materialized %d rows", tb.Len())
	}
	// FuncSource reuses its buffer; Materialize must have cloned.
	if tb.Row(0)[0] == tb.Row(2)[0] {
		t.Error("rows alias the same buffer; Materialize failed to clone")
	}
}

func TestCountSizedFastPath(t *testing.T) {
	tb := demoTable(t)
	// Move the cursor; Count must not be affected by it.
	if _, err := tb.Next(); err != nil {
		t.Fatal(err)
	}
	n, err := Count(tb)
	if err != nil || n != 3 {
		t.Errorf("Count = %d, %v", n, err)
	}
}
